(** A Reno-style TCP sender state machine (for Section 6.4), with an
    optional DCTCP-style ECN reaction.

    The TCP-friendliness study only needs the dynamics that interact
    with EMPoWER: window growth (slow start / congestion avoidance),
    loss detection by triple duplicate ACK (fast retransmit / fast
    recovery) and by retransmission timeout, and RTT estimation
    (Jacobson/Karn). Segments are fixed-size and identified by index;
    the receiver side is the engine's reorder buffer, which produces
    cumulative ACKs (and, when the network marks, echoes the CE bit of
    the frame that triggered each ack).

    The module is pure state: the simulator asks {!take_segment} when
    it can transmit, feeds {!on_ack} / {!on_rto}, and polls
    {!rto_deadline} to schedule timer events. *)

(** How the sender reacts to ECN marks.

    [Reno] ignores the ECE echo entirely (classic loss-driven Reno —
    under buffer pressure it fills the queue until it tail-drops).
    [Dctcp] keeps an EWMA [alpha] of the marked fraction with gain
    [g]: per observation window of one cwnd of data, the fraction [F]
    of acked segments whose ack echoed CE is folded in as
    [alpha <- (1 - g) alpha + g F], and a window that saw any mark
    cuts [cwnd <- cwnd (1 - alpha/2)] (once per window, never below
    one segment; ssthresh follows). Starting from [alpha = 0], [k]
    fully-marked windows give [alpha = 1 - (1 - g)^k]; with no marks
    the trajectory is exactly Reno's. *)
type variant = Reno | Dctcp of { g : float }

type params = {
  segment_bytes : int;    (** segment size (one aggregate frame) *)
  init_cwnd : float;      (** initial window, segments *)
  init_ssthresh : float;  (** initial slow-start threshold, segments *)
  min_rto : float;        (** RTO floor, seconds *)
  max_cwnd : float;       (** window cap, segments *)
  variant : variant;      (** ECN reaction; {!Reno} by default *)
}

val default_params : params
(** 12000-byte segments, cwnd 2, ssthresh 64, 200 ms RTO floor,
    cwnd cap 1000, Reno. *)

val dctcp_params : params
(** {!default_params} with [variant = Dctcp { g = 1/16 }] (the DCTCP
    paper's recommended gain). *)

type t

val create : ?params:params -> total_bytes:int option -> unit -> t
(** A sender with the given amount of data ([None] = unbounded). *)

val params : t -> params

val segments_total : t -> int option
(** Total segments to deliver, if bounded. *)

val take_segment : ?new_data_limit:int -> t -> now:float -> int option
(** The next segment index to transmit, if the window allows:
    retransmissions first, then new data. Marks the segment as
    in-flight and records its send time. [None] when window-limited
    or out of data. [new_data_limit] caps the index of *new* segments
    (exclusive) — the application-layer gate for data that has not
    been produced yet (e.g. Poisson file arrivals); retransmissions
    are never blocked. *)

val on_ack : ?ece:bool -> t -> now:float -> cum_ack:int -> unit
(** Process a cumulative ACK ([cum_ack] = number of in-order segments
    the receiver has; i.e. segments [0 .. cum_ack-1] are delivered).
    Handles new-data ACKs (window growth, RTT sample), duplicate ACKs
    and fast retransmit/recovery. [ece] (default false) is the
    receiver's echo of the CE bit on the frame that produced this ack;
    it only matters to the {!Dctcp} variant — {!Reno} ignores it. *)

val on_rto : t -> now:float -> unit
(** Retransmission timeout: collapse cwnd to 1, halve ssthresh,
    queue the oldest unacked segment, back the timer off. *)

val rto_deadline : t -> float option
(** Absolute time at which the pending timer fires; [None] when
    nothing is in flight. *)

val finished : t -> bool
(** All segments delivered (never true for unbounded senders). *)

val cwnd : t -> float
(** Current congestion window, segments. *)

val ssthresh : t -> float

val dctcp_alpha : t -> float
(** Current DCTCP marked-fraction EWMA (0 for {!Reno} senders and for
    {!Dctcp} senders that have never seen a mark). *)

val srtt : t -> float
(** Smoothed RTT estimate (0 before the first sample). *)

val snd_una : t -> int
(** Lowest unacknowledged segment index. *)

val in_flight : t -> int
(** Segments sent and not yet cumulatively acknowledged. *)

val retransmissions : t -> int
(** Total retransmitted segments (diagnostic). *)
