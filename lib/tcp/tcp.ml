type variant = Reno | Dctcp of { g : float }

type params = {
  segment_bytes : int;
  init_cwnd : float;
  init_ssthresh : float;
  min_rto : float;
  max_cwnd : float;
  variant : variant;
}

let default_params =
  {
    segment_bytes = 12000;
    init_cwnd = 2.0;
    init_ssthresh = 64.0;
    min_rto = 0.2;
    max_cwnd = 1000.0;
    variant = Reno;
  }

let dctcp_params = { default_params with variant = Dctcp { g = 1.0 /. 16.0 } }

type t = {
  p : params;
  total_segments : int option;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable next_new : int;
  mutable una : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt_v : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable timer : float option;
  mutable retransmit_queue : int list;
  send_times : (int, float * bool) Hashtbl.t;  (* seq -> sent_at, retransmitted *)
  mutable retx_count : int;
  mutable max_sent : int;  (* one past the highest segment ever sent *)
  (* DCTCP state (untouched under Reno): the running EWMA of the
     marked fraction, the ack-accounting of the current observation
     window, and the window boundary (one past the highest segment
     outstanding when the window opened — once [una] passes it, a
     full window of acks has been observed). *)
  mutable dctcp_alpha : float;
  mutable win_acked : int;   (* segments cumulatively acked this window *)
  mutable win_marked : int;  (* of those, acked by a CE-echoing ack *)
  mutable win_end : int;
}

let create ?(params = default_params) ~total_bytes () =
  let total_segments =
    Option.map
      (fun b -> (b + params.segment_bytes - 1) / params.segment_bytes)
      total_bytes
  in
  {
    p = params;
    total_segments;
    cwnd = params.init_cwnd;
    ssthresh = params.init_ssthresh;
    next_new = 0;
    una = 0;
    dup_acks = 0;
    in_recovery = false;
    recover = -1;
    srtt_v = 0.0;
    rttvar = 0.0;
    rto = 1.0;
    timer = None;
    retransmit_queue = [];
    send_times = Hashtbl.create 64;
    retx_count = 0;
    max_sent = 0;
    dctcp_alpha = 0.0;
    win_acked = 0;
    win_marked = 0;
    win_end = 0;
  }

let params t = t.p
let segments_total t = t.total_segments
let cwnd t = t.cwnd
let dctcp_alpha t = t.dctcp_alpha
let ssthresh t = t.ssthresh
let srtt t = t.srtt_v
let snd_una t = t.una
let in_flight t = t.next_new - t.una
let retransmissions t = t.retx_count
let rto_deadline t = t.timer

let finished t =
  match t.total_segments with None -> false | Some n -> t.una >= n

let arm_timer_if_needed t ~now =
  if t.timer = None && in_flight t > 0 then t.timer <- Some (now +. t.rto)

let take_segment ?new_data_limit t ~now =
  let rec pop_retx () =
    match t.retransmit_queue with
    | [] -> None
    | seq :: tl ->
      t.retransmit_queue <- tl;
      if seq < t.una then pop_retx () (* already acked meanwhile *)
      else begin
        Hashtbl.replace t.send_times seq (now, true);
        t.retx_count <- t.retx_count + 1;
        t.timer <- Some (now +. t.rto);
        Some seq
      end
  in
  match pop_retx () with
  | Some seq -> Some seq
  | None ->
    let data_remains =
      (match t.total_segments with None -> true | Some n -> t.next_new < n)
      && match new_data_limit with None -> true | Some lim -> t.next_new < lim
    in
    if data_remains && float_of_int (in_flight t) < Float.min t.cwnd t.p.max_cwnd
    then begin
      let seq = t.next_new in
      t.next_new <- t.next_new + 1;
      (* After a go-back-N reset, re-sent segments are retransmissions
         (Karn: their RTT samples would be ambiguous). *)
      let is_retx = seq < t.max_sent in
      if is_retx then t.retx_count <- t.retx_count + 1 else t.max_sent <- seq + 1;
      Hashtbl.replace t.send_times seq (now, is_retx);
      arm_timer_if_needed t ~now;
      Some seq
    end
    else None

let rtt_sample t rtt =
  if t.srtt_v = 0.0 then begin
    t.srtt_v <- rtt;
    t.rttvar <- rtt /. 2.0
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt_v -. rtt));
    t.srtt_v <- (0.875 *. t.srtt_v) +. (0.125 *. rtt)
  end;
  t.rto <- Float.max t.p.min_rto (t.srtt_v +. (4.0 *. t.rttvar))

(* DCTCP (Alizadeh et al., SIGCOMM'10), scaled to this simulator: the
   receiver echoes the CE bit of the frame that triggered each
   cumulative ack ([ece]); the sender counts, per observation window
   of one cwnd of data, the fraction [F] of acked segments whose ack
   carried ECE, folds it into [alpha <- (1 - g) alpha + g F] at the
   window boundary, and — when the window saw any mark — cuts
   [cwnd <- cwnd (1 - alpha/2)] once per window. With no marks the
   update leaves alpha at 0 and the trajectory is exactly Reno's. *)
let dctcp_on_ack t ~newly_acked ~ece =
  match t.p.variant with
  | Reno -> ()
  | Dctcp { g } ->
    t.win_acked <- t.win_acked + newly_acked;
    if ece then t.win_marked <- t.win_marked + newly_acked;
    if t.una > t.win_end then begin
      let frac =
        if t.win_acked > 0 then
          float_of_int t.win_marked /. float_of_int t.win_acked
        else 0.0
      in
      t.dctcp_alpha <- ((1.0 -. g) *. t.dctcp_alpha) +. (g *. frac);
      if t.win_marked > 0 then begin
        t.cwnd <- Float.max 1.0 (t.cwnd *. (1.0 -. (t.dctcp_alpha /. 2.0)));
        t.ssthresh <- Float.max 2.0 t.cwnd
      end;
      t.win_acked <- 0;
      t.win_marked <- 0;
      t.win_end <- t.next_new
    end

let on_ack ?(ece = false) t ~now ~cum_ack =
  if cum_ack > t.una then begin
    (* New data acknowledged. Karn's rule: only sample RTT on
       never-retransmitted segments. *)
    (match Hashtbl.find_opt t.send_times (cum_ack - 1) with
    | Some (sent_at, false) -> rtt_sample t (now -. sent_at)
    | Some (_, true) | None -> ());
    for seq = t.una to cum_ack - 1 do
      Hashtbl.remove t.send_times seq
    done;
    let newly_acked = cum_ack - t.una in
    t.una <- cum_ack;
    t.dup_acks <- 0;
    if t.in_recovery then begin
      if t.una > t.recover then begin
        (* Full recovery. *)
        t.in_recovery <- false;
        t.cwnd <- t.ssthresh
      end
      else
        (* Partial ACK: the next hole was also lost (NewReno). *)
        t.retransmit_queue <- t.retransmit_queue @ [ t.una ]
    end
    else if t.cwnd < t.ssthresh then
      t.cwnd <- Float.min t.p.max_cwnd (t.cwnd +. float_of_int newly_acked)
    else t.cwnd <- Float.min t.p.max_cwnd (t.cwnd +. (float_of_int newly_acked /. t.cwnd));
    dctcp_on_ack t ~newly_acked ~ece;
    t.timer <- (if in_flight t > 0 then Some (now +. t.rto) else None)
  end
  else if cum_ack = t.una && in_flight t > 0 then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.in_recovery then
      (* Window inflation during recovery. *)
      t.cwnd <- Float.min t.p.max_cwnd (t.cwnd +. 1.0)
    else if t.dup_acks = 3 then begin
      (* Fast retransmit / fast recovery. *)
      t.ssthresh <- Float.max 2.0 (float_of_int (in_flight t) /. 2.0);
      t.cwnd <- t.ssthresh +. 3.0;
      t.in_recovery <- true;
      t.recover <- t.next_new - 1;
      t.retransmit_queue <- t.retransmit_queue @ [ t.una ]
    end
  end

let on_rto t ~now =
  t.ssthresh <- Float.max 2.0 (t.cwnd /. 2.0);
  t.cwnd <- 1.0;
  t.dup_acks <- 0;
  t.in_recovery <- false;
  (* Go-back-N: without SACK, everything past the timeout point is
     presumed lost and will be re-sent as the window reopens. *)
  for seq = t.una to t.next_new - 1 do
    Hashtbl.remove t.send_times seq
  done;
  t.next_new <- t.una;
  t.retransmit_queue <- [];
  (* The go-back-N reset invalidates the DCTCP observation window:
     [win_end] may now lie beyond [next_new], so restart the window at
     the reset point (alpha itself persists — it is long-run state). *)
  t.win_acked <- 0;
  t.win_marked <- 0;
  t.win_end <- t.una;
  t.rto <- Float.min 5.0 (t.rto *. 2.0);
  t.timer <- Some (now +. t.rto)
