(** Discrete-event packet simulator of the full EMPoWER datapath.

    This is the OCaml equivalent of the paper's Click implementation
    plus the testbed it ran on, with the same MAC abstraction as the
    paper's Matlab simulator:

    {b MAC.} Each directed link owns a FIFO frame queue. A link may
    start transmitting when no link of its interference domain is on
    the air (perfect carrier sensing, no back-off); when a domain
    frees up, backlogged links are served least-recently-served-first,
    which gives the equal-transmission-opportunity behaviour of
    CSMA/CA (and hence Lemma 1's equal-rate sharing under
    saturation). A frame occupies the medium for
    [bytes / capacity]; queues overflow by dropping the arriving
    frame.

    {b Layer 2.5.} Sources inject frames carrying the 20-byte
    EMPoWER header; the route is chosen per-frame with probability
    proportional to the controller's route rates. Forwarding nodes
    locate their interface hash in the source route, add the current
    congestion price [d_l Σ_{i∈I_l} γ_i] to the header's q_r field
    and enqueue on the matching egress link. Destinations feed a
    reorder buffer, collect q_r per route, and return an ACK every
    100 ms over the best reverse path (prioritized: modeled as a
    fixed reverse-path latency, no data-plane airtime).

    {b Control plane.} Every 100 ms each node measures the airtime
    demand of its egress links from the bits that arrived in the last
    window and the estimated capacities, exchanges the per-technology
    aggregates with its interference neighborhood (the paper's
    broadcast packets; modeled as instantaneous overhearing), and
    updates the dual variables γ_l. Sources apply the proximal
    multipath update on each ACK. Link capacities are known only
    through {!Estimator}s (precise under traffic, coarser when
    probing).

    {b Transports.} UDP (rate-driven by the controller, or fixed
    rates without CC) and the Reno TCP of {!Tcp} (window-driven, with
    the controller enforcing its allocation by dropping above-rate
    segments at the source, and optional destination-side delay
    equalization). *)

type transport =
  | Udp
  | Tcp_transport

type flow_spec = {
  src : int;
  dst : int;
  routes : Paths.t list;       (** preselected routes (from routing) *)
  init_rates : float list;     (** initial injection rate per route (Mbit/s) *)
  workload : Workload.t;
  transport : transport;
  tcp_params : Tcp.params option;
      (** TCP sender parameters for [Tcp_transport] flows ([None] =
          {!Tcp.default_params}, the historical Reno sender; e.g.
          {!Tcp.dctcp_params} for a DCTCP-style ECN-reacting sender).
          [segment_bytes] is always overridden by [config.frame_bytes].
          Ignored for [Udp] flows. *)
  start_time : float;          (** when the flow begins *)
  stop_time : float option;    (** when the flow is switched off *)
}

(** How a node's shared buffer pool arbitrates its egress ports. *)
type buffer_policy =
  | Static
      (** equal static partition: each of the node's [n] egress ports
          owns [pool_bytes / n] bytes *)
  | Dynamic_threshold of float
      (** Choudhury–Hahne Dynamic Threshold with parameter alpha: a
          frame is admitted iff its port's occupancy stays within
          [alpha * (pool_bytes - node occupancy)] — thresholds shrink
          as the pool fills, so idle ports cede space to busy ones *)

(** Finite per-node shared buffering (see [config.buffers]). *)
type buffers = {
  policy : buffer_policy;
  pool_bytes : int;       (** shared byte pool per node *)
  ecn_threshold_bytes : int option;
      (** when set, a frame admitted while its port holds at least
          this many bytes (frame included) gets the ECN CE bit instead
          of any additional penalty; the bit is sticky across hops,
          echoed by the receiver on TCP cumulative acks, and reported
          per ACK window ({!Ack.route_report.marked}) *)
}

type config = {
  frame_bytes : int;        (** aggregate frame payload (default 12000) *)
  queue_limit : int;        (** per-link queue capacity, frames (default 100) *)
  delta : float;            (** constraint margin δ (default 0) *)
  gamma_alpha : float;      (** dual step size (default 0.02) *)
  cc_gain : float;          (** proximal gain (default 50) *)
  enable_cc : bool;         (** false: inject at [init_rates] forever *)
  adaptive_alpha : bool;    (** use the Section 6.1 α heuristic *)
  delay_equalize : bool;    (** destination-side delay equalization *)
  estimate_capacities : bool; (** true: prices use Estimator output *)
  control_period : float;   (** controller/ACK period (default 0.1 s) *)
  collision_prob : float;
      (** CSMA/CA contention losses: a transmission starting while [m]
          other stations of its collision domain are backlogged
          collides (airtime wasted, frame lost) with probability
          [1 - (1-p)^m]. Default 0.12; 0 disables (the idealized
          Section 5 MAC). This is what makes over-driving the network
          expensive and the δ margin worthwhile. *)
  route_reclaim : bool;
      (** When a route returns no bytes for 3 consecutive ACK periods
          it is treated as dead and backed off multiplicatively. With
          [route_reclaim] the back-off floors at the 0.2 Mbit/s probe
          rate, so the route keeps carrying occasional frames and is
          reclaimed once it heals — required for recovery from full
          link/node failures, and what the chaos harness uses. Default
          [false]: the historical behaviour (back-off to zero; a fully
          failed route stays abandoned even after repair). Ignored on
          UDP flows when [recovery] is set (the detector-driven probes
          replace the fixed floor). *)
  price_drain : float;
      (** Per-second dual leak applied at every control tick before
          the positive projection:
          [γ_l ← [γ_l + α (y_l - (1-δ)) - price_drain·T]+]. Without
          it a stale price decays only at α·(1-δ) per tick — about
          0.03/s with the defaults, the hysteresis that dominated
          full-severance recovery before the recovery subsystem.
          Default 0 (the paper's exact update, bit-identical to the
          historical behaviour); {!Multi_cc.solve} exposes the same
          knob per slot as [price_drain]. *)
  recovery : Recovery.config option;
      (** Self-healing control plane (default [None] — no behaviour
          or randomness change whatsoever). When set, each UDP flow
          runs a {!Recovery.Detector} over its ack stream: a route
          with [dead_ack_threshold] consecutive loaded-but-silent ack
          windows, or outstanding frames older than [hello_timeout],
          is declared dead on the spot — its rate state is zeroed,
          the stale γ of its unusable links is reset (instead of
          draining), the lost rate mass moves to the routes that
          survive an LSDB re-discovery ({!Recovery.survivors}), and
          reclaim probes are scheduled with exponential backoff, cap
          and seeded jitter ({!Recovery.Backoff}) — replacing the
          fixed-interval [route_reclaim] floor. An ack returning on a
          dead route restores its routing-estimated initial rate.
          TCP flows keep the legacy paths (probes would corrupt the
          TCP reorder/ack machinery). Recovery draws randomness only
          from a dedicated stream split off once at startup, so runs
          with [recovery = None] consume exactly the historical
          sequence, and equal seeds stay bit-identical with it on. *)
  buffers : buffers option;
      (** Finite per-node shared buffers (default [None] — the legacy
          per-queue [queue_limit] frame check, byte-identical to the
          historical behaviour). When set, admission to a node's MAC
          queues is arbitrated in {e bytes} against the node's shared
          pool under [policy], {e replacing} the [queue_limit] frame
          check; rejected frames count as queue drops exactly like
          legacy overflows. Admission and ECN marking are pure
          functions of buffer occupancy and consume {e no} randomness,
          so the rng stream is identical with the feature on or off. *)
}

val default_config : config

type flow_result = {
  received_bytes : int;
  goodput_series : (float * float) list;
      (** (bin end time, delivered Mbit/s) per 1 s bin *)
  rate_series : (float * float array) list;
      (** (time, per-route injection rates) per control period *)
  completions : (float * float) list;
      (** per workload file, in file order: (start time, duration).
          Start is [max (arrival, previous completion)] — for the
          closed-loop file workloads because the engine serializes
          starts behind the previous completion, for [Empirical]
          because the persistent connection serves transfers FIFO.
          Completed files always form a prefix of the schedule, so
          zipping with the workload's arrivals recovers per-transfer
          flow-completion times (completion − arrival). *)
  frames_lost : int;        (** declared lost by the reorder buffer *)
  frames_dropped : int;     (** dropped at source token bucket (TCP over CC) *)
  final_rates : float array; (** controller rates at the end *)
  mean_delay : float;
      (** mean one-way frame delay (s) over {e every} delivery (exact,
          streamed through an {!Obs.Metrics.Histogram}) — the quantity
          the δ margin of (3) keeps low *)
  p95_delay : float;
      (** 95th percentile of every delivery's delay, within the
          histogram's 0.5% relative error *)
}

(** Engine self-profiling, measured with [Sys.time] around the event
    loop. Wall-clock figures are {e not} part of the determinism
    contract — compare results with {!strip_perf} applied. *)
type perf = {
  wall_s : float;            (** CPU seconds spent in the event loop *)
  events_per_s : float;      (** events_processed / wall_s (0 if instant) *)
  wall_per_sim_s : float;    (** CPU seconds per simulated second *)
  peak_queue_depth : int;    (** max event-queue length observed *)
}

val zero_perf : perf

type result = {
  flows : flow_result array;
  duration : float;
  queue_drops : int;
      (** total MAC queue overflows — buffer-admission rejections when
          [config.buffers] is set, [queue_limit] overflows otherwise,
          plus backlogs flushed by link deaths in both modes *)
  ecn_marks : int;          (** frames CE-marked on admission (0 without
                                an [ecn_threshold_bytes]) *)
  buffer_peak_bytes : int;  (** peak per-node shared-pool occupancy (0
                                without [config.buffers]) *)
  events_processed : int;
  perf : perf;
}

val strip_perf : result -> result
(** [result] with [perf] zeroed — everything that remains is covered
    by the determinism contract below. *)

val run :
  ?config:config ->
  ?invariants:Invariants.t ->
  ?trace:Obs.Trace.sink ->
  ?flight:Obs.Flight.t ->
  ?prof:Obs.Prof.t ->
  ?link_events:(float * int * float) list ->
  ?loss_events:(float * int * float) list ->
  ?ctrl_events:(float * float * float) list ->
  Rng.t ->
  Multigraph.t ->
  Domain.t ->
  flows:flow_spec list ->
  duration:float ->
  result
(** Simulate [duration] seconds. Flow routes must be non-empty for
    flows that should carry traffic; a flow with no routes idles.

    {b Determinism / seeding contract.} The run is a pure function of
    ([config], [link_events], [loss_events], [ctrl_events], the
    [Rng.t]'s state, [g], [dom], [flows], [duration]): equal inputs
    produce bit-identical {!result}s modulo the [perf] field
    (wall-clock; compare via {!strip_perf}). All randomness flows
    through the given generator, which is consumed in a fixed order —
    one {!Rng.split} per link (in link-id order) for the capacity
    estimators, then one split for the recovery subsystem's backoff
    jitter {e only when [config.recovery] is set}, then, per flow in
    list order, the splits its workload needs (one per
    [Poisson_files] workload for its arrival draws; [Empirical]
    schedules are pre-sampled and consume none), then the per-frame
    draws as events execute (collision/fault draws, and one
    exponential gap per injected frame of a Poisson-paced
    [Empirical] flow — CBR flows draw nothing).

    File workloads are {e closed-loop}: a file's bytes only become
    sendable once it has arrived and the previous file's transfer
    completed at the receiver, so offered Poisson arrivals landing
    mid-transfer are serialized ([Workload.Poisson_files]'s
    contract). [Empirical] schedules are {e open-loop}: every arrived
    transfer queues on the connection immediately and its completion
    time includes the queueing wait. [Empirical] arrivals must be
    nonnegative and nondecreasing with positive sizes
    ([Invalid_argument] otherwise). Fault draws (frame loss after the collision draw; ACK
    drop at ACK emission) are taken {e only while the corresponding
    fault probability is positive}, so a run with empty fault
    schedules consumes exactly the same stream as one without them.
    MAC ties (equal last-service times when a domain frees up) break
    by link id; event-queue ties pop FIFO — so equal-time schedule
    entries apply in list order, last one wins. Adding a link or flow
    therefore shifts the streams of everything created after it, but
    no ordering decision is left to hashing or unspecified evaluation
    order.

    {b Invariant checking.} Passing [~invariants:t] runs the
    {!Invariants} checker over every event of the simulation (frame
    conservation, MAC occupancy, queue bounds, price positivity,
    reorder-release order, pacing/goodput bounds) — in its default
    [`Raise] mode any violated invariant aborts the run with
    {!Invariants.Violation}. When the [EMPOWER_CHECK] environment
    variable is set, every [run] without an explicit checker creates
    one, so a whole experiment binary can be audited without code
    changes. Expect a 2-4x slowdown with checking on.

    {b Tracing.} Passing [~trace:sink] streams every datapath and
    control-plane event of the run into the {!Obs.Trace.sink} (frame
    enqueue/grant/dequeue/collision/drop/delivery, price and rate
    updates, ACK emissions, link capacity changes). A sink only
    observes: it consumes no randomness and mutates no engine state,
    so results are bit-identical with and without one, and with no
    sink each emission site is a single never-taken branch (no event
    values are allocated). Without an explicit sink, an installed
    {!Obs.Runtime} metrics registry (the harness's [--metrics] flag,
    or the [EMPOWER_METRICS] environment variable) attaches an
    {!Obs.Recorder} for the duration of the run. A sampled sink
    ({!Obs.Trace.sampled}) is honoured cheaply: the engine asks
    {!Obs.Trace.accept} before constructing an event record, so
    sampled-out offers cost one branch and one counter decrement.

    {b Flight recorder.} Passing [~flight:ring] (or setting the
    [EMPOWER_FLIGHT] environment variable — see {!Obs.Flight.of_env})
    records every trace event into a pre-allocated fixed-capacity
    ring with no per-event allocation. Like a sink it only observes,
    so results stay bit-identical. If any exception escapes the event
    loop — an {!Invariants.Violation} included — the ring is dumped
    to JSONL ({!Obs.Flight.dump}) before the exception is re-raised
    with its original backtrace, making every mid-run failure a
    replayable artifact.

    {b Profiling.} Passing [~prof:p] brackets every handled event
    with {!Obs.Prof.enter}/{!Obs.Prof.leave}, attributing wall time
    and GC minor words to the subsystem that handled it (mac_phy,
    traffic, controller, tcp, recovery, fault). The profiler observes
    the clock only — simulation results are unchanged.

    [link_events] schedules capacity changes: [(t, link, capacity)]
    sets the directed link's capacity at time [t] (0 = link failure,
    which also drops the link's backlog). Estimators track the change
    and the congestion controller re-prices the affected routes —
    the Section 6.1 reaction to capacity changes and link failures.
    Note that entries affect one direction; schedule the peer link
    too for a physical-edge failure.

    [loss_events] schedules frame-loss injection: [(t, link, p)] sets
    the link's per-frame loss probability at time [t] (0 ends the
    window). A lossy frame is drawn when the MAC grants it the
    medium, occupies its full airtime like a collision, and is
    dropped with reason [fault_injected] — it does {e not} count as a
    queue drop. [ctrl_events] schedules control-plane faults:
    [(t, drop_p, extra_delay)] atomically sets the probability that a
    destination's 100 ms ACK report is lost and the extra latency
    added to delivered reports (TCP's in-band cumulative ACKs are
    data-plane payload and are unaffected). These are the compile
    targets of {!Fault.compile} — build plans there rather than by
    hand.

    Raises [Invalid_argument] on malformed specs (negative times,
    route/rate length mismatch, routes longer than the 6-hop header
    limit, out-of-range link/loss events, probabilities outside
    [0,1], negative delays). *)
