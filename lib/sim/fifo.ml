(* Growable circular-buffer FIFO for the per-link packet queues.
   [Stdlib.Queue] allocates a three-word cons cell on every [push] —
   one per frame per hop on the engine's hottest path; this stores
   elements in a flat array instead, so steady-state push/pop allocate
   nothing. Popped and cleared slots keep their last element until
   overwritten (there is no witness value to reset with); liveness is
   bounded by the queue's high-water mark, which the engine's queue
   limits already bound. *)

type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
}

let create () = { data = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t witness =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' witness in
  for i = 0 to t.len - 1 do
    data'.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- data';
  t.head <- 0

let push t v =
  if t.len = Array.length t.data then grow t v;
  let cap = Array.length t.data in
  let tail = t.head + t.len in
  t.data.(if tail >= cap then tail - cap else tail) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Fifo.pop: empty";
  let v = t.data.(t.head) in
  let head' = t.head + 1 in
  t.head <- (if head' = Array.length t.data then 0 else head');
  t.len <- t.len - 1;
  v

let iter f t =
  let cap = Array.length t.data in
  for i = 0 to t.len - 1 do
    let j = t.head + i in
    f t.data.(if j >= cap then j - cap else j)
  done

let clear t =
  t.head <- 0;
  t.len <- 0
