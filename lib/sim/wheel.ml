(* Timing-wheel event scheduler: a calendar queue over fixed-width
   time buckets with a binary-heap overflow level for far timers.

   The simulator's workload is strongly periodic — per-frame service
   times of a few hundred microseconds and 100 ms control ticks — so
   almost every push lands within a quarter second of the cursor and
   costs O(1) (append to a bucket), and almost every pop scans a
   handful of occupied slots near the cursor. Far timers (flow stops,
   fault-plan boundaries enqueued at bootstrap) overflow into a
   [Pqueue] and migrate into the wheel when the cursor approaches.

   Ordering contract (identical to [Pqueue], byte-for-byte on all
   goldens): minimum float priority first, ties broken FIFO by a
   global insertion sequence number. Entries carry their original
   sequence number through overflow and migration, and the in-bucket
   minimum is selected by exact (priority, seq) comparison, so the pop
   sequence is provably the heap's. A QCheck property in the test
   suite drives both structures through arbitrary interleavings and
   compares pop sequences.

   Geometry: bucket width 2^-12 s (~244 us, a power of two so
   [prio * inv_width] is exact) and 1024 buckets, for a ~250 ms
   horizon that covers the control period. Priorities must be finite,
   non-negative and below ~1e12 s (int conversion of prio/width).

   Invariants:
   - every wheel entry's virtual bucket index lies in
     [cursor, cursor + n_buckets), so physical slot [b land mask] is
     unambiguous;
   - after [migrate], every overflow priority is >= the horizon
     [(cursor + n) * width], hence greater than any wheel entry;
   - the cursor only advances, and never past a non-empty bucket.

   A push whose bucket would fall behind the cursor (a priority equal
   to or barely above the event being handled, after the cursor
   already advanced to a later minimum) is clamped into the cursor
   bucket; the exact in-bucket comparison still finds it first, so
   clamping cannot reorder pops. *)

let n_buckets = 1024
let mask = n_buckets - 1
let width = 1.0 /. 4096.0
let inv_width = 4096.0

type 'a t = {
  counts : int array; (* live entries per physical slot *)
  mutable prios : float array array; (* per-slot parallel arrays *)
  mutable seqs : int array array;
  mutable vals : 'a array array;
  mutable cursor : int; (* virtual bucket index, monotone *)
  mutable next_seq : int; (* global FIFO tie-break counter *)
  mutable size : int; (* wheel + overflow *)
  mutable wheel_count : int; (* wheel only *)
  overflow : (int * 'a) Pqueue.t; (* payload carries original seq *)
  (* Cached minimum located by the last scan: physical slot + index
     within the bucket, priority mirrored in a float array so reads
     and writes stay unboxed. Invalidated by [drop], updated in place
     by a [push] that beats it. *)
  mutable c_valid : bool;
  mutable c_slot : int;
  mutable c_idx : int;
  c_prio : float array;
  mutable c_seq : int;
}

let create ?(capacity = 16) () =
  {
    counts = Array.make n_buckets 0;
    prios = Array.make n_buckets [||];
    seqs = Array.make n_buckets [||];
    vals = Array.make n_buckets [||];
    cursor = 0;
    next_seq = 0;
    size = 0;
    wheel_count = 0;
    overflow = Pqueue.create ~capacity ();
    c_valid = false;
    c_slot = 0;
    c_idx = 0;
    c_prio = Array.make 1 0.0;
    c_seq = 0;
  }

let is_empty t = t.size = 0
let size t = t.size

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.cursor <- 0;
  t.next_seq <- 0;
  t.size <- 0;
  t.wheel_count <- 0;
  t.c_valid <- false;
  Pqueue.clear t.overflow

let horizon t = float_of_int (t.cursor + n_buckets) *. width

(* Append (prio, seq, v) to the bucket for [prio] (clamped to the
   cursor bucket), growing the slot's parallel arrays geometrically.
   The arrays persist across drops, so a slot allocates at most
   log(peak) times over the whole run. *)
let bucket_insert t prio seq v =
  let b =
    let b = int_of_float (prio *. inv_width) in
    if b < t.cursor then t.cursor else b
  in
  let slot = b land mask in
  let n = t.counts.(slot) in
  let cap = Array.length t.prios.(slot) in
  if n = cap then begin
    let cap' = if cap = 0 then 8 else 2 * cap in
    let prios' = Array.make cap' 0.0 in
    let seqs' = Array.make cap' 0 in
    let vals' = Array.make cap' v in
    Array.blit t.prios.(slot) 0 prios' 0 n;
    Array.blit t.seqs.(slot) 0 seqs' 0 n;
    Array.blit t.vals.(slot) 0 vals' 0 n;
    t.prios.(slot) <- prios';
    t.seqs.(slot) <- seqs';
    t.vals.(slot) <- vals'
  end;
  t.prios.(slot).(n) <- prio;
  t.seqs.(slot).(n) <- seq;
  t.vals.(slot).(n) <- v;
  t.counts.(slot) <- n + 1;
  t.wheel_count <- t.wheel_count + 1;
  (* A fresh entry beats the cached minimum only on strictly smaller
     priority: its sequence number is the largest so far, so it loses
     every tie. *)
  if t.c_valid && prio < t.c_prio.(0) then begin
    t.c_slot <- slot;
    t.c_idx <- n;
    t.c_prio.(0) <- prio;
    t.c_seq <- seq
  end

let push t prio v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  if prio < horizon t then bucket_insert t prio seq v
  else Pqueue.push t.overflow prio (seq, v)

(* Move every overflow entry now below the horizon into its bucket.
   Afterwards the overflow minimum (if any) exceeds every wheel entry,
   so scanning the wheel alone yields the global minimum. *)
let migrate t =
  let h = horizon t in
  while (not (Pqueue.is_empty t.overflow)) && Pqueue.top_prio t.overflow < h do
    let prio = Pqueue.top_prio t.overflow in
    let seq, v = Pqueue.top t.overflow in
    Pqueue.drop t.overflow;
    bucket_insert t prio seq v
  done

(* Locate the minimum entry and cache its position. Precondition:
   [t.size > 0]. *)
let find_min t =
  if t.wheel_count = 0 then begin
    (* Everything lives in the overflow: fast-forward the cursor to
       the overflow minimum's bucket so migration is guaranteed to
       move at least that entry in. *)
    let b = int_of_float (Pqueue.top_prio t.overflow *. inv_width) in
    if b > t.cursor then t.cursor <- b
  end;
  migrate t;
  (* Scan to the first non-empty bucket (the cursor never passes a
     non-empty one, so each empty bucket is skipped once per
     rotation), then select the exact (prio, seq) minimum inside. *)
  let b = ref t.cursor in
  while t.counts.(!b land mask) = 0 do
    incr b
  done;
  t.cursor <- !b;
  let slot = !b land mask in
  let prios = t.prios.(slot) and seqs = t.seqs.(slot) in
  let n = t.counts.(slot) in
  let best = ref 0 in
  let bp = ref prios.(0) and bs = ref seqs.(0) in
  for i = 1 to n - 1 do
    let p = prios.(i) in
    if p < !bp || (p = !bp && seqs.(i) < !bs) then begin
      best := i;
      bp := p;
      bs := seqs.(i)
    end
  done;
  t.c_valid <- true;
  t.c_slot <- slot;
  t.c_idx <- !best;
  t.c_prio.(0) <- !bp;
  t.c_seq <- !bs

let top_prio t =
  if t.size = 0 then invalid_arg "Wheel.top_prio: empty";
  if not t.c_valid then find_min t;
  t.c_prio.(0)

let top t =
  if t.size = 0 then invalid_arg "Wheel.top: empty";
  if not t.c_valid then find_min t;
  t.vals.(t.c_slot).(t.c_idx)

let drop t =
  if t.size = 0 then invalid_arg "Wheel.drop: empty";
  if not t.c_valid then find_min t;
  let slot = t.c_slot and idx = t.c_idx in
  let n = t.counts.(slot) - 1 in
  (* Swap-remove; the stale tail value is left in place (payloads are
     immediate ints on the hot path, so nothing is kept alive). *)
  if idx < n then begin
    t.prios.(slot).(idx) <- t.prios.(slot).(n);
    t.seqs.(slot).(idx) <- t.seqs.(slot).(n);
    t.vals.(slot).(idx) <- t.vals.(slot).(n)
  end;
  t.counts.(slot) <- n;
  t.wheel_count <- t.wheel_count - 1;
  t.size <- t.size - 1;
  t.c_valid <- false

let drop_push t prio v =
  if t.size = 0 then push t prio v
  else begin
    drop t;
    push t prio v
  end

let pop t =
  if t.size = 0 then None
  else begin
    if not t.c_valid then find_min t;
    let prio = t.c_prio.(0) in
    let v = t.vals.(t.c_slot).(t.c_idx) in
    drop t;
    Some (prio, v)
  end

let peek t =
  if t.size = 0 then None
  else begin
    if not t.c_valid then find_min t;
    Some (t.c_prio.(0), t.vals.(t.c_slot).(t.c_idx))
  end
