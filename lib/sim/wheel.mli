(** Timing-wheel event scheduler for the simulator's event loop.

    A calendar queue over 1024 fixed-width (2^-12 s) time buckets with
    a {!Pqueue} overflow level for timers beyond the ~250 ms horizon.
    Near-future pushes and pops — the vast majority under the
    simulator's periodic workload — cost O(1); far timers (flow stops,
    fault-plan boundaries) migrate in as the cursor approaches.

    The ordering contract is exactly {!Pqueue}'s: minimum float
    priority first, FIFO among ties by a global insertion sequence
    number. This is what keeps golden traces byte-identical across the
    scheduler swap; a QCheck property in the test suite checks pop
    sequences against the heap on arbitrary interleavings.

    Priorities must be finite, non-negative, and below ~1e12 seconds.
    The API mirrors {!Pqueue} so the engine can swap implementations
    freely. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty wheel. [capacity] pre-sizes the overflow heap (the
    wheel's buckets grow on demand and persist across drops). *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push t prio x] inserts [x] with priority [prio]. O(1) within the
    horizon, O(log overflow) beyond it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties. *)

val peek : 'a t -> (float * 'a) option

val top_prio : 'a t -> float
(** Priority of the minimum element, allocation-free.
    @raise Invalid_argument on an empty wheel. *)

val top : 'a t -> 'a
(** Minimum element itself, without removing it.
    @raise Invalid_argument on an empty wheel. *)

val drop : 'a t -> unit
(** Remove the minimum element (allocation-free {!pop}).
    @raise Invalid_argument on an empty wheel. *)

val drop_push : 'a t -> float -> 'a -> unit
(** [drop] the minimum then [push] with a fresh sequence number, or
    plain [push] on an empty wheel — same observable behaviour as
    {!Pqueue.drop_push}. *)

val clear : 'a t -> unit
(** Drop all elements, retaining bucket capacity. *)
