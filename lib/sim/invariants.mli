(** Runtime invariant checker for the discrete-event datapath.

    The engine's credibility rests on conservation laws that hold at
    every step of a simulation but that no end-to-end assertion can
    see: frames are neither created nor destroyed silently, the MAC
    never puts two interfering links on the air at once, queues stay
    within their configured bound, congestion prices stay
    non-negative, the reorder buffer releases each sequence number
    exactly once and in order, and no flow delivers faster than the
    controller allows it to inject. This module checks all of them
    while a simulation runs.

    The checker is fed by the engine through narrow accounting hooks
    ([on_inject], [on_drop], ...) and inspects the live MAC state
    through a {!view} of closures, so it holds no reference to engine
    internals and can equally be driven by a test harness (which is
    how the negative tests inject bookkeeping bugs and verify they
    are caught).

    Enable it for any simulation by passing [~invariants:(create ())]
    to {!Engine.run}, or for a whole process (every [Engine.run],
    including the figure experiments) by setting the [EMPOWER_CHECK]
    environment variable. A violated invariant raises {!Violation}
    carrying a structured report; with [~mode:`Collect] violations
    accumulate instead and are read back with {!violations}. *)

type reason =
  | Queue_overflow   (** arriving frame hit a full FIFO *)
  | Link_down        (** head-of-line frame on a zero-capacity link *)
  | Collision        (** CSMA collision consumed the frame *)
  | Misroute         (** no next hop matched the source route *)
  | Backlog_cleared  (** link failure flushed its queue *)
  | Fault_injected   (** a fault plan's loss window consumed the frame *)

val reason_name : reason -> string

type violation = {
  time : float;          (** simulation time of the failing check *)
  rule : string;         (** e.g. ["frame-conservation"] *)
  link : int option;     (** offending link id, when localized *)
  node : int option;     (** offending node id, when localized *)
  flow : int option;     (** offending flow id, when localized *)
  detail : string;       (** counter values behind the verdict *)
}

exception Violation of violation

val describe : violation -> string
(** One-line rendering: time, rule, location, detail. *)

val pp_violation : Format.formatter -> violation -> unit

(** How the source may inject frames; bounds the paced-injection
    check. *)
type pacing =
  | Paced         (** UDP under the controller: one frame per 1/rate *)
  | Token_bucket  (** TCP policed by the controller's bucket *)
  | Unpoliced     (** TCP without CC: window-driven, no rate bound *)

(** Read-only window onto the live MAC state, supplied per check.
    All closures must be cheap; [iter_queued l f] calls [f] with the
    flow id of every frame queued on link [l]. *)
type view = {
  n_links : int;
  queue_len : int -> int;
  on_air_flow : int -> int option;  (** flow of the frame on the air *)
  iter_queued : int -> (int -> unit) -> unit;
  domain : int -> int list;         (** interference domain, incl. self *)
  gamma : int -> float;             (** dual variable of the link *)
  link_src : int -> int;            (** transmitting node of a link *)
}

type t

val create : ?mode:[ `Raise | `Collect ] -> unit -> t
(** Fresh checker; [`Raise] (default) throws {!Violation} on the
    first failure, [`Collect] records and keeps going. *)

val env_enabled : unit -> bool
(** [true] iff the [EMPOWER_CHECK] environment variable is set. *)

val configure :
  t -> n_links:int -> queue_limit:int -> frame_bytes:int -> control_period:float -> unit
(** Static simulation parameters; call once before the first hook. *)

val register_flow : t -> flow:int -> pacing:pacing -> rate:float -> unit
(** Declare a flow (ids must be registered in increasing dense order)
    with its pacing discipline and initial total route rate. *)

(** {2 Accounting hooks (called by the engine)} *)

val on_inject : t -> now:float -> flow:int -> unit
(** A frame entered the network at its source. *)

val on_probe : t -> now:float -> flow:int -> unit
(** A recovery reclaim probe entered the network. Probes are armed by
    the backoff schedule, not the pacing loop, so they count for frame
    conservation but not against the paced-injection window. *)

val on_deliver : t -> now:float -> flow:int -> unit
(** A frame reached its destination node. *)

val on_drop : t -> now:float -> flow:int -> link:int option -> reason:reason -> unit
(** A frame left the network without being delivered. *)

val on_release : t -> now:float -> flow:int -> [ `Deliver of int | `Lost of int ] -> unit
(** The reorder buffer released sequence [seq] (delivered in order,
    or declared lost). Checks no-duplicate / no-reorder delivery:
    release events must cover sequence numbers consecutively. *)

val on_rate : t -> flow:int -> rate:float -> unit
(** The controller changed the flow's total route rate (Σ_r x_r). *)

val on_tick : t -> now:float -> view -> unit
(** Control-period boundary: runs the windowed checks (per-flow frame
    attribution against the live queues, paced-injection bound,
    goodput ≤ injection + drained backlog) and resets the window. *)

val check_step : t -> now:float -> view -> unit
(** Per-event checks: global frame conservation against the live
    queues, FIFO bound, single-transmitter-per-domain, non-negative
    finite prices. Call after every processed event. *)

(** {2 Reading results} *)

val violations : t -> violation list
(** Violations recorded so far, oldest first (empty under [`Raise]
    unless the exception was caught). *)

val events_checked : t -> int
(** Number of [check_step] calls — proof the checker actually ran. *)

val frames_injected : t -> int
val frames_delivered : t -> int
val frames_dropped : t -> int
(** Totals across all flows. *)
