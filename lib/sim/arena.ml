(* Flat int encoding of the engine's event variants.

   The event queue used to hold heap-allocated constructors; at ~3
   events per delivered frame that was a constructor block (plus its
   operands) per event, live across the queue residency. Here every
   event is a single immediate int — a 4-bit tag plus packed operands —
   so scheduling allocates zero words and the timing wheel's payload
   arrays hold unboxed immediates. Rare events whose payloads cannot
   pack into 59 bits (ACK reports, equalizer-held packets, fault
   boundaries) park the payload in a typed slot store and pack the
   slot index instead; their stores are tiny and recycled, and they
   sit on cold paths (per control tick, per fault boundary).

   Layouts (bit 0 is the LSB; tag in bits 0-3):

     tag 0  Tx_end          link in 4..
     tag 1  Inject          flow in 4..
     tag 2  Control_tick    no operands
     tag 3  Tcp_ack_arrive  flow in 4..19, ECE echo in 20, cum ack in 21..
     tag 4  Reorder_release flow in 4..19, packet slot in 20..
     tag 5  Tcp_rto         flow in 4..19, deadline float slot in 20..
     tag 6  Flow_start      flow in 4..
     tag 7  Flow_stop       flow in 4..
     tag 8  Reclaim_probe   flow in 4..19, route in 20..27, generation in 28..
     tag 9  Ack_arrive      flow in 4..19, ack slot in 20..
     tag 10 Capacity_change link in 4..23, value float slot in 24..
     tag 11 Loss_change     link in 4..23, value float slot in 24..
     tag 12 Ctrl_change     (drop, delay) pair slot in 4..

   Field widths are enforced by the engine at bootstrap (flow ids need
   16 bits, link ids 20); sequence numbers are already masked to 32
   bits at the source, so the widest layout (tag 3) tops out at 53
   bits — comfortably inside OCaml's 63-bit int. *)

let tag code = code land 0xF

let t_tx_end = 0
let t_inject = 1
let t_control_tick = 2
let t_tcp_ack = 3
let t_reorder_release = 4
let t_tcp_rto = 5
let t_flow_start = 6
let t_flow_stop = 7
let t_reclaim_probe = 8
let t_ack_arrive = 9
let t_capacity_change = 10
let t_loss_change = 11
let t_ctrl_change = 12

let max_flow = 0xFFFF
let max_link = 0xFFFFF

(* hot encoders: pure arithmetic, no bounds checks *)
let tx_end link = link lsl 4
let inject flow = (flow lsl 4) lor t_inject
let control_tick = t_control_tick

let tcp_ack ~flow ~cum ~ece =
  (cum lsl 21) lor (if ece then 1 lsl 20 else 0) lor (flow lsl 4) lor t_tcp_ack

let reorder_release ~flow ~slot =
  (slot lsl 20) lor (flow lsl 4) lor t_reorder_release

let tcp_rto ~flow ~slot = (slot lsl 20) lor (flow lsl 4) lor t_tcp_rto
let flow_start flow = (flow lsl 4) lor t_flow_start
let flow_stop flow = (flow lsl 4) lor t_flow_stop

let reclaim_probe ~flow ~route ~gen =
  if route > 0xFF then invalid_arg "Arena.reclaim_probe: route id too wide";
  (gen lsl 28) lor (route lsl 20) lor (flow lsl 4) lor t_reclaim_probe

let ack_arrive ~flow ~slot = (slot lsl 20) lor (flow lsl 4) lor t_ack_arrive
let capacity_change ~link ~slot = (slot lsl 24) lor (link lsl 4) lor t_capacity_change
let loss_change ~link ~slot = (slot lsl 24) lor (link lsl 4) lor t_loss_change
let ctrl_change ~slot = (slot lsl 4) lor t_ctrl_change

(* decoders *)
let link code = code lsr 4 (* tags 0, 10, 11 share the position *)
let link20 code = (code lsr 4) land 0xFFFFF
let flow code = (code lsr 4) land 0xFFFF
let flow_wide code = code lsr 4 (* tags 1, 6, 7: flow is the whole payload *)
let tcp_ack_cum code = code lsr 21
let tcp_ack_ece code = code land (1 lsl 20) <> 0
let slot20 code = code lsr 20 (* tags 4, 5, 9 *)
let slot24 code = code lsr 24 (* tags 10, 11 *)
let slot4 code = code lsr 4 (* tag 12 *)
let probe_route code = (code lsr 20) land 0xFF
let probe_gen code = code lsr 28

(* Typed slot stores: a growable array plus an explicit free stack.
   [put] hands out a slot, [release] recycles it. A released slot
   keeps its last payload until reuse (there is no witness value to
   overwrite with); stores live for one run, so the transient liveness
   is bounded by the store's high-water mark. *)
module Slots = struct
  type 'a t = {
    mutable data : 'a array;
    mutable free : int array;
    mutable n_free : int;
  }

  let create () = { data = [||]; free = [||]; n_free = 0 }

  let put t v =
    if t.n_free = 0 then begin
      let cap = Array.length t.data in
      let cap' = if cap = 0 then 8 else 2 * cap in
      let data' = Array.make cap' v in
      Array.blit t.data 0 data' 0 cap;
      t.data <- data';
      (* The free stack must hold every slot at once: releases can
         outnumber the slots minted by this grow. *)
      let free' = Array.make cap' 0 in
      for i = 0 to cap' - cap - 1 do
        free'.(i) <- cap' - 1 - i
      done;
      t.free <- free';
      t.n_free <- cap' - cap
    end;
    let slot = t.free.(t.n_free - 1) in
    t.n_free <- t.n_free - 1;
    t.data.(slot) <- v;
    slot

  let get t slot = t.data.(slot)

  let release t slot =
    t.free.(t.n_free) <- slot;
    t.n_free <- t.n_free + 1
end

(* Float-specialised slots: payloads live unboxed in a float array. *)
module Fslots = struct
  type t = {
    mutable data : float array;
    mutable free : int array;
    mutable n_free : int;
  }

  let create () = { data = [||]; free = [||]; n_free = 0 }

  let put t v =
    if t.n_free = 0 then begin
      let cap = Array.length t.data in
      let cap' = if cap = 0 then 8 else 2 * cap in
      let data' = Array.make cap' 0.0 in
      Array.blit t.data 0 data' 0 cap;
      t.data <- data';
      let free' = Array.make cap' 0 in
      for i = 0 to cap' - cap - 1 do
        free'.(i) <- cap' - 1 - i
      done;
      t.free <- free';
      t.n_free <- cap' - cap
    end;
    let slot = t.free.(t.n_free - 1) in
    t.n_free <- t.n_free - 1;
    t.data.(slot) <- v;
    slot

  let get t slot = t.data.(slot)

  let release t slot =
    t.free.(t.n_free) <- slot;
    t.n_free <- t.n_free + 1
end
