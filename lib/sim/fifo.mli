(** Growable circular-buffer FIFO.

    Replaces [Stdlib.Queue] on the engine's per-link packet queues:
    same FIFO discipline, but elements live in a flat array, so
    steady-state push/pop allocate nothing (the backing array doubles
    on overflow). Popped or cleared slots retain their last element
    until overwritten; transient liveness is bounded by the queue's
    high-water mark. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append at the back. *)

val pop : 'a t -> 'a
(** Remove and return the front element.
    @raise Invalid_argument when empty. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back, like [Queue.iter]. *)

val clear : 'a t -> unit
