type transport = Udp | Tcp_transport

type flow_spec = {
  src : int;
  dst : int;
  routes : Paths.t list;
  init_rates : float list;
  workload : Workload.t;
  transport : transport;
  tcp_params : Tcp.params option;
  start_time : float;
  stop_time : float option;
}

type buffer_policy = Static | Dynamic_threshold of float

type buffers = {
  policy : buffer_policy;
  pool_bytes : int;
  ecn_threshold_bytes : int option;
}

type config = {
  frame_bytes : int;
  queue_limit : int;
  delta : float;
  gamma_alpha : float;
  cc_gain : float;
  enable_cc : bool;
  adaptive_alpha : bool;
  delay_equalize : bool;
  estimate_capacities : bool;
  control_period : float;
  collision_prob : float;
  route_reclaim : bool;
  price_drain : float;
  recovery : Recovery.config option;
  buffers : buffers option;
}

let default_config =
  {
    frame_bytes = 12000;
    queue_limit = 100;
    delta = 0.0;
    gamma_alpha = 0.02;
    cc_gain = 50.0;
    enable_cc = true;
    adaptive_alpha = true;
    delay_equalize = false;
    estimate_capacities = true;
    control_period = 0.1;
    collision_prob = 0.12;
    route_reclaim = false;
    price_drain = 0.0;
    recovery = None;
    buffers = None;
  }

type flow_result = {
  received_bytes : int;
  goodput_series : (float * float) list;
  rate_series : (float * float array) list;
  completions : (float * float) list;
  frames_lost : int;
  frames_dropped : int;
  final_rates : float array;
  mean_delay : float;
  p95_delay : float;
}

type perf = {
  wall_s : float;
  events_per_s : float;
  wall_per_sim_s : float;
  peak_queue_depth : int;
}

let zero_perf =
  { wall_s = 0.0; events_per_s = 0.0; wall_per_sim_s = 0.0; peak_queue_depth = 0 }

type result = {
  flows : flow_result array;
  duration : float;
  queue_drops : int;
  ecn_marks : int;
  buffer_peak_bytes : int;
  events_processed : int;
  perf : perf;
}

let strip_perf r = { r with perf = zero_perf }

(* ---------- internal state ---------- *)

(* The layer-2.5 header travels de-structured: [seq] and the running
   q_r accumulator live directly in the packet record instead of a
   nested [Header.t], so the per-hop price stamp mutates one field
   rather than allocating a fresh header. The source-route itself
   never rides in the packet at all — forwarding is pre-resolved into
   per-(flow, route) plan arrays at bootstrap (see [plans] in [run]). *)
type packet = {
  flow : int;
  route_idx : int;
  seq : int;
  mutable qr : float;  (* accumulated route cost; saturates at Header.qr_max *)
  bytes : int;
  sent_at : float;
  links : int array;
  mutable hop : int;
  mutable ce : bool;  (* ECN congestion-experienced; sticky across hops *)
}

type file_rec = {
  arrival : float;
  fbytes : int;
  mutable started_at : float;
  mutable done_at : float;  (* < 0 while pending *)
}

(* Per-link hot floats (service timestamps, windowed arrival bits) live
   in dedicated float arrays rather than record fields: a mutable float
   field of a mixed record is boxed and every write allocates, while a
   float-array store does not. *)
type link_state = {
  queue : packet Fifo.t;
  mutable on_air : packet option;
  mutable air_collided : bool;
  mutable air_faulted : bool;  (* frame-loss fault hit this transmission *)
  mutable had_traffic : bool;
  estimator : Estimator.t;
}

type flow_state = {
  id : int;
  spec : flow_spec;
  routes : Paths.t array;
  route_links : int array array;
  route_codes : Route_codec.route array;
  x : float array;
  x_bar : float array;
  alpha : Alpha.t;
  mutable next_seq : int;
  mutable active : bool;
  mutable inject_scheduled : bool;
  (* workload *)
  files : file_rec array;       (* empty for Saturated *)
  mutable sent_bytes : int;     (* handed to layer 2.5 by the app *)
  (* receiver *)
  reorder : packet Reorder.t;
  collector : Ack.collector;
  equalizer : Reorder.Equalizer.t;
  mutable received_bytes : int;
  mutable delivered_in_order_bytes : int;
  mutable lost : int;
  mutable src_dropped : int;
  (* failure detection: bytes injected per route since the last ACK,
     and how many consecutive ACKs reported nothing back *)
  injected_window : float array;
  dead_acks : int array;
  (* self-healing (config.recovery, UDP only): the route-death
     detector, the reclaim-probe attempt counters, and the
     routing-estimated rates restored when a dead route heals *)
  detector : Recovery.Detector.t option;
  reclaim_attempt : int array;
  (* Probe-chain generation per route: bumped on every route death so
     probes scheduled by an earlier outage become stale no-ops instead
     of running as a second concurrent chain under fast flapping. *)
  reclaim_gen : int array;
  init_x : float array;
  (* tcp — the token bucket's floats live in per-flow arrays in [run] *)
  tcp : Tcp.t option;
  (* traces — goodput-bin floats likewise *)
  mutable goodput_rev : (float * float) list;
  mutable rates_rev : (float * float array) list;
  delay_hist : Obs.Metrics.Histogram.t;  (* every one-way frame delay *)
  reverse_latency : float;
}

(* Events travel through the wheel as flat ints — a 4-bit tag plus
   packed operands (see [Arena] for the layout table). Payloads that
   cannot pack (ACK reports, equalizer-held packets, fault boundary
   values) ride in typed slot stores and are released on dispatch. *)

let mbps_of_bits bits seconds = bits /. 1e6 /. seconds

let run ?(config = default_config) ?invariants ?trace ?flight ?prof
    ?(link_events = []) ?(loss_events = []) ?(ctrl_events = []) rng g dom
    ~flows ~duration =
  let n_links = Multigraph.num_links g in
  let inv =
    match invariants with
    | Some _ -> invariants
    | None -> if Invariants.env_enabled () then Some (Invariants.create ()) else None
  in
  (* Observability: an explicit sink wins; otherwise a process-global
     metrics registry (--metrics / EMPOWER_METRICS) attaches a
     recorder. Sinks only observe — they consume no randomness and
     mutate no engine state, so results are identical either way; with
     no sink every emission site is a single branch on [trace_on]. *)
  let recorder =
    match trace with
    | Some _ -> None
    | None -> (
      match Obs.Runtime.metrics () with
      | Some reg -> Some (Obs.Recorder.create ~domain_of:(Domain.domain dom) reg)
      | None -> None)
  in
  let trace =
    match (trace, recorder) with
    | (Some _ as t), _ -> t
    | None, Some r -> Some (Obs.Recorder.sink r)
    | None, None -> None
  in
  let trace_on = Option.is_some trace in
  (* Hot emission sites use the two-step [accept]/[push] protocol on
     this sink so a sampled sink ([Trace.sampled]) skips even the
     construction of the event record for discarded offers; [emit]
     stays for cold (per-control-tick or rarer) sites. *)
  let sink = match trace with Some s -> s | None -> Obs.Trace.of_fn ignore in
  let emit ev = if trace_on then Obs.Trace.emit sink ev in
  (* Flight recorder: explicit argument, or ambient via EMPOWER_FLIGHT
     (the always-on crash recorder). Like a sink it only observes —
     no randomness, no engine state — so results are bit-identical
     with or without it. On an invariant trip or any other exception
     escaping the event loop the ring is dumped to JSONL. *)
  let flight =
    match flight with
    | Some _ -> flight
    | None -> if Obs.Flight.env_enabled () then Some (Obs.Flight.of_env ()) else None
  in
  let fl_on = Option.is_some flight in
  let fl =
    match flight with Some f -> f | None -> Obs.Flight.create ~capacity:1 ()
  in
  (* Live link capacities: start from the graph's and follow the
     scheduled capacity-change / failure events. *)
  let caps = Multigraph.capacities g in
  let cap l = caps.(l) in
  (* Fault state driven by the scheduled loss / control-fault events:
     per-link frame-loss probability and the control plane's current
     (ack drop probability, extra ack latency) pair. All zero unless a
     fault plan says otherwise, and the random draws they guard happen
     only while a fault is active — so a run with no fault events
     consumes exactly the same randomness as before. *)
  let loss = Array.make n_links 0.0 in
  (* Hot mutable floats live in one-slot (or per-link / per-flow)
     [float array]s: a float array stores its elements unboxed, so
     updating one is a plain store, where assigning a [float ref]
     allocates a fresh boxed float on every write. *)
  let ctrl_drop = Array.make 1 0.0 in
  let ctrl_delay = Array.make 1 0.0 in
  let queue_drops = ref 0 in
  let events_processed = ref 0 in
  let now = Array.make 1 0.0 in
  let n_flows = List.length flows in
  if n_flows > Arena.max_flow then
    invalid_arg "Engine.run: too many flows for the event encoding";
  if n_links > Arena.max_link then
    invalid_arg "Engine.run: too many links for the event encoding";
  (* Payload stores for the events whose operands don't pack into the
     int encoding; slots are released as the events dispatch. *)
  let ack_slots : Ack.t Arena.Slots.t = Arena.Slots.create () in
  let pkt_slots : packet Arena.Slots.t = Arena.Slots.create () in
  let pair_slots : (float * float) Arena.Slots.t = Arena.Slots.create () in
  let f_slots = Arena.Fslots.create () in
  (* Pre-size the event queue from the topology: steady state holds at
     most one Tx_end per link plus a handful of pacing/ack/timer events
     per flow, and the bootstrap enqueues every fault event up front. *)
  let q =
    Wheel.create
      ~capacity:
        (64 + (2 * n_links) + (8 * n_flows)
        + List.length link_events + List.length loss_events
        + List.length ctrl_events)
      ()
  in
  (* Deferred-pop fusion: the event being handled stays at the wheel
     minimum while its handler runs ([pending_drop] is set); the first
     event the handler schedules replaces it via [Wheel.drop_push],
     later ones are plain pushes, and a handler that schedules nothing
     has its minimum dropped afterwards. This is sound because every
     scheduled event lands at [now + dt] with [dt >= 0] and [now >=]
     the minimum's timestamp, so no push can overtake the in-flight
     minimum (FIFO tie-break: equal priority loses to the older
     sequence number). *)
  let pending_drop = ref false in
  let schedule_abs t ev =
    if !pending_drop then begin
      pending_drop := false;
      Wheel.drop_push q t ev
    end
    else Wheel.push q t ev
  in
  let schedule dt ev = schedule_abs (now.(0) +. dt) ev in
  (* Per-flow hot floats (see the float-array note above): TCP token
     bucket and goodput-bin accumulators, indexed by flow id. *)
  let tokens = Array.make (max 1 n_flows) (float_of_int config.frame_bytes) in
  let tokens_at = Array.make (max 1 n_flows) 0.0 in
  let bin_start = Array.make (max 1 n_flows) 0.0 in
  let bin_bits = Array.make (max 1 n_flows) 0.0 in

  (* --- links --- *)
  let links =
    (* Estimator streams are split off [rng] in link-id order by an
       explicit loop: Array.init's evaluation order is unspecified and
       must not decide the seeding (see the determinism contract in
       the interface). *)
    let est_rngs = Array.init n_links (fun _ -> rng) in
    for l = 0 to n_links - 1 do
      est_rngs.(l) <- Rng.split rng
    done;
    Array.init n_links (fun l ->
        {
          queue = Fifo.create ();
          on_air = None;
          air_collided = false;
          air_faulted = false;
          had_traffic = false;
          estimator = Estimator.create est_rngs.(l) ~initial_capacity:(cap l);
        })
  in
  let last_service = Array.make (max 1 n_links) (-1.0) in
  let window_bits = Array.make (max 1 n_links) 0.0 in
  (* Recovery randomness (backoff jitter) lives on its own stream,
     split off only when recovery is enabled — a run with recovery off
     consumes exactly the historical draw sequence. *)
  let rec_rng =
    match config.recovery with Some _ -> Some (Rng.split rng) | None -> None
  in
  let d_est l =
    if config.estimate_capacities then begin
      let e = Estimator.estimate links.(l).estimator in
      if e <= 0.01 then 100.0 else 1.0 /. e
    end
    else if cap l <= 0.0 then infinity
    else 1.0 /. cap l
  in
  let gamma = Array.make n_links 0.0 in
  (* Only links on some flow's route ever carry data-plane traffic;
     only links interfering with those can accumulate airtime and
     gamma. Restricting the control-plane loops to these sets keeps
     the 100 ms tick cost independent of the network size. *)
  let is_carrier = Array.make n_links false in
  List.iter
    (fun (spec : flow_spec) ->
      List.iter
        (fun p -> List.iter (fun l -> is_carrier.(l) <- true) p.Paths.links)
        spec.routes)
    flows;
  let carrier_links =
    List.filter (fun l -> is_carrier.(l)) (List.init n_links Fun.id)
  in
  let is_priced = Array.make n_links false in
  List.iter
    (fun l -> List.iter (fun i -> is_priced.(i) <- true) (Domain.domain dom l))
    carrier_links;
  let priced_links =
    List.filter (fun l -> is_priced.(l)) (List.init n_links Fun.id)
  in
  (* Interference domains as arrays: the list versions forced either a
     fold closure or a boxed float accumulator on every walk. *)
  let dom_arr = Array.init n_links (fun l -> Array.of_list (Domain.domain dom l)) in
  (* Scratch cells for float accumulation on the per-frame paths. A
     float accumulator threaded through a local recursive function is
     boxed on every iteration (the generic calling convention applies
     to local functions too); accumulating into a flat float array
     keeps the loop allocation-free. Slot 0: domain sums; slot 1: the
     route-pick walk. *)
  let facc = [| 0.0; 0.0 |] in
  (* Congestion price of link l: d_l * sum of gamma over I_l. Runs on
     every enqueue. *)
  let link_price l =
    let d = dom_arr.(l) in
    facc.(0) <- 0.0;
    for i = 0 to Array.length d - 1 do
      facc.(0) <- facc.(0) +. gamma.(d.(i))
    done;
    d_est l *. facc.(0)
  in

  (* Per-node egress map: interface hash -> outgoing link id toward
     that hash's owner. Used by the source-route forwarding. *)
  let egress_by_hash = Array.make (Multigraph.n_nodes g) [] in
  Array.iter
    (fun (lk : Multigraph.link) ->
      let h = Route_codec.iface_hash ~node:lk.Multigraph.dst ~tech:lk.Multigraph.tech in
      egress_by_hash.(lk.Multigraph.src) <-
        (h, lk.Multigraph.id) :: egress_by_hash.(lk.Multigraph.src))
    (Multigraph.links g);
  let my_ifaces =
    Array.init (Multigraph.n_nodes g) (fun v ->
        List.init (Multigraph.n_techs g) (fun k -> Route_codec.iface_hash ~node:v ~tech:k))
  in

  (* --- finite shared buffers (config.buffers) --- *)
  (* Byte-pool arbitration of a node's egress (MAC) queues. Admission
     and marking are pure functions of occupancy — no randomness — so
     the rng stream is identical with the feature on or off, and with
     [buffers = None] none of this state is touched (the legacy
     per-queue frame limit applies unchanged). Occupancy moves at
     exactly two places: charged on admission in [enqueue_on_link],
     released when the frame leaves its queue (MAC grant pop in
     [try_start], or the backlog flush when a link dies). *)
  let buf_on = config.buffers <> None in
  let link_src = Array.make (max 1 n_links) 0 in
  let node_ports = Array.make (Multigraph.n_nodes g) 0 in
  if buf_on then
    Array.iter
      (fun (lk : Multigraph.link) ->
        link_src.(lk.Multigraph.id) <- lk.Multigraph.src;
        node_ports.(lk.Multigraph.src) <- node_ports.(lk.Multigraph.src) + 1)
      (Multigraph.links g);
  let port_occ = Array.make (max 1 n_links) 0 in
  let node_occ = Array.make (if buf_on then Multigraph.n_nodes g else 1) 0 in
  let ecn_marks = ref 0 in
  let buffer_peak = ref 0 in
  let buf_admit b l bytes =
    let node = link_src.(l) in
    node_occ.(node) + bytes <= b.pool_bytes
    &&
    match b.policy with
    | Static ->
      (* Equal static partition of the pool across the node's ports. *)
      port_occ.(l) + bytes <= b.pool_bytes / max 1 node_ports.(node)
    | Dynamic_threshold alpha ->
      (* Choudhury–Hahne DT: a port may hold up to alpha times the
         node's remaining free pool, so thresholds shrink as the pool
         fills and idle ports cede space to busy ones. *)
      float_of_int (port_occ.(l) + bytes)
      <= alpha *. float_of_int (b.pool_bytes - node_occ.(node))
  in
  let buf_charge l bytes =
    let node = link_src.(l) in
    port_occ.(l) <- port_occ.(l) + bytes;
    node_occ.(node) <- node_occ.(node) + bytes;
    if node_occ.(node) > !buffer_peak then buffer_peak := node_occ.(node)
  in
  let buf_release l bytes =
    port_occ.(l) <- port_occ.(l) - bytes;
    let node = link_src.(l) in
    node_occ.(node) <- node_occ.(node) - bytes
  in

  (* --- flows --- *)
  let reverse_latency_of spec =
    match Dijkstra.shortest_path g ~src:spec.dst ~dst:spec.src with
    | None -> 0.005
    | Some (p, _) ->
      List.fold_left
        (fun acc l ->
          acc +. Units.tx_time ~capacity_mbps:(Multigraph.capacity g l) ~bytes:120
          +. 0.001)
        0.0 p.Paths.links
  in
  let make_flow id (spec : flow_spec) =
    if spec.start_time < 0.0 then invalid_arg "Engine.run: negative start_time";
    if List.length spec.routes <> List.length spec.init_rates then
      invalid_arg "Engine.run: routes/init_rates length mismatch";
    let routes = Array.of_list spec.routes in
    Array.iter
      (fun p ->
        if Paths.hops p > Route_codec.max_hops then
          invalid_arg "Engine.run: route exceeds 6 hops";
        if Paths.src g p <> spec.src || Paths.dst g p <> spec.dst then
          invalid_arg "Engine.run: route endpoints mismatch")
      routes;
    let n_routes = max 1 (Array.length routes) in
    let longest =
      Array.fold_left (fun acc p -> max acc (Paths.hops p)) 1 routes
    in
    let files =
      match spec.workload with
      | Workload.Saturated -> [||]
      | Workload.File { bytes } ->
        [| { arrival = 0.0; fbytes = bytes; started_at = -1.0; done_at = -1.0 } |]
      | Workload.Poisson_files _ as w ->
        let times = Workload.arrival_times (Rng.split rng) w in
        let bytes =
          match w with Workload.Poisson_files { bytes; _ } -> bytes | _ -> 0
        in
        Array.of_list
          (List.map
             (fun t -> { arrival = t; fbytes = bytes; started_at = -1.0; done_at = -1.0 })
             times)
      | Workload.Empirical { files; _ } ->
        (* A pre-sampled schedule (Loadgen): no rng split consumed, so
           Empirical flows leave every other flow's stream untouched. *)
        let prev = ref 0.0 in
        Array.of_list
          (List.map
             (fun (t, b) ->
               if not (Float.is_finite t) || t < 0.0 || t < !prev then
                 invalid_arg
                   "Engine.run: Empirical arrivals must be nonnegative and \
                    nondecreasing";
               if b <= 0 then
                 invalid_arg "Engine.run: Empirical transfer bytes must be positive";
               prev := t;
               { arrival = t; fbytes = b; started_at = -1.0; done_at = -1.0 })
             files)
    in
    {
      id;
      spec;
      routes;
      route_links = Array.map (fun p -> Array.of_list p.Paths.links) routes;
      route_codes = Array.map (Route_codec.route_of_path g) routes;
      x = Array.of_list spec.init_rates;
      x_bar = Array.of_list spec.init_rates;
      alpha =
        (if config.adaptive_alpha then
           Alpha.create
             ~single_path:(Array.length routes <= 1)
             ~longest_route_hops:longest
         else Alpha.fixed 0.02);
      next_seq = 0;
      active = false;
      inject_scheduled = false;
      files;
      sent_bytes = 0;
      reorder =
        Reorder.create
          ~declare_losses:(spec.transport = Udp)
          ~n_routes ();
      collector = Ack.collector ~flow:id ~n_routes;
      equalizer = Reorder.Equalizer.create ~n_routes;
      received_bytes = 0;
      delivered_in_order_bytes = 0;
      lost = 0;
      src_dropped = 0;
      injected_window = Array.make n_routes 0.0;
      dead_acks = Array.make n_routes 0;
      detector =
        (* The reclaim probes recovery injects would corrupt TCP's
           reordering and ack machinery, so TCP flows keep the legacy
           probe-floor path (route_reclaim). *)
        (match (config.recovery, spec.transport) with
        | Some rc, Udp when Array.length routes > 0 ->
          Some
            (Recovery.Detector.create rc ~n_routes:(Array.length routes)
               ~now:spec.start_time)
        | _ -> None);
      reclaim_attempt = Array.make n_routes 0;
      reclaim_gen = Array.make n_routes 0;
      init_x = Array.of_list spec.init_rates;
      tcp =
        (match spec.transport with
        | Udp -> None
        | Tcp_transport ->
          let base =
            match spec.tcp_params with Some p -> p | None -> Tcp.default_params
          in
          let params = { base with Tcp.segment_bytes = config.frame_bytes } in
          Some (Tcp.create ~params ~total_bytes:(Workload.total_bytes spec.workload) ()));
      goodput_rev = [];
      rates_rev = [];
      delay_hist = Obs.Metrics.Histogram.create ();
      reverse_latency = reverse_latency_of spec;
    }
  in
  let flow_states =
    (* Explicit left-to-right construction: [make_flow] consumes rng
       splits (Poisson arrival draws), so evaluation order is part of
       the seeding contract and List.mapi does not guarantee one. *)
    let rev, _ =
      List.fold_left
        (fun (acc, i) spec -> (make_flow i spec :: acc, i + 1))
        ([], 0) flows
    in
    Array.of_list (List.rev rev)
  in

  (* --- pre-resolved forwarding plans --- *)
  (* The per-hop forwarding decision (destination test, next-hop hash
     lookup, egress resolution) is a pure function of the static route
     code and the arrival node, so it is resolved once per (flow,
     route) here instead of per frame in [handle_tx_end].
     [plans.(flow).(route).(hop)] is the action after the packet's
     hop-th transmission: the next link id, [plan_deliver], or
     [plan_misroute]. The chain follows the codec walk itself — under
     an interface-hash collision it can diverge from [route_links],
     and the plan must reproduce exactly where the frame really
     goes. *)
  let plan_deliver = -1 and plan_misroute = -2 in
  let resolve_plan first_link code =
    let steps = ref [] in
    let rec go l n =
      (* A codec walk revisiting a node repeats its decision forever;
         bounding the chain by the node count turns that hang into an
         error at bootstrap. *)
      if n > Multigraph.n_nodes g then
        invalid_arg "Engine.run: source route does not terminate";
      let arrived = (Multigraph.link g l).Multigraph.dst in
      if Route_codec.is_destination code ~my_ifaces:my_ifaces.(arrived) then
        steps := plan_deliver :: !steps
      else
        match Route_codec.next_hop code ~my_ifaces:my_ifaces.(arrived) with
        | None -> steps := plan_misroute :: !steps
        | Some next_hash -> (
          match List.assoc_opt next_hash egress_by_hash.(arrived) with
          | None -> steps := plan_misroute :: !steps
          | Some next_link ->
            steps := next_link :: !steps;
            go next_link (n + 1))
    in
    go first_link 0;
    Array.of_list (List.rev !steps)
  in
  let plans =
    Array.map
      (fun f ->
        Array.mapi
          (fun ri code -> resolve_plan f.route_links.(ri).(0) code)
          f.route_codes)
      flow_states
  in

  (* --- invariant checker wiring --- *)
  (match inv with
  | None -> ()
  | Some t ->
    let inv_queue_limit =
      (* With a shared byte pool the per-queue frame bound is pool
         capacity in frames, not the (bypassed) legacy limit. *)
      match config.buffers with
      | None -> config.queue_limit
      | Some b ->
        max config.queue_limit ((b.pool_bytes / max 1 config.frame_bytes) + 1)
    in
    Invariants.configure t ~n_links ~queue_limit:inv_queue_limit
      ~frame_bytes:config.frame_bytes ~control_period:config.control_period;
    Array.iter
      (fun f ->
        let pacing =
          match (f.spec.transport, f.spec.workload) with
          | Udp, Workload.Empirical { pacing = Workload.Poisson_paced; _ } ->
            (* Poisson frame gaps fluctuate around the CBR budget; the
               token-bucket class grants the burst slack that keeps the
               checker's paced-injection bound sound (overflow odds at
               the extra 8-frame + quarter-second depth are ~1e-9). *)
            Invariants.Token_bucket
          | Udp, _ -> Invariants.Paced
          | Tcp_transport, _ ->
            if config.enable_cc then Invariants.Token_bucket
            else Invariants.Unpoliced
        in
        Invariants.register_flow t ~flow:f.id ~pacing
          ~rate:(Array.fold_left ( +. ) 0.0 f.x))
      flow_states);
  let inv_view =
    lazy
      {
        Invariants.n_links;
        queue_len = (fun l -> Fifo.length links.(l).queue);
        on_air_flow =
          (fun l ->
            match links.(l).on_air with Some p -> Some p.flow | None -> None);
        iter_queued =
          (fun l k -> Fifo.iter (fun (p : packet) -> k p.flow) links.(l).queue);
        domain = (fun l -> Domain.domain dom l);
        gamma = (fun l -> gamma.(l));
        link_src = (fun l -> (Multigraph.link g l).Multigraph.src);
      }
  in
  let inv_inject f =
    match inv with Some t -> Invariants.on_inject t ~now:now.(0) ~flow:f | None -> ()
  in
  let inv_deliver f =
    match inv with Some t -> Invariants.on_deliver t ~now:now.(0) ~flow:f | None -> ()
  in
  let inv_drop ~link ~reason f =
    match inv with
    | Some t -> Invariants.on_drop t ~now:now.(0) ~flow:f ~link ~reason
    | None -> ()
  in
  (* Split per event kind so the polymorphic-variant payload is only
     constructed when a checker is attached. *)
  let inv_release_deliver f seq =
    match inv with
    | Some t -> Invariants.on_release t ~now:now.(0) ~flow:f (`Deliver seq)
    | None -> ()
  in
  let inv_release_lost f seq =
    match inv with
    | Some t -> Invariants.on_release t ~now:now.(0) ~flow:f (`Lost seq)
    | None -> ()
  in

  (* --- goodput bins --- *)
  let flush_bins_upto f t =
    while bin_start.(f.id) +. 1.0 <= t do
      f.goodput_rev <-
        (bin_start.(f.id) +. 1.0, mbps_of_bits bin_bits.(f.id) 1.0) :: f.goodput_rev;
      bin_bits.(f.id) <- 0.0;
      bin_start.(f.id) <- bin_start.(f.id) +. 1.0
    done
  in

  (* --- MAC --- *)
  (* O(1) domain-idle test: [air_busy.(l)] counts how many links of
     I_l are on the air right now, maintained at the four on_air
     transitions. Sound because the interference matrix is symmetric
     by construction (Domain.create): a grant on [g] bumps exactly the
     links whose domains contain [g]. Replaces an O(|I_l|) scan per
     [try_start] — which made the grant fan-out after a Tx_end
     quadratic in the domain size. *)
  let air_busy = Array.make (max 1 n_links) 0 in
  let air_set l =
    let d = dom_arr.(l) in
    for i = 0 to Array.length d - 1 do
      air_busy.(d.(i)) <- air_busy.(d.(i)) + 1
    done
  in
  let air_clear l =
    let d = dom_arr.(l) in
    for i = 0 to Array.length d - 1 do
      air_busy.(d.(i)) <- air_busy.(d.(i)) - 1
    done
  in
  let domain_free l = air_busy.(l) = 0 in
  let collisions = ref 0 in
  let rec try_start l =
    let st = links.(l) in
    if st.on_air = None && (not (Fifo.is_empty st.queue)) && domain_free l then begin
      let pkt = Fifo.pop st.queue in
      if buf_on then buf_release l pkt.bytes;
      st.on_air <- Some pkt;
      air_set l;
      last_service.(l) <- now.(0);
      (* CSMA/CA contention: the more backlogged stations share the
         collision domain, the likelier two of them pick the same
         slot. A collided frame still occupies the medium (the waste
         the delta margin of (3) buys headroom against) but is lost.
         With the controller keeping airtime below 1 - delta, queues
         stay short and collisions stay rare; blasting without CC
         keeps every contender backlogged and pays the full price. *)
      (if config.collision_prob > 0.0 then begin
         let d = dom_arr.(l) in
         let contenders = ref 0 in
         for i = 0 to Array.length d - 1 do
           let l' = d.(i) in
           if l' <> l && not (Fifo.is_empty links.(l').queue) then
             incr contenders
         done;
         let contenders = !contenders in
         let p_ok = (1.0 -. config.collision_prob) ** float_of_int contenders in
         st.air_collided <- Rng.float rng > p_ok;
         if st.air_collided then incr collisions
       end
       else st.air_collided <- false);
      (* Injected frame loss (fault plans): drawn after the collision
         draw, and only while a loss window is active on this link, so
         fault-free runs consume no extra randomness. Like a
         collision, a lossy frame still burns its airtime. *)
      st.air_faulted <-
        (not st.air_collided) && loss.(l) > 0.0 && Rng.float rng < loss.(l);
      let cap_l = cap l in
      if cap_l <= 0.0 then begin
        (* Link died under us: drop the frame. *)
        st.on_air <- None;
        air_clear l;
        incr queue_drops;
        inv_drop ~link:(Some l) ~reason:Invariants.Link_down pkt.flow;
        if fl_on then
          Obs.Flight.drop fl ~t_s:now.(0) ~link:(Some l) ~flow:pkt.flow
            ~seq:pkt.seq ~reason:Obs.Trace.Link_down;
        if trace_on && Obs.Trace.accept sink then
          Obs.Trace.push sink
            (Obs.Trace.Drop
               {
                 t = now.(0);
                 link = Some l;
                 flow = pkt.flow;
                 seq = pkt.seq;
                 reason = Obs.Trace.Link_down;
               });
        try_start l
      end
      else begin
        (* [Units.tx_time] inlined (same expression, so bit-identical):
           a cross-module call with a float argument boxes the
           argument and the result on every grant. *)
        let airtime = float_of_int pkt.bytes /. (cap_l *. 1e6 /. 8.0) in
        if fl_on then
          Obs.Flight.grant fl ~t_s:now.(0) ~link:l ~flow:pkt.flow
            ~seq:pkt.seq ~collided:st.air_collided ~airtime;
        if trace_on && Obs.Trace.accept sink then
          Obs.Trace.push sink
            (Obs.Trace.Mac_grant
               {
                 t = now.(0);
                 link = l;
                 flow = pkt.flow;
                 seq = pkt.seq;
                 collided = st.air_collided;
                 airtime;
               });
        schedule airtime (Arena.tx_end l)
      end
    end
  in
  (* Candidate scratch for [try_start_domain], sized to the largest
     interference domain: the filter/sort used to allocate two lists
     and a comparator closure per Tx_end — the single biggest
     steady-state allocation site. [try_start] never re-enters
     [try_start_domain], so one buffer suffices. *)
  let tsd_scratch =
    Array.make
      (max 1 (Array.fold_left (fun m d -> max m (Array.length d)) 0 dom_arr))
      0
  in
  let try_start_domain l =
    (* Serve backlogged links of the freed domain,
       least-recently-served first (CSMA fairness). Insertion sort on
       (last_service, id) — a total order, so the result is exactly
       what the old List.sort produced; domains are small (a handful
       of links), where insertion sort is also the fastest choice. *)
    let d = dom_arr.(l) in
    let n = Array.length d in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let l' = d.(i) in
      if
        (match links.(l').on_air with None -> true | Some _ -> false)
        && not (Fifo.is_empty links.(l').queue)
      then begin
        tsd_scratch.(!m) <- l';
        incr m
      end
    done;
    let m = !m in
    for i = 1 to m - 1 do
      let v = tsd_scratch.(i) in
      let j = ref (i - 1) in
      while
        !j >= 0
        &&
        let u = tsd_scratch.(!j) in
        let c = Float.compare last_service.(u) last_service.(v) in
        c > 0 || (c = 0 && u > v)
      do
        tsd_scratch.(!j + 1) <- tsd_scratch.(!j);
        decr j
      done;
      tsd_scratch.(!j + 1) <- v
    done;
    for i = 0 to m - 1 do
      try_start tsd_scratch.(i)
    done
  in
  let enqueue_on_link l pkt =
    let st = links.(l) in
    window_bits.(l) <- window_bits.(l) +. (8.0 *. float_of_int pkt.bytes);
    st.had_traffic <- true;
    let admitted =
      match config.buffers with
      | None -> Fifo.length st.queue < config.queue_limit
      | Some b -> buf_admit b l pkt.bytes
    in
    if not admitted then begin
      incr queue_drops;
      inv_drop ~link:(Some l) ~reason:Invariants.Queue_overflow pkt.flow;
      if fl_on then
        Obs.Flight.drop fl ~t_s:now.(0) ~link:(Some l) ~flow:pkt.flow
          ~seq:pkt.seq ~reason:Obs.Trace.Queue_overflow;
      if trace_on && Obs.Trace.accept sink then
        Obs.Trace.push sink
          (Obs.Trace.Drop
             {
               t = now.(0);
               link = Some l;
               flow = pkt.flow;
               seq = pkt.seq;
               reason = Obs.Trace.Queue_overflow;
             })
    end
    else begin
      (if buf_on then begin
         buf_charge l pkt.bytes;
         (* ECN: mark-on-enqueue once the port's occupancy (frame
            included) reaches the threshold; the CE bit is sticky
            across hops and echoed to the sender by the receiver. *)
         match config.buffers with
         | Some { ecn_threshold_bytes = Some th; _ }
           when port_occ.(l) >= th ->
           if not pkt.ce then begin
             pkt.ce <- true;
             incr ecn_marks;
             if fl_on then
               Obs.Flight.ecn_mark fl ~t_s:now.(0) ~link:l ~flow:pkt.flow
                 ~seq:pkt.seq ~occ:port_occ.(l);
             if trace_on && Obs.Trace.accept sink then
               Obs.Trace.push sink
                 (Obs.Trace.Ecn_mark
                    {
                      t = now.(0);
                      link = l;
                      flow = pkt.flow;
                      seq = pkt.seq;
                      occ = port_occ.(l);
                    })
           end
         | _ -> ()
       end);
      (* Stamp the congestion price for this hop into the running
         accumulator ([Header.add_price] semantics: saturate at the
         wire format's q_r ceiling). *)
      pkt.qr <- Float.min Header.qr_max (pkt.qr +. link_price l);
      Fifo.push st.queue pkt;
      if fl_on then
        Obs.Flight.enqueue fl ~t_s:now.(0) ~link:l ~flow:pkt.flow
          ~seq:pkt.seq ~bytes:pkt.bytes
          ~qlen:(Fifo.length st.queue);
      if trace_on && Obs.Trace.accept sink then
        Obs.Trace.push sink
          (Obs.Trace.Enqueue
             {
               t = now.(0);
               link = l;
               flow = pkt.flow;
               seq = pkt.seq;
               bytes = pkt.bytes;
               qlen = Fifo.length st.queue;
             });
      try_start l
    end
  in

  (* --- source-side sending --- *)
  let total_rate f =
    let x = f.x in
    facc.(0) <- 0.0;
    for i = 0 to Array.length x - 1 do
      facc.(0) <- facc.(0) +. x.(i)
    done;
    facc.(0)
  in
  (* Weighted route draw over the rate split, accumulating in a
     scratch cell (see [facc]) so the per-frame walk allocates
     nothing. *)
  let pick_route f =
    let tot = total_rate f in
    if tot <= 0.0 || Array.length f.routes = 0 then 0
    else begin
      let r = Rng.float rng *. tot in
      let x = f.x in
      let n = Array.length x in
      facc.(1) <- 0.0;
      let i = ref 0 in
      let hit = ref (n - 1) in
      while !i < n do
        facc.(1) <- facc.(1) +. x.(!i);
        if r < facc.(1) then begin
          hit := !i;
          i := n
        end
        else incr i
      done;
      !hit
    end
  in
  (* [route] pins the frame to one route (recovery reclaim probes);
     without it the route is drawn from the rate split, consuming one
     rng draw — probes must not perturb that stream. *)
  let inject_frame ?route f ~bytes ~seq =
    let ri = match route with Some r -> r | None -> pick_route f in
    let pkt =
      {
        flow = f.id;
        route_idx = ri;
        seq;
        qr = 0.0;
        bytes;
        sent_at = now.(0);
        links = f.route_links.(ri);
        hop = 0;
        ce = false;
      }
    in
    f.injected_window.(ri) <- f.injected_window.(ri) +. float_of_int bytes;
    (match route with
    | Some _ -> (
      match inv with
      | Some t -> Invariants.on_probe t ~now:now.(0) ~flow:f.id
      | None -> ())
    | None -> inv_inject f.id);
    enqueue_on_link pkt.links.(0) pkt
  in
  let sendable_bytes f =
    match f.spec.workload with
    | Workload.Saturated -> max_int
    | Workload.File _ | Workload.Poisson_files _ ->
      (* Closed-loop serialization (the Workload.Poisson_files
         contract): a file's bytes only become sendable once it has
         arrived AND the previous file finished at the receiver, so
         an offered arrival landing mid-transfer waits instead of
         pre-queueing behind the one in flight. Completions form a
         prefix (progress is cumulative), so gating each file on its
         predecessor's [done_at] is exact. *)
      let acc = ref 0 in
      Array.iteri
        (fun i file ->
          if
            file.arrival <= now.(0)
            && (i = 0 || f.files.(i - 1).done_at >= 0.0)
          then acc := !acc + file.fbytes)
        f.files;
      !acc
    | Workload.Empirical _ ->
      (* Open-loop: every arrived transfer queues on the persistent
         connection immediately — completion times of backlogged
         transfers include their queueing wait. *)
      Array.fold_left
        (fun acc file -> if file.arrival <= now.(0) then acc + file.fbytes else acc)
        0 f.files
  in
  (* UDP pacing: one frame per Inject event, next scheduled from the
     controller's total rate — deterministic gaps (CBR, the historical
     behaviour) or, for Poisson-paced empirical workloads, exponential
     gaps with the same mean. The exponential draw comes from the
     run's master stream as events execute; CBR flows draw nothing, so
     legacy runs consume exactly the historical sequence. *)
  let poisson_paced f =
    match f.spec.workload with
    | Workload.Empirical { pacing = Workload.Poisson_paced; _ } -> true
    | _ -> false
  in
  let rec schedule_inject f =
    if f.active && not f.inject_scheduled then begin
      let rate = total_rate f in
      if rate < 0.05 then begin
        f.inject_scheduled <- true;
        schedule 0.2 (Arena.inject f.id)
      end
      else begin
        let dt = 8.0 *. float_of_int config.frame_bytes /. (rate *. 1e6) in
        let dt =
          if poisson_paced f then Rng.exponential rng ~rate:(1.0 /. dt) else dt
        in
        f.inject_scheduled <- true;
        schedule dt (Arena.inject f.id)
      end
    end
  and handle_inject f =
    f.inject_scheduled <- false;
    if f.active && Array.length f.routes > 0 then begin
      let rate = total_rate f in
      (* File workloads are reliable: the sender keeps transmitting
         (the application resends what was lost) until the receiver
         holds the full file, so MAC losses cost time, not data. *)
      if rate >= 0.05 && f.received_bytes < sendable_bytes f then begin
        inject_frame f ~bytes:config.frame_bytes ~seq:(f.next_seq land 0xFFFFFFFF);
        f.next_seq <- f.next_seq + 1;
        f.sent_bytes <- f.sent_bytes + config.frame_bytes
      end;
      schedule_inject f
    end
  in
  (* TCP sending: window-driven, policed by the controller's rate. *)
  let refill_tokens f =
    let rate = total_rate f in
    (* Bucket depth: a quarter-second of the allocation (at least 8
       frames) so ack-clocked TCP bursts are not punished when the
       average rate respects the allocation. *)
    let depth =
      Float.max
        (8.0 *. float_of_int config.frame_bytes)
        (rate *. 1e6 /. 8.0 *. 0.25)
    in
    tokens.(f.id) <-
      Float.min depth
        (tokens.(f.id) +. (rate *. 1e6 /. 8.0 *. (now.(0) -. tokens_at.(f.id))));
    tokens_at.(f.id) <- now.(0)
  in
  let debug = Sys.getenv_opt "ENGINE_DEBUG" <> None in
  let arm_rto f =
    match f.tcp with
    | None -> ()
    | Some tcp -> (
      match Tcp.rto_deadline tcp with
      | Some dl -> schedule_abs (Float.max dl now.(0))
        (Arena.tcp_rto ~flow:f.id ~slot:(Arena.Fslots.put f_slots dl))
      | None -> ())
  in
  (* The controller gates TCP by backpressure: when the flow's token
     bucket is empty the source holds the next segment and resumes
     when tokens accrue (the tun/tap queue filling up and blocking the
     stack). Packets are only lost to MAC contention (queue overflow,
     delta-dependent) and to reordering - the Section 6.4 effects. *)
  let rec tcp_try_send f =
    (match f.tcp with
    | None -> ()
    | Some tcp ->
      if f.active && Array.length f.routes > 0 && not (Tcp.finished tcp) then begin
        let tokens_ok =
          if not config.enable_cc then true
          else begin
            refill_tokens f;
            tokens.(f.id) >= float_of_int config.frame_bytes
          end
        in
        if not tokens_ok then begin
          if not f.inject_scheduled then begin
            let rate = total_rate f in
            let wait =
              if rate < 0.05 then 0.2
              else
                (float_of_int config.frame_bytes -. tokens.(f.id))
                *. 8.0 /. (rate *. 1e6)
            in
            f.inject_scheduled <- true;
            schedule (Float.max wait 1e-4) (Arena.inject f.id)
          end
        end
        else begin
          let new_data_limit =
            match Workload.total_bytes f.spec.workload with
            | None -> None
            | Some _ ->
              (* ceil: the final partial segment is sendable *)
              Some
                ((sendable_bytes f + config.frame_bytes - 1) / config.frame_bytes)
          in
          match Tcp.take_segment ?new_data_limit tcp ~now:now.(0) with
          | None -> ()
          | Some seq ->
            if config.enable_cc then
              tokens.(f.id) <- tokens.(f.id) -. float_of_int config.frame_bytes;
            inject_frame f ~bytes:config.frame_bytes ~seq;
            if debug then
              Printf.eprintf "%.3f tcp send seq=%d cwnd=%.1f una=%d inflight=%d rate=%.2f tokens=%.0f\n"
                now.(0) seq (Tcp.cwnd tcp) (Tcp.snd_una tcp) (Tcp.in_flight tcp)
                (total_rate f) tokens.(f.id);
            tcp_try_send f
        end
      end);
    (* Heartbeat for bounded workloads: sending can be gated on future
       file arrivals (Poisson workloads) with nothing in flight to
       produce an ACK or RTO, so poll again shortly. *)
    (match f.tcp with
    | Some tcp
      when f.active
           && (not (Tcp.finished tcp))
           && Workload.total_bytes f.spec.workload <> None
           && not f.inject_scheduled ->
      f.inject_scheduled <- true;
      schedule 0.2 (Arena.inject f.id)
    | Some _ | None -> ());
    arm_rto f
  in

  (* --- receiver --- *)
  (* Files start and complete in index order (a start needs the
     predecessor done; a completion needs cumulative progress past
     every earlier boundary), so [completions_check] resumes from the
     first file that is not yet fully stamped instead of rescanning
     the whole schedule on every delivered frame. [files_head] is that
     resume index per flow; [files_cum] the byte boundary before it. *)
  let files_head = Array.make (max 1 n_flows) 0 in
  let files_cum = Array.make (max 1 n_flows) 0 in
  let completions_check f =
    (* A file completes when the receiver's cumulative progress passes
       its boundary; it starts when the previous finished (or at its
       arrival). Under TCP, progress means in-order delivered bytes
       (retransmitted duplicates must not count); UDP frames are never
       duplicated, so raw arrivals are the right measure there. *)
    let nf = Array.length f.files in
    if files_head.(f.id) < nf then begin
      let progress =
        match f.tcp with
        | Some _ -> f.delivered_in_order_bytes
        | None -> f.received_bytes
      in
      let i = ref files_head.(f.id) in
      let cum = ref files_cum.(f.id) in
      let scan = ref true in
      while !scan && !i < nf do
        let file = f.files.(!i) in
        let prev_done = if !i = 0 then 0.0 else f.files.(!i - 1).done_at in
        if
          file.started_at < 0.0
          && file.arrival <= now.(0)
          && (!i = 0 || prev_done >= 0.0)
        then file.started_at <- Float.max file.arrival prev_done;
        cum := !cum + file.fbytes;
        if file.done_at < 0.0 && progress >= !cum then file.done_at <- now.(0);
        if file.done_at >= 0.0 then begin
          if file.started_at >= 0.0 && !i = files_head.(f.id) then begin
            files_head.(f.id) <- !i + 1;
            files_cum.(f.id) <- !cum
          end;
          incr i
        end
        else
          (* Nothing past an unfinished file can change state: a later
             start needs this one done, a later boundary is farther
             than the one progress just missed. *)
          scan := false
      done
    end
  in
  (* Reorder-release callbacks, one closure pair per flow built once:
     [Reorder.push_cb] fires these for every in-order release and
     declared loss without allocating an event list. *)
  let deliver_cbs =
    Array.map
      (fun f ->
        fun seq (p : packet) ->
          inv_release_deliver f.id seq;
          f.delivered_in_order_bytes <- f.delivered_in_order_bytes + p.bytes)
      flow_states
  in
  let lost_cbs =
    Array.map
      (fun f ->
        fun seq ->
          inv_release_lost f.id seq;
          f.lost <- f.lost + 1)
      flow_states
  in
  let release_packet f (pkt : packet) =
    (* Every frame's one-way delay (queueing + transmission along the
       route) lands in a streaming histogram: exact count/mean,
       quantiles within 0.5% relative error, bounded memory. *)
    let delay = now.(0) -. pkt.sent_at in
    Obs.Metrics.Histogram.observe f.delay_hist delay;
    if fl_on then
      Obs.Flight.delivery fl ~t_s:now.(0) ~flow:f.id
        ~seq:pkt.seq ~bytes:pkt.bytes ~delay;
    if trace_on && Obs.Trace.accept sink then
      Obs.Trace.push sink
        (Obs.Trace.Delivery
           {
             t = now.(0);
             flow = f.id;
             seq = pkt.seq;
             bytes = pkt.bytes;
             delay;
           });
    Ack.on_packet ~ce:pkt.ce f.collector ~route:pkt.route_idx
      ~qr:pkt.qr ~seq:pkt.seq ~bytes:pkt.bytes;
    flush_bins_upto f now.(0);
    f.received_bytes <- f.received_bytes + pkt.bytes;
    bin_bits.(f.id) <- bin_bits.(f.id) +. (8.0 *. float_of_int pkt.bytes);
    Reorder.push_cb f.reorder ~route:pkt.route_idx ~seq:pkt.seq pkt
      ~deliver:deliver_cbs.(f.id) ~lost:lost_cbs.(f.id);
    (match f.tcp with
    | None -> ()
    | Some _ ->
      (* Cumulative TCP ACK on every arrival (dup-acks included); the
         ack echoes the arriving frame's CE bit (DCTCP-style immediate
         per-frame echo). *)
      let cum = Reorder.next_expected f.reorder in
      schedule f.reverse_latency (Arena.tcp_ack ~flow:f.id ~cum ~ece:pkt.ce));
    completions_check f
  in
  let deliver_to_destination f pkt =
    inv_deliver f.id;
    if config.delay_equalize then begin
      let delay = now.(0) -. pkt.sent_at in
      Reorder.Equalizer.observe f.equalizer ~route:pkt.route_idx ~delay;
      let hold = Reorder.Equalizer.release_delay f.equalizer ~route:pkt.route_idx in
      if hold > 1e-6 then
        schedule hold
          (Arena.reorder_release ~flow:f.id ~slot:(Arena.Slots.put pkt_slots pkt))
      else release_packet f pkt
    end
    else release_packet f pkt
  in

  (* --- forwarding --- *)
  let handle_tx_end l =
    let st = links.(l) in
    match st.on_air with
    | None -> ()
    | Some pkt when st.air_collided ->
      (* Collided: airtime spent, frame lost. *)
      st.on_air <- None;
      air_clear l;
      st.air_collided <- false;
      inv_drop ~link:(Some l) ~reason:Invariants.Collision pkt.flow;
      if fl_on then
        Obs.Flight.collision fl ~t_s:now.(0) ~link:l ~flow:pkt.flow
          ~seq:pkt.seq;
      if trace_on && Obs.Trace.accept sink then
        Obs.Trace.push sink
          (Obs.Trace.Collision
             { t = now.(0); link = l; flow = pkt.flow; seq = pkt.seq });
      try_start_domain l
    | Some pkt when st.air_faulted ->
      (* Fault-injected loss: airtime spent, frame lost. Not a queue
         drop — the frame made it onto the medium. *)
      st.on_air <- None;
      air_clear l;
      st.air_faulted <- false;
      inv_drop ~link:(Some l) ~reason:Invariants.Fault_injected pkt.flow;
      if fl_on then
        Obs.Flight.drop fl ~t_s:now.(0) ~link:(Some l) ~flow:pkt.flow
          ~seq:pkt.seq ~reason:Obs.Trace.Fault_injected;
      if trace_on && Obs.Trace.accept sink then
        Obs.Trace.push sink
          (Obs.Trace.Drop
             {
               t = now.(0);
               link = Some l;
               flow = pkt.flow;
               seq = pkt.seq;
               reason = Obs.Trace.Fault_injected;
             });
      try_start_domain l
    | Some pkt ->
      st.on_air <- None;
      air_clear l;
      if fl_on then
        Obs.Flight.dequeue fl ~t_s:now.(0) ~link:l ~flow:pkt.flow
          ~seq:pkt.seq;
      if trace_on && Obs.Trace.accept sink then
        Obs.Trace.push sink
          (Obs.Trace.Dequeue
             { t = now.(0); link = l; flow = pkt.flow; seq = pkt.seq });
      let f = flow_states.(pkt.flow) in
      let drop_misroute () =
        inv_drop ~link:(Some l) ~reason:Invariants.Misroute pkt.flow;
        if fl_on then
          Obs.Flight.drop fl ~t_s:now.(0) ~link:(Some l) ~flow:pkt.flow
            ~seq:pkt.seq ~reason:Obs.Trace.Misroute;
        if trace_on && Obs.Trace.accept sink then
          Obs.Trace.push sink
            (Obs.Trace.Drop
               {
                 t = now.(0);
                 link = Some l;
                 flow = pkt.flow;
                 seq = pkt.seq;
                 reason = Obs.Trace.Misroute;
               })
      in
      (* The layer-2.5 source-route decision, pre-resolved at
         bootstrap into the plan array. *)
      let act = plans.(pkt.flow).(pkt.route_idx).(pkt.hop) in
      if act = plan_deliver then deliver_to_destination f pkt
      else if act = plan_misroute then drop_misroute ()
      else begin
        pkt.hop <- pkt.hop + 1;
        enqueue_on_link act pkt
      end;
      try_start_domain l
  in

  (* --- controller --- *)
  let probe_rate = 0.2 in
  (* Self-healing (config.recovery, UDP flows): a route the detector
     declares dead has its rate state expired on the spot — the §4
     duals of its unusable links are reset instead of draining, its
     mass is redistributed onto the routes that survive the LSDB
     re-discovery, and reclaim probes are armed on the backoff
     schedule. A later ack on the route restores its initial rate. *)
  let on_route_dead f i ~since det rc rrng =
    let detect_s = now.(0) -. since in
    if fl_on then
      Obs.Flight.route_dead fl ~t_s:now.(0) ~flow:f.id ~route:i ~detect_s;
    if trace_on then
      emit (Obs.Trace.Route_dead { t = now.(0); flow = f.id; route = i; detect_s });
    let dead_mass = f.x.(i) in
    f.x.(i) <- 0.0;
    f.x_bar.(i) <- 0.0;
    Array.iter
      (fun l ->
        if caps.(l) <= 0.0 && gamma.(l) > 0.0 then begin
          gamma.(l) <- 0.0;
          if fl_on then Obs.Flight.price_reset fl ~t_s:now.(0) ~link:l;
          if trace_on then emit (Obs.Trace.Price_reset { t = now.(0); link = l })
        end)
      f.route_links.(i);
    let surv, _flood =
      Recovery.survivors g ~caps ~src:f.spec.src
        ~routes:(Array.to_list f.routes)
    in
    let live = ref [] and live_sum = ref 0.0 in
    Array.iteri
      (fun j _ ->
        if j <> i && surv.(j) && not (Recovery.Detector.dead det j) then begin
          live := j :: !live;
          live_sum := !live_sum +. f.x.(j)
        end)
      f.routes;
    (match !live with
    | [] -> () (* full severance: reclaim probes must bring a route back *)
    | ls ->
      let k = float_of_int (List.length ls) in
      List.iter
        (fun j ->
          let share =
            if !live_sum > 0.0 then dead_mass *. (f.x.(j) /. !live_sum)
            else dead_mass /. k
          in
          f.x.(j) <- f.x.(j) +. share;
          f.x_bar.(j) <- f.x_bar.(j) +. share)
        ls);
    f.reclaim_attempt.(i) <- 0;
    f.reclaim_gen.(i) <- f.reclaim_gen.(i) + 1;
    schedule
      (Recovery.Backoff.delay rc rrng ~attempt:0)
      (Arena.reclaim_probe ~flow:f.id ~route:i ~gen:f.reclaim_gen.(i))
  in
  let on_route_restored f i ~down_for =
    if fl_on then
      Obs.Flight.route_restored fl ~t_s:now.(0) ~flow:f.id ~route:i
        ~down_s:down_for;
    if trace_on then
      emit
        (Obs.Trace.Route_restored
           { t = now.(0); flow = f.id; route = i; down_s = down_for });
    (* The γ accumulated around the route while it was down is stale:
       idle estimators under-report capacity, so the reclaim probes
       themselves register as huge airtime demand and spike the duals
       of perfectly healthy links. The route's price is
       d_l Σ_{i∈I_l} γ_i — a sum over each link's {e interference
       domain} — so the stale mass must be cleared domain-wide, or the
       restored route keeps paying a phantom congestion price that
       post-restore traffic sustains indefinitely. Pricing restarts
       from live measurements (it re-learns within a few 100 ms
       ticks if the congestion is real). *)
    Array.iter
      (fun l ->
        List.iter
          (fun l' ->
            if gamma.(l') > 0.0 then begin
              gamma.(l') <- 0.0;
              if fl_on then Obs.Flight.price_reset fl ~t_s:now.(0) ~link:l';
              if trace_on then
                emit (Obs.Trace.Price_reset { t = now.(0); link = l' })
            end)
          (Domain.domain dom l))
      f.route_links.(i);
    let restore = Float.max probe_rate f.init_x.(i) in
    f.x.(i) <- restore;
    f.x_bar.(i) <- restore;
    f.reclaim_attempt.(i) <- 0
  in
  let cc_update f (ack : Ack.t) =
    if config.enable_cc && Array.length f.routes > 0 then begin
      let a = Alpha.current f.alpha in
      let xf = total_rate f in
      let u' = 1.0 /. (1.0 +. xf) in
      List.iter
        (fun (r : Ack.route_report) ->
          let i = r.Ack.route in
          match (f.detector, config.recovery, rec_rng) with
          | Some det, Some rc, Some rrng -> (
            let injected = f.injected_window.(i) in
            f.injected_window.(i) <- 0.0;
            match
              Recovery.Detector.observe det ~route:i ~now:now.(0) ~injected
                ~acked:(float_of_int r.Ack.bytes)
                ~frame_bytes:(float_of_int config.frame_bytes)
            with
            | Recovery.Detector.Down { since } ->
              on_route_dead f i ~since det rc rrng
            | Recovery.Detector.Recovered { down_for } ->
              on_route_restored f i ~down_for
            | Recovery.Detector.Still_down -> () (* rate held at zero *)
            | Recovery.Detector.Alive | Recovery.Detector.Suspect _ ->
              let inner =
                Float.max 0.0
                  (f.x_bar.(i) +. (config.cc_gain *. (u' -. r.Ack.qr)))
              in
              f.x.(i) <-
                Float.max probe_rate (((1.0 -. a) *. f.x.(i)) +. (a *. inner)))
          | _ ->
            (* Failure detection (Section 6.1: link failures are caught
               within hundreds of ms): a route we keep feeding that
               returns no bytes for several ACK periods is treated as
               broken and backed off multiplicatively; the stale q_r it
               last reported would otherwise keep it attractive. *)
            if
              f.injected_window.(i) > 2.0 *. float_of_int config.frame_bytes
              && r.Ack.bytes = 0
            then f.dead_acks.(i) <- f.dead_acks.(i) + 1
            else if r.Ack.bytes > 0 then f.dead_acks.(i) <- 0;
            f.injected_window.(i) <- 0.0;
            if f.dead_acks.(i) >= 3 then begin
              (* With [route_reclaim] the back-off floors at the probe
                 rate, so a dead route keeps carrying the occasional
                 frame and is reclaimed once it heals; the historical
                 behaviour (no floor) starves a recovered route forever
                 because its q_r never refreshes. *)
              let floor_r = if config.route_reclaim then probe_rate else 0.0 in
              f.x.(i) <- Float.max floor_r (f.x.(i) *. 0.5);
              f.x_bar.(i) <- Float.max floor_r (f.x_bar.(i) *. 0.5)
            end
            else begin
              let inner =
                Float.max 0.0
                  (f.x_bar.(i) +. (config.cc_gain *. (u' -. r.Ack.qr)))
              in
              (* Keep a small probe rate on every configured route: a
                 route priced out of use must still carry occasional
                 packets, or its q_r would never refresh and the route
                 could never be reclaimed when conditions improve
                 (e.g. the Figure 9 contender leaving). *)
              f.x.(i) <-
                Float.max probe_rate (((1.0 -. a) *. f.x.(i)) +. (a *. inner))
            end)
        ack.Ack.reports;
      for i = 0 to Array.length f.x - 1 do
        f.x_bar.(i) <- ((1.0 -. a) *. f.x_bar.(i)) +. (a *. f.x.(i))
      done;
      Alpha.observe f.alpha (total_rate f);
      (* Boxed kind: construct the event once and share it between the
         flight ring and the sink; run [accept] exactly once per offer. *)
      if fl_on || trace_on then begin
        let keep = trace_on && Obs.Trace.accept sink in
        if fl_on || keep then begin
          let ev =
            Obs.Trace.Rate_update
              { t = now.(0); flow = f.id; rates = Array.copy f.x }
          in
          if fl_on then Obs.Flight.event fl ev;
          if keep then Obs.Trace.push sink ev
        end
      end;
      (match inv with
      | Some t -> Invariants.on_rate t ~flow:f.id ~rate:(total_rate f)
      | None -> ());
      (* refresh TCP policing promptly *)
      match f.tcp with Some _ -> tcp_try_send f | None -> ()
    end
  in
  (* Demand scratch for the control tick: only carrier entries are
     ever written, and each tick overwrites them before the domain
     sums read them; non-carrier entries stay 0.0 forever, exactly as
     the per-tick fresh array had them. *)
  let demand = Array.make (max 1 n_links) 0.0 in
  let handle_control_tick () =
    (* 1. Demand measurement and dual update (carrier/priced sets
       only; everything else has zero demand and zero gamma). *)
    List.iter
      (fun l ->
        let bits = window_bits.(l) in
        window_bits.(l) <- 0.0;
        demand.(l) <- bits /. 1e6 *. d_est l /. config.control_period)
      carrier_links;
    List.iter
      (fun l ->
        let y =
          let d = dom_arr.(l) in
          facc.(0) <- 0.0;
          for i = 0 to Array.length d - 1 do
            facc.(0) <- facc.(0) +. demand.(d.(i))
          done;
          facc.(0)
        in
        let upd = gamma.(l) +. (config.gamma_alpha *. (y -. (1.0 -. config.delta))) in
        (* Optional dual leak (per second of simulated time): bounds
           how long a stale price outlives its load. Off by default —
           the guard keeps the historical update bit-identical. *)
        let upd =
          if config.price_drain > 0.0 then
            upd -. (config.price_drain *. config.control_period)
          else upd
        in
        gamma.(l) <- Float.max 0.0 upd)
      priced_links;
    if fl_on || trace_on then
      List.iter
        (fun l ->
          if fl_on then
            Obs.Flight.price fl ~t_s:now.(0) ~link:l ~gamma:gamma.(l)
              ~price:(link_price l);
          if trace_on && Obs.Trace.accept sink then
            Obs.Trace.push sink
              (Obs.Trace.Price_update
                 { t = now.(0); link = l; gamma = gamma.(l); price = link_price l }))
        priced_links;
    (* 2. Capacity estimation (only carriers are ever priced or
       transmitted on, so only they need tracking). *)
    if config.estimate_capacities then
      List.iter
        (fun l ->
          let st = links.(l) in
          Estimator.set_mode st.estimator
            (if st.had_traffic then Estimator.Active_traffic else Estimator.Probing);
          st.had_traffic <- false;
          Estimator.observe st.estimator ~now:now.(0) ~true_capacity:(cap l))
        carrier_links;
    (* 3. Destination ACK emission + trace recording. *)
    Array.iter
      (fun f ->
        if f.active then begin
          let ack = Ack.emit f.collector ~now:now.(0) in
          (* Boxed kind: construct once, share between flight ring and
             sink; run [accept] exactly once per offer. *)
          if fl_on || trace_on then begin
            let keep = trace_on && Obs.Trace.accept sink in
            if fl_on || keep then begin
              let ev =
                Obs.Trace.Ack
                  {
                    t = now.(0);
                    flow = f.id;
                    qr =
                      Array.of_list
                        (List.map
                           (fun (r : Ack.route_report) -> r.Ack.qr)
                           ack.Ack.reports);
                    bytes =
                      Array.of_list
                        (List.map
                           (fun (r : Ack.route_report) -> r.Ack.bytes)
                           ack.Ack.reports);
                  }
              in
              if fl_on then Obs.Flight.event fl ev;
              if keep then Obs.Trace.push sink ev
            end
          end;
          (* Control-plane faults: the report may be dropped (that
             window's q_r observations are simply gone, as on a real
             lossy reverse path) or delayed. The draw happens only
             while a drop window is active — see the determinism
             note at the fault-state declarations. *)
          let ack_lost = ctrl_drop.(0) > 0.0 && Rng.float rng < ctrl_drop.(0) in
          if not ack_lost then
            schedule
              (f.reverse_latency +. ctrl_delay.(0))
              (Arena.ack_arrive ~flow:f.id ~slot:(Arena.Slots.put ack_slots ack));
          f.rates_rev <- (now.(0), Array.copy f.x) :: f.rates_rev
        end)
      flow_states;
    (match inv with
    | Some t -> Invariants.on_tick t ~now:now.(0) (Lazy.force inv_view)
    | None -> ());
    schedule config.control_period Arena.control_tick
  in

  (* --- event dispatch --- *)
  (* Tag dispatch on the int encoding (a jump table); each arm decodes
     its packed operands and releases any payload slot. The arm
     comments name the historical constructors. *)
  let handle code =
    match code land 0xF with
    | 0 (* Tx_end *) -> handle_tx_end (Arena.link code)
    | 10 (* Capacity_change *) ->
      let l = Arena.link20 code in
      let c =
        let slot = Arena.slot24 code in
        let c = Arena.Fslots.get f_slots slot in
        Arena.Fslots.release f_slots slot;
        c
      in
      let was_dead = caps.(l) <= 0.0 in
      caps.(l) <- Float.max 0.0 c;
      if fl_on then
        Obs.Flight.link_event fl ~t_s:now.(0) ~link:l ~capacity:caps.(l);
      if trace_on then
        emit (Obs.Trace.Link_event { t = now.(0); link = l; capacity = caps.(l) });
      (* A dead link drops its backlog; a healthier one may start. *)
      if caps.(l) <= 0.0 then begin
        let st = links.(l) in
        (* The flushed backlog counts as queue drops — frames must not
           vanish from the accounting when a link dies. *)
        queue_drops := !queue_drops + Fifo.length st.queue;
        Fifo.iter
          (fun p ->
            if buf_on then buf_release l p.bytes;
            inv_drop ~link:(Some l) ~reason:Invariants.Backlog_cleared p.flow;
            if fl_on then
              Obs.Flight.drop fl ~t_s:now.(0) ~link:(Some l) ~flow:p.flow
                ~seq:p.seq ~reason:Obs.Trace.Backlog_cleared;
            if trace_on && Obs.Trace.accept sink then
              Obs.Trace.push sink
                (Obs.Trace.Drop
                   {
                     t = now.(0);
                     link = Some l;
                     flow = p.flow;
                     seq = p.seq;
                     reason = Obs.Trace.Backlog_cleared;
                   }))
          st.queue;
        Fifo.clear st.queue
      end
      else begin
        (* Self-healing: a link coming back from the dead restarts
           with a clean price. The stale γ is not confined to the link
           itself — any route through l is priced d_l Σ_{i∈I_l} γ_i
           over l's interference domain, and the overload measured
           during the outage (traffic aimed at a dead link against
           decayed idle estimators) spiked γ on the domain peers too.
           Reset the whole domain so prices re-learn from live
           measurements; this also covers outages too short for the
           failure detector to fire. Ramp steps on a live link keep
           their γ (was_dead is false). *)
        (match config.recovery with
        | Some _ when was_dead ->
          List.iter
            (fun l' ->
              if gamma.(l') > 0.0 then begin
                gamma.(l') <- 0.0;
                if fl_on then Obs.Flight.price_reset fl ~t_s:now.(0) ~link:l';
                if trace_on then
                  emit (Obs.Trace.Price_reset { t = now.(0); link = l' })
              end)
            (Domain.domain dom l);
          (* The capacity estimate is just as stale as the price: it
             tracked toward zero while the link was dead (offered
             traffic keeps the fast Active_traffic time constant), so
             1/estimate would misprice the healed link for several
             control periods. Restart it from a fresh observation —
             the draw comes from the estimator's own per-link rng
             stream, so no other link's sequence shifts. *)
          if config.estimate_capacities then
            Estimator.reset links.(l).estimator ~now:now.(0) ~capacity:caps.(l)
        | _ -> ());
        try_start l
      end
    | 11 (* Loss_change *) ->
      let l = Arena.link20 code in
      let p =
        let slot = Arena.slot24 code in
        let p = Arena.Fslots.get f_slots slot in
        Arena.Fslots.release f_slots slot;
        p
      in
      loss.(l) <- p;
      if fl_on then Obs.Flight.loss_event fl ~t_s:now.(0) ~link:l ~prob:p;
      if trace_on then
        emit (Obs.Trace.Loss_event { t = now.(0); link = l; prob = p })
    | 12 (* Ctrl_change *) ->
      let p, d =
        let slot = Arena.slot4 code in
        let pd = Arena.Slots.get pair_slots slot in
        Arena.Slots.release pair_slots slot;
        pd
      in
      ctrl_drop.(0) <- p;
      ctrl_delay.(0) <- d;
      if fl_on then Obs.Flight.ctrl_event fl ~t_s:now.(0) ~drop:p ~delay:d;
      if trace_on then
        emit (Obs.Trace.Ctrl_event { t = now.(0); drop = p; delay = d })
    | 1 (* Inject *) -> (
      let f = flow_states.(Arena.flow_wide code) in
      match f.spec.transport with
      | Udp -> handle_inject f
      | Tcp_transport ->
        f.inject_scheduled <- false;
        tcp_try_send f)
    | 2 (* Control_tick *) -> handle_control_tick ()
    | 9 (* Ack_arrive *) ->
      let slot = Arena.slot20 code in
      let ack = Arena.Slots.get ack_slots slot in
      Arena.Slots.release ack_slots slot;
      cc_update flow_states.(Arena.flow code) ack
    | 3 (* Tcp_ack_arrive *) -> (
      let f = flow_states.(Arena.flow code) in
      let cum = Arena.tcp_ack_cum code and ece = Arena.tcp_ack_ece code in
      match f.tcp with
      | None -> ()
      | Some tcp ->
        Tcp.on_ack ~ece tcp ~now:now.(0) ~cum_ack:cum;
        tcp_try_send f;
        arm_rto f)
    | 4 (* Reorder_release *) ->
      let slot = Arena.slot20 code in
      let pkt = Arena.Slots.get pkt_slots slot in
      Arena.Slots.release pkt_slots slot;
      release_packet flow_states.(Arena.flow code) pkt
    | 5 (* Tcp_rto *) -> (
      let f = flow_states.(Arena.flow code) in
      let armed_for =
        let slot = Arena.slot20 code in
        let dl = Arena.Fslots.get f_slots slot in
        Arena.Fslots.release f_slots slot;
        dl
      in
      match f.tcp with
      | None -> ()
      | Some tcp -> (
        match Tcp.rto_deadline tcp with
        | Some dl when Float.abs (dl -. armed_for) < 1e-9 && dl <= now.(0) +. 1e-9 ->
          Tcp.on_rto tcp ~now:now.(0);
          tcp_try_send f
        | _ -> () (* stale timer *)))
    | 6 (* Flow_start *) ->
      let f = flow_states.(Arena.flow_wide code) in
      f.active <- true;
      (match f.spec.transport with
      | Udp -> schedule_inject f
      | Tcp_transport -> tcp_try_send f)
    | 7 (* Flow_stop *) -> flow_states.(Arena.flow_wide code).active <- false
    | 8 (* Reclaim_probe *) -> (
      let fid = Arena.flow code in
      let i = Arena.probe_route code and gen = Arena.probe_gen code in
      let f = flow_states.(fid) in
      match (f.detector, config.recovery, rec_rng) with
      | Some det, Some rc, Some rrng
        when f.active && gen = f.reclaim_gen.(i)
             && Recovery.Detector.dead det i ->
        (* One frame down the dead route; its delivery (and the ack
           that reports it) is what flips the detector back to alive.
           The next probe backs off exponentially up to the cap. *)
        inject_frame ~route:i f ~bytes:config.frame_bytes
          ~seq:(f.next_seq land 0xFFFFFFFF);
        f.next_seq <- f.next_seq + 1;
        f.sent_bytes <- f.sent_bytes + config.frame_bytes;
        if fl_on then
          Obs.Flight.route_probe fl ~t_s:now.(0) ~flow:fid ~route:i
            ~attempt:f.reclaim_attempt.(i);
        if trace_on then
          emit
            (Obs.Trace.Route_probe
               { t = now.(0); flow = fid; route = i; attempt = f.reclaim_attempt.(i) });
        f.reclaim_attempt.(i) <- f.reclaim_attempt.(i) + 1;
        schedule
          (Recovery.Backoff.delay rc rrng ~attempt:f.reclaim_attempt.(i))
          (Arena.reclaim_probe ~flow:fid ~route:i ~gen)
      | _ -> ())
    | _ -> assert false (* no such tag is ever scheduled *)
  in
  (* Profiler attribution, indexed by event tag: the subsystem whose
     handler ran the event. Scheduler time (the wheel's pop path) is
     attributed separately by the profiled loop below. *)
  let prof_tab =
    let t = Array.make 16 Obs.Prof.cat_fault in
    t.(Arena.t_tx_end) <- Obs.Prof.cat_mac_phy;
    t.(Arena.t_reorder_release) <- Obs.Prof.cat_mac_phy;
    t.(Arena.t_inject) <- Obs.Prof.cat_traffic;
    t.(Arena.t_flow_start) <- Obs.Prof.cat_traffic;
    t.(Arena.t_flow_stop) <- Obs.Prof.cat_traffic;
    t.(Arena.t_control_tick) <- Obs.Prof.cat_controller;
    t.(Arena.t_ack_arrive) <- Obs.Prof.cat_controller;
    t.(Arena.t_tcp_ack) <- Obs.Prof.cat_tcp;
    t.(Arena.t_tcp_rto) <- Obs.Prof.cat_tcp;
    t.(Arena.t_reclaim_probe) <- Obs.Prof.cat_recovery;
    t
  in

  (* --- bootstrap --- *)
  Array.iter
    (fun f ->
      Wheel.push q f.spec.start_time (Arena.flow_start f.id);
      match f.spec.stop_time with
      | Some t -> Wheel.push q t (Arena.flow_stop f.id)
      | None -> ())
    flow_states;
  Wheel.push q config.control_period Arena.control_tick;
  List.iter
    (fun (t, l, c) ->
      if t < 0.0 || l < 0 || l >= n_links then
        invalid_arg "Engine.run: bad link event";
      Wheel.push q t
        (Arena.capacity_change ~link:l ~slot:(Arena.Fslots.put f_slots c)))
    link_events;
  List.iter
    (fun (t, l, p) ->
      if t < 0.0 || l < 0 || l >= n_links || not (Float.is_finite p) || p < 0.0
         || p > 1.0
      then invalid_arg "Engine.run: bad loss event";
      Wheel.push q t (Arena.loss_change ~link:l ~slot:(Arena.Fslots.put f_slots p)))
    loss_events;
  List.iter
    (fun (t, p, d) ->
      if t < 0.0
         || (not (Float.is_finite p))
         || p < 0.0 || p > 1.0
         || (not (Float.is_finite d))
         || d < 0.0
      then invalid_arg "Engine.run: bad ctrl event";
      Wheel.push q t
        (Arena.ctrl_change ~slot:(Arena.Slots.put pair_slots (p, d))))
    ctrl_events;

  let peak_depth = ref 0 in
  (* Allocation-free dispatch: read the root in place ([top_prio]/[top]
     instead of [peek]/[pop]'s option-tuple pairs) and leave it in the
     heap while the handler runs — the handler's first [schedule]
     replaces it in one sift via the [pending_drop] flag (see its
     declaration for the soundness argument), and an event that
     scheduled nothing is dropped afterwards. The queue depth is
     sampled before the logical pop, exactly as the historical loop
     measured it. *)
  let rec loop () =
    if not (Wheel.is_empty q) then begin
      let t = Wheel.top_prio q in
      if t <= duration then begin
        let d = Wheel.size q in
        if d > !peak_depth then peak_depth := d;
        let ev = Wheel.top q in
        pending_drop := true;
        now.(0) <- Float.max now.(0) t;
        incr events_processed;
        handle ev;
        if !pending_drop then begin
          pending_drop := false;
          Wheel.drop q
        end;
        (match inv with
        | Some chk -> Invariants.check_step chk ~now:now.(0) (Lazy.force inv_view)
        | None -> ());
        loop ()
      end
    end
  in
  (* Profiled variant of the loop: identical event processing, with
     the wheel's pop path (find-min scan, migration, the deferred
     drop) attributed to [cat_scheduler] and each handler to its tag's
     subsystem. Pushes from inside handlers count toward the handler's
     category. Kept separate so the unprofiled hot loop carries no
     per-event branches for it. *)
  let rec loop_prof p =
    if not (Wheel.is_empty q) then begin
      Obs.Prof.enter p;
      let t = Wheel.top_prio q in
      if t <= duration then begin
        let d = Wheel.size q in
        if d > !peak_depth then peak_depth := d;
        let ev = Wheel.top q in
        Obs.Prof.leave_silent p Obs.Prof.cat_scheduler;
        pending_drop := true;
        now.(0) <- Float.max now.(0) t;
        incr events_processed;
        Obs.Prof.enter p;
        handle ev;
        Obs.Prof.leave p prof_tab.(ev land 0xF);
        if !pending_drop then begin
          pending_drop := false;
          Obs.Prof.enter p;
          Wheel.drop q;
          Obs.Prof.leave_silent p Obs.Prof.cat_scheduler
        end;
        (match inv with
        | Some chk -> Invariants.check_step chk ~now:now.(0) (Lazy.force inv_view)
        | None -> ());
        loop_prof p
      end
      else Obs.Prof.leave_silent p Obs.Prof.cat_scheduler
    end
  in
  let loop () = match prof with None -> loop () | Some p -> loop_prof p in
  let wall_start = Sys.time () in
  (* A flight-enabled run that dies dumps the ring before re-raising:
     every escaped exception — invariant violations included — becomes
     a replayable JSONL artifact. *)
  (try loop ()
   with e when fl_on ->
     let bt = Printexc.get_raw_backtrace () in
     (match Obs.Flight.dump fl with
     | Ok (path, n) ->
       Printf.eprintf "[flight] %s: dumped last %d events to %s\n%!"
         (Printexc.to_string e) n path
     | Error msg -> Printf.eprintf "[flight] dump failed: %s\n%!" msg);
     Printexc.raise_with_backtrace e bt);
  let wall_s = Sys.time () -. wall_start in
  now.(0) <- duration;
  (match recorder with
  | Some r -> Obs.Recorder.flush r ~now:duration
  | None -> ());

  let results =
    Array.map
      (fun f ->
        flush_bins_upto f duration;
        {
          received_bytes = f.received_bytes;
          goodput_series = List.rev f.goodput_rev;
          rate_series = List.rev f.rates_rev;
          completions =
            Array.to_list f.files
            |> List.filter_map (fun file ->
                   if file.done_at >= 0.0 && file.started_at >= 0.0 then
                     Some (file.started_at, file.done_at -. file.started_at)
                   else None);
          frames_lost = f.lost;
          frames_dropped = f.src_dropped;
          final_rates = Array.copy f.x;
          mean_delay = Obs.Metrics.Histogram.mean f.delay_hist;
          p95_delay = Obs.Metrics.Histogram.quantile f.delay_hist 0.95;
        })
      flow_states
  in
  {
    flows = results;
    duration;
    queue_drops = !queue_drops;
    ecn_marks = !ecn_marks;
    buffer_peak_bytes = !buffer_peak;
    events_processed = !events_processed;
    perf =
      {
        wall_s;
        events_per_s =
          (if wall_s > 0.0 then float_of_int !events_processed /. wall_s else 0.0);
        wall_per_sim_s = (if duration > 0.0 then wall_s /. duration else 0.0);
        peak_queue_depth = !peak_depth;
      };
  }
