(** Flat int encoding of the engine's event variants.

    Every scheduled event is a single immediate int: a 4-bit tag plus
    packed operands (see the layout table in the implementation), so
    the steady-state event loop allocates zero words per event. Rare
    payloads that cannot pack — ACK reports, equalizer-held packets,
    fault boundary values — park in a typed {!Slots}/{!Fslots} store
    and travel as a slot index.

    The engine enforces the field widths at bootstrap: flow ids fit 16
    bits ({!max_flow}), link ids 20 bits ({!max_link}); sequence
    numbers are masked to 32 bits at the source. *)

val tag : int -> int
(** The 4-bit variant tag of an encoded event. *)

val t_tx_end : int
val t_inject : int
val t_control_tick : int
val t_tcp_ack : int
val t_reorder_release : int
val t_tcp_rto : int
val t_flow_start : int
val t_flow_stop : int
val t_reclaim_probe : int
val t_ack_arrive : int
val t_capacity_change : int
val t_loss_change : int
val t_ctrl_change : int

val max_flow : int
val max_link : int

(** Encoders. Hot ones are pure arithmetic — no bounds checks; the
    engine validates widths once at bootstrap. *)

val tx_end : int -> int
val inject : int -> int
val control_tick : int
val tcp_ack : flow:int -> cum:int -> ece:bool -> int
val reorder_release : flow:int -> slot:int -> int
val tcp_rto : flow:int -> slot:int -> int
val flow_start : int -> int
val flow_stop : int -> int

val reclaim_probe : flow:int -> route:int -> gen:int -> int
(** @raise Invalid_argument if the route id exceeds 8 bits. *)

val ack_arrive : flow:int -> slot:int -> int
val capacity_change : link:int -> slot:int -> int
val loss_change : link:int -> slot:int -> int
val ctrl_change : slot:int -> int

(** Decoders (field positions per tag are in the implementation's
    layout table). *)

val link : int -> int
(** Link id of a [t_tx_end] event (the whole payload). *)

val link20 : int -> int
(** 20-bit link id of [t_capacity_change] / [t_loss_change]. *)

val flow : int -> int
(** 16-bit flow id (tags 3, 4, 5, 8, 9). *)

val flow_wide : int -> int
(** Flow id when it is the whole payload (tags 1, 6, 7). *)

val tcp_ack_cum : int -> int
val tcp_ack_ece : int -> bool
val slot20 : int -> int
val slot24 : int -> int
val slot4 : int -> int
val probe_route : int -> int
val probe_gen : int -> int

(** Typed payload stores: growable arrays with an explicit free
    stack. A released slot keeps its last payload until reuse; stores
    are per-run, so transient liveness is bounded by the high-water
    mark. *)
module Slots : sig
  type 'a t

  val create : unit -> 'a t
  val put : 'a t -> 'a -> int
  val get : 'a t -> int -> 'a
  val release : 'a t -> int -> unit
end

(** {!Slots} specialised to unboxed floats. *)
module Fslots : sig
  type t

  val create : unit -> t
  val put : t -> float -> int
  val get : t -> int -> float
  val release : t -> int -> unit
end
