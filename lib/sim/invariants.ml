type reason =
  | Queue_overflow
  | Link_down
  | Collision
  | Misroute
  | Backlog_cleared
  | Fault_injected

let reason_name = function
  | Queue_overflow -> "queue-overflow"
  | Link_down -> "link-down"
  | Collision -> "collision"
  | Misroute -> "misroute"
  | Backlog_cleared -> "backlog-cleared"
  | Fault_injected -> "fault-injected"

type violation = {
  time : float;
  rule : string;
  link : int option;
  node : int option;
  flow : int option;
  detail : string;
}

exception Violation of violation

let describe v =
  let opt name = function None -> "" | Some i -> Printf.sprintf " %s=%d" name i in
  Printf.sprintf "t=%.6f [%s]%s%s%s: %s" v.time v.rule (opt "link" v.link)
    (opt "node" v.node) (opt "flow" v.flow) v.detail

let pp_violation fmt v = Format.pp_print_string fmt (describe v)

let () =
  Printexc.register_printer (function
    | Violation v -> Some ("Invariants.Violation " ^ describe v)
    | _ -> None)

type pacing = Paced | Token_bucket | Unpoliced

type view = {
  n_links : int;
  queue_len : int -> int;
  on_air_flow : int -> int option;
  iter_queued : int -> (int -> unit) -> unit;
  domain : int -> int list;
  gamma : int -> float;
  link_src : int -> int;
}

type flow_acct = {
  pacing : pacing;
  mutable cur_rate : float;          (* current Σ_r x_r, Mbit/s *)
  mutable max_rate_window : float;   (* max of cur_rate this window *)
  mutable injected : int;            (* cumulative frames *)
  mutable delivered : int;
  mutable dropped : int;
  mutable injected_window : int;
  mutable probes_window : int;
  mutable delivered_window : int;
  mutable inflight_at_window_start : int;
  mutable next_release : int;        (* next seq the reorder may release *)
}

type t = {
  mode : [ `Raise | `Collect ];
  mutable flows : flow_acct array;
  mutable queue_limit : int;
  mutable frame_bytes : int;
  mutable control_period : float;
  mutable checks : int;
  mutable viols_rev : violation list;
  (* scratch buffer for the per-flow attribution walk *)
  mutable scratch : int array;
}

let create ?(mode = `Raise) () =
  {
    mode;
    flows = [||];
    queue_limit = max_int;
    frame_bytes = 1;
    control_period = 0.1;
    checks = 0;
    viols_rev = [];
    scratch = [||];
  }

let env_enabled () = Sys.getenv_opt "EMPOWER_CHECK" <> None

let configure t ~n_links:_ ~queue_limit ~frame_bytes ~control_period =
  t.queue_limit <- queue_limit;
  t.frame_bytes <- frame_bytes;
  t.control_period <- control_period

let register_flow t ~flow ~pacing ~rate =
  if flow <> Array.length t.flows then
    invalid_arg "Invariants.register_flow: flows must be registered in order";
  let acct =
    {
      pacing;
      cur_rate = rate;
      max_rate_window = rate;
      injected = 0;
      delivered = 0;
      dropped = 0;
      injected_window = 0;
      probes_window = 0;
      delivered_window = 0;
      inflight_at_window_start = 0;
      next_release = 0;
    }
  in
  t.flows <- Array.append t.flows [| acct |];
  t.scratch <- Array.make (Array.length t.flows) 0

let report t ~time ~rule ?link ?node ?flow detail =
  let v = { time; rule; link; node; flow; detail } in
  match t.mode with
  | `Raise -> raise (Violation v)
  | `Collect -> t.viols_rev <- v :: t.viols_rev

let inflight a = a.injected - a.delivered - a.dropped

(* ---------- accounting hooks ---------- *)

let on_inject t ~now:_ ~flow =
  let a = t.flows.(flow) in
  a.injected <- a.injected + 1;
  a.injected_window <- a.injected_window + 1

(* Reclaim probes are scheduled by the recovery backoff, not by the
   pacing loop, so they count toward frame conservation but are exempt
   from the paced-injection window. *)
let on_probe t ~now:_ ~flow =
  let a = t.flows.(flow) in
  a.injected <- a.injected + 1;
  a.probes_window <- a.probes_window + 1

let on_deliver t ~now ~flow =
  let a = t.flows.(flow) in
  a.delivered <- a.delivered + 1;
  a.delivered_window <- a.delivered_window + 1;
  if a.delivered + a.dropped > a.injected then
    report t ~time:now ~rule:"flow-conservation" ~flow
      (Printf.sprintf "delivered %d + dropped %d exceeds injected %d"
         a.delivered a.dropped a.injected)

let on_drop t ~now ~flow ~link ~reason =
  let a = t.flows.(flow) in
  a.dropped <- a.dropped + 1;
  if a.delivered + a.dropped > a.injected then
    report t ~time:now ~rule:"flow-conservation" ?link ~flow
      (Printf.sprintf "drop (%s): delivered %d + dropped %d exceeds injected %d"
         (reason_name reason) a.delivered a.dropped a.injected)

let on_release t ~now ~flow ev =
  let a = t.flows.(flow) in
  let seq, kind =
    match ev with `Deliver s -> (s, "deliver") | `Lost s -> (s, "lost")
  in
  if seq < a.next_release then
    report t ~time:now ~rule:"reorder-duplicate" ~flow
      (Printf.sprintf "%s of seq %d after releases up to %d" kind seq
         (a.next_release - 1))
  else if seq > a.next_release then
    report t ~time:now ~rule:"reorder-gap" ~flow
      (Printf.sprintf "%s of seq %d while %d was never released" kind seq
         a.next_release)
  else a.next_release <- a.next_release + 1

let on_rate t ~flow ~rate =
  let a = t.flows.(flow) in
  a.cur_rate <- rate;
  if rate > a.max_rate_window then a.max_rate_window <- rate

(* ---------- per-event checks ---------- *)

let check_step t ~now view =
  t.checks <- t.checks + 1;
  (* Ledger total of frames that should still be inside the network. *)
  let ledger = ref 0 in
  Array.iteri
    (fun fid a ->
      let fl = inflight a in
      if fl < 0 then
        report t ~time:now ~rule:"flow-conservation" ~flow:fid
          (Printf.sprintf "negative in-flight: injected %d delivered %d dropped %d"
             a.injected a.delivered a.dropped);
      ledger := !ledger + fl)
    t.flows;
  let actual = ref 0 in
  for l = 0 to view.n_links - 1 do
    let qlen = view.queue_len l in
    if qlen > t.queue_limit then
      report t ~time:now ~rule:"queue-bound" ~link:l ~node:(view.link_src l)
        (Printf.sprintf "queue holds %d frames, limit %d" qlen t.queue_limit);
    actual := !actual + qlen;
    match view.on_air_flow l with
    | None -> ()
    | Some _ ->
      incr actual;
      (* Carrier sensing: nothing else of I_l may be transmitting. *)
      List.iter
        (fun l' ->
          if l' <> l && view.on_air_flow l' <> None then
            report t ~time:now ~rule:"medium-occupancy" ~link:l
              ~node:(view.link_src l)
              (Printf.sprintf "links %d and %d on the air in one domain" l l'))
        (view.domain l)
  done;
  if !actual <> !ledger then
    report t ~time:now ~rule:"frame-conservation"
      (Printf.sprintf
         "MAC holds %d frames but ledger says %d (injected %d delivered %d dropped %d)"
         !actual !ledger
         (Array.fold_left (fun acc a -> acc + a.injected) 0 t.flows)
         (Array.fold_left (fun acc a -> acc + a.delivered) 0 t.flows)
         (Array.fold_left (fun acc a -> acc + a.dropped) 0 t.flows));
  for l = 0 to view.n_links - 1 do
    let g = view.gamma l in
    if g < 0.0 || not (Float.is_finite g) then
      report t ~time:now ~rule:"negative-price" ~link:l ~node:(view.link_src l)
        (Printf.sprintf "gamma = %g" g)
  done

(* ---------- per-window checks ---------- *)

let on_tick t ~now view =
  (* Attribute every queued / on-air frame to its flow and reconcile
     with the ledger: this is the check a skipped or misattributed
     drop counter cannot survive. *)
  let counts = t.scratch in
  Array.fill counts 0 (Array.length counts) 0;
  for l = 0 to view.n_links - 1 do
    view.iter_queued l (fun f -> counts.(f) <- counts.(f) + 1);
    match view.on_air_flow l with
    | Some f -> counts.(f) <- counts.(f) + 1
    | None -> ()
  done;
  Array.iteri
    (fun fid a ->
      let ledger = inflight a in
      if counts.(fid) <> ledger then
        report t ~time:now ~rule:"frame-conservation" ~flow:fid
          (Printf.sprintf
             "MAC holds %d frames of this flow but ledger says %d (injected %d delivered %d dropped %d)"
             counts.(fid) ledger a.injected a.delivered a.dropped);
      (* Paced injection: the source may not beat the controller's
         allocation. Slack: two frames of pacing granularity, plus the
         token-bucket depth for policed TCP (max of 8 frames and a
         quarter-second of the allocation, mirroring the engine). *)
      (match a.pacing with
      | Unpoliced -> ()
      | Paced | Token_bucket ->
        let rate_bytes = a.max_rate_window *. 1e6 /. 8.0 in
        let budget = rate_bytes *. t.control_period in
        let slack =
          let frames = 2.0 *. float_of_int t.frame_bytes in
          match a.pacing with
          | Token_bucket ->
            frames
            +. Float.max (8.0 *. float_of_int t.frame_bytes) (rate_bytes *. 0.25)
          | Paced | Unpoliced -> frames
        in
        let sent = float_of_int (a.injected_window * t.frame_bytes) in
        if sent > budget +. slack then
          report t ~time:now ~rule:"paced-injection" ~flow:fid
            (Printf.sprintf
               "injected %d frames (%.0f B) in one period against a budget of %.0f B + %.0f B slack (max rate %.3f Mbit/s)"
               a.injected_window sent budget slack a.max_rate_window));
      (* Goodput bound: a flow cannot deliver more than it injected
         this window plus the backlog it had at the window start —
         hence, transitively, never more than Σ_r x_r allows. *)
      let injectable =
        a.injected_window + a.probes_window + a.inflight_at_window_start
      in
      if a.delivered_window > injectable then
        report t ~time:now ~rule:"goodput-bound" ~flow:fid
          (Printf.sprintf
             "delivered %d frames in one period with %d injected + %d probed + \
              %d backlogged"
             a.delivered_window a.injected_window a.probes_window
             a.inflight_at_window_start);
      a.injected_window <- 0;
      a.probes_window <- 0;
      a.delivered_window <- 0;
      a.inflight_at_window_start <- inflight a;
      a.max_rate_window <- a.cur_rate)
    t.flows

(* ---------- results ---------- *)

let violations t = List.rev t.viols_rev
let events_checked t = t.checks
let frames_injected t = Array.fold_left (fun acc a -> acc + a.injected) 0 t.flows
let frames_delivered t = Array.fold_left (fun acc a -> acc + a.delivered) 0 t.flows
let frames_dropped t = Array.fold_left (fun acc a -> acc + a.dropped) 0 t.flows
