(* Parallel-array binary min-heap.

   Priorities live in a bare [float array] (unboxed storage), sequence
   numbers in an [int array] and payloads in an ['a array], so a [push]
   allocates nothing beyond occasional geometric regrowth: no per-entry
   record and no boxed priority.  [vals] stays [[||]] until the first
   push supplies a filler element, because a polymorphic array cannot be
   pre-sized without a witness value. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : 'a array; (* [[||]] until first push; then same length as prios *)
  mutable len : int;
  mutable next_seq : int;
}

let default_capacity = 16

let create ?(capacity = default_capacity) () =
  let capacity = if capacity < 1 then 1 else capacity in
  {
    prios = Array.make capacity infinity;
    seqs = Array.make capacity 0;
    vals = [||];
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0

let size t = t.len

let capacity t = Array.length t.prios

(* Keep the backing arrays so a heap that is cleared and refilled (the
   per-run event queue) never regrows from scratch. *)
let clear t = t.len <- 0

(* Entry ordering: priority first, then insertion sequence for FIFO ties. *)
let lt t i j =
  t.prios.(i) < t.prios.(j)
  || (t.prios.(i) = t.prios.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let grow t =
  let cap = Array.length t.prios in
  let ncap = cap * 2 in
  let nprios = Array.make ncap infinity in
  Array.blit t.prios 0 nprios 0 t.len;
  t.prios <- nprios;
  let nseqs = Array.make ncap 0 in
  Array.blit t.seqs 0 nseqs 0 t.len;
  t.seqs <- nseqs;
  (* len = cap >= 1 here, so vals is non-empty and vals.(0) is a valid
     filler. *)
  let nvals = Array.make ncap t.vals.(0) in
  Array.blit t.vals 0 nvals 0 t.len;
  t.vals <- nvals

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let s = if l < t.len && lt t l i then l else i in
  let s = if r < t.len && lt t r s then r else s in
  if s <> i then begin
    swap t i s;
    sift_down t s
  end

let push t prio value =
  if Array.length t.vals = 0 then
    t.vals <- Array.make (Array.length t.prios) value;
  if t.len = Array.length t.prios then grow t;
  let i = t.len in
  t.prios.(i) <- prio;
  t.seqs.(i) <- t.next_seq;
  t.vals.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t i

let top_prio t =
  if t.len = 0 then invalid_arg "Pqueue.top_prio: empty heap";
  t.prios.(0)

let top t =
  if t.len = 0 then invalid_arg "Pqueue.top: empty heap";
  t.vals.(0)

let drop t =
  if t.len = 0 then invalid_arg "Pqueue.drop: empty heap";
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prios.(0) <- t.prios.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.vals.(0) <- t.vals.(t.len);
    sift_down t 0
  end

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and v = t.vals.(0) in
    drop t;
    Some (prio, v)
  end

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.vals.(0))

let drop_push t prio value =
  if t.len = 0 then push t prio value
  else begin
    t.prios.(0) <- prio;
    t.seqs.(0) <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    t.vals.(0) <- value;
    sift_down t 0
  end

let pop_push t prio value =
  if t.len = 0 then begin
    push t prio value;
    None
  end
  else begin
    let p0 = t.prios.(0) and v0 = t.vals.(0) in
    drop_push t prio value;
    Some (p0, v0)
  end
