(** Mutable binary min-heap keyed by float priority.

    Used by Dijkstra/Yen in [empower_graph] and by the event queue of
    the discrete-event simulator, where the priority is an event
    timestamp. Ties are broken by insertion order (FIFO), which keeps
    simulations deterministic.

    The heap is backed by parallel arrays — a bare [float array] for
    priorities, an [int array] for tie-break sequence numbers and an
    ['a array] for payloads — so pushing allocates nothing beyond
    occasional geometric regrowth. *)

type 'a t
(** A min-heap of ['a] elements with float priorities. *)

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] (default 16) pre-sizes the backing
    arrays so a heap whose peak population is known up front never pays
    for regrowth. Values below 1 are clamped to 1. *)

val is_empty : 'a t -> bool
(** [true] iff the heap holds no element. *)

val size : 'a t -> int
(** Number of queued elements. *)

val capacity : 'a t -> int
(** Current backing-store capacity (slots before the next regrowth).
    Exposed for tests and diagnostics. *)

val push : 'a t -> float -> 'a -> unit
(** [push t prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties. *)

val pop_push : 'a t -> float -> 'a -> (float * 'a) option
(** [pop_push t prio x] is observably identical to
    [let r = pop t in push t prio x; r] — the popped minimum (or [None]
    on an empty heap) followed by the insertion of [x] with a fresh
    sequence number — but performs a single sift instead of two. The
    element just inserted is never returned by the same call. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-priority element without removing it. *)

val top_prio : 'a t -> float
(** Priority of the minimum element. @raise Invalid_argument on an
    empty heap. Allocation-free alternative to {!peek} for hot loops. *)

val top : 'a t -> 'a
(** Minimum element itself, without removing it.
    @raise Invalid_argument on an empty heap. *)

val drop : 'a t -> unit
(** Remove the minimum element without returning it (allocation-free
    {!pop}). @raise Invalid_argument on an empty heap. *)

val drop_push : 'a t -> float -> 'a -> unit
(** {!pop_push} without materialising the popped pair: replaces the
    minimum with [x] (fresh sequence number) in a single sift-down, or
    degenerates to {!push} on an empty heap. *)

val clear : 'a t -> unit
(** Drop all elements. The backing capacity is retained, so clearing
    and refilling a heap never regrows from scratch. *)
