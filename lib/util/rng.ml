(* SplitMix64 on two native-int 32-bit halves.

   The state and every intermediate live in immediate native ints (the
   64-bit word is carried as [hi]/[lo] 32-bit halves), so drawing
   allocates nothing: the historical [int64]-based implementation boxed
   the state plus every add/xor/mul intermediate, which dominated the
   simulator's per-frame allocation (route draw + collision draw per
   frame). The arithmetic below reproduces Int64 semantics bit-for-bit
   — wrap-around 64-bit add and multiply via 16/32-bit limbs — and the
   equivalence is pinned by a QCheck property against a reference
   Int64 implementation in the test suite, plus every golden trace. *)

type t = {
  mutable hi : int;
  mutable lo : int;
  (* Scratch halves for the current draw: [advance] leaves the
     scrambled result here so no step returns a tuple — a tuple per
     draw (three, with the scramble steps) was the generator's entire
     allocation footprint. All-int record, so the writes are plain
     stores; the scratch is per-instance, keeping parallel domains
     race-free. *)
  mutable shi : int;
  mutable slo : int;
}
(* Invariant: 0 <= hi, lo < 2^32. *)

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* mix constants 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let c1_hi = 0xBF58476D
let c1_lo = 0x1CE4E5B9
let c2_hi = 0x94D049BB
let c2_lo = 0x133111EB

let create seed =
  { hi = (seed asr 32) land mask32; lo = seed land mask32; shi = 0; slo = 0 }

let copy t = { hi = t.hi; lo = t.lo; shi = 0; slo = 0 }

(* (a * b) mod 2^32 for 32-bit a, b: split a into 16-bit limbs so no
   intermediate product exceeds 2^48. *)
let mul32_low a b =
  (((a land 0xFFFF) * b) + ((((a lsr 16) * b) land 0xFFFF) lsl 16)) land mask32

(* Full 64-bit product (mod 2^64) of (ahi:alo) and (bhi:blo), returned
   through [res] as hi/lo halves. 16-bit limbs of the low halves give
   the exact 64-bit product of alo*blo; the cross terms only feed the
   high word, so mod-2^32 products suffice there. *)
let scramble_into t hi lo chi clo =
  (* z * c where z = hi:lo, c = chi:clo; result lands in shi:slo *)
  let a0 = lo land 0xFFFF and a1 = lo lsr 16 in
  let b0 = clo land 0xFFFF and b1 = clo lsr 16 in
  let p00 = a0 * b0 in
  let p01 = a0 * b1 in
  let p10 = a1 * b0 in
  let p11 = a1 * b1 in
  let mid = (p00 lsr 16) + (p01 land 0xFFFF) + (p10 land 0xFFFF) in
  let lo' = ((mid land 0xFFFF) lsl 16) lor (p00 land 0xFFFF) in
  let carry = (mid lsr 16) + (p01 lsr 16) + (p10 lsr 16) + p11 in
  let hi' = (carry + mul32_low lo chi + mul32_low hi clo) land mask32 in
  t.shi <- hi';
  t.slo <- lo'

(* Advance the state by the golden gamma and scramble (SplitMix64):
   the raw 64-bit draw is left in [shi]/[slo]. *)
let advance t =
  (* state <- state + gamma (mod 2^64) *)
  let lo_sum = t.lo + gamma_lo in
  let lo = lo_sum land mask32 in
  let hi = (t.hi + gamma_hi + (lo_sum lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30; z *= c1 *)
  let zhi = hi lxor (hi lsr 30) in
  let zlo = lo lxor (((hi lsl 2) land mask32) lor (lo lsr 30)) in
  scramble_into t zhi zlo c1_hi c1_lo;
  (* z ^= z >>> 27; z *= c2 *)
  let zhi' = t.shi lxor (t.shi lsr 27) in
  let zlo' = t.slo lxor (((t.shi lsl 5) land mask32) lor (t.slo lsr 27)) in
  scramble_into t zhi' zlo' c2_hi c2_lo;
  (* z ^= z >>> 31 *)
  let rhi = t.shi lxor (t.shi lsr 31) in
  let rlo = t.slo lxor (((t.shi lsl 1) land mask32) lor (t.slo lsr 31)) in
  t.shi <- rhi;
  t.slo <- rlo

let int64 t =
  advance t;
  Int64.logor (Int64.shift_left (Int64.of_int t.shi) 32) (Int64.of_int t.slo)

let split t =
  advance t;
  { hi = t.shi; lo = t.slo; shi = 0; slo = 0 }

let float t =
  (* Top 53 bits of the draw give a uniform double in [0,1): exactly
     [Int64.to_float (z >>> 11) * 2^-53] of the historical code — the
     53-bit value is nonnegative and fits a native int, so the
     int-to-float conversion is exact either way. *)
  advance t;
  let bits = (t.shi lsl 21) lor (t.slo lsr 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int; modulo bias is negligible for our n << 2^62. *)
  advance t;
  ((t.shi lsl 30) lor (t.slo lsr 2)) mod n

let bool t =
  advance t;
  t.slo land 1 = 1

let gaussian t ~mean ~std =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t in
      mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~rate =
  assert (rate > 0.0);
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else -.log u /. rate
  in
  draw ()

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
