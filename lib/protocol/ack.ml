type route_report = {
  route : int;
  qr : float;
  highest_seq : int;
  bytes : int;
  marked : int;
}

type t = {
  flow : int;
  sent_at : float;
  reports : route_report list;
}

let period = 0.1

type collector = {
  flow : int;
  qr : float array;
  highest : int array;
  window_bytes : int array;
  marked_bytes : int array;
}

let collector ~flow ~n_routes =
  {
    flow;
    qr = Array.make n_routes 0.0;
    highest = Array.make n_routes (-1);
    window_bytes = Array.make n_routes 0;
    marked_bytes = Array.make n_routes 0;
  }

let on_packet ?(ce = false) c ~route ~qr ~seq ~bytes =
  c.qr.(route) <- qr;
  if seq > c.highest.(route) then c.highest.(route) <- seq;
  c.window_bytes.(route) <- c.window_bytes.(route) + bytes;
  if ce then c.marked_bytes.(route) <- c.marked_bytes.(route) + bytes

let emit c ~now =
  let reports =
    List.init (Array.length c.qr) (fun r ->
        {
          route = r;
          qr = c.qr.(r);
          highest_seq = c.highest.(r);
          bytes = c.window_bytes.(r);
          marked = c.marked_bytes.(r);
        })
  in
  Array.fill c.window_bytes 0 (Array.length c.window_bytes) 0;
  Array.fill c.marked_bytes 0 (Array.length c.marked_bytes) 0;
  { flow = c.flow; sent_at = now; reports }
