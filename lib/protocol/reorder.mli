(** Destination-side packet reordering across routes (Section 6.1).

    Packets of one flow arrive over several routes with a shared
    sequence-number space and must be released in order. EMPoWER uses
    no timeouts: a missing sequence number S is declared lost exactly
    when a packet with sequence number greater than S has been
    received on {e every} route of the flow (per-route delivery is
    FIFO, so nothing older can still arrive).

    The buffer is generic in the payload so the UDP engine stores
    packet records and the TCP layer stores segments. *)

type 'a event =
  | Deliver of int * 'a  (** in-order release of (seq, payload) *)
  | Lost of int          (** seq declared lost, skipped *)

type 'a t
(** Reorder state for one flow. *)

val create : ?declare_losses:bool -> n_routes:int -> unit -> 'a t
(** A buffer expecting packets from [n_routes] routes (>= 1), sequence
    numbers starting at 0. With [declare_losses:false] (used under
    TCP, where the sender retransmits) gaps are never skipped: the
    buffer waits for the retransmission instead of emitting
    [Lost]. *)

val push : 'a t -> route:int -> seq:int -> 'a -> 'a event list
(** Accept a packet received on [route] and return the events it
    triggers, in release order. Duplicate or already-released
    sequence numbers are ignored (empty list). Raises
    [Invalid_argument] on a bad route index or negative seq. *)

val push_cb :
  'a t ->
  route:int ->
  seq:int ->
  'a ->
  deliver:(int -> 'a -> unit) ->
  lost:(int -> unit) ->
  unit
(** Exactly {!push}, but the events fire through the callbacks in
    release order instead of materialising a list — the engine's
    zero-allocation delivery path. The in-order common case bypasses
    the buffer map entirely. *)

val pending : 'a t -> int
(** Number of buffered, not-yet-releasable packets. *)

val next_expected : 'a t -> int
(** The sequence number the buffer is waiting for. *)

(** Per-route delay equalization (Section 6.4): TCP suffers when one
    route is much faster than the other, because packets on the fast
    route time out while waiting for the slow route. The destination
    measures per-route one-way delays (EWMA) and holds fast-route
    packets back until the slow route's delay has elapsed. *)
module Equalizer : sig
  type t

  val create : n_routes:int -> t
  (** Equalizer with no delay estimates yet. *)

  val observe : t -> route:int -> delay:float -> unit
  (** Record a measured one-way delay (seconds) for a route. *)

  val estimated_delay : t -> route:int -> float
  (** Current EWMA delay of a route (0 when unobserved). *)

  val release_delay : t -> route:int -> float
  (** Extra delay to impose on a packet that just arrived on [route]:
      the gap to the slowest route's estimated delay. *)
end
