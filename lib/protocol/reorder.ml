type 'a event =
  | Deliver of int * 'a
  | Lost of int

module Int_map = Map.Make (Int)

type 'a t = {
  mutable buffer : 'a Int_map.t;
  mutable next_seq : int;
  highest : int array;  (* highest seq received per route; -1 initially *)
  declare_losses : bool;
}

let create ?(declare_losses = true) ~n_routes () =
  if n_routes < 1 then invalid_arg "Reorder.create: n_routes < 1";
  {
    buffer = Int_map.empty;
    next_seq = 0;
    highest = Array.make n_routes (-1);
    declare_losses;
  }

let pending t = Int_map.cardinal t.buffer

let next_expected t = t.next_seq

(* Release everything in-order from the buffer, declaring losses for
   gaps that can no longer be filled (every route has moved past
   them). *)
let drain t =
  let events = ref [] in
  let all_routes_past s = Array.for_all (fun h -> h > s) t.highest in
  let progress = ref true in
  while !progress do
    progress := false;
    match Int_map.find_opt t.next_seq t.buffer with
    | Some payload ->
      events := Deliver (t.next_seq, payload) :: !events;
      t.buffer <- Int_map.remove t.next_seq t.buffer;
      t.next_seq <- t.next_seq + 1;
      progress := true
    | None ->
      if t.declare_losses && all_routes_past t.next_seq then begin
        events := Lost t.next_seq :: !events;
        t.next_seq <- t.next_seq + 1;
        progress := true
      end
  done;
  List.rev !events

(* Callback variant of [push]: the exact event sequence of [push],
   delivered through [deliver]/[lost] instead of an allocated list.
   The steady-state case — the arriving seq is the expected one and
   the buffer is empty — touches neither the map nor the list
   allocator. *)
let rec past_all h i s =
  i >= Array.length h || (h.(i) > s && past_all h (i + 1) s)

let drain_cb t ~deliver ~lost =
  let progress = ref true in
  while !progress do
    progress := false;
    match Int_map.find_opt t.next_seq t.buffer with
    | Some payload ->
      deliver t.next_seq payload;
      t.buffer <- Int_map.remove t.next_seq t.buffer;
      t.next_seq <- t.next_seq + 1;
      progress := true
    | None ->
      if t.declare_losses && past_all t.highest 0 t.next_seq then begin
        lost t.next_seq;
        t.next_seq <- t.next_seq + 1;
        progress := true
      end
  done

let push_cb t ~route ~seq payload ~deliver ~lost =
  if route < 0 || route >= Array.length t.highest then
    invalid_arg "Reorder.push: bad route";
  if seq < 0 then invalid_arg "Reorder.push: negative seq";
  if seq > t.highest.(route) then t.highest.(route) <- seq;
  if seq = t.next_seq && Int_map.is_empty t.buffer then begin
    deliver seq payload;
    t.next_seq <- seq + 1
    (* The drain below covers gaps the new highest may have just made
       undeliverable. *)
  end
  else if not (seq < t.next_seq || Int_map.mem seq t.buffer) then
    t.buffer <- Int_map.add seq payload t.buffer;
  drain_cb t ~deliver ~lost

let push t ~route ~seq payload =
  if route < 0 || route >= Array.length t.highest then
    invalid_arg "Reorder.push: bad route";
  if seq < 0 then invalid_arg "Reorder.push: negative seq";
  if seq > t.highest.(route) then t.highest.(route) <- seq;
  if seq < t.next_seq || Int_map.mem seq t.buffer then drain t
  else begin
    t.buffer <- Int_map.add seq payload t.buffer;
    drain t
  end

module Equalizer = struct
  type t = {
    delays : float array;    (* EWMA one-way delay per route *)
    observed : bool array;
  }

  let ewma_weight = 0.1

  let create ~n_routes =
    { delays = Array.make n_routes 0.0; observed = Array.make n_routes false }

  let observe t ~route ~delay =
    if t.observed.(route) then
      t.delays.(route) <-
        ((1.0 -. ewma_weight) *. t.delays.(route)) +. (ewma_weight *. delay)
    else begin
      t.delays.(route) <- delay;
      t.observed.(route) <- true
    end

  let estimated_delay t ~route = t.delays.(route)

  let release_delay t ~route =
    let slowest = Array.fold_left Float.max 0.0 t.delays in
    Float.max 0.0 (slowest -. t.delays.(route))
end
