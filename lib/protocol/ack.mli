(** Acknowledgement records (Sections 4.2 and 6.1).

    The destination of each flow sends an acknowledgement (at most)
    every 100 ms over the best reverse single-path, in prioritized
    queues. An ACK echoes, per route: the latest q_r observed in
    arriving headers (the input of the source's rate update), the
    highest sequence received, and the bytes received since the last
    ACK (the source's goodput/loss view). The destination-side
    {!collector} accumulates these between ACK emissions. *)

type route_report = {
  route : int;         (** route index within the flow *)
  qr : float;          (** latest q_r seen on this route; 0 if none *)
  highest_seq : int;   (** highest sequence received; -1 if none *)
  bytes : int;         (** bytes received on this route since last ACK *)
  marked : int;        (** of [bytes], those that arrived CE-marked *)
}

type t = {
  flow : int;
  sent_at : float;
  reports : route_report list;  (** one per route of the flow *)
}

val period : float
(** 0.1 s — the paper's 100 ms ACK interval. *)

type collector
(** Destination-side accumulator for one flow. *)

val collector : flow:int -> n_routes:int -> collector
(** Fresh accumulator. *)

val on_packet :
  ?ce:bool -> collector -> route:int -> qr:float -> seq:int -> bytes:int -> unit
(** Record an arriving data packet's header fields. [ce] (default
    false) is the frame's ECN congestion-experienced bit; marked bytes
    are accumulated separately so the source can compute a per-window
    marked fraction. *)

val emit : collector -> now:float -> t
(** Build the ACK for the current window and reset the per-window
    byte counters (q_r and highest_seq persist: they are "latest
    state", not window sums). *)
