type t = {
  per_conn : (float * int) list array;
  arrivals : int;
  offered_bytes : int;
  offered_load : float;
}

let generate rng ~cdf ~load ~capacity_mbps ~conns ~duration =
  if not (Float.is_finite load) || load <= 0.0 || load > 1.0 then
    invalid_arg (Printf.sprintf "Loadgen.generate: load %g outside (0, 1]" load);
  if not (Float.is_finite capacity_mbps) || capacity_mbps <= 0.0 then
    invalid_arg "Loadgen.generate: capacity must be positive";
  if conns <= 0 then invalid_arg "Loadgen.generate: conns must be positive";
  if not (Float.is_finite duration) || duration <= 0.0 then
    invalid_arg "Loadgen.generate: duration must be positive";
  let mean = Cdf.mean cdf in
  let lambda = load *. capacity_mbps *. 1e6 /. 8.0 /. mean in
  let per_conn = Array.make conns [] in
  let arrivals = ref 0 and offered_bytes = ref 0 in
  (* Fixed draw order per arrival — gap, size, connection — so the
     size sequence is load-independent for a given seed (the sweep's
     common-random-numbers property). *)
  let rec go t =
    let t = t +. Rng.exponential rng ~rate:lambda in
    if t < duration then begin
      let bytes = Cdf.sample_bytes cdf rng in
      let c = Rng.int rng conns in
      per_conn.(c) <- (t, bytes) :: per_conn.(c);
      incr arrivals;
      offered_bytes := !offered_bytes + bytes;
      go t
    end
  in
  go 0.0;
  let per_conn = Array.map List.rev per_conn in
  {
    per_conn;
    arrivals = !arrivals;
    offered_bytes = !offered_bytes;
    offered_load =
      float_of_int !offered_bytes *. 8.0 /. (capacity_mbps *. 1e6 *. duration);
  }
