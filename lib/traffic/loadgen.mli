(** Open-loop arrival generation at a target load factor.

    Given a flow-size distribution ({!Cdf}) and a capacity in Mbit/s,
    the generator emits a Poisson arrival process whose rate makes the
    {e offered} byte rate equal [load] times the capacity:

    {v lambda = load * capacity_mbps * 1e6 / 8 / Cdf.mean  [flows/s] v}

    Each arrival draws a size from the CDF and is dealt onto one of
    [conns] parallel connections chosen uniformly — the ns-2
    [spine_empirical] recipe. The result is a fully materialized
    schedule (the engine replays it without consuming randomness),
    one [(arrival_s, bytes)] list per connection, each in
    nondecreasing arrival order and directly usable as a
    [Workload.Empirical] schedule.

    Determinism: exactly three draws per arrival, in the fixed order
    gap, size, connection. Because the gap and size streams do not
    depend on [load], two generators with the same [rng] seed and
    different loads see the same arrival sequence — one is a time
    prefix of the other — which is what makes fixed-seed load sweeps
    comparable point to point. *)

type t = {
  per_conn : (float * int) list array;
      (** length [conns]; each list time-sorted [(arrival_s, bytes)] *)
  arrivals : int;  (** total arrivals across connections *)
  offered_bytes : int;  (** sum of all sampled sizes *)
  offered_load : float;
      (** achieved offered fraction of capacity:
          [offered_bytes * 8 / (capacity_mbps * 1e6 * duration)] *)
}

val generate :
  Rng.t ->
  cdf:Cdf.t ->
  load:float ->
  capacity_mbps:float ->
  conns:int ->
  duration:float ->
  t
(** Sample arrivals over [0, duration). Raises [Invalid_argument] if
    [load] is outside (0, 1], or [capacity_mbps], [conns] or
    [duration] is not positive. A short [duration] at a low [load]
    can legitimately produce zero arrivals. *)
