type pacing = Cbr | Poisson_paced

let pacing_name = function Cbr -> "cbr" | Poisson_paced -> "poisson"

let pacing_of_name = function
  | "cbr" -> Some Cbr
  | "poisson" -> Some Poisson_paced
  | _ -> None

type t =
  | Saturated
  | File of { bytes : int }
  | Poisson_files of { bytes : int; mean_gap_s : float; count : int }
  | Empirical of { files : (float * int) list; pacing : pacing }

let describe = function
  | Saturated -> "saturated UDP"
  | File { bytes } -> Printf.sprintf "file %.1f MB" (float_of_int bytes /. 1e6)
  | Poisson_files { bytes; mean_gap_s; count } ->
    Printf.sprintf "%d x %.1f MB files (Poisson, mean gap %.0f s)" count
      (float_of_int bytes /. 1e6)
      mean_gap_s
  | Empirical { files; pacing } ->
    let total = List.fold_left (fun acc (_, b) -> acc + b) 0 files in
    Printf.sprintf "%d empirical transfers, %.1f MB total (%s paced)"
      (List.length files)
      (float_of_int total /. 1e6)
      (pacing_name pacing)

let total_bytes = function
  | Saturated -> None
  | File { bytes } -> Some bytes
  | Poisson_files { bytes; count; _ } -> Some (bytes * count)
  | Empirical { files; _ } ->
    Some (List.fold_left (fun acc (_, b) -> acc + b) 0 files)

let arrival_times rng = function
  | Saturated | File _ -> [ 0.0 ]
  | Poisson_files { mean_gap_s; count; _ } ->
    let rec go t n acc =
      if n = 0 then List.rev acc
      else begin
        let gap = Rng.exponential rng ~rate:(1.0 /. mean_gap_s) in
        let t' = t +. gap in
        go t' (n - 1) (t' :: acc)
      end
    in
    go 0.0 count []
  | Empirical { files; _ } -> List.map fst files
