(* Empirical flow-size CDFs: strict parser, closed-form moments and
   an inverse-transform sampler. See the .mli for the distribution
   semantics (point mass at the first size, uniform between points). *)

type t = {
  sizes : float array;
  probs : float array;  (* cumulative, nondecreasing, last = 1.0 *)
}

let of_points pts =
  match pts with
  | [] -> Error "empty CDF: no data points"
  | _ ->
    let n = List.length pts in
    let sizes = Array.make n 0.0 and probs = Array.make n 0.0 in
    let rec fill i = function
      | [] -> Ok ()
      | (s, p) :: rest ->
        if not (Float.is_finite s) || s <= 0.0 then
          Error (Printf.sprintf "point %d: size %g is not a positive number" (i + 1) s)
        else if not (Float.is_finite p) || p < 0.0 || p > 1.0 +. 1e-9 then
          Error
            (Printf.sprintf "point %d: cumulative probability %g outside [0, 1]"
               (i + 1) p)
        else if i > 0 && s <= sizes.(i - 1) then
          Error
            (Printf.sprintf
               "point %d: size %g does not increase over %g (sizes must be \
                strictly increasing)"
               (i + 1) s
               sizes.(i - 1))
        else if i > 0 && p < probs.(i - 1) then
          Error
            (Printf.sprintf
               "point %d: cumulative probability %g decreases below %g \
                (non-monotone CDF)"
               (i + 1) p
               probs.(i - 1))
        else begin
          sizes.(i) <- s;
          probs.(i) <- Float.min p 1.0;
          fill (i + 1) rest
        end
    in
    (match fill 0 pts with
    | Error _ as e -> e
    | Ok () ->
      if Float.abs (probs.(n - 1) -. 1.0) > 1e-9 then
        Error
          (Printf.sprintf
             "unnormalized CDF: final cumulative probability is %g, not 1"
             probs.(n - 1))
      else begin
        probs.(n - 1) <- 1.0;
        Ok { sizes; probs }
      end)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec scan lineno acc = function
    | [] -> (
      match of_points (List.rev acc) with
      | Ok _ as ok -> ok
      | Error e -> Error e)
    | line :: rest -> (
      let data =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let fields =
        String.split_on_char '\t' data
        |> List.concat_map (String.split_on_char ' ')
        |> List.concat_map (String.split_on_char '\r')
        |> List.filter (fun s -> s <> "")
      in
      match fields with
      | [] -> scan (lineno + 1) acc rest
      | [ s; p ] -> (
        match (float_of_string_opt s, float_of_string_opt p) with
        | Some s, Some p -> scan (lineno + 1) ((s, p) :: acc) rest
        | _ ->
          Error
            (Printf.sprintf "line %d: expected two numbers, got %S %S" lineno s p))
      | _ ->
        Error
          (Printf.sprintf
             "line %d: expected `size_bytes cum_prob`, got %d fields" lineno
             (List.length fields)))
  in
  scan 1 [] lines

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
    match parse text with
    | Ok _ as ok -> ok
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let points t = Array.to_list (Array.map2 (fun s p -> (s, p)) t.sizes t.probs)

let mean t =
  let acc = ref (t.probs.(0) *. t.sizes.(0)) in
  for i = 1 to Array.length t.sizes - 1 do
    acc :=
      !acc
      +. (t.probs.(i) -. t.probs.(i - 1))
         *. (t.sizes.(i - 1) +. t.sizes.(i))
         /. 2.0
  done;
  !acc

let quantile t q =
  let q = Float.max 0.0 (Float.min 1.0 q) in
  if q <= t.probs.(0) then t.sizes.(0)
  else begin
    (* First index with probs.(i) >= q; the segment (i-1, i] has mass
       (q lies strictly above probs.(i-1), so the mass is positive). *)
    let n = Array.length t.probs in
    let i = ref 1 in
    while !i < n - 1 && t.probs.(!i) < q do
      incr i
    done;
    let i = !i in
    let p0 = t.probs.(i - 1) and p1 = t.probs.(i) in
    let s0 = t.sizes.(i - 1) and s1 = t.sizes.(i) in
    s0 +. ((s1 -. s0) *. (q -. p0) /. (p1 -. p0))
  end

let sample t rng = quantile t (Rng.float rng)

let sample_bytes t rng = max 1 (int_of_float (Float.round (sample t rng)))

let describe t =
  let n = Array.length t.sizes in
  Printf.sprintf "%d-point CDF, mean %.1f MB, max %.1f MB" n (mean t /. 1e6)
    (t.sizes.(n - 1) /. 1e6)

let websearch =
  (* Web-search-style heavy-tailed mix (DCTCP-like): half the flows
     are tiny (< 100 kB), a tenth are 5 MB and above. Kept in sync
     with test/websearch.cdf, which ships the same points on disk. *)
  match
    of_points
      [
        (10_000.0, 0.15);
        (20_000.0, 0.20);
        (30_000.0, 0.30);
        (50_000.0, 0.40);
        (80_000.0, 0.53);
        (200_000.0, 0.60);
        (1_000_000.0, 0.70);
        (2_000_000.0, 0.80);
        (5_000_000.0, 0.90);
        (10_000_000.0, 0.97);
        (30_000_000.0, 1.00);
      ]
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Cdf.websearch: " ^ e)
