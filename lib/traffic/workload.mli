(** Traffic workloads offered to a flow (Sections 6.2 and 6.3, plus
    the empirical heavy-traffic engine).

    - [Saturated] — iperf-style saturated UDP: the source always has
      data and injects at whatever rate the congestion controller (or
      the fixed offered rate, without CC) allows.
    - [File] — a single transfer of the given size; the experiment
      records its completion time (Table 1's Tiny/Short/Long are
      100 kB, 5 MB and 2 GB files).
    - [Poisson_files] — a sequence of equal-size files whose
      {e offered} start times follow a Poisson process (Table 1's
      Conc experiment: five 5 MB files, 60 s mean inter-arrival).
      The sequence is {e closed-loop}: a file cannot start before the
      previous one finished, and the engine enforces it on the data
      path — a file's bytes only become sendable once its
      predecessor's transfer completed at the receiver (see
      [Engine.run]). {!arrival_times} returns the offered Poisson
      times only; actual starts are
      [max (arrival, previous completion)].
    - [Empirical] — an {e open-loop} schedule of transfers on one
      persistent connection: an explicit [(arrival_s, bytes)] list
      (typically produced by {!Loadgen} from a {!Cdf} at a target
      load factor). Arrivals never wait for completions — a transfer
      arriving while an earlier one is still in flight queues behind
      it on the connection and its completion time includes that
      wait, exactly the flow-completion-time convention of the
      empirical load-sweep harnesses. [pacing] picks the frame
      spacing: {!Cbr} (evenly spaced at the controller's rate, the
      historical behaviour of every other workload) or
      {!Poisson_paced} (exponential inter-frame gaps with the same
      mean). *)

(** Frame spacing of a UDP source at a given injection rate. *)
type pacing =
  | Cbr           (** deterministic gaps: [frame_bits / rate] *)
  | Poisson_paced (** exponential gaps with mean [frame_bits / rate] *)

val pacing_name : pacing -> string
(** ["cbr"] | ["poisson"]. *)

val pacing_of_name : string -> pacing option

type t =
  | Saturated
  | File of { bytes : int }
  | Poisson_files of { bytes : int; mean_gap_s : float; count : int }
  | Empirical of { files : (float * int) list; pacing : pacing }
      (** [(arrival_s, bytes)] in nondecreasing arrival order, every
          size positive — [Engine.run] rejects anything else. *)

val describe : t -> string
(** Human-readable summary, e.g. ["file 5.0 MB"]. *)

val total_bytes : t -> int option
(** Total volume, [None] for [Saturated]. *)

val arrival_times : Rng.t -> t -> float list
(** Workload {e offered} start times: [0.] for [Saturated] and
    [File]; Poisson draws (cumulative, starting at 0) for
    [Poisson_files]; the schedule's own times for [Empirical] (no
    randomness consumed). These are offers, not starts — for the
    closed-loop file workloads the engine serializes actual starts
    behind the previous file's completion. *)
