(** Empirical flow-size distributions, loaded from the on-disk CDF
    format the ns-2 heavy-traffic harnesses use (one
    [size_bytes cum_prob] pair per line) and sampled by inverse
    transform.

    {2 Distribution semantics}

    A CDF is a list of points [(s_1, p_1); ...; (s_n, p_n)] with
    strictly increasing sizes and nondecreasing cumulative
    probabilities ending exactly at 1. It denotes the distribution
    with a point mass of [p_1] at [s_1] and, between consecutive
    points, probability [p_i - p_(i-1)] spread uniformly over
    [(s_(i-1), s_i]] — i.e. piecewise-linear interpolation of the
    cumulative function, the convention of ns-2's
    [EmpiricalRandomVariable] with INTER_INTERP. {!mean} and
    {!quantile} are closed forms of exactly that distribution, and
    {!sample} inverts it, so the sampled mean converges on {!mean}
    (the property suite pins this).

    {2 File format}

    {v
    # comment lines and blank lines are ignored
    # size_bytes   cumulative_probability
    10000   0.15
    80000   0.53
    30000000 1.0
    v}

    Parsing is strict: a malformed line, a non-monotone probability
    column, a non-increasing size column, a final probability other
    than 1, or an empty file is an [Error] naming the offending line
    or point. *)

type t

val of_points : (float * float) list -> (t, string) result
(** Validate and build from [(size_bytes, cum_prob)] pairs. Rules:
    at least one point; sizes finite, positive and strictly
    increasing; probabilities finite, within [0, 1] and nondecreasing
    (the first may be 0); the final probability equal to 1 (within
    1e-9 — anything else is an unnormalized tail and is rejected). *)

val parse : string -> (t, string) result
(** Parse the text of a CDF file ([#] comments and blank lines
    allowed; each data line is [size_bytes cum_prob], whitespace
    separated). Errors name the 1-based line. *)

val of_file : string -> (t, string) result
(** [parse] over the file's contents; [Error] also covers an
    unreadable path. *)

val points : t -> (float * float) list
(** The validated points back, in order. *)

val mean : t -> float
(** Exact mean flow size in bytes of the interpolated distribution:
    [p_1 s_1 + sum_i (p_i - p_(i-1)) (s_(i-1) + s_i) / 2]. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the inverse of the interpolated
    cumulative function ([q <= p_1] gives [s_1], [q = 1] the largest
    size). *)

val sample : t -> Rng.t -> float
(** Inverse-transform draw (one [Rng.float] consumed per call). *)

val sample_bytes : t -> Rng.t -> int
(** {!sample} rounded to whole bytes, at least 1. *)

val describe : t -> string
(** e.g. ["11-point CDF, mean 1.7 MB, max 30.0 MB"]. *)

val websearch : t
(** The built-in web-search-style distribution (DCTCP-like mix:
    ~53% of flows under 100 kB, a 10% tail of 5-30 MB transfers,
    mean ~1.7 MB) — the default of the [loadsweep] harness, shipped
    on disk as [test/websearch.cdf]. *)
