(* Structured tracing + metrics. See obs.mli for the schema and the
   design contract (observation only: no randomness, no engine-state
   mutation, zero cost when disabled). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (* Shortest decimal that round-trips the double exactly. *)
  let float_repr f =
    if not (Float.is_finite f) then "null"
    else begin
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f
    end

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    to_buffer buf v;
    Buffer.contents buf

  exception Parse_error of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
      | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "invalid literal (expected %s)" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
            advance ();
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* Codepoints above 0x7f are re-encoded as UTF-8; the
                 encoder never emits surrogate pairs. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ())
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      (* A malformed token is reported at its own start, not at the
         scan position past it. *)
      let bad () =
        raise (Parse_error (start, Printf.sprintf "bad number %S" tok))
      in
      (* Strict JSON number grammar — an optional minus, then "0" or a
         nonzero-led digit run, then an optional dot-led fraction and
         an optional exponent, each requiring at least one digit.
         OCaml's own converters are laxer —
         they accept "+5", "01", "1.", ".5", hex and '_' separators —
         so the token is validated before conversion; garbage glued to
         a valid prefix is rejected even when [int_of_string] would
         swallow the whole token. *)
      let l = String.length tok in
      let p = ref 0 in
      let digits () =
        let d0 = !p in
        while
          !p < l && (match tok.[!p] with '0' .. '9' -> true | _ -> false)
        do
          incr p
        done;
        if !p = d0 then bad ()
      in
      if l = 0 then bad ();
      if tok.[0] = '-' then incr p;
      if !p < l && tok.[!p] = '0' then incr p else digits ();
      let is_int = ref true in
      if !p < l && tok.[!p] = '.' then begin
        is_int := false;
        incr p;
        digits ()
      end;
      if !p < l && (tok.[!p] = 'e' || tok.[!p] = 'E') then begin
        is_int := false;
        incr p;
        if !p < l && (tok.[!p] = '+' || tok.[!p] = '-') then incr p;
        digits ()
      end;
      if !p <> l then bad ();
      if !is_int then
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          (* magnitude beyond an OCaml int: keep the value as a float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> bad ())
      else
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> bad ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "offset %d: %s" at msg)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let to_int_opt = function
    | Int n -> Some n
    | Float f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None

  let to_float_opt = function
    | Float f -> Some f
    | Int n -> Some (float_of_int n)
    | _ -> None

  let to_string_opt = function String s -> Some s | _ -> None
  let to_bool_opt = function Bool b -> Some b | _ -> None
end

module Trace = struct
  type drop_reason =
    | Queue_overflow
    | Link_down
    | Misroute
    | Backlog_cleared
    | Fault_injected

  let drop_reason_name = function
    | Queue_overflow -> "queue_overflow"
    | Link_down -> "link_down"
    | Misroute -> "misroute"
    | Backlog_cleared -> "backlog_cleared"
    | Fault_injected -> "fault_injected"

  let drop_reason_of_name = function
    | "queue_overflow" -> Some Queue_overflow
    | "link_down" -> Some Link_down
    | "misroute" -> Some Misroute
    | "backlog_cleared" -> Some Backlog_cleared
    | "fault_injected" -> Some Fault_injected
    | _ -> None

  type event =
    | Enqueue of { t : float; link : int; flow : int; seq : int; bytes : int; qlen : int }
    | Mac_grant of
        { t : float; link : int; flow : int; seq : int; collided : bool; airtime : float }
    | Dequeue of { t : float; link : int; flow : int; seq : int }
    | Collision of { t : float; link : int; flow : int; seq : int }
    | Drop of { t : float; link : int option; flow : int; seq : int; reason : drop_reason }
    | Delivery of { t : float; flow : int; seq : int; bytes : int; delay : float }
    | Price_update of { t : float; link : int; gamma : float; price : float }
    | Rate_update of { t : float; flow : int; rates : float array }
    | Ack of { t : float; flow : int; qr : float array; bytes : int array }
    | Link_event of { t : float; link : int; capacity : float }
    | Loss_event of { t : float; link : int; prob : float }
    | Ctrl_event of { t : float; drop : float; delay : float }
    | Route_dead of { t : float; flow : int; route : int; detect_s : float }
    | Route_probe of { t : float; flow : int; route : int; attempt : int }
    | Route_restored of { t : float; flow : int; route : int; down_s : float }
    | Price_reset of { t : float; link : int }
    | Ecn_mark of { t : float; link : int; flow : int; seq : int; occ : int }

  let time = function
    | Enqueue { t; _ }
    | Mac_grant { t; _ }
    | Dequeue { t; _ }
    | Collision { t; _ }
    | Drop { t; _ }
    | Delivery { t; _ }
    | Price_update { t; _ }
    | Rate_update { t; _ }
    | Ack { t; _ }
    | Link_event { t; _ }
    | Loss_event { t; _ }
    | Ctrl_event { t; _ }
    | Route_dead { t; _ }
    | Route_probe { t; _ }
    | Route_restored { t; _ }
    | Price_reset { t; _ }
    | Ecn_mark { t; _ } -> t

  let kind = function
    | Enqueue _ -> "enqueue"
    | Mac_grant _ -> "grant"
    | Dequeue _ -> "dequeue"
    | Collision _ -> "collision"
    | Drop _ -> "drop"
    | Delivery _ -> "delivery"
    | Price_update _ -> "price"
    | Rate_update _ -> "rate"
    | Ack _ -> "ack"
    | Link_event _ -> "link"
    | Loss_event _ -> "loss"
    | Ctrl_event _ -> "ctrl"
    | Route_dead _ -> "route_dead"
    | Route_probe _ -> "route_probe"
    | Route_restored _ -> "route_restored"
    | Price_reset _ -> "price_reset"
    | Ecn_mark _ -> "mark"

  let kinds =
    [ "enqueue"; "grant"; "dequeue"; "collision"; "drop"; "delivery"; "price";
      "rate"; "ack"; "link"; "loss"; "ctrl"; "route_dead"; "route_probe";
      "route_restored"; "price_reset"; "mark" ]

  let to_json ev =
    let base fields = Json.Obj (("ev", Json.String (kind ev)) :: fields) in
    let f x = Json.Float x and i x = Json.Int x in
    match ev with
    | Enqueue { t; link; flow; seq; bytes; qlen } ->
      base
        [ ("t", f t); ("link", i link); ("flow", i flow); ("seq", i seq);
          ("bytes", i bytes); ("qlen", i qlen) ]
    | Mac_grant { t; link; flow; seq; collided; airtime } ->
      base
        [ ("t", f t); ("link", i link); ("flow", i flow); ("seq", i seq);
          ("collided", Json.Bool collided); ("airtime", f airtime) ]
    | Dequeue { t; link; flow; seq } ->
      base [ ("t", f t); ("link", i link); ("flow", i flow); ("seq", i seq) ]
    | Collision { t; link; flow; seq } ->
      base [ ("t", f t); ("link", i link); ("flow", i flow); ("seq", i seq) ]
    | Drop { t; link; flow; seq; reason } ->
      base
        [ ("t", f t);
          ("link", match link with Some l -> i l | None -> Json.Null);
          ("flow", i flow); ("seq", i seq);
          ("reason", Json.String (drop_reason_name reason)) ]
    | Delivery { t; flow; seq; bytes; delay } ->
      base
        [ ("t", f t); ("flow", i flow); ("seq", i seq); ("bytes", i bytes);
          ("delay", f delay) ]
    | Price_update { t; link; gamma; price } ->
      base [ ("t", f t); ("link", i link); ("gamma", f gamma); ("price", f price) ]
    | Rate_update { t; flow; rates } ->
      base
        [ ("t", f t); ("flow", i flow);
          ("rates", Json.List (Array.to_list (Array.map (fun x -> f x) rates))) ]
    | Ack { t; flow; qr; bytes } ->
      base
        [ ("t", f t); ("flow", i flow);
          ("qr", Json.List (Array.to_list (Array.map (fun x -> f x) qr)));
          ("bytes", Json.List (Array.to_list (Array.map (fun x -> i x) bytes))) ]
    | Link_event { t; link; capacity } ->
      base [ ("t", f t); ("link", i link); ("capacity", f capacity) ]
    | Loss_event { t; link; prob } ->
      base [ ("t", f t); ("link", i link); ("prob", f prob) ]
    | Ctrl_event { t; drop; delay } ->
      base [ ("t", f t); ("drop", f drop); ("delay", f delay) ]
    | Route_dead { t; flow; route; detect_s } ->
      base
        [ ("t", f t); ("flow", i flow); ("route", i route);
          ("detect_s", f detect_s) ]
    | Route_probe { t; flow; route; attempt } ->
      base
        [ ("t", f t); ("flow", i flow); ("route", i route);
          ("attempt", i attempt) ]
    | Route_restored { t; flow; route; down_s } ->
      base
        [ ("t", f t); ("flow", i flow); ("route", i route);
          ("down_s", f down_s) ]
    | Price_reset { t; link } -> base [ ("t", f t); ("link", i link) ]
    | Ecn_mark { t; link; flow; seq; occ } ->
      base
        [ ("t", f t); ("link", i link); ("flow", i flow); ("seq", i seq);
          ("occ", i occ) ]

  let encode ev = Json.to_string (to_json ev)

  (* Field accessors for the decoder; every miss is a structured
     error so a corrupted trace line names its defect. *)
  let field name conv j =
    match Json.member name j with
    | None -> Error (Printf.sprintf "missing field %S" name)
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "mistyped field %S" name))

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let float_array j =
    match j with
    | Json.List xs ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | x :: rest -> (
          match Json.to_float_opt x with
          | Some f -> go (f :: acc) rest
          | None -> None)
      in
      go [] xs
    | _ -> None

  let int_array j =
    match j with
    | Json.List xs ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | x :: rest -> (
          match Json.to_int_opt x with
          | Some i -> go (i :: acc) rest
          | None -> None)
      in
      go [] xs
    | _ -> None

  let decode line =
    match Json.parse line with
    | Error e -> Error e
    | Ok j -> (
      let* ev = field "ev" Json.to_string_opt j in
      let* t = field "t" Json.to_float_opt j in
      match ev with
      | "enqueue" ->
        let* link = field "link" Json.to_int_opt j in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        let* bytes = field "bytes" Json.to_int_opt j in
        let* qlen = field "qlen" Json.to_int_opt j in
        Ok (Enqueue { t; link; flow; seq; bytes; qlen })
      | "grant" ->
        let* link = field "link" Json.to_int_opt j in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        let* collided = field "collided" Json.to_bool_opt j in
        let* airtime = field "airtime" Json.to_float_opt j in
        Ok (Mac_grant { t; link; flow; seq; collided; airtime })
      | "dequeue" ->
        let* link = field "link" Json.to_int_opt j in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        Ok (Dequeue { t; link; flow; seq })
      | "collision" ->
        let* link = field "link" Json.to_int_opt j in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        Ok (Collision { t; link; flow; seq })
      | "drop" ->
        let* link =
          match Json.member "link" j with
          | None -> Error "missing field \"link\""
          | Some Json.Null -> Ok None
          | Some v -> (
            match Json.to_int_opt v with
            | Some l -> Ok (Some l)
            | None -> Error "mistyped field \"link\"")
        in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        let* reason_s = field "reason" Json.to_string_opt j in
        let* reason =
          match drop_reason_of_name reason_s with
          | Some r -> Ok r
          | None -> Error (Printf.sprintf "unknown drop reason %S" reason_s)
        in
        Ok (Drop { t; link; flow; seq; reason })
      | "delivery" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        let* bytes = field "bytes" Json.to_int_opt j in
        let* delay = field "delay" Json.to_float_opt j in
        Ok (Delivery { t; flow; seq; bytes; delay })
      | "price" ->
        let* link = field "link" Json.to_int_opt j in
        let* gamma = field "gamma" Json.to_float_opt j in
        let* price = field "price" Json.to_float_opt j in
        Ok (Price_update { t; link; gamma; price })
      | "rate" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* rates = field "rates" float_array j in
        Ok (Rate_update { t; flow; rates })
      | "ack" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* qr = field "qr" float_array j in
        let* bytes = field "bytes" int_array j in
        Ok (Ack { t; flow; qr; bytes })
      | "link" ->
        let* link = field "link" Json.to_int_opt j in
        let* capacity = field "capacity" Json.to_float_opt j in
        Ok (Link_event { t; link; capacity })
      | "loss" ->
        let* link = field "link" Json.to_int_opt j in
        let* prob = field "prob" Json.to_float_opt j in
        Ok (Loss_event { t; link; prob })
      | "ctrl" ->
        let* drop = field "drop" Json.to_float_opt j in
        let* delay = field "delay" Json.to_float_opt j in
        Ok (Ctrl_event { t; drop; delay })
      | "route_dead" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* route = field "route" Json.to_int_opt j in
        let* detect_s = field "detect_s" Json.to_float_opt j in
        Ok (Route_dead { t; flow; route; detect_s })
      | "route_probe" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* route = field "route" Json.to_int_opt j in
        let* attempt = field "attempt" Json.to_int_opt j in
        Ok (Route_probe { t; flow; route; attempt })
      | "route_restored" ->
        let* flow = field "flow" Json.to_int_opt j in
        let* route = field "route" Json.to_int_opt j in
        let* down_s = field "down_s" Json.to_float_opt j in
        Ok (Route_restored { t; flow; route; down_s })
      | "price_reset" ->
        let* link = field "link" Json.to_int_opt j in
        Ok (Price_reset { t; link })
      | "mark" ->
        let* link = field "link" Json.to_int_opt j in
        let* flow = field "flow" Json.to_int_opt j in
        let* seq = field "seq" Json.to_int_opt j in
        let* occ = field "occ" Json.to_int_opt j in
        Ok (Ecn_mark { t; link; flow; seq; occ })
      | k -> Error (Printf.sprintf "unknown event kind %S" k))

  (* A sink carries its own deterministic sampling state: [every] = 1
     delivers everything, [sampled] multiplies periods. The
     [accept]/[push] split exists so hot emitters can skip even
     constructing the event record for offers the sink will discard;
     [emit] is the fused convenience for cold paths. *)
  type sink = {
    every : int;
    mutable countdown : int;  (* 0 => the next offer is delivered *)
    push_fn : event -> unit;
  }

  let of_fn f = { every = 1; countdown = 0; push_fn = f }

  let accept s =
    s.every = 1
    ||
    if s.countdown = 0 then begin
      s.countdown <- s.every - 1;
      true
    end
    else begin
      s.countdown <- s.countdown - 1;
      false
    end

  let push s ev = s.push_fn ev
  let emit s ev = if accept s then s.push_fn ev

  let sampled ~every s =
    if every < 1 then invalid_arg "Obs.Trace.sampled: every must be >= 1";
    { every = every * s.every; countdown = 0; push_fn = s.push_fn }

  let sample_period s = s.every

  let tee a b =
    { every = 1; countdown = 0; push_fn = (fun ev -> emit a ev; emit b ev) }

  let to_channel oc =
    let buf = Buffer.create 256 in
    of_fn (fun ev ->
        Buffer.clear buf;
        Json.to_buffer buf (to_json ev);
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf)

  let collector () =
    let acc = ref [] in
    (of_fn (fun ev -> acc := ev :: !acc), fun () -> List.rev !acc)

  let counter () =
    let n = ref 0 in
    (of_fn (fun _ -> incr n), fun () -> !n)
end

(* Always-on crash recorder: the last [capacity] events in a
   pre-allocated struct-of-arrays ring. Recording a datapath event is
   a tag/time/scalar store into fixed [int array]/[float array]
   columns — no event record is built and nothing grows — so the ring
   can stay attached to every run. Only the two array-carrying
   control-plane kinds ([Rate_update], [Ack], a few per control
   period) box an event into the [boxed] column. *)
module Flight = struct
  let default_capacity = 65536
  let default_dump_path = "empower-flight-dump.jsonl"

  type t = {
    cap : int;
    tag : int array;  (* -1 = slot never written *)
    time : float array;
    i1 : int array;
    i2 : int array;
    i3 : int array;
    i4 : int array;
    i5 : int array;
    f1 : float array;
    f2 : float array;
    boxed : Trace.event option array;
    mutable next : int;   (* next write slot *)
    mutable total : int;  (* events ever offered *)
    dump_path : string;
  }

  let create ?(capacity = default_capacity) ?(dump_path = default_dump_path) ()
      =
    if capacity < 1 then invalid_arg "Obs.Flight.create: capacity must be >= 1";
    {
      cap = capacity;
      tag = Array.make capacity (-1);
      time = Array.make capacity 0.0;
      i1 = Array.make capacity 0;
      i2 = Array.make capacity 0;
      i3 = Array.make capacity 0;
      i4 = Array.make capacity 0;
      i5 = Array.make capacity 0;
      f1 = Array.make capacity 0.0;
      f2 = Array.make capacity 0.0;
      boxed = Array.make capacity None;
      next = 0;
      total = 0;
      dump_path;
    }

  let capacity t = t.cap
  let recorded t = t.total
  let dump_path t = t.dump_path

  let clear t =
    t.next <- 0;
    t.total <- 0;
    Array.fill t.tag 0 t.cap (-1);
    Array.fill t.boxed 0 t.cap None

  (* Tags follow the order of [Trace.kinds]. *)
  let k_enqueue = 0
  let k_grant = 1
  let k_dequeue = 2
  let k_collision = 3
  let k_drop = 4
  let k_delivery = 5
  let k_price = 6
  let k_rate = 7
  let k_ack = 8
  let k_link = 9
  let k_loss = 10
  let k_ctrl = 11
  let k_route_dead = 12
  let k_route_probe = 13
  let k_route_restored = 14
  let k_price_reset = 15
  let k_ecn_mark = 16

  let reason_code = function
    | Trace.Queue_overflow -> 0
    | Trace.Link_down -> 1
    | Trace.Misroute -> 2
    | Trace.Backlog_cleared -> 3
    | Trace.Fault_injected -> 4

  let reason_of_code = function
    | 0 -> Trace.Queue_overflow
    | 1 -> Trace.Link_down
    | 2 -> Trace.Misroute
    | 3 -> Trace.Backlog_cleared
    | _ -> Trace.Fault_injected

  let slot t tag time =
    let i = t.next in
    t.next <- (if i + 1 = t.cap then 0 else i + 1);
    t.total <- t.total + 1;
    t.tag.(i) <- tag;
    t.time.(i) <- time;
    if t.boxed.(i) != None then t.boxed.(i) <- None;
    i

  let enqueue t ~t_s ~link ~flow ~seq ~bytes ~qlen =
    let i = slot t k_enqueue t_s in
    t.i1.(i) <- link;
    t.i2.(i) <- flow;
    t.i3.(i) <- seq;
    t.i4.(i) <- bytes;
    t.i5.(i) <- qlen

  let grant t ~t_s ~link ~flow ~seq ~collided ~airtime =
    let i = slot t k_grant t_s in
    t.i1.(i) <- link;
    t.i2.(i) <- flow;
    t.i3.(i) <- seq;
    t.i4.(i) <- (if collided then 1 else 0);
    t.f1.(i) <- airtime

  let dequeue t ~t_s ~link ~flow ~seq =
    let i = slot t k_dequeue t_s in
    t.i1.(i) <- link;
    t.i2.(i) <- flow;
    t.i3.(i) <- seq

  let collision t ~t_s ~link ~flow ~seq =
    let i = slot t k_collision t_s in
    t.i1.(i) <- link;
    t.i2.(i) <- flow;
    t.i3.(i) <- seq

  let drop t ~t_s ~link ~flow ~seq ~reason =
    let i = slot t k_drop t_s in
    t.i1.(i) <- (match link with Some l -> l | None -> -1);
    t.i2.(i) <- flow;
    t.i3.(i) <- seq;
    t.i4.(i) <- reason_code reason

  let delivery t ~t_s ~flow ~seq ~bytes ~delay =
    let i = slot t k_delivery t_s in
    t.i1.(i) <- flow;
    t.i2.(i) <- seq;
    t.i3.(i) <- bytes;
    t.f1.(i) <- delay

  let price t ~t_s ~link ~gamma ~price =
    let i = slot t k_price t_s in
    t.i1.(i) <- link;
    t.f1.(i) <- gamma;
    t.f2.(i) <- price

  let link_event t ~t_s ~link ~capacity =
    let i = slot t k_link t_s in
    t.i1.(i) <- link;
    t.f1.(i) <- capacity

  let loss_event t ~t_s ~link ~prob =
    let i = slot t k_loss t_s in
    t.i1.(i) <- link;
    t.f1.(i) <- prob

  let ctrl_event t ~t_s ~drop ~delay =
    let i = slot t k_ctrl t_s in
    t.f1.(i) <- drop;
    t.f2.(i) <- delay

  let route_dead t ~t_s ~flow ~route ~detect_s =
    let i = slot t k_route_dead t_s in
    t.i1.(i) <- flow;
    t.i2.(i) <- route;
    t.f1.(i) <- detect_s

  let route_probe t ~t_s ~flow ~route ~attempt =
    let i = slot t k_route_probe t_s in
    t.i1.(i) <- flow;
    t.i2.(i) <- route;
    t.i3.(i) <- attempt

  let route_restored t ~t_s ~flow ~route ~down_s =
    let i = slot t k_route_restored t_s in
    t.i1.(i) <- flow;
    t.i2.(i) <- route;
    t.f1.(i) <- down_s

  let price_reset t ~t_s ~link =
    let i = slot t k_price_reset t_s in
    t.i1.(i) <- link

  let ecn_mark t ~t_s ~link ~flow ~seq ~occ =
    let i = slot t k_ecn_mark t_s in
    t.i1.(i) <- link;
    t.i2.(i) <- flow;
    t.i3.(i) <- seq;
    t.i4.(i) <- occ

  let boxed_event t tag ev =
    let i = slot t tag (Trace.time ev) in
    t.boxed.(i) <- Some ev

  let event t ev =
    match ev with
    | Trace.Enqueue { t = t_s; link; flow; seq; bytes; qlen } ->
      enqueue t ~t_s ~link ~flow ~seq ~bytes ~qlen
    | Trace.Mac_grant { t = t_s; link; flow; seq; collided; airtime } ->
      grant t ~t_s ~link ~flow ~seq ~collided ~airtime
    | Trace.Dequeue { t = t_s; link; flow; seq } -> dequeue t ~t_s ~link ~flow ~seq
    | Trace.Collision { t = t_s; link; flow; seq } ->
      collision t ~t_s ~link ~flow ~seq
    | Trace.Drop { t = t_s; link; flow; seq; reason } ->
      drop t ~t_s ~link ~flow ~seq ~reason
    | Trace.Delivery { t = t_s; flow; seq; bytes; delay } ->
      delivery t ~t_s ~flow ~seq ~bytes ~delay
    | Trace.Price_update { t = t_s; link; gamma; price = pr } ->
      price t ~t_s ~link ~gamma ~price:pr
    | Trace.Rate_update _ -> boxed_event t k_rate ev
    | Trace.Ack _ -> boxed_event t k_ack ev
    | Trace.Link_event { t = t_s; link; capacity } ->
      link_event t ~t_s ~link ~capacity
    | Trace.Loss_event { t = t_s; link; prob } -> loss_event t ~t_s ~link ~prob
    | Trace.Ctrl_event { t = t_s; drop; delay } -> ctrl_event t ~t_s ~drop ~delay
    | Trace.Route_dead { t = t_s; flow; route; detect_s } ->
      route_dead t ~t_s ~flow ~route ~detect_s
    | Trace.Route_probe { t = t_s; flow; route; attempt } ->
      route_probe t ~t_s ~flow ~route ~attempt
    | Trace.Route_restored { t = t_s; flow; route; down_s } ->
      route_restored t ~t_s ~flow ~route ~down_s
    | Trace.Price_reset { t = t_s; link } -> price_reset t ~t_s ~link
    | Trace.Ecn_mark { t = t_s; link; flow; seq; occ } ->
      ecn_mark t ~t_s ~link ~flow ~seq ~occ

  let sink t = Trace.of_fn (event t)

  let event_of_row t i =
    let t_s = t.time.(i) in
    match t.tag.(i) with
    | 0 ->
      Some
        (Trace.Enqueue
           {
             t = t_s;
             link = t.i1.(i);
             flow = t.i2.(i);
             seq = t.i3.(i);
             bytes = t.i4.(i);
             qlen = t.i5.(i);
           })
    | 1 ->
      Some
        (Trace.Mac_grant
           {
             t = t_s;
             link = t.i1.(i);
             flow = t.i2.(i);
             seq = t.i3.(i);
             collided = t.i4.(i) <> 0;
             airtime = t.f1.(i);
           })
    | 2 ->
      Some
        (Trace.Dequeue
           { t = t_s; link = t.i1.(i); flow = t.i2.(i); seq = t.i3.(i) })
    | 3 ->
      Some
        (Trace.Collision
           { t = t_s; link = t.i1.(i); flow = t.i2.(i); seq = t.i3.(i) })
    | 4 ->
      Some
        (Trace.Drop
           {
             t = t_s;
             link = (if t.i1.(i) < 0 then None else Some t.i1.(i));
             flow = t.i2.(i);
             seq = t.i3.(i);
             reason = reason_of_code t.i4.(i);
           })
    | 5 ->
      Some
        (Trace.Delivery
           {
             t = t_s;
             flow = t.i1.(i);
             seq = t.i2.(i);
             bytes = t.i3.(i);
             delay = t.f1.(i);
           })
    | 6 ->
      Some
        (Trace.Price_update
           { t = t_s; link = t.i1.(i); gamma = t.f1.(i); price = t.f2.(i) })
    | 7 | 8 -> t.boxed.(i)
    | 9 ->
      Some (Trace.Link_event { t = t_s; link = t.i1.(i); capacity = t.f1.(i) })
    | 10 -> Some (Trace.Loss_event { t = t_s; link = t.i1.(i); prob = t.f1.(i) })
    | 11 -> Some (Trace.Ctrl_event { t = t_s; drop = t.f1.(i); delay = t.f2.(i) })
    | 12 ->
      Some
        (Trace.Route_dead
           { t = t_s; flow = t.i1.(i); route = t.i2.(i); detect_s = t.f1.(i) })
    | 13 ->
      Some
        (Trace.Route_probe
           { t = t_s; flow = t.i1.(i); route = t.i2.(i); attempt = t.i3.(i) })
    | 14 ->
      Some
        (Trace.Route_restored
           { t = t_s; flow = t.i1.(i); route = t.i2.(i); down_s = t.f1.(i) })
    | 15 -> Some (Trace.Price_reset { t = t_s; link = t.i1.(i) })
    | 16 ->
      Some
        (Trace.Ecn_mark
           {
             t = t_s;
             link = t.i1.(i);
             flow = t.i2.(i);
             seq = t.i3.(i);
             occ = t.i4.(i);
           })
    | _ -> None

  let fold_oldest_first t f acc =
    let len = if t.total < t.cap then t.total else t.cap in
    let first = if t.total < t.cap then 0 else t.next in
    let acc = ref acc in
    for k = 0 to len - 1 do
      let i = first + k in
      let i = if i >= t.cap then i - t.cap else i in
      match event_of_row t i with
      | Some ev -> acc := f !acc ev
      | None -> ()
    done;
    !acc

  let events t = List.rev (fold_oldest_first t (fun acc ev -> ev :: acc) [])

  let dump_channel t oc =
    let buf = Buffer.create 256 in
    fold_oldest_first t
      (fun n ev ->
        Buffer.clear buf;
        Json.to_buffer buf (Trace.to_json ev);
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf;
        n + 1)
      0

  let dump ?path t =
    let path = match path with Some p -> p | None -> t.dump_path in
    match open_out path with
    | exception Sys_error e -> Error e
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Ok (path, dump_channel t oc))

  let env_enabled () =
    match Sys.getenv_opt "EMPOWER_FLIGHT" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true

  let of_env () =
    let capacity =
      match Sys.getenv_opt "EMPOWER_FLIGHT" with
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 1 -> n
        | _ -> default_capacity)
      | None -> default_capacity
    in
    let dump_path =
      match Sys.getenv_opt "EMPOWER_FLIGHT_DUMP" with
      | Some p when p <> "" -> p
      | _ -> default_dump_path
    in
    create ~capacity ~dump_path ()
end

(* Hot-path profiler: wall clock + GC minor words attributed to the
   engine subsystem that handled each event. State is a handful of
   fixed float/int arrays indexed by category, so [enter]/[leave] cost
   two clock reads, two counter reads and three array stores. *)
module Prof = struct
  let categories =
    [| "mac_phy"; "traffic"; "controller"; "tcp"; "recovery"; "fault"; "scheduler" |]
  let n_categories = Array.length categories
  let cat_mac_phy = 0
  let cat_traffic = 1
  let cat_controller = 2
  let cat_tcp = 3
  let cat_recovery = 4
  let cat_fault = 5
  let cat_scheduler = 6

  let category_name c =
    if c < 0 || c >= n_categories then invalid_arg "Obs.Prof.category_name"
    else categories.(c)

  type t = {
    wall : float array;   (* seconds attributed per category *)
    words : float array;  (* Gc minor words per category *)
    count : int array;
    (* one-slot scratch: unboxed stores, no per-event allocation *)
    t0 : float array;
    w0 : float array;
  }

  let create () =
    {
      wall = Array.make n_categories 0.0;
      words = Array.make n_categories 0.0;
      count = Array.make n_categories 0;
      t0 = Array.make 1 0.0;
      w0 = Array.make 1 0.0;
    }

  (* Read order brackets the handler so the profiler's own float boxes
     stay out of the allocation window: [enter] stamps the clock first
     and the word counter last, [leave] reads the word counter first
     and the clock last. The residual self-cost inside the window is
     the [Gc.minor_words] calls themselves (a few words per event). *)
  let enter p =
    p.t0.(0) <- Unix.gettimeofday ();
    p.w0.(0) <- Gc.minor_words ()

  let leave p cat =
    let w1 = Gc.minor_words () in
    let t1 = Unix.gettimeofday () in
    p.wall.(cat) <- p.wall.(cat) +. (t1 -. p.t0.(0));
    p.words.(cat) <- p.words.(cat) +. (w1 -. p.w0.(0));
    p.count.(cat) <- p.count.(cat) + 1

  (* Attribute wall/words without tallying an event: for bracketing
     auxiliary work (the engine's scheduler pop path) that should show
     in the category shares but must not inflate the event count that
     [events] reports and benchmarks divide by. *)
  let leave_silent p cat =
    let w1 = Gc.minor_words () in
    let t1 = Unix.gettimeofday () in
    p.wall.(cat) <- p.wall.(cat) +. (t1 -. p.t0.(0));
    p.words.(cat) <- p.words.(cat) +. (w1 -. p.w0.(0))

  let events p = Array.fold_left ( + ) 0 p.count
  let total_wall p = Array.fold_left ( +. ) 0.0 p.wall

  type entry = {
    name : string;
    events : int;
    wall_s : float;
    ns_per_event : float;
    share_pct : float;
    minor_words : float;
    words_per_event : float;
  }

  let report p =
    let tot = total_wall p in
    let entries = ref [] in
    for c = n_categories - 1 downto 0 do
      (* Silent-only categories (count 0, nonzero wall) still report:
         their share matters even though they tally no events. *)
      if p.count.(c) > 0 || p.wall.(c) > 0.0 then
        entries :=
          {
            name = categories.(c);
            events = p.count.(c);
            wall_s = p.wall.(c);
            ns_per_event =
              p.wall.(c) *. 1e9 /. float_of_int (max 1 p.count.(c));
            share_pct =
              (if tot > 0.0 then 100.0 *. p.wall.(c) /. tot else 0.0);
            minor_words = p.words.(c);
            words_per_event = p.words.(c) /. float_of_int (max 1 p.count.(c));
          }
          :: !entries
    done;
    List.sort (fun a b -> compare b.wall_s a.wall_s) !entries

  let merge ~into p =
    for c = 0 to n_categories - 1 do
      into.wall.(c) <- into.wall.(c) +. p.wall.(c);
      into.words.(c) <- into.words.(c) +. p.words.(c);
      into.count.(c) <- into.count.(c) + p.count.(c)
    done

  let to_json p =
    Json.Obj
      [
        ("figure", Json.String "profile");
        ("events", Json.Int (events p));
        ("wall_s", Json.Float (total_wall p));
        ( "categories",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("name", Json.String e.name);
                     ("events", Json.Int e.events);
                     ("wall_s", Json.Float e.wall_s);
                     ("ns_per_event", Json.Float e.ns_per_event);
                     ("share_pct", Json.Float e.share_pct);
                     ("minor_words", Json.Float e.minor_words);
                     ("words_per_event", Json.Float e.words_per_event);
                   ])
               (report p)) );
      ]

  let print ?(out = stdout) p =
    let pr fmt = Printf.fprintf out fmt in
    pr "--- profile: %d events, %.4f s attributed ---\n" (events p)
      (total_wall p);
    pr "%-12s %10s %10s %9s %8s %12s %9s\n" "subsystem" "events" "wall_s"
      "ns/event" "share" "minor_words" "words/ev";
    List.iter
      (fun e ->
        pr "%-12s %10d %10.4f %9.0f %7.1f%% %12.0f %9.1f\n" e.name e.events
          e.wall_s e.ns_per_event e.share_pct e.minor_words e.words_per_event)
      (report p)
end

module Metrics = struct
  module Counter = struct
    type t = int ref

    let incr t = Stdlib.incr t
    let add t n = t := !t + n
    let value t = !t
  end

  module Gauge = struct
    (* [written] distinguishes "never set" from "set to 0" so that
       merging registries can apply last-writer-wins without clobbering
       a real value with an untouched gauge. *)
    type t = { mutable v : float; mutable written : bool }

    let set t v =
      t.v <- v;
      t.written <- true

    let value t = t.v
  end

  module Histogram = struct
    (* sum/min/max live in a float array: as mutable boxed fields of
       this mixed record, every [observe] would allocate a fresh box
       for the sum — and [observe] runs once per delivered frame. *)
    let s_sum = 0
    let s_min = 1
    let s_max = 2

    type t = {
      gamma : float;
      log_gamma : float;
      buckets : (int, int ref) Hashtbl.t;
      mutable zero : int;  (* observations <= zero_floor *)
      mutable count : int;
      scalars : float array;  (* s_sum, s_min, s_max — unboxed *)
    }

    let zero_floor = 1e-12

    let create ?(relative_error = 0.005) () =
      if relative_error <= 0.0 || relative_error >= 1.0 then
        invalid_arg "Histogram.create: relative_error must be in (0,1)";
      let gamma = (1.0 +. relative_error) /. (1.0 -. relative_error) in
      {
        gamma;
        log_gamma = log gamma;
        buckets = Hashtbl.create 64;
        zero = 0;
        count = 0;
        scalars = [| 0.0; infinity; neg_infinity |];
      }

    let observe t v =
      t.count <- t.count + 1;
      let sc = t.scalars in
      sc.(s_sum) <- sc.(s_sum) +. v;
      if v < sc.(s_min) then sc.(s_min) <- v;
      if v > sc.(s_max) then sc.(s_max) <- v;
      if v <= zero_floor then t.zero <- t.zero + 1
      else begin
        let key = int_of_float (Float.ceil (log v /. t.log_gamma)) in
        (* find + Not_found rather than find_opt: the hit path (all
           but the first observation per bucket) allocates no option. *)
        match Hashtbl.find t.buckets key with
        | r -> incr r
        | exception Not_found -> Hashtbl.add t.buckets key (ref 1)
      end

    let count t = t.count
    let sum t = t.scalars.(s_sum)
    let mean t = if t.count = 0 then 0.0 else sum t /. float_of_int t.count
    let minimum t = if t.count = 0 then 0.0 else t.scalars.(s_min)
    let maximum t = if t.count = 0 then 0.0 else t.scalars.(s_max)

    let quantile t q =
      if t.count = 0 then 0.0
      else if q <= 0.0 then t.scalars.(s_min)
      else if q >= 1.0 then t.scalars.(s_max)
      else begin
        let rank =
          let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
          if r < 1 then 1 else if r > t.count then t.count else r
        in
        if rank <= t.zero then Float.max 0.0 t.scalars.(s_min)
        else begin
          let keys =
            Hashtbl.fold (fun k _ acc -> k :: acc) t.buckets []
            |> List.sort compare
          in
          let rec walk acc = function
            | [] -> t.scalars.(s_max)
            | k :: rest ->
              let c = !(Hashtbl.find t.buckets k) in
              let acc = acc + c in
              if acc >= rank then begin
                (* Bucket k covers (gamma^(k-1), gamma^k]; the midpoint
                   bounds the relative error by the configured ε. *)
                let v =
                  2.0 *. (t.gamma ** float_of_int k) /. (t.gamma +. 1.0)
                in
                Float.max t.scalars.(s_min) (Float.min t.scalars.(s_max) v)
              end
              else walk acc rest
          in
          walk t.zero keys
        end
      end
  end

  module Series = struct
    type t = { mutable rev : (float * float) list; mutable n : int; mutable sum : float }

    let create () = { rev = []; n = 0; sum = 0.0 }

    let add t time v =
      t.rev <- (time, v) :: t.rev;
      t.n <- t.n + 1;
      t.sum <- t.sum +. v

    let length t = t.n
    let points t = List.rev t.rev
    let last t = match t.rev with [] -> None | p :: _ -> Some p
    let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  end

  type instrument =
    | C of Counter.t
    | G of Gauge.t
    | H of Histogram.t
    | S of Series.t

  type t = (string, instrument) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let kind_name = function
    | C _ -> "counter"
    | G _ -> "gauge"
    | H _ -> "histogram"
    | S _ -> "series"

  let get_or_create t name make match_ =
    match Hashtbl.find_opt t name with
    | Some inst -> (
      match match_ inst with
      | Some x -> x
      | None ->
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, requested another kind" name
             (kind_name inst)))
    | None ->
      let inst, x = make () in
      Hashtbl.add t name inst;
      x

  let counter t name =
    get_or_create t name
      (fun () ->
        let c = ref 0 in
        (C c, c))
      (function C c -> Some c | _ -> None)

  let gauge t name =
    get_or_create t name
      (fun () ->
        let g = Gauge.{ v = 0.0; written = false } in
        (G g, g))
      (function G g -> Some g | _ -> None)

  let histogram t ?relative_error name =
    get_or_create t name
      (fun () ->
        let h = Histogram.create ?relative_error () in
        (H h, h))
      (function H h -> Some h | _ -> None)

  let series t name =
    get_or_create t name
      (fun () ->
        let s = Series.create () in
        (S s, s))
      (function S s -> Some s | _ -> None)

  let names t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

  let instrument_json = function
    | C c -> Json.Int (Counter.value c)
    | G g -> Json.Float (Gauge.value g)
    | H h ->
      Json.Obj
        [ ("count", Json.Int (Histogram.count h));
          ("mean", Json.Float (Histogram.mean h));
          ("min", Json.Float (Histogram.minimum h));
          ("max", Json.Float (Histogram.maximum h));
          ("p50", Json.Float (Histogram.quantile h 0.5));
          ("p95", Json.Float (Histogram.quantile h 0.95));
          ("p99", Json.Float (Histogram.quantile h 0.99)) ]
    | S s ->
      Json.Obj
        [ ("n", Json.Int (Series.length s));
          ("last", match Series.last s with
            | None -> Json.Null
            | Some (_, v) -> Json.Float v);
          ("mean", Json.Float (Series.mean s)) ]

  let to_json t =
    Json.Obj
      (List.map (fun name -> (name, instrument_json (Hashtbl.find t name))) (names t))

  let print_summary ?(out = stdout) t =
    let p fmt = Printf.fprintf out fmt in
    p "--- metrics (%d instruments) ---\n" (Hashtbl.length t);
    List.iter
      (fun name ->
        match Hashtbl.find t name with
        | C c -> p "%-32s counter %d\n" name (Counter.value c)
        | G g -> p "%-32s gauge   %.6g\n" name (Gauge.value g)
        | H h ->
          p "%-32s hist    n=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g\n"
            name (Histogram.count h) (Histogram.mean h)
            (Histogram.quantile h 0.5) (Histogram.quantile h 0.95)
            (Histogram.quantile h 0.99) (Histogram.maximum h)
        | S s ->
          let last = match Series.last s with None -> 0.0 | Some (_, v) -> v in
          p "%-32s series  n=%d last=%.6g mean=%.6g\n" name (Series.length s)
            last (Series.mean s))
      (names t)

  (* Fold [other] into [into], instrument by instrument, in sorted name
     order so merging is deterministic. Counters and histogram buckets
     sum; series points append after [into]'s existing points (callers
     merge job registries in submission order, which reproduces the
     sequential append order); gauges are last-writer-wins, where an
     untouched gauge in [other] does not clobber a written one. *)
  let merge ~into other =
    List.iter
      (fun name ->
        match Hashtbl.find other name with
        | C c -> Counter.add (counter into name) (Counter.value c)
        | G g -> if g.Gauge.written then Gauge.set (gauge into name) g.Gauge.v
        | H h ->
          let relative_error = (h.Histogram.gamma -. 1.0) /. (h.Histogram.gamma +. 1.0) in
          let dst = histogram into ~relative_error name in
          if dst.Histogram.gamma <> h.Histogram.gamma then
            invalid_arg
              (Printf.sprintf
                 "Metrics.merge: histogram %S has mismatched relative error"
                 name);
          Hashtbl.iter
            (fun key c ->
              match Hashtbl.find_opt dst.Histogram.buckets key with
              | Some r -> r := !r + !c
              | None -> Hashtbl.add dst.Histogram.buckets key (ref !c))
            h.Histogram.buckets;
          dst.Histogram.zero <- dst.Histogram.zero + h.Histogram.zero;
          dst.Histogram.count <- dst.Histogram.count + h.Histogram.count;
          let ds = dst.Histogram.scalars and hs = h.Histogram.scalars in
          ds.(Histogram.s_sum) <- ds.(Histogram.s_sum) +. hs.(Histogram.s_sum);
          if hs.(Histogram.s_min) < ds.(Histogram.s_min) then
            ds.(Histogram.s_min) <- hs.(Histogram.s_min);
          if hs.(Histogram.s_max) > ds.(Histogram.s_max) then
            ds.(Histogram.s_max) <- hs.(Histogram.s_max)
        | S s ->
          let dst = series into name in
          dst.Series.rev <- s.Series.rev @ dst.Series.rev;
          dst.Series.n <- dst.Series.n + s.Series.n;
          dst.Series.sum <- dst.Series.sum +. s.Series.sum)
      (names other)
end

module Recorder = struct
  type t = {
    reg : Metrics.t;
    window : float;
    domain_of : (int -> int list) option;
    mutable window_start : float;
    link_air : (int, float ref) Hashtbl.t;    (* airtime in current window *)
    link_qlen : (int, int ref) Hashtbl.t;     (* last observed queue length *)
    flow_bits : (int, float ref) Hashtbl.t;   (* delivered bits in window *)
    flow_rates : (int, float array) Hashtbl.t;
    gamma_prev : (int, float) Hashtbl.t;
    mutable tick_t : float;                   (* time of current price tick *)
    mutable tick_delta : float;               (* max |Δγ| within that tick *)
    events : Metrics.Counter.t;
    (* Degradation tracking: the span of fault boundary events
       (link/loss/ctrl changes) and each flow's last preferred route,
       so chaos runs can quantify graceful degradation. *)
    mutable fault_first : float;              (* +inf until a fault event *)
    mutable fault_last : float;
    flow_argmax : (int, int) Hashtbl.t;
    flows_seen : (int, unit) Hashtbl.t;
  }

  let create ?(window = 1.0) ?domain_of reg =
    if window <= 0.0 then invalid_arg "Recorder.create: window must be positive";
    {
      reg;
      window;
      domain_of;
      window_start = 0.0;
      link_air = Hashtbl.create 32;
      link_qlen = Hashtbl.create 32;
      flow_bits = Hashtbl.create 8;
      flow_rates = Hashtbl.create 8;
      gamma_prev = Hashtbl.create 32;
      tick_t = -1.0;
      tick_delta = 0.0;
      events = Metrics.counter reg "trace.events";
      fault_first = infinity;
      fault_last = neg_infinity;
      flow_argmax = Hashtbl.create 8;
      flows_seen = Hashtbl.create 8;
    }

  let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let flush_window r =
    let w_end = r.window_start +. r.window in
    (* Per-link airtime utilisation, and I_l busy fraction (the left
       side of constraint (2)) when the interference structure is
       known. *)
    let air l =
      match Hashtbl.find_opt r.link_air l with Some a -> !a | None -> 0.0
    in
    List.iter
      (fun l ->
        let u = air l /. r.window in
        Metrics.Series.add
          (Metrics.series r.reg (Printf.sprintf "link.%d.util" l))
          w_end u;
        match r.domain_of with
        | None -> ()
        | Some dom ->
          let busy = List.fold_left (fun acc m -> acc +. air m) 0.0 (dom l) in
          Metrics.Series.add
            (Metrics.series r.reg (Printf.sprintf "domain.%d.busy" l))
            w_end
            (busy /. r.window))
      (sorted_keys r.link_air);
    (* Queue occupancy sampled at the window boundary. *)
    List.iter
      (fun l ->
        Metrics.Series.add
          (Metrics.series r.reg (Printf.sprintf "link.%d.queue" l))
          w_end
          (float_of_int !(Hashtbl.find r.link_qlen l)))
      (sorted_keys r.link_qlen);
    (* Per-flow delivered Mbit/s over the window. *)
    List.iter
      (fun f ->
        let bits = !(Hashtbl.find r.flow_bits f) in
        Metrics.Series.add
          (Metrics.series r.reg (Printf.sprintf "flow.%d.goodput" f))
          w_end
          (bits /. 1e6 /. r.window))
      (sorted_keys r.flow_bits);
    Hashtbl.reset r.link_air;
    Hashtbl.reset r.flow_bits;
    r.window_start <- w_end

  let advance r t =
    while t >= r.window_start +. r.window do
      flush_window r
    done

  let flush_tick r =
    if r.tick_t >= 0.0 then begin
      Metrics.Series.add (Metrics.series r.reg "ctrl.price_delta") r.tick_t r.tick_delta;
      r.tick_t <- -1.0;
      r.tick_delta <- 0.0
    end

  let acc_float tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add tbl k (ref v)

  let on_fault_boundary r t =
    Metrics.Counter.incr (Metrics.counter r.reg "fault.events");
    if t < r.fault_first then r.fault_first <- t;
    if t > r.fault_last then r.fault_last <- t

  let on_event r ev =
    Metrics.Counter.incr r.events;
    advance r (Trace.time ev);
    match ev with
    | Trace.Enqueue { link; qlen; _ } -> (
      match Hashtbl.find_opt r.link_qlen link with
      | Some c -> c := qlen
      | None -> Hashtbl.add r.link_qlen link (ref qlen))
    | Trace.Mac_grant { link; collided; airtime; _ } ->
      Metrics.Counter.incr (Metrics.counter r.reg "mac.grants");
      acc_float r.link_air link airtime;
      (match Hashtbl.find_opt r.link_qlen link with
      | Some c -> if !c > 0 then c := !c - 1
      | None -> ());
      if collided then ()
    | Trace.Dequeue _ -> ()
    | Trace.Collision { link; _ } ->
      Metrics.Counter.incr (Metrics.counter r.reg "mac.collisions");
      Metrics.Counter.incr
        (Metrics.counter r.reg (Printf.sprintf "link.%d.collisions" link))
    | Trace.Drop { reason; _ } ->
      Metrics.Counter.incr
        (Metrics.counter r.reg ("drops." ^ Trace.drop_reason_name reason))
    | Trace.Delivery { flow; bytes; delay; _ } ->
      Metrics.Histogram.observe
        (Metrics.histogram r.reg (Printf.sprintf "flow.%d.delay" flow))
        delay;
      Hashtbl.replace r.flows_seen flow ();
      acc_float r.flow_bits flow (8.0 *. float_of_int bytes)
    | Trace.Price_update { t; link; gamma; _ } ->
      if t <> r.tick_t then begin
        flush_tick r;
        r.tick_t <- t
      end;
      let prev =
        match Hashtbl.find_opt r.gamma_prev link with Some g -> g | None -> 0.0
      in
      let d = Float.abs (gamma -. prev) in
      if d > r.tick_delta then r.tick_delta <- d;
      Hashtbl.replace r.gamma_prev link gamma;
      let gm = Metrics.gauge r.reg "ctrl.gamma_max" in
      if gamma > Metrics.Gauge.value gm then Metrics.Gauge.set gm gamma
    | Trace.Rate_update { t; flow; rates } ->
      let total = Array.fold_left ( +. ) 0.0 rates in
      Metrics.Series.add
        (Metrics.series r.reg (Printf.sprintf "flow.%d.rate" flow))
        t total;
      (match Hashtbl.find_opt r.flow_rates flow with
      | Some prev when Array.length prev = Array.length rates ->
        let delta = ref 0.0 in
        Array.iteri (fun i x -> delta := !delta +. Float.abs (x -. prev.(i))) rates;
        Metrics.Series.add
          (Metrics.series r.reg (Printf.sprintf "flow.%d.rate_delta" flow))
          t !delta
      | Some _ | None -> ());
      Hashtbl.replace r.flow_rates flow (Array.copy rates);
      Hashtbl.replace r.flows_seen flow ();
      (* A change of the flow's preferred (highest-rate) route is a
         reroute — the controller moved the bulk of the traffic. *)
      if Array.length rates > 0 then begin
        let best = ref 0 in
        Array.iteri (fun i x -> if x > rates.(!best) then best := i) rates;
        (match Hashtbl.find_opt r.flow_argmax flow with
        | Some prev when prev <> !best ->
          Metrics.Counter.incr
            (Metrics.counter r.reg (Printf.sprintf "flow.%d.reroutes" flow))
        | Some _ | None -> ());
        Hashtbl.replace r.flow_argmax flow !best
      end
    | Trace.Ack { flow; _ } ->
      Metrics.Counter.incr
        (Metrics.counter r.reg (Printf.sprintf "flow.%d.acks" flow))
    | Trace.Link_event { t; link; capacity } ->
      Metrics.Counter.incr (Metrics.counter r.reg "link.events");
      on_fault_boundary r t;
      Metrics.Gauge.set
        (Metrics.gauge r.reg (Printf.sprintf "link.%d.capacity" link))
        capacity
    | Trace.Loss_event { t; link; prob } ->
      on_fault_boundary r t;
      Metrics.Gauge.set
        (Metrics.gauge r.reg (Printf.sprintf "link.%d.loss" link))
        prob
    | Trace.Ctrl_event { t; drop; delay } ->
      on_fault_boundary r t;
      Metrics.Gauge.set (Metrics.gauge r.reg "ctrl.fault.drop") drop;
      Metrics.Gauge.set (Metrics.gauge r.reg "ctrl.fault.delay") delay
    | Trace.Route_dead { flow; detect_s; _ } ->
      Metrics.Counter.incr (Metrics.counter r.reg "recovery.route_deaths");
      Metrics.Counter.incr
        (Metrics.counter r.reg (Printf.sprintf "flow.%d.route_deaths" flow));
      (* Worst-case detection latency of the run, per flow. *)
      let g =
        Metrics.gauge r.reg (Printf.sprintf "flow.%d.fault.detect_s" flow)
      in
      if detect_s > Metrics.Gauge.value g then Metrics.Gauge.set g detect_s
    | Trace.Route_probe _ ->
      Metrics.Counter.incr (Metrics.counter r.reg "recovery.probes")
    | Trace.Route_restored { flow; down_s; _ } ->
      Metrics.Counter.incr (Metrics.counter r.reg "recovery.route_restores");
      Metrics.Counter.incr
        (Metrics.counter r.reg (Printf.sprintf "flow.%d.route_restores" flow));
      (* Accumulated outage time across the run's route deaths. *)
      let o =
        Metrics.gauge r.reg (Printf.sprintf "flow.%d.fault.outage_s" flow)
      in
      Metrics.Gauge.set o (Metrics.Gauge.value o +. down_s);
      let g =
        Metrics.gauge r.reg (Printf.sprintf "flow.%d.fault.down_s" flow)
      in
      if down_s > Metrics.Gauge.value g then Metrics.Gauge.set g down_s
    | Trace.Price_reset _ ->
      Metrics.Counter.incr (Metrics.counter r.reg "recovery.price_resets")
    | Trace.Ecn_mark { link; _ } ->
      Metrics.Counter.incr (Metrics.counter r.reg "ecn.marks");
      Metrics.Counter.incr
        (Metrics.counter r.reg (Printf.sprintf "link.%d.marks" link))

  let sink r = Trace.of_fn (on_event r)

  (* Recovery metrics, computed once the goodput series are complete:
     per flow, the depth and area of the goodput dip relative to a
     baseline (mean of pre-fault windows, or of the last three
     windows when the first fault hits before the first window
     closes), and the time after the last fault boundary until
     goodput is back within 90% of that baseline (-1 = never). *)
  let degradation r =
    if r.fault_last > neg_infinity then begin
      Metrics.Gauge.set (Metrics.gauge r.reg "fault.first_s") r.fault_first;
      Metrics.Gauge.set (Metrics.gauge r.reg "fault.last_s") r.fault_last;
      List.iter
        (fun f ->
          let pts =
            Metrics.Series.points
              (Metrics.series r.reg (Printf.sprintf "flow.%d.goodput" f))
          in
          let pre = List.filter (fun (t, _) -> t <= r.fault_first) pts in
          let mean = function
            | [] -> 0.0
            | l ->
              List.fold_left (fun a (_, v) -> a +. v) 0.0 l
              /. float_of_int (List.length l)
          in
          let baseline =
            match pre with
            | _ :: _ -> mean pre
            | [] ->
              let n = List.length pts in
              mean (List.filteri (fun i _ -> i >= n - 3) pts)
          in
          if baseline > 0.0 then begin
            let post = List.filter (fun (t, _) -> t > r.fault_first) pts in
            let dip_depth =
              List.fold_left
                (fun a (_, v) -> Float.max a (baseline -. v))
                0.0 post
            in
            let dip_area =
              List.fold_left
                (fun a (_, v) -> a +. (Float.max 0.0 (baseline -. v) *. r.window))
                0.0 post
            in
            let recovery =
              let rec find = function
                | [] -> -1.0
                | (t, v) :: rest ->
                  if t >= r.fault_last && v >= 0.9 *. baseline then
                    Float.max 0.0 (t -. r.fault_last)
                  else find rest
              in
              find post
            in
            let set name v =
              Metrics.Gauge.set
                (Metrics.gauge r.reg (Printf.sprintf "flow.%d.fault.%s" f name))
                v
            in
            set "dip_depth" (Float.max 0.0 dip_depth);
            set "dip_area" dip_area;
            set "recovery_s" recovery
          end)
        (sorted_keys r.flows_seen)
    end

  let flush r ~now =
    advance r now;
    (* Close the partial window so short runs still produce points. *)
    if now > r.window_start then begin
      let keep = r.window_start in
      let partial = now -. keep in
      if partial > 1e-9 then begin
        let air l =
          match Hashtbl.find_opt r.link_air l with Some a -> !a | None -> 0.0
        in
        List.iter
          (fun l ->
            Metrics.Series.add
              (Metrics.series r.reg (Printf.sprintf "link.%d.util" l))
              now (air l /. partial))
          (sorted_keys r.link_air);
        List.iter
          (fun f ->
            let bits = !(Hashtbl.find r.flow_bits f) in
            Metrics.Series.add
              (Metrics.series r.reg (Printf.sprintf "flow.%d.goodput" f))
              now
              (bits /. 1e6 /. partial))
          (sorted_keys r.flow_bits);
        Hashtbl.reset r.link_air;
        Hashtbl.reset r.flow_bits
      end
    end;
    flush_tick r;
    degradation r
end

module Summary = struct
  type flow_stats = {
    flow : int;
    delivered_frames : int;
    delivered_bytes : int;
    goodput_mbps : float;
    mean_delay : float;
    p50_delay : float;
    p95_delay : float;
    p99_delay : float;
    max_delay : float;
    rate_updates : int;
    final_rates : float array;
  }

  type recovery_stats = {
    route_deaths : int;
    route_restores : int;
    route_probes : int;
    price_resets : int;
    max_detect_s : float;  (** worst detection latency; 0 when none *)
    max_down_s : float;    (** worst outage span; 0 when none *)
  }

  type t = {
    duration : float;
    events : int;
    flows : flow_stats list;
    drops : (Trace.drop_reason * int) list;
    collisions : int;
    grants : int;
    marks : int;
    link_airtime : (int * float) list;
    recovery : recovery_stats;
  }

  type flow_acc = {
    mutable frames : int;
    mutable bytes : int;
    mutable delays_rev : float list;
    mutable rate_updates : int;
    mutable final_rates : float array;
  }

  let of_events ~duration events =
    if duration <= 0.0 then invalid_arg "Summary.of_events: duration must be positive";
    let flows : (int, flow_acc) Hashtbl.t = Hashtbl.create 8 in
    let flow f =
      match Hashtbl.find_opt flows f with
      | Some a -> a
      | None ->
        let a =
          { frames = 0; bytes = 0; delays_rev = []; rate_updates = 0; final_rates = [||] }
        in
        Hashtbl.add flows f a;
        a
    in
    let drops = Hashtbl.create 4 in
    let collisions = ref 0 and grants = ref 0 and n_events = ref 0 in
    let marks = ref 0 in
    let airtime = Hashtbl.create 32 in
    let route_deaths = ref 0
    and route_restores = ref 0
    and route_probes = ref 0
    and price_resets = ref 0
    and max_detect = ref 0.0
    and max_down = ref 0.0 in
    List.iter
      (fun ev ->
        incr n_events;
        match ev with
        | Trace.Delivery { flow = f; bytes; delay; _ } ->
          let a = flow f in
          a.frames <- a.frames + 1;
          a.bytes <- a.bytes + bytes;
          a.delays_rev <- delay :: a.delays_rev
        | Trace.Rate_update { flow = f; rates; _ } ->
          let a = flow f in
          a.rate_updates <- a.rate_updates + 1;
          a.final_rates <- rates
        | Trace.Drop { reason; _ } ->
          let c =
            match Hashtbl.find_opt drops reason with
            | Some c -> c
            | None ->
              let c = ref 0 in
              Hashtbl.add drops reason c;
              c
          in
          incr c
        | Trace.Collision _ -> incr collisions
        | Trace.Mac_grant { link; airtime = a; _ } ->
          incr grants;
          (match Hashtbl.find_opt airtime link with
          | Some r -> r := !r +. a
          | None -> Hashtbl.add airtime link (ref a))
        | Trace.Route_dead { detect_s; _ } ->
          incr route_deaths;
          if detect_s > !max_detect then max_detect := detect_s
        | Trace.Route_restored { down_s; _ } ->
          incr route_restores;
          if down_s > !max_down then max_down := down_s
        | Trace.Route_probe _ -> incr route_probes
        | Trace.Price_reset _ -> incr price_resets
        | Trace.Ecn_mark _ -> incr marks
        | Trace.Enqueue _ | Trace.Dequeue _ | Trace.Price_update _
        | Trace.Ack _ | Trace.Link_event _ | Trace.Loss_event _
        | Trace.Ctrl_event _ -> ())
      events;
    let flow_ids =
      Hashtbl.fold (fun k _ acc -> k :: acc) flows [] |> List.sort compare
    in
    {
      duration;
      events = !n_events;
      flows =
        List.map
          (fun f ->
            let a = Hashtbl.find flows f in
            let delays = List.rev a.delays_rev in
            {
              flow = f;
              delivered_frames = a.frames;
              delivered_bytes = a.bytes;
              goodput_mbps = float_of_int a.bytes *. 8e-6 /. duration;
              mean_delay = Stats.mean delays;
              p50_delay =
                (match delays with [] -> 0.0 | ds -> Stats.percentile ds 50.0);
              p95_delay =
                (match delays with [] -> 0.0 | ds -> Stats.percentile ds 95.0);
              p99_delay =
                (match delays with [] -> 0.0 | ds -> Stats.percentile ds 99.0);
              max_delay = (match delays with [] -> 0.0 | ds -> Stats.maximum ds);
              rate_updates = a.rate_updates;
              final_rates = a.final_rates;
            })
          flow_ids;
      drops =
        Hashtbl.fold (fun r c acc -> (r, !c) :: acc) drops []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      collisions = !collisions;
      grants = !grants;
      marks = !marks;
      link_airtime =
        Hashtbl.fold (fun l a acc -> (l, !a) :: acc) airtime []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      recovery =
        {
          route_deaths = !route_deaths;
          route_restores = !route_restores;
          route_probes = !route_probes;
          price_resets = !price_resets;
          max_detect_s = !max_detect;
          max_down_s = !max_down;
        };
    }

  let read_file path =
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let events = ref [] in
          let line_no = ref 0 in
          let error = ref None in
          (try
             while !error = None do
               let line = input_line ic in
               incr line_no;
               match Trace.decode line with
               | Ok ev -> events := ev :: !events
               | Error msg ->
                 error := Some (Printf.sprintf "%s:%d: %s" path !line_no msg)
             done
           with End_of_file -> ());
          match !error with
          | Some e -> Error e
          | None -> Ok (List.rev !events))

  let of_file ~duration path =
    match read_file path with
    | Error e -> Error e
    | Ok events -> Ok (of_events ~duration events)

  let flow_stats t f = List.find_opt (fun s -> s.flow = f) t.flows

  let print ?(out = stdout) t =
    let p fmt = Printf.fprintf out fmt in
    p "--- trace summary: %d events over %.3f s ---\n" t.events t.duration;
    p "MAC: %d grants, %d collisions" t.grants t.collisions;
    (match t.drops with
    | [] -> p ", no drops\n"
    | ds ->
      p "; drops:";
      List.iter (fun (r, c) -> p " %s=%d" (Trace.drop_reason_name r) c) ds;
      p "\n");
    if t.marks > 0 then p "ECN: %d frames marked\n" t.marks;
    List.iter
      (fun s ->
        p
          "flow %d: %d frames, %d bytes, %.3f Mbit/s, delay mean %.4g s p95 %.4g s \
           (%d rate updates)\n"
          s.flow s.delivered_frames s.delivered_bytes s.goodput_mbps s.mean_delay
          s.p95_delay s.rate_updates)
      t.flows;
    List.iter
      (fun (l, a) ->
        p "link %d: %.3f s on air (%.1f%% of the run)\n" l a
          (100.0 *. a /. t.duration))
      t.link_airtime;
    let r = t.recovery in
    if r.route_deaths > 0 || r.route_restores > 0 || r.price_resets > 0 then
      p
        "recovery: %d route deaths (worst detect %.3f s), %d restores (worst \
         outage %.3f s), %d probes, %d price resets\n"
        r.route_deaths r.max_detect_s r.route_restores r.max_down_s
        r.route_probes r.price_resets
end

module Runtime = struct
  (* Domain-local rather than process-global: each worker domain spun up
     by [Exec.map] sees its own slot, installs a private registry for the
     job it is running, and the executor merges the per-job registries
     into the submitter's registry in submission order. A plain global
     [ref] here would be a data race under parallel engine runs. *)
  let registry : Metrics.t option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let install_metrics () =
    let slot = Domain.DLS.get registry in
    match !slot with
    | Some reg -> reg
    | None ->
      let reg = Metrics.create () in
      slot := Some reg;
      reg

  let metrics () =
    let slot = Domain.DLS.get registry in
    match !slot with
    | Some _ as r -> r
    | None ->
      if Sys.getenv_opt "EMPOWER_METRICS" <> None then Some (install_metrics ())
      else None

  let clear () = Domain.DLS.get registry := None
end
