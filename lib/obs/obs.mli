(** Structured tracing and metrics for the datapath, the control
    plane and the experiment harness.

    The paper's evaluation is made of quantities that live {e inside}
    a run — per-link airtime against the feasibility constraint (2),
    queue build-up, price/rate convergence, reorder behaviour — and
    this module is how the repository sees them. It follows the
    pattern established by {!Invariants}: the engine is threaded with
    narrow, optional hooks that cost nothing when disabled and never
    perturb the simulation when enabled (a sink only observes; it
    consumes no randomness and mutates no engine state, so results
    are bit-identical with and without one).

    Three layers:

    - {!Trace} — a typed event record for everything that happens on
      the datapath and control plane, with a JSONL wire format
      ({!Trace.encode} / {!Trace.decode}) whose schema is documented
      below. [Engine.run ~trace:sink] streams every event into the
      sink; [empower_eval trace <scenario> --out t.jsonl] does it
      from the command line.
    - {!Metrics} — a name-keyed registry of counters, gauges,
      windowed time series and streaming histograms, populated from
      the same events by a {!Recorder}, or directly by harness code.
    - {!Summary} — a trace replayer: recomputes per-flow goodput and
      delay distributions from a trace (in memory or from a JSONL
      file) so a trace can be cross-checked against the engine's own
      [flow_result] — the end-to-end proof that the instrumentation
      tells the truth.

    {2 JSONL schema}

    One event per line, one JSON object per event. Every object has:

    - ["ev"] : string — the event kind (see below);
    - ["t"] : float — simulation time in seconds.

    Kinds and their additional fields:

    {v
    enqueue    link flow seq bytes qlen   frame entered a link FIFO
                                          (qlen = queue length after)
    grant      link flow seq collided airtime
                                          MAC granted the medium; the
                                          frame occupies it for
                                          airtime seconds
    dequeue    link flow seq              frame left the link after a
                                          successful transmission
    collision  link flow seq              transmission ended collided
                                          (airtime wasted, frame lost)
    drop       link? flow seq reason      frame left the network
                                          undelivered; reason is one of
                                          queue_overflow | link_down |
                                          misroute | backlog_cleared |
                                          fault_injected
    delivery   flow seq bytes delay       frame released to the
                                          application at the
                                          destination (delay = one-way
                                          seconds since injection)
    price      link gamma price           control tick updated the
                                          link dual γ_l; price is the
                                          full congestion price
                                          d_l·Σ_{i∈I_l} γ_i
    rate       flow rates                 controller updated the
                                          flow's per-route rates
                                          (array of Mbit/s)
    ack        flow qr bytes              destination emitted its
                                          100 ms ACK (per-route q_r
                                          and byte counts)
    link       link capacity              link capacity changed
                                          (0 = failure)
    loss       link prob                  a fault plan set the link's
                                          frame-loss probability
    ctrl       drop delay                 a fault plan set the control
                                          plane's ACK drop probability
                                          and extra ACK latency
    route_dead flow route detect_s        the recovery detector declared
                                          a route dead (detect_s =
                                          latency since last known good)
    route_probe flow route attempt        a backoff-scheduled reclaim
                                          probe was injected on a dead
                                          route
    route_restored flow route down_s      an ACK came back on a dead
                                          route; rates restored after
                                          down_s seconds of outage
    price_reset link                      recovery expired a stale
                                          congestion price (γ_l := 0)
    v}

    Numbers are encoded with enough digits to round-trip
    bit-exactly, so [decode (encode e) = Ok e] for every event. *)

(** Minimal JSON values — the wire format shared by the trace
    encoder, the metrics dumps and the harness's [--json] output.
    (The repository uses no external JSON dependency.) *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering (no trailing newline). Floats are printed
      with round-trip precision; non-finite floats become [null]. *)

  val to_buffer : Buffer.t -> t -> unit

  val parse : string -> (t, string) result
  (** Strict parser for the subset this module emits (full JSON minus
      [\uXXXX] surrogate pairs). Exactly one top-level value is
      accepted: anything but whitespace after it is rejected as
      trailing garbage, and number tokens follow the strict JSON
      grammar (no leading [+], no leading zeros, no bare [.]) rather
      than OCaml's laxer conversions. [Error msg] pinpoints the byte
      offset of the offending token. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)

  val to_int_opt : t -> int option
  (** [Int n] and integral [Float]s. *)

  val to_float_opt : t -> float option

  val to_string_opt : t -> string option

  val to_bool_opt : t -> bool option
end

(** Typed datapath/control-plane events and their JSONL codec. *)
module Trace : sig
  type drop_reason =
    | Queue_overflow   (** arriving frame hit a full FIFO *)
    | Link_down        (** head-of-line frame on a dead link *)
    | Misroute         (** no next hop matched the source route *)
    | Backlog_cleared  (** link failure flushed its queue *)
    | Fault_injected   (** a fault plan's loss window consumed the frame *)

  val drop_reason_name : drop_reason -> string
  val drop_reason_of_name : string -> drop_reason option

  type event =
    | Enqueue of { t : float; link : int; flow : int; seq : int; bytes : int; qlen : int }
    | Mac_grant of
        { t : float; link : int; flow : int; seq : int; collided : bool; airtime : float }
    | Dequeue of { t : float; link : int; flow : int; seq : int }
    | Collision of { t : float; link : int; flow : int; seq : int }
    | Drop of { t : float; link : int option; flow : int; seq : int; reason : drop_reason }
    | Delivery of { t : float; flow : int; seq : int; bytes : int; delay : float }
    | Price_update of { t : float; link : int; gamma : float; price : float }
    | Rate_update of { t : float; flow : int; rates : float array }
    | Ack of { t : float; flow : int; qr : float array; bytes : int array }
    | Link_event of { t : float; link : int; capacity : float }
    | Loss_event of { t : float; link : int; prob : float }
    | Ctrl_event of { t : float; drop : float; delay : float }
    | Route_dead of { t : float; flow : int; route : int; detect_s : float }
    | Route_probe of { t : float; flow : int; route : int; attempt : int }
    | Route_restored of { t : float; flow : int; route : int; down_s : float }
    | Price_reset of { t : float; link : int }
    | Ecn_mark of { t : float; link : int; flow : int; seq : int; occ : int }
        (** frame admitted with the CE bit set; [occ] = the port's byte
            occupancy that crossed the ECN threshold *)

  val time : event -> float
  val kind : event -> string
  (** The ["ev"] tag: ["enqueue"], ["grant"], ["dequeue"],
      ["collision"], ["drop"], ["delivery"], ["price"], ["rate"],
      ["ack"], ["link"], ["loss"], ["ctrl"], ["route_dead"],
      ["route_probe"], ["route_restored"], ["price_reset"], ["mark"]. *)

  val kinds : string list
  (** Every valid ["ev"] tag (the schema's closed set). *)

  val to_json : event -> Json.t

  val encode : event -> string
  (** One JSONL line (no trailing newline). *)

  val decode : string -> (event, string) result
  (** Strict: malformed JSON, an unknown ["ev"] kind, or a missing /
      mistyped field is an [Error]. [decode (encode e) = Ok e]. *)

  (** A consumer of events. Emission never fails upward: sinks are
      observation only. Every sink carries a deterministic sampling
      period (1 unless built by {!sampled}). *)
  type sink

  val emit : sink -> event -> unit
  (** Offer one event: delivered iff the sink's sampling accepts it
      (always, for an unsampled sink). *)

  val accept : sink -> bool
  (** Advance the sink's sampling decision by one offer and return
      whether that offer would be delivered. Hot emitters use
      [if accept s then push s ev] so the event record itself is never
      built for discarded offers; [emit s ev] is equivalent to
      [if accept s then push s ev]. Each offer must use exactly one
      [accept] (or one [emit]) — mixing both for the same event
      double-advances the sampler. *)

  val push : sink -> event -> unit
  (** Deliver unconditionally — only after [accept] returned [true]. *)

  val sampled : every:int -> sink -> sink
  (** [sampled ~every s] delivers offers [1, every+1, 2*every+1, ...]
      to [s] and discards the rest — systematic 1-in-[every] sampling
      driven by a plain counter, so it is deterministic, consumes no
      randomness, and composes multiplicatively
      ([sampled ~every:a (sampled ~every:b s)] keeps 1 in [a*b]).

      {b Accuracy contract.} Counts scale by the period: a counter fed
      through the sink sees [ceil (offered / every)] events exactly.
      Distribution statistics (delay / FCT quantiles replayed by
      {!Summary}) are the exact order statistics of the 1-in-[every]
      systematic subsample; because the engine interleaves event kinds
      on a fine time scale, the subsample behaves like a uniform
      sample of each kind. The repo pins the resulting error at p99
      within 10% relative of the full-trace value on the reference
      scenarios whenever the subsample retains at least 1000
      deliveries (verified by [test/test_obs.ml] and surfaced as
      [trace_overhead_sampled_pct] in BENCH_sim.json); below that,
      widen the sample before trusting tail quantiles.
      Raises [Invalid_argument] if [every < 1]. *)

  val sample_period : sink -> int
  (** The effective period ([1] for unsampled sinks). *)

  val of_fn : (event -> unit) -> sink

  val tee : sink -> sink -> sink
  (** Both sinks see every offer, left first, each applying its own
      sampling. *)

  val to_channel : out_channel -> sink
  (** Writes one JSONL line per event. The caller owns the channel
      (flush/close). *)

  val collector : unit -> sink * (unit -> event list)
  (** In-memory sink; the closure returns events oldest-first. *)

  val counter : unit -> sink * (unit -> int)
  (** Cheapest possible sink — used to measure tracing overhead. *)
end

(** Always-on flight recorder: the last [capacity] trace events in a
    pre-allocated struct-of-arrays ring.

    Recording a datapath event stores its tag, time and scalar fields
    into fixed [int array] / [float array] columns — no event record
    is constructed, nothing grows, so the ring is cheap enough to
    leave attached to every run (see [flight_overhead_pct] in
    BENCH_sim.json; the only boxed writes are the two array-carrying
    control-plane kinds, {!Trace.Rate_update} and {!Trace.Ack}, a few
    per control period). {!Engine.run} accepts a recorder via
    [?flight] or creates one itself when the [EMPOWER_FLIGHT]
    environment variable is set, and dumps the ring to JSONL
    automatically when an invariant trips or any exception escapes
    the event loop; [empower_eval chaos --flight] does the same when a
    chaos run regresses. Dumps decode strictly with {!Trace.decode}
    and replay with {!Summary.of_file}. *)
module Flight : sig
  type t

  val default_capacity : int
  (** 65536 events. *)

  val default_dump_path : string
  (** ["empower-flight-dump.jsonl"]. *)

  val create : ?capacity:int -> ?dump_path:string -> unit -> t
  (** Raises [Invalid_argument] if [capacity < 1]. *)

  val capacity : t -> int

  val recorded : t -> int
  (** Events ever offered; the ring retains the last
      [min recorded capacity]. *)

  val dump_path : t -> string

  val clear : t -> unit

  val event : t -> Trace.event -> unit
  (** Record one already-built event (generic path). *)

  (** Flat per-kind recorders — scalar stores only, used by the engine
      so the skipped event record is never allocated. *)

  val enqueue :
    t -> t_s:float -> link:int -> flow:int -> seq:int -> bytes:int -> qlen:int -> unit

  val grant :
    t ->
    t_s:float -> link:int -> flow:int -> seq:int -> collided:bool -> airtime:float -> unit

  val dequeue : t -> t_s:float -> link:int -> flow:int -> seq:int -> unit
  val collision : t -> t_s:float -> link:int -> flow:int -> seq:int -> unit

  val drop :
    t ->
    t_s:float ->
    link:int option -> flow:int -> seq:int -> reason:Trace.drop_reason -> unit

  val delivery :
    t -> t_s:float -> flow:int -> seq:int -> bytes:int -> delay:float -> unit

  val price : t -> t_s:float -> link:int -> gamma:float -> price:float -> unit
  val link_event : t -> t_s:float -> link:int -> capacity:float -> unit
  val loss_event : t -> t_s:float -> link:int -> prob:float -> unit
  val ctrl_event : t -> t_s:float -> drop:float -> delay:float -> unit

  val route_dead :
    t -> t_s:float -> flow:int -> route:int -> detect_s:float -> unit

  val route_probe :
    t -> t_s:float -> flow:int -> route:int -> attempt:int -> unit

  val route_restored :
    t -> t_s:float -> flow:int -> route:int -> down_s:float -> unit

  val price_reset : t -> t_s:float -> link:int -> unit

  val ecn_mark :
    t -> t_s:float -> link:int -> flow:int -> seq:int -> occ:int -> unit

  val sink : t -> Trace.sink
  (** The recorder as an ordinary (unsampled) sink, for harnesses that
      already hold constructed events. *)

  val events : t -> Trace.event list
  (** Ring contents, oldest first (decoded back into event records —
      allocates; meant for dump/inspection time). *)

  val dump_channel : t -> out_channel -> int
  (** Write the ring as JSONL, oldest first; returns lines written. *)

  val dump : ?path:string -> t -> (string * int, string) result
  (** Write the ring to [path] (default [dump_path t]); [(path, n)] on
      success, the [Sys_error] text otherwise. *)

  val env_enabled : unit -> bool
  (** [true] iff [EMPOWER_FLIGHT] is set to anything but [""]/["0"]. *)

  val of_env : unit -> t
  (** A recorder configured from the environment: capacity from
      [EMPOWER_FLIGHT] when it parses as an int > 1 (default
      {!default_capacity}), dump path from [EMPOWER_FLIGHT_DUMP]. *)
end

(** Hot-path profiler: wall clock and GC minor words attributed to
    the engine subsystem that handled each event, feeding the
    sub-300 ns/event roadmap item with per-subsystem data. Pass
    [~prof:(create ())] to {!Engine.run} (zero cost when absent), or
    run [empower_eval profile <scenario>]; aggregate numbers land in
    BENCH_sim.json as [prof_*] fields. Attribution includes a small
    constant self-cost per event (the [Gc.minor_words] reads inside
    the measured window — a few words and tens of nanoseconds). *)
module Prof : sig
  type t

  val categories : string array
  (** [[| "mac_phy"; "traffic"; "controller"; "tcp"; "recovery";
      "fault"; "scheduler" |]] — the closed category set, in id
      order. *)

  val n_categories : int
  val cat_mac_phy : int
  val cat_traffic : int
  val cat_controller : int
  val cat_tcp : int
  val cat_recovery : int
  val cat_fault : int

  (** Event-queue pop/migrate work bracketed by the engine loop; only
      ever attributed via {!leave_silent}, so it contributes wall time
      and share but no events. *)
  val cat_scheduler : int
  val category_name : int -> string

  val create : unit -> t

  val enter : t -> unit
  (** Stamp the clock and allocation counter before a handler runs. *)

  val leave : t -> int -> unit
  (** Attribute the elapsed wall time and minor words since {!enter}
      to the given category. *)

  val leave_silent : t -> int -> unit
  (** Like {!leave} but without tallying an event, for auxiliary work
      (scheduler pops) that must not inflate {!events} — the
      per-handler-event denominator benchmarks divide by. *)

  val events : t -> int
  val total_wall : t -> float

  type entry = {
    name : string;
    events : int;
    wall_s : float;
    ns_per_event : float;
    share_pct : float;        (** of the total attributed wall time *)
    minor_words : float;
    words_per_event : float;
  }

  val report : t -> entry list
  (** Non-empty categories, most expensive (wall) first. *)

  val merge : into:t -> t -> unit

  val to_json : t -> Json.t
  (** The ["profile"] figure consumed by [empower_eval report]. *)

  val print : ?out:out_channel -> t -> unit
end

(** Name-keyed registry of counters, gauges, time series and
    streaming histograms. *)
module Metrics : sig
  module Counter : sig
    type t

    val incr : t -> unit
    val add : t -> int -> unit
    val value : t -> int
  end

  module Gauge : sig
    type t

    val set : t -> float -> unit
    val value : t -> float
    (** 0 until first set. *)
  end

  (** Streaming histogram with bounded memory and deterministic,
      seed-free behaviour: log-spaced buckets with relative width
      [2ε/(1-ε)] (DDSketch-style), so any quantile is exact to within
      a relative error of [ε] (default 0.5%) while count, sum, mean,
      min and max are exact. Negative observations are clamped to the
      dedicated zero bucket (delays are never negative). *)
  module Histogram : sig
    type t

    val create : ?relative_error:float -> unit -> t
    val observe : t -> float -> unit
    val count : t -> int
    val sum : t -> float
    val mean : t -> float
    (** Exact ([sum/count]); 0 when empty. *)

    val minimum : t -> float
    (** Exact; 0 when empty. *)

    val maximum : t -> float
    (** Exact; 0 when empty. *)

    val quantile : t -> float -> float
    (** [quantile h q] with [q] in [0,1]; within the configured
        relative error of the exact order statistic. [q <= 0] and
        [q >= 1] return the exact minimum and maximum. 0 when
        empty. *)
  end

  (** Windowed time series: [(time, value)] points, appended in
      time order. *)
  module Series : sig
    type t

    val create : unit -> t
    val add : t -> float -> float -> unit
    val length : t -> int
    val points : t -> (float * float) list
    val last : t -> (float * float) option
    val mean : t -> float
    (** Mean of the values; 0 when empty. *)
  end

  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Get-or-create by name (and likewise below). A name holds one
      instrument kind; reusing it with another kind raises
      [Invalid_argument]. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> ?relative_error:float -> string -> Histogram.t
  val series : t -> string -> Series.t

  val names : t -> string list
  (** Sorted. *)

  val to_json : t -> Json.t
  (** One object member per instrument: counters/gauges as numbers,
      histograms as [{count,mean,min,max,p50,p95,p99}], series as
      [{n,last,mean}]. *)

  val print_summary : ?out:out_channel -> t -> unit
  (** Human-readable dump, sorted by name. *)

  val merge : into:t -> t -> unit
  (** [merge ~into other] folds every instrument of [other] into
      [into], matching by name: counters and histograms sum (bucket by
      bucket — both sides must use the same relative error), series
      points append after [into]'s existing points, and gauges take
      [other]'s value if it was ever set. [Exec.map] uses this to fold
      per-job registries back into the submitter's registry in
      submission order, so a parallel run's merged registry reports the
      same values as the sequential run's single registry (series point
      order included). Raises [Invalid_argument] on an instrument-kind
      or histogram-precision mismatch. [other] is unchanged. *)
end

(** Populates a {!Metrics.t} registry from trace events. Metric
    names:

    - ["mac.collisions"], ["mac.grants"], ["drops.<reason>"],
      ["trace.events"] — counters;
    - ["link.<l>.util"] — per-window airtime fraction of link [l]
      (time series), and ["link.<l>.queue"] — queue occupancy sampled
      at window boundaries;
    - ["domain.<l>.busy"] — per-window busy fraction of [l]'s
      interference domain I_l, i.e. the left side of feasibility
      constraint (2) (needs [~domain_of]);
    - ["flow.<f>.delay"] — exact-count streaming histogram of one-way
      delivery delays; ["flow.<f>.goodput"] — delivered Mbit/s per
      window (series); ["flow.<f>.rate"] — controller total rate at
      each update (series); ["flow.<f>.rate_delta"] — absolute rate
      movement per update (series);
    - ["ctrl.price_delta"] — max |Δγ| per control tick (series);
      ["ctrl.gamma_max"] — running max γ (gauge);
    - fault / degradation metrics (populated when the trace carries
      fault boundary events, i.e. [link] / [loss] / [ctrl] kinds):
      ["fault.events"] — boundary-event counter; ["fault.first_s"] /
      ["fault.last_s"] — span of the fault schedule (gauges);
      ["flow.<f>.reroutes"] — how often the flow's highest-rate route
      changed (counter); and, computed at {!Recorder.flush} per flow
      against a pre-fault goodput baseline:
      ["flow.<f>.fault.dip_depth"] (Mbit/s below baseline at the
      worst window), ["flow.<f>.fault.dip_area"] (Mbit/s·s of goodput
      lost to the dip) and ["flow.<f>.fault.recovery_s"] (time after
      the last fault boundary until goodput is back within 90% of the
      baseline; -1 = never recovered);
    - recovery metrics (populated when the engine runs with
      [recovery] enabled): ["recovery.route_deaths"] /
      ["recovery.probes"] / ["recovery.route_restores"] /
      ["recovery.price_resets"] — event counters;
      ["flow.<f>.fault.detect_s"] — worst detection latency of the
      run (gauge); ["flow.<f>.fault.down_s"] — longest detected
      outage that was subsequently restored (gauge);
      ["flow.<f>.route_deaths"] / ["flow.<f>.route_restores"] —
      per-flow route death / restore counters;
      ["flow.<f>.fault.outage_s"] — outage seconds accumulated over
      every restored route death of the run (gauge). *)
module Recorder : sig
  type t

  val create : ?window:float -> ?domain_of:(int -> int list) -> Metrics.t -> t
  (** [window] (default 1 s) sets the time-series bucketing;
      [domain_of l] lists the links of I_l (including [l]) and
      enables the per-domain busy metric. *)

  val sink : t -> Trace.sink

  val flush : t -> now:float -> unit
  (** Close the final partial window at end of run. *)
end

(** Replay a trace and recompute what the engine reported — the
    cross-check that the instrumentation and the simulation agree. *)
module Summary : sig
  type flow_stats = {
    flow : int;
    delivered_frames : int;
    delivered_bytes : int;
    goodput_mbps : float;      (** delivered_bytes·8e-6 / duration *)
    mean_delay : float;        (** exact, over every delivery *)
    p50_delay : float;         (** exact order statistic *)
    p95_delay : float;         (** exact order statistic *)
    p99_delay : float;         (** exact order statistic *)
    max_delay : float;
    rate_updates : int;
    final_rates : float array; (** last Rate_update seen; [||] if none *)
  }

  (** Self-healing activity replayed from the trace's recovery
      events. *)
  type recovery_stats = {
    route_deaths : int;
    route_restores : int;
    route_probes : int;
    price_resets : int;
    max_detect_s : float;  (** worst detection latency; 0 when none *)
    max_down_s : float;    (** worst outage span; 0 when none *)
  }

  type t = {
    duration : float;
    events : int;
    flows : flow_stats list;               (** sorted by flow id *)
    drops : (Trace.drop_reason * int) list;
    collisions : int;
    grants : int;
    marks : int;                           (** CE-marked frame admissions *)
    link_airtime : (int * float) list;     (** seconds on air per link, sorted *)
    recovery : recovery_stats;
  }

  val of_events : duration:float -> Trace.event list -> t

  val read_file : string -> (Trace.event list, string) result
  (** Read a JSONL trace with the strict decoder; the first malformed
      line or unknown event kind is an [Error] naming the line number.
      Blank lines are rejected too. *)

  val of_file : duration:float -> string -> (t, string) result
  (** [read_file] folded by [of_events]. *)

  val flow_stats : t -> int -> flow_stats option

  val print : ?out:out_channel -> t -> unit
end

(** Ambient metrics registry, for instrumenting code that is too deep
    to thread a sink through (the [--metrics] flag of the experiment
    commands; the [EMPOWER_METRICS] environment variable). When
    installed, every [Engine.run] without an explicit [?trace] attaches
    a {!Recorder} over this registry.

    The registry slot is {e domain-local} ([Domain.DLS]), not
    process-global: each worker domain spawned by [Exec.map] has its
    own slot, jobs run against a private per-job registry, and the
    executor merges those registries into the submitter's registry in
    submission order (see {!Metrics.merge}) — so parallel runs report
    the same merged metrics as sequential ones. *)
module Runtime : sig
  val install_metrics : unit -> Metrics.t
  (** Install (or return the already-installed) registry for the
      calling domain. *)

  val metrics : unit -> Metrics.t option
  (** The calling domain's registry, if installed (or if
      [EMPOWER_METRICS] is set, in which case the first call
      installs it). *)

  val clear : unit -> unit
  (** Uninstall the calling domain's registry. *)
end
