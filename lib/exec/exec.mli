(** Deterministic domain-pool job executor.

    [Exec.map] fans a list of independent jobs out over OCaml 5 domains
    and merges the results {e in submission order}, so its output is
    bit-identical to the sequential [List.map] for any job count. The
    experiment replication loops (one seeded simulation per job) use it
    to regenerate the paper's figures on all cores without perturbing a
    single byte of output.

    Determinism contract, and what callers must uphold:

    - Results are returned in submission order regardless of the order
      in which workers finish; with [jobs:1] no domain is spawned at
      all and jobs run as an explicit left-to-right fold.
    - Jobs must be pure up to job-local state: derive per-job [Rng]
      streams by splitting a master {e before} submission (in
      submission order), never by sharing one stream across jobs.
    - The ambient {!Obs.Runtime} metrics registry is handled here: when
      one is installed (or [EMPOWER_METRICS] is set), each job runs
      against a fresh domain-local registry and the per-job registries
      are folded into the submitter's registry in submission order via
      [Obs.Metrics.merge], reproducing the sequential accumulation.
      Engine [?trace] sinks, if any, must stay job-local.
    - An exception raised by a job is re-raised at the submitter (with
      its backtrace) after all workers have drained; when several jobs
      fail, the earliest submitted failure wins. *)

(** Live progress for {!map} fans (the per-domain heartbeat counters
    behind the parallelized experiment commands). Observation only:
    reporters never see or touch task results, so installing one keeps
    output bit-identical — only start/finish instants (wall clock)
    differ between runs. *)
module Progress : sig
  type snapshot = {
    total : int;  (** submitted tasks *)
    completed : int;  (** tasks finished (ok or failed) *)
    running : (int * float) list;
        (** in-flight tasks as [(submission index, elapsed seconds)],
            index order — the elapsed column is the straggler report *)
  }

  type reporter = snapshot -> unit
  (** Called under the tracker's mutex on every task start and finish,
      from whichever domain ran the task: no reporter-side locking is
      needed, but the callback must be quick and must not call back
      into {!map}. *)

  val set_reporter : reporter option -> unit
  (** Install (or clear) the process-wide reporter used by subsequent
      {!map}/{!mapi} calls (the CLI's [--progress] flag). *)

  val env_enabled : unit -> bool
  (** [true] iff [EMPOWER_PROGRESS] is set to anything but [""]/["0"];
      when no reporter is installed this enables {!stderr_reporter}. *)

  val stderr_reporter : reporter
  (** One [\[exec\] done/total, running: #i (elapsed)] line to stderr
      per event, longest-running tasks first. *)
end

val default_jobs : unit -> int
(** The worker count used when [Exec.map] is called without [?jobs]:
    the last value given to {!set_default_jobs} if any, else the
    [EMPOWER_JOBS] environment variable, else 1. Always at least 1. *)

val set_default_jobs : int -> unit
(** Override the default worker count for this process (the CLI's
    [--jobs] flag). Values below 1 are clamped to 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] applies [f] to every element of [xs] and returns
    the results in order. [jobs] (default {!default_jobs}) bounds the
    number of worker domains; it is additionally capped by the number
    of elements. [jobs:1] runs sequentially in the calling domain with
    no executor machinery involved. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, passing each element's submission index. *)
