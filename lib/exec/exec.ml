(* Domain-pool executor. See exec.mli for the determinism contract.

   Layout: tasks live in an array; a mutex/condition work queue hands
   out task indices; each of [jobs] worker domains loops taking indices
   until the queue is closed and drained. Results (or exceptions) are
   written into per-index slots, so distinct workers never write the
   same cell, and the submitter reassembles everything in submission
   order after joining. *)

let configured_jobs : int option ref = ref None

let set_default_jobs n = configured_jobs := Some (if n < 1 then 1 else n)

let default_jobs () =
  match !configured_jobs with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "EMPOWER_JOBS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1))

module Work_queue = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable head : int; (* next index to hand out *)
    mutable limit : int; (* indices < limit are published *)
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      head = 0;
      limit = 0;
      closed = false;
    }

  let publish t upto =
    Mutex.lock t.mutex;
    t.limit <- upto;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  (* Next task index; blocks while the queue is open but empty, returns
     [None] once it is closed and drained. *)
  let take t =
    Mutex.lock t.mutex;
    let rec await () =
      if t.head < t.limit then begin
        let i = t.head in
        t.head <- i + 1;
        Mutex.unlock t.mutex;
        Some i
      end
      else if t.closed then begin
        Mutex.unlock t.mutex;
        None
      end
      else begin
        Condition.wait t.nonempty t.mutex;
        await ()
      end
    in
    await ()
end

(* Explicit left-to-right sequential map: the reference semantics that
   the parallel path must reproduce bit for bit. *)
let seq_map f xs =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let y = f x in
      go (y :: acc) rest
  in
  go [] xs

let run_parallel jobs f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  (* Captures the submitter's ambient registry (auto-installing it when
     EMPOWER_METRICS is set) so per-job registries can be folded back
     into it in submission order. *)
  let main_reg = Obs.Runtime.metrics () in
  let job_regs = Array.make n None in
  let run_one i =
    let x = tasks.(i) in
    let res =
      match main_reg with
      | None -> (
        try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
      | Some _ ->
        (* Fresh registry per job, even when the same worker domain runs
           several jobs back to back. *)
        Obs.Runtime.clear ();
        let reg = Obs.Runtime.install_metrics () in
        let res =
          try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Obs.Runtime.clear ();
        job_regs.(i) <- Some reg;
        res
    in
    results.(i) <- Some res
  in
  let q = Work_queue.create () in
  Work_queue.publish q n;
  Work_queue.close q;
  let worker () =
    let rec loop () =
      match Work_queue.take q with
      | None -> ()
      | Some i ->
        run_one i;
        loop ()
    in
    loop ()
  in
  let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  (match main_reg with
  | None -> ()
  | Some into ->
    Array.iter
      (function None -> () | Some reg -> Obs.Metrics.merge ~into reg)
      job_regs);
  (* Earliest submitted failure wins, matching the sequential fold. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.to_list results
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error _) | None -> assert false)

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> (if j < 1 then 1 else j) | None -> default_jobs ()
  in
  let n = List.length xs in
  let jobs = if jobs > n then n else jobs in
  if jobs <= 1 then seq_map f xs else run_parallel jobs f xs

let mapi ?jobs f xs =
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  map ?jobs (fun (i, x) -> f i x) indexed
