(* Domain-pool executor. See exec.mli for the determinism contract.

   Layout: tasks live in an array; a mutex/condition work queue hands
   out task indices; each of [jobs] worker domains loops taking indices
   until the queue is closed and drained. Results (or exceptions) are
   written into per-index slots, so distinct workers never write the
   same cell, and the submitter reassembles everything in submission
   order after joining. *)

let configured_jobs : int option ref = ref None

let set_default_jobs n = configured_jobs := Some (if n < 1 then 1 else n)

let default_jobs () =
  match !configured_jobs with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "EMPOWER_JOBS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1))

module Progress = struct
  type snapshot = {
    total : int;
    completed : int;
    running : (int * float) list;
  }

  type reporter = snapshot -> unit

  let current : reporter option ref = ref None

  let set_reporter r = current := r

  let env_enabled () =
    match Sys.getenv_opt "EMPOWER_PROGRESS" with
    | Some s when s <> "" && s <> "0" -> true
    | _ -> false

  (* One line per event, newest state wins; elapsed times expose the
     stragglers directly (longest-running first). *)
  let stderr_reporter snap =
    let running =
      List.sort (fun (_, a) (_, b) -> compare b a) snap.running
    in
    let frag (i, el) = Printf.sprintf "#%d (%.1fs)" i el in
    Printf.eprintf "[exec] %d/%d done%s\n%!" snap.completed snap.total
      (match running with
      | [] -> ""
      | rs -> ", running: " ^ String.concat " " (List.map frag rs))

  let resolve () =
    match !current with
    | Some _ as r -> r
    | None -> if env_enabled () then Some stderr_reporter else None
end

(* Progress bookkeeping shared by the sequential and parallel paths.
   Pure observation: start/finish marks and the reporter callback never
   touch task results, so output stays bit-identical with a reporter
   installed. Callbacks run in whichever domain finished the task,
   under the tracker's mutex (so a reporter needs no locking of its
   own, but must be quick). *)
let with_progress n run =
  match Progress.resolve () with
  | None -> run (fun _ f -> f ())
  | Some report ->
    let mutex = Mutex.create () in
    let started = Array.make n Float.nan in
    let finished = Array.make n false in
    let completed = ref 0 in
    let snapshot () =
      let now = Unix.gettimeofday () in
      let running = ref [] in
      for i = n - 1 downto 0 do
        if (not finished.(i)) && not (Float.is_nan started.(i)) then
          running := (i, now -. started.(i)) :: !running
      done;
      { Progress.total = n; completed = !completed; running = !running }
    in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    run (fun i f ->
        locked (fun () ->
            started.(i) <- Unix.gettimeofday ();
            report (snapshot ()));
        let finish () =
          locked (fun () ->
              finished.(i) <- true;
              incr completed;
              report (snapshot ()))
        in
        match f () with
        | y ->
          finish ();
          y
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt)

module Work_queue = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable head : int; (* next index to hand out *)
    mutable limit : int; (* indices < limit are published *)
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      head = 0;
      limit = 0;
      closed = false;
    }

  let publish t upto =
    Mutex.lock t.mutex;
    t.limit <- upto;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  (* Next task index; blocks while the queue is open but empty, returns
     [None] once it is closed and drained. *)
  let take t =
    Mutex.lock t.mutex;
    let rec await () =
      if t.head < t.limit then begin
        let i = t.head in
        t.head <- i + 1;
        Mutex.unlock t.mutex;
        Some i
      end
      else if t.closed then begin
        Mutex.unlock t.mutex;
        None
      end
      else begin
        Condition.wait t.nonempty t.mutex;
        await ()
      end
    in
    await ()
end

(* Explicit left-to-right sequential map: the reference semantics that
   the parallel path must reproduce bit for bit. *)
let seq_map mark f xs =
  let rec go i acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let y = mark i (fun () -> f x) in
      go (i + 1) (y :: acc) rest
  in
  go 0 [] xs

let run_parallel mark jobs f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  (* Captures the submitter's ambient registry (auto-installing it when
     EMPOWER_METRICS is set) so per-job registries can be folded back
     into it in submission order. *)
  let main_reg = Obs.Runtime.metrics () in
  let job_regs = Array.make n None in
  let run_one i =
    let x = tasks.(i) in
    let task () = mark i (fun () -> f x) in
    let res =
      match main_reg with
      | None -> (
        try Ok (task ()) with e -> Error (e, Printexc.get_raw_backtrace ()))
      | Some _ ->
        (* Fresh registry per job, even when the same worker domain runs
           several jobs back to back. *)
        Obs.Runtime.clear ();
        let reg = Obs.Runtime.install_metrics () in
        let res =
          try Ok (task ()) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Obs.Runtime.clear ();
        job_regs.(i) <- Some reg;
        res
    in
    results.(i) <- Some res
  in
  let q = Work_queue.create () in
  Work_queue.publish q n;
  Work_queue.close q;
  let worker () =
    let rec loop () =
      match Work_queue.take q with
      | None -> ()
      | Some i ->
        run_one i;
        loop ()
    in
    loop ()
  in
  let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  (match main_reg with
  | None -> ()
  | Some into ->
    Array.iter
      (function None -> () | Some reg -> Obs.Metrics.merge ~into reg)
      job_regs);
  (* Earliest submitted failure wins, matching the sequential fold. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.to_list results
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error _) | None -> assert false)

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> (if j < 1 then 1 else j) | None -> default_jobs ()
  in
  let n = List.length xs in
  let jobs = if jobs > n then n else jobs in
  with_progress n (fun mark ->
      if jobs <= 1 then seq_map mark f xs else run_parallel mark jobs f xs)

let mapi ?jobs f xs =
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  map ?jobs (fun (i, x) -> f i x) indexed
