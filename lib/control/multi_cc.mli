(** The multipath congestion controller (Section 4.3).

    Flows may own several routes; the objective [Σ_f U_f(Σ_{r∈f} x_r)]
    is concave but not strictly concave in x, so the controller
    maximizes the proximal objective (11) — the same optimizer, made
    strictly concave with the auxiliary variable x̄. The per-slot
    updates are:

    {v
    x_r ← (1-α) x_r + α [ x̄_r + U'_f(Σ_{h∈f} x_h) - q_r ]+
    x̄_r ← (1-α) x̄_r + α x_r
    v}

    with [y_l], [γ_l], [q_r] exactly as in the single-path controller.
    The controller is distributed: the rate update needs only the
    flow's own rates, [x̄_r], and the [q_r] echoed by the destination
    in the 100 ms acknowledgements. *)

val solve :
  ?alpha:Alpha.t ->
  ?gain:float ->
  ?slots:int ->
  ?stop_tol:float ->
  ?x_init:float array ->
  ?sink:Obs.Trace.sink ->
  ?ack_loss:(slot:int -> flow:int -> bool) ->
  ?price_drain:float ->
  Problem.t ->
  Cc_result.t
(** Run for [slots] iterations (default 2000) from [x_init] (default
    all-zero), γ = 0, x̄ = x_init. Works for any mix of single- and
    multi-route flows (a single-route flow recovers near-single-path
    behaviour).

    [gain] is the proximal weight: the quadratic penalty in (11) is
    [1/(2c) Σ (x_r - x̄_r)^2], giving the update
    [x_r ← (1-α) x_r + α [x̄_r + c (U'_f - q_r)]+]. Any [c > 0] leaves
    the optimizer unchanged ([U'_f = q_r] at the fixed point); its
    magnitude sets how many Mbit/s the rate moves per slot, i.e. it
    matches the controller's dynamics to the Mbit/s scale of the
    problem. The default 50 reproduces the paper's observed ~90-slot
    convergence on residential networks.

    The proximal update moves x by O(α) per slot, so starting from
    zero the ramp to tens of Mbit/s takes thousands of slots. EMPoWER
    starts injection at the routing-estimated route rates [R(P)]
    instead (the source knows them from the multipath procedure),
    which is what makes the observed 90-slot convergence possible —
    pass those rates as [x_init]; the controller then only fine-tunes
    toward the utility optimum and resolves inter-flow contention.

    [sink] streams the controller's convergence into an
    {!Obs.Trace.sink}: one [Price_update] per slot for every link some
    route traverses (γ_l plus the full congestion price
    [d_l Σ_{i∈I_l} γ_i]) and one [Rate_update] per flow (its per-route
    rates), with the slot index as the event timestamp.

    [ack_loss] models control-plane message loss: when
    [ack_loss ~slot ~flow] is true, flow [flow]'s report for that slot
    is treated as lost — its rates and proximal anchors hold still
    while the link duals keep evolving — instead of assuming lossless
    delivery. The update resumes on the next delivered report; with
    any loss pattern of density < 1 the iteration still converges to
    the same fixed point (the fixed-point equations are unchanged),
    only slower.

    [price_drain] (default 0, the paper's exact update) leaks every
    dual by that amount per slot before the positive projection:
    [γ_l ← [γ_l + α (y_l - (1-δ)) - price_drain]+]. Without it a
    stale price on a failed route decays only at α·(1-δ) per step —
    with the engine's defaults (α = 0.02, δ = 0.05, 100 ms control
    period) roughly 0.03/s of simulated time, the hysteresis that
    made full-severance recovery take tens of seconds before the
    recovery subsystem existed. A small positive drain bounds that
    tail at the cost of a slight steady-state price bias, so it is
    off by default; the self-healing path in [lib/recovery] resets
    stale prices outright instead. Raises [Invalid_argument] when
    negative or non-finite. *)

val solve_tracked :
  ?alpha:Alpha.t ->
  ?gain:float ->
  ?slots:int ->
  ?stop_tol:float ->
  ?x_init:float array ->
  ?sink:Obs.Trace.sink ->
  ?ack_loss:(slot:int -> flow:int -> bool) ->
  ?price_drain:float ->
  on_slot:(int -> float array -> unit) ->
  Problem.t ->
  Cc_result.t
(** Same as {!solve}, invoking [on_slot t x] after every slot with the
    current per-route rates — used by the time-series experiments
    (Figure 9). [stop_tol] enables early termination: the loop ends
    once no flow rate has moved by more than [max tol (0.5%)] over 200
    slots (the tail of the trace is padded with the settled rates). *)
