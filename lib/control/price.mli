(** Dual prices and airtime accounting — equations (7), (8), (9).

    Each node measures the airtime demand of its egress links and
    broadcasts per-technology aggregates; overhearing nodes assemble
    [y_l] for their own links, maintain the dual variables [γ_l], and
    stamp the running route cost into the layer-2.5 header so the
    destination learns [q_r]. This module is the centralized
    simulation of exactly that arithmetic, with incidence structures
    precomputed once per problem. *)

type t
(** Price state ([γ_l] per link) plus the cached route/link incidence
    for one {!Problem.t}. *)

val create : Problem.t -> t
(** Fresh state with [γ = 0]. *)

val gamma : t -> float array
(** Current dual variables (returned by reference; treat as
    read-only). *)

val airtimes : t -> x:float array -> float array
(** [y_l] for every link under route rates [x]: equation (7) plus the
    problem's external airtime. *)

val step_gamma : ?drain:float -> t -> y:float array -> alpha:float -> unit
(** Equation (8) with the margin of (3):
    [γ_l ← [γ_l + α (y_l - (1 - δ)) - drain]+].
    [drain] (default 0, i.e. the paper's exact update) is an optional
    per-step leak that bounds how long a stale price lingers after
    its link's load disappears — without it γ decays only at α·(1-δ)
    per step once y_l drops to zero. *)

val route_costs : t -> float array
(** [q_r] for every route under the current [γ]: equation (9). *)

val routes_on_link : t -> int -> int list
(** Route ids traversing a link (cached incidence; for tests). *)
