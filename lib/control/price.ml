(* The dual arithmetic only involves links that can carry traffic
   (route links, plus links with external airtime) and the links whose
   interference domains contain them (their γ enters the route
   prices). Restricting the per-slot loops to those sets makes the
   controller's cost independent of the total network size — on the
   22-node testbed graph this is a ~50x saving. *)

type t = {
  problem : Problem.t;
  gamma : float array;          (* full-size; only relevant entries move *)
  carriers : int array;         (* links with possible demand *)
  on_link : int array array;    (* carrier position -> route ids *)
  priced : int array;           (* links whose gamma can become nonzero *)
  priced_carriers : int array array;
      (* per priced position: carrier positions within its domain *)
  route_domains : int array array;
      (* per carrier position: positions (in [priced]) of I_l *)
  n_links : int;
}

let create (problem : Problem.t) =
  let g = problem.Problem.g in
  let dom = problem.Problem.dom in
  let n_links = Multigraph.num_links g in
  let is_carrier = Array.make n_links false in
  Array.iter
    (fun p -> List.iter (fun l -> is_carrier.(l) <- true) p.Paths.links)
    problem.Problem.routes;
  Array.iteri
    (fun l ext -> if ext > 0.0 then is_carrier.(l) <- true)
    problem.Problem.external_airtime;
  let carriers =
    Array.of_list
      (List.filter (fun l -> is_carrier.(l)) (List.init n_links Fun.id))
  in
  let carrier_pos = Array.make n_links (-1) in
  Array.iteri (fun pos l -> carrier_pos.(l) <- pos) carriers;
  (* Links whose domain touches a carrier: their gamma can rise and
     feeds route prices. *)
  let is_priced = Array.make n_links false in
  Array.iter
    (fun l -> List.iter (fun i -> is_priced.(i) <- true) (Domain.domain dom l))
    carriers;
  let priced =
    Array.of_list (List.filter (fun l -> is_priced.(l)) (List.init n_links Fun.id))
  in
  let priced_pos = Array.make n_links (-1) in
  Array.iteri (fun pos l -> priced_pos.(l) <- pos) priced;
  let on_link =
    Array.map
      (fun l ->
        let rs = ref [] in
        Array.iteri
          (fun r p -> if Paths.mem_link p l then rs := r :: !rs)
          problem.Problem.routes;
        Array.of_list (List.rev !rs))
      carriers
  in
  let priced_carriers =
    Array.map
      (fun i ->
        Domain.domain dom i
        |> List.filter_map (fun l ->
               if carrier_pos.(l) >= 0 then Some carrier_pos.(l) else None)
        |> Array.of_list)
      priced
  in
  let route_domains =
    Array.map
      (fun l ->
        Domain.domain dom l
        |> List.filter_map (fun i ->
               if priced_pos.(i) >= 0 then Some priced_pos.(i) else None)
        |> Array.of_list)
      carriers
  in
  {
    problem;
    gamma = Array.make n_links 0.0;
    carriers;
    on_link;
    priced;
    priced_carriers;
    route_domains;
    n_links;
  }

let gamma t = t.gamma

let airtimes t ~x =
  let p = t.problem in
  let n_carriers = Array.length t.carriers in
  let demand = Array.make n_carriers 0.0 in
  for c = 0 to n_carriers - 1 do
    let l = t.carriers.(c) in
    let traffic = ref 0.0 in
    Array.iter (fun r -> traffic := !traffic +. x.(r)) t.on_link.(c);
    demand.(c) <- (p.Problem.d.(l) *. !traffic) +. p.Problem.external_airtime.(l)
  done;
  let y = Array.make t.n_links 0.0 in
  Array.iteri
    (fun pos i ->
      let acc = ref 0.0 in
      Array.iter (fun c -> acc := !acc +. demand.(c)) t.priced_carriers.(pos);
      y.(i) <- !acc)
    t.priced;
  y

let step_gamma ?(drain = 0.0) t ~y ~alpha =
  let target = 1.0 -. t.problem.Problem.delta in
  Array.iter
    (fun i ->
      let upd = t.gamma.(i) +. (alpha *. (y.(i) -. target)) in
      let upd = if drain > 0.0 then upd -. drain else upd in
      t.gamma.(i) <- Float.max 0.0 upd)
    t.priced

let route_costs t =
  let p = t.problem in
  (* Per-carrier price d_l * Σ_{i ∈ I_l} γ_i, then summed along routes. *)
  let link_price = Array.make t.n_links 0.0 in
  Array.iteri
    (fun c l ->
      let acc = ref 0.0 in
      Array.iter (fun pos -> acc := !acc +. t.gamma.(t.priced.(pos))) t.route_domains.(c);
      link_price.(l) <- p.Problem.d.(l) *. !acc)
    t.carriers;
  Array.map
    (fun path ->
      List.fold_left (fun acc l -> acc +. link_price.(l)) 0.0 path.Paths.links)
    p.Problem.routes

let routes_on_link t l =
  let res = ref [] in
  Array.iteri
    (fun c l' -> if l' = l then res := Array.to_list t.on_link.(c))
    t.carriers;
  !res
