let solve_tracked ?alpha ?(gain = 50.0) ?(slots = 2000) ?stop_tol ?x_init ?sink
    ?ack_loss ?(price_drain = 0.0) ~on_slot (problem : Problem.t) =
  if (not (Float.is_finite price_drain)) || price_drain < 0.0 then
    invalid_arg "Multi_cc.solve: price_drain must be finite and >= 0";
  let alpha = match alpha with Some a -> a | None -> Alpha.fixed 0.02 in
  let n_routes = Problem.n_routes problem in
  let x =
    match x_init with
    | Some x0 ->
      if Array.length x0 <> n_routes then
        invalid_arg "Multi_cc.solve: x_init length mismatch";
      Array.copy x0
    | None -> Array.make n_routes 0.0
  in
  let x_bar = Array.copy x in
  let price = Price.create problem in
  (* Convergence tracing: per-slot Price_update for every link some
     route traverses (γ_l and the full congestion price) and
     Rate_update per flow, with the slot index as the timestamp. *)
  let carrier_links =
    match sink with
    | None -> []
    | Some _ ->
      let n_links = Multigraph.num_links problem.Problem.g in
      let seen = Array.make n_links false in
      Array.iter
        (fun (p : Paths.t) -> List.iter (fun l -> seen.(l) <- true) p.Paths.links)
        problem.Problem.routes;
      List.filter (fun l -> seen.(l)) (List.init n_links Fun.id)
  in
  let emit_slot slot x =
    match sink with
    | None -> ()
    | Some s ->
      let t_s = float_of_int slot in
      let gamma = Price.gamma price in
      List.iter
        (fun l ->
          let g_sum =
            List.fold_left
              (fun acc i -> acc +. gamma.(i))
              0.0
              (Domain.domain problem.Problem.dom l)
          in
          Obs.Trace.emit s
            (Obs.Trace.Price_update
               {
                 t = t_s;
                 link = l;
                 gamma = gamma.(l);
                 price = problem.Problem.d.(l) *. g_sum;
               }))
        carrier_links;
      Array.iteri
        (fun f route_ids ->
          let rates = Array.of_list (List.map (fun r -> x.(r)) route_ids) in
          Obs.Trace.emit s (Obs.Trace.Rate_update { t = t_s; flow = f; rates }))
        problem.Problem.flow_routes
  in
  let trace = Array.make slots [||] in
  let u' = problem.Problem.utility.Utility.u' in
  let stopped = ref None in
  let t = ref 0 in
  while !t < slots && !stopped = None do
    let a = Alpha.current alpha in
    let y = Price.airtimes price ~x in
    Price.step_gamma ~drain:price_drain price ~y ~alpha:a;
    let q = Price.route_costs price in
    let flow_rate = Problem.flow_rates problem x in
    (* Control-message loss: a flow whose price/rate report for this
       slot is lost simply keeps its current rates (both x and the
       proximal anchor x_bar hold still), while the duals keep
       evolving from the observed airtimes — the source reacts again
       on the next delivered report. *)
    let lost =
      match ack_loss with
      | None -> fun _ -> false
      | Some p ->
        let slot = !t in
        let memo =
          Array.init
            (Array.length problem.Problem.flow_routes)
            (fun f -> p ~slot ~flow:f)
        in
        fun f -> memo.(f)
    in
    for r = 0 to n_routes - 1 do
      let f = problem.Problem.flow_of.(r) in
      if not (lost f) then begin
        let inner =
          Float.max 0.0 (x_bar.(r) +. (gain *. (u' flow_rate.(f) -. q.(r))))
        in
        x.(r) <- ((1.0 -. a) *. x.(r)) +. (a *. inner)
      end
    done;
    for r = 0 to n_routes - 1 do
      if not (lost problem.Problem.flow_of.(r)) then
        x_bar.(r) <- ((1.0 -. a) *. x_bar.(r)) +. (a *. x.(r))
    done;
    let flow_rates = Problem.flow_rates problem x in
    trace.(!t) <- flow_rates;
    Alpha.observe alpha (Array.fold_left ( +. ) 0.0 flow_rates);
    emit_slot !t x;
    on_slot !t x;
    (* Optional early stop: no flow rate moved by more than the
       tolerance over the last 200 slots. *)
    (match stop_tol with
    | Some tol when !t >= 200 && !t mod 50 = 0 ->
      let settled = ref true in
      Array.iteri
        (fun f v ->
          let prev = trace.(!t - 200).(f) in
          if Float.abs (v -. prev) > Float.max tol (0.005 *. Float.abs v) then
            settled := false)
        flow_rates;
      if !settled then stopped := Some !t
    | Some _ | None -> ());
    incr t
  done;
  (* Pad the trace so convergence measurement still works. *)
  (match !stopped with
  | Some s ->
    for t' = s + 1 to slots - 1 do
      trace.(t') <- trace.(s)
    done
  | None -> ());
  {
    Cc_result.rates = x;
    flow_rates = Problem.flow_rates problem x;
    slots;
    trace;
  }

let solve ?alpha ?gain ?slots ?stop_tol ?x_init ?sink ?ack_loss ?price_drain
    problem =
  solve_tracked ?alpha ?gain ?slots ?stop_tol ?x_init ?sink ?ack_loss
    ?price_drain
    ~on_slot:(fun _ _ -> ())
    problem
