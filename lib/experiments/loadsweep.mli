(** Empirical heavy-traffic load sweep over the testbed topology.

    The production-style evaluation recipe (ns-2's [spine_empirical]):
    drive the network at a target {e load factor} — a fraction of the
    aggregate capacity EMPoWER allocates to a set of sender/receiver
    pairs — with open-loop flow arrivals whose sizes come from an
    empirical {!Cdf}, and report flow-completion-time (FCT)
    percentiles per size bucket.

    Per load factor: the testbed instance (seed 4242, as in {!Chaos})
    is planned and allocated for [pairs] random connected
    source/destination pairs; the pair set and the resulting
    contention-aware capacity [C = sum of allocated flow rates] depend
    only on [seed], not on the load. Each pair runs [conns] parallel
    connections (engine flows) at a [1/conns] share of the pair's
    allocated route rates, and is offered [load] times its own
    allocated rate by a {!Loadgen} schedule, so the aggregate offer is
    [load * C]. FCTs ([completion - arrival], queueing wait included)
    land in {!Obs.Metrics.Histogram}s bucketed by flow size —
    {e tiny} < 100 kB, {e short} < 5 MB, {e long} >= 5 MB, plus
    {e all} — reported as p50/p95/p99.

    Determinism: a point is a pure function of its parameters (equal
    seeds are bit-identical), and {!sweep} fans points out over
    domains with {!Exec.map}, so its output is byte-identical at any
    [jobs] count. One [seed] pins the pair draw, every pair's
    generator stream and the engine stream; generator draws are
    ordered gap/size/connection so sweeps at the same seed see
    common random numbers across load factors. *)

type bucket = {
  label : string;  (** ["tiny"] | ["short"] | ["long"] | ["all"] *)
  count : int;     (** completed transfers in the bucket *)
  p50 : float;     (** FCT percentiles in seconds; 0 when empty *)
  p95 : float;
  p99 : float;
}

type point = {
  load : float;          (** target load factor *)
  offered_load : float;  (** generator-achieved offer / capacity *)
  achieved_load : float; (** delivered bytes * 8 / (C * duration) *)
  arrivals : int;        (** transfers offered across all connections *)
  completed : int;       (** transfers finished within the run *)
  queue_drops : int;
  buckets : bucket list; (** tiny, short, long, all — in that order *)
  fcts : (int * float option) list;
      (** per offered transfer, in global arrival order: (size bytes,
          FCT seconds — [None] if unfinished at the end of the run).
          At a fixed seed, index [i] is the {e same} transfer (size,
          connection) at every load factor — arrival times all scale
          by the load — so sweeps can compare FCTs transfer by
          transfer (common random numbers). Not serialized in the
          [--json] figure. *)
}

type data = {
  seed : int;
  pairs : int;
  conns : int;
  duration : float;   (** arrival window (s) *)
  drain : float;      (** extra simulated time for backlog to finish *)
  capacity_mbps : float;  (** C: aggregate allocated capacity *)
  pacing : Workload.pacing;
  cdf : string;       (** {!Cdf.describe} of the distribution used *)
  points : point list;
}

val tiny_max_bytes : int
(** 100 kB — upper bound (exclusive) of the {e tiny} bucket. *)

val short_max_bytes : int
(** 5 MB — upper bound (exclusive) of the {e short} bucket. *)

val run :
  ?cdf:Cdf.t ->
  ?pairs:int ->
  ?conns:int ->
  ?duration:float ->
  ?drain:float ->
  ?pacing:Workload.pacing ->
  ?seed:int ->
  load:float ->
  unit ->
  data
(** One load point (defaults: {!Cdf.websearch}, 4 pairs, 2
    connections per pair, 30 s window + 10 s drain, CBR pacing, seed
    17). Raises [Invalid_argument] for [load] outside (0, 1]. *)

val sweep :
  ?cdf:Cdf.t ->
  ?pairs:int ->
  ?conns:int ->
  ?duration:float ->
  ?drain:float ->
  ?pacing:Workload.pacing ->
  ?seed:int ->
  ?jobs:int ->
  float list ->
  data
(** The load factors' points merged into one [data] (each point is an
    independent pure job; results follow the input order, so output
    is byte-identical at any [jobs] count). *)

val print : ?out:out_channel -> data -> unit
