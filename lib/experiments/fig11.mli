(** Figure 11: per-flow average throughput and variability.

    Ten fixed testbed flows (the paper's pairs 4→19, 1→11, 17→1,
    19→3, 9→4, 11→5, 13→21, 11→15, 20→19, 7→6), each run
    packet-level under EMPoWER, MP-mWiFi and SP; we report the mean
    and standard deviation of the per-second throughput over the last
    100 s. Multipath reordering does not inflate the variance, and
    EMPoWER's coverage gain shows on the poor-connectivity flows. *)

type row = {
  flow : int * int;          (** 1-based paper node numbers *)
  empower : float * float;   (** mean, std *)
  mp_mwifi : float * float;
  sp : float * float;
}

type data = { rows : row list; seconds : int }

val paper_flows : (int * int) list
(** The ten pairs, 1-based. *)

val run : ?seed:int -> ?duration:float -> ?jobs:int -> unit -> data
(** Default 200 s per run (statistics over the last 100 s), seed 11.
    [jobs] as in {!Fig4.run}: the ten rows fan out over a domain
    pool; bit-identical for any job count. *)

val print : data -> unit
