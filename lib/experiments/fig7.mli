(** Figure 7: utility maximization with three contending flows.

    CDF of U_X / U_optimal with three saturated flows between random
    pairs, U = Σ_f log(1 + x_f). The multipath gain is conditional on
    congestion control: MP-w/o-CC collapses, EMPoWER tracks
    conservative opt and beats MP-2bp and SP. *)

type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;  (** U_X / U_optimal *)
}

val run : ?runs:int -> ?seed:int -> ?jobs:int -> Common.topology -> data
(** Default 40 runs (each run solves Frank–Wolfe programs), seed 4.
    [jobs] as in {!Fig4.run}: parallel and bit-identical for any job
    count. *)

val print : data -> unit
