type data = {
  topology : Common.topology;
  runs : int;
  samples : (Schemes.t * float list) list;
}

let schemes =
  [ Schemes.Empower; Schemes.Sp; Schemes.Sp_wifi; Schemes.Mp_wifi; Schemes.Mp_mwifi ]

let run ?(runs = Common.runs_scaled 100) ?(seed = 1) ?jobs topology =
  (* One pure job per seeded replication: the per-run stream is split
     off the master in submission order before the fan-out, so the
     parallel map is bit-identical to the historical sequential loop. *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let flow = Common.random_flow rng inst in
        List.map
          (fun s -> (Schemes.evaluate (Rng.copy rng) inst s ~flows:[ flow ]).(0))
          schemes)
      (Common.split_rngs master runs)
  in
  let samples =
    List.mapi (fun i s -> (s, List.map (fun rates -> List.nth rates i) per_run)) schemes
  in
  { topology; runs; samples }

let mean_of data s =
  match List.assoc_opt s data.samples with
  | None -> 0.0
  | Some xs -> Stats.mean xs

let gain data ~over =
  let m = mean_of data over in
  if m <= 0.0 then infinity else mean_of data Schemes.Empower /. m

let print data =
  let series =
    List.map
      (fun (s, xs) -> (Schemes.name s, Stats.Ecdf.of_list xs))
      (List.filter (fun (s, _) -> s <> Schemes.Mp_wifi) data.samples)
  in
  let hi =
    List.fold_left
      (fun acc (_, ecdf) -> Float.max acc (snd (Stats.Ecdf.support ecdf)))
      1.0 series
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf "Figure 4 (%s): CDF of flow throughput T_X (%d runs)"
         (Common.topology_name data.topology) data.runs)
    ~xlabel:"Mbps"
    ~grid:(Table.linear_grid ~lo:0.0 ~hi ~n:16)
    ~series;
  Printf.printf "mean gain of EMPoWER over SP-WiFi: %.0f%%\n"
    (100.0 *. (gain data ~over:Schemes.Sp_wifi -. 1.0));
  Printf.printf "mean gain of EMPoWER over SP:      %.0f%%\n"
    (100.0 *. (gain data ~over:Schemes.Sp -. 1.0));
  (* The text's sanity claim: MP-WiFi coincides with SP-WiFi. *)
  Printf.printf "MP-WiFi vs SP-WiFi mean (should coincide): %.2f vs %.2f Mbps\n"
    (mean_of data Schemes.Mp_wifi) (mean_of data Schemes.Sp_wifi);
  Printf.printf "EMPoWER vs MP-mWiFi mean: %.2f vs %.2f Mbps\n"
    (mean_of data Schemes.Empower) (mean_of data Schemes.Mp_mwifi)
