(** Table 1: download times with and without congestion control.

    Four experiments on the testbed, Flow 6→13 using two two-hop
    routes (PLC+WiFi and PLC+PLC through Node 7):

    - Tiny: a 100 kB file, no concurrent traffic;
    - Short: a 5 MB file;
    - Long: a 2 GB file (scaled by [long_scale] to keep the default
      run short; the paper value is reported rescaled);
    - Conc: the long download with a concurrent Flow 12→8 fetching
      five 5 MB files at Poisson times (mean gap 60 s).

    Downloads run over TCP (Section 6.4). EMPoWER vs MP-w/o-CC (same
    routes, no controller, no delay equalization): CC helps short
    flows moderately (~20-35%) and long/concurrent flows massively
    (~40-60% faster in the paper). *)

type cell = { mean : float; std : float; runs : int }

type data = {
  tiny : cell * cell;     (** EMPoWER, MP-w/o-CC *)
  short : cell * cell;
  long_ : cell * cell;
  conc_main : cell * cell;
  conc_side : cell * cell; (** the five concurrent 5 MB files, total *)
  long_bytes : int;
}

val run : ?seed:int -> ?repeats:int -> ?long_scale:float -> ?jobs:int -> unit -> data
(** Default: 5 repeats of Tiny/Short, 3 of Long/Conc (the paper uses
    40/10), [long_scale = 0.05] (2 GB -> 100 MB). Seed 12. [jobs] as
    in {!Fig4.run}: repeats fan out over a domain pool; bit-identical
    for any job count. *)

val print : data -> unit
