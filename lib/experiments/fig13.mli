(** Figure 13: average TCP rate over ten testbed flows.

    The paper's pairs (9→10, 4→7, 21→18, 8→6, 17→15, 9→13, 4→5,
    20→17, 3→6, 13→7), each downloading over TCP: EMPoWER (two routes
    where available, δ = 0.3, delay equalization) vs plain single-path
    TCP (SP-w/o-CC). δ = 0.3 improves performance in all cases with
    no general variance increase. *)

type row = {
  flow : int * int;
  empower : float * float;  (** mean, std of per-second TCP goodput *)
  sp_wo_cc : float * float;
}

type data = { rows : row list; delta : float }

val paper_flows : (int * int) list

val run : ?seed:int -> ?duration:float -> ?delta:float -> ?jobs:int -> unit -> data
(** Default 150 s per run (statistics skip the first 30 s), δ = 0.3,
    seed 14. [jobs] as in {!Fig4.run}: the ten rows fan out over a
    domain pool; bit-identical for any job count. *)

val print : data -> unit
