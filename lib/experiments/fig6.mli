(** Figure 6: throughput against the optimal centralized schemes.

    CDF of T_X / T_optimal for X in {conservative opt, EMPoWER,
    MP-2bp, MP-w/o-CC, SP}, single saturated flow. T_optimal is the
    exact utility/throughput optimum over the clique airtime polytope
    (backpressure's steady state); conservative opt is the optimum
    under EMPoWER's constraint (2). The paper: EMPoWER within 10% of
    conservative opt in 98% (residential) / 85% (enterprise) of
    cases, optimal throughput in 88% / 60%, within 15% of optimal in
    99% / 83%. *)

type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;  (** T_X / T_optimal per scheme *)
}

val run : ?runs:int -> ?seed:int -> ?jobs:int -> Common.topology -> data
(** Default 60 runs (each run solves 2+ LPs), seed 3. [jobs] as in
    {!Fig4.run}: parallel and bit-identical for any job count. *)

val fraction_within : data -> scheme:string -> loss:float -> float
(** Fraction of runs where the scheme's ratio is at least
    [1 - loss]. *)

val print : data -> unit
