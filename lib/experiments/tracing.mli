(** Traceable reference scenarios for the harness ([empower_eval
    trace <scenario>]) and the cross-check that makes a trace
    trustworthy: replaying it through {!Obs.Summary} must reproduce
    the engine's own accounting. *)

type outcome = {
  scenario : string;
  result : Engine.result;
  duration : float;
}

type scenario = {
  name : string;
  about : string;
  exec : ?trace:Obs.Trace.sink -> ?prof:Obs.Prof.t -> unit -> outcome;
}

val scenarios : scenario list
(** ["mini"] (CI-sized), ["fig4"], ["failure"] (mid-run link failure),
    ["tcp"]. All deterministic: fixed topology seeds and engine
    seeds. *)

val names : unit -> string list

val find : string -> scenario option

val goodput_mbps : Engine.flow_result -> duration:float -> float
(** The engine's reported goodput: [received_bytes * 8e-6 / duration]. *)

val cross_check : outcome -> Obs.Summary.t -> (unit, string) result
(** Per flow: delivered bytes must match exactly, goodput to within
    1e-9 Mbit/s, mean delay to within 1e-9 relative (both sides are
    exact streams), p95 delay to within 2% (the engine's histogram
    has 0.5% relative error; the replay is exact), final controller
    rates bit-exactly when any rate update was traced; the traced
    queue-overflow + link-down + backlog drops must sum to the
    engine's [queue_drops]. [Error] concatenates every discrepancy. *)
