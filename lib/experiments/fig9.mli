(** Figure 9: EMPoWER adapting to a contending flow (testbed example).

    The Section 6.2 scenario: Flow 1→13 (saturated UDP) uses two
    routes — Route 1, a two-hop WiFi+PLC route through Node 4, and
    Route 2, the single-hop PLC link — while Flow 4→7 (single-hop
    WiFi) switches on mid-experiment and off again later. EMPoWER
    first exceeds the best single path by using both routes (the extra
    traffic on Route 2 fills roughly half of its capacity), then
    offloads Flow 1→13 entirely onto PLC while WiFi is contended, and
    reverts when the contender stops.

    Link capacities follow the measured values sketched in the
    paper's figure (~20 Mbps WiFi hops, 45/23 Mbps PLC hops). The
    timeline is the paper's scaled by [time_scale]: with the default
    0.1, the contender runs from 195 s to 395 s of a 500 s
    experiment.

    This figure is a single continuous timeline (one seeded run), so
    it takes no [?jobs] — there is nothing to fan out. *)

type sample = {
  time : float;
  route1_rate : float;   (** injected on the WiFi+PLC route (Mbps) *)
  route2_rate : float;   (** injected on the PLC route *)
  total_rate : float;
  received : float;      (** goodput measured at Node 13 *)
}

type data = {
  series : sample list;          (** one sample per second *)
  best_single_path : float;      (** brute-force rate of the best single route *)
  contender_window : float * float;
  mean_before : float;           (** mean goodput before the contender *)
  mean_during : float;
  mean_after : float;
}

val run : ?seed:int -> ?time_scale:float -> unit -> data
(** Packet-level run; default seed 9, time scale 0.1. *)

val print : data -> unit
(** The time series (10 s resolution) and phase summary. *)
