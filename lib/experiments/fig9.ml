type sample = {
  time : float;
  route1_rate : float;
  route2_rate : float;
  total_rate : float;
  received : float;
}

type data = {
  series : sample list;
  best_single_path : float;
  contender_window : float * float;
  mean_before : float;
  mean_during : float;
  mean_after : float;
}

(* Node ids: 0 = paper Node 1, 1 = Node 4, 2 = Node 7, 3 = Node 13.
   Capacities follow the measured values in the paper's sketch. *)
let network () =
  Empower.of_edges ~n_nodes:4 ~n_techs:2
    [
      (0, 1, 0, 20.0) (* WiFi 1-4 *);
      (1, 3, 1, 45.0) (* PLC 4-13 *);
      (0, 3, 1, 23.0) (* PLC 1-13 *);
      (1, 2, 0, 20.0) (* WiFi 4-7 *);
    ]

let run ?(seed = 9) ?(time_scale = 0.1) () =
  let net = network () in
  let g = net.Empower.g and dom = net.Empower.dom in
  let duration = 5000.0 *. time_scale in
  let t_on = 1950.0 *. time_scale and t_off = 3950.0 *. time_scale in
  let plan = Empower.plan net ~src:0 ~dst:3 in
  let routes = Multipath.routes plan.Empower.combination in
  (* Order routes so index 0 is the two-hop WiFi+PLC route. *)
  let routes =
    List.sort (fun a b -> compare (Paths.hops b) (Paths.hops a)) routes
  in
  let rates = List.map (fun p -> Update.path_rate g dom p) routes in
  let flow1 =
    {
      Engine.src = 0;
      dst = 3;
      routes;
      init_rates = rates;
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let wifi_route = Paths.of_links g [ 6 ] (* 1 -> 2, wifi 4-7, link id 6 *) in
  let flow2 =
    {
      Engine.src = 1;
      dst = 2;
      routes = [ wifi_route ];
      init_rates = [ Update.path_rate g dom wifi_route ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = t_on;
      stop_time = Some t_off;
    }
  in
  let res = Empower.simulate ~seed net ~flows:[ flow1; flow2 ] ~duration in
  let f1 = res.Engine.flows.(0) in
  (* Join the goodput bins (1 s) with the nearest rate sample. *)
  let rates_arr = Array.of_list f1.Engine.rate_series in
  let rate_at t =
    (* rate samples are every control period; binary-search-free scan
       is fine at this size. *)
    let best = ref [| 0.0; 0.0 |] and bestd = ref infinity in
    Array.iter
      (fun (ts, xs) ->
        let d = Float.abs (ts -. t) in
        if d < !bestd then begin
          bestd := d;
          best := xs
        end)
      rates_arr;
    !best
  in
  let series =
    List.map
      (fun (t, gp) ->
        let xs = rate_at t in
        let r1 = if Array.length xs > 0 then xs.(0) else 0.0 in
        let r2 = if Array.length xs > 1 then xs.(1) else 0.0 in
        { time = t; route1_rate = r1; route2_rate = r2; total_rate = r1 +. r2; received = gp })
      f1.Engine.goodput_series
  in
  let phase p =
    let xs =
      List.filter_map (fun s -> if p s.time then Some s.received else None) series
    in
    Stats.mean xs
  in
  let margin = 30.0 *. time_scale in
  {
    series;
    best_single_path =
      List.fold_left
        (fun acc p -> Float.max acc (Brute_force.best_rate_on_path g dom p))
        0.0 routes;
    contender_window = (t_on, t_off);
    mean_before = phase (fun t -> t > margin && t < t_on -. margin);
    mean_during = phase (fun t -> t > t_on +. margin && t < t_off -. margin);
    mean_after = phase (fun t -> t > t_off +. margin);
  }

let print data =
  let t_on, t_off = data.contender_window in
  print_endline "Figure 9: time evolution of Flow 1->13 under EMPoWER";
  Printf.printf "best single-path (brute force): %.1f Mbps; contender active %.0f-%.0f s\n"
    data.best_single_path t_on t_off;
  let rows =
    List.filter_map
      (fun s ->
        if int_of_float s.time mod 10 = 0 then
          Some
            [
              Table.fmt_float s.time;
              Table.fmt_float s.route1_rate;
              Table.fmt_float s.route2_rate;
              Table.fmt_float s.total_rate;
              Table.fmt_float s.received;
            ]
        else None)
      data.series
  in
  Table.print_table
    ~header:[ "t(s)"; "Route1 (WiFi+PLC)"; "Route2 (PLC)"; "total sent"; "received" ]
    ~rows;
  Printf.printf
    "mean goodput: %.1f Mbps before, %.1f during contention, %.1f after\n"
    data.mean_before data.mean_during data.mean_after;
  Printf.printf "multipath gain over best single path: %.0f%%\n"
    (100.0 *. ((data.mean_before /. data.best_single_path) -. 1.0))
