(** Figure 12: TCP over EMPoWER, Flow 9→13.

    A long TCP download: plain single-path TCP (SP-w/o-CC) for the
    first half of the experiment, then EMPoWER with two routes, the
    congestion controller (margin δ = 0.3), destination reordering
    and delay equalization for the second half. The paper's point:
    the received TCP throughput matches the rate the controller
    injects — TCP adapts to the controller's drops/backpressure — and
    multipath raises the throughput despite routes of different
    lengths and contending mediums.

    This figure is a single continuous timeline (one seeded run), so
    it takes no [?jobs] — there is nothing to fan out. *)

type sample = {
  time : float;
  cc_route_rates : float array;  (** controller rates (empty in phase 1) *)
  received : float;
}

type data = {
  series : sample list;
  phase_switch : float;
  mean_sp : float;        (** mean TCP goodput, single path w/o CC *)
  mean_empower : float;   (** mean TCP goodput under EMPoWER *)
  delta : float;
}

val run : ?seed:int -> ?phase_seconds:float -> ?delta:float -> unit -> data
(** Default 250 s per phase (the paper uses 500), δ = 0.3, seed 13. *)

val print : data -> unit
