type point = {
  label : string;
  mean_rate : float;
  mean_aux : float;
}

type data = {
  name : string;
  aux_label : string;
  points : point list;
  runs : int;
}

(* One random single-flow residential case. Streams are pre-split in
   submission order ([List.init]'s application order is not a
   documented guarantee) and the topologies built in parallel; the
   cases are then shared read-only by every sweep setting. *)
let cases ?jobs ~runs ~seed () =
  let master = Rng.create seed in
  Exec.map ?jobs
    (fun rng ->
      let inst = Residential.generate rng in
      let flow = Common.random_flow rng inst in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      (g, dom, flow))
    (Common.split_rngs master runs)

let allocate_on ?(delta = 0.0) ?gain g dom routes =
  match routes with
  | [] -> 0.0
  | _ ->
    let p = Problem.make ~delta g dom ~flows:[ routes ] in
    let x_init = Array.of_list (List.map (Update.path_rate g dom) routes) in
    let res = Multi_cc.solve ?gain ~x_init ~slots:2000 p in
    res.Cc_result.flow_rates.(0)

let n_shortest ?(runs = Common.runs_scaled 30) ?(seed = 21) ?jobs () =
  let cs = cases ?jobs ~runs ~seed () in
  let points =
    List.map
      (fun n ->
        let rates, vertices =
          List.split
            (Exec.map ?jobs
               (fun (g, dom, (s, d)) ->
                 let comb = Multipath.find ~n g dom ~src:s ~dst:d in
                 ( allocate_on g dom (Multipath.routes comb),
                   float_of_int comb.Multipath.tree_vertices ))
               cs)
        in
        {
          label = Printf.sprintf "n=%d" n;
          mean_rate = Stats.mean rates;
          mean_aux = Stats.mean vertices;
        })
      [ 1; 2; 3; 5; 8 ]
  in
  { name = "n-shortest"; aux_label = "tree vertices"; points; runs }

let csc ?(runs = Common.runs_scaled 30) ?(seed = 22) ?jobs () =
  let cs = cases ?jobs ~runs ~seed () in
  let points =
    List.map
      (fun (label, use_csc) ->
        let rates, hops =
          List.split
            (Exec.map ?jobs
               (fun (g, dom, (s, d)) ->
                 let comb = Multipath.find ~csc:use_csc g dom ~src:s ~dst:d in
                 let routes = Multipath.routes comb in
                 let mean_hops =
                   match routes with
                   | [] -> 0.0
                   | _ ->
                     Stats.mean (List.map (fun p -> float_of_int (Paths.hops p)) routes)
                 in
                 (allocate_on g dom routes, mean_hops))
               cs)
        in
        { label; mean_rate = Stats.mean rates; mean_aux = Stats.mean hops })
      [ ("CSC on", true); ("CSC off", false) ]
  in
  { name = "channel-switching cost"; aux_label = "mean hops"; points; runs }

let delta ?(runs = Common.runs_scaled 30) ?(seed = 23) ?jobs () =
  let cs = cases ?jobs ~runs ~seed () in
  let base =
    Exec.map ?jobs
      (fun (g, dom, (s, d)) ->
        Multipath.routes (Multipath.find g dom ~src:s ~dst:d))
      cs
  in
  let rate_at delta =
    Exec.map ?jobs
      (fun ((g, dom, _), routes) -> allocate_on ~delta g dom routes)
      (List.combine cs base)
  in
  let rates0 = rate_at 0.0 in
  let points =
    List.map
      (fun dl ->
        let rates = rate_at dl in
        let retained =
          Stats.mean
            (List.map2 (fun r r0 -> if r0 > 0.0 then r /. r0 else 1.0) rates rates0)
        in
        {
          label = Printf.sprintf "delta=%.2f" dl;
          mean_rate = Stats.mean rates;
          mean_aux = retained;
        })
      [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
  in
  { name = "constraint margin delta"; aux_label = "fraction of delta=0 rate"; points; runs }

let tree_depth ?(runs = Common.runs_scaled 30) ?(seed = 24) ?jobs () =
  let cs = cases ?jobs ~runs ~seed () in
  let points =
    List.map
      (fun (label, cap) ->
        let rates, nroutes =
          List.split
            (Exec.map ?jobs
               (fun (g, dom, (s, d)) ->
                 let comb =
                   match cap with
                   | None -> Multipath.find g dom ~src:s ~dst:d
                   | Some depth -> Multipath.find ~max_depth:depth g dom ~src:s ~dst:d
                 in
                 let routes = Multipath.routes comb in
                 (allocate_on g dom routes, float_of_int (List.length routes)))
               cs)
        in
        { label; mean_rate = Stats.mean rates; mean_aux = Stats.mean nroutes })
      [ ("depth<=1", Some 1); ("depth<=2", Some 2); ("depth<=3", Some 3);
        ("unlimited", None) ]
  in
  { name = "exploration-tree depth cap"; aux_label = "routes used"; points; runs }

let gain ?(runs = Common.runs_scaled 20) ?(seed = 25) ?jobs () =
  let cs = cases ?jobs ~runs ~seed () in
  let points =
    List.map
      (fun gn ->
        let rates, convs =
          List.split
            (Exec.map ?jobs
               (fun (g, dom, (s, d)) ->
                 let routes = Multipath.routes (Multipath.find g dom ~src:s ~dst:d) in
                 match routes with
                 | [] -> (0.0, 0.0)
                 | _ ->
                   let p = Problem.make g dom ~flows:[ routes ] in
                   let res = Multi_cc.solve ~gain:gn ~slots:4000 p in
                   let conv =
                     match Cc_result.convergence_slot res with
                     | Some s -> float_of_int s
                     | None -> 4000.0
                   in
                   (res.Cc_result.flow_rates.(0), conv))
               cs)
        in
        {
          label = Printf.sprintf "gain=%.0f" gn;
          mean_rate = Stats.mean rates;
          mean_aux = Stats.mean convs;
        })
      [ 5.0; 20.0; 50.0; 100.0; 200.0 ]
  in
  { name = "proximal gain (cold start)"; aux_label = "convergence slot"; points; runs }

let delta_delay ?(seed = 26) ?(duration = 60.0) ?jobs () =
  let inst = Testbed.generate (Rng.create 4242) in
  let net = Runner.network inst Schemes.Empower in
  let src = Testbed.node 6 and dst = Testbed.node 13 in
  let rr = Runner.routes_and_rates net Schemes.Empower ~src ~dst in
  (* The five settings are independent packet-level runs with the
     same fixed seed; fan them out. *)
  let points =
    Exec.map ?jobs
      (fun dl ->
        let config = { Engine.default_config with delta = dl } in
        let spec = Runner.flow_spec ~src ~dst rr in
        let res = Empower.simulate ~config ~seed net ~flows:[ spec ] ~duration in
        let fr = res.Engine.flows.(0) in
        let rate =
          float_of_int fr.Engine.received_bytes *. 8e-6 /. duration
        in
        {
          label = Printf.sprintf "delta=%.2f" dl;
          mean_rate = rate;
          mean_aux = fr.Engine.mean_delay *. 1000.0;
        })
      [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
  in
  {
    name = "margin vs delay (packet-level)";
    aux_label = "mean frame delay (ms)";
    points;
    runs = 1;
  }

let print data =
  print_endline (Printf.sprintf "Ablation: %s (%d runs)" data.name data.runs);
  Table.print_table
    ~header:[ "setting"; "mean rate (Mbps)"; data.aux_label ]
    ~rows:
      (List.map
         (fun p -> [ p.label; Table.fmt_float p.mean_rate; Table.fmt_float p.mean_aux ])
         data.points)
