(* Declarative churn scenarios and degradation scorecards. See
   scenario.mli for the schema, determinism contract and metric
   definitions. *)

module J = Obs.Json

type topology_kind = Testbed | Residential | Enterprise

let topology_kind_name = function
  | Testbed -> "testbed"
  | Residential -> "residential"
  | Enterprise -> "enterprise"

let topology_kind_of_name = function
  | "testbed" -> Some Testbed
  | "residential" -> Some Residential
  | "enterprise" -> Some Enterprise
  | _ -> None

type churn =
  | Generate of { intensity : Fault.Gen.intensity; protect_endpoints : bool }
  | Plan of Fault.plan

type slo = { availability_frac : float; min_availability : float }

type spec = {
  name : string;
  description : string;
  seed : int;
  duration : float;
  topology : topology_kind;
  topology_seed : int;
  devices : Device.spec list;
  flows : (int * int) list;
  churn : churn;
  recovery : bool;
  slo : slo;
}

(* ---------------------------------------------------------------- *)
(* Spec codec                                                        *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field name j =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let float_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_float_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let bool_field name j =
  match J.member name j with
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S: expected bool" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let device_of_json j =
  match j with
  | J.Obj _ ->
      let* node = int_field "node" j in
      let* cls_s = str_field "class" j in
      let* cls =
        match Device.cls_of_name cls_s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown device class %S" cls_s)
      in
      let* panel =
        match J.member "panel" j with
        | None -> Ok None
        | Some v -> (
            match J.to_int_opt v with
            | Some p -> Ok (Some p)
            | None -> Error "field \"panel\": expected integer")
      in
      Ok { Device.node; cls; panel }
  | _ -> Error "device: expected object"

let flow_of_json j =
  match j with
  | J.Obj _ ->
      let* src = int_field "src" j in
      let* dst = int_field "dst" j in
      if src < 0 || dst < 0 then Error "flow: negative node id"
      else if src = dst then
        Error (Printf.sprintf "flow %d -> %d: src = dst" src dst)
      else Ok (src, dst)
  | _ -> Error "flow: expected object"

let churn_of_json j =
  match j with
  | J.Obj _ -> (
      match (J.member "generate" j, J.member "plan" j) with
      | Some g, None ->
          let* name = str_field "intensity" g in
          let* intensity =
            match Fault.Gen.intensity_of_name name with
            | Some i -> Ok i
            | None -> Error (Printf.sprintf "unknown intensity %S" name)
          in
          let* protect_endpoints =
            match J.member "protect_endpoints" g with
            | None -> Ok true
            | Some (J.Bool b) -> Ok b
            | Some _ -> Error "field \"protect_endpoints\": expected bool"
          in
          Ok (Generate { intensity; protect_endpoints })
      | None, Some p ->
          let* plan = Fault.of_json p in
          Ok (Plan plan)
      | Some _, Some _ -> Error "churn: both \"generate\" and \"plan\" given"
      | None, None -> Error "churn: expected \"generate\" or \"plan\"")
  | _ -> Error "churn: expected object"

let rec decode_list f acc = function
  | [] -> Ok (List.rev acc)
  | x :: rest ->
      let* v = f x in
      (decode_list [@tailcall]) f (v :: acc) rest

let list_field ?default name f j =
  match J.member name j with
  | Some (J.List xs) -> decode_list f [] xs
  | Some _ -> Error (Printf.sprintf "field %S: expected list" name)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let frac_ok f = Float.is_finite f && f >= 0.0 && f <= 1.0

let spec_of_json j =
  match j with
  | J.Obj _ ->
      let* () =
        match J.member "version" j with
        | Some (J.Int 1) -> Ok ()
        | Some _ -> Error "unsupported scenario version"
        | None -> Error "missing field \"version\""
      in
      let* name = str_field "name" j in
      let* description = str_field "description" j in
      let* seed = int_field "seed" j in
      let* duration = float_field "duration" j in
      let* () =
        if Float.is_finite duration && duration > 0.0 then Ok ()
        else Error "field \"duration\": must be > 0"
      in
      let* topo =
        match J.member "topology" j with
        | Some (J.Obj _ as t) -> Ok t
        | Some _ -> Error "field \"topology\": expected object"
        | None -> Error "missing field \"topology\""
      in
      let* kind_s = str_field "kind" topo in
      let* topology =
        match topology_kind_of_name kind_s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown topology kind %S" kind_s)
      in
      let* topology_seed = int_field "seed" topo in
      let* devices = list_field ~default:[] "devices" device_of_json j in
      let* () =
        let nodes = List.map (fun d -> d.Device.node) devices in
        let sorted = List.sort_uniq compare nodes in
        if List.length sorted = List.length nodes then Ok ()
        else Error "devices: duplicate node"
      in
      let* flows = list_field "flows" flow_of_json j in
      let* () = if flows = [] then Error "field \"flows\": empty" else Ok () in
      let* churn =
        match J.member "churn" j with
        | Some c -> churn_of_json c
        | None -> Error "missing field \"churn\""
      in
      let* recovery = bool_field "recovery" j in
      let* slo_j =
        match J.member "slo" j with
        | Some (J.Obj _ as s) -> Ok s
        | Some _ -> Error "field \"slo\": expected object"
        | None -> Error "missing field \"slo\""
      in
      let* availability_frac = float_field "availability_frac" slo_j in
      let* min_availability = float_field "min_availability" slo_j in
      let* () =
        if frac_ok availability_frac && frac_ok min_availability then Ok ()
        else Error "slo fractions must be in [0,1]"
      in
      Ok
        {
          name;
          description;
          seed;
          duration;
          topology;
          topology_seed;
          devices;
          flows;
          churn;
          recovery;
          slo = { availability_frac; min_availability };
        }
  | _ -> Error "scenario: expected object"

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> (
      match J.parse (String.trim s) with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> (
          match spec_of_json j with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok spec -> Ok spec))

let catalog dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
      Ok
        (List.sort compare
           (List.filter_map
              (fun e ->
                if Filename.check_suffix e ".json" then
                  Some (Filename.chop_suffix e ".json", Filename.concat dir e)
                else None)
              (Array.to_list entries)))

(* ---------------------------------------------------------------- *)
(* Runner                                                            *)

type flow_score = {
  flow : int;
  src : int;
  dst : int;
  baseline_mbps : float;
  goodput_mbps : float;
  availability : float;
  below_slo_s : float;
  reroutes : int;
  route_deaths : int;
  route_restores : int;
  outage_s : float;
  detect_s : float;
  dip_depth : float;
  dip_area : float;
  recovery_s : float;
}

type event_score = {
  op : string;
  at : float;
  clear : float;
  dip_mbps : float;
  recover_s : float;
}

type scorecard = {
  spec : spec;
  plan : Fault.plan;
  fault_events : int;
  queue_drops : int;
  events_processed : int;
  route_deaths : int;
  probes : int;
  flows : flow_score list;
  events : event_score list;
  min_availability_measured : float;
  slo_met : bool;
}

(* Goodput bins stamped inside (warmup, duration] feed the
   availability metrics; the first bins are excluded because flows
   start from zero rate regardless of churn. *)
let warmup = 2.0
let recover_frac = 0.9

let instance spec =
  let rng = Rng.create spec.topology_seed in
  match spec.topology with
  | Testbed -> Testbed.generate rng
  | Residential -> Residential.generate rng
  | Enterprise -> Enterprise.generate rng

let bins_of reg fid =
  List.filter
    (fun (t, _) -> t > warmup)
    (Obs.Metrics.Series.points
       (Obs.Metrics.series reg (Printf.sprintf "flow.%d.goodput" fid)))

let run ?trace ?flight spec =
  let inst0 = instance spec in
  (match Device.validate inst0 spec.devices with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.run: " ^ msg));
  let inst = Device.apply inst0 spec.devices in
  let net = Runner.network inst Schemes.Empower in
  let n = Builder.node_count inst in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg
          (Printf.sprintf "Scenario.run: flow %d -> %d: node out of range" src
             dst);
      if src = dst then
        invalid_arg (Printf.sprintf "Scenario.run: flow %d -> %d: src = dst" src dst);
      List.iter
        (fun e ->
          if not (Device.originates spec.devices e) then
            invalid_arg
              (Printf.sprintf
                 "Scenario.run: flow %d -> %d: node %d is relay-only" src dst e))
        [ src; dst ])
    spec.flows;
  let flow_specs =
    List.map
      (fun (src, dst) ->
        let routes, rates =
          Runner.routes_and_rates net Schemes.Empower ~src ~dst
        in
        if routes = [] then
          invalid_arg (Printf.sprintf "Scenario.run: no route %d -> %d" src dst);
        Runner.flow_spec ~src ~dst (routes, rates))
      spec.flows
  in
  (* One seed pins everything: the plan draws from a split of the
     master stream and each engine run consumes an identical
     remainder, so baseline and churn runs differ only in the
     injected schedules. *)
  let master () =
    let m = Rng.create spec.seed in
    let split = Rng.split m in
    (m, split)
  in
  let m_churn, plan_rng = master () in
  let m_base, _ = master () in
  let plan =
    match spec.churn with
    | Plan p ->
        (match Fault.validate net.Empower.g p with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Scenario.run: plan: " ^ msg));
        Fault.normalize p
    | Generate { intensity; protect_endpoints } ->
        let protect =
          if protect_endpoints then
            List.sort_uniq compare
              (List.concat_map (fun (s, d) -> [ s; d ]) spec.flows)
          else []
        in
        Fault.normalize
          (Fault.Gen.plan ~intensity ~protect plan_rng net.Empower.g
             ~duration:spec.duration)
  in
  let compiled = Fault.compile net.Empower.g plan in
  let config =
    {
      Engine.default_config with
      Engine.route_reclaim = true;
      recovery = (if spec.recovery then Some Recovery.default else None);
    }
  in
  let dom = net.Empower.dom in
  let domain_of = Domain.domain dom in
  (* Fault-free baseline: internal recorder only, no fault schedules. *)
  let reg_b = Obs.Metrics.create () in
  let rec_b = Obs.Recorder.create ~domain_of reg_b in
  let result_b =
    Engine.run ~config ~trace:(Obs.Recorder.sink rec_b) m_base net.Empower.g
      dom ~flows:flow_specs ~duration:spec.duration
  in
  ignore (result_b : Engine.result);
  Obs.Recorder.flush rec_b ~now:spec.duration;
  (* Churn run: private recorder computes the scorecard; the
     process-global registry (--metrics) and the caller's sinks still
     see every event. *)
  let reg = Obs.Metrics.create () in
  let recorder = Obs.Recorder.create ~domain_of reg in
  let global =
    match Obs.Runtime.metrics () with
    | Some greg -> Some (Obs.Recorder.create ~domain_of greg)
    | None -> None
  in
  let sink =
    let s = Obs.Recorder.sink recorder in
    let s =
      match global with
      | Some r -> Obs.Trace.tee s (Obs.Recorder.sink r)
      | None -> s
    in
    match trace with Some user -> Obs.Trace.tee s user | None -> s
  in
  let result =
    Engine.run ~config ~trace:sink ?flight
      ~link_events:compiled.Fault.link_events
      ~loss_events:compiled.Fault.loss_events
      ~ctrl_events:compiled.Fault.ctrl_events m_churn net.Empower.g dom
      ~flows:flow_specs ~duration:spec.duration
  in
  Obs.Recorder.flush recorder ~now:spec.duration;
  (match global with
  | Some r -> Obs.Recorder.flush r ~now:spec.duration
  | None -> ());
  let gauge name = Obs.Metrics.Gauge.value (Obs.Metrics.gauge reg name) in
  let counter name = Obs.Metrics.Counter.value (Obs.Metrics.counter reg name) in
  (* Per-flow baselines and churn-run bins, by flow index. *)
  let per_flow =
    Array.of_list
      (List.mapi
         (fun fid _ ->
           let base_bins = bins_of reg_b fid in
           let baseline =
             match base_bins with
             | [] -> 0.0
             | _ ->
                 List.fold_left (fun acc (_, v) -> acc +. v) 0.0 base_bins
                 /. float_of_int (List.length base_bins)
           in
           (baseline, bins_of reg fid))
         spec.flows)
  in
  let flows =
    List.mapi
      (fun fid (src, dst) ->
        let baseline, bins = per_flow.(fid) in
        let n_bins = List.length bins in
        let thr = spec.slo.availability_frac *. baseline in
        let n_ok =
          List.length (List.filter (fun (_, v) -> v >= thr) bins)
        in
        let availability =
          if n_bins = 0 then 1.0
          else float_of_int n_ok /. float_of_int n_bins
        in
        let fr = result.Engine.flows.(fid) in
        let m name = Printf.sprintf "flow.%d.%s" fid name in
        {
          flow = fid;
          src;
          dst;
          baseline_mbps = baseline;
          goodput_mbps =
            float_of_int fr.Engine.received_bytes *. 8e-6 /. spec.duration;
          availability;
          below_slo_s = float_of_int (n_bins - n_ok);
          reroutes = counter (m "reroutes");
          route_deaths = counter (m "route_deaths");
          route_restores = counter (m "route_restores");
          outage_s = gauge (m "fault.outage_s");
          detect_s = gauge (m "fault.detect_s");
          dip_depth = gauge (m "fault.dip_depth");
          dip_area = gauge (m "fault.dip_area");
          recovery_s = gauge (m "fault.recovery_s");
        })
      spec.flows
  in
  (* Per-churn-event dip / recovery, worst flow: the dip window is the
     action's [start, end] span plus the following bin (bins are
     end-stamped), recovery scans forward from the action's end. *)
  let events =
    List.map
      (fun a ->
        let at = Fault.start_time a and clear = Fault.end_time a in
        let dip = ref 0.0 and recover = ref 0.0 and never = ref false in
        Array.iter
          (fun (baseline, bins) ->
            let win =
              List.filter (fun (t, _) -> t >= at && t <= clear +. 1.0) bins
            in
            (match win with
            | [] -> ()
            | _ ->
                let mn =
                  List.fold_left
                    (fun acc (_, v) -> Float.min acc v)
                    infinity win
                in
                dip := Float.max !dip (Float.max 0.0 (baseline -. mn)));
            let thr = recover_frac *. baseline in
            match
              List.find_opt (fun (t, v) -> t >= clear && v >= thr) bins
            with
            | Some (t, _) ->
                recover := Float.max !recover (Float.max 0.0 (t -. clear))
            | None -> never := true)
          per_flow;
        {
          op = Fault.op_name a;
          at;
          clear;
          dip_mbps = !dip;
          recover_s = (if !never then -1.0 else !recover);
        })
      plan
  in
  let min_availability_measured =
    List.fold_left (fun acc f -> Float.min acc f.availability) 1.0 flows
  in
  {
    spec;
    plan;
    fault_events = counter "fault.events";
    queue_drops = result.Engine.queue_drops;
    events_processed = result.Engine.events_processed;
    route_deaths = counter "recovery.route_deaths";
    probes = counter "recovery.probes";
    flows;
    events;
    min_availability_measured;
    slo_met = min_availability_measured >= spec.slo.min_availability;
  }

let run_all ?jobs specs = Exec.map ?jobs (fun spec -> run spec) specs

(* ---------------------------------------------------------------- *)
(* Rendering                                                         *)

let to_json sc =
  let open J in
  let spec = sc.spec in
  Obj
    [
      ("figure", String "scenario");
      ("name", String spec.name);
      ("description", String spec.description);
      ("seed", Int spec.seed);
      ("duration", Float spec.duration);
      ( "topology",
        Obj
          [
            ("kind", String (topology_kind_name spec.topology));
            ("seed", Int spec.topology_seed);
          ] );
      ( "devices",
        List
          (List.map
             (fun (d : Device.spec) ->
               Obj
                 ([
                    ("node", Int d.Device.node);
                    ("class", String (Device.cls_name d.Device.cls));
                  ]
                 @
                 match d.Device.panel with
                 | Some p -> [ ("panel", Int p) ]
                 | None -> []))
             spec.devices) );
      ( "churn",
        match spec.churn with
        | Generate { intensity; protect_endpoints } ->
            Obj
              [
                ("intensity", String (Fault.Gen.intensity_name intensity));
                ("protect_endpoints", Bool protect_endpoints);
              ]
        | Plan _ -> Obj [ ("explicit", Bool true) ] );
      ("recovery", Bool spec.recovery);
      ( "slo",
        Obj
          [
            ("availability_frac", Float spec.slo.availability_frac);
            ("min_availability", Float spec.slo.min_availability);
          ] );
      ("slo_met", Bool sc.slo_met);
      ("min_availability", Float sc.min_availability_measured);
      ("plan_actions", Int (List.length sc.plan));
      ("fault_events", Int sc.fault_events);
      ("queue_drops", Int sc.queue_drops);
      ("events_processed", Int sc.events_processed);
      ("route_deaths", Int sc.route_deaths);
      ("probes", Int sc.probes);
      ("plan", Fault.to_json sc.plan);
      ( "flows",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("flow", Int f.flow);
                   ("src", Int f.src);
                   ("dst", Int f.dst);
                   ("baseline_mbps", Float f.baseline_mbps);
                   ("goodput_mbps", Float f.goodput_mbps);
                   ("availability", Float f.availability);
                   ("below_slo_s", Float f.below_slo_s);
                   ("reroutes", Int f.reroutes);
                   ("route_deaths", Int f.route_deaths);
                   ("route_restores", Int f.route_restores);
                   ("outage_s", Float f.outage_s);
                   ("detect_s", Float f.detect_s);
                   ("dip_depth", Float f.dip_depth);
                   ("dip_area", Float f.dip_area);
                   ("recovery_s", Float f.recovery_s);
                 ])
             sc.flows) );
      ( "events",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("op", String e.op);
                   ("at", Float e.at);
                   ("clear", Float e.clear);
                   ("dip_mbps", Float e.dip_mbps);
                   ("recover_s", Float e.recover_s);
                 ])
             sc.events) );
    ]

let print ?(out = stdout) sc =
  let p fmt = Printf.fprintf out fmt in
  let spec = sc.spec in
  p "=== scenario: %s (seed %d, %.1f s, %s, recovery %s) ===\n" spec.name
    spec.seed spec.duration
    (topology_kind_name spec.topology)
    (if spec.recovery then "on" else "off");
  p "%s\n" spec.description;
  (match spec.churn with
  | Generate { intensity; protect_endpoints } ->
      p "churn: generated (%s%s), %d actions\n"
        (Fault.Gen.intensity_name intensity)
        (if protect_endpoints then ", endpoints protected" else "")
        (List.length sc.plan)
  | Plan _ -> p "churn: explicit plan, %d actions\n" (List.length sc.plan));
  p "fault boundary events: %d; engine events: %d; queue drops: %d\n"
    sc.fault_events sc.events_processed sc.queue_drops;
  p "recovery: %d route deaths, %d probes\n" sc.route_deaths sc.probes;
  List.iter
    (fun f ->
      p
        "flow %d (%d -> %d): baseline %.3f Mbit/s, run %.3f Mbit/s, \
         availability %.1f%% (%.0f s below SLO), %d deaths / %d restores, \
         outage %.3f s, %d reroutes\n"
        f.flow f.src f.dst f.baseline_mbps f.goodput_mbps
        (100.0 *. f.availability) f.below_slo_s f.route_deaths
        f.route_restores f.outage_s f.reroutes)
    sc.flows;
  if sc.events <> [] then begin
    p "%-16s %8s %8s %10s %10s\n" "event" "at" "clear" "dip_mbps" "recover_s";
    List.iter
      (fun e ->
        p "%-16s %8.2f %8.2f %10.3f %10s\n" e.op e.at e.clear e.dip_mbps
          (if e.recover_s < 0.0 then "never"
           else Printf.sprintf "%.2f" e.recover_s))
      sc.events
  end;
  p "SLO: min availability %.3f (threshold %.3f) -> %s\n"
    sc.min_availability_measured spec.slo.min_availability
    (if sc.slo_met then "PASS" else "FAIL")
