(** Section 6.4 TCP-friendliness under finite shared buffers.

    The original Section 6.4 comparison asked how a window-driven TCP
    coexists with EMPoWER's rate-driven multipath; this study reruns
    it in the congestive-loss regime the finite shared buffers of
    [Engine.config.buffers] introduce. Over the chaos harness's
    testbed flow (seed-4242 instance, node 0 to node 12), every grid
    point of {e pool size x DT alpha x ECN threshold} runs three
    variants:

    - {e reno} — a plain Reno TCP, unpoliced (no EMPoWER CC): it fills
      the shared pool until the Dynamic-Threshold admission tail-drops
      and recovers by loss, ignoring any CE marks;
    - {e dctcp} — the same sender with {!Tcp.dctcp_params}: the ECN
      echo drives the EWMA window cut, keeping the standing queue near
      the marking threshold with no drops;
    - {e empower} — the paper's UDP path (controller + reorder buffer
      + delay equalization), whose 100 ms rate control keeps queues
      short without either signal.

    Per variant the point reports steady-state goodput (warmup
    excluded), queue drops (= buffer-admission rejections), CE marks,
    peak shared-pool occupancy and reorder-declared losses — the
    numbers behind the Reno-vs-DCTCP-under-pressure table in
    EXPERIMENTS.md.

    Determinism: a sweep is a pure function of (seed, duration, axes);
    per-variant engine seeds derive from the grid-point index alone
    and points fan out over domains with {!Exec.mapi}, so the output
    is byte-identical at any [jobs] count. Buffer admission and
    marking consume no randomness (see {!Engine}). *)

type variant_result = {
  variant : string;         (** ["reno"] | ["dctcp"] | ["empower"] *)
  goodput_mbps : float;     (** mean goodput after a 2 s warmup *)
  queue_drops : int;        (** buffer-admission rejections *)
  ecn_marks : int;          (** frames CE-marked on admission *)
  buffer_peak_bytes : int;  (** peak shared-pool occupancy *)
  frames_lost : int;        (** reorder-declared losses (UDP only) *)
}

type point = {
  pool_frames : int;   (** shared pool, in [frame_bytes] units *)
  dt_alpha : float;    (** DT alpha; [<= 0] selects [Static] *)
  ecn_frames : int;    (** marking threshold, frames; [<= 0] = no ECN *)
  variants : variant_result list;  (** reno, dctcp, empower — in order *)
}

type data = {
  seed : int;
  duration : float;    (** seconds per run *)
  frame_bytes : int;   (** frame size the frame-unit axes scale by *)
  pools : int list;    (** swept pool sizes (frames) *)
  alphas : float list; (** swept DT alphas *)
  ecns : int list;     (** swept ECN thresholds (frames) *)
  points : point list; (** pools x alphas x ecns, in that nesting order *)
}

val default_pools : int list
(** [16; 64] frames. *)

val default_alphas : float list
(** [0.5; 1.0]. *)

val default_ecns : int list
(** [0; 8] frames (0 = marking off). *)

val sweep :
  ?seed:int ->
  ?duration:float ->
  ?pools:int list ->
  ?alphas:float list ->
  ?ecns:int list ->
  ?jobs:int ->
  unit ->
  data
(** Run the grid (defaults: seed 23, 20 s per run, the default axes).
    Raises [Invalid_argument] on an empty axis or non-positive pool. *)

val print : ?out:out_channel -> data -> unit
