(** Helpers shared by the packet-level (testbed) experiments. *)

val network : Builder.instance -> Schemes.t -> Empower.network
(** The network a scheme runs on (its scenario projection). *)

val routes_and_rates :
  ?opts:Schemes.options ->
  Empower.network ->
  Schemes.t ->
  src:int ->
  dst:int ->
  Paths.t list * float list
(** The scheme's routes and their standalone rate estimates (the
    engine's initial injection rates). Empty when unreachable. *)

val flow_spec :
  ?workload:Workload.t ->
  ?transport:Engine.transport ->
  ?tcp_params:Tcp.params ->
  ?start_time:float ->
  ?stop_time:float ->
  src:int ->
  dst:int ->
  Paths.t list * float list ->
  Engine.flow_spec
(** Assemble an engine flow spec. [tcp_params] selects the TCP sender
    variant for [Tcp_transport] flows (default Reno). *)

val goodput_stats :
  Engine.flow_result -> last_seconds:int -> duration:float -> float * float
(** Mean and standard deviation of the per-second goodput over the
    final [last_seconds] of the run. *)
