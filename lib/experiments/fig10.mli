(** Figure 10: testbed evaluation over 50 random station pairs.

    Left: CDF of T_X / T_EMPoWER for X in {MP-2bp, SP, SP-bf, SP-WiFi,
    SP-WiFi-bf, MP-mWiFi} with saturated UDP, margin δ = 0.05, and
    realistic (noisy) capacity estimation. The paper's findings: SP
    always beats SP-WiFi-bf (hybrid gain); EMPoWER beats MP-mWiFi in
    75% of pairs with gains up to 10x (mWiFi's best advantage only
    2.5x); EMPoWER beats even the brute-force single path (SP-bf) in
    60% of pairs (up to 2.7x) and almost always beats MP-2bp and SP.

    Right: convergence — the rate reached after 10-20 s and after
    190-200 s as a fraction of the final rate (controller trace at
    one slot per 100 ms), with SP-bf/T_EMPoWER as a baseline: 80% of
    flows are within 80% of the final rate after 10 s. *)

type data = {
  pairs : int;
  ratios : (string * float list) list; (** T_X / T_EMPoWER *)
  early : float list;   (** rate(10-20 s) / final *)
  late : float list;    (** rate(190-200 s) / final *)
  spbf_ratio : float list;
}

val run : ?pairs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** Default 50 pairs (as the paper), seed 10. [jobs] as in
    {!Fig4.run}: the pairs fan out over a domain pool, sharing the
    read-only testbed instance; bit-identical for any job count. *)

val print : data -> unit
