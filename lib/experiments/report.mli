(** Unified run-report: [empower_eval report <artifact>] renders any
    artifact the harness produces into one text + JSON health report.

    Three artifact shapes are auto-detected from the file itself:

    - a {b JSONL trace} (first line carries an ["ev"] tag — the
      output of [empower_eval trace -o] or a flight-recorder dump):
      replayed strictly through {!Obs.Summary}; the report carries the
      SLOs — per-flow goodput against the LP bound (the sum of the
      flow's last traced controller rate vector), exact p50/p95/p99
      delivery delay, severance detect/outage times — plus
      drop/collision/grant counters;
    - a {b loadsweep figure} ([{"figure":"loadsweep",...}] from
      [empower_eval loadsweep --json]): per-load achieved-vs-offered
      load, completion and drop counts, p99 FCT per size bucket, and
      a p99-monotone-in-load sanity flag;
    - a {b profile} ([{"figure":"profile",...}] from
      [empower_eval profile --json]): the subsystem hotspot table;
    - a {b scenario scorecard} ([{"figure":"scenario",...}] from
      [empower_eval scenario --json]): the degradation scorecard —
      per-flow availability against the fault-free baseline, time
      below SLO, per-churn-event dip and recovery, and the
      recovery-subsystem counters, with the scenario's own SLO
      verdict.

    Accuracy: a trace report inherits the trace's own accuracy — full
    traces replay the engine's accounting exactly (see
    {!Tracing.cross_check}); sampled traces carry the
    {!Obs.Trace.sampled} contract (counts scale by the period; p99
    within 10% relative with >= 1000 retained deliveries). *)

type flow_slo = {
  stats : Obs.Summary.flow_stats;
  lp_bound_mbps : float;
      (** sum of the flow's final traced rate vector; 0 when the
          trace carried no rate update *)
  bound_ratio : float;  (** goodput / bound; [nan] when no bound *)
}

type trace = {
  summary : Obs.Summary.t;
  slos : flow_slo list;
}

type sweep_bucket = {
  label : string;
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type sweep_point = {
  load : float;
  offered_load : float;
  achieved_load : float;
  arrivals : int;
  completed : int;
  queue_drops : int;
  buckets : sweep_bucket list;
}

type sweep = {
  seed : int;
  capacity_mbps : float;
  sweep_duration : float;
  points : sweep_point list;
}

type prof_entry = {
  name : string;
  events : int;
  wall_s : float;
  ns_per_event : float;
  share_pct : float;
  minor_words : float;
  words_per_event : float;
}

type profile = {
  prof_events : int;
  prof_wall_s : float;
  entries : prof_entry list;
}

type scen_flow = {
  flow : int;
  src : int;
  dst : int;
  baseline_mbps : float;  (** mean binned goodput of the fault-free twin run *)
  goodput_mbps : float;  (** mean binned goodput under churn *)
  availability : float;
      (** fraction of 1 s bins at or above [availability_frac] of baseline *)
  below_slo_s : float;
  reroutes : int;
  flow_route_deaths : int;
  flow_route_restores : int;
  outage_s : float;  (** total time any of the flow's routes spent dead *)
}

type scen_event = {
  op : string;
  at : float;
  clear : float;
  dip_mbps : float;  (** worst per-flow 1 s goodput bin inside the event window *)
  recover_s : float;
      (** time from [clear] until every flow is back at 90% of baseline;
          negative means never within the run *)
}

type scenario = {
  scen_name : string;
  scen_seed : int;
  scen_duration : float;
  availability_frac : float;
  min_availability : float;
  min_availability_measured : float;
  slo_met : bool;
  scen_route_deaths : int;
  scen_probes : int;
  scen_queue_drops : int;
  scen_fault_events : int;
  scen_flows : scen_flow list;
  scen_events : scen_event list;
}

type source =
  | Trace of trace
  | Sweep of sweep
  | Profile of profile
  | Scenario of scenario

type t = { path : string; source : source }

val of_file : ?duration:float -> string -> (t, string) result
(** Load and classify [path]. [duration] overrides a trace's horizon
    (default: the last event's timestamp); it is required to
    reproduce the exact goodput of a run whose trace ends before the
    configured duration, and ignored for figure documents. [Error]
    carries the file/parse/validation message, including the strict
    line-level errors of {!Obs.Summary.read_file}. *)

val sweep_p99_monotone : sweep -> bool
(** [true] iff the all-sizes bucket's p99 FCT is nondecreasing in
    load across the sweep's points (buckets with no samples skip). *)

val to_json : t -> Obs.Json.t
(** The ["report"] figure: [source] is ["trace"], ["loadsweep"],
    ["profile"] or ["scenario"], payload fields follow the shapes
    above. *)

val print : ?out:out_channel -> t -> unit
