type row = {
  flow : int * int;
  empower : float * float;
  mp_mwifi : float * float;
  sp : float * float;
}

type data = { rows : row list; seconds : int }

let paper_flows =
  [ (4, 19); (1, 11); (17, 1); (19, 3); (9, 4); (11, 5); (13, 21); (11, 15);
    (20, 19); (7, 6) ]

let config = { Engine.default_config with delta = 0.05 }

let measure inst scheme ~src ~dst ~seed ~duration =
  let net = Runner.network inst scheme in
  let rr = Runner.routes_and_rates net scheme ~src ~dst in
  match fst rr with
  | [] -> (0.0, 0.0)
  | _ ->
    let spec = Runner.flow_spec ~src ~dst rr in
    let res = Empower.simulate ~config ~seed net ~flows:[ spec ] ~duration in
    Runner.goodput_stats res.Engine.flows.(0) ~last_seconds:100 ~duration

let run ?(seed = 11) ?(duration = 200.0) ?jobs () =
  let inst = Testbed.generate (Rng.create 4242) in
  (* Each row's seeds are derived from its index alone, so the rows
     are independent pure jobs over the shared read-only instance. *)
  let rows =
    Exec.mapi ?jobs
      (fun i (a, b) ->
        let src = Testbed.node a and dst = Testbed.node b in
        let seed = seed + (100 * i) in
        {
          flow = (a, b);
          empower = measure inst Schemes.Empower ~src ~dst ~seed ~duration;
          mp_mwifi = measure inst Schemes.Mp_mwifi ~src ~dst ~seed:(seed + 1) ~duration;
          sp = measure inst Schemes.Sp ~src ~dst ~seed:(seed + 2) ~duration;
        })
      paper_flows
  in
  { rows; seconds = 100 }

let print data =
  print_endline
    (Printf.sprintf
       "Figure 11: mean +/- std of throughput over the last %d s (packet-level)"
       data.seconds);
  let cell (m, s) = Printf.sprintf "%.1f +/- %.1f" m s in
  Table.print_table
    ~header:[ "flow"; "EMPoWER"; "MP-mWiFi"; "SP" ]
    ~rows:
      (List.map
         (fun r ->
           let a, b = r.flow in
           [ Printf.sprintf "%d-%d" a b; cell r.empower; cell r.mp_mwifi; cell r.sp ])
         data.rows);
  let wins =
    List.length
      (List.filter (fun r -> fst r.empower > fst r.mp_mwifi) data.rows)
  in
  Printf.printf "EMPoWER >= MP-mWiFi on %d of %d flows\n" wins (List.length data.rows)
