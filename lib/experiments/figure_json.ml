open Obs

let f x = Json.Float x
let i x = Json.Int x
let s x = Json.String x
let flist xs = Json.List (List.map f xs)
let farr xs = Json.List (Array.to_list (Array.map (fun x -> f x) xs))
let mean_std (m, sd) = Json.Obj [ ("mean", f m); ("std", f sd) ]
let topo t = s (Common.topology_name t)

let fig4 (d : Fig4.data) =
  Json.Obj
    [
      ("figure", s "fig4");
      ("topology", topo d.Fig4.topology);
      ("runs", i d.Fig4.runs);
      ( "samples",
        Json.Obj
          (List.map
             (fun (sch, xs) -> (Schemes.name sch, flist xs))
             d.Fig4.samples) );
      ( "gains",
        Json.Obj
          (List.filter_map
             (fun (sch, _) ->
               if sch = Schemes.Empower then None
               else
                 Some
                   (Schemes.name sch, f (Fig4.gain d ~over:sch)))
             d.Fig4.samples) );
    ]

let fig5 (d : Fig5.data) =
  Json.Obj
    [
      ("figure", s "fig5");
      ("topology", topo d.Fig5.topology);
      ("runs", i d.Fig5.runs);
      ("ratios", flist d.Fig5.ratios);
      ("empower_only", i d.Fig5.empower_only);
      ("mwifi_only", i d.Fig5.mwifi_only);
      ("worst_count", i d.Fig5.worst_count);
    ]

let ratio_figure name topology runs ratios =
  Json.Obj
    [
      ("figure", s name);
      ("topology", topo topology);
      ("runs", i runs);
      ("ratios", Json.Obj (List.map (fun (k, xs) -> (k, flist xs)) ratios));
    ]

let fig6 (d : Fig6.data) = ratio_figure "fig6" d.Fig6.topology d.Fig6.runs d.Fig6.ratios
let fig7 (d : Fig7.data) = ratio_figure "fig7" d.Fig7.topology d.Fig7.runs d.Fig7.ratios

let convergence (d : Convergence.data) =
  Json.Obj
    [
      ("figure", s "convergence");
      ("topology", topo d.Convergence.topology);
      ("runs", i d.Convergence.runs);
      ("empower_cold", flist d.Convergence.empower_cold);
      ("empower_warm", flist d.Convergence.empower_warm);
      ("backpressure", flist d.Convergence.backpressure);
    ]

let fig9 (d : Fig9.data) =
  let t0, t1 = d.Fig9.contender_window in
  Json.Obj
    [
      ("figure", s "fig9");
      ( "series",
        Json.List
          (List.map
             (fun (p : Fig9.sample) ->
               Json.Obj
                 [
                   ("time", f p.Fig9.time);
                   ("route1_rate", f p.Fig9.route1_rate);
                   ("route2_rate", f p.Fig9.route2_rate);
                   ("total_rate", f p.Fig9.total_rate);
                   ("received", f p.Fig9.received);
                 ])
             d.Fig9.series) );
      ("best_single_path", f d.Fig9.best_single_path);
      ("contender_window", Json.List [ f t0; f t1 ]);
      ("mean_before", f d.Fig9.mean_before);
      ("mean_during", f d.Fig9.mean_during);
      ("mean_after", f d.Fig9.mean_after);
    ]

let fig10 (d : Fig10.data) =
  Json.Obj
    [
      ("figure", s "fig10");
      ("pairs", i d.Fig10.pairs);
      ( "ratios",
        Json.Obj (List.map (fun (k, xs) -> (k, flist xs)) d.Fig10.ratios) );
      ("early", flist d.Fig10.early);
      ("late", flist d.Fig10.late);
      ("spbf_ratio", flist d.Fig10.spbf_ratio);
    ]

let flow_pair (a, b) = Json.List [ i a; i b ]

let fig11 (d : Fig11.data) =
  Json.Obj
    [
      ("figure", s "fig11");
      ("seconds", i d.Fig11.seconds);
      ( "rows",
        Json.List
          (List.map
             (fun (r : Fig11.row) ->
               Json.Obj
                 [
                   ("flow", flow_pair r.Fig11.flow);
                   ("empower", mean_std r.Fig11.empower);
                   ("mp_mwifi", mean_std r.Fig11.mp_mwifi);
                   ("sp", mean_std r.Fig11.sp);
                 ])
             d.Fig11.rows) );
    ]

let table1 (d : Table1.data) =
  let cell (c : Table1.cell) =
    Json.Obj
      [ ("mean", f c.Table1.mean); ("std", f c.Table1.std); ("runs", i c.Table1.runs) ]
  in
  let pair name (cc, wo) = (name, Json.Obj [ ("empower", cell cc); ("wo_cc", cell wo) ]) in
  Json.Obj
    [
      ("figure", s "table1");
      pair "tiny" d.Table1.tiny;
      pair "short" d.Table1.short;
      pair "long" d.Table1.long_;
      pair "conc_main" d.Table1.conc_main;
      pair "conc_side" d.Table1.conc_side;
      ("long_bytes", i d.Table1.long_bytes);
    ]

let fig12 (d : Fig12.data) =
  Json.Obj
    [
      ("figure", s "fig12");
      ( "series",
        Json.List
          (List.map
             (fun (p : Fig12.sample) ->
               Json.Obj
                 [
                   ("time", f p.Fig12.time);
                   ("cc_route_rates", farr p.Fig12.cc_route_rates);
                   ("received", f p.Fig12.received);
                 ])
             d.Fig12.series) );
      ("phase_switch", f d.Fig12.phase_switch);
      ("mean_sp", f d.Fig12.mean_sp);
      ("mean_empower", f d.Fig12.mean_empower);
      ("delta", f d.Fig12.delta);
    ]

let fig13 (d : Fig13.data) =
  Json.Obj
    [
      ("figure", s "fig13");
      ("delta", f d.Fig13.delta);
      ( "rows",
        Json.List
          (List.map
             (fun (r : Fig13.row) ->
               Json.Obj
                 [
                   ("flow", flow_pair r.Fig13.flow);
                   ("empower", mean_std r.Fig13.empower);
                   ("sp_wo_cc", mean_std r.Fig13.sp_wo_cc);
                 ])
             d.Fig13.rows) );
    ]

let metric_comparison (d : Metric_comparison.data) =
  Json.Obj
    [
      ("figure", s "metric_comparison");
      ("topology", topo d.Metric_comparison.topology);
      ("runs", i d.Metric_comparison.runs);
      ( "mean_rate",
        Json.Obj (List.map (fun (k, v) -> (k, f v)) d.Metric_comparison.mean_rate) );
      ( "empower_wins",
        Json.Obj
          (List.map (fun (k, v) -> (k, f v)) d.Metric_comparison.empower_wins) );
    ]

let mptcp (d : Mptcp_applicability.data) =
  Json.Obj
    [
      ("figure", s "mptcp_applicability");
      ("pairs", i d.Mptcp_applicability.pairs);
      ("multipath_pairs", i d.Mptcp_applicability.multipath_pairs);
      ("mptcp_blocked", i d.Mptcp_applicability.mptcp_blocked);
      ("blocked_fraction", f d.Mptcp_applicability.blocked_fraction);
    ]

let mac_fairness (d : Mac_fairness.data) =
  let mac (r : Csma.result) =
    Json.Obj
      [
        ("throughput", f r.Csma.throughput);
        ("collision_rate", f r.Csma.collision_rate);
        ("jain", f r.Csma.jain);
        ("service_cv", f r.Csma.service_cv);
        ( "per_station",
          Json.List (Array.to_list (Array.map (fun n -> i n) r.Csma.per_station)) );
      ]
  in
  Json.Obj
    [
      ("figure", s "mac_fairness");
      ("slots", i d.Mac_fairness.slots);
      ( "rows",
        Json.List
          (List.map
             (fun (r : Mac_fairness.row) ->
               Json.Obj
                 [
                   ("n_stations", i r.Mac_fairness.n_stations);
                   ("wifi", mac r.Mac_fairness.wifi);
                   ("plc", mac r.Mac_fairness.plc);
                 ])
             d.Mac_fairness.rows) );
    ]

let ablation (d : Ablations.data) =
  Json.Obj
    [
      ("figure", s ("ablation:" ^ d.Ablations.name));
      ("aux_label", s d.Ablations.aux_label);
      ("runs", i d.Ablations.runs);
      ( "points",
        Json.List
          (List.map
             (fun (p : Ablations.point) ->
               Json.Obj
                 [
                   ("label", s p.Ablations.label);
                   ("mean_rate", f p.Ablations.mean_rate);
                   ("mean_aux", f p.Ablations.mean_aux);
                 ])
             d.Ablations.points) );
    ]

let loadsweep (d : Loadsweep.data) =
  let bucket (b : Loadsweep.bucket) =
    Json.Obj
      [
        ("label", s b.Loadsweep.label);
        ("count", i b.Loadsweep.count);
        ("p50", f b.Loadsweep.p50);
        ("p95", f b.Loadsweep.p95);
        ("p99", f b.Loadsweep.p99);
      ]
  in
  Json.Obj
    [
      ("figure", s "loadsweep");
      ("seed", i d.Loadsweep.seed);
      ("pairs", i d.Loadsweep.pairs);
      ("conns", i d.Loadsweep.conns);
      ("duration", f d.Loadsweep.duration);
      ("drain", f d.Loadsweep.drain);
      ("capacity_mbps", f d.Loadsweep.capacity_mbps);
      ("pacing", s (Workload.pacing_name d.Loadsweep.pacing));
      ("cdf", s d.Loadsweep.cdf);
      ( "points",
        Json.List
          (List.map
             (fun (p : Loadsweep.point) ->
               Json.Obj
                 [
                   ("load", f p.Loadsweep.load);
                   ("offered_load", f p.Loadsweep.offered_load);
                   ("achieved_load", f p.Loadsweep.achieved_load);
                   ("arrivals", i p.Loadsweep.arrivals);
                   ("completed", i p.Loadsweep.completed);
                   ("queue_drops", i p.Loadsweep.queue_drops);
                   ("buckets", Json.List (List.map bucket p.Loadsweep.buckets));
                 ])
             d.Loadsweep.points) );
    ]

let buffers (d : Buffers.data) =
  let variant (v : Buffers.variant_result) =
    Json.Obj
      [
        ("variant", s v.Buffers.variant);
        ("goodput_mbps", f v.Buffers.goodput_mbps);
        ("queue_drops", i v.Buffers.queue_drops);
        ("ecn_marks", i v.Buffers.ecn_marks);
        ("buffer_peak_bytes", i v.Buffers.buffer_peak_bytes);
        ("frames_lost", i v.Buffers.frames_lost);
      ]
  in
  Json.Obj
    [
      ("figure", s "buffers");
      ("seed", i d.Buffers.seed);
      ("duration", f d.Buffers.duration);
      ("frame_bytes", i d.Buffers.frame_bytes);
      ("pools", Json.List (List.map i d.Buffers.pools));
      ("alphas", Json.List (List.map f d.Buffers.alphas));
      ("ecns", Json.List (List.map i d.Buffers.ecns));
      ( "points",
        Json.List
          (List.map
             (fun (p : Buffers.point) ->
               Json.Obj
                 [
                   ("pool_frames", i p.Buffers.pool_frames);
                   ("dt_alpha", f p.Buffers.dt_alpha);
                   ("ecn_frames", i p.Buffers.ecn_frames);
                   ( "variants",
                     Json.List (List.map variant p.Buffers.variants) );
                 ])
             d.Buffers.points) );
    ]

let print_json j = print_endline (Json.to_string j)
