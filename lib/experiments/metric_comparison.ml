type data = {
  topology : Common.topology;
  runs : int;
  mean_rate : (string * float) list;
  empower_wins : (string * float) list;
}

let achieved_rate g dom route =
  let p = Problem.make g dom ~flows:[ [ route ] ] in
  let x_init = [| Update.path_rate g dom route |] in
  let res = Multi_cc.solve ~x_init ~slots:1500 ~stop_tol:0.05 p in
  res.Cc_result.flow_rates.(0)

let run ?(runs = Common.runs_scaled 40) ?(seed = 31) ?jobs topology =
  (* One pure job per replication over pre-split streams (see fig4),
     returning the per-metric rates; transposed after the in-order
     merge. *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let src, dst = Common.random_flow rng inst in
        let g = Builder.graph inst Builder.Hybrid in
        let dom = Domain.of_instance inst Builder.Hybrid g in
        List.map
          (fun m ->
            match Metrics.route m g dom ~src ~dst with
            | None -> 0.0
            | Some (p, _) -> achieved_rate g dom p)
          Metrics.all)
      (Common.split_rngs master runs)
  in
  let samples =
    List.mapi (fun i m -> (m, List.map (fun rs -> List.nth rs i) per_run)) Metrics.all
  in
  let empower_samples = List.assoc Metrics.Empower_csc samples in
  let wins other =
    let total = List.length other in
    if total = 0 then 0.0
    else begin
      let w =
        List.fold_left2
          (fun acc e o -> if e >= o -. 1e-6 then acc + 1 else acc)
          0 empower_samples other
      in
      float_of_int w /. float_of_int total
    end
  in
  {
    topology;
    runs;
    mean_rate = List.map (fun (m, xs) -> (Metrics.name m, Stats.mean xs)) samples;
    empower_wins =
      List.filter_map
        (fun (m, xs) ->
          if m = Metrics.Empower_csc then None else Some (Metrics.name m, wins xs))
        samples;
  }

let print data =
  print_endline
    (Printf.sprintf
       "Footnote 7 (%s, %d runs): single-path metrics, achieved rate under CC"
       (Common.topology_name data.topology) data.runs);
  Table.print_table
    ~header:[ "metric"; "mean rate (Mbps)"; "EMPoWER >= it" ]
    ~rows:
      (List.map
         (fun (nm, mean) ->
           let win =
             match List.assoc_opt nm data.empower_wins with
             | None -> "-"
             | Some w -> Common.percent w
           in
           [ nm; Table.fmt_float mean; win ])
         data.mean_rate)
