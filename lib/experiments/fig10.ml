type data = {
  pairs : int;
  ratios : (string * float list) list;
  early : float list;
  late : float list;
  spbf_ratio : float list;
}

let testbed_opts =
  { Schemes.default_options with delta = 0.05; estimate_noise = 0.02 }

let scheme_list =
  [
    ("MP-2bp", Schemes.Mp_2bp);
    ("SP", Schemes.Sp);
    ("SP-WiFi", Schemes.Sp_wifi);
    ("MP-mWiFi", Schemes.Mp_mwifi);
  ]

let run ?(pairs = 50) ?(seed = 10) ?jobs () =
  let master = Rng.create seed in
  (* The testbed instance and its graphs/domains are built once and
     shared read-only across the jobs; each pair is a pure job over
     its pre-split stream, merged in submission order. *)
  let inst = Testbed.generate (Rng.create 4242) in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let gw = Builder.graph inst Builder.Single_wifi in
  let domw = Domain.of_instance inst Builder.Single_wifi gw in
  let names =
    List.map fst scheme_list @ [ "SP-bf"; "SP-WiFi-bf" ]
  in
  let n = Multigraph.n_nodes g in
  let per_pair =
    Exec.map ?jobs
      (fun rng ->
        let src = Rng.int rng n in
        let dst =
          let rec go () =
            let d = Rng.int rng n in
            if d = src then go () else d
          in
          go ()
        in
        let flow = (src, dst) in
        let t_emp =
          (Schemes.evaluate ~opts:testbed_opts (Rng.copy rng) inst Schemes.Empower
             ~flows:[ flow ]).(0)
        in
        if t_emp <= 0.1 then None
        else begin
          let scheme_ratios =
            List.map
              (fun (_, s) ->
                (Schemes.evaluate ~opts:testbed_opts (Rng.copy rng) inst s
                   ~flows:[ flow ]).(0)
                /. t_emp)
              scheme_list
          in
          let spbf = Brute_force.sp_bf g dom ~src ~dst in
          let spwifi_bf = Brute_force.sp_bf ~csc:false gw domw ~src ~dst in
          (* Convergence trace: controller on EMPoWER's routes, warm
             start, 1 slot = 100 ms. *)
          let conv =
            let comb = Multipath.find g dom ~src ~dst in
            match Multipath.routes comb with
            | [] -> None
            | routes ->
              let p = Problem.make ~delta:0.05 g dom ~flows:[ routes ] in
              let x_init = Array.of_list (List.map snd comb.Multipath.paths) in
              let res = Multi_cc.solve ~x_init ~slots:2200 p in
              let final = res.Cc_result.flow_rates.(0) in
              if final <= 0.1 then None
              else begin
                let window lo hi =
                  let acc = ref 0.0 and n = ref 0 in
                  for t = lo to hi - 1 do
                    acc := !acc +. res.Cc_result.trace.(t).(0);
                    incr n
                  done;
                  !acc /. float_of_int !n
                in
                Some (window 100 200 /. final, window 1900 2000 /. final)
              end
          in
          Some
            (scheme_ratios @ [ spbf /. t_emp; spwifi_bf /. t_emp ], spbf /. t_emp, conv)
        end)
      (Common.split_rngs master pairs)
  in
  let kept = List.filter_map Fun.id per_pair in
  {
    pairs;
    ratios =
      List.mapi
        (fun i nm -> (nm, List.map (fun (rs, _, _) -> List.nth rs i) kept))
        names;
    early = List.filter_map (fun (_, _, c) -> Option.map fst c) kept;
    late = List.filter_map (fun (_, _, c) -> Option.map snd c) kept;
    spbf_ratio = List.map (fun (_, r, _) -> r) kept;
  }

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf "Figure 10 (left): CDF of T_X / T_EMPoWER, %d testbed pairs"
         data.pairs)
    ~xlabel:"ratio"
    ~grid:(Table.log_grid ~lo:0.1 ~hi:3.0 ~n:14)
    ~series;
  (match List.assoc_opt "MP-mWiFi" data.ratios with
  | Some (_ :: _ as xs) ->
    Printf.printf "EMPoWER beats MP-mWiFi on %s of pairs (max EMPoWER gain %.1fx, max mWiFi gain %.1fx)\n"
      (Common.percent (Stats.fraction_below xs 1.0))
      (1.0 /. Stats.minimum xs) (Stats.maximum xs)
  | _ -> ());
  (match data.spbf_ratio with
  | _ :: _ ->
    Printf.printf "EMPoWER beats SP-bf on %s of pairs\n"
      (Common.percent (Stats.fraction_below data.spbf_ratio 1.0))
  | [] -> ());
  match (data.early, data.late) with
  | _ :: _, _ :: _ ->
    print_endline "Figure 10 (right): throughput vs final";
    Table.print_cdf_grid ~title:"" ~xlabel:"fraction of final"
      ~grid:(Table.linear_grid ~lo:0.4 ~hi:1.2 ~n:9)
      ~series:
        [
          ("after 10-20s", Stats.Ecdf.of_list data.early);
          ("after 190-200s", Stats.Ecdf.of_list data.late);
          ("SP-bf", Stats.Ecdf.of_list data.spbf_ratio);
        ];
    Printf.printf "within 80%% of final after 10s: %s of flows\n"
      (Common.percent (Stats.fraction_at_least data.early 0.8))
  | _ -> ()
