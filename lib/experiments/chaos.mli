(** Seeded chaos scenario: a random-but-reproducible {!Fault} plan
    against the testbed network, with recovery metrics.

    A chaos run draws a fault plan from a seed ({!Fault.Gen}),
    compiles it into the engine's fault schedules and simulates the
    saturated testbed flow 0->12 under it, with {!Engine.config}'s
    [route_reclaim] enabled so full failures are recoverable. A
    private {!Obs.Recorder} folds the run's trace into the
    degradation metrics (goodput dip depth/area, time-to-recover,
    reroute count) that the {!report} carries.

    Two refinements target full severance. The [Severing] intensity
    pins the {!Fault.Gen} victim to the flow destination (node 12),
    so the single crash window is guaranteed to take down {e every}
    route of the scenario flow. And [~recovery:true] switches the
    engine config to [recovery = Some Recovery.default], enabling the
    self-healing control plane (failure detection, stale-price reset,
    backoff-driven reclaim probes) whose detection latency surfaces
    as {!flow_report.detect_s}.

    Determinism: one seed pins the whole run — the plan generator
    draws from an {!Rng.split} of the master stream and the engine
    consumes the rest, so equal seeds give bit-identical results
    (modulo [perf]; see the {!Engine.run} contract). *)

type flow_report = {
  flow : int;
  received_bytes : int;
  goodput_mbps : float;      (** over the full run *)
  recovery_s : float;
      (** time from the last fault boundary until windowed goodput is
          back within 90% of the pre-fault baseline; -1 = never, 0 =
          no dip at the boundary (see {!Obs.Recorder}) *)
  dip_depth : float;         (** Mbit/s below baseline, worst window *)
  dip_area : float;          (** Mbit/s·s lost to the dip *)
  reroutes : int;            (** preferred-route changes *)
  detect_s : float;
      (** worst failure-detection latency (route death declared by
          {!Recovery.Detector} minus last successful ack) — 0 when
          recovery is off or no route died *)
}

type report = {
  seed : int;
  intensity : Fault.Gen.intensity;
  duration : float;
  recovery : bool;           (** self-healing control plane enabled *)
  plan : Fault.plan;         (** the generated plan, for replay *)
  result : Engine.result;
  fault_events : int;        (** fault boundary events seen in the trace *)
  flows : flow_report list;
}

val config : Engine.config
(** The chaos engine config: {!Engine.default_config} with
    [route_reclaim = true] (and [recovery = Some Recovery.default]
    when {!run} is given [~recovery:true]). *)

val network : unit -> Empower.network
(** The scenario's network (testbed draw, seed 4242 — the same one
    the [failure] trace scenario uses). *)

val plan :
  ?intensity:Fault.Gen.intensity ->
  ?clear_by:float ->
  Empower.network ->
  seed:int ->
  duration:float ->
  Fault.plan
(** The plan a given seed yields for this scenario (the same split
    stream {!run} uses, including the pinned victim for [Severing])
    — for inspection and tests. *)

val run :
  ?trace:Obs.Trace.sink ->
  ?flight:Obs.Flight.t ->
  ?intensity:Fault.Gen.intensity ->
  ?recovery:bool ->
  ?duration:float ->
  seed:int ->
  unit ->
  report
(** Run the chaos scenario ([intensity] defaults to [Moderate],
    [recovery] to [false], [duration] to 20 s). [trace] additionally
    streams every event to the caller's sink; an installed
    {!Obs.Runtime} registry ([--metrics] / [EMPOWER_METRICS]) is also
    populated, including the degradation metrics. [flight] records
    the run into a flight-recorder ring (see {!Engine.run}); the
    harness's [chaos --flight FILE] dumps it whenever the run shows a
    regression (a flow that never recovers: [recovery_s < 0]). *)

val sweep :
  ?intensity:Fault.Gen.intensity ->
  ?recovery:bool ->
  ?duration:float ->
  ?jobs:int ->
  int list ->
  report list
(** Run the scenario once per seed, fanned out over a domain pool
    ([jobs] as in {!Fig4.run}); reports come back in the seeds'
    order and are bit-identical for any job count. *)

val to_json : report -> Obs.Json.t

val sweep_json : report list -> Obs.Json.t
(** A [chaos-sweep] object wrapping each report's {!to_json}. *)

val print : ?out:out_channel -> report -> unit
