(* Empirical heavy-traffic load sweep: CDF-sampled open-loop arrivals
   at a target fraction of the allocated testbed capacity, with
   per-size-bucket FCT percentiles. See the .mli for the recipe. *)

type bucket = {
  label : string;
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type point = {
  load : float;
  offered_load : float;
  achieved_load : float;
  arrivals : int;
  completed : int;
  queue_drops : int;
  buckets : bucket list;
  fcts : (int * float option) list;
}

type data = {
  seed : int;
  pairs : int;
  conns : int;
  duration : float;
  drain : float;
  capacity_mbps : float;
  pacing : Workload.pacing;
  cdf : string;
  points : point list;
}

let tiny_max_bytes = 100_000
let short_max_bytes = 5_000_000

(* The same testbed scenario the chaos harness drives. *)
let network () = Runner.network (Testbed.generate (Rng.create 4242)) Schemes.Empower

(* The seed-pinned pair set: random distinct connected pairs with
   distinct sources (one persistent sender per pair), drawn from a
   dedicated stream so the load factor never shifts it. *)
let draw_pairs rng (net : Empower.network) ~pairs =
  let n = Multigraph.n_nodes net.Empower.g in
  let rec go acc k attempts =
    if k = 0 then List.rev acc
    else if attempts > 200 * pairs then
      invalid_arg "Loadsweep: could not find enough connected pairs"
    else begin
      let src = Rng.int rng n in
      let dst = Rng.int rng n in
      if
        src = dst
        || List.exists (fun (s, d) -> s = src || (s, d) = (src, dst)) acc
      then go acc k (attempts + 1)
      else
        let p = Empower.plan net ~src ~dst in
        if Multipath.routes p.Empower.combination = [] then
          go acc k (attempts + 1)
        else go ((src, dst) :: acc) (k - 1) (attempts + 1)
    end
  in
  go [] pairs 0

let point_of_run ~load ~capacity_mbps ~duration ~arrivals ~offered_load
    ~(schedules : (float * int) list list) (result : Engine.result) =
  (* Completed files form a prefix of each flow's schedule, and
     [completions] reports (start, service) in file order, so zipping
     recovers each transfer's FCT = start + service - arrival. *)
  let h_tiny = Obs.Metrics.Histogram.create ()
  and h_short = Obs.Metrics.Histogram.create ()
  and h_long = Obs.Metrics.Histogram.create ()
  and h_all = Obs.Metrics.Histogram.create () in
  let delivered = ref 0 in
  let per_flow =
    List.mapi
      (fun i schedule ->
        let fr = result.Engine.flows.(i) in
        delivered := !delivered + fr.Engine.received_bytes;
        let rec zip files completions acc =
          match (files, completions) with
          | (arrival, bytes) :: files, (start, service) :: completions ->
            zip files completions
              ((arrival, bytes, Some (start +. service -. arrival)) :: acc)
          | files, [] ->
            List.rev_append acc
              (List.map (fun (a, b) -> (a, b, None)) files)
          | [], _ :: _ ->
            invalid_arg "Loadsweep: more completions than scheduled transfers"
        in
        zip schedule fr.Engine.completions [])
      schedules
  in
  (* Global arrival order, flow order breaking (measure-zero) ties:
     every pair's rate — hence every arrival time — scales by the same
     load factor, so this order is load-invariant at a fixed seed and
     index i is the same transfer (size, connection) at every load:
     the common-random-numbers alignment the monotonicity property
     leans on. *)
  let fcts =
    List.concat per_flow
    |> List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
    |> List.map (fun (_, bytes, fct) -> (bytes, fct))
  in
  let completed = ref 0 in
  List.iter
    (fun (bytes, fct) ->
      match fct with
      | None -> ()
      | Some fct ->
        incr completed;
        Obs.Metrics.Histogram.observe h_all fct;
        Obs.Metrics.Histogram.observe
          (if bytes < tiny_max_bytes then h_tiny
           else if bytes < short_max_bytes then h_short
           else h_long)
          fct)
    fcts;
  let bucket label h =
    {
      label;
      count = Obs.Metrics.Histogram.count h;
      p50 = Obs.Metrics.Histogram.quantile h 0.50;
      p95 = Obs.Metrics.Histogram.quantile h 0.95;
      p99 = Obs.Metrics.Histogram.quantile h 0.99;
    }
  in
  {
    load;
    offered_load;
    achieved_load =
      float_of_int !delivered *. 8.0 /. (capacity_mbps *. 1e6 *. duration);
    arrivals;
    completed = !completed;
    queue_drops = result.Engine.queue_drops;
    fcts;
    buckets =
      [
        bucket "tiny" h_tiny;
        bucket "short" h_short;
        bucket "long" h_long;
        bucket "all" h_all;
      ];
  }

let run ?(cdf = Cdf.websearch) ?(pairs = 4) ?(conns = 2) ?(duration = 30.0)
    ?(drain = 10.0) ?(pacing = Workload.Cbr) ?(seed = 17) ~load () =
  if not (Float.is_finite load) || load <= 0.0 || load > 1.0 then
    invalid_arg (Printf.sprintf "Loadsweep.run: load %g outside (0, 1]" load);
  if pairs <= 0 || conns <= 0 then
    invalid_arg "Loadsweep.run: pairs and conns must be positive";
  let net = network () in
  (* One seed pins everything: a split for the pair draw, a split for
     the generator, the engine consumes the rest of the master. *)
  let master = Rng.create seed in
  let pair_rng = Rng.split master in
  let gen_rng = Rng.split master in
  let pair_list = draw_pairs pair_rng net ~pairs in
  let alloc = Empower.allocate net ~flows:pair_list in
  let capacity_mbps = Array.fold_left ( +. ) 0.0 alloc.Empower.flow_rates in
  if capacity_mbps <= 0.0 then invalid_arg "Loadsweep.run: zero capacity";
  (* Per pair: offer [load] times its own allocated rate, dealt over
     [conns] connections; each connection is one engine flow at a
     1/conns share of the pair's per-route rates. Flow list length is
     pairs * conns whatever the load, so engine streams line up
     point to point across a sweep. *)
  let arrivals = ref 0 and offered_bytes = ref 0 in
  let specs_and_schedules =
    List.concat
      (List.mapi
         (fun i (src, dst) ->
           let routes = Multipath.routes alloc.Empower.plans.(i).Empower.combination in
           let rates =
             Array.to_list alloc.Empower.route_rates.(i)
             |> List.map (fun r -> r /. float_of_int conns)
           in
           let gen =
             Loadgen.generate (Rng.split gen_rng) ~cdf ~load
               ~capacity_mbps:alloc.Empower.flow_rates.(i) ~conns ~duration
           in
           arrivals := !arrivals + gen.Loadgen.arrivals;
           offered_bytes := !offered_bytes + gen.Loadgen.offered_bytes;
           List.init conns (fun c ->
               let schedule = gen.Loadgen.per_conn.(c) in
               ( Runner.flow_spec
                   ~workload:(Workload.Empirical { files = schedule; pacing })
                   ~src ~dst (routes, rates),
                 schedule )))
         pair_list)
  in
  let result =
    Engine.run master net.Empower.g net.Empower.dom
      ~flows:(List.map fst specs_and_schedules)
      ~duration:(duration +. drain)
  in
  let point =
    point_of_run ~load ~capacity_mbps ~duration ~arrivals:!arrivals
      ~offered_load:
        (float_of_int !offered_bytes *. 8.0 /. (capacity_mbps *. 1e6 *. duration))
      ~schedules:(List.map snd specs_and_schedules)
      result
  in
  (* FCT histograms also land in the ambient registry (--metrics),
     merged deterministically across jobs. *)
  (match Obs.Runtime.metrics () with
  | None -> ()
  | Some reg ->
    List.iter
      (fun b ->
        let name what =
          Printf.sprintf "loadsweep.load_%.2f.fct.%s.%s" load b.label what
        in
        if b.count > 0 then begin
          Obs.Metrics.Counter.add (Obs.Metrics.counter reg (name "count")) b.count;
          Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg (name "p99")) b.p99
        end)
      point.buckets);
  {
    seed;
    pairs;
    conns;
    duration;
    drain;
    capacity_mbps;
    pacing;
    cdf = Cdf.describe cdf;
    points = [ point ];
  }

let sweep ?cdf ?pairs ?conns ?duration ?drain ?pacing ?seed ?jobs loads =
  if loads = [] then invalid_arg "Loadsweep.sweep: no load factors";
  let datas =
    Exec.map ?jobs
      (fun load -> run ?cdf ?pairs ?conns ?duration ?drain ?pacing ?seed ~load ())
      loads
  in
  let first = List.hd datas in
  { first with points = List.concat_map (fun d -> d.points) datas }

let print ?(out = stdout) d =
  let p fmt = Printf.fprintf out fmt in
  p
    "--- loadsweep: seed %d, %d pairs x %d conns, %.0f s + %.0f s drain, C = \
     %.1f Mbit/s, %s pacing ---\n"
    d.seed d.pairs d.conns d.duration d.drain d.capacity_mbps
    (Workload.pacing_name d.pacing);
  p "flow sizes: %s (tiny < %d kB <= short < %d MB <= long)\n" d.cdf
    (tiny_max_bytes / 1000) (short_max_bytes / 1_000_000);
  List.iter
    (fun pt ->
      p
        "load %.2f: offered %.3f, delivered %.3f, %d/%d transfers done, %d \
         queue drops\n"
        pt.load pt.offered_load pt.achieved_load pt.completed pt.arrivals
        pt.queue_drops;
      List.iter
        (fun b ->
          if b.count > 0 then
            p "  %-5s n=%-4d FCT p50 %7.3f s  p95 %7.3f s  p99 %7.3f s\n"
              b.label b.count b.p50 b.p95 b.p99)
        pt.buckets)
    d.points
