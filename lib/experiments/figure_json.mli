(** Machine-readable figures: every experiment's [data] rendered as an
    {!Obs.Json.t}, for the harness's [--json] output mode. The shapes
    mirror the records in each experiment's interface; each object
    carries a ["figure"] tag naming its source. *)

val fig4 : Fig4.data -> Obs.Json.t
val fig5 : Fig5.data -> Obs.Json.t
val fig6 : Fig6.data -> Obs.Json.t
val fig7 : Fig7.data -> Obs.Json.t
val convergence : Convergence.data -> Obs.Json.t
val fig9 : Fig9.data -> Obs.Json.t
val fig10 : Fig10.data -> Obs.Json.t
val fig11 : Fig11.data -> Obs.Json.t
val table1 : Table1.data -> Obs.Json.t
val fig12 : Fig12.data -> Obs.Json.t
val fig13 : Fig13.data -> Obs.Json.t
val metric_comparison : Metric_comparison.data -> Obs.Json.t
val mptcp : Mptcp_applicability.data -> Obs.Json.t
val mac_fairness : Mac_fairness.data -> Obs.Json.t
val ablation : Ablations.data -> Obs.Json.t
val loadsweep : Loadsweep.data -> Obs.Json.t
val buffers : Buffers.data -> Obs.Json.t

val print_json : Obs.Json.t -> unit
(** One compact line on stdout. *)
