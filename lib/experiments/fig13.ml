type row = {
  flow : int * int;
  empower : float * float;
  sp_wo_cc : float * float;
}

type data = { rows : row list; delta : float }

let paper_flows =
  [ (9, 10); (4, 7); (21, 18); (8, 6); (17, 15); (9, 13); (4, 5); (20, 17);
    (3, 6); (13, 7) ]

let measure inst scheme ~cc ~delta ~src ~dst ~seed ~duration =
  let net = Runner.network inst scheme in
  let rr = Runner.routes_and_rates net scheme ~src ~dst in
  match fst rr with
  | [] -> (0.0, 0.0)
  | routes ->
    let spec = Runner.flow_spec ~transport:Engine.Tcp_transport ~src ~dst rr in
    (* The paper scopes the large TCP margin to the flows that need
       it: delta = 0.3 where routes traverse contention domains
       (multi-hop), the plain UDP margin where the routes are
       parallel single hops and reordering is mild (Section 6.4's
       "only the nodes in the contention domain of a TCP flow should
       use this value"). *)
    let flow_delta =
      if List.exists (fun p -> Paths.hops p >= 2) routes then delta else 0.05
    in
    let config =
      {
        Engine.default_config with
        enable_cc = cc;
        delta = (if cc then flow_delta else 0.0);
        delay_equalize = cc;
      }
    in
    let res = Empower.simulate ~config ~seed net ~flows:[ spec ] ~duration in
    Runner.goodput_stats res.Engine.flows.(0)
      ~last_seconds:(int_of_float (duration -. 30.0))
      ~duration

let run ?(seed = 14) ?(duration = 150.0) ?(delta = 0.3) ?jobs () =
  let inst = Testbed.generate (Rng.create 4242) in
  (* Each row's seeds are derived from its index alone, so the rows
     are independent pure jobs over the shared read-only instance. *)
  let rows =
    Exec.mapi ?jobs
      (fun i (a, b) ->
        let src = Testbed.node a and dst = Testbed.node b in
        let s = seed + (100 * i) in
        {
          flow = (a, b);
          empower =
            measure inst Schemes.Empower ~cc:true ~delta ~src ~dst ~seed:s ~duration;
          sp_wo_cc =
            measure inst Schemes.Sp ~cc:false ~delta ~src ~dst ~seed:(s + 1) ~duration;
        })
      paper_flows
  in
  { rows; delta }

let print data =
  print_endline
    (Printf.sprintf "Figure 13: mean +/- std TCP rate (delta = %.1f)" data.delta);
  let cell (m, s) = Printf.sprintf "%.1f +/- %.1f" m s in
  Table.print_table
    ~header:[ "flow"; "EMPoWER"; "SP-w/o-CC" ]
    ~rows:
      (List.map
         (fun r ->
           let a, b = r.flow in
           [ Printf.sprintf "%d-%d" a b; cell r.empower; cell r.sp_wo_cc ])
         data.rows);
  let wins =
    List.length (List.filter (fun r -> fst r.empower >= fst r.sp_wo_cc) data.rows)
  in
  Printf.printf "EMPoWER >= single-path TCP on %d of %d flows\n" wins
    (List.length data.rows)
