(** Footnote 4 / reference [40]: IEEE 1901 vs 802.11 CSMA/CA.

    The slot-accurate single-domain comparison behind the paper's
    claim that PLC links, like WiFi, are CSMA/CA-contended (and
    behind our engine's contention-loss abstraction): for each number
    of saturated stations, throughput, collision probability,
    long-term fairness (Jain) and short-term fairness (coefficient of
    variation of inter-service gaps). Expected shapes, from Vlachou
    et al. [40]: 1901's deferral counters collide less and keep
    throughput higher under load, but are markedly less short-term
    fair at small N. *)

type row = {
  n_stations : int;
  wifi : Csma.result;
  plc : Csma.result;
}

type data = { rows : row list; slots : int }

val run : ?seed:int -> ?slots:int -> ?stations:int list -> ?jobs:int -> unit -> data
(** Defaults: 200000 slots, N in 1, 2, 4, 8, 16, 32. *)

val print : data -> unit
