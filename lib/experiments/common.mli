(** Shared machinery for the paper-evaluation experiments.

    Every experiment is deterministic given [seed] and scales with
    [runs]; the defaults are sized so the full suite terminates in
    minutes (the paper uses 1000 runs per figure — set
    [EMPOWER_RUNS] or pass [--runs] to match). *)

type topology = Residential | Enterprise

val topology_name : topology -> string
(** ["residential"] / ["enterprise"]. *)

val generate : topology -> Rng.t -> Builder.instance
(** Draw one instance of the given topology family. *)

val random_flow : Rng.t -> Builder.instance -> int * int
(** A (source, destination) pair as in Section 5.1: the source
    uniformly among dual (PLC/WiFi) nodes, the destination uniformly
    among all other nodes — never two WiFi-only endpoints. *)

val random_flows : Rng.t -> Builder.instance -> n:int -> (int * int) list
(** [n] distinct such pairs (distinct sources). *)

val split_rngs : Rng.t -> int -> Rng.t list
(** [split_rngs master n] is the list of [n] independent streams split
    off [master] in order — stream [i] is the [i]-th split, exactly
    what the historical [for]-loop drew at the top of replication [i].
    Pre-splitting in submission order is what lets [Exec.map] fan the
    replications out over domains with bit-identical results. *)

val runs_scaled : int -> int
(** Scale a default run count by the [EMPOWER_RUNS] environment
    variable when set ([EMPOWER_RUNS] is the target for experiments
    whose default is 100; other defaults scale proportionally). *)

val percent : float -> string
(** Format a fraction as a percentage string. *)
