type row = {
  n_stations : int;
  wifi : Csma.result;
  plc : Csma.result;
}

type data = { rows : row list; slots : int }

let run ?(seed = 40) ?(slots = 200_000) ?(stations = [ 1; 2; 4; 8; 16; 32 ]) ?jobs () =
  (* Each station count seeds its own fresh streams — independent
     pure jobs, merged in the [stations] order. *)
  let rows =
    Exec.map ?jobs
      (fun n ->
        {
          n_stations = n;
          wifi = Csma.simulate ~slots (Rng.create seed) Csma.Dcf_80211 ~n_stations:n;
          plc = Csma.simulate ~slots (Rng.create (seed + 1)) Csma.Csma_1901 ~n_stations:n;
        })
      stations
  in
  { rows; slots }

let print data =
  print_endline
    (Printf.sprintf
       "MAC fairness [40]: 802.11 DCF vs IEEE 1901, saturated single domain (%d slots)"
       data.slots);
  Table.print_table
    ~header:
      [ "N"; "thr .11"; "thr 1901"; "coll .11"; "coll 1901"; "jain .11";
        "jain 1901"; "cv .11"; "cv 1901" ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.n_stations;
             Table.fmt_float r.wifi.Csma.throughput;
             Table.fmt_float r.plc.Csma.throughput;
             Table.fmt_float r.wifi.Csma.collision_rate;
             Table.fmt_float r.plc.Csma.collision_rate;
             Table.fmt_float r.wifi.Csma.jain;
             Table.fmt_float r.plc.Csma.jain;
             Table.fmt_float r.wifi.Csma.service_cv;
             Table.fmt_float r.plc.Csma.service_cv;
           ])
         data.rows);
  let contended = List.filter (fun r -> r.n_stations >= 4) data.rows in
  let frac p =
    float_of_int (List.length (List.filter p contended))
    /. float_of_int (max 1 (List.length contended))
  in
  Printf.printf "1901 collides less than 802.11 in %s of contended cases\n"
    (Common.percent
       (frac (fun r -> r.plc.Csma.collision_rate < r.wifi.Csma.collision_rate)))
