type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;
}

let utility rates =
  Array.fold_left (fun acc x -> acc +. log (1.0 +. Float.max 0.0 x)) 0.0 rates

let scheme_list =
  [
    ("conservative opt", None);
    ("EMPoWER", Some Schemes.Empower);
    ("MP-2bp", Some Schemes.Mp_2bp);
    ("MP-w/o-CC", Some Schemes.Mp_wo_cc);
    ("SP", Some Schemes.Sp);
  ]

let run ?(runs = Common.runs_scaled 40) ?(seed = 4) ?jobs topology =
  (* Pure per-replication jobs over pre-split streams (see fig4), with
     the degenerate-optimum filter applied after the in-order merge. *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let flows = Common.random_flows rng inst ~n:3 in
        let g = Builder.graph inst Builder.Hybrid in
        let dom = Domain.of_instance inst Builder.Hybrid g in
        let u_opt = utility (Opt_solver.max_utility Rate_region.Exact g dom ~flows) in
        if u_opt <= 0.1 then None
        else
          Some
            (List.map
               (fun (_, scheme) ->
                 match scheme with
                 | None ->
                   utility (Opt_solver.max_utility Rate_region.Conservative g dom ~flows)
                   /. u_opt
                 | Some s ->
                   utility (Schemes.evaluate (Rng.copy rng) inst s ~flows) /. u_opt)
               scheme_list))
      (Common.split_rngs master runs)
  in
  let kept = List.filter_map Fun.id per_run in
  let ratios =
    List.mapi
      (fun i (nm, _) -> (nm, List.map (fun vs -> List.nth vs i) kept))
      scheme_list
  in
  { topology; runs; ratios }

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf
         "Figure 7 (%s): CDF of U_X / U_optimal, 3 contending flows (%d runs)"
         (Common.topology_name data.topology) data.runs)
    ~xlabel:"ratio"
    ~grid:(Table.linear_grid ~lo:0.6 ~hi:1.02 ~n:15)
    ~series;
  List.iter
    (fun (nm, xs) ->
      if xs <> [] then Printf.printf "mean U_%s / U_opt = %.3f\n" nm (Stats.mean xs))
    data.ratios
