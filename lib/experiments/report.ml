(* Unified run-report renderer: one command turns any artifact the
   harness produces — a JSONL trace, a loadsweep figure, a profile —
   into the same text + JSON health report. See report.mli for the
   SLO definitions. *)

type flow_slo = {
  stats : Obs.Summary.flow_stats;
  lp_bound_mbps : float;
  bound_ratio : float;
}

type trace = {
  summary : Obs.Summary.t;
  slos : flow_slo list;
}

type sweep_bucket = {
  label : string;
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type sweep_point = {
  load : float;
  offered_load : float;
  achieved_load : float;
  arrivals : int;
  completed : int;
  queue_drops : int;
  buckets : sweep_bucket list;
}

type sweep = {
  seed : int;
  capacity_mbps : float;
  sweep_duration : float;
  points : sweep_point list;
}

type prof_entry = {
  name : string;
  events : int;
  wall_s : float;
  ns_per_event : float;
  share_pct : float;
  minor_words : float;
  words_per_event : float;
}

type profile = {
  prof_events : int;
  prof_wall_s : float;
  entries : prof_entry list;
}

type scen_flow = {
  flow : int;
  src : int;
  dst : int;
  baseline_mbps : float;
  goodput_mbps : float;
  availability : float;
  below_slo_s : float;
  reroutes : int;
  flow_route_deaths : int;
  flow_route_restores : int;
  outage_s : float;
}

type scen_event = {
  op : string;
  at : float;
  clear : float;
  dip_mbps : float;
  recover_s : float;
}

type scenario = {
  scen_name : string;
  scen_seed : int;
  scen_duration : float;
  availability_frac : float;
  min_availability : float;
  min_availability_measured : float;
  slo_met : bool;
  scen_route_deaths : int;
  scen_probes : int;
  scen_queue_drops : int;
  scen_fault_events : int;
  scen_flows : scen_flow list;
  scen_events : scen_event list;
}

type source =
  | Trace of trace
  | Sweep of sweep
  | Profile of profile
  | Scenario of scenario

type t = { path : string; source : source }

(* --- SLO computation --- *)

(* The controller's final rate vector is the LP allocation the flow
   converged to; its sum is the goodput the optimization promised.
   0 when the trace carried no rate update (then no bound is known). *)
let slo_of_stats (st : Obs.Summary.flow_stats) =
  let bound = Array.fold_left ( +. ) 0.0 st.Obs.Summary.final_rates in
  {
    stats = st;
    lp_bound_mbps = bound;
    bound_ratio =
      (if bound > 0.0 then st.Obs.Summary.goodput_mbps /. bound else Float.nan);
  }

let trace_of_summary summary =
  { summary; slos = List.map slo_of_stats summary.Obs.Summary.flows }

let bucket_p99 pt label =
  List.find_map
    (fun b -> if b.label = label && b.count > 0 then Some b.p99 else None)
    pt.buckets

(* p99 FCT of the all-sizes bucket must not improve as load grows —
   the sweep's built-in sanity SLO (same check the loadsweep tests
   pin, minus the tolerance: here a violation is only flagged). *)
let sweep_p99_monotone s =
  let rec go prev = function
    | [] -> true
    | pt :: rest -> (
      match bucket_p99 pt "all" with
      | None -> go prev rest
      | Some p99 -> (
        match prev with
        | Some p when p99 < p -> false
        | _ -> go (Some p99) rest))
  in
  go None s.points

(* --- parsing --- *)

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Obs.Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let list_field name j =
  match Obs.Json.member name j with
  | Some (Obs.Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing or mistyped field %S" name)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* y = f x in
      go (y :: acc) rest
  in
  go [] l

let sweep_of_json j =
  let fl = Obs.Json.to_float_opt and it = Obs.Json.to_int_opt in
  let bucket b =
    let* label = field "label" Obs.Json.to_string_opt b in
    let* count = field "count" it b in
    let* p50 = field "p50" fl b in
    let* p95 = field "p95" fl b in
    let* p99 = field "p99" fl b in
    Ok { label; count; p50; p95; p99 }
  in
  let point p =
    let* load = field "load" fl p in
    let* offered_load = field "offered_load" fl p in
    let* achieved_load = field "achieved_load" fl p in
    let* arrivals = field "arrivals" it p in
    let* completed = field "completed" it p in
    let* queue_drops = field "queue_drops" it p in
    let* bs = list_field "buckets" p in
    let* buckets = map_result bucket bs in
    Ok { load; offered_load; achieved_load; arrivals; completed; queue_drops; buckets }
  in
  let* seed = field "seed" it j in
  let* capacity_mbps = field "capacity_mbps" fl j in
  let* sweep_duration = field "duration" fl j in
  let* pts = list_field "points" j in
  let* points = map_result point pts in
  Ok { seed; capacity_mbps; sweep_duration; points }

let profile_of_json j =
  let fl = Obs.Json.to_float_opt and it = Obs.Json.to_int_opt in
  let entry e =
    let* name = field "name" Obs.Json.to_string_opt e in
    let* events = field "events" it e in
    let* wall_s = field "wall_s" fl e in
    let* ns_per_event = field "ns_per_event" fl e in
    let* share_pct = field "share_pct" fl e in
    let* minor_words = field "minor_words" fl e in
    let* words_per_event = field "words_per_event" fl e in
    Ok { name; events; wall_s; ns_per_event; share_pct; minor_words; words_per_event }
  in
  let* prof_events = field "events" it j in
  let* prof_wall_s = field "wall_s" fl j in
  let* es = list_field "categories" j in
  let* entries = map_result entry es in
  Ok { prof_events; prof_wall_s; entries }

let scenario_of_json j =
  let fl = Obs.Json.to_float_opt and it = Obs.Json.to_int_opt in
  let flow fj =
    let* flow = field "flow" it fj in
    let* src = field "src" it fj in
    let* dst = field "dst" it fj in
    let* baseline_mbps = field "baseline_mbps" fl fj in
    let* goodput_mbps = field "goodput_mbps" fl fj in
    let* availability = field "availability" fl fj in
    let* below_slo_s = field "below_slo_s" fl fj in
    let* reroutes = field "reroutes" it fj in
    let* flow_route_deaths = field "route_deaths" it fj in
    let* flow_route_restores = field "route_restores" it fj in
    let* outage_s = field "outage_s" fl fj in
    Ok
      {
        flow; src; dst; baseline_mbps; goodput_mbps; availability; below_slo_s;
        reroutes; flow_route_deaths; flow_route_restores; outage_s;
      }
  in
  let event ej =
    let* op = field "op" Obs.Json.to_string_opt ej in
    let* at = field "at" fl ej in
    let* clear = field "clear" fl ej in
    let* dip_mbps = field "dip_mbps" fl ej in
    let* recover_s = field "recover_s" fl ej in
    Ok { op; at; clear; dip_mbps; recover_s }
  in
  let* scen_name = field "name" Obs.Json.to_string_opt j in
  let* scen_seed = field "seed" it j in
  let* scen_duration = field "duration" fl j in
  let* slo =
    match Obs.Json.member "slo" j with
    | Some (Obs.Json.Obj _ as s) -> Ok s
    | _ -> Error "missing or mistyped field \"slo\""
  in
  let* availability_frac = field "availability_frac" fl slo in
  let* min_availability = field "min_availability" fl slo in
  let* min_availability_measured = field "min_availability" fl j in
  let* slo_met = field "slo_met" Obs.Json.to_bool_opt j in
  let* scen_route_deaths = field "route_deaths" it j in
  let* scen_probes = field "probes" it j in
  let* scen_queue_drops = field "queue_drops" it j in
  let* scen_fault_events = field "fault_events" it j in
  let* fs = list_field "flows" j in
  let* scen_flows = map_result flow fs in
  let* es = list_field "events" j in
  let* scen_events = map_result event es in
  Ok
    {
      scen_name; scen_seed; scen_duration; availability_frac; min_availability;
      min_availability_measured; slo_met; scen_route_deaths; scen_probes;
      scen_queue_drops; scen_fault_events; scen_flows; scen_events;
    }

let read_all path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let of_trace_file ?duration path =
  let* events = Obs.Summary.read_file path in
  let* duration =
    match duration with
    | Some d when d > 0.0 -> Ok d
    | Some _ -> Error "report: duration must be positive"
    | None -> (
      (* Without an explicit horizon, report over the trace's own
         span (last event time). *)
      match events with
      | [] -> Error (path ^ ": empty trace (pass an explicit duration)")
      | evs ->
        Ok (List.fold_left (fun a e -> Float.max a (Obs.Trace.time e)) 0.0 evs))
  in
  if duration <= 0.0 then Error (path ^ ": trace spans zero time")
  else
    Ok
      {
        path;
        source = Trace (trace_of_summary (Obs.Summary.of_events ~duration events));
      }

let of_file ?duration path =
  let* content = read_all path in
  let line = String.trim (first_line content) in
  if line = "" then Error (path ^ ": empty file")
  else
    let* j =
      Result.map_error (fun e -> path ^ ": " ^ e) (Obs.Json.parse line)
    in
    match Obs.Json.member "ev" j with
    | Some _ -> of_trace_file ?duration path
    | None -> (
      (* Single-document figure: the whole file is one JSON value. *)
      let* j =
        Result.map_error (fun e -> path ^ ": " ^ e) (Obs.Json.parse content)
      in
      match Option.bind (Obs.Json.member "figure" j) Obs.Json.to_string_opt with
      | Some "loadsweep" ->
        let* s = Result.map_error (fun e -> path ^ ": " ^ e) (sweep_of_json j) in
        Ok { path; source = Sweep s }
      | Some "profile" ->
        let* p =
          Result.map_error (fun e -> path ^ ": " ^ e) (profile_of_json j)
        in
        Ok { path; source = Profile p }
      | Some "scenario" ->
        let* sc =
          Result.map_error (fun e -> path ^ ": " ^ e) (scenario_of_json j)
        in
        Ok { path; source = Scenario sc }
      | Some other ->
        Error (Printf.sprintf "%s: unsupported figure %S" path other)
      | None ->
        Error
          (path
         ^ ": not a trace (no \"ev\"), nor a figure document (no \"figure\")"))

(* --- rendering --- *)

let i n = Obs.Json.Int n
let f x = Obs.Json.Float x
let s x = Obs.Json.String x

let trace_json (tr : trace) =
  let sm = tr.summary in
  let flow (slo : flow_slo) =
    let st = slo.stats in
    Obs.Json.Obj
      [
        ("flow", i st.Obs.Summary.flow);
        ("delivered_frames", i st.Obs.Summary.delivered_frames);
        ("delivered_bytes", i st.Obs.Summary.delivered_bytes);
        ("goodput_mbps", f st.Obs.Summary.goodput_mbps);
        ("lp_bound_mbps", f slo.lp_bound_mbps);
        ("bound_ratio", f slo.bound_ratio);
        ("p50_delay", f st.Obs.Summary.p50_delay);
        ("p95_delay", f st.Obs.Summary.p95_delay);
        ("p99_delay", f st.Obs.Summary.p99_delay);
        ("max_delay", f st.Obs.Summary.max_delay);
      ]
  in
  let r = sm.Obs.Summary.recovery in
  [
    ("duration", f sm.Obs.Summary.duration);
    ("events", i sm.Obs.Summary.events);
    ("flows", Obs.Json.List (List.map flow tr.slos));
    ( "drops",
      Obs.Json.Obj
        (List.map
           (fun (reason, n) -> (Obs.Trace.drop_reason_name reason, i n))
           sm.Obs.Summary.drops) );
    ("collisions", i sm.Obs.Summary.collisions);
    ("grants", i sm.Obs.Summary.grants);
    ( "recovery",
      Obs.Json.Obj
        [
          ("route_deaths", i r.Obs.Summary.route_deaths);
          ("route_restores", i r.Obs.Summary.route_restores);
          ("route_probes", i r.Obs.Summary.route_probes);
          ("price_resets", i r.Obs.Summary.price_resets);
          ("max_detect_s", f r.Obs.Summary.max_detect_s);
          ("max_down_s", f r.Obs.Summary.max_down_s);
        ] );
  ]

let sweep_json (sw : sweep) =
  let bucket b =
    Obs.Json.Obj
      [
        ("label", s b.label);
        ("count", i b.count);
        ("p50", f b.p50);
        ("p95", f b.p95);
        ("p99", f b.p99);
      ]
  in
  let point pt =
    Obs.Json.Obj
      [
        ("load", f pt.load);
        ("offered_load", f pt.offered_load);
        ("achieved_load", f pt.achieved_load);
        ("arrivals", i pt.arrivals);
        ("completed", i pt.completed);
        ("queue_drops", i pt.queue_drops);
        ("buckets", Obs.Json.List (List.map bucket pt.buckets));
      ]
  in
  [
    ("seed", i sw.seed);
    ("capacity_mbps", f sw.capacity_mbps);
    ("duration", f sw.sweep_duration);
    ("p99_monotone", Obs.Json.Bool (sweep_p99_monotone sw));
    ("points", Obs.Json.List (List.map point sw.points));
  ]

let profile_json (p : profile) =
  let entry e =
    Obs.Json.Obj
      [
        ("name", s e.name);
        ("events", i e.events);
        ("wall_s", f e.wall_s);
        ("ns_per_event", f e.ns_per_event);
        ("share_pct", f e.share_pct);
        ("minor_words", f e.minor_words);
        ("words_per_event", f e.words_per_event);
      ]
  in
  [
    ("events", i p.prof_events);
    ("wall_s", f p.prof_wall_s);
    ("hotspots", Obs.Json.List (List.map entry p.entries));
  ]

let scenario_json (sc : scenario) =
  let flow fw =
    Obs.Json.Obj
      [
        ("flow", i fw.flow);
        ("src", i fw.src);
        ("dst", i fw.dst);
        ("baseline_mbps", f fw.baseline_mbps);
        ("goodput_mbps", f fw.goodput_mbps);
        ("availability", f fw.availability);
        ("below_slo_s", f fw.below_slo_s);
        ("reroutes", i fw.reroutes);
        ("route_deaths", i fw.flow_route_deaths);
        ("route_restores", i fw.flow_route_restores);
        ("outage_s", f fw.outage_s);
      ]
  in
  let event e =
    Obs.Json.Obj
      [
        ("op", s e.op);
        ("at", f e.at);
        ("clear", f e.clear);
        ("dip_mbps", f e.dip_mbps);
        ("recover_s", f e.recover_s);
      ]
  in
  [
    ("name", s sc.scen_name);
    ("seed", i sc.scen_seed);
    ("duration", f sc.scen_duration);
    ( "slo",
      Obs.Json.Obj
        [
          ("availability_frac", f sc.availability_frac);
          ("min_availability", f sc.min_availability);
        ] );
    ("min_availability", f sc.min_availability_measured);
    ("slo_met", Obs.Json.Bool sc.slo_met);
    ("route_deaths", i sc.scen_route_deaths);
    ("probes", i sc.scen_probes);
    ("queue_drops", i sc.scen_queue_drops);
    ("fault_events", i sc.scen_fault_events);
    ("flows", Obs.Json.List (List.map flow sc.scen_flows));
    ("events", Obs.Json.List (List.map event sc.scen_events));
  ]

let to_json t =
  let source_name, payload =
    match t.source with
    | Trace tr -> ("trace", trace_json tr)
    | Sweep sw -> ("loadsweep", sweep_json sw)
    | Profile p -> ("profile", profile_json p)
    | Scenario sc -> ("scenario", scenario_json sc)
  in
  Obs.Json.Obj
    (("figure", s "report") :: ("source", s source_name) :: ("path", s t.path)
    :: payload)

let ms x = x *. 1e3

let print_trace out path (tr : trace) =
  let pr fmt = Printf.fprintf out fmt in
  let sm = tr.summary in
  pr "=== run report: %s (trace, %d events, %.3f s) ===\n" path
    sm.Obs.Summary.events sm.Obs.Summary.duration;
  pr "SLOs:\n";
  List.iter
    (fun (slo : flow_slo) ->
      let st = slo.stats in
      pr "  flow %d: goodput %.3f Mbit/s" st.Obs.Summary.flow
        st.Obs.Summary.goodput_mbps;
      if slo.lp_bound_mbps > 0.0 then
        pr " vs LP bound %.3f (%.1f%%)" slo.lp_bound_mbps
          (100.0 *. slo.bound_ratio);
      if st.Obs.Summary.delivered_frames > 0 then
        pr ", delay p50/p95/p99 %.2f/%.2f/%.2f ms"
          (ms st.Obs.Summary.p50_delay)
          (ms st.Obs.Summary.p95_delay)
          (ms st.Obs.Summary.p99_delay);
      pr "\n")
    tr.slos;
  let r = sm.Obs.Summary.recovery in
  if r.Obs.Summary.route_deaths > 0 || r.Obs.Summary.route_probes > 0 then
    pr
      "severance: %d route deaths, %d restores, %d probes, %d price resets, \
       worst detect %.3f s, worst outage %.3f s\n"
      r.Obs.Summary.route_deaths r.Obs.Summary.route_restores
      r.Obs.Summary.route_probes r.Obs.Summary.price_resets
      r.Obs.Summary.max_detect_s r.Obs.Summary.max_down_s;
  pr "counters: collisions %d, grants %d" sm.Obs.Summary.collisions
    sm.Obs.Summary.grants;
  List.iter
    (fun (reason, n) -> pr ", %s %d" (Obs.Trace.drop_reason_name reason) n)
    sm.Obs.Summary.drops;
  pr "\n"

let print_sweep out path (sw : sweep) =
  let pr fmt = Printf.fprintf out fmt in
  pr "=== run report: %s (loadsweep, seed %d, %.0f Mbit/s capacity) ===\n" path
    sw.seed sw.capacity_mbps;
  List.iter
    (fun pt ->
      pr
        "load %.2f: offered %.3f, achieved %.3f, completed %d/%d, queue drops \
         %d\n"
        pt.load pt.offered_load pt.achieved_load pt.completed pt.arrivals
        pt.queue_drops;
      pr "  p99 FCT:";
      List.iter
        (fun b ->
          if b.count > 0 then pr " %s %.1f ms (n=%d)" b.label (ms b.p99) b.count)
        pt.buckets;
      pr "\n")
    sw.points;
  pr "p99(all) monotone nondecreasing in load: %s\n"
    (if sweep_p99_monotone sw then "yes" else "NO — inspect the sweep")

let print_profile out path (p : profile) =
  let pr fmt = Printf.fprintf out fmt in
  pr "=== run report: %s (profile, %d events, %.4f s attributed) ===\n" path
    p.prof_events p.prof_wall_s;
  pr "%-12s %10s %10s %9s %8s %12s %9s\n" "subsystem" "events" "wall_s"
    "ns/event" "share" "minor_words" "words/ev";
  List.iter
    (fun e ->
      pr "%-12s %10d %10.4f %9.0f %7.1f%% %12.0f %9.1f\n" e.name e.events
        e.wall_s e.ns_per_event e.share_pct e.minor_words e.words_per_event)
    p.entries

let print_scenario out path (sc : scenario) =
  let pr fmt = Printf.fprintf out fmt in
  pr "=== run report: %s (scenario %S, seed %d, %.1f s) ===\n" path sc.scen_name
    sc.scen_seed sc.scen_duration;
  pr "SLO: min availability %.1f%% vs threshold %.1f%% (bins >= %.0f%% of \
      fault-free baseline) -> %s\n"
    (100.0 *. sc.min_availability_measured)
    (100.0 *. sc.min_availability)
    (100.0 *. sc.availability_frac)
    (if sc.slo_met then "PASS" else "FAIL");
  List.iter
    (fun fw ->
      pr
        "  flow %d (%d -> %d): availability %.1f%% (%.0f s below SLO), \
         goodput %.3f vs baseline %.3f Mbit/s, %d deaths / %d restores, \
         outage %.1f s, %d reroutes\n"
        fw.flow fw.src fw.dst
        (100.0 *. fw.availability)
        fw.below_slo_s fw.goodput_mbps fw.baseline_mbps fw.flow_route_deaths
        fw.flow_route_restores fw.outage_s fw.reroutes)
    sc.scen_flows;
  if sc.scen_events <> [] then begin
    pr "churn events:\n";
    List.iter
      (fun e ->
        pr "  %-16s at %6.2f  clear %6.2f  dip %8.3f Mbit/s  recover %s\n" e.op
          e.at e.clear e.dip_mbps
          (if e.recover_s < 0.0 then "never"
           else Printf.sprintf "%.2f s" e.recover_s))
      sc.scen_events
  end;
  pr "counters: %d route deaths, %d probes, %d queue drops, %d fault events\n"
    sc.scen_route_deaths sc.scen_probes sc.scen_queue_drops sc.scen_fault_events

let print ?(out = stdout) t =
  match t.source with
  | Trace tr -> print_trace out t.path tr
  | Sweep sw -> print_sweep out t.path sw
  | Profile p -> print_profile out t.path p
  | Scenario sc -> print_scenario out t.path sc
