type outcome = {
  scenario : string;
  result : Engine.result;
  duration : float;
}

type scenario = {
  name : string;
  about : string;
  exec : ?trace:Obs.Trace.sink -> ?prof:Obs.Prof.t -> unit -> outcome;
}

let saturated_flow net ~src ~dst =
  let routes, rates = Runner.routes_and_rates net Schemes.Empower ~src ~dst in
  if routes = [] then
    invalid_arg (Printf.sprintf "trace scenario: no route %d -> %d" src dst);
  Runner.flow_spec ~src ~dst (routes, rates)

let residential_net seed =
  let inst = Residential.generate (Rng.create seed) in
  Runner.network inst Schemes.Empower

let testbed_net seed =
  let inst = Testbed.generate (Rng.create seed) in
  Runner.network inst Schemes.Empower

let run_engine ?trace ?prof net ~flows ~link_events ~duration ~seed name =
  let result =
    Engine.run ?trace ?prof ~link_events (Rng.create seed) net.Empower.g
      net.Empower.dom ~flows ~duration
  in
  { scenario = name; result; duration }

let scenarios =
  [
    {
      name = "mini";
      about = "1 s saturated flow on the fig4 residential draw (CI-sized)";
      exec =
        (fun ?trace ?prof () ->
          let net = residential_net 77 in
          run_engine ?trace ?prof net
            ~flows:[ saturated_flow net ~src:0 ~dst:9 ]
            ~link_events:[] ~duration:1.0 ~seed:1 "mini");
    };
    {
      name = "fig4";
      about = "the figure-4 scenario: saturated EMPoWER flow 0->9, residential seed 77";
      exec =
        (fun ?trace ?prof () ->
          let net = residential_net 77 in
          run_engine ?trace ?prof net
            ~flows:[ saturated_flow net ~src:0 ~dst:9 ]
            ~link_events:[] ~duration:8.0 ~seed:1 "fig4");
    };
    {
      name = "failure";
      about = "testbed flow 0->12 with a mid-run link failure and recovery";
      exec =
        (fun ?trace ?prof () ->
          let net = testbed_net 4242 in
          let flow = saturated_flow net ~src:0 ~dst:12 in
          (* Fail the first link of the flow's first route at 3 s and
             bring it back at 4.5 s: exercises Link_event,
             Backlog_cleared and the controller's failure reaction.
             Expressed as a Fault plan — it compiles to exactly the
             [(3.0, l, 0.0); (4.5, l, cap)] schedule this scenario
             was born with, so the numbers are unchanged. *)
          let l = List.hd (List.hd flow.Engine.routes).Paths.links in
          let cap = Multigraph.capacity net.Empower.g l in
          let plan =
            [
              Fault.Link_down { at = 3.0; link = l };
              Fault.Link_up { at = 4.5; link = l; capacity = cap };
            ]
          in
          let compiled = Fault.compile net.Empower.g plan in
          run_engine ?trace ?prof net ~flows:[ flow ]
            ~link_events:compiled.Fault.link_events ~duration:6.0 ~seed:2
            "failure");
    };
    {
      name = "tcp";
      about = "testbed TCP download 0->12 (token-bucket policing, reordering)";
      exec =
        (fun ?trace ?prof () ->
          let net = testbed_net 4242 in
          let routes, rates =
            Runner.routes_and_rates net Schemes.Empower ~src:0 ~dst:12
          in
          if routes = [] then invalid_arg "trace scenario: no route 0 -> 12";
          let flow =
            Runner.flow_spec
              ~workload:(Workload.File { bytes = 20_000_000 })
              ~transport:Engine.Tcp_transport ~src:0 ~dst:12 (routes, rates)
          in
          run_engine ?trace ?prof net ~flows:[ flow ] ~link_events:[] ~duration:8.0
            ~seed:3 "tcp");
    };
  ]

let names () = List.map (fun s -> s.name) scenarios

let find name = List.find_opt (fun s -> s.name = name) scenarios

let goodput_mbps (fr : Engine.flow_result) ~duration =
  float_of_int fr.Engine.received_bytes *. 8e-6 /. duration

(* The instrumentation must tell the truth: a replayed trace has to
   reproduce the engine's own accounting. Byte counts are integers
   (exact); goodput must agree to 1e-9 (the acceptance bar); the mean
   delay is an exact stream on both sides; p95 compares the engine's
   0.5%-error sketch against the replay's exact order statistic. *)
let cross_check (o : outcome) (s : Obs.Summary.t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  Array.iteri
    (fun fid (fr : Engine.flow_result) ->
      let st =
        match Obs.Summary.flow_stats s fid with
        | Some st -> st
        | None ->
          {
            Obs.Summary.flow = fid;
            delivered_frames = 0;
            delivered_bytes = 0;
            goodput_mbps = 0.0;
            mean_delay = 0.0;
            p50_delay = 0.0;
            p95_delay = 0.0;
            p99_delay = 0.0;
            max_delay = 0.0;
            rate_updates = 0;
            final_rates = [||];
          }
      in
      if st.Obs.Summary.delivered_bytes <> fr.Engine.received_bytes then
        err "flow %d: trace delivers %d bytes, engine reports %d" fid
          st.Obs.Summary.delivered_bytes fr.Engine.received_bytes;
      let gp = goodput_mbps fr ~duration:o.duration in
      if Float.abs (st.Obs.Summary.goodput_mbps -. gp) > 1e-9 then
        err "flow %d: trace goodput %.12f Mbit/s, engine %.12f" fid
          st.Obs.Summary.goodput_mbps gp;
      let rel a b = Float.abs (a -. b) /. Float.max 1e-12 (Float.abs b) in
      if rel st.Obs.Summary.mean_delay fr.Engine.mean_delay > 1e-9 then
        err "flow %d: trace mean delay %.9g s, engine %.9g" fid
          st.Obs.Summary.mean_delay fr.Engine.mean_delay;
      if
        st.Obs.Summary.delivered_frames > 0
        && rel st.Obs.Summary.p95_delay fr.Engine.p95_delay > 0.02
      then
        err "flow %d: trace p95 delay %.9g s vs engine sketch %.9g (>2%%)" fid
          st.Obs.Summary.p95_delay fr.Engine.p95_delay;
      if
        st.Obs.Summary.rate_updates > 0
        && st.Obs.Summary.final_rates <> fr.Engine.final_rates
      then err "flow %d: final controller rates diverge" fid)
    o.result.Engine.flows;
  let reason_drops r =
    match List.assoc_opt r s.Obs.Summary.drops with Some n -> n | None -> 0
  in
  let traced_queue_drops =
    reason_drops Obs.Trace.Queue_overflow
    + reason_drops Obs.Trace.Link_down
    + reason_drops Obs.Trace.Backlog_cleared
  in
  if traced_queue_drops <> o.result.Engine.queue_drops then
    err "trace shows %d queue drops, engine reports %d" traced_queue_drops
      o.result.Engine.queue_drops;
  match !errors with [] -> Ok () | es -> Error (String.concat "\n" (List.rev es))
