(** Footnote 7: single-path metric shoot-out.

    The paper: "We also implemented other single-path procedures
    employing different metrics, such as IRU [44], ETT [7], and
    CATT [12]; all gave worse results in our experiments." This
    experiment reruns that comparison: on random residential and
    enterprise draws, each metric picks a single route for a random
    flow; the achieved rate is the route's R(P) under the congestion
    controller. *)

type data = {
  topology : Common.topology;
  runs : int;
  mean_rate : (string * float) list;  (** per metric *)
  empower_wins : (string * float) list;
      (** fraction of runs where EMPoWER's metric is at least as good
          as the alternative *)
}

val run : ?runs:int -> ?seed:int -> ?jobs:int -> Common.topology -> data
(** [jobs] as in {!Fig4.run}: replications fan out over a domain
    pool; bit-identical for any job count. *)

val print : data -> unit
