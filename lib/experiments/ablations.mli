(** Ablations of EMPoWER's design choices (DESIGN.md section 4).

    Each ablation sweeps one knob on a batch of random residential
    topologies with a single saturated flow and reports the mean
    achieved throughput (and where relevant, routing cost):

    - [n_shortest]: the n of n-shortest (paper: 5) — route diversity
      vs exploration cost;
    - [csc]: the channel-switching cost on/off — does favouring
      technology alternation pay?
    - [delta]: the constraint margin of (3) — throughput given away
      for queue headroom;
    - [tree_depth]: capping the exploration tree (depth 1 = best
      isolated route);
    - [gain]: the proximal weight of the controller — convergence
      speed vs stability. *)

type point = {
  label : string;
  mean_rate : float;
  mean_aux : float;  (** knob-specific second metric (see [print]) *)
}

type data = {
  name : string;
  aux_label : string;
  points : point list;
  runs : int;
}

val n_shortest : ?runs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** Sweep n over 1, 2, 3, 5, 8; aux = explored tree vertices. [jobs]
    fans the per-case work out over a domain pool (see {!Fig4.run});
    bit-identical for any job count — same for the other sweeps. *)

val csc : ?runs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** CSC on vs off; aux = mean hop count of selected routes. *)

val delta : ?runs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** Sweep δ over 0, 0.05, 0.1, 0.2, 0.3; aux = fraction of the δ=0
    rate retained. *)

val tree_depth : ?runs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** Depth cap 1, 2, 3, unlimited; aux = number of routes used. *)

val gain : ?runs:int -> ?seed:int -> ?jobs:int -> unit -> data
(** Proximal gain 5-200; aux = convergence slot (cold start). *)

val delta_delay : ?seed:int -> ?duration:float -> ?jobs:int -> unit -> data
(** Packet-level sweep of δ on a saturated testbed flow: mean rate vs
    mean one-way frame delay (ms). Section 4.1's motivation for the
    margin: pushing airtime toward 1 buys little rate and costs a lot
    of queueing delay. *)

val print : data -> unit
