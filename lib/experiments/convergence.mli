(** Section 5.2.2's convergence comparison.

    The paper: EMPoWER reaches steady state (within 1% of the final
    throughput) in 90 slots on average in the residential topology
    (77 enterprise), while the backpressure-based optimal schemes
    need more than 3000 (resp. 10000) slots — good routes are only
    used after queues on bad routes fill up. One slot = one 100 ms
    ACK interval for EMPoWER, one scheduler invocation for
    backpressure.

    We report EMPoWER from both cold start (x = 0) and its actual
    warm start (injection begins at the routing-estimated rates),
    plus the backpressure dynamic. *)

type data = {
  topology : Common.topology;
  runs : int;
  empower_cold : float list;  (** slots to converge, x_init = 0 *)
  empower_warm : float list;  (** slots to converge, routing init *)
  backpressure : float list;  (** slots to converge *)
}

val run : ?runs:int -> ?seed:int -> ?bp_slots:int -> ?jobs:int -> Common.topology -> data
(** Default 30 runs, seed 5, backpressure horizon 20000 slots (runs
    that have not settled by the horizon are recorded at the
    horizon). [jobs] as in {!Fig4.run}: parallel and bit-identical
    for any job count. *)

val print : data -> unit
