type cell = { mean : float; std : float; runs : int }

type data = {
  tiny : cell * cell;
  short : cell * cell;
  long_ : cell * cell;
  conc_main : cell * cell;
  conc_side : cell * cell;
  long_bytes : int;
}

let cell_of xs = { mean = Stats.mean xs; std = Stats.stddev xs; runs = List.length xs }

(* One run: the 6->13 download (plus, for Conc, the 12->8 Poisson
   files) with or without congestion control. Returns (main download
   duration, sum of side download durations). *)
let one_run inst ~cc ~seed ~main_bytes ~side ~side_gap =
  let net = Runner.network inst Schemes.Empower in
  let src = Testbed.node 6 and dst = Testbed.node 13 in
  let rr = Runner.routes_and_rates net Schemes.Empower ~src ~dst in
  let main_rate = List.fold_left ( +. ) 0.0 (snd rr) in
  let main_spec =
    Runner.flow_spec ~transport:Engine.Tcp_transport
      ~workload:(Workload.File { bytes = main_bytes }) ~src ~dst rr
  in
  let side_spec =
    if not side then []
    else begin
      let s = Testbed.node 12 and d = Testbed.node 8 in
      let rr2 = Runner.routes_and_rates net Schemes.Empower ~src:s ~dst:d in
      [
        Runner.flow_spec ~transport:Engine.Tcp_transport
          ~workload:
            (Workload.Poisson_files { bytes = 5_000_000; mean_gap_s = side_gap; count = 5 })
          ~src:s ~dst:d rr2;
      ]
    end
  in
  let est = float_of_int main_bytes *. 8e-6 /. Float.max 1.0 (main_rate *. 0.25) in
  (* Horizon: generous for the main transfer, and past the last
     Poisson arrival plus its transfer for the side files. *)
  let duration =
    Float.max 60.0
      (Float.min 4000.0 ((est *. 4.0) +. (side_gap *. 7.0) +. (if side then 60.0 else 0.0)))
  in
  (* Downloads ride TCP (Section 6.4): with EMPoWER the controller
     paces TCP inside the margin and the destination equalizes route
     delays; without CC, TCP is striped over the same routes and left
     to fend against reordering and contention. *)
  let config =
    { Engine.default_config with delta = 0.05; enable_cc = cc; delay_equalize = cc }
  in
  let res = Empower.simulate ~config ~seed net ~flows:(main_spec :: side_spec) ~duration in
  let main_time =
    match res.Engine.flows.(0).Engine.completions with
    | (_, d) :: _ -> Some d
    | [] -> None
  in
  let side_time =
    if not side then None
    else begin
      let cs = res.Engine.flows.(1).Engine.completions in
      if List.length cs < 5 then None
      else Some (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 cs)
    end
  in
  (main_time, side_time)

let experiment ?jobs inst ~seed ~repeats ~main_bytes ~side ~side_gap =
  (* Repeats are pure jobs keyed by their derived seed; the merged
     lists are reversed to reproduce the historical consing order the
     mean/std summation saw. *)
  let run_scheme ~cc base =
    let per =
      Exec.mapi ?jobs
        (fun i () -> one_run inst ~cc ~seed:(base + i) ~main_bytes ~side ~side_gap)
        (List.init repeats (fun _ -> ()))
    in
    (List.rev (List.filter_map fst per), List.rev (List.filter_map snd per))
  in
  let cc_m, cc_s = run_scheme ~cc:true (seed * 17) in
  let no_m, no_s = run_scheme ~cc:false ((seed * 17) + 7000) in
  ((cell_of cc_m, cell_of no_m), (cell_of cc_s, cell_of no_s))

let run ?(seed = 12) ?(repeats = 5) ?(long_scale = 0.05) ?jobs () =
  let inst = Testbed.generate (Rng.create 4242) in
  let long_bytes = int_of_float (2e9 *. long_scale) in
  let long_repeats = max 2 (repeats * 3 / 5) in
  let tiny, _ =
    experiment ?jobs inst ~seed:(seed + 1) ~repeats ~main_bytes:100_000 ~side:false
      ~side_gap:0.0
  in
  let short, _ =
    experiment ?jobs inst ~seed:(seed + 2) ~repeats ~main_bytes:5_000_000 ~side:false
      ~side_gap:0.0
  in
  let long_, _ =
    experiment ?jobs inst ~seed:(seed + 3) ~repeats:long_repeats ~main_bytes:long_bytes
      ~side:false ~side_gap:0.0
  in
  let conc_main, conc_side =
    experiment ?jobs inst ~seed:(seed + 4) ~repeats:long_repeats ~main_bytes:long_bytes
      ~side:true ~side_gap:(60.0 *. long_scale /. 0.05)
  in
  { tiny; short; long_; conc_main; conc_side; long_bytes }

let print data =
  print_endline "Table 1: download times (s), EMPoWER vs MP-w/o-CC";
  Printf.printf "(Long/Conc main file scaled to %.0f MB)\n"
    (float_of_int data.long_bytes /. 1e6);
  let fmt c =
    if c.runs = 0 then "-" else Printf.sprintf "%.2f +/- %.2f" c.mean c.std
  in
  let row name (cc, no) =
    let speedup =
      if cc.runs > 0 && no.runs > 0 && cc.mean > 0.0 then
        Printf.sprintf "%.0f%%" (100.0 *. ((no.mean /. cc.mean) -. 1.0))
      else "-"
    in
    [ name; fmt cc; fmt no; speedup ]
  in
  Table.print_table
    ~header:[ "experiment"; "EMPoWER"; "MP-w/o-CC"; "w/o-CC slower by" ]
    ~rows:
      [
        row "Tiny, F.6-13 (100 kB)" data.tiny;
        row "Short, F.6-13 (5 MB)" data.short;
        row "Long, F.6-13" data.long_;
        row "Conc, F.6-13" data.conc_main;
        row "Conc, F.12-8 (25 MB)" data.conc_side;
      ]
