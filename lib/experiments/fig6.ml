type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;
}

let scheme_list =
  [
    ("conservative opt", None);
    ("EMPoWER", Some Schemes.Empower);
    ("MP-2bp", Some Schemes.Mp_2bp);
    ("MP-w/o-CC", Some Schemes.Mp_wo_cc);
    ("SP", Some Schemes.Sp);
  ]

let run ?(runs = Common.runs_scaled 60) ?(seed = 3) ?jobs topology =
  (* Pure per-replication jobs over pre-split streams (see fig4); a
     run whose exact optimum is degenerate yields [None] and is
     filtered out after the in-order merge, like the historical
     [if t_opt > 0.1] guard. *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let src, dst = Common.random_flow rng inst in
        let g = Builder.graph inst Builder.Hybrid in
        let dom = Domain.of_instance inst Builder.Hybrid g in
        let t_opt = Opt_solver.max_throughput Rate_region.Exact g dom ~src ~dst in
        if t_opt <= 0.1 then None
        else
          Some
            (List.map
               (fun (_, scheme) ->
                 match scheme with
                 | None ->
                   Opt_solver.max_throughput Rate_region.Conservative g dom ~src ~dst
                   /. t_opt
                 | Some s ->
                   (Schemes.evaluate (Rng.copy rng) inst s ~flows:[ (src, dst) ]).(0)
                   /. t_opt)
               scheme_list))
      (Common.split_rngs master runs)
  in
  let kept = List.filter_map Fun.id per_run in
  let ratios =
    List.mapi
      (fun i (nm, _) -> (nm, List.map (fun vs -> List.nth vs i) kept))
      scheme_list
  in
  { topology; runs; ratios }

let fraction_within data ~scheme ~loss =
  match List.assoc_opt scheme data.ratios with
  | None | Some [] -> 0.0
  | Some xs -> Stats.fraction_at_least xs (1.0 -. loss)

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf "Figure 6 (%s): CDF of T_X / T_optimal (%d runs)"
         (Common.topology_name data.topology) data.runs)
    ~xlabel:"ratio"
    ~grid:(Table.linear_grid ~lo:0.3 ~hi:1.05 ~n:16)
    ~series;
  Printf.printf "EMPoWER within 10%% of conservative opt... EMPoWER>=0.9: %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.10));
  Printf.printf "EMPoWER at optimal (>= 0.99 of T_opt): %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.01));
  Printf.printf "EMPoWER within 15%% of optimal: %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.15))
