type data = {
  topology : Common.topology;
  runs : int;
  empower_cold : float list;
  empower_warm : float list;
  backpressure : float list;
}

let empower_convergence g dom ~src ~dst ~warm =
  let comb = Multipath.find g dom ~src ~dst in
  match Multipath.routes comb with
  | [] -> None
  | routes ->
    let p = Problem.make g dom ~flows:[ routes ] in
    let x_init =
      if warm then Some (Array.of_list (List.map snd comb.Multipath.paths))
      else None
    in
    let res = Multi_cc.solve ?x_init ~slots:6000 p in
    Option.map float_of_int (Cc_result.convergence_slot res)

let run ?(runs = Common.runs_scaled 30) ?(seed = 5) ?(bp_slots = 20000) ?jobs topology =
  (* Each replication is a pure job returning the (cold, warm, bp)
     triple, or [None] when the cold start never converges (the
     historical loop skipped the whole run then). Streams are
     pre-split in submission order, so any job count is bit-identical
     to the sequential loop. *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let src, dst = Common.random_flow rng inst in
        let g = Builder.graph inst Builder.Hybrid in
        let dom = Domain.of_instance inst Builder.Hybrid g in
        match empower_convergence g dom ~src ~dst ~warm:false with
        | None -> None
        | Some c ->
          let w = empower_convergence g dom ~src ~dst ~warm:true in
          let r = Backpressure.run ~slots:bp_slots g dom ~flows:[ (src, dst) ] in
          let b =
            match r.Backpressure.convergence_slot with
            | Some s -> float_of_int s
            | None -> float_of_int bp_slots
          in
          Some (c, w, b))
      (Common.split_rngs master runs)
  in
  let kept = List.filter_map Fun.id per_run in
  {
    topology;
    runs;
    empower_cold = List.map (fun (c, _, _) -> c) kept;
    empower_warm = List.filter_map (fun (_, w, _) -> w) kept;
    backpressure = List.map (fun (_, _, b) -> b) kept;
  }

let print data =
  print_endline
    (Printf.sprintf "Convergence (%s, %d runs): slots to reach within 1%% of final"
       (Common.topology_name data.topology) data.runs);
  let row name xs =
    match xs with
    | [] -> [ name; "-"; "-"; "-" ]
    | _ ->
      [
        name;
        Table.fmt_float (Stats.mean xs);
        Table.fmt_float (Stats.median xs);
        Table.fmt_float (Stats.percentile xs 90.0);
      ]
  in
  Table.print_table
    ~header:[ "scheme"; "mean"; "median"; "p90" ]
    ~rows:
      [
        row "EMPoWER (warm start)" data.empower_warm;
        row "EMPoWER (cold start)" data.empower_cold;
        row "backpressure optimal" data.backpressure;
      ];
  match (data.empower_warm, data.backpressure) with
  | _ :: _, _ :: _ ->
    (* EMPoWER operates warm (injection starts at the routing-estimated
       rates); the cold-start row is a diagnostic of the proximal ramp. *)
    Printf.printf "backpressure/EMPoWER mean ratio: %.0fx\n"
      (Stats.mean data.backpressure /. Float.max 1.0 (Stats.mean data.empower_warm))
  | _ -> ()
