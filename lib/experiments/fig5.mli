(** Figure 5: multi-channel WiFi vs hybrid on the worst flows.

    CDF of T_MP-mWiFi / T_EMPoWER restricted to the worst flows — the
    bottom 20% by min(T_MP-mWiFi, T_EMPoWER) — dropping cases where
    neither scheme has connectivity. The paper finds ~60% of the
    worst flows better off with EMPoWER (up to 3-4x in simulation),
    15-25% better off with MP-mWiFi (at most 1.7x), and 6% / 19% of
    flows where only PLC/WiFi has any connectivity at all. *)

type data = {
  topology : Common.topology;
  runs : int;
  ratios : float list;       (** T_mwifi / T_empower on worst flows, finite ones *)
  empower_only : int;        (** worst flows where only EMPoWER has connectivity *)
  mwifi_only : int;          (** worst flows where only MP-mWiFi has connectivity *)
  worst_count : int;
}

val run : ?runs:int -> ?seed:int -> ?jobs:int -> Common.topology -> data
(** Default 100 runs, seed 2. [jobs] as in {!Fig4.run}: parallel and
    bit-identical for any job count. *)

val print : data -> unit
