type topology = Residential | Enterprise

let topology_name = function
  | Residential -> "residential"
  | Enterprise -> "enterprise"

let generate topo rng =
  match topo with
  | Residential -> Residential.generate rng
  | Enterprise -> Enterprise.generate rng

let random_flow rng inst =
  let duals = Array.of_list (Builder.dual_nodes inst) in
  let n = Builder.node_count inst in
  let src = Rng.pick rng duals in
  let rec pick_dst () =
    let d = Rng.int rng n in
    if d = src then pick_dst () else d
  in
  (src, pick_dst ())

let random_flows rng inst ~n =
  let rec go acc k guard =
    if k = 0 || guard = 0 then List.rev acc
    else begin
      let s, d = random_flow rng inst in
      if List.exists (fun (s', _) -> s' = s) acc then go acc k (guard - 1)
      else go ((s, d) :: acc) (k - 1) guard
    end
  in
  go [] n 1000

let split_rngs master n =
  (* Explicit in-order loop: List.init's evaluation order is
     unspecified, and the split order IS the seeding contract — stream
     [i] must be the [i]-th split whether the replications then run
     sequentially or on a domain pool. *)
  let rec go acc k = if k = 0 then List.rev acc else go (Rng.split master :: acc) (k - 1) in
  go [] n

let runs_scaled default =
  match Sys.getenv_opt "EMPOWER_RUNS" with
  | None -> default
  | Some s -> (
    match int_of_string_opt s with
    | Some target when target > 0 ->
      max 1 (default * target / 100)
    | Some _ | None -> default)

let percent f = Printf.sprintf "%.0f%%" (100.0 *. f)
