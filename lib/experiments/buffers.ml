(* Section 6.4 TCP-friendliness rerun under finite shared buffers:
   sweep pool size x DT alpha x ECN threshold, comparing a Reno TCP, a
   DCTCP-style TCP and EMPoWER's UDP reorder-buffer+delay-equalization
   path over the same congested testbed flow. See the .mli. *)

type variant_result = {
  variant : string;
  goodput_mbps : float;
  queue_drops : int;
  ecn_marks : int;
  buffer_peak_bytes : int;
  frames_lost : int;
}

type point = {
  pool_frames : int;
  dt_alpha : float;
  ecn_frames : int;
  variants : variant_result list;
}

type data = {
  seed : int;
  duration : float;
  frame_bytes : int;
  pools : int list;
  alphas : float list;
  ecns : int list;
  points : point list;
}

(* The chaos harness's testbed flow: plenty of multi-hop contention,
   so a window-driven sender actually builds standing queues. *)
let flow_src = 0
let flow_dst = 12

let buffers_of ~frame_bytes ~pool_frames ~dt_alpha ~ecn_frames =
  {
    Engine.policy =
      (if dt_alpha <= 0.0 then Engine.Static
       else Engine.Dynamic_threshold dt_alpha);
    pool_bytes = pool_frames * frame_bytes;
    ecn_threshold_bytes =
      (if ecn_frames <= 0 then None else Some (ecn_frames * frame_bytes));
  }

let variant_name = function
  | `Reno -> "reno"
  | `Dctcp -> "dctcp"
  | `Empower -> "empower"

let measure inst variant ~buffers ~seed ~duration =
  let net = Runner.network inst Schemes.Empower in
  let rr = Runner.routes_and_rates net Schemes.Empower ~src:flow_src ~dst:flow_dst in
  if fst rr = [] then invalid_arg "Buffers: no route on the testbed flow";
  (* The TCP senders run on the scheme's primary route only — the
     classic single-bottleneck congestion setup; multipath spraying
     would confound the buffer signal with reordering stalls. *)
  let first (rs, vs) = ([ List.hd rs ], [ List.hd vs ]) in
  let spec =
    match variant with
    | `Reno ->
      Runner.flow_spec ~transport:Engine.Tcp_transport ~src:flow_src
        ~dst:flow_dst (first rr)
    | `Dctcp ->
      Runner.flow_spec ~transport:Engine.Tcp_transport
        ~tcp_params:Tcp.dctcp_params ~src:flow_src ~dst:flow_dst (first rr)
    | `Empower -> Runner.flow_spec ~src:flow_src ~dst:flow_dst rr
  in
  (* The TCP variants run unpoliced (no EMPoWER CC, no equalization):
     the point of the sweep is the sender's own reaction to buffer
     pressure. EMPoWER keeps its controller and delay equalization —
     the Section 6.4 configuration. *)
  let empower = variant = `Empower in
  let config =
    {
      Engine.default_config with
      enable_cc = empower;
      delay_equalize = empower;
      buffers = Some buffers;
    }
  in
  let res = Empower.simulate ~config ~seed net ~flows:[ spec ] ~duration in
  let warmup = 2 in
  let gp, _ =
    Runner.goodput_stats res.Engine.flows.(0)
      ~last_seconds:(max 1 (int_of_float duration - warmup))
      ~duration
  in
  {
    variant = variant_name variant;
    goodput_mbps = gp;
    queue_drops = res.Engine.queue_drops;
    ecn_marks = res.Engine.ecn_marks;
    buffer_peak_bytes = res.Engine.buffer_peak_bytes;
    frames_lost = res.Engine.flows.(0).Engine.frames_lost;
  }

let default_pools = [ 16; 64 ]
let default_alphas = [ 0.5; 1.0 ]
let default_ecns = [ 0; 8 ]

let sweep ?(seed = 23) ?(duration = 20.0) ?(pools = default_pools)
    ?(alphas = default_alphas) ?(ecns = default_ecns) ?jobs () =
  if pools = [] || alphas = [] || ecns = [] then
    invalid_arg "Buffers.sweep: empty sweep axis";
  List.iter
    (fun p -> if p <= 0 then invalid_arg "Buffers.sweep: pool must be positive")
    pools;
  let frame_bytes = Engine.default_config.Engine.frame_bytes in
  let inst = Testbed.generate (Rng.create 4242) in
  let grid =
    List.concat_map
      (fun pool ->
        List.concat_map
          (fun alpha -> List.map (fun ecn -> (pool, alpha, ecn)) ecns)
          alphas)
      pools
  in
  (* Each grid point is an independent pure job; per-variant seeds
     derive from the point index alone, so the sweep is byte-identical
     at any [jobs] count. *)
  let points =
    Exec.mapi ?jobs
      (fun i (pool_frames, dt_alpha, ecn_frames) ->
        let buffers =
          buffers_of ~frame_bytes ~pool_frames ~dt_alpha ~ecn_frames
        in
        let s = seed + (100 * i) in
        {
          pool_frames;
          dt_alpha;
          ecn_frames;
          variants =
            [
              measure inst `Reno ~buffers ~seed:s ~duration;
              measure inst `Dctcp ~buffers ~seed:(s + 1) ~duration;
              measure inst `Empower ~buffers ~seed:(s + 2) ~duration;
            ];
        })
      grid
  in
  { seed; duration; frame_bytes; pools; alphas; ecns; points }

let print ?(out = stdout) d =
  let p fmt = Printf.fprintf out fmt in
  p
    "--- buffers: seed %d, %.0f s per run, %d-byte frames, shared pool per \
     node ---\n"
    d.seed d.duration d.frame_bytes;
  List.iter
    (fun pt ->
      let policy =
        if pt.dt_alpha <= 0.0 then "static"
        else Printf.sprintf "DT alpha=%g" pt.dt_alpha
      in
      let ecn =
        if pt.ecn_frames <= 0 then "ecn off"
        else Printf.sprintf "ecn@%df" pt.ecn_frames
      in
      p "pool %3d frames, %-12s %-7s\n" pt.pool_frames policy ecn;
      List.iter
        (fun v ->
          p
            "  %-8s goodput %7.3f Mbit/s  drops %5d  marks %5d  peak %3d \
             frames  lost %4d\n"
            v.variant v.goodput_mbps v.queue_drops v.ecn_marks
            (v.buffer_peak_bytes / d.frame_bytes)
            v.frames_lost)
        pt.variants)
    d.points
