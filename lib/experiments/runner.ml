let network inst scheme = Empower.of_instance inst (Schemes.scenario scheme)

let routes_and_rates ?opts (net : Empower.network) scheme ~src ~dst =
  let routes = Schemes.routes_for ?opts scheme net.Empower.g net.Empower.dom ~src ~dst in
  let rates =
    List.map (fun p -> Update.path_rate net.Empower.g net.Empower.dom p) routes
  in
  (routes, rates)

let flow_spec ?(workload = Workload.Saturated) ?(transport = Engine.Udp)
    ?tcp_params ?(start_time = 0.0) ?stop_time ~src ~dst (routes, init_rates) =
  {
    Engine.src;
    dst;
    routes;
    init_rates;
    workload;
    transport;
    tcp_params;
    start_time;
    stop_time;
  }

let goodput_stats (fr : Engine.flow_result) ~last_seconds ~duration =
  let lo = duration -. float_of_int last_seconds in
  let xs =
    List.filter_map
      (fun (t, gp) -> if t > lo then Some gp else None)
      fr.Engine.goodput_series
  in
  (Stats.mean xs, Stats.stddev xs)
