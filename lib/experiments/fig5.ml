type data = {
  topology : Common.topology;
  runs : int;
  ratios : float list;
  empower_only : int;
  mwifi_only : int;
  worst_count : int;
}

let run ?(runs = Common.runs_scaled 100) ?(seed = 2) ?jobs topology =
  (* Replications fan out over a domain pool; streams are pre-split in
     submission order so the output matches the sequential loop
     bit for bit (the connectivity filter runs on the merged list). *)
  let master = Rng.create seed in
  let per_run =
    Exec.map ?jobs
      (fun rng ->
        let inst = Common.generate topology rng in
        let flow = Common.random_flow rng inst in
        let e = (Schemes.evaluate (Rng.copy rng) inst Schemes.Empower ~flows:[ flow ]).(0) in
        let m = (Schemes.evaluate (Rng.copy rng) inst Schemes.Mp_mwifi ~flows:[ flow ]).(0) in
        (m, e))
      (Common.split_rngs master runs)
  in
  (* The historical loop consed each kept pair, so the sort below saw
     them in reverse run order; reproduce that exactly — the comparator
     has ties and the sort makes no stability promise. *)
  let pairs = List.rev (List.filter (fun (m, e) -> e > 0.0 || m > 0.0) per_run) in
  (* Worst flows: bottom 20% w.r.t. min of the two throughputs. *)
  let sorted =
    List.sort
      (fun (m1, e1) (m2, e2) -> compare (Float.min m1 e1) (Float.min m2 e2))
      pairs
  in
  let k = max 1 (List.length sorted / 5) in
  let worst = List.filteri (fun i _ -> i < k) sorted in
  let ratios =
    List.filter_map
      (fun (m, e) -> if e > 0.0 && m > 0.0 then Some (m /. e) else None)
      worst
  in
  let empower_only = List.length (List.filter (fun (m, e) -> m = 0.0 && e > 0.0) worst) in
  let mwifi_only = List.length (List.filter (fun (m, e) -> m > 0.0 && e = 0.0) worst) in
  { topology; runs; ratios; empower_only; mwifi_only; worst_count = k }

let print data =
  print_endline
    (Printf.sprintf "Figure 5 (%s): T_MP-mWiFi / T_EMPoWER on the worst 20%% flows (%d runs)"
       (Common.topology_name data.topology) data.runs);
  (match data.ratios with
  | [] -> print_endline "  (no worst flows with connectivity on both)"
  | ratios ->
    let ecdf = Stats.Ecdf.of_list ratios in
    Table.print_cdf_grid ~title:"" ~xlabel:"ratio"
      ~grid:(Table.log_grid ~lo:0.1 ~hi:2.5 ~n:12)
      ~series:[ ("CDF", ecdf) ];
    Printf.printf "EMPoWER better (ratio < 1): %s of worst flows\n"
      (Common.percent (Stats.fraction_below ratios 1.0));
    Printf.printf "max EMPoWER advantage: %.1fx; max MP-mWiFi advantage: %.1fx\n"
      (1.0 /. Stats.minimum ratios)
      (Stats.maximum ratios));
  Printf.printf
    "connectivity only with PLC/WiFi: %d of %d worst flows (%s); only with mWiFi: %d\n"
    data.empower_only data.worst_count
    (Common.percent (float_of_int data.empower_only /. float_of_int data.worst_count))
    data.mwifi_only
