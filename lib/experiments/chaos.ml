(* Seeded chaos runs: a Fault.Gen plan against the testbed scenario,
   with recovery metrics extracted from a private Recorder. *)

type flow_report = {
  flow : int;
  received_bytes : int;
  goodput_mbps : float;
  recovery_s : float;
  dip_depth : float;
  dip_area : float;
  reroutes : int;
  detect_s : float;
}

type report = {
  seed : int;
  intensity : Fault.Gen.intensity;
  duration : float;
  recovery : bool;
  plan : Fault.plan;
  result : Engine.result;
  fault_events : int;
  flows : flow_report list;
}

(* Recovery needs reclaimable routes: a fully failed route must keep
   probing after it heals or the goodput would never come back. *)
let config = { Engine.default_config with Engine.route_reclaim = true }

(* The scenario flow runs 0 -> 12 on the testbed; severing plans pin
   the victim to the destination so a node crash is guaranteed to take
   down every route of the flow at once. *)
let flow_src = 0
let flow_dst = 12

let network () = Runner.network (Testbed.generate (Rng.create 4242)) Schemes.Empower

let plan ?intensity ?clear_by (net : Empower.network) ~seed ~duration =
  let victim =
    match intensity with Some Fault.Gen.Severing -> Some flow_dst | _ -> None
  in
  Fault.Gen.plan ?intensity ?clear_by ?victim
    (Rng.split (Rng.create seed))
    net.Empower.g ~duration

let run ?trace ?flight ?intensity ?(recovery = false) ?(duration = 20.0) ~seed
    () =
  let net = network () in
  let flow =
    let routes, rates =
      Runner.routes_and_rates net Schemes.Empower ~src:flow_src ~dst:flow_dst
    in
    if routes = [] then invalid_arg "Chaos.run: no route 0 -> 12";
    Runner.flow_spec ~src:flow_src ~dst:flow_dst (routes, rates)
  in
  (* One seed pins the whole run: the plan draws from a split of the
     master stream, the engine consumes the rest of it. *)
  let master = Rng.create seed in
  let plan_rng = Rng.split master in
  let intensity =
    match intensity with Some i -> i | None -> Fault.Gen.Moderate
  in
  let victim =
    match intensity with Fault.Gen.Severing -> Some flow_dst | _ -> None
  in
  let plan = Fault.Gen.plan ~intensity ?victim plan_rng net.Empower.g ~duration in
  let compiled = Fault.compile net.Empower.g plan in
  let config =
    if recovery then { config with Engine.recovery = Some Recovery.default }
    else config
  in
  let reg = Obs.Metrics.create () in
  let recorder =
    Obs.Recorder.create ~domain_of:(Domain.domain net.Empower.dom) reg
  in
  (* The private recorder computes the recovery metrics; a caller's
     sink and the process-global registry (--metrics) still see every
     event. *)
  let global =
    match Obs.Runtime.metrics () with
    | Some greg ->
      Some (Obs.Recorder.create ~domain_of:(Domain.domain net.Empower.dom) greg)
    | None -> None
  in
  let sink =
    let s = Obs.Recorder.sink recorder in
    let s =
      match global with
      | Some r -> Obs.Trace.tee s (Obs.Recorder.sink r)
      | None -> s
    in
    match trace with Some user -> Obs.Trace.tee s user | None -> s
  in
  let result =
    Engine.run ~config ~trace:sink ?flight
      ~link_events:compiled.Fault.link_events
      ~loss_events:compiled.Fault.loss_events
      ~ctrl_events:compiled.Fault.ctrl_events master net.Empower.g
      net.Empower.dom ~flows:[ flow ] ~duration
  in
  Obs.Recorder.flush recorder ~now:duration;
  (match global with
  | Some r -> Obs.Recorder.flush r ~now:duration
  | None -> ());
  let gauge name = Obs.Metrics.Gauge.value (Obs.Metrics.gauge reg name) in
  let counter name = Obs.Metrics.Counter.value (Obs.Metrics.counter reg name) in
  let flows =
    Array.to_list
      (Array.mapi
         (fun fid (fr : Engine.flow_result) ->
           let m name = Printf.sprintf "flow.%d.%s" fid name in
           {
             flow = fid;
             received_bytes = fr.Engine.received_bytes;
             goodput_mbps =
               float_of_int fr.Engine.received_bytes *. 8e-6 /. duration;
             recovery_s = gauge (m "fault.recovery_s");
             dip_depth = gauge (m "fault.dip_depth");
             dip_area = gauge (m "fault.dip_area");
             reroutes = counter (m "reroutes");
             detect_s = gauge (m "fault.detect_s");
           })
         result.Engine.flows)
  in
  {
    seed;
    intensity;
    duration;
    recovery;
    plan;
    result;
    fault_events = counter "fault.events";
    flows;
  }

let sweep ?intensity ?recovery ?duration ?jobs seeds =
  (* Each seed is an independent pure run (the network is rebuilt
     inside the job); reports come back in the seeds' order, so a
     sweep is bit-identical for any job count. *)
  Exec.map ?jobs
    (fun seed -> run ?intensity ?recovery ?duration ~seed ())
    seeds

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("scenario", String "chaos");
      ("seed", Int r.seed);
      ("intensity", String (Fault.Gen.intensity_name r.intensity));
      ("duration", Float r.duration);
      ("recovery", Bool r.recovery);
      ("fault_events", Int r.fault_events);
      ("queue_drops", Int r.result.Engine.queue_drops);
      ("events_processed", Int r.result.Engine.events_processed);
      ("plan", Fault.to_json r.plan);
      ( "flows",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("flow", Int f.flow);
                   ("received_bytes", Int f.received_bytes);
                   ("goodput_mbps", Float f.goodput_mbps);
                   ("recovery_s", Float f.recovery_s);
                   ("dip_depth", Float f.dip_depth);
                   ("dip_area", Float f.dip_area);
                   ("reroutes", Int f.reroutes);
                   ("detect_s", Float f.detect_s);
                 ])
             r.flows) );
    ]

let sweep_json reports =
  let open Obs.Json in
  Obj
    [
      ("scenario", String "chaos-sweep");
      ("runs", Int (List.length reports));
      ("reports", List (List.map to_json reports));
    ]

let print ?(out = stdout) r =
  let p fmt = Printf.fprintf out fmt in
  p "--- chaos: seed %d, intensity %s%s, %.1f s, %d plan actions ---\n" r.seed
    (Fault.Gen.intensity_name r.intensity)
    (if r.recovery then " (recovery on)" else "")
    r.duration (List.length r.plan);
  p "fault boundary events: %d; queue drops: %d; engine events: %d\n"
    r.fault_events r.result.Engine.queue_drops r.result.Engine.events_processed;
  List.iter
    (fun f ->
      p
        "flow %d: %.3f Mbit/s (%d bytes), dip %.3f Mbit/s deep / %.3f Mbit·s, \
         recovery %s, %d reroutes%s\n"
        f.flow f.goodput_mbps f.received_bytes f.dip_depth f.dip_area
        (if f.recovery_s < 0.0 then "never"
         else Printf.sprintf "%.3f s" f.recovery_s)
        f.reroutes
        (if f.detect_s > 0.0 then Printf.sprintf ", detected in %.3f s" f.detect_s
         else ""))
    r.flows
