(** Declarative long-horizon churn scenarios and their degradation
    scorecards.

    A {e scenario} is a named, validated JSON document pinning one
    robustness experiment end to end: a topology draw, per-node
    device classes ({!Device}), a set of flows, a churn plan —
    either embedded explicitly or drawn from {!Fault.Gen} — the
    recovery switch and an SLO. {!run} executes the scenario twice
    with identical engine seeding — once fault-free, once under
    churn — and folds the {!Obs} record of the churn run into a
    {!scorecard}: per-flow availability against the fault-free
    baseline, time below SLO, recovery counters and a per-churn-event
    dip/recovery table. Scenario files live under [scenarios/] and
    are exercised by [empower_eval scenario].

    {2 Determinism}

    Everything is pinned by the spec: the topology draw by
    [topology.seed], the generated plan by a split of
    [Rng.create seed], and both engine runs by the remainder of that
    master stream — the baseline run re-creates the identical stream
    so the two runs differ only in the injected fault schedule.
    Equal specs therefore yield byte-identical scorecard JSON, which
    is what the golden tests pin.

    {2 Scorecard metric definitions}

    With [W] the recorder's 1 s goodput bins of the churn run whose
    bin-end time is in the measure window [(warmup, duration]]
    (warmup = 2 s), and [B] the per-flow mean of the fault-free
    run's bins over the same window:

    - {e availability}: fraction of bins in [W] with goodput
      [>= slo.availability_frac *. B];
    - {e time below SLO}: [(1 - availability) *. |W|] seconds;
    - {e per-event dip}: for each plan action, the worst (over
      flows) of [B - min bin] inside the action's
      [[start_time, end_time]] window, floored at 0;
    - {e per-event recovery}: the worst (over flows) time from the
      action's [end_time] until the flow's goodput bin is back to
      [>= 0.9 *. B]; [-1] when a flow never recovers;
    - the SLO is met when every flow's availability is
      [>= slo.min_availability]. *)

type topology_kind = Testbed | Residential | Enterprise

val topology_kind_name : topology_kind -> string
(** ["testbed"] | ["residential"] | ["enterprise"]. *)

val topology_kind_of_name : string -> topology_kind option

type churn =
  | Generate of { intensity : Fault.Gen.intensity; protect_endpoints : bool }
      (** Draw the plan with {!Fault.Gen.plan} from a split of the
          scenario seed; when [protect_endpoints] is set every flow
          endpoint is passed as the generator's [?protect] set. *)
  | Plan of Fault.plan  (** An explicit embedded plan. *)

type slo = {
  availability_frac : float;
      (** a 1 s bin is "available" when the flow's goodput is at
          least this fraction of its fault-free baseline *)
  min_availability : float;
      (** the scenario passes when every flow's availability is at
          least this fraction *)
}

type spec = {
  name : string;
  description : string;
  seed : int;  (** plan + engine master seed *)
  duration : float;
  topology : topology_kind;
  topology_seed : int;
  devices : Device.spec list;
  flows : (int * int) list;  (** (src, dst) pairs *)
  churn : churn;
  recovery : bool;  (** run with {!Recovery.default} enabled *)
  slo : slo;
}

val spec_of_json : Obs.Json.t -> (spec, string) result
(** Strict decode of a version-1 scenario document: unknown fields
    of known objects are ignored, but missing / mistyped fields,
    unknown topology kinds, device classes, intensities and bad
    ranges ([duration <= 0], SLO fractions outside [[0,1]], empty
    [flows]) are [Error]s. *)

val load : string -> (spec, string) result
(** Read and decode one scenario file. *)

val catalog : string -> ((string * string) list, string) result
(** [(name, path)] for every [*.json] in a directory, sorted by
    name ([name] is the filename without extension). *)

type flow_score = {
  flow : int;
  src : int;
  dst : int;
  baseline_mbps : float;  (** fault-free mean binned goodput, Mbit/s *)
  goodput_mbps : float;  (** churn-run whole-run goodput, Mbit/s *)
  availability : float;
  below_slo_s : float;
  reroutes : int;
  route_deaths : int;
  route_restores : int;
  outage_s : float;
  detect_s : float;  (** worst detection latency; 0 when none *)
  dip_depth : float;
  dip_area : float;
  recovery_s : float;  (** vs the last fault boundary; -1 = never *)
}

type event_score = {
  op : string;
  at : float;
  clear : float;  (** the action's {!Fault.end_time} *)
  dip_mbps : float;
  recover_s : float;  (** -1 when some flow never recovers *)
}

type scorecard = {
  spec : spec;
  plan : Fault.plan;  (** the compiled-against plan, normalized *)
  fault_events : int;
  queue_drops : int;
  events_processed : int;
  route_deaths : int;  (** run total, all flows *)
  probes : int;
  flows : flow_score list;
  events : event_score list;
  min_availability_measured : float;  (** worst flow availability *)
  slo_met : bool;
}

val run : ?trace:Obs.Trace.sink -> ?flight:Obs.Flight.t -> spec -> scorecard
(** Execute the scenario. The baseline run is internal: [trace],
    [flight] and the process-global metrics registry observe only
    the churn run. Raises [Invalid_argument] on a spec that fails
    deep validation: device specs {!Device.validate}, flow endpoints
    out of range or equal, a relay-class endpoint, no route between
    a flow's endpoints, or an embedded plan {!Fault.validate}
    rejects. *)

val run_all : ?jobs:int -> spec list -> scorecard list
(** {!run} every spec via {!Exec.map}: results in list order,
    bit-identical for any job count. *)

val to_json : scorecard -> Obs.Json.t
(** The ["figure": "scenario"] document the golden tests pin
    byte-for-byte and [empower_eval report] renders. *)

val print : ?out:out_channel -> scorecard -> unit
