(** Figure 4: CDF of the flow throughput T_X per scheme.

    One saturated flow per random topology; schemes EMPoWER, SP,
    SP-WiFi, MP-mWiFi (MP-WiFi is also computed to verify the text's
    claim that it coincides with SP-WiFi), on residential and
    enterprise topologies. The paper's headline numbers: the average
    hybrid gain over WiFi-only is 59% (residential) / 68%
    (enterprise), and 39% / 31% over single-path hybrid. *)

type data = {
  topology : Common.topology;
  runs : int;
  samples : (Schemes.t * float list) list;  (** T_X per run, per scheme *)
}

val schemes : Schemes.t list
(** The schemes the figure plots (plus MP-WiFi for the text claim). *)

val run : ?runs:int -> ?seed:int -> ?jobs:int -> Common.topology -> data
(** Default 100 runs (paper: 1000), seed 1. [jobs] fans the seeded
    replications out over a domain pool (default {!Exec.default_jobs});
    the result is bit-identical for any job count. *)

val gain : data -> over:Schemes.t -> float
(** Mean of EMPoWER's throughput divided by the mean of the given
    scheme's (the paper's "average gain"). *)

val print : data -> unit
(** The CDF grid and the summary gains. *)
