type config = {
  dead_ack_threshold : int;
  hello_timeout : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_cap : float;
  backoff_jitter : float;
}

let default =
  {
    dead_ack_threshold = 3;
    hello_timeout = 1.0;
    backoff_base = 0.2;
    backoff_factor = 2.0;
    backoff_cap = 2.0;
    backoff_jitter = 0.1;
  }

let validate c =
  if c.dead_ack_threshold < 1 then
    invalid_arg "Recovery.validate: dead_ack_threshold must be >= 1";
  if (not (Float.is_finite c.hello_timeout)) || c.hello_timeout <= 0.0 then
    invalid_arg "Recovery.validate: hello_timeout must be positive";
  if (not (Float.is_finite c.backoff_base)) || c.backoff_base <= 0.0 then
    invalid_arg "Recovery.validate: backoff_base must be positive";
  if (not (Float.is_finite c.backoff_factor)) || c.backoff_factor < 1.0 then
    invalid_arg "Recovery.validate: backoff_factor must be >= 1";
  if (not (Float.is_finite c.backoff_cap)) || c.backoff_cap < c.backoff_base
  then invalid_arg "Recovery.validate: backoff_cap must be >= backoff_base";
  if
    (not (Float.is_finite c.backoff_jitter))
    || c.backoff_jitter < 0.0 || c.backoff_jitter >= 1.0
  then invalid_arg "Recovery.validate: backoff_jitter must be in [0, 1)"

module Backoff = struct
  let delay config rng ~attempt =
    if attempt < 0 then
      invalid_arg "Recovery.Backoff.delay: attempt must be >= 0";
    let raw =
      config.backoff_base *. (config.backoff_factor ** float_of_int attempt)
    in
    let capped = Float.min config.backoff_cap raw in
    if config.backoff_jitter > 0.0 then
      let u = Rng.float rng in
      capped *. (1.0 +. (config.backoff_jitter *. ((2.0 *. u) -. 1.0)))
    else capped
end

module Detector = struct
  type verdict =
    | Alive
    | Suspect of int
    | Down of { since : float }
    | Still_down
    | Recovered of { down_for : float }

  type route = {
    mutable misses : int;
    mutable last_ok : float;
    mutable pending : float;
    mutable down : bool;
    mutable down_since : float;
  }

  type t = { config : config; routes : route array }

  let create config ~n_routes ~now =
    validate config;
    if n_routes < 0 then
      invalid_arg "Recovery.Detector.create: n_routes must be >= 0";
    {
      config;
      routes =
        Array.init n_routes (fun _ ->
            {
              misses = 0;
              last_ok = now;
              pending = 0.0;
              down = false;
              down_since = 0.0;
            });
    }

  let n_routes t = Array.length t.routes

  let check t route =
    if route < 0 || route >= Array.length t.routes then
      invalid_arg "Recovery.Detector: route out of range"

  let dead t route =
    check t route;
    t.routes.(route).down

  let down_since t route =
    check t route;
    let r = t.routes.(route) in
    if r.down then Some r.down_since else None

  let suspicion t route =
    check t route;
    t.routes.(route).misses

  let observe t ~route ~now ~injected ~acked ~frame_bytes =
    check t route;
    if (not (Float.is_finite injected)) || injected < 0.0 then
      invalid_arg "Recovery.Detector.observe: injected must be >= 0";
    let r = t.routes.(route) in
    if acked > 0.0 then (
      r.misses <- 0;
      r.pending <- 0.0;
      r.last_ok <- now;
      if r.down then (
        let down_for = now -. r.down_since in
        r.down <- false;
        Recovered { down_for })
      else Alive)
    else (
      r.pending <- r.pending +. injected;
      if injected > 2.0 *. frame_bytes then r.misses <- r.misses + 1;
      if r.down then Still_down
      else
        let hello_expired =
          r.pending > 0.0 && now -. r.last_ok > t.config.hello_timeout
        in
        if r.misses >= t.config.dead_ack_threshold || hello_expired then (
          let since = r.last_ok in
          r.down <- true;
          r.down_since <- now;
          Down { since })
        else if r.misses > 0 then Suspect r.misses
        else Alive)
end

let stale_seq = 1
let fresh_seq = 2

type reflood_result = { view : Multigraph.t; flood : Lsdb.Flood.stats }

let reflood g ~caps ~viewer =
  let n = Multigraph.n_nodes g in
  if Array.length caps <> Multigraph.num_links g then
    invalid_arg "Recovery.reflood: capacity vector length mismatch";
  if viewer < 0 || viewer >= n then invalid_arg "Recovery.reflood: bad viewer";
  (* [advertise] draws nothing at noise 0, so this rng never advances:
     re-discovery is deterministic and consumes no caller randomness. *)
  let rng = Rng.create 0 in
  let dbs = Array.init n (fun v -> Lsdb.create ~node:v) in
  for v = 0 to n - 1 do
    List.iter
      (fun lsa -> Array.iter (fun db -> ignore (Lsdb.insert db ~now:0.0 lsa)) dbs)
      (Control_plane.advertise ~seq:stale_seq rng g ~node:v)
  done;
  let live = Multigraph.with_capacities g caps in
  let neighbors v =
    Multigraph.out_links live v
    |> List.filter_map (fun l ->
           if Multigraph.usable live l then
             Some (Multigraph.link live l).Multigraph.dst
           else None)
    |> List.sort_uniq compare
  in
  let rounds = ref 0 and messages = ref 0 in
  for v = 0 to n - 1 do
    List.iter
      (fun lsa ->
        let s = Lsdb.Flood.propagate ~neighbors ~dbs ~from:v lsa in
        rounds := max !rounds s.Lsdb.Flood.rounds;
        messages := !messages + s.Lsdb.Flood.messages)
      (Control_plane.advertise ~seq:fresh_seq rng live ~node:v)
  done;
  (* Dead or partitioned nodes never re-advertised, so the viewer's
     database still holds their pre-seeded stale LSAs; [Lsdb.graph]
     would resurrect those links (either endpoint's claim suffices).
     Keep only the freshly flooded generation. *)
  let fresh = Lsdb.create ~node:viewer in
  List.iter
    (fun lsa ->
      if lsa.Lsa.seq >= fresh_seq then
        ignore (Lsdb.insert fresh ~now:0.0 lsa))
    (Lsdb.entries dbs.(viewer));
  let view = Lsdb.graph fresh ~n_nodes:n ~n_techs:(Multigraph.n_techs g) in
  { view; flood = { Lsdb.Flood.rounds = !rounds; messages = !messages } }

let mask_caps g ~caps ~view =
  Array.init (Multigraph.num_links g) (fun l ->
      if caps.(l) <= 0.0 then 0.0
      else
        let lk = Multigraph.link g l in
        let present =
          Multigraph.find_links view ~src:lk.Multigraph.src
            ~dst:lk.Multigraph.dst
          |> List.exists (fun vl ->
                 (Multigraph.link view vl).Multigraph.tech = lk.Multigraph.tech)
        in
        if present then caps.(l) else 0.0)

let survivors g ~caps ~src ~routes =
  let { view; flood } = reflood g ~caps ~viewer:src in
  let masked = mask_caps g ~caps ~view in
  let ok =
    List.map
      (fun (p : Paths.t) ->
        List.for_all (fun l -> masked.(l) > 0.0) p.Paths.links)
      routes
  in
  (Array.of_list ok, flood)

let replan g dom ~caps ~src ~dst =
  let { view; flood } = reflood g ~caps ~viewer:src in
  let masked = mask_caps g ~caps ~view in
  let comb = Multipath.find (Multigraph.with_capacities g masked) dom ~src ~dst in
  (comb, flood)
