(** Self-healing recovery: failure detection, stale-state reset and
    bounded route re-discovery.

    The paper's testbed recovers from node failure in seconds
    (Fig. 12) because EMPoWER nodes detect dead neighbours and re-run
    route selection instead of waiting for the Section 4 dual prices
    to decay. This module provides the pieces the engine composes
    when its [recovery] config is set:

    - a per-route {!Detector} fed by the 100 ms ack stream (k
      consecutive missed acks, or a hello timeout when traffic is
      outstanding, mark a route dead; a subsequent ack marks it
      recovered);
    - {!Backoff}, the exponential reclaim-probe schedule with a cap
      and deterministic seeded jitter;
    - {!survivors} / {!replan}, route re-discovery by LSDB re-flood:
      live nodes re-advertise their usable links at a fresh sequence
      number, stale advertisements from dead or partitioned nodes are
      suppressed by the flooding discipline, and the viewer's
      reconstructed graph is intersected with ground-truth capacities
      before running the Section 3.2 multipath procedure.

    Everything here is deterministic: equal inputs (and equal rng
    states for the jittered backoff) give equal outputs. *)

type config = {
  dead_ack_threshold : int;
      (** consecutive ack-report windows with traffic injected but
          zero bytes acked before a route is declared dead
          (default 3, i.e. ~300 ms of silence under load) *)
  hello_timeout : float;
      (** seconds without any ack while frames are outstanding before
          a route is declared dead — catches routes driven too slowly
          for the k-miss rule to fire (default 1.0) *)
  backoff_base : float;  (** first reclaim-probe delay, seconds (0.2) *)
  backoff_factor : float;  (** delay multiplier per failed probe (2.0) *)
  backoff_cap : float;  (** maximum probe delay, seconds (2.0) *)
  backoff_jitter : float;
      (** relative jitter on each delay, drawn from the caller's rng;
          0 disables the draw entirely (default 0.1) *)
}

val default : config

val validate : config -> unit
(** Raises [Invalid_argument] on non-positive timeouts, a threshold
    below 1, a backoff factor below 1, a cap below the base, or
    jitter outside [0, 1). *)

module Backoff : sig
  val delay : config -> Rng.t -> attempt:int -> float
  (** [delay config rng ~attempt] is
      [min cap (base * factor^attempt)], multiplied by a uniform
      jitter in [1 - j, 1 + j]. The rng is consumed only when
      [backoff_jitter > 0]. Requires [attempt >= 0]. *)
end

(** Per-route failure detector over the periodic ack stream. *)
module Detector : sig
  type t

  type verdict =
    | Alive  (** route healthy (or idle with nothing outstanding) *)
    | Suspect of int  (** consecutive misses so far, below threshold *)
    | Down of { since : float }
        (** just declared dead; [since] is the last time the route was
            known good, so detection latency is [now -. since] *)
    | Still_down  (** already dead, no news *)
    | Recovered of { down_for : float }
        (** an ack arrived on a dead route; [down_for] is the outage
            length as the detector saw it *)

  val create : config -> n_routes:int -> now:float -> t
  (** Fresh detector; every route starts [Alive] with [last-ok = now].
      Validates the config. *)

  val observe :
    t ->
    route:int ->
    now:float ->
    injected:float ->
    acked:float ->
    frame_bytes:float ->
    verdict
  (** Feed one ack-report window for one route: [injected] bytes were
      put on the route during the window, [acked] bytes were reported
      delivered. A window with more than two frames injected and
      nothing acked counts as a miss (the engine's dead-route rule);
      any positive [acked] clears all suspicion. *)

  val n_routes : t -> int

  val dead : t -> int -> bool
  (** Is the route currently declared dead? *)

  val down_since : t -> int -> float option
  (** Declaration time of the current outage, if any. *)

  val suspicion : t -> int -> int
  (** Current consecutive-miss count for the route — [0] when
      healthy, reset by any acked byte. Exposed so tests can assert
      that crash/restart flapping faster than [hello_timeout] leaks
      no Suspect state across recoveries. *)
end

val survivors :
  Multigraph.t ->
  caps:float array ->
  src:int ->
  routes:Paths.t list ->
  bool array * Lsdb.Flood.stats
(** Re-flood the link state from node [src]'s point of view (see
    {!replan}) and report, per route, whether every hop survives in
    the re-discovered graph. Routes are in list order. *)

val replan :
  Multigraph.t ->
  Domain.t ->
  caps:float array ->
  src:int ->
  dst:int ->
  Multipath.combination * Lsdb.Flood.stats
(** Full route re-discovery: every node is pre-seeded with its stale
    full-graph advertisement (sequence 1), live nodes re-advertise
    their currently usable links at sequence 2 and flood them over the
    surviving connectivity, the viewer keeps only the fresh
    generation, and the Section 3.2 multipath procedure runs on the
    original link-id space with capacities masked to the intersection
    of ground truth ([caps]) and the re-discovered view. Dead and
    partitioned nodes therefore cannot resurrect their links. Consumes
    no caller randomness. *)
