type network = {
  g : Multigraph.t;
  dom : Domain.t;
}

let of_instance inst scenario =
  let g = Builder.graph inst scenario in
  { g; dom = Domain.of_instance inst scenario g }

let of_edges ?interference:(_ = `Single_domain_per_tech) ~n_nodes ~n_techs edges =
  let g = Multigraph.create ~n_nodes ~n_techs ~edges in
  { g; dom = Domain.single_domain_per_tech g }

type plan = {
  src : int;
  dst : int;
  combination : Multipath.combination;
}

let plan ?(n = 5) ?(csc = true) net ~src ~dst =
  { src; dst; combination = Multipath.find ~n ~csc net.g net.dom ~src ~dst }

type allocation = {
  plans : plan array;
  flow_rates : float array;
  route_rates : float array array;
  cc : Cc_result.t;
}

let allocate ?n ?(delta = 0.0) ?(slots = 3000) ?utility ?price_drain net ~flows
    =
  let plans =
    Array.of_list (List.map (fun (src, dst) -> plan ?n net ~src ~dst) flows)
  in
  let flow_routes =
    Array.to_list (Array.map (fun p -> Multipath.routes p.combination) plans)
  in
  let problem = Problem.make ~delta ?utility net.g net.dom ~flows:flow_routes in
  let x_init =
    Array.of_list
      (List.concat_map
         (fun p -> List.map snd p.combination.Multipath.paths)
         (Array.to_list plans))
  in
  let cc = Multi_cc.solve ~x_init ~slots ?price_drain problem in
  (* Slice the flat rate vector back into per-flow arrays. *)
  let route_rates = Array.make (Array.length plans) [||] in
  let idx = ref 0 in
  Array.iteri
    (fun f p ->
      let k = List.length p.combination.Multipath.paths in
      route_rates.(f) <- Array.sub cc.Cc_result.rates !idx k;
      idx := !idx + k)
    plans;
  { plans; flow_rates = cc.Cc_result.flow_rates; route_rates; cc }

let simulate ?config ?invariants ?trace ?faults ?(seed = 0) net ~flows ~duration
    =
  let link_events, loss_events, ctrl_events =
    match faults with
    | None -> ([], [], [])
    | Some plan ->
      let c = Fault.compile net.g plan in
      (c.Fault.link_events, c.Fault.loss_events, c.Fault.ctrl_events)
  in
  Engine.run ?config ?invariants ?trace ~link_events ~loss_events ~ctrl_events
    (Rng.create seed) net.g net.dom ~flows ~duration

let flow_specs_of_allocation ?(workload = Workload.Saturated)
    ?(transport = Engine.Udp) alloc =
  Array.to_list alloc.plans
  |> List.filter_map (fun p ->
         match Multipath.routes p.combination with
         | [] -> None
         | routes ->
           Some
             {
               Engine.src = p.src;
               dst = p.dst;
               routes;
               init_rates = List.map snd p.combination.Multipath.paths;
               workload;
               transport;
               tcp_params = None;
               start_time = 0.0;
               stop_time = None;
             })
