(** EMPoWER: multipath routing + congestion control for hybrid
    networks, at layer 2.5.

    This is the library facade: build a {!network} (from a topology
    generator, or from explicit links), let EMPoWER {!plan} the
    combination of routes for each flow, {!allocate} utility-optimal
    rates on them with the distributed congestion controller, or
    {!simulate} the whole datapath packet by packet (20-byte headers,
    source routing, CSMA MAC, 100 ms ACKs, reordering).

    A three-line quickstart (the paper's Figure 1 network):
    {[
      let net = Empower.of_edges ~n_nodes:3 ~n_techs:2
          [ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ] in
      let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
      (* alloc.flow_rates.(0) ~ 16.7 Mbps: 10 on PLC+WiFi, 6.7 on WiFi *)
    ]} *)

type network = {
  g : Multigraph.t;
  dom : Domain.t;
}
(** A hybrid network: the multigraph and its interference domains. *)

val of_instance : Builder.instance -> Builder.scenario -> network
(** Project a generated topology instance (residential, enterprise,
    testbed) onto a technology scenario. *)

val of_edges :
  ?interference:[ `Single_domain_per_tech ] ->
  n_nodes:int ->
  n_techs:int ->
  (int * int * int * float) list ->
  network
(** Build directly from edges [(u, v, tech, capacity_mbps)]. The only
    explicit interference model for hand-built networks is one
    collision domain per technology (right for home-scale examples);
    geometry-based interference comes via {!of_instance}. *)

type plan = {
  src : int;
  dst : int;
  combination : Multipath.combination;
}
(** The routes EMPoWER selected for one flow, with their rates. *)

val plan : ?n:int -> ?csc:bool -> network -> src:int -> dst:int -> plan
(** Run the Section 3 multipath procedure (default n = 5, CSC on). *)

type allocation = {
  plans : plan array;
  flow_rates : float array;     (** final per-flow rates (Mbit/s) *)
  route_rates : float array array; (** per flow, per route *)
  cc : Cc_result.t;             (** full controller output *)
}

val allocate :
  ?n:int ->
  ?delta:float ->
  ?slots:int ->
  ?utility:Utility.t ->
  ?price_drain:float ->
  network ->
  flows:(int * int) list ->
  allocation
(** Routing then congestion control: plan each flow, run the
    multipath controller (Section 4.3) on the selected routes starting
    from the routing-estimated rates, and report the allocation.
    Flows without connectivity get rate 0 and an empty plan.
    [price_drain] is forwarded to {!Multi_cc.solve}: a per-slot dual
    leak bounding stale-price hysteresis (default 0 — the paper's
    exact update). The packet engine exposes the same knob per second
    of simulated time as [Engine.config.price_drain]. *)

val simulate :
  ?config:Engine.config ->
  ?invariants:Invariants.t ->
  ?trace:Obs.Trace.sink ->
  ?faults:Fault.plan ->
  ?seed:int ->
  network ->
  flows:Engine.flow_spec list ->
  duration:float ->
  Engine.result
(** Packet-level simulation of the full stack (see {!Engine}).
    [?invariants] threads a runtime invariant checker through the run
    (see {!Invariants}); the [EMPOWER_CHECK] environment variable
    enables one implicitly. [?trace] streams every datapath and
    control-plane event into an {!Obs.Trace.sink} (see the tracing
    notes on {!Engine.run}). [?faults] compiles a {!Fault.plan}
    against the network's graph and schedules it into the run
    (capacity changes, frame-loss windows, control-plane faults);
    raises [Invalid_argument] if the plan fails {!Fault.validate}. *)

val flow_specs_of_allocation :
  ?workload:Workload.t ->
  ?transport:Engine.transport ->
  allocation ->
  Engine.flow_spec list
(** Turn an allocation into engine flow specs (default saturated
    UDP): routes from the plans, initial injection at the planned
    rates. Flows with no route are omitted. *)
