(* Device-class masking over a sampled instance. See device.mli. *)

type cls = Full | Legacy | Relay

type spec = { node : int; cls : cls; panel : int option }

let cls_name = function Full -> "full" | Legacy -> "legacy" | Relay -> "relay"

let cls_of_name = function
  | "full" -> Some Full
  | "legacy" -> Some Legacy
  | "relay" -> Some Relay
  | _ -> None

let validate (inst : Builder.instance) specs =
  let n = Array.length inst.Builder.nodes in
  let seen = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | { node; panel; _ } :: rest ->
        if node < 0 || node >= n then
          Error (Printf.sprintf "device spec: node %d out of range" node)
        else if Hashtbl.mem seen node then
          Error (Printf.sprintf "device spec: node %d listed twice" node)
        else if (match panel with Some p -> p < 0 | None -> false) then
          Error (Printf.sprintf "device spec: node %d: negative panel" node)
        else begin
          Hashtbl.add seen node ();
          go rest
        end
  in
  go specs

let apply (inst : Builder.instance) specs =
  (match validate inst specs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Device.apply: " ^ msg));
  let nodes =
    Array.map
      (fun (nd : Builder.node) ->
        match List.find_opt (fun s -> s.node = nd.Builder.id) specs with
        | None -> nd
        | Some s ->
            let dual =
              match s.cls with Legacy -> false | Full | Relay -> nd.Builder.dual
            in
            let panel =
              match s.panel with Some p -> p | None -> nd.Builder.panel
            in
            { nd with Builder.dual; panel })
      inst.Builder.nodes
  in
  let n = Array.length nodes in
  let copy m = Array.map Array.copy m in
  let wifi2 = copy inst.Builder.wifi2 and plc = copy inst.Builder.plc in
  (* Mask only: second-medium entries survive between dual nodes, PLC
     additionally only between same-panel pairs. Entries that were 0
     in the original draw stay 0 — capability is never invented. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let both_dual = nodes.(i).Builder.dual && nodes.(j).Builder.dual in
      if not both_dual then begin
        wifi2.(i).(j) <- 0.0;
        plc.(i).(j) <- 0.0
      end;
      if nodes.(i).Builder.panel <> nodes.(j).Builder.panel then
        plc.(i).(j) <- 0.0
    done
  done;
  { inst with Builder.nodes; wifi2; plc }

let originates specs node =
  match List.find_opt (fun s -> s.node = node) specs with
  | Some { cls = Relay; _ } -> false
  | _ -> true

let relay_nodes specs =
  List.filter_map
    (fun s -> match s.cls with Relay -> Some s.node | _ -> None)
    specs
