(** Heterogeneous device classes layered onto a sampled
    {!Builder.instance}.

    Real mixed-fieldbus deployments are not uniform: alongside
    full hybrid nodes they contain relay-only infrastructure that
    forwards but never originates traffic, legacy single-medium
    devices with only the primary WiFi radio, and PLC nodes
    constrained to a particular electrical panel. A device [spec]
    list declares those asymmetries per node and {!apply} rewrites
    an instance to honour them.

    {!apply} is a pure, deterministic {e mask}: it only removes
    capability (zeroes capacity-matrix entries), never invents it,
    and consumes no randomness — so layering device classes onto an
    instance keeps the instance's seeding contract intact, and an
    empty spec list is the identity. In particular a panel override
    can sever existing PLC pairs (the nodes now sit on different
    panels) but cannot create a PLC link where the original draw
    had none. *)

type cls =
  | Full  (** unrestricted hybrid node (the default for every node) *)
  | Legacy
      (** single-medium device: keeps only WiFi channel 1 — its
          second radio / PLC interface is removed ([dual] becomes
          [false]) *)
  | Relay
      (** relay-only infrastructure: full media capability, but the
          node never originates traffic — {!originates} is [false]
          and scenario validation rejects it as a flow endpoint *)

type spec = {
  node : int;
  cls : cls;
  panel : int option;
      (** when [Some p], the node's electrical panel is overridden to
          [p] before PLC masking — constraining which peers it can
          reach over the powerline medium *)
}

val cls_name : cls -> string
(** ["full"] | ["legacy"] | ["relay"]. *)

val cls_of_name : string -> cls option

val validate : Builder.instance -> spec list -> (unit, string) result
(** Node ids in range, no node listed twice, panels non-negative. *)

val apply : Builder.instance -> spec list -> Builder.instance
(** Rewrite the instance: apply class and panel overrides to the
    node records, then mask the capacity matrices — WiFi channel 2
    and PLC survive only between dual nodes, PLC only between
    same-panel pairs. Raises [Invalid_argument] on a spec list that
    {!validate} rejects. [apply inst []] returns an instance equal
    to [inst]. *)

val originates : spec list -> int -> bool
(** [false] iff the node is declared [Relay]. Nodes without a spec
    originate traffic. *)

val relay_nodes : spec list -> int list
(** Ids declared [Relay], in spec order. *)
