(* Deterministic fault-plan DSL, codec, compiler and generator. See
   fault.mli for the semantics, tie-break and seeding contracts. *)

type action =
  | Link_down of { at : float; link : int }
  | Link_up of { at : float; link : int; capacity : float }
  | Capacity_set of { at : float; link : int; capacity : float }
  | Capacity_ramp of {
      at : float;
      link : int;
      from_cap : float;
      to_cap : float;
      over : float;
      steps : int;
    }
  | Loss_window of { at : float; until : float; link : int; prob : float }
  | Ctrl_drop of { at : float; until : float; prob : float }
  | Ctrl_delay of { at : float; until : float; delay : float }
  | Node_crash of { at : float; node : int }
  | Node_restart of { at : float; node : int }

type plan = action list

let empty : plan = []

let start_time = function
  | Link_down { at; _ }
  | Link_up { at; _ }
  | Capacity_set { at; _ }
  | Capacity_ramp { at; _ }
  | Loss_window { at; _ }
  | Ctrl_drop { at; _ }
  | Ctrl_delay { at; _ }
  | Node_crash { at; _ }
  | Node_restart { at; _ } ->
      at

let op_name = function
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Capacity_set _ -> "capacity_set"
  | Capacity_ramp _ -> "capacity_ramp"
  | Loss_window _ -> "loss_window"
  | Ctrl_drop _ -> "ctrl_drop"
  | Ctrl_delay _ -> "ctrl_delay"
  | Node_crash _ -> "node_crash"
  | Node_restart _ -> "node_restart"

(* Stable by construction: equal-time actions keep plan order, which
   is what makes the last-wins tie-break well defined. *)
let normalize plan =
  List.stable_sort
    (fun a b -> Float.compare (start_time a) (start_time b))
    plan

let validate g plan =
  let n_links = Multigraph.num_links g in
  let n_nodes = Multigraph.n_nodes g in
  let err a msg = Error (Printf.sprintf "%s: %s" (op_name a) msg) in
  let time_ok t = Float.is_finite t && t >= 0.0 in
  let prob_ok p = Float.is_finite p && p >= 0.0 && p <= 1.0 in
  let cap_ok c = Float.is_finite c && c >= 0.0 in
  let link_ok l = l >= 0 && l < n_links in
  let node_ok n = n >= 0 && n < n_nodes in
  let check a =
    match a with
    | Link_down { at; link } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else Ok ()
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else if not (cap_ok capacity) then err a "bad capacity"
        else Ok ()
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else if not (cap_ok from_cap && cap_ok to_cap) then
          err a "bad capacity"
        else if not (Float.is_finite over && over > 0.0) then
          err a "over must be > 0"
        else if steps < 1 then err a "steps must be >= 1"
        else Ok ()
    | Loss_window { at; until; link; prob } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (link_ok link) then err a "link out of range"
        else if not (prob_ok prob) then err a "prob must be in [0,1]"
        else Ok ()
    | Ctrl_drop { at; until; prob } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (prob_ok prob) then err a "prob must be in [0,1]"
        else Ok ()
    | Ctrl_delay { at; until; delay } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (Float.is_finite delay && delay >= 0.0) then
          err a "bad delay"
        else Ok ()
    | Node_crash { at; node } | Node_restart { at; node } ->
        if not (time_ok at) then err a "bad time"
        else if not (node_ok node) then err a "node out of range"
        else Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | a :: rest -> ( match check a with Ok () -> go rest | Error _ as e -> e)
  in
  go plan

type compiled = {
  link_events : (float * int * float) list;
  loss_events : (float * int * float) list;
  ctrl_events : (float * float * float) list;
}

(* Directed links incident to a node, ascending id (out and in links
   are disjoint because self-loops are impossible). *)
let incident g node =
  List.sort compare (Multigraph.out_links g node @ Multigraph.in_links g node)

let compile g plan =
  (match validate g plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.compile: " ^ msg));
  let plan = normalize plan in
  let link_ev = ref [] (* reversed *) in
  let loss_ev = ref [] in
  (* Control windows become boundary events first, then are replayed
     into atomic (t, drop, delay) states below. *)
  let ctrl_bounds = ref [] in
  let push r e = r := e :: !r in
  let emit = function
    | Link_down { at; link } -> push link_ev (at, link, 0.0)
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        push link_ev (at, link, capacity)
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        push link_ev (at, link, from_cap);
        for k = 1 to steps do
          let t = at +. (over *. float_of_int k /. float_of_int steps) in
          let c =
            if k = steps then to_cap
            else
              from_cap
              +. ((to_cap -. from_cap) *. float_of_int k /. float_of_int steps)
          in
          push link_ev (t, link, c)
        done
    | Loss_window { at; until; link; prob } ->
        push loss_ev (at, link, prob);
        push loss_ev (until, link, 0.0)
    | Ctrl_drop { at; until; prob } ->
        push ctrl_bounds (at, `Drop prob);
        push ctrl_bounds (until, `Drop 0.0)
    | Ctrl_delay { at; until; delay } ->
        push ctrl_bounds (at, `Delay delay);
        push ctrl_bounds (until, `Delay 0.0)
    | Node_crash { at; node } ->
        List.iter (fun l -> push link_ev (at, l, 0.0)) (incident g node)
    | Node_restart { at; node } ->
        List.iter
          (fun l -> push link_ev (at, l, Multigraph.capacity g l))
          (incident g node)
  in
  List.iter emit plan;
  (* Stable sort by time keeps generation (= plan) order for ties. *)
  let by_time f l = List.stable_sort (fun a b -> Float.compare (f a) (f b)) l in
  let link_events = by_time (fun (t, _, _) -> t) (List.rev !link_ev) in
  let loss_events = by_time (fun (t, _, _) -> t) (List.rev !loss_ev) in
  let bounds = by_time fst (List.rev !ctrl_bounds) in
  (* Replay boundaries into one (drop, delay) state per distinct
     time; at equal times the last boundary wins. *)
  let drop = ref 0.0 and delay = ref 0.0 in
  let states = ref [] in
  List.iter
    (fun (t, b) ->
      (match b with `Drop p -> drop := p | `Delay d -> delay := d);
      match !states with
      | (t', _, _) :: rest when t' = t ->
          states := (t, !drop, !delay) :: rest
      | _ -> states := (t, !drop, !delay) :: !states)
    bounds;
  { link_events; loss_events; ctrl_events = List.rev !states }

(* ---------------------------------------------------------------- *)
(* JSON codec                                                        *)

module J = Obs.Json

let action_to_json a =
  let base = [ ("op", J.String (op_name a)) ] in
  let fields =
    match a with
    | Link_down { at; link } -> [ ("at", J.Float at); ("link", J.Int link) ]
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        [ ("at", J.Float at); ("link", J.Int link); ("capacity", J.Float capacity) ]
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        [
          ("at", J.Float at);
          ("link", J.Int link);
          ("from", J.Float from_cap);
          ("to", J.Float to_cap);
          ("over", J.Float over);
          ("steps", J.Int steps);
        ]
    | Loss_window { at; until; link; prob } ->
        [
          ("at", J.Float at);
          ("until", J.Float until);
          ("link", J.Int link);
          ("prob", J.Float prob);
        ]
    | Ctrl_drop { at; until; prob } ->
        [ ("at", J.Float at); ("until", J.Float until); ("prob", J.Float prob) ]
    | Ctrl_delay { at; until; delay } ->
        [ ("at", J.Float at); ("until", J.Float until); ("delay", J.Float delay) ]
    | Node_crash { at; node } | Node_restart { at; node } ->
        [ ("at", J.Float at); ("node", J.Int node) ]
  in
  J.Obj (base @ fields)

let to_json plan =
  J.Obj
    [ ("version", J.Int 1); ("actions", J.List (List.map action_to_json plan)) ]

let float_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_float_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let action_of_json j =
  match j with
  | J.Obj _ -> (
      let* op =
        match J.member "op" j with
        | Some (J.String s) -> Ok s
        | Some _ -> Error "field \"op\": expected string"
        | None -> Error "missing field \"op\""
      in
      match op with
      | "link_down" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          Ok (Link_down { at; link })
      | "link_up" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* capacity = float_field "capacity" j in
          Ok (Link_up { at; link; capacity })
      | "capacity_set" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* capacity = float_field "capacity" j in
          Ok (Capacity_set { at; link; capacity })
      | "capacity_ramp" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* from_cap = float_field "from" j in
          let* to_cap = float_field "to" j in
          let* over = float_field "over" j in
          let* steps = int_field "steps" j in
          Ok (Capacity_ramp { at; link; from_cap; to_cap; over; steps })
      | "loss_window" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* link = int_field "link" j in
          let* prob = float_field "prob" j in
          Ok (Loss_window { at; until; link; prob })
      | "ctrl_drop" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* prob = float_field "prob" j in
          Ok (Ctrl_drop { at; until; prob })
      | "ctrl_delay" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* delay = float_field "delay" j in
          Ok (Ctrl_delay { at; until; delay })
      | "node_crash" ->
          let* at = float_field "at" j in
          let* node = int_field "node" j in
          Ok (Node_crash { at; node })
      | "node_restart" ->
          let* at = float_field "at" j in
          let* node = int_field "node" j in
          Ok (Node_restart { at; node })
      | other -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "action: expected object"

let of_json j =
  match j with
  | J.Obj _ -> (
      let* () =
        match J.member "version" j with
        | Some (J.Int 1) -> Ok ()
        | Some _ -> Error "unsupported plan version"
        | None -> Error "missing field \"version\""
      in
      match J.member "actions" j with
      | Some (J.List actions) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | a :: rest ->
                let* act = action_of_json a in
                go (act :: acc) rest
          in
          go [] actions
      | Some _ -> Error "field \"actions\": expected list"
      | None -> Error "missing field \"actions\"")
  | _ -> Error "plan: expected object"

let encode plan = J.to_string (to_json plan)

let decode s =
  match J.parse s with Ok j -> of_json j | Error msg -> Error msg

let to_file path plan =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (encode plan);
      output_char oc '\n')

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> decode (String.trim s)

(* ---------------------------------------------------------------- *)
(* Seeded generator                                                  *)

module Gen = struct
  type intensity = Light | Moderate | Heavy | Severing

  let intensity_name = function
    | Light -> "light"
    | Moderate -> "moderate"
    | Heavy -> "heavy"
    | Severing -> "severing"

  let intensity_of_name = function
    | "light" -> Some Light
    | "moderate" -> Some Moderate
    | "heavy" -> Some Heavy
    | "severing" -> Some Severing
    | _ -> None

  (* Draw order per fault (fixed — part of the seeding contract):
     kind, then the [t0 < t1] window, then kind-specific params.
     Severing plans draw the victim (when not pinned) and then one
     window; non-severing intensities consume no victim draw. *)
  let plan ?(intensity = Moderate) ?clear_by ?victim rng g ~duration =
    if not (Float.is_finite duration && duration > 0.0) then
      invalid_arg "Fault.Gen.plan: bad duration";
    let clear_by =
      match clear_by with Some c -> c | None -> duration /. 2.0
    in
    if not (Float.is_finite clear_by) || clear_by < 1.0 || clear_by > duration
    then invalid_arg "Fault.Gen.plan: clear_by must be in [1, duration]";
    let n_links = Multigraph.num_links g in
    let n_nodes = Multigraph.n_nodes g in
    if n_links = 0 then invalid_arg "Fault.Gen.plan: graph has no links";
    (match victim with
    | Some v when v < 0 || v >= n_nodes ->
      invalid_arg "Fault.Gen.plan: victim out of range"
    | _ -> ());
    let window () =
      let t0 = Rng.uniform rng 0.2 (clear_by -. 0.3) in
      let t1 = Rng.uniform rng (t0 +. 0.1) (clear_by -. 0.05) in
      (t0, t1)
    in
    match intensity with
    | Severing ->
      (* Full severance: crash one node outright, killing every link
         it terminates — every route of any flow sourced at or
         destined to it (pin the flow's endpoint with [victim]) is
         down for the whole [t0, t1] window, then the node restarts
         with its original capacities. *)
      let v = match victim with Some v -> v | None -> Rng.int rng n_nodes in
      let t0, t1 = window () in
      [ Node_crash { at = t0; node = v }; Node_restart { at = t1; node = v } ]
    | Light | Moderate | Heavy ->
    let n_faults =
      match intensity with
      | Light -> 1 + Rng.int rng 2
      | Moderate -> 3 + Rng.int rng 3
      | Heavy | Severing -> 6 + Rng.int rng 5
    in
    let fault () =
      let kind = Rng.int rng 7 in
      let t0, t1 = window () in
      match kind with
      | 0 ->
          (* Link flap: both directions of a physical edge. *)
          let l = Rng.int rng n_links in
          let peer = (Multigraph.link g l).Multigraph.peer in
          [
            Link_down { at = t0; link = l };
            Link_down { at = t0; link = peer };
            Link_up { at = t1; link = l; capacity = Multigraph.capacity g l };
            Link_up
              { at = t1; link = peer; capacity = Multigraph.capacity g peer };
          ]
      | 1 ->
          let l = Rng.int rng n_links in
          let cap = Multigraph.capacity g l in
          let frac = Rng.uniform rng 0.2 0.8 in
          [
            Capacity_set { at = t0; link = l; capacity = frac *. cap };
            Capacity_set { at = t1; link = l; capacity = cap };
          ]
      | 2 ->
          let l = Rng.int rng n_links in
          let cap = Multigraph.capacity g l in
          let frac = Rng.uniform rng 0.2 0.8 in
          [
            Capacity_ramp
              {
                at = t0;
                link = l;
                from_cap = cap;
                to_cap = frac *. cap;
                over = (t1 -. t0) *. 0.5;
                steps = 3;
              };
            Capacity_set { at = t1; link = l; capacity = cap };
          ]
      | 3 ->
          let l = Rng.int rng n_links in
          let prob = Rng.uniform rng 0.05 0.4 in
          [ Loss_window { at = t0; until = t1; link = l; prob } ]
      | 4 ->
          let prob = Rng.uniform rng 0.1 0.5 in
          [ Ctrl_drop { at = t0; until = t1; prob } ]
      | 5 ->
          let delay = Rng.uniform rng 0.02 0.15 in
          [ Ctrl_delay { at = t0; until = t1; delay } ]
      | _ ->
          let node = Rng.int rng n_nodes in
          [ Node_crash { at = t0; node }; Node_restart { at = t1; node } ]
    in
    let rec go n acc = if n = 0 then acc else go (n - 1) (acc @ fault ()) in
    go n_faults []
end
