(* Deterministic fault-plan DSL, codec, compiler and generator. See
   fault.mli for the semantics, tie-break and seeding contracts. *)

type action =
  | Link_down of { at : float; link : int }
  | Link_up of { at : float; link : int; capacity : float }
  | Capacity_set of { at : float; link : int; capacity : float }
  | Capacity_ramp of {
      at : float;
      link : int;
      from_cap : float;
      to_cap : float;
      over : float;
      steps : int;
    }
  | Loss_window of { at : float; until : float; link : int; prob : float }
  | Ctrl_drop of { at : float; until : float; prob : float }
  | Ctrl_delay of { at : float; until : float; delay : float }
  | Node_crash of { at : float; node : int }
  | Node_restart of { at : float; node : int }
  | Node_flap of {
      at : float;
      until : float;
      node : int;
      period : float;
      duty : float;
    }
  | Capacity_drift of {
      at : float;
      until : float;
      link : int;
      floor_frac : float;
      period : float;
      steps : int;
    }
  | Node_join of { at : float; node : int }

type plan = action list

let empty : plan = []

let start_time = function
  | Link_down { at; _ }
  | Link_up { at; _ }
  | Capacity_set { at; _ }
  | Capacity_ramp { at; _ }
  | Loss_window { at; _ }
  | Ctrl_drop { at; _ }
  | Ctrl_delay { at; _ }
  | Node_crash { at; _ }
  | Node_restart { at; _ }
  | Node_flap { at; _ }
  | Capacity_drift { at; _ } ->
      at
  (* A join's first effect is holding the node's links down from the
     start of the run; [at] is when it comes alive. *)
  | Node_join _ -> 0.0

let end_time = function
  | Link_down { at; _ }
  | Link_up { at; _ }
  | Capacity_set { at; _ }
  | Node_crash { at; _ }
  | Node_restart { at; _ }
  | Node_join { at; _ } ->
      at
  | Capacity_ramp { at; over; _ } -> at +. over
  | Loss_window { until; _ }
  | Ctrl_drop { until; _ }
  | Ctrl_delay { until; _ }
  | Node_flap { until; _ }
  | Capacity_drift { until; _ } ->
      until

let op_name = function
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Capacity_set _ -> "capacity_set"
  | Capacity_ramp _ -> "capacity_ramp"
  | Loss_window _ -> "loss_window"
  | Ctrl_drop _ -> "ctrl_drop"
  | Ctrl_delay _ -> "ctrl_delay"
  | Node_crash _ -> "node_crash"
  | Node_restart _ -> "node_restart"
  | Node_flap _ -> "node_flap"
  | Capacity_drift _ -> "capacity_drift"
  | Node_join _ -> "node_join"

let action_version = function
  | Node_flap _ | Capacity_drift _ | Node_join _ -> 2
  | _ -> 1

let plan_version plan = List.fold_left (fun v a -> max v (action_version a)) 1 plan

(* Stable by construction: equal-time actions keep plan order, which
   is what makes the last-wins tie-break well defined. *)
let normalize plan =
  List.stable_sort
    (fun a b -> Float.compare (start_time a) (start_time b))
    plan

let validate g plan =
  let n_links = Multigraph.num_links g in
  let n_nodes = Multigraph.n_nodes g in
  let err a msg = Error (Printf.sprintf "%s: %s" (op_name a) msg) in
  let time_ok t = Float.is_finite t && t >= 0.0 in
  let prob_ok p = Float.is_finite p && p >= 0.0 && p <= 1.0 in
  let cap_ok c = Float.is_finite c && c >= 0.0 in
  let link_ok l = l >= 0 && l < n_links in
  let node_ok n = n >= 0 && n < n_nodes in
  let check a =
    match a with
    | Link_down { at; link } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else Ok ()
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else if not (cap_ok capacity) then err a "bad capacity"
        else Ok ()
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        if not (time_ok at) then err a "bad time"
        else if not (link_ok link) then err a "link out of range"
        else if not (cap_ok from_cap && cap_ok to_cap) then
          err a "bad capacity"
        else if not (Float.is_finite over && over > 0.0) then
          err a "over must be > 0"
        else if steps < 1 then err a "steps must be >= 1"
        else Ok ()
    | Loss_window { at; until; link; prob } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (link_ok link) then err a "link out of range"
        else if not (prob_ok prob) then err a "prob must be in [0,1]"
        else Ok ()
    | Ctrl_drop { at; until; prob } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (prob_ok prob) then err a "prob must be in [0,1]"
        else Ok ()
    | Ctrl_delay { at; until; delay } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (Float.is_finite delay && delay >= 0.0) then
          err a "bad delay"
        else Ok ()
    | Node_crash { at; node } | Node_restart { at; node } ->
        if not (time_ok at) then err a "bad time"
        else if not (node_ok node) then err a "node out of range"
        else Ok ()
    | Node_flap { at; until; node; period; duty } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (node_ok node) then err a "node out of range"
        else if not (Float.is_finite period && period > 0.0) then
          err a "period must be > 0"
        else if not (Float.is_finite duty && duty > 0.0 && duty < 1.0) then
          err a "duty must be in (0,1)"
        else if at +. (duty *. period) > until then
          err a "window too short for one crash/restart cycle"
        else Ok ()
    | Capacity_drift { at; until; link; floor_frac; period; steps } ->
        if not (time_ok at && time_ok until) then err a "bad time"
        else if until <= at then err a "until must be > at"
        else if not (link_ok link) then err a "link out of range"
        else if not (prob_ok floor_frac) then
          err a "floor must be in [0,1]"
        else if not (Float.is_finite period && period > 0.0) then
          err a "period must be > 0"
        else if steps < 1 then err a "steps must be >= 1"
        else if at +. period > until then
          err a "window too short for one drift cycle"
        else Ok ()
    | Node_join { at; node } ->
        if not (time_ok at && at > 0.0) then err a "bad time"
        else if not (node_ok node) then err a "node out of range"
        else Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | a :: rest -> ( match check a with Ok () -> go rest | Error _ as e -> e)
  in
  go plan

type compiled = {
  link_events : (float * int * float) list;
  loss_events : (float * int * float) list;
  ctrl_events : (float * float * float) list;
}

(* Directed links incident to a node, ascending id (out and in links
   are disjoint because self-loops are impossible). *)
let incident g node =
  List.sort compare (Multigraph.out_links g node @ Multigraph.in_links g node)

let compile g plan =
  (match validate g plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.compile: " ^ msg));
  let plan = normalize plan in
  let link_ev = ref [] (* reversed *) in
  let loss_ev = ref [] in
  (* Control windows become boundary events first, then are replayed
     into atomic (t, drop, delay) states below. *)
  let ctrl_bounds = ref [] in
  let push r e = r := e :: !r in
  let emit = function
    | Link_down { at; link } -> push link_ev (at, link, 0.0)
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        push link_ev (at, link, capacity)
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        push link_ev (at, link, from_cap);
        for k = 1 to steps do
          let t = at +. (over *. float_of_int k /. float_of_int steps) in
          let c =
            if k = steps then to_cap
            else
              from_cap
              +. ((to_cap -. from_cap) *. float_of_int k /. float_of_int steps)
          in
          push link_ev (t, link, c)
        done
    | Loss_window { at; until; link; prob } ->
        push loss_ev (at, link, prob);
        push loss_ev (until, link, 0.0)
    | Ctrl_drop { at; until; prob } ->
        push ctrl_bounds (at, `Drop prob);
        push ctrl_bounds (until, `Drop 0.0)
    | Ctrl_delay { at; until; delay } ->
        push ctrl_bounds (at, `Delay delay);
        push ctrl_bounds (until, `Delay 0.0)
    | Node_crash { at; node } ->
        List.iter (fun l -> push link_ev (at, l, 0.0)) (incident g node)
    | Node_restart { at; node } ->
        List.iter
          (fun l -> push link_ev (at, l, Multigraph.capacity g l))
          (incident g node)
    | Node_flap { at; until; node; period; duty } ->
        (* Crash/restart cycles: crash k starts at [at + k*period] and
           the node is down for [duty * period]; only cycles whose
           restart fits inside the window are emitted, so the node
           always ends restored. Times are computed from the cycle
           index (not accumulated) to keep them float-exact. *)
        let links = incident g node in
        let k = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let c = at +. (float_of_int !k *. period) in
          let r = c +. (duty *. period) in
          if r <= until then begin
            List.iter (fun l -> push link_ev (c, l, 0.0)) links;
            List.iter
              (fun l -> push link_ev (r, l, Multigraph.capacity g l))
              links;
            incr k
          end
          else continue_ := false
        done
    | Capacity_drift { at; until; link; floor_frac; period; steps } ->
        (* Repeating triangular ramp: each cycle descends from the
           nominal capacity to [floor_frac * nominal] over half a
           period in [steps] equal setpoints, then climbs back. Only
           full cycles inside the window are emitted, so the link
           always ends at its nominal capacity. *)
        let cap = Multigraph.capacity g link in
        let floor_cap = floor_frac *. cap in
        let half = period /. 2.0 in
        let k = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let c0 = at +. (float_of_int !k *. period) in
          if c0 +. period <= until then begin
            for j = 1 to steps do
              let t = c0 +. (half *. float_of_int j /. float_of_int steps) in
              let v =
                if j = steps then floor_cap
                else
                  cap +. ((floor_cap -. cap) *. float_of_int j /. float_of_int steps)
              in
              push link_ev (t, link, v)
            done;
            for j = 1 to steps do
              let t =
                c0 +. half +. (half *. float_of_int j /. float_of_int steps)
              in
              let v =
                if j = steps then cap
                else
                  floor_cap
                  +. ((cap -. floor_cap) *. float_of_int j /. float_of_int steps)
              in
              push link_ev (t, link, v)
            done;
            incr k
          end
          else continue_ := false
        done
    | Node_join { at; node } ->
        (* Deferred activation: the node's links are held down from the
           start of the run and come alive at [at] with the capacities
           of the compiled graph. *)
        let links = incident g node in
        List.iter (fun l -> push link_ev (0.0, l, 0.0)) links;
        List.iter
          (fun l -> push link_ev (at, l, Multigraph.capacity g l))
          links
  in
  List.iter emit plan;
  (* Stable sort by time keeps generation (= plan) order for ties. *)
  let by_time f l = List.stable_sort (fun a b -> Float.compare (f a) (f b)) l in
  let link_events = by_time (fun (t, _, _) -> t) (List.rev !link_ev) in
  let loss_events = by_time (fun (t, _, _) -> t) (List.rev !loss_ev) in
  let bounds = by_time fst (List.rev !ctrl_bounds) in
  (* Replay boundaries into one (drop, delay) state per distinct
     time; at equal times the last boundary wins. *)
  let drop = ref 0.0 and delay = ref 0.0 in
  let states = ref [] in
  List.iter
    (fun (t, b) ->
      (match b with `Drop p -> drop := p | `Delay d -> delay := d);
      match !states with
      | (t', _, _) :: rest when t' = t ->
          states := (t, !drop, !delay) :: rest
      | _ -> states := (t, !drop, !delay) :: !states)
    bounds;
  { link_events; loss_events; ctrl_events = List.rev !states }

(* ---------------------------------------------------------------- *)
(* JSON codec                                                        *)

module J = Obs.Json

let action_to_json a =
  let base = [ ("op", J.String (op_name a)) ] in
  let fields =
    match a with
    | Link_down { at; link } -> [ ("at", J.Float at); ("link", J.Int link) ]
    | Link_up { at; link; capacity } | Capacity_set { at; link; capacity } ->
        [ ("at", J.Float at); ("link", J.Int link); ("capacity", J.Float capacity) ]
    | Capacity_ramp { at; link; from_cap; to_cap; over; steps } ->
        [
          ("at", J.Float at);
          ("link", J.Int link);
          ("from", J.Float from_cap);
          ("to", J.Float to_cap);
          ("over", J.Float over);
          ("steps", J.Int steps);
        ]
    | Loss_window { at; until; link; prob } ->
        [
          ("at", J.Float at);
          ("until", J.Float until);
          ("link", J.Int link);
          ("prob", J.Float prob);
        ]
    | Ctrl_drop { at; until; prob } ->
        [ ("at", J.Float at); ("until", J.Float until); ("prob", J.Float prob) ]
    | Ctrl_delay { at; until; delay } ->
        [ ("at", J.Float at); ("until", J.Float until); ("delay", J.Float delay) ]
    | Node_crash { at; node } | Node_restart { at; node }
    | Node_join { at; node } ->
        [ ("at", J.Float at); ("node", J.Int node) ]
    | Node_flap { at; until; node; period; duty } ->
        [
          ("at", J.Float at);
          ("until", J.Float until);
          ("node", J.Int node);
          ("period", J.Float period);
          ("duty", J.Float duty);
        ]
    | Capacity_drift { at; until; link; floor_frac; period; steps } ->
        [
          ("at", J.Float at);
          ("until", J.Float until);
          ("link", J.Int link);
          ("floor", J.Float floor_frac);
          ("period", J.Float period);
          ("steps", J.Int steps);
        ]
  in
  J.Obj (base @ fields)

(* Legacy-only plans keep emitting ["version": 1] byte-for-byte; the
   version is raised to 2 only when a churn op is present. *)
let to_json plan =
  J.Obj
    [
      ("version", J.Int (plan_version plan));
      ("actions", J.List (List.map action_to_json plan));
    ]

let float_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_float_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let action_of_json j =
  match j with
  | J.Obj _ -> (
      let* op =
        match J.member "op" j with
        | Some (J.String s) -> Ok s
        | Some _ -> Error "field \"op\": expected string"
        | None -> Error "missing field \"op\""
      in
      match op with
      | "link_down" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          Ok (Link_down { at; link })
      | "link_up" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* capacity = float_field "capacity" j in
          Ok (Link_up { at; link; capacity })
      | "capacity_set" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* capacity = float_field "capacity" j in
          Ok (Capacity_set { at; link; capacity })
      | "capacity_ramp" ->
          let* at = float_field "at" j in
          let* link = int_field "link" j in
          let* from_cap = float_field "from" j in
          let* to_cap = float_field "to" j in
          let* over = float_field "over" j in
          let* steps = int_field "steps" j in
          Ok (Capacity_ramp { at; link; from_cap; to_cap; over; steps })
      | "loss_window" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* link = int_field "link" j in
          let* prob = float_field "prob" j in
          Ok (Loss_window { at; until; link; prob })
      | "ctrl_drop" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* prob = float_field "prob" j in
          Ok (Ctrl_drop { at; until; prob })
      | "ctrl_delay" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* delay = float_field "delay" j in
          Ok (Ctrl_delay { at; until; delay })
      | "node_crash" ->
          let* at = float_field "at" j in
          let* node = int_field "node" j in
          Ok (Node_crash { at; node })
      | "node_restart" ->
          let* at = float_field "at" j in
          let* node = int_field "node" j in
          Ok (Node_restart { at; node })
      | "node_flap" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* node = int_field "node" j in
          let* period = float_field "period" j in
          let* duty = float_field "duty" j in
          Ok (Node_flap { at; until; node; period; duty })
      | "capacity_drift" ->
          let* at = float_field "at" j in
          let* until = float_field "until" j in
          let* link = int_field "link" j in
          let* floor_frac = float_field "floor" j in
          let* period = float_field "period" j in
          let* steps = int_field "steps" j in
          Ok (Capacity_drift { at; until; link; floor_frac; period; steps })
      | "node_join" ->
          let* at = float_field "at" j in
          let* node = int_field "node" j in
          Ok (Node_join { at; node })
      | other -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "action: expected object"

let of_json j =
  match j with
  | J.Obj _ -> (
      let* version =
        match J.member "version" j with
        | Some (J.Int (1 as v)) | Some (J.Int (2 as v)) -> Ok v
        | Some _ -> Error "unsupported plan version"
        | None -> Error "missing field \"version\""
      in
      match J.member "actions" j with
      | Some (J.List actions) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | a :: rest ->
                let* act = action_of_json a in
                if action_version act > version then
                  Error
                    (Printf.sprintf "op %S requires plan version %d"
                       (op_name act) (action_version act))
                else go (act :: acc) rest
          in
          go [] actions
      | Some _ -> Error "field \"actions\": expected list"
      | None -> Error "missing field \"actions\"")
  | _ -> Error "plan: expected object"

let encode plan = J.to_string (to_json plan)

let decode s =
  match J.parse s with Ok j -> of_json j | Error msg -> Error msg

let to_file path plan =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (encode plan);
      output_char oc '\n')

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> decode (String.trim s)

(* ---------------------------------------------------------------- *)
(* Seeded generator                                                  *)

module Gen = struct
  type intensity = Light | Moderate | Heavy | Severing | Churn

  let intensity_name = function
    | Light -> "light"
    | Moderate -> "moderate"
    | Heavy -> "heavy"
    | Severing -> "severing"
    | Churn -> "churn"

  let intensity_of_name = function
    | "light" -> Some Light
    | "moderate" -> Some Moderate
    | "heavy" -> Some Heavy
    | "severing" -> Some Severing
    | "churn" -> Some Churn
    | _ -> None

  (* Draw order per fault (fixed — part of the seeding contract):
     kind, then the [t0 < t1] window, then kind-specific params.
     Severing plans draw the victim (when not pinned) and then one
     window; non-severing intensities consume no victim draw.

     Victims are drawn by indexing the sorted array of eligible
     (unprotected) nodes / links. With an empty protect set the
     eligible arrays are the identity, so the consumed draws — and
     therefore the generated plans — are byte-identical to the
     pre-[?protect] generator. *)
  let plan ?(intensity = Moderate) ?clear_by ?victim ?(protect = []) rng g
      ~duration =
    if not (Float.is_finite duration && duration > 0.0) then
      invalid_arg "Fault.Gen.plan: bad duration";
    let clear_by =
      match clear_by with Some c -> c | None -> duration /. 2.0
    in
    if not (Float.is_finite clear_by) || clear_by < 1.0 || clear_by > duration
    then invalid_arg "Fault.Gen.plan: clear_by must be in [1, duration]";
    let n_links = Multigraph.num_links g in
    let n_nodes = Multigraph.n_nodes g in
    if n_links = 0 then invalid_arg "Fault.Gen.plan: graph has no links";
    (match victim with
    | Some v when v < 0 || v >= n_nodes ->
      invalid_arg "Fault.Gen.plan: victim out of range"
    | _ -> ());
    List.iter
      (fun v ->
        if v < 0 || v >= n_nodes then
          invalid_arg "Fault.Gen.plan: protect node out of range")
      protect;
    let protected_ v = List.mem v protect in
    let nodes =
      Array.of_list
        (List.filter (fun v -> not (protected_ v)) (List.init n_nodes Fun.id))
    in
    let links =
      Array.of_list
        (List.filter
           (fun l ->
             let lk = Multigraph.link g l in
             not (protected_ lk.Multigraph.src || protected_ lk.Multigraph.dst))
           (List.init n_links Fun.id))
    in
    if Array.length nodes = 0 || Array.length links = 0 then
      invalid_arg "Fault.Gen.plan: protect leaves no eligible victims";
    let pick_node () = nodes.(Rng.int rng (Array.length nodes)) in
    let pick_link () = links.(Rng.int rng (Array.length links)) in
    let window () =
      let t0 = Rng.uniform rng 0.2 (clear_by -. 0.3) in
      let t1 = Rng.uniform rng (t0 +. 0.1) (clear_by -. 0.05) in
      (t0, t1)
    in
    match intensity with
    | Severing ->
      (* Full severance: crash one node outright, killing every link
         it terminates — every route of any flow sourced at or
         destined to it (pin the flow's endpoint with [victim]) is
         down for the whole [t0, t1] window, then the node restarts
         with its original capacities. A pinned victim overrides the
         protect set: severing a protected node must be explicit. *)
      let v = match victim with Some v -> v | None -> pick_node () in
      let t0, t1 = window () in
      [ Node_crash { at = t0; node = v }; Node_restart { at = t1; node = v } ]
    | Churn ->
      (* Long-horizon churn: sustained flapping, slow capacity drift
         and a deferred node join, spanning up to ~0.9 x duration
         (clear_by is ignored). Draw order (seeding contract):
         n_flaps; per flap node, at, period, duty, until; n_drifts;
         per drift link, floor, at, until, cycle count; then the
         join node and join time. *)
      if duration < 10.0 then
        invalid_arg "Fault.Gen.plan: churn needs duration >= 10";
      let n_flaps = 1 + Rng.int rng 2 in
      let flaps =
        List.concat
          (List.init n_flaps (fun _ ->
               let node = pick_node () in
               let at = Rng.uniform rng 1.0 (duration *. 0.2) in
               let period = Rng.uniform rng 1.5 3.5 in
               let duty = Rng.uniform rng 0.3 0.5 in
               let until =
                 Rng.uniform rng (duration *. 0.55) (duration *. 0.85)
               in
               [ Node_flap { at; until; node; period; duty } ]))
      in
      let n_drifts = 1 + Rng.int rng 2 in
      let drifts =
        List.concat
          (List.init n_drifts (fun _ ->
               let link = pick_link () in
               let floor_frac = Rng.uniform rng 0.2 0.5 in
               let at = Rng.uniform rng 0.5 (duration *. 0.15) in
               let until =
                 Rng.uniform rng (duration *. 0.6) (duration *. 0.9)
               in
               let cycles = 2 + Rng.int rng 3 in
               let period = (until -. at) /. float_of_int cycles in
               [ Capacity_drift { at; until; link; floor_frac; period; steps = 4 } ]))
      in
      let join_node = pick_node () in
      let join_at = Rng.uniform rng (duration *. 0.2) (duration *. 0.5) in
      flaps @ drifts @ [ Node_join { at = join_at; node = join_node } ]
    | Light | Moderate | Heavy ->
    let n_faults =
      match intensity with
      | Light -> 1 + Rng.int rng 2
      | Moderate -> 3 + Rng.int rng 3
      | Heavy | Severing | Churn -> 6 + Rng.int rng 5
    in
    let fault () =
      let kind = Rng.int rng 7 in
      let t0, t1 = window () in
      match kind with
      | 0 ->
          (* Link flap: both directions of a physical edge. *)
          let l = pick_link () in
          let peer = (Multigraph.link g l).Multigraph.peer in
          [
            Link_down { at = t0; link = l };
            Link_down { at = t0; link = peer };
            Link_up { at = t1; link = l; capacity = Multigraph.capacity g l };
            Link_up
              { at = t1; link = peer; capacity = Multigraph.capacity g peer };
          ]
      | 1 ->
          let l = pick_link () in
          let cap = Multigraph.capacity g l in
          let frac = Rng.uniform rng 0.2 0.8 in
          [
            Capacity_set { at = t0; link = l; capacity = frac *. cap };
            Capacity_set { at = t1; link = l; capacity = cap };
          ]
      | 2 ->
          let l = pick_link () in
          let cap = Multigraph.capacity g l in
          let frac = Rng.uniform rng 0.2 0.8 in
          [
            Capacity_ramp
              {
                at = t0;
                link = l;
                from_cap = cap;
                to_cap = frac *. cap;
                over = (t1 -. t0) *. 0.5;
                steps = 3;
              };
            Capacity_set { at = t1; link = l; capacity = cap };
          ]
      | 3 ->
          let l = pick_link () in
          let prob = Rng.uniform rng 0.05 0.4 in
          [ Loss_window { at = t0; until = t1; link = l; prob } ]
      | 4 ->
          let prob = Rng.uniform rng 0.1 0.5 in
          [ Ctrl_drop { at = t0; until = t1; prob } ]
      | 5 ->
          let delay = Rng.uniform rng 0.02 0.15 in
          [ Ctrl_delay { at = t0; until = t1; delay } ]
      | _ ->
          let node = pick_node () in
          [ Node_crash { at = t0; node }; Node_restart { at = t1; node } ]
    in
    let rec go n acc = if n = 0 then acc else go (n - 1) (acc @ fault ()) in
    go n_faults []
end
