(** Deterministic fault injection: a typed DSL of timed fault
    actions, compiled into the event streams that {!Engine.run}
    already understands.

    A {e fault plan} is a list of {!action}s. Plans are plain data:
    they can be written by hand, decoded from JSON ({!decode} /
    {!of_file}) or drawn reproducibly from a seed ({!Gen.plan}).
    {!compile} lowers a plan against a concrete {!Multigraph.t} into
    three sorted event schedules — capacity changes, frame-loss
    probability changes and control-plane fault changes — that are
    passed to the engine as [~link_events], [~loss_events] and
    [~ctrl_events]. The compiler never talks to the engine, so this
    library depends only on the graph layer and plans stay valid
    across engine versions.

    {2 Semantics}

    - Capacity actions ({!action.Link_down}, {!action.Link_up},
      {!action.Capacity_set}, {!action.Capacity_ramp}) drive the
      engine's capacity hook. Capacity 0 is a failure: the engine
      flushes the link's queue (frames drop with reason
      [backlog_cleared]) and MAC holders finish their slot into a
      dead link.
    - {!action.Node_crash} fails {e every} directed link incident to
      the node (out-links and in-links), flushing their queues;
      {!action.Node_restart} restores those links to the capacities
      recorded in the graph the plan was compiled against.
    - {!action.Loss_window} sets a per-link frame-loss probability
      for an interval. A lossy frame still wins the MAC and occupies
      the medium for its full airtime — like a collision — and is
      then dropped with reason [fault_injected].
    - {!action.Ctrl_drop} / {!action.Ctrl_delay} set the control
      plane's ACK-drop probability / extra ACK latency for an
      interval (EMPoWER's 100 ms reports; TCP's in-band cumulative
      ACKs are transport payload and are not affected).

    {2 Tie-break contract}

    {!normalize} sorts actions by start time with a {e stable} sort,
    so actions scheduled at the same instant keep their plan order,
    and {!compile} preserves that order in its output schedules. The
    engine pops equal-time events FIFO, therefore: {b equal-time
    actions apply in plan order, and the last one wins}. Concretely,
    [Link_down] at [t] followed by [Capacity_set] at [t] first
    flushes the queue (the down is applied, dropping queued frames)
    and then restores the capacity — the link ends up alive but
    empty. The reverse order leaves the link dead. Overlapping
    windows do not stack: each window boundary sets the current
    value, so the boundary most recently applied wins.

    {2 Seeding contract}

    {!Gen.plan} consumes randomness only from the {!Rng.t} it is
    given, in a fixed documented order, so equal seeds yield equal
    plans byte-for-byte; combined with the engine's own determinism
    contract, a [(plan seed, engine seed)] pair pins down an entire
    chaos run bit-exactly. *)

type action =
  | Link_down of { at : float; link : int }
      (** Capacity of directed link [link] becomes 0 at [at]. *)
  | Link_up of { at : float; link : int; capacity : float }
      (** Link [link] comes back at [capacity] Mbit/s. *)
  | Capacity_set of { at : float; link : int; capacity : float }
      (** Degrade (or improve) a link without killing it. *)
  | Capacity_ramp of {
      at : float;
      link : int;
      from_cap : float;
      to_cap : float;
      over : float;  (** ramp duration, > 0 *)
      steps : int;  (** >= 1 capacity steps after the initial set *)
    }
      (** Piecewise-linear capacity ramp: capacity is set to
          [from_cap] at [at], then stepped linearly to reach
          [to_cap] at [at +. over] in [steps] equal steps. *)
  | Loss_window of { at : float; until : float; link : int; prob : float }
      (** Frames granted the MAC on [link] are lost with probability
          [prob] for [at <= t < until]. *)
  | Ctrl_drop of { at : float; until : float; prob : float }
      (** EMPoWER 100 ms ACK reports are dropped with probability
          [prob] for [at <= t < until]. *)
  | Ctrl_delay of { at : float; until : float; delay : float }
      (** ACK reports take an extra [delay] seconds for
          [at <= t < until]. *)
  | Node_crash of { at : float; node : int }
      (** All directed links incident to [node] fail at [at]. *)
  | Node_restart of { at : float; node : int }
      (** All links incident to [node] return to the capacities of
          the graph the plan is compiled against. *)
  | Node_flap of {
      at : float;
      until : float;
      node : int;
      period : float;
      duty : float;
    }
      (** Long-horizon crash/restart flapping (plan version 2): the
          node crashes at [at + k *. period] for [k = 0, 1, ...] and
          restarts [duty *. period] seconds later; only cycles whose
          restart fits inside [until] run, so the node always ends
          restored. Requires [period > 0], [duty] in [(0,1)] and a
          window long enough for one full cycle. *)
  | Capacity_drift of {
      at : float;
      until : float;
      link : int;
      floor_frac : float;
      period : float;
      steps : int;
    }
      (** Slow repeating capacity ramp (plan version 2): each
          [period]-long cycle steps the link from its compiled
          nominal capacity down to [floor_frac] of it over half the
          period in [steps] equal setpoints, then back up. Only full
          cycles inside [until] run, so the link always ends at its
          nominal capacity. *)
  | Node_join of { at : float; node : int }
      (** Deferred activation (plan version 2): every link incident
          to [node] is held at capacity 0 from the start of the run
          and comes alive at [at] with the compiled capacities —
          i.e. the node "joins" the network mid-run. [at] must be
          strictly positive. *)

type plan = action list

val empty : plan

val start_time : action -> float
(** The instant the action first takes effect ([at]; [0.] for
    {!action.Node_join}, whose links are held down from the start). *)

val end_time : action -> float
(** The instant the action stops changing the network: [until] for
    windowed actions, [at +. over] for ramps, [at] for instantaneous
    actions and joins. *)

val op_name : action -> string
(** Stable identifier used by the JSON codec (["link_down"], ...). *)

val plan_version : plan -> int
(** Codec version the plan encodes as: [2] when any churn action
    ({!action.Node_flap}, {!action.Capacity_drift},
    {!action.Node_join}) is present, else [1] — so legacy plans keep
    their byte-exact version-1 encoding. *)

val normalize : plan -> plan
(** Stable sort by {!start_time}; equal-time actions keep plan
    order (the tie-break contract above). *)

val validate : Multigraph.t -> plan -> (unit, string) result
(** Checks every action against the graph: times finite and [>= 0],
    windows with [until > at], probabilities in [[0,1]], capacities
    finite and [>= 0], delays finite and [>= 0], [steps >= 1],
    [over > 0], link ids in [[0, num_links)], node ids in
    [[0, num_nodes)]. The [Error] names the offending action. *)

(** The engine-ready schedules a plan lowers to. Each list is sorted
    by time (equal times in plan order) and uses the exact tuple
    shapes [Engine.run] takes. *)
type compiled = {
  link_events : (float * int * float) list;  (** (t, link, capacity) *)
  loss_events : (float * int * float) list;  (** (t, link, loss probability) *)
  ctrl_events : (float * float * float) list;
      (** (t, ack drop probability, extra ack delay) — both values
          are set atomically at [t]. *)
}

val compile : Multigraph.t -> plan -> compiled
(** Normalizes, validates (raising [Invalid_argument] on a bad
    plan) and lowers the plan. [compile g []] is three empty lists,
    so an empty plan reproduces the unfaulted run exactly. *)

val to_json : plan -> Obs.Json.t
val of_json : Obs.Json.t -> (plan, string) result
(** Strict: unknown ["op"], missing / mistyped fields and bad
    ["version"] are [Error]s, and a version-1 document containing a
    version-2 op is rejected. Versions 1 and 2 are accepted.
    [of_json (to_json p) = Ok p]. *)

val encode : plan -> string
(** Compact JSON, no trailing newline. *)

val decode : string -> (plan, string) result

val to_file : string -> plan -> unit
val of_file : string -> (plan, string) result

(** Random-but-reproducible plans from a seed and an intensity
    profile. *)
module Gen : sig
  type intensity = Light | Moderate | Heavy | Severing | Churn

  val intensity_name : intensity -> string
  (** ["light"] | ["moderate"] | ["heavy"] | ["severing"] |
      ["churn"]. *)

  val intensity_of_name : string -> intensity option

  val plan :
    ?intensity:intensity ->
    ?clear_by:float ->
    ?victim:int ->
    ?protect:int list ->
    Rng.t ->
    Multigraph.t ->
    duration:float ->
    plan
  (** Draw a plan for a run of [duration] seconds. Every injected
      fault both starts and clears strictly before [clear_by]
      (default [duration /. 2.]), leaving the tail of the run for
      recovery measurement. Fault counts: [Light] 1–2, [Moderate]
      3–5 (default), [Heavy] 6–10. Kinds drawn per fault: link
      flaps (both directions of an edge), capacity degradations,
      capacity ramps, loss windows, control drop/delay windows and
      node crash/restart pairs.

      [Severing] is the full-severance profile: it crashes exactly
      one node — [victim] when given, else drawn uniformly — for one
      bounded window inside [0.2, clear_by], then restarts it. A
      crash kills {e every} link the node terminates, so every route
      of any flow with the victim as an endpoint is guaranteed down
      for the whole window; pin [victim] to a flow endpoint to sever
      that flow. Draw order (part of the seeding contract): victim
      (only when not pinned), then the window; non-severing
      intensities never consume the victim draw, so pre-existing
      plans are byte-stable. [victim] is ignored by non-severing
      intensities.

      [Churn] is the long-horizon profile: it ignores [clear_by] and
      draws sustained {!action.Node_flap} cycles (1–2), slow
      {!action.Capacity_drift} ramps (1–2) and one deferred
      {!action.Node_join}, with windows extending to ~0.9 x
      [duration]. Draw order (seeding contract): flap count, then
      per flap node / start / period / duty / until; drift count,
      then per drift link / floor / start / until / cycle count;
      finally the join node and join time. Requires
      [duration >= 10].

      [protect] is a node set that generated churn must route
      around: node victims (crash / restart, flaps, joins, the
      unpinned severing victim) are drawn only from unprotected
      nodes, and link victims (flaps, degradations, ramps, loss
      windows, drifts) only from links with both endpoints
      unprotected — so passing a flow's endpoints guarantees a
      generated plan never severs that flow's last route at its
      source or destination. Victims are drawn by indexing the
      ascending array of eligible ids, so an empty [protect]
      consumes exactly the draws of the pre-[protect] generator and
      existing seeded plans are byte-stable. A pinned Severing
      [victim] overrides [protect]: severing a protected node must
      be asked for explicitly.

      Raises [Invalid_argument] if [clear_by < 1.0],
      [clear_by > duration], the victim or a protected node is out
      of range, the graph has no links, [protect] leaves no
      eligible victim, or [duration < 10] for [Churn]. *)
end
