(** A minimal IEEE 1905.1 abstraction-layer entity.

    Each node runs an AL identified by an AL MAC address. The AL
    answers topology queries with a device-information TLV (its
    interfaces and their media types) plus one link-metric TLV per
    egress link, and absorbs other devices' responses into a topology
    database from which the hybrid multigraph can be reconstructed —
    the 1905.1-standard path to the same knowledge EMPoWER's own
    LSAs provide ("the IEEE 1905.1 standard ... provides an
    abstraction layer without specifying routing or load-balancing
    algorithms"; EMPoWER supplies those on top). *)

type t

val create : node:int -> techs:Technology.t array -> t
(** The AL of one node. Interface MACs are derived deterministically
    from (node, technology). *)

val node : t -> int

val al_mac : t -> string
(** 6-byte AL MAC. *)

val media_of_tech : Technology.t -> Tlv.media_type
(** 1905.1 media type of a technology (802.11 channel variants,
    IEEE 1901). *)

val topology_response :
  t -> Multigraph.t -> message_id:int -> Cmdu.t
(** The CMDU this AL sends in response to a topology query, given its
    current view of its own links: device information + one
    link-metric TLV per usable egress link. *)

val handle : t -> Cmdu.t -> unit
(** Absorb a received CMDU (topology / link-metric responses and
    notifications). Messages with a lower id than already seen from
    the same AL are ignored; unknown TLVs are skipped. *)

val known_devices : t -> int
(** Number of distinct remote ALs heard from. *)

val graph : t -> n_nodes:int -> Multigraph.t
(** Reconstruct the multigraph from the collected link metrics
    (bidirectional estimates averaged; foreign/garbled MACs are
    ignored). *)

val node_of_mac : string -> (int * int) option
(** Inverse of {!Tlv.mac_of_node}: [(node, tech)] when the MAC is one
    of ours (02:19:05 prefix). *)

(** Control-message retransmission: at-least-once delivery of CMDUs
    over a lossy medium, with per-message timeout, exponential
    backoff and a bounded try count.

    1905.1 itself sends CMDUs unacknowledged; during the control
    storms a node failure causes (the exact window the recovery
    subsystem cares about) a lost topology response silently leaves
    a peer's database stale. A [Reliable] tracker sits next to an AL:
    [send] registers an outgoing CMDU as awaiting acknowledgement,
    [ack] retires it when the response arrives, and the caller polls
    [due] on its clock — each call returns the CMDUs whose timeout
    expired (ordered by message id, so retransmission order is
    deterministic), doubling their next timeout, until a message
    exhausts [max_tries] and is counted in [dropped] instead.

    The tracker is pure bookkeeping: it never sends anything itself
    and consumes no randomness. *)
module Reliable : sig
  type config = {
    timeout : float;   (** first retransmission after this long (s) *)
    backoff : float;   (** timeout multiplier per retry, >= 1 *)
    max_tries : int;   (** total transmissions before giving up *)
  }

  val default_config : config
  (** [{timeout = 0.25; backoff = 2.0; max_tries = 5}] — the first
      copy plus up to four retries over ~3.75 s. *)

  type t

  val create : ?config:config -> unit -> t
  (** Raises [Invalid_argument] on a non-positive timeout, a backoff
      below 1 or a try count below 1. *)

  val send : t -> now:float -> Cmdu.t -> unit
  (** Register an outgoing CMDU; its first timeout is
      [now +. timeout]. Re-[send]ing a pending message id restarts
      its schedule. *)

  val ack : t -> message_id:int -> bool
  (** Retire a message: [true] if it was pending, [false] for an
      unknown or already-acknowledged id (duplicate acks are
      harmless). *)

  val due : t -> now:float -> Cmdu.t list
  (** The messages to retransmit at [now]: every pending message
      whose timeout has expired, in message-id order. Each returned
      message's try count is bumped and its next timeout set to
      [now +. timeout *. backoff^(tries-1)]; a message already at
      [max_tries] transmissions is dropped instead of returned. *)

  val pending : t -> int
  (** Messages awaiting acknowledgement. *)

  val dropped : t -> int
  (** Messages abandoned after [max_tries] transmissions. *)
end
