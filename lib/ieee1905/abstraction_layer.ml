type t = {
  node : int;
  techs : Technology.t array;
  (* remote AL mac -> (highest message id seen, their link metrics) *)
  devices : (string, int * Tlv.link_metric list) Hashtbl.t;
}

let create ~node ~techs = { node; techs; devices = Hashtbl.create 16 }

let node t = t.node

(* The AL MAC uses pseudo-technology 0xFF. *)
let al_mac t = Tlv.mac_of_node ~node:t.node ~tech:0xFF

let media_of_tech (tech : Technology.t) =
  match tech.Technology.medium with
  | Technology.Wifi channel -> Tlv.Wifi channel
  | Technology.Plc -> Tlv.Plc_1901

let node_of_mac m =
  if String.length m <> 6 then None
  else if m.[0] <> '\x02' || m.[1] <> '\x19' || m.[2] <> '\x05' then None
  else begin
    let tech = Char.code m.[3] in
    let node = (Char.code m.[4] lsl 8) lor Char.code m.[5] in
    Some (node, tech)
  end

let topology_response t g ~message_id =
  let ifaces =
    Array.to_list
      (Array.map
         (fun tech ->
           {
             Tlv.mac = Tlv.mac_of_node ~node:t.node ~tech:tech.Technology.index;
             media = media_of_tech tech;
           })
         t.techs)
  in
  let metrics =
    List.filter_map
      (fun l ->
        if Multigraph.usable g l then begin
          let lk = Multigraph.link g l in
          Some
            (Tlv.Link_metric
               {
                 Tlv.local_mac =
                   Tlv.mac_of_node ~node:lk.Multigraph.src ~tech:lk.Multigraph.tech;
                 remote_mac =
                   Tlv.mac_of_node ~node:lk.Multigraph.dst ~tech:lk.Multigraph.tech;
                 capacity_mbps = Multigraph.capacity g l;
               })
        end
        else None)
      (Multigraph.out_links g t.node)
  in
  Cmdu.make Cmdu.Topology_response ~message_id
    (Tlv.Al_mac_address (al_mac t)
    :: Tlv.Device_information (al_mac t, ifaces)
    :: metrics)

let handle t (cmdu : Cmdu.t) =
  match cmdu.Cmdu.message_type with
  | Cmdu.Topology_response | Cmdu.Link_metric_response | Cmdu.Topology_notification ->
    let sender =
      List.find_map
        (function Tlv.Al_mac_address m -> Some m | _ -> None)
        cmdu.Cmdu.tlvs
    in
    (match sender with
    | None -> ()
    | Some al ->
      let fresh =
        match Hashtbl.find_opt t.devices al with
        | Some (last_id, _) -> cmdu.Cmdu.message_id > last_id
        | None -> true
      in
      if fresh then begin
        let metrics =
          List.filter_map
            (function Tlv.Link_metric lm -> Some lm | _ -> None)
            cmdu.Cmdu.tlvs
        in
        Hashtbl.replace t.devices al (cmdu.Cmdu.message_id, metrics)
      end)
  | Cmdu.Topology_discovery | Cmdu.Topology_query | Cmdu.Link_metric_query -> ()

let known_devices t = Hashtbl.length t.devices

module Reliable = struct
  type config = { timeout : float; backoff : float; max_tries : int }

  let default_config = { timeout = 0.25; backoff = 2.0; max_tries = 5 }

  let validate c =
    if not (Float.is_finite c.timeout && c.timeout > 0.0) then
      invalid_arg "Reliable: timeout must be finite and > 0";
    if not (Float.is_finite c.backoff && c.backoff >= 1.0) then
      invalid_arg "Reliable: backoff must be finite and >= 1";
    if c.max_tries < 1 then invalid_arg "Reliable: max_tries must be >= 1"

  type entry = { cmdu : Cmdu.t; mutable tries : int; mutable next_due : float }

  type t = {
    config : config;
    inflight : (int, entry) Hashtbl.t; (* keyed by message_id *)
    mutable dropped : int;
  }

  let create ?(config = default_config) () =
    validate config;
    { config; inflight = Hashtbl.create 16; dropped = 0 }

  let send t ~now (cmdu : Cmdu.t) =
    Hashtbl.replace t.inflight cmdu.Cmdu.message_id
      { cmdu; tries = 1; next_due = now +. t.config.timeout }

  let ack t ~message_id =
    if Hashtbl.mem t.inflight message_id then begin
      Hashtbl.remove t.inflight message_id;
      true
    end
    else false

  (* Sorted by message_id so the retransmission order is a pure
     function of the inflight set, not of hash-table iteration. *)
  let due t ~now =
    let ripe =
      Hashtbl.fold
        (fun _ e acc -> if e.next_due <= now then e :: acc else acc)
        t.inflight []
      |> List.sort (fun a b ->
             compare a.cmdu.Cmdu.message_id b.cmdu.Cmdu.message_id)
    in
    List.filter_map
      (fun e ->
        if e.tries >= t.config.max_tries then begin
          Hashtbl.remove t.inflight e.cmdu.Cmdu.message_id;
          t.dropped <- t.dropped + 1;
          None
        end
        else begin
          e.tries <- e.tries + 1;
          e.next_due <-
            now
            +. (t.config.timeout
               *. (t.config.backoff ** float_of_int (e.tries - 1)));
          Some e.cmdu
        end)
      ripe

  let pending t = Hashtbl.length t.inflight
  let dropped t = t.dropped
end

let graph t ~n_nodes =
  let n_techs = Array.length t.techs in
  let claims = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (_, metrics) ->
      List.iter
        (fun (lm : Tlv.link_metric) ->
          match (node_of_mac lm.Tlv.local_mac, node_of_mac lm.Tlv.remote_mac) with
          | Some (u, tu), Some (v, tv)
            when tu = tv && tu < n_techs && u < n_nodes && v < n_nodes && u <> v
                 && lm.Tlv.capacity_mbps > 0.0 ->
            let key = (min u v, max u v, tu) in
            let prev = try Hashtbl.find claims key with Not_found -> [] in
            Hashtbl.replace claims key (lm.Tlv.capacity_mbps :: prev)
          | _ -> ())
        metrics)
    t.devices;
  let edges =
    Hashtbl.fold
      (fun (u, v, tech) caps acc ->
        let mean = List.fold_left ( +. ) 0.0 caps /. float_of_int (List.length caps) in
        (u, v, tech, mean) :: acc)
      claims []
    |> List.sort compare
  in
  Multigraph.create ~n_nodes ~n_techs ~edges
