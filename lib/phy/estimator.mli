(** Link-capacity estimation, the only technology-dependent feature.

    Section 6.1: capacities are estimated from modulation information
    in frame headers — the MCS index for 802.11n and the bit-loading
    estimate (BLE) for HomePlug AV. These estimates are extremely
    accurate when traffic flows at a high rate; when a link is idle,
    low-rate probing (~1 kB/s) gives a precise-but-not-perfect
    estimate with a reaction time of a few seconds.

    We model exactly that accuracy profile: an estimator observes the
    ground-truth capacity through mode-dependent multiplicative noise
    and a mode-dependent reaction delay, which the congestion
    controller and routing consume instead of the truth. *)

type mode =
  | Probing      (** idle link, ~1 kB/s probes: small error, slow reaction *)
  | Active_traffic (** saturated link: near-exact, fast reaction *)

type t
(** Estimator state for one link. *)

val create : ?mode:mode -> Rng.t -> initial_capacity:float -> t
(** Fresh estimator initialized from a first observation of the given
    true capacity (default mode {!Probing}). *)

val mode : t -> mode
(** Current observation mode. *)

val set_mode : t -> mode -> unit
(** Switch between probing and active-traffic estimation. *)

val observe : t -> now:float -> true_capacity:float -> unit
(** Feed the current ground truth at time [now] (seconds). The
    estimate tracks changes with the mode's reaction time constant. *)

val reset : t -> now:float -> capacity:float -> unit
(** Discard the tracked state and restart from a fresh (noisy)
    observation of [capacity] at time [now]. Used by the recovery
    subsystem when a link revives: the estimate tracked toward zero
    while the link was dead, and letting it re-converge exponentially
    would misprice the healed link for several control periods. *)

val estimate : t -> float
(** Current capacity estimate (Mbit/s, >= 0). *)

val relative_error : mode -> float
(** The std of the multiplicative observation noise for a mode
    (exposed for tests): ~5% when probing, ~1% under traffic. *)

val reaction_time : mode -> float
(** Exponential tracking time constant (s): a few seconds when
    probing, ~0.1 s under traffic (the 100 ms ACK period). *)

val mcs_index_of_capacity : float -> int
(** The 802.11n MCS ladder index whose rate is closest to the given
    capacity — what a real implementation would read from the frame
    header. *)

val ble_of_capacity : float -> float
(** HomePlug-style bit-loading estimate: the raw capacity in Mbit/s
    (BLE maps linearly onto achievable rate). *)
