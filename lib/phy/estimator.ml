type mode = Probing | Active_traffic

type t = {
  rng : Rng.t;
  mutable current_mode : mode;
  mutable est : float;
  mutable last_obs : float;
}

let relative_error = function Probing -> 0.05 | Active_traffic -> 0.01

let reaction_time = function Probing -> 3.0 | Active_traffic -> 0.1

let noisy rng mode truth =
  if truth <= 0.0 then 0.0
  else begin
    let eps = Rng.gaussian rng ~mean:0.0 ~std:(relative_error mode) in
    Float.max 0.0 (truth *. (1.0 +. eps))
  end

let create ?(mode = Probing) rng ~initial_capacity =
  { rng; current_mode = mode; est = noisy rng mode initial_capacity; last_obs = 0.0 }

let mode t = t.current_mode

let set_mode t m = t.current_mode <- m

let observe t ~now ~true_capacity =
  let dt = Float.max 0.0 (now -. t.last_obs) in
  t.last_obs <- now;
  let obs = noisy t.rng t.current_mode true_capacity in
  let tau = reaction_time t.current_mode in
  (* First-order exponential tracker toward the new observation. *)
  let w = 1.0 -. exp (-.dt /. tau) in
  if t.est <= 0.0 then t.est <- obs else t.est <- t.est +. (w *. (obs -. t.est))

let reset t ~now ~capacity =
  t.est <- noisy t.rng t.current_mode capacity;
  t.last_obs <- now

let estimate t = t.est

let mcs_index_of_capacity cap =
  let best = ref 0 and bestd = ref infinity in
  Array.iteri
    (fun i r ->
      let d = Float.abs (r -. cap) in
      if d < !bestd then begin
        bestd := d;
        best := i
      end)
    Capacity.mcs_steps;
  !best

let ble_of_capacity cap = Float.max 0.0 cap
