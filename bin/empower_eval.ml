(* Command-line driver that regenerates every table and figure of the
   paper's evaluation. `empower_eval <experiment> [--runs N] [--seed S]`;
   `empower_eval all` runs the full suite with default sizes.

   Observability: every experiment command takes `--json` (machine-
   readable figures, one JSON object per line on stdout) and
   `--metrics` (collect engine metrics during the runs, dump the
   registry summary to stderr afterwards); `empower_eval trace
   <scenario> --out trace.jsonl` records a full JSONL event trace of a
   reference scenario and self-validates it: the file is re-read with
   the strict decoder and replayed through Obs.Summary, which must
   reproduce the engine's own accounting (non-zero exit otherwise). *)

open Cmdliner

let runs_arg default =
  let doc = Printf.sprintf "Number of runs/instances (default %d)." default in
  Arg.(value & opt int default & info [ "runs"; "r" ] ~docv:"N" ~doc)

let seed_arg default =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int default & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel replication executor (default: \
     $(b,EMPOWER_JOBS), else 1). Results are bit-identical for any value; \
     1 runs fully sequentially in the calling domain."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let json_arg =
  let doc =
    "Emit the figure as machine-readable JSON on stdout (one object per \
     line) instead of the text rendering."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let progress_arg =
  let doc =
    "Report live per-task progress of the parallel executor to stderr \
     (starts, completions, straggler elapsed times). Pure observation: \
     results are bit-identical with and without it. $(b,EMPOWER_PROGRESS) \
     enables the same reporter ambiently."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let metrics_arg =
  let doc =
    "Install the process-global metrics registry for the duration of the \
     command (every engine run feeds it) and print the registry summary to \
     stderr at the end."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Run [body] under the --json/--metrics flags: [body e] renders each
   figure through [e.emit], which picks text or JSON. (A record with a
   polymorphic field: one emitter serves every figure type.) *)
type emitter = { emit : 'a. 'a -> ('a -> unit) -> ('a -> Obs.Json.t) -> unit }

let with_obs ?jobs ~json ~metrics ~progress body =
  Option.iter Exec.set_default_jobs jobs;
  if progress then
    Exec.Progress.set_reporter (Some Exec.Progress.stderr_reporter);
  if metrics then ignore (Obs.Runtime.install_metrics ());
  body
    {
      emit =
        (fun data print to_json ->
          if json then Figure_json.print_json (to_json data) else print data);
    };
  if metrics then (
    match Obs.Runtime.metrics () with
    | Some reg -> Obs.Metrics.print_summary ~out:stderr reg
    | None -> ())

let both_topologies f =
  f Common.Residential;
  print_newline ();
  f Common.Enterprise

let fig4_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit (Fig4.run ~runs ~seed topo) Fig4.print Figure_json.fig4))
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"CDF of flow throughput per scheme (Figure 4).")
    Term.(const run $ runs_arg 100 $ seed_arg 1 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig5_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit (Fig5.run ~runs ~seed topo) Fig5.print Figure_json.fig5))
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"MP-mWiFi vs EMPoWER on the worst flows (Figure 5).")
    Term.(const run $ runs_arg 100 $ seed_arg 2 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig6_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit (Fig6.run ~runs ~seed topo) Fig6.print Figure_json.fig6))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Throughput against optimal schemes (Figure 6).")
    Term.(const run $ runs_arg 60 $ seed_arg 3 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig7_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit (Fig7.run ~runs ~seed topo) Fig7.print Figure_json.fig7))
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Utility with 3 contending flows (Figure 7).")
    Term.(const run $ runs_arg 40 $ seed_arg 4 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let convergence_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit
              (Convergence.run ~runs ~seed topo)
              Convergence.print Figure_json.convergence))
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Convergence of EMPoWER vs backpressure (Section 5.2.2).")
    Term.(const run $ runs_arg 30 $ seed_arg 5 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig9_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Fig9.run ~seed ()) Fig9.print Figure_json.fig9)
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Two-flow adaptation example, packet-level (Figure 9).")
    Term.(const run $ seed_arg 9 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig10_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Fig10.run ~pairs:runs ~seed ()) Fig10.print Figure_json.fig10)
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"50 random testbed pairs (Figure 10).")
    Term.(const run $ runs_arg 50 $ seed_arg 10 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig11_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Fig11.run ~seed ()) Fig11.print Figure_json.fig11)
  in
  Cmd.v
    (Cmd.info "fig11" ~doc:"Per-flow mean/std throughput, packet-level (Figure 11).")
    Term.(const run $ seed_arg 11 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let table1_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Table1.run ~seed ~repeats:runs ()) Table1.print Figure_json.table1)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Download times with and without CC (Table 1).")
    Term.(const run $ runs_arg 5 $ seed_arg 12 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig12_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Fig12.run ~seed ()) Fig12.print Figure_json.fig12)
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"TCP over EMPoWER time series (Figure 12).")
    Term.(const run $ seed_arg 13 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let fig13_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Fig13.run ~seed ()) Fig13.print Figure_json.fig13)
  in
  Cmd.v
    (Cmd.info "fig13" ~doc:"TCP rate over ten flows (Figure 13).")
    Term.(const run $ seed_arg 14 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let ablations_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        let show d =
          e.emit d Ablations.print Figure_json.ablation;
          if not json then print_newline ()
        in
        show (Ablations.n_shortest ~runs ~seed ());
        show (Ablations.csc ~runs ~seed:(seed + 1) ());
        show (Ablations.delta ~runs ~seed:(seed + 2) ());
        show (Ablations.tree_depth ~runs ~seed:(seed + 3) ());
        show (Ablations.gain ~runs:(max 5 (runs / 2)) ~seed:(seed + 4) ());
        show (Ablations.delta_delay ~seed:(seed + 5) ()))
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Design-choice ablations (DESIGN.md section 4).")
    Term.(const run $ runs_arg 30 $ seed_arg 21 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let metrics_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        both_topologies (fun topo ->
            e.emit
              (Metric_comparison.run ~runs ~seed topo)
              Metric_comparison.print Figure_json.metric_comparison))
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Single-path metric comparison (footnote 7).")
    Term.(const run $ runs_arg 40 $ seed_arg 31 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let mptcp_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit
          (Mptcp_applicability.run ~seed ())
          Mptcp_applicability.print Figure_json.mptcp)
  in
  Cmd.v
    (Cmd.info "mptcp" ~doc:"MPTCP applicability census (Section 7).")
    Term.(const run $ seed_arg 4242 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let mac_cmd =
  let run seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit (Mac_fairness.run ~seed ()) Mac_fairness.print Figure_json.mac_fairness)
  in
  Cmd.v
    (Cmd.info "mac" ~doc:"802.11 vs IEEE 1901 CSMA/CA comparison ([40]).")
    Term.(const run $ seed_arg 40 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let scenario_arg =
    let doc =
      Printf.sprintf "Scenario to trace; one of %s."
        (String.concat ", " (Tracing.names ()))
    in
    Arg.(value & pos 0 string "mini" & info [] ~docv:"SCENARIO" ~doc)
  in
  let out_arg =
    let doc = "Output JSONL file (one trace event per line)." in
    Arg.(value & opt string "trace.jsonl" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run scenario out =
    match Tracing.find scenario with
    | None ->
      Printf.eprintf "unknown scenario %S; available: %s\n" scenario
        (String.concat ", " (Tracing.names ()));
      exit 2
    | Some sc ->
      let oc = open_out out in
      let outcome =
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> sc.Tracing.exec ~trace:(Obs.Trace.to_channel oc) ())
      in
      (* Self-validation: strict-decode the file we just wrote and
         replay it; the replay must reproduce the engine's numbers. *)
      (match Obs.Summary.of_file ~duration:outcome.Tracing.duration out with
      | Error e ->
        Printf.eprintf "trace validation failed: %s\n" e;
        exit 1
      | Ok summary -> (
        match Tracing.cross_check outcome summary with
        | Error e ->
          Printf.eprintf "trace cross-check failed:\n%s\n" e;
          exit 1
        | Ok () ->
          Obs.Summary.print summary;
          let p = outcome.Tracing.result.Engine.perf in
          Printf.printf
            "engine: %d events (%.0f events/s, %.3f s wall, peak event-queue \
             %d)\n"
            outcome.Tracing.result.Engine.events_processed p.Engine.events_per_s
            p.Engine.wall_s p.Engine.peak_queue_depth;
          Printf.printf "%s: %d events -> %s (cross-check OK)\n"
            sc.Tracing.name summary.Obs.Summary.events out))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a JSONL event trace of a reference scenario, then validate \
          it (strict schema decode + replay cross-check against the engine).")
    Term.(const run $ scenario_arg $ out_arg)

(* ---------- profile ---------- *)

let profile_cmd =
  let scenario_arg =
    let doc =
      Printf.sprintf "Scenario to profile; one of %s."
        (String.concat ", " (Tracing.names ()))
    in
    Arg.(value & pos 0 string "mini" & info [] ~docv:"SCENARIO" ~doc)
  in
  let run scenario json =
    match Tracing.find scenario with
    | None ->
      Printf.eprintf "unknown scenario %S; available: %s\n" scenario
        (String.concat ", " (Tracing.names ()));
      exit 2
    | Some sc ->
      let prof = Obs.Prof.create () in
      let outcome = sc.Tracing.exec ~prof () in
      if json then Figure_json.print_json (Obs.Prof.to_json prof)
      else begin
        Obs.Prof.print prof;
        let p = outcome.Tracing.result.Engine.perf in
        Printf.printf "engine: %d events (%.0f events/s, %.3f s wall)\n"
          outcome.Tracing.result.Engine.events_processed p.Engine.events_per_s
          p.Engine.wall_s
      end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a reference scenario: wall time and GC minor words \
          attributed to the subsystem that handled each engine event \
          (mac_phy, traffic, controller, tcp, recovery, fault). The \
          profiler only reads the clock — simulation results are \
          unchanged. --json emits the 'profile' figure consumed by \
          $(b,empower_eval report).")
    Term.(const run $ scenario_arg $ json_arg)

(* ---------- report ---------- *)

let report_cmd =
  let file_arg =
    let doc =
      "Artifact to report on: a JSONL trace (trace/chaos --out, or a \
       flight-recorder dump), a loadsweep figure (loadsweep --json) or a \
       profile (profile --json). The shape is auto-detected."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let duration_arg =
    let doc =
      "Simulated horizon of a trace in seconds (default: the last event's \
       timestamp). Needed to reproduce exact goodput when the run outlives \
       its last event; ignored for figure documents."
    in
    Arg.(
      value & opt (some float) None & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)
  in
  let run file duration json =
    match Report.of_file ?duration file with
    | Error e ->
      Printf.eprintf "report: %s\n" e;
      exit 1
    | Ok r ->
      if json then Figure_json.print_json (Report.to_json r) else Report.print r
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render any run artifact into one health report: SLOs (p99 FCT per \
          bucket, goodput vs LP bound, severance detect/recovery times), \
          drop/collision counters and profiler hotspots, as text or (with \
          --json) as a 'report' figure.")
    Term.(const run $ file_arg $ duration_arg $ json_arg)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let intensity_arg =
    let doc = "Fault intensity: light, moderate, heavy or severing." in
    Arg.(
      value & opt string "moderate" & info [ "intensity"; "i" ] ~docv:"LEVEL" ~doc)
  in
  let sever_arg =
    let doc =
      "Full-severance profile: shorthand for --intensity severing (one node \
       crash guaranteed to take down every route of the flow) with the \
       self-healing recovery subsystem enabled."
    in
    Arg.(value & flag & info [ "sever" ] ~doc)
  in
  let no_recovery_arg =
    let doc =
      "Disable the self-healing recovery subsystem (with --sever this \
       reproduces the historical behaviour: detection by ack-silence only, \
       fixed-interval reclaim, stale prices left to drain)."
    in
    Arg.(value & flag & info [ "no-recovery" ] ~doc)
  in
  let duration_arg =
    let doc = "Simulated seconds (faults all clear by half-time)." in
    Arg.(value & opt float 20.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)
  in
  let out_arg =
    let doc =
      "Also record the run's JSONL event trace to $(docv) and self-validate \
       it (strict decode + replay cross-check)."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let flight_arg =
    let doc =
      "Attach a flight recorder and, if the run shows a regression (a flow \
       that never recovers), dump the last events to $(docv) as JSONL — \
       strict-validated, replayable with $(b,empower_eval report). Without a \
       regression the ring is discarded."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let run seed intensity sever no_recovery duration out flight json metrics
      progress jobs =
    match Fault.Gen.intensity_of_name intensity with
    | None ->
      Printf.eprintf
        "unknown intensity %S; expected light, moderate, heavy or severing\n"
        intensity;
      exit 2
    | Some intensity ->
      let intensity = if sever then Fault.Gen.Severing else intensity in
      (* Recovery defaults on for severance runs (that is what --sever
         demonstrates) and off otherwise; --no-recovery forces it off
         in either case for before/after comparisons. *)
      let recovery = intensity = Fault.Gen.Severing && not no_recovery in
      let ring =
        Option.map (fun path -> Obs.Flight.create ~dump_path:path ()) flight
      in
      with_obs ?jobs ~json ~metrics ~progress (fun e ->
          let report =
            match out with
            | None -> Chaos.run ?flight:ring ~intensity ~recovery ~duration ~seed ()
            | Some path ->
              let oc = open_out path in
              let report =
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () ->
                    Chaos.run ~trace:(Obs.Trace.to_channel oc) ?flight:ring
                      ~intensity ~recovery ~duration ~seed ())
              in
              (* Same self-validation as `trace`: the file must
                 strict-decode and its replay must reproduce the
                 engine's accounting. *)
              (match Obs.Summary.of_file ~duration path with
              | Error err ->
                Printf.eprintf "chaos trace validation failed: %s\n" err;
                exit 1
              | Ok summary -> (
                let outcome =
                  {
                    Tracing.scenario = "chaos";
                    result = report.Chaos.result;
                    duration;
                  }
                in
                match Tracing.cross_check outcome summary with
                | Error err ->
                  Printf.eprintf "chaos trace cross-check failed:\n%s\n" err;
                  exit 1
                | Ok () ->
                  if not json then
                    Printf.printf "chaos: %d events -> %s (cross-check OK)\n"
                      summary.Obs.Summary.events path));
              report
          in
          (match ring with
          | None -> ()
          | Some ring ->
            (* Regression: a flow whose goodput never returned to its
               pre-fault baseline. Only then is the ring worth keeping. *)
            let regression =
              List.exists
                (fun (f : Chaos.flow_report) -> f.Chaos.recovery_s < 0.0)
                report.Chaos.flows
            in
            if regression then (
              match Obs.Flight.dump ring with
              | Error msg ->
                Printf.eprintf "[flight] dump failed: %s\n" msg;
                exit 1
              | Ok (path, n) -> (
                (* The dump must strict-decode: a recorder artifact
                   that Obs.Summary cannot replay is a bug. *)
                match Obs.Summary.read_file path with
                | Error err ->
                  Printf.eprintf
                    "[flight] dump %s failed strict validation: %s\n" path err;
                  exit 1
                | Ok _ ->
                  Printf.eprintf
                    "[flight] regression (flow never recovered): last %d \
                     events -> %s\n"
                    n path))
            else
              Printf.eprintf
                "[flight] no regression; ring discarded (%d events recorded)\n"
                (Obs.Flight.recorded ring));
          e.emit report Chaos.print Chaos.to_json)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded, reproducible fault-injection scenario (random fault \
          plan against the testbed flow) and report goodput dip and recovery \
          metrics. --sever runs the full-severance profile with the \
          self-healing recovery subsystem; --no-recovery turns it back off.")
    Term.(
      const run $ seed_arg 7 $ intensity_arg $ sever_arg $ no_recovery_arg
      $ duration_arg $ out_arg $ flight_arg $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

(* ---------- scenario ---------- *)

let scenario_cmd =
  let name_arg =
    let doc =
      "Scenario to run: a catalog name resolved to $(i,DIR)/$(i,NAME).json, \
       or a path to a scenario JSON file."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let dir_arg =
    let doc =
      "Scenario catalog directory (default: $(b,EMPOWER_SCENARIOS) if set, \
       else 'scenarios')."
    in
    let default =
      Option.value (Sys.getenv_opt "EMPOWER_SCENARIOS") ~default:"scenarios"
    in
    Arg.(value & opt string default & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let list_arg =
    let doc = "List the catalog (name, duration, seed, description) and exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let all_arg =
    let doc = "Run every scenario in the catalog." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let flight_arg =
    let doc =
      "Attach a flight recorder to each run and, if the scenario misses its \
       SLO, dump the last events to $(docv) as JSONL (with --all the scenario \
       name is appended to the file stem) — strict-validated, replayable with \
       $(b,empower_eval report). Scenarios that meet their SLO discard the \
       ring."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let load_or_die path =
    match Scenario.load path with
    | Ok spec -> spec
    | Error e ->
      Printf.eprintf "scenario: %s\n" e;
      exit 2
  in
  let catalog_or_die dir =
    match Scenario.catalog dir with
    | Ok [] ->
      Printf.eprintf "scenario: no *.json scenarios in %s\n" dir;
      exit 2
    | Ok entries -> entries
    | Error e ->
      Printf.eprintf "scenario: %s\n" e;
      exit 2
  in
  (* With --all each scenario dumps to its own file: base "f.jsonl"
     becomes "f-<name>.jsonl". *)
  let flight_path_for base name =
    let ext = Filename.extension base in
    if ext = "" then base ^ "-" ^ name
    else Filename.remove_extension base ^ "-" ^ name ^ ext
  in
  (* Run one spec, arming a flight ring if requested. The ring is kept
     only on an SLO miss; the dump must strict-decode (same contract as
     `chaos --flight`). The miss itself is reported by the scorecard,
     not the exit status. *)
  let run_one ?flight spec =
    let ring =
      Option.map (fun path -> Obs.Flight.create ~dump_path:path ()) flight
    in
    let sc = Scenario.run ?flight:ring spec in
    (match ring with
    | None -> ()
    | Some ring ->
      if not sc.Scenario.slo_met then (
        match Obs.Flight.dump ring with
        | Error msg ->
          Printf.eprintf "[flight] dump failed: %s\n" msg;
          exit 1
        | Ok (path, n) -> (
          match Obs.Summary.read_file path with
          | Error err ->
            Printf.eprintf "[flight] dump %s failed strict validation: %s\n"
              path err;
            exit 1
          | Ok _ ->
            Printf.eprintf
              "[flight] %s missed its SLO: last %d events -> %s\n"
              spec.Scenario.name n path))
      else
        Printf.eprintf
          "[flight] %s met its SLO; ring discarded (%d events recorded)\n"
          spec.Scenario.name
          (Obs.Flight.recorded ring));
    sc
  in
  let one_line s =
    let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
    if String.length s <= 72 then s else String.sub s 0 69 ^ "..."
  in
  let run name dir list all flight json metrics progress jobs =
    if list then
      List.iter
        (fun (n, path) ->
          let spec = load_or_die path in
          Printf.printf "%-18s %5.1f s  seed %-6d %s\n" n
            spec.Scenario.duration spec.Scenario.seed
            (one_line spec.Scenario.description))
        (catalog_or_die dir)
    else if all then begin
      let specs =
        List.map (fun (_, path) -> load_or_die path) (catalog_or_die dir)
      in
      with_obs ?jobs ~json ~metrics ~progress (fun e ->
          let show sc =
            e.emit sc Scenario.print Scenario.to_json;
            if not json then print_newline ()
          in
          match flight with
          | None -> List.iter show (Scenario.run_all specs)
          | Some base ->
            (* Each run needs its own live ring and dump decision, so
               the flight sweep is sequential. *)
            List.iter
              (fun spec ->
                show
                  (run_one
                     ~flight:(flight_path_for base spec.Scenario.name)
                     spec))
              specs)
    end
    else
      match name with
      | None ->
        Printf.eprintf "scenario: expected a scenario name, --list or --all\n";
        exit 2
      | Some name ->
        let path =
          if Sys.file_exists name && not (Sys.is_directory name) then name
          else Filename.concat dir (name ^ ".json")
        in
        let spec = load_or_die path in
        with_obs ?jobs ~json ~metrics ~progress (fun e ->
            e.emit (run_one ?flight spec) Scenario.print Scenario.to_json)
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run a named scenario from the declarative catalog (topology + \
          device classes + churn plan + flows + SLO, as validated JSON) and \
          report its degradation scorecard: per-flow availability against the \
          fault-free baseline, time below SLO, per-churn-event dip and \
          recovery, and recovery-subsystem counters. Equal seeds give \
          byte-identical scorecards.")
    Term.(
      const run $ name_arg $ dir_arg $ list_arg $ all_arg $ flight_arg
      $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

(* ---------- loadsweep ---------- *)

let loadsweep_cmd =
  let loads_arg =
    let doc =
      "Target load factor in (0, 1] — a fraction of the aggregate capacity \
       EMPoWER allocates to the pairs. Repeatable: each occurrence adds a \
       sweep point (default: 0.1 to 0.9 in steps of 0.2)."
    in
    Arg.(value & opt_all float [] & info [ "load"; "l" ] ~docv:"FACTOR" ~doc)
  in
  let cdf_arg =
    let doc =
      "Flow-size CDF file ($(b,size_bytes cum_prob) per line, # comments; \
       see test/websearch.cdf). Default: the built-in web-search-style \
       distribution."
    in
    Arg.(value & opt (some string) None & info [ "cdf" ] ~docv:"FILE" ~doc)
  in
  let pairs_arg =
    let doc = "Sender/receiver pairs on the testbed (fan-in)." in
    Arg.(value & opt int 4 & info [ "pairs" ] ~docv:"N" ~doc)
  in
  let conns_arg =
    let doc = "Parallel connections per pair." in
    Arg.(value & opt int 2 & info [ "conns" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "Arrival window in simulated seconds (plus a 10 s drain)." in
    Arg.(value & opt float 30.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)
  in
  let pacing_arg =
    let doc = "Frame pacing of each connection: cbr or poisson." in
    Arg.(value & opt string "cbr" & info [ "pacing" ] ~docv:"MODE" ~doc)
  in
  let run seed loads cdf pairs conns duration pacing json metrics progress jobs =
    let cdf =
      match cdf with
      | None -> Cdf.websearch
      | Some path -> (
        match Cdf.of_file path with
        | Ok c -> c
        | Error e ->
          Printf.eprintf "bad CDF file: %s\n" e;
          exit 2)
    in
    let pacing =
      match Workload.pacing_of_name pacing with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown pacing %S; expected cbr or poisson\n" pacing;
        exit 2
    in
    let loads =
      match loads with [] -> [ 0.1; 0.3; 0.5; 0.7; 0.9 ] | ls -> ls
    in
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit
          (Loadsweep.sweep ~cdf ~pairs ~conns ~duration ~pacing ~seed loads)
          Loadsweep.print Figure_json.loadsweep)
  in
  Cmd.v
    (Cmd.info "loadsweep"
       ~doc:
         "Empirical heavy-traffic load sweep: CDF-sampled open-loop arrivals \
          at target load factors over the testbed, reporting per-size-bucket \
          flow-completion-time p50/p95/p99 and achieved load.")
    Term.(
      const run $ seed_arg 17 $ loads_arg $ cdf_arg $ pairs_arg $ conns_arg
      $ duration_arg $ pacing_arg $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

(* ---------- buffers ---------- *)

let buffers_cmd =
  let pools_arg =
    let doc =
      "Shared pool size in frames. Repeatable: each occurrence adds a sweep \
       point (default: 16 and 64)."
    in
    Arg.(value & opt_all int [] & info [ "pool" ] ~docv:"FRAMES" ~doc)
  in
  let alphas_arg =
    let doc =
      "Dynamic-Threshold alpha; a non-positive value selects the static \
       per-port partition. Repeatable (default: 0.5 and 1.0)."
    in
    Arg.(value & opt_all float [] & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let ecns_arg =
    let doc =
      "ECN marking threshold in frames of port occupancy; 0 disables \
       marking. Repeatable (default: 0 and 8)."
    in
    Arg.(value & opt_all int [] & info [ "ecn" ] ~docv:"FRAMES" ~doc)
  in
  let duration_arg =
    let doc = "Simulated seconds per run." in
    Arg.(value & opt float 20.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)
  in
  let run seed pools alphas ecns duration json metrics progress jobs =
    let pools = match pools with [] -> Buffers.default_pools | ps -> ps in
    let alphas = match alphas with [] -> Buffers.default_alphas | al -> al in
    let ecns = match ecns with [] -> Buffers.default_ecns | es -> es in
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        e.emit
          (Buffers.sweep ~seed ~duration ~pools ~alphas ~ecns ())
          Buffers.print Figure_json.buffers)
  in
  Cmd.v
    (Cmd.info "buffers"
       ~doc:
         "TCP friendliness under finite shared buffers: sweep pool size, \
          Dynamic-Threshold alpha and ECN marking threshold, comparing Reno, \
          a DCTCP-style TCP and EMPoWER's UDP multipath on the congested \
          testbed flow.")
    Term.(
      const run $ seed_arg 23 $ pools_arg $ alphas_arg $ ecns_arg
      $ duration_arg $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let all_cmd =
  let run runs seed json metrics progress jobs =
    with_obs ?jobs ~json ~metrics ~progress (fun e ->
        let header title =
          if not json then
            Printf.printf "\n================ %s ================\n" title
        in
        header "Figure 4";
        both_topologies (fun t ->
            e.emit (Fig4.run ~runs ~seed t) Fig4.print Figure_json.fig4);
        header "Figure 5";
        both_topologies (fun t ->
            e.emit (Fig5.run ~runs ~seed:(seed + 1) t) Fig5.print Figure_json.fig5);
        header "Figure 6";
        both_topologies (fun t ->
            e.emit
              (Fig6.run ~runs:(max 10 (runs * 3 / 5)) ~seed:(seed + 2) t)
              Fig6.print Figure_json.fig6);
        header "Figure 7";
        both_topologies (fun t ->
            e.emit
              (Fig7.run ~runs:(max 10 (runs * 2 / 5)) ~seed:(seed + 3) t)
              Fig7.print Figure_json.fig7);
        header "Convergence (Section 5.2.2)";
        both_topologies (fun t ->
            e.emit
              (Convergence.run ~runs:(max 5 (runs / 4)) ~seed:(seed + 4) t)
              Convergence.print Figure_json.convergence);
        header "Figure 9";
        e.emit (Fig9.run ~seed:(seed + 5) ()) Fig9.print Figure_json.fig9;
        header "Figure 10";
        e.emit
          (Fig10.run ~pairs:(max 20 (runs / 2)) ~seed:(seed + 6) ())
          Fig10.print Figure_json.fig10;
        header "Figure 11";
        e.emit (Fig11.run ~seed:(seed + 7) ()) Fig11.print Figure_json.fig11;
        header "Table 1";
        e.emit
          (Table1.run ~seed:(seed + 8) ~repeats:3 ())
          Table1.print Figure_json.table1;
        header "Figure 12";
        e.emit (Fig12.run ~seed:(seed + 9) ()) Fig12.print Figure_json.fig12;
        header "Figure 13";
        e.emit (Fig13.run ~seed:(seed + 10) ()) Fig13.print Figure_json.fig13;
        header "Footnote 7: metric comparison";
        both_topologies (fun t ->
            e.emit
              (Metric_comparison.run ~runs:(max 10 (runs / 3)) ~seed:(seed + 11) t)
              Metric_comparison.print Figure_json.metric_comparison);
        header "Section 7: MPTCP applicability";
        e.emit (Mptcp_applicability.run ()) Mptcp_applicability.print
          Figure_json.mptcp;
        header "MAC fairness [40]";
        e.emit (Mac_fairness.run ()) Mac_fairness.print Figure_json.mac_fairness)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run the full evaluation suite.")
    Term.(const run $ runs_arg 60 $ seed_arg 1 $ json_arg $ metrics_arg $ progress_arg $ jobs_arg)

let main =
  let doc = "Reproduce the EMPoWER (CoNEXT'16) evaluation." in
  Cmd.group
    (Cmd.info "empower_eval" ~version:"1.0" ~doc)
    [
      fig4_cmd; fig5_cmd; fig6_cmd; fig7_cmd; convergence_cmd; fig9_cmd;
      fig10_cmd; fig11_cmd; table1_cmd; fig12_cmd; fig13_cmd; ablations_cmd;
      metrics_cmd; mptcp_cmd; mac_cmd; trace_cmd; profile_cmd; report_cmd;
      chaos_cmd; scenario_cmd; loadsweep_cmd; buffers_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
