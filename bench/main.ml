(* The benchmark harness: `dune exec bench/main.exe [SECTION...]`.

   Sections (default: all three, in this order):

   - kernels      Bechamel micro-benchmarks of the kernels every
                  experiment leans on (one Test.make per kernel): the
                  multipath exploration tree, CSC Dijkstra, Yen, the
                  congestion controller, the LP-based optimal baseline,
                  the fluid MAC, the packet engine and the 20-byte
                  header codec.
   - sim          wall-clock engine throughput on a pinned scenario,
                  written to BENCH_sim.json: events/s and allocation
                  per event, trace overhead, chaos/severance runs, and
                  the parallel-executor mini suite (per-figure wall
                  seconds at --jobs 1 vs 4 plus the speedup, with a
                  bit-identity check on the results).
   - experiments  regeneration of every table and figure of the
                  paper's evaluation at bench scale (the same printers
                  the CLI uses, smaller run counts; replications fan
                  out over EMPOWER_JOBS worker domains if set). Set
                  EMPOWER_BENCH_RUNS to scale this section up; the
                  paper itself uses 1000 simulation runs per figure. *)

open Bechamel
open Toolkit

(* ---------- part 1: kernels ---------- *)

let residential_case =
  lazy
    (let inst = Residential.generate (Rng.create 77) in
     let g = Builder.graph inst Builder.Hybrid in
     let dom = Domain.of_instance inst Builder.Hybrid g in
     (g, dom))

let testbed_case =
  lazy
    (let inst = Testbed.generate (Rng.create 4242) in
     let g = Builder.graph inst Builder.Hybrid in
     let dom = Domain.of_instance inst Builder.Hybrid g in
     (g, dom))

let bench_multipath () =
  let g, dom = Lazy.force residential_case in
  ignore (Multipath.find g dom ~src:0 ~dst:9)

let bench_dijkstra () =
  let g, _ = Lazy.force residential_case in
  ignore (Dijkstra.shortest_path g ~src:0 ~dst:9)

let bench_yen () =
  let g, _ = Lazy.force residential_case in
  ignore (Yen.k_shortest g ~src:0 ~dst:9 ~k:5)

let bench_cc () =
  let g, dom = Lazy.force residential_case in
  let routes = Multipath.routes (Multipath.find g dom ~src:0 ~dst:9) in
  let p = Problem.make g dom ~flows:[ routes ] in
  let x_init = Array.of_list (List.map (Update.path_rate g dom) routes) in
  ignore (Multi_cc.solve ~x_init ~slots:500 p)

let bench_lp () =
  let g, dom = Lazy.force residential_case in
  ignore (Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:9)

let bench_fluid () =
  let g, dom = Lazy.force residential_case in
  let routes = Multipath.routes (Multipath.find g dom ~src:0 ~dst:9) in
  let offered = List.map (fun p -> (p, Update.path_rate g dom p)) routes in
  ignore (Fluid.goodput g dom ~offered)

let bench_engine () =
  let g, dom = Lazy.force testbed_case in
  let comb = Multipath.find g dom ~src:0 ~dst:12 in
  match Multipath.routes comb with
  | [] -> ()
  | routes ->
    let spec =
      {
        Engine.src = 0;
        dst = 12;
        routes;
        init_rates = List.map snd comb.Multipath.paths;
        workload = Workload.Saturated;
        transport = Engine.Udp;
        tcp_params = None;
        start_time = 0.0;
        stop_time = None;
      }
    in
    ignore (Engine.run (Rng.create 1) g dom ~flows:[ spec ] ~duration:2.0)

let bench_header () =
  let h = Header.make ~seq:123456 ~qr:0.125 ~route:[| 0x1a2b; 0x3c4d; 0x5e6f |] in
  ignore (Header.decode (Header.encode h))

let kernel_tests =
  [
    Test.make ~name:"multipath exploration tree" (Staged.stage bench_multipath);
    Test.make ~name:"CSC dijkstra" (Staged.stage bench_dijkstra);
    Test.make ~name:"yen 5-shortest" (Staged.stage bench_yen);
    Test.make ~name:"multipath CC (500 slots)" (Staged.stage bench_cc);
    Test.make ~name:"LP optimal baseline" (Staged.stage bench_lp);
    Test.make ~name:"fluid MAC goodput" (Staged.stage bench_fluid);
    Test.make ~name:"packet engine (2 s sim)" (Staged.stage bench_engine);
    Test.make ~name:"header encode+decode" (Staged.stage bench_header);
  ]

let run_kernels () =
  print_endline "=== Bechamel kernel benchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"empower" ~fmt:"%s %s" kernel_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      rows := (name, time_ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-45s (no estimate)\n" name
      else if ns > 1e9 then Printf.printf "%-45s %8.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then Printf.printf "%-45s %8.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-45s %8.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "%-45s %8.0f ns/run\n" name ns)
    (List.sort compare !rows)

(* ---------- part 1b: engine throughput on a fixed scenario ---------- *)

(* The pinned throughput scenario (figure-4 residential, seed 77, flow
   0->9, 4 s of simulated time): shared between the sim section and
   the [--check] perf gate so both time exactly the same workload. *)
let sim_duration = 4.0

let sim_runner () =
  let g, dom = Lazy.force residential_case in
  let comb = Multipath.find g dom ~src:0 ~dst:9 in
  match Multipath.routes comb with
  | [] -> None
  | routes ->
    let spec =
      {
        Engine.src = 0;
        dst = 9;
        routes;
        init_rates = List.map snd comb.Multipath.paths;
        workload = Workload.Saturated;
        transport = Engine.Udp;
        tcp_params = None;
        start_time = 0.0;
        stop_time = None;
      }
    in
    Some
      (fun ?trace ?flight ?prof seed ->
        Engine.run ?trace ?flight ?prof (Rng.create seed) g dom
          ~flows:[ spec ] ~duration:sim_duration)

(* Timing methodology shared by the sim section and the perf gate:
   every configuration gets a warmup run (pays code paging and sink
   setup once), then [rounds] timed blocks of [reps] runs each, and is
   summarized by the MEDIAN block time. The previous min-of-3-rounds
   scheme let the overhead percentages go negative whenever the
   baseline block drew the single luckiest slice of a loaded 1-core
   container; the median of five is robust to those outliers in both
   directions. CPU time ([Sys.time]), not wall: co-tenant load must
   not count against the engine. *)
let bench_reps = 5
let bench_rounds = 5

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  s.(Array.length s / 2)

(* Median block time (seconds) for one configuration: warmup, then
   [bench_rounds] timed blocks of [bench_reps] runs. [run] takes the
   rep index (used as the engine seed). *)
let timed_config run =
  ignore (run 0);
  let t = Array.make bench_rounds infinity in
  for round = 0 to bench_rounds - 1 do
    let t0 = Sys.time () in
    for i = 1 to bench_reps do
      ignore (run i)
    done;
    t.(round) <- Float.max 1e-9 (Sys.time () -. t0)
  done;
  median t

let write_sim_bench () =
  (* Wall-clock engine throughput on the pinned scenario lands in
     BENCH_sim.json so numbers are comparable across commits. *)
  let g, dom = Lazy.force residential_case in
  let comb = Multipath.find g dom ~src:0 ~dst:9 in
  match Multipath.routes comb with
  | [] -> print_endline "BENCH_sim.json: skipped (no route 0 -> 9)"
  | routes ->
    let spec =
      {
        Engine.src = 0;
        dst = 9;
        routes;
        init_rates = List.map snd comb.Multipath.paths;
        workload = Workload.Saturated;
        transport = Engine.Udp;
        tcp_params = None;
        start_time = 0.0;
        stop_time = None;
      }
    in
    let duration = sim_duration in
    let one ?trace ?flight ?prof seed =
      Engine.run ?trace ?flight ?prof (Rng.create seed) g dom ~flows:[ spec ]
        ~duration
    in
    let buffers_config =
      let fb = Engine.default_config.Engine.frame_bytes in
      {
        Engine.default_config with
        buffers =
          Some
            {
              Engine.policy = Engine.Dynamic_threshold 1.0;
              pool_bytes = 32 * fb;
              ecn_threshold_bytes = Some (8 * fb);
            };
      }
    in
    let one_buffered seed =
      Engine.run ~config:buffers_config (Rng.create seed) g dom
        ~flows:[ spec ] ~duration
    in
    let reps = bench_reps in
    let events = ref 0 and bytes = ref 0 and peak_q = ref 0 in
    let trace_events = ref 0 and sampled_events = ref 0 in
    let ring = Obs.Flight.create () in
    let buffered_events = ref 0 in
    (* Counters and the allocation probe come from one dedicated pass:
       runs are deterministic, so the counter values are the same in
       every timed block, and drawing [Gc.minor_words] outside the
       timed blocks keeps the probe itself out of the timings. *)
    let minor0 = Gc.minor_words () in
    for i = 1 to reps do
      let res = one i in
      events := !events + res.Engine.events_processed;
      bytes := !bytes + res.Engine.flows.(0).Engine.received_bytes;
      peak_q := max !peak_q res.Engine.perf.Engine.peak_queue_depth
    done;
    let minor_words = Gc.minor_words () -. minor0 in
    (* Untraced baseline (the headline events/s). *)
    let elapsed = timed_config (fun i -> ignore (one i)) in
    (* Same reps with a counting trace sink attached: the delta is the
       cost of the instrumentation hooks plus event records. *)
    let elapsed_traced =
      timed_config (fun i ->
          let sink, _ = Obs.Trace.counter () in
          ignore (one ~trace:sink i))
    in
    (* Event counts come from one separate pass per sink
       configuration, outside the timed blocks. *)
    for i = 1 to reps do
      let sink, count = Obs.Trace.counter () in
      ignore (one ~trace:sink i);
      trace_events := !trace_events + count ()
    done;
    (* Sampled tracing at the load-sweep setting (1 in 16): the
       acceptance bar is <2% over the untraced run, which requires the
       engine to skip event construction for sampled-out offers. *)
    let elapsed_sampled =
      timed_config (fun i ->
          let sink, _ = Obs.Trace.counter () in
          ignore (one ~trace:(Obs.Trace.sampled ~every:16 sink) i))
    in
    for i = 1 to reps do
      let sink, count = Obs.Trace.counter () in
      ignore (one ~trace:(Obs.Trace.sampled ~every:16 sink) i);
      sampled_events := !sampled_events + count ()
    done;
    (* The always-on flight recorder's cost: scalar ring stores on
       every event. *)
    let elapsed_flight = timed_config (fun i -> ignore (one ~flight:ring i)) in
    (* Finite shared buffers (DT alpha=1, 32-frame pool, ECN at 8):
       per-frame admission arithmetic on the enqueue path is the
       regression to watch. *)
    let elapsed_buffered = timed_config (fun i -> ignore (one_buffered i)) in
    for i = 1 to reps do
      let res = one_buffered i in
      buffered_events := !buffered_events + res.Engine.events_processed
    done;
    (* Per-subsystem attribution of the same scenario, merged across
       the reps (feeds the sub-300 ns/event roadmap item). *)
    let prof = Obs.Prof.create () in
    for i = 1 to reps do
      ignore (one ~prof i)
    done;
    let frames = !bytes / Engine.default_config.Engine.frame_bytes in
    let runs_s = float_of_int reps /. elapsed in
    let events_s = float_of_int !events /. elapsed in
    let events_s_traced = float_of_int !events /. elapsed_traced in
    let buffered_events_s = float_of_int !buffered_events /. elapsed_buffered in
    let frames_s = float_of_int frames /. elapsed in
    (* Overheads are non-negative by construction (the instrumented
       run does strictly more work); a negative measurement is timing
       noise, so clamp at zero rather than publish an impossibility. *)
    let overhead_of inst = Float.max 0.0 ((inst /. elapsed -. 1.0) *. 100.0) in
    let overhead_pct = overhead_of elapsed_traced in
    let overhead_sampled_pct = overhead_of elapsed_sampled in
    let flight_overhead_pct = overhead_of elapsed_flight in
    let prof_events_n = Obs.Prof.events prof in
    let prof_ns =
      Obs.Prof.total_wall prof *. 1e9 /. float_of_int (max 1 prof_events_n)
    in
    let prof_entries = Obs.Prof.report prof in
    let prof_words =
      List.fold_left (fun a e -> a +. e.Obs.Prof.minor_words) 0.0 prof_entries
      /. float_of_int (max 1 prof_events_n)
    in
    let prof_shares =
      String.concat ", "
        (List.map
           (fun e -> Printf.sprintf "\"%s\": %.1f" e.Obs.Prof.name e.Obs.Prof.share_pct)
           prof_entries)
    in
    (* Stdlib's, not the interference-domain module that shadows it. *)
    let cores = Stdlib.Domain.recommended_domain_count () in
    (* Chaos runs stress the fault schedules on top of the engine: the
       testbed scenario with a generated moderate plan per seed,
       dispatched through Chaos.sweep (sequential unless EMPOWER_JOBS
       is set — CPU time keeps the timing honest either way). *)
    let chaos_events = ref 0 and chaos_faults = ref 0 in
    let t2 = Sys.time () in
    List.iter
      (fun rep ->
        chaos_events := !chaos_events + rep.Chaos.result.Engine.events_processed;
        chaos_faults := !chaos_faults + rep.Chaos.fault_events)
      (Chaos.sweep ~duration:4.0 (List.init reps (fun i -> i + 1)));
    let elapsed_chaos = Float.max 1e-9 (Sys.time () -. t2) in
    let chaos_events_s = float_of_int !chaos_events /. elapsed_chaos in
    (* The self-healing headline numbers: a pinned full-severance run
       (every route of the flow down at once) with recovery on. The
       detection latency and the bounded recovery time land in the
       JSON so regressions in the recovery path show up per-commit. *)
    let sever = Chaos.run ~intensity:Fault.Gen.Severing ~recovery:true ~seed:13 ~duration:12.0 () in
    let sever_flow = List.hd sever.Chaos.flows in
    let t3 = Sys.time () in
    let sever_events = ref 0 in
    List.iter
      (fun rep ->
        sever_events := !sever_events + rep.Chaos.result.Engine.events_processed)
      (Chaos.sweep ~intensity:Fault.Gen.Severing ~recovery:true ~duration:4.0
         (List.init reps (fun i -> i + 1)));
    let elapsed_sever = Float.max 1e-9 (Sys.time () -. t3) in
    let sever_events_s = float_of_int !sever_events /. elapsed_sever in
    (* Steady-churn probe: the shipped flapping-churn scenario,
       inlined so the bench needs no file-system path. Scenario.run
       executes the fault-free baseline twin plus the churn run, so
       the events/s figure prices the full scorecard pipeline; the
       availability and SLO verdict land in the JSON so a regression
       in the degradation accounting shows up per-commit. *)
    let churn_spec =
      {
        Scenario.name = "flapping-churn";
        description = "bench probe: seeded relay flapping + ack drops";
        seed = 11;
        duration = 30.0;
        topology = Scenario.Testbed;
        topology_seed = 4242;
        devices =
          [
            { Device.node = 6; cls = Device.Relay; panel = None };
            { Device.node = 14; cls = Device.Relay; panel = None };
          ];
        flows = [ (0, 12); (18, 5) ];
        churn =
          Scenario.Plan
            [
              Fault.Node_flap
                { at = 3.0; until = 24.0; node = 6; period = 2.5; duty = 0.4 };
              Fault.Node_flap
                { at = 5.0; until = 22.0; node = 14; period = 3.0; duty = 0.35 };
              Fault.Ctrl_drop { at = 10.0; until = 14.0; prob = 0.3 };
            ];
        recovery = true;
        slo = { Scenario.availability_frac = 0.6; min_availability = 0.7 };
      }
    in
    let churn_card = Scenario.run churn_spec in
    let churn_events = ref 0 in
    let t3c = Sys.time () in
    let churn_reps = 3 in
    for _i = 1 to churn_reps do
      churn_events :=
        !churn_events + (Scenario.run churn_spec).Scenario.events_processed
    done;
    let elapsed_churn = Float.max 1e-9 (Sys.time () -. t3c) in
    let churn_events_s = float_of_int !churn_events /. elapsed_churn in
    (* Parallel-executor mini suite: three figures timed wall-clock at
       --jobs 1 and --jobs 4 (speedup needs wall time, not CPU time —
       worker domains burn CPU concurrently). The results must be
       bit-identical; the check lands in the JSON. On a single-core
       host the speedup hovers around 1. *)
    let wall = Unix.gettimeofday in
    let timed f =
      let t = wall () in
      let r = f () in
      (r, Float.max 1e-9 (wall () -. t))
    in
    let par_case name run =
      let r1, t1 = timed (fun () -> run 1) in
      let r4, t4 = timed (fun () -> run 4) in
      (name, t1, t4, r1 = r4)
    in
    let par_rows =
      [
        par_case "fig4" (fun jobs -> Fig4.run ~runs:24 ~jobs Common.Residential);
        par_case "fig6" (fun jobs -> Fig6.run ~runs:10 ~jobs Common.Residential);
        par_case "convergence" (fun jobs ->
            Convergence.run ~runs:6 ~jobs Common.Residential);
      ]
    in
    let par_t1 = List.fold_left (fun a (_, t, _, _) -> a +. t) 0.0 par_rows in
    let par_t4 = List.fold_left (fun a (_, _, t, _) -> a +. t) 0.0 par_rows in
    let par_identical = List.for_all (fun (_, _, _, ok) -> ok) par_rows in
    (* On a 1-core container the 4-job "speedup" only measures domain
       spawn overhead and reads as a regression; keep the bit-identity
       check (it needs no second core to be meaningful) but publish
       the speedup only when there is real parallel hardware. *)
    let parallel_speedup_4j =
      if cores > 1 then Some (par_t1 /. Float.max 1e-9 par_t4) else None
    in
    let speedup_json =
      match parallel_speedup_4j with
      | Some v -> Printf.sprintf "%.2f" v
      | None -> "null"
    in
    let speedup_note =
      match parallel_speedup_4j with
      | Some _ -> "measured"
      | None -> "skipped_single_core"
    in
    (* Empirical load-sweep probe: a pinned small sweep (the golden's
       parameters, seed 17) at a moderate and a heavy load factor.
       Achieved load and per-bucket tail FCT land in the JSON so
       regressions in the open-loop workload path or the FCT
       accounting show up per-commit next to the throughput numbers. *)
    let t4 = wall () in
    let ls =
      Loadsweep.sweep ~pairs:3 ~conns:2 ~duration:10.0 ~seed:17 [ 0.5; 0.8 ]
    in
    let loadsweep_wall_s = Float.max 1e-9 (wall () -. t4) in
    let bucket_p99 p label =
      match
        List.find_opt (fun b -> b.Loadsweep.label = label) p.Loadsweep.buckets
      with
      | Some b -> b.Loadsweep.p99
      | None -> 0.0
    in
    let loadsweep_rows =
      List.map
        (fun p ->
          Printf.sprintf
            "{\"load\": %.2f, \"achieved_load\": %.4f, \"completed\": %d, \
             \"p99_fct_tiny_s\": %.4f, \"p99_fct_short_s\": %.4f, \
             \"p99_fct_long_s\": %.4f}"
            p.Loadsweep.load p.Loadsweep.achieved_load p.Loadsweep.completed
            (bucket_p99 p "tiny") (bucket_p99 p "short") (bucket_p99 p "long"))
        ls.Loadsweep.points
    in
    let oc = open_out "BENCH_sim.json" in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"fig4 residential (seed 77), flow 0->9, %.0f s sim\",\n\
      \  \"runs\": %d,\n\
      \  \"elapsed_s\": %.3f,\n\
      \  \"runs_per_s\": %.2f,\n\
      \  \"events_per_s\": %.0f,\n\
      \  \"ns_per_event\": %.1f,\n\
      \  \"minor_words_per_event\": %.2f,\n\
      \  \"delivered_frames_per_s\": %.0f,\n\
      \  \"peak_event_queue\": %d,\n\
      \  \"events_per_s_traced\": %.0f,\n\
      \  \"trace_events_per_run\": %d,\n\
      \  \"trace_overhead_pct\": %.1f,\n\
      \  \"trace_overhead_sampled_pct\": %.1f,\n\
      \  \"trace_events_sampled_per_run\": %d,\n\
      \  \"flight_overhead_pct\": %.1f,\n\
      \  \"buffered_events_per_s\": %.0f,\n\
      \  \"prof_events\": %d,\n\
      \  \"prof_ns_per_event\": %.1f,\n\
      \  \"prof_minor_words_per_event\": %.2f,\n\
      \  \"prof_shares_pct\": {%s},\n\
      \  \"chaos_events_per_s\": %.0f,\n\
      \  \"chaos_fault_events_per_run\": %d,\n\
      \  \"sever_events_per_s\": %.0f,\n\
      \  \"sever_detect_s\": %.3f,\n\
      \  \"sever_recovery_s\": %.3f,\n\
      \  \"sever_goodput_mbps\": %.3f,\n\
      \  \"churn_scenario\": \"%s (seed %d), %.0f s sim\",\n\
      \  \"churn_events_per_s\": %.0f,\n\
      \  \"churn_route_deaths\": %d,\n\
      \  \"churn_min_availability\": %.3f,\n\
      \  \"churn_slo_met\": %b,\n\
      \  \"parallel_figure_wall_s\": {%s},\n\
      \  \"parallel_identical\": %b,\n\
      \  \"cores\": %d,\n\
      \  \"parallel_speedup_4j\": %s,\n\
      \  \"parallel_speedup_note\": \"%s\",\n\
      \  \"loadsweep_wall_s\": %.3f,\n\
      \  \"loadsweep_capacity_mbps\": %.3f,\n\
      \  \"loadsweep_points\": [%s]\n\
       }\n"
      duration reps elapsed runs_s events_s
      (elapsed *. 1e9 /. float_of_int (max 1 !events))
      (minor_words /. float_of_int (max 1 !events))
      frames_s !peak_q events_s_traced
      (!trace_events / reps) overhead_pct overhead_sampled_pct
      (!sampled_events / reps) flight_overhead_pct buffered_events_s
      prof_events_n prof_ns
      prof_words prof_shares chaos_events_s
      (!chaos_faults / reps) sever_events_s sever_flow.Chaos.detect_s
      sever_flow.Chaos.recovery_s sever_flow.Chaos.goodput_mbps
      churn_spec.Scenario.name churn_spec.Scenario.seed
      churn_spec.Scenario.duration churn_events_s
      churn_card.Scenario.route_deaths
      churn_card.Scenario.min_availability_measured
      churn_card.Scenario.slo_met
      (String.concat ", "
         (List.map
            (fun (nm, t1, t4, _) ->
              Printf.sprintf "\"%s_j1_s\": %.3f, \"%s_j4_s\": %.3f" nm t1 nm t4)
            par_rows))
      par_identical cores speedup_json speedup_note loadsweep_wall_s
      ls.Loadsweep.capacity_mbps
      (String.concat ", " loadsweep_rows);
    close_out oc;
    Printf.printf
      "BENCH_sim.json: %.2f runs/s, %.0f events/s (%.1f ns, %.2f minor words \
       per event), %.0f frames/s, trace overhead %.1f%% (sampled 1/16 \
       %.1f%%, flight %.1f%%), chaos %.0f events/s, severance detect %.3f s \
       / recovery %.3f s, churn scenario %.0f events/s (min availability \
       %.3f, SLO met: %b), %d-core 4-job speedup %s (identical: %b), \
       loadsweep achieved %s in %.1f s\n\
       %!"
      runs_s events_s
      (elapsed *. 1e9 /. float_of_int (max 1 !events))
      (minor_words /. float_of_int (max 1 !events))
      frames_s overhead_pct overhead_sampled_pct flight_overhead_pct
      chaos_events_s sever_flow.Chaos.detect_s sever_flow.Chaos.recovery_s
      churn_events_s churn_card.Scenario.min_availability_measured
      churn_card.Scenario.slo_met
      cores
      (match parallel_speedup_4j with
      | Some v -> Printf.sprintf "%.2fx" v
      | None -> "skipped (single core)")
      par_identical
      (String.concat "/"
         (List.map
            (fun p -> Printf.sprintf "%.2f" p.Loadsweep.achieved_load)
            ls.Loadsweep.points))
      loadsweep_wall_s

(* ---------- part 1c: CI perf regression gate ---------- *)

(* [bench check] (the `--check` gate): re-times the pinned scenario
   with the same warmup + median-of-rounds methodology as the sim
   section and exits non-zero if events/s lands more than
   [check_tolerance_pct] below the committed BENCH_baseline.json
   snapshot. The gate reads only the baseline's [events_per_s] field;
   refresh the snapshot by copying a representative BENCH_sim.json
   over it when a deliberate engine change moves the number.

   The tolerance is sized to the CI container's co-tenant jitter, not
   to the regressions we care about: identical code measures anywhere
   in a roughly +-25% band around the baseline on a shared 1-core
   box, while the failure modes worth catching (a reintroduced
   per-event allocation, an accidental O(n) scan on the hot path)
   cost 2x or more. *)
let baseline_file = "BENCH_baseline.json"
let check_tolerance_pct = 35.0

(* Minimal scan for  "key": <number>  — the snapshot is written by
   this same file's printf, so no general JSON parser is needed. *)
let scan_number s key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle and slen = String.length s in
  let is_num c =
    match c with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false
  in
  let rec scan i =
    if i + nlen > slen then None
    else if String.sub s i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < slen && (s.[!j] = ' ' || s.[!j] = '\t') do
        incr j
      done;
      let k = ref !j in
      while !k < slen && is_num s.[!k] do
        incr k
      done;
      float_of_string_opt (String.sub s !j (!k - !j))
    end
    else scan (i + 1)
  in
  scan 0

let run_sim_check () =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let baseline =
    match read_file baseline_file with
    | exception Sys_error _ ->
      Printf.eprintf "bench check: %s not found — commit a baseline snapshot\n"
        baseline_file;
      exit 2
    | s -> (
      match scan_number s "events_per_s" with
      | Some v when v > 0.0 -> v
      | Some _ | None ->
        Printf.eprintf "bench check: no events_per_s in %s\n" baseline_file;
        exit 2)
  in
  match sim_runner () with
  | None ->
    Printf.eprintf "bench check: skipped (no route 0 -> 9)\n";
    exit 2
  | Some one ->
    let events = ref 0 in
    for i = 1 to bench_reps do
      events := !events + (one i).Engine.events_processed
    done;
    let elapsed = timed_config (fun i -> ignore (one i)) in
    let events_s = float_of_int !events /. elapsed in
    let floor_events_s = baseline *. (1.0 -. (check_tolerance_pct /. 100.0)) in
    let verdict = events_s >= floor_events_s in
    Printf.printf
      "bench check: %.0f events/s measured vs %.0f baseline (floor %.0f, \
       -%.0f%%): %s\n\
       %!"
      events_s baseline floor_events_s check_tolerance_pct
      (if verdict then "OK" else "REGRESSION");
    if not verdict then exit 1

(* ---------- part 2: table/figure regeneration ---------- *)

let scale =
  match Sys.getenv_opt "EMPOWER_BENCH_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 100)
  | None -> 100

let scaled default = max 3 (default * scale / 100)

let header title = Printf.printf "\n===== %s =====\n%!" title

let run_experiments () =
  header "Figure 4 (residential + enterprise)";
  Fig4.print (Fig4.run ~runs:(scaled 30) Common.Residential);
  Fig4.print (Fig4.run ~runs:(scaled 30) Common.Enterprise);
  header "Figure 5";
  Fig5.print (Fig5.run ~runs:(scaled 30) Common.Residential);
  Fig5.print (Fig5.run ~runs:(scaled 30) Common.Enterprise);
  header "Figure 6";
  Fig6.print (Fig6.run ~runs:(scaled 15) Common.Residential);
  Fig6.print (Fig6.run ~runs:(scaled 15) Common.Enterprise);
  header "Figure 7";
  Fig7.print (Fig7.run ~runs:(scaled 8) Common.Residential);
  Fig7.print (Fig7.run ~runs:(scaled 8) Common.Enterprise);
  header "Convergence (Section 5.2.2)";
  Convergence.print (Convergence.run ~runs:(scaled 6) Common.Residential);
  Convergence.print (Convergence.run ~runs:(scaled 6) Common.Enterprise);
  header "Figure 9 (packet-level)";
  Fig9.print (Fig9.run ~time_scale:0.1 ());
  header "Figure 10";
  Fig10.print (Fig10.run ~pairs:(scaled 15) ());
  header "Figure 11 (packet-level)";
  Fig11.print (Fig11.run ~duration:150.0 ());
  header "Table 1 (packet-level)";
  Table1.print (Table1.run ~repeats:(max 2 (scaled 2)) ~long_scale:0.02 ());
  header "Figure 12 (packet-level TCP)";
  Fig12.print (Fig12.run ~phase_seconds:120.0 ());
  header "Figure 13 (packet-level TCP)";
  Fig13.print (Fig13.run ~duration:80.0 ());
  header "Footnote 7: metric comparison";
  Metric_comparison.print (Metric_comparison.run ~runs:(scaled 15) Common.Residential);
  Metric_comparison.print (Metric_comparison.run ~runs:(scaled 15) Common.Enterprise);
  header "Section 7: MPTCP applicability";
  Mptcp_applicability.print (Mptcp_applicability.run ());
  header "MAC fairness [40]";
  Mac_fairness.print (Mac_fairness.run ~slots:(max 20000 (scaled 100_000)) ());
  header "Ablations";
  Ablations.print (Ablations.n_shortest ~runs:(scaled 10) ());
  Ablations.print (Ablations.csc ~runs:(scaled 10) ());
  Ablations.print (Ablations.delta ~runs:(scaled 10) ());
  Ablations.print (Ablations.tree_depth ~runs:(scaled 10) ());
  Ablations.print (Ablations.gain ~runs:(scaled 5) ());
  Ablations.print (Ablations.delta_delay ())

let () =
  let sections =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "kernels"; "sim"; "experiments" ]
    | args -> args
  in
  List.iter
    (function
      | "kernels" -> run_kernels ()
      | "sim" -> write_sim_bench ()
      | "check" | "--check" -> run_sim_check ()
      | "experiments" -> run_experiments ()
      | s ->
        Printf.eprintf
          "unknown bench section %S (expected kernels, sim, check or \
           experiments)\n"
          s;
        exit 2)
    sections;
  print_endline "\nbench: done"
