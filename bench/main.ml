(* The benchmark harness: `dune exec bench/main.exe`.

   Part 1 — Bechamel micro-benchmarks of the kernels every experiment
   leans on (one Test.make per kernel): the multipath exploration
   tree, CSC Dijkstra, Yen, the congestion controller, the LP-based
   optimal baseline, the fluid MAC, the packet engine and the 20-byte
   header codec.

   Part 2 — regeneration of every table and figure of the paper's
   evaluation at bench scale (the same printers the CLI uses, smaller
   run counts). Set EMPOWER_BENCH_RUNS to scale part 2 up; the paper
   itself uses 1000 simulation runs per figure. *)

open Bechamel
open Toolkit

(* ---------- part 1: kernels ---------- *)

let residential_case =
  lazy
    (let inst = Residential.generate (Rng.create 77) in
     let g = Builder.graph inst Builder.Hybrid in
     let dom = Domain.of_instance inst Builder.Hybrid g in
     (g, dom))

let testbed_case =
  lazy
    (let inst = Testbed.generate (Rng.create 4242) in
     let g = Builder.graph inst Builder.Hybrid in
     let dom = Domain.of_instance inst Builder.Hybrid g in
     (g, dom))

let bench_multipath () =
  let g, dom = Lazy.force residential_case in
  ignore (Multipath.find g dom ~src:0 ~dst:9)

let bench_dijkstra () =
  let g, _ = Lazy.force residential_case in
  ignore (Dijkstra.shortest_path g ~src:0 ~dst:9)

let bench_yen () =
  let g, _ = Lazy.force residential_case in
  ignore (Yen.k_shortest g ~src:0 ~dst:9 ~k:5)

let bench_cc () =
  let g, dom = Lazy.force residential_case in
  let routes = Multipath.routes (Multipath.find g dom ~src:0 ~dst:9) in
  let p = Problem.make g dom ~flows:[ routes ] in
  let x_init = Array.of_list (List.map (Update.path_rate g dom) routes) in
  ignore (Multi_cc.solve ~x_init ~slots:500 p)

let bench_lp () =
  let g, dom = Lazy.force residential_case in
  ignore (Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:9)

let bench_fluid () =
  let g, dom = Lazy.force residential_case in
  let routes = Multipath.routes (Multipath.find g dom ~src:0 ~dst:9) in
  let offered = List.map (fun p -> (p, Update.path_rate g dom p)) routes in
  ignore (Fluid.goodput g dom ~offered)

let bench_engine () =
  let g, dom = Lazy.force testbed_case in
  let comb = Multipath.find g dom ~src:0 ~dst:12 in
  match Multipath.routes comb with
  | [] -> ()
  | routes ->
    let spec =
      {
        Engine.src = 0;
        dst = 12;
        routes;
        init_rates = List.map snd comb.Multipath.paths;
        workload = Workload.Saturated;
        transport = Engine.Udp;
        start_time = 0.0;
        stop_time = None;
      }
    in
    ignore (Engine.run (Rng.create 1) g dom ~flows:[ spec ] ~duration:2.0)

let bench_header () =
  let h = Header.make ~seq:123456 ~qr:0.125 ~route:[| 0x1a2b; 0x3c4d; 0x5e6f |] in
  ignore (Header.decode (Header.encode h))

let kernel_tests =
  [
    Test.make ~name:"multipath exploration tree" (Staged.stage bench_multipath);
    Test.make ~name:"CSC dijkstra" (Staged.stage bench_dijkstra);
    Test.make ~name:"yen 5-shortest" (Staged.stage bench_yen);
    Test.make ~name:"multipath CC (500 slots)" (Staged.stage bench_cc);
    Test.make ~name:"LP optimal baseline" (Staged.stage bench_lp);
    Test.make ~name:"fluid MAC goodput" (Staged.stage bench_fluid);
    Test.make ~name:"packet engine (2 s sim)" (Staged.stage bench_engine);
    Test.make ~name:"header encode+decode" (Staged.stage bench_header);
  ]

let run_kernels () =
  print_endline "=== Bechamel kernel benchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"empower" ~fmt:"%s %s" kernel_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      rows := (name, time_ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-45s (no estimate)\n" name
      else if ns > 1e9 then Printf.printf "%-45s %8.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then Printf.printf "%-45s %8.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-45s %8.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "%-45s %8.0f ns/run\n" name ns)
    (List.sort compare !rows)

(* ---------- part 1b: engine throughput on a fixed scenario ---------- *)

let write_sim_bench () =
  (* The figure-4 residential scenario, pinned (seed 77, flow 0->9):
     wall-clock engine throughput lands in BENCH_sim.json so numbers
     are comparable across commits. *)
  let g, dom = Lazy.force residential_case in
  let comb = Multipath.find g dom ~src:0 ~dst:9 in
  match Multipath.routes comb with
  | [] -> print_endline "BENCH_sim.json: skipped (no route 0 -> 9)"
  | routes ->
    let spec =
      {
        Engine.src = 0;
        dst = 9;
        routes;
        init_rates = List.map snd comb.Multipath.paths;
        workload = Workload.Saturated;
        transport = Engine.Udp;
        start_time = 0.0;
        stop_time = None;
      }
    in
    let duration = 4.0 in
    let one ?trace seed =
      Engine.run ?trace (Rng.create seed) g dom ~flows:[ spec ] ~duration
    in
    ignore (one 0) (* warm-up *);
    let reps = 5 in
    let events = ref 0 and bytes = ref 0 and peak_q = ref 0 in
    let t0 = Sys.time () in
    for i = 1 to reps do
      let res = one i in
      events := !events + res.Engine.events_processed;
      bytes := !bytes + res.Engine.flows.(0).Engine.received_bytes;
      peak_q := max !peak_q res.Engine.perf.Engine.peak_queue_depth
    done;
    let elapsed = Float.max 1e-9 (Sys.time () -. t0) in
    (* Same reps again with a counting trace sink attached: the delta
       is the cost of the instrumentation hooks plus event records. *)
    let trace_events = ref 0 in
    let t1 = Sys.time () in
    for i = 1 to reps do
      let sink, count = Obs.Trace.counter () in
      ignore (one ~trace:sink i);
      trace_events := !trace_events + count ()
    done;
    let elapsed_traced = Float.max 1e-9 (Sys.time () -. t1) in
    let frames = !bytes / Engine.default_config.Engine.frame_bytes in
    let runs_s = float_of_int reps /. elapsed in
    let events_s = float_of_int !events /. elapsed in
    let events_s_traced = float_of_int !events /. elapsed_traced in
    let frames_s = float_of_int frames /. elapsed in
    let overhead_pct = (elapsed_traced /. elapsed -. 1.0) *. 100.0 in
    (* Chaos runs stress the fault schedules on top of the engine: the
       testbed scenario with a generated moderate plan per seed. *)
    let chaos_events = ref 0 and chaos_faults = ref 0 in
    let t2 = Sys.time () in
    for i = 1 to reps do
      let rep = Chaos.run ~seed:i ~duration:4.0 () in
      chaos_events := !chaos_events + rep.Chaos.result.Engine.events_processed;
      chaos_faults := !chaos_faults + rep.Chaos.fault_events
    done;
    let elapsed_chaos = Float.max 1e-9 (Sys.time () -. t2) in
    let chaos_events_s = float_of_int !chaos_events /. elapsed_chaos in
    (* The self-healing headline numbers: a pinned full-severance run
       (every route of the flow down at once) with recovery on. The
       detection latency and the bounded recovery time land in the
       JSON so regressions in the recovery path show up per-commit. *)
    let sever = Chaos.run ~intensity:Fault.Gen.Severing ~recovery:true ~seed:13 ~duration:12.0 () in
    let sever_flow = List.hd sever.Chaos.flows in
    let t3 = Sys.time () in
    let sever_events = ref 0 in
    for i = 1 to reps do
      let rep =
        Chaos.run ~intensity:Fault.Gen.Severing ~recovery:true ~seed:i
          ~duration:4.0 ()
      in
      sever_events := !sever_events + rep.Chaos.result.Engine.events_processed
    done;
    let elapsed_sever = Float.max 1e-9 (Sys.time () -. t3) in
    let sever_events_s = float_of_int !sever_events /. elapsed_sever in
    let oc = open_out "BENCH_sim.json" in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"fig4 residential (seed 77), flow 0->9, %.0f s sim\",\n\
      \  \"runs\": %d,\n\
      \  \"elapsed_s\": %.3f,\n\
      \  \"runs_per_s\": %.2f,\n\
      \  \"events_per_s\": %.0f,\n\
      \  \"delivered_frames_per_s\": %.0f,\n\
      \  \"peak_event_queue\": %d,\n\
      \  \"events_per_s_traced\": %.0f,\n\
      \  \"trace_events_per_run\": %d,\n\
      \  \"trace_overhead_pct\": %.1f,\n\
      \  \"chaos_events_per_s\": %.0f,\n\
      \  \"chaos_fault_events_per_run\": %d,\n\
      \  \"sever_events_per_s\": %.0f,\n\
      \  \"sever_detect_s\": %.3f,\n\
      \  \"sever_recovery_s\": %.3f,\n\
      \  \"sever_goodput_mbps\": %.3f\n\
       }\n"
      duration reps elapsed runs_s events_s frames_s !peak_q events_s_traced
      (!trace_events / reps) overhead_pct chaos_events_s
      (!chaos_faults / reps) sever_events_s sever_flow.Chaos.detect_s
      sever_flow.Chaos.recovery_s sever_flow.Chaos.goodput_mbps;
    close_out oc;
    Printf.printf
      "BENCH_sim.json: %.2f runs/s, %.0f events/s, %.0f frames/s, trace \
       overhead %.1f%%, chaos %.0f events/s, severance detect %.3f s / \
       recovery %.3f s\n\
       %!"
      runs_s events_s frames_s overhead_pct chaos_events_s
      sever_flow.Chaos.detect_s sever_flow.Chaos.recovery_s

(* ---------- part 2: table/figure regeneration ---------- *)

let scale =
  match Sys.getenv_opt "EMPOWER_BENCH_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 100)
  | None -> 100

let scaled default = max 3 (default * scale / 100)

let header title = Printf.printf "\n===== %s =====\n%!" title

let run_experiments () =
  header "Figure 4 (residential + enterprise)";
  Fig4.print (Fig4.run ~runs:(scaled 30) Common.Residential);
  Fig4.print (Fig4.run ~runs:(scaled 30) Common.Enterprise);
  header "Figure 5";
  Fig5.print (Fig5.run ~runs:(scaled 30) Common.Residential);
  Fig5.print (Fig5.run ~runs:(scaled 30) Common.Enterprise);
  header "Figure 6";
  Fig6.print (Fig6.run ~runs:(scaled 15) Common.Residential);
  Fig6.print (Fig6.run ~runs:(scaled 15) Common.Enterprise);
  header "Figure 7";
  Fig7.print (Fig7.run ~runs:(scaled 8) Common.Residential);
  Fig7.print (Fig7.run ~runs:(scaled 8) Common.Enterprise);
  header "Convergence (Section 5.2.2)";
  Convergence.print (Convergence.run ~runs:(scaled 6) Common.Residential);
  Convergence.print (Convergence.run ~runs:(scaled 6) Common.Enterprise);
  header "Figure 9 (packet-level)";
  Fig9.print (Fig9.run ~time_scale:0.1 ());
  header "Figure 10";
  Fig10.print (Fig10.run ~pairs:(scaled 15) ());
  header "Figure 11 (packet-level)";
  Fig11.print (Fig11.run ~duration:150.0 ());
  header "Table 1 (packet-level)";
  Table1.print (Table1.run ~repeats:(max 2 (scaled 2)) ~long_scale:0.02 ());
  header "Figure 12 (packet-level TCP)";
  Fig12.print (Fig12.run ~phase_seconds:120.0 ());
  header "Figure 13 (packet-level TCP)";
  Fig13.print (Fig13.run ~duration:80.0 ());
  header "Footnote 7: metric comparison";
  Metric_comparison.print (Metric_comparison.run ~runs:(scaled 15) Common.Residential);
  Metric_comparison.print (Metric_comparison.run ~runs:(scaled 15) Common.Enterprise);
  header "Section 7: MPTCP applicability";
  Mptcp_applicability.print (Mptcp_applicability.run ());
  header "MAC fairness [40]";
  Mac_fairness.print (Mac_fairness.run ~slots:(max 20000 (scaled 100_000)) ());
  header "Ablations";
  Ablations.print (Ablations.n_shortest ~runs:(scaled 10) ());
  Ablations.print (Ablations.csc ~runs:(scaled 10) ());
  Ablations.print (Ablations.delta ~runs:(scaled 10) ());
  Ablations.print (Ablations.tree_depth ~runs:(scaled 10) ());
  Ablations.print (Ablations.gain ~runs:(scaled 5) ());
  Ablations.print (Ablations.delta_delay ())

let () =
  run_kernels ();
  write_sim_bench ();
  run_experiments ();
  print_endline "\nbench: done"
