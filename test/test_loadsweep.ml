(* Golden-seed regression and jobs-determinism tests for the empirical
   load sweep (lib/experiments/loadsweep.ml). test/golden/
   loadsweep_seed17.json is the exact `empower_eval loadsweep --seed 17
   --pairs 3 --conns 2 --duration 10 --load 0.2 --load 0.5 --load 0.8
   --json` output; replaying those parameters must reproduce it byte
   for byte, at any --jobs count. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_path = Filename.concat "golden" "loadsweep_seed17.json"

let jget name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "golden report: missing field %S" name

let jint name j =
  match Obs.Json.to_int_opt (jget name j) with
  | Some i -> i
  | None -> Alcotest.failf "golden field %S: expected integer" name

let jfloat name j =
  match Obs.Json.to_float_opt (jget name j) with
  | Some f -> f
  | None -> Alcotest.failf "golden field %S: expected number" name

let golden_text () = String.trim (read_file golden_path)

let golden_params () =
  let j =
    match Obs.Json.parse (golden_text ()) with
    | Ok j -> j
    | Error m -> Alcotest.failf "%s: %s" golden_path m
  in
  let loads =
    match jget "points" j with
    | Obs.Json.List pts -> List.map (jfloat "load") pts
    | _ -> Alcotest.failf "golden field \"points\": expected list"
  in
  ( jint "seed" j,
    jint "pairs" j,
    jint "conns" j,
    jfloat "duration" j,
    jfloat "drain" j,
    loads )

let rerun ?jobs () =
  let seed, pairs, conns, duration, drain, loads = golden_params () in
  Obs.Json.to_string
    (Figure_json.loadsweep
       (Loadsweep.sweep ~pairs ~conns ~duration ~drain ~seed ?jobs loads))

let test_golden_replay () =
  (* The parameters embedded in the golden reproduce it exactly —
     histogram percentiles, achieved loads and all. Regenerate with
     the command in the header comment if an intentional engine or
     format change lands. *)
  Alcotest.(check string) "golden loadsweep byte-identical" (golden_text ())
    (rerun ())

let test_jobs_byte_identity () =
  (* The --jobs contract (test_exec pattern): any worker count yields
     byte-identical figure JSON. *)
  let seq = rerun ~jobs:1 () in
  Alcotest.(check string) "--jobs 2 byte-identical" seq (rerun ~jobs:2 ());
  Alcotest.(check string) "--jobs 3 byte-identical" seq (rerun ~jobs:3 ())

let test_seed_changes_output () =
  (* Guard against the golden accidentally pinning seed-independent
     output: a different seed must change the figure. *)
  let _, pairs, conns, duration, drain, loads = golden_params () in
  let at seed =
    Obs.Json.to_string
      (Figure_json.loadsweep
         (Loadsweep.sweep ~pairs ~conns ~duration ~drain ~seed loads))
  in
  Alcotest.(check bool) "seed matters" false (at 17 = at 18)

let () =
  Alcotest.run "loadsweep"
    [
      ( "golden",
        [
          Alcotest.test_case "replay seed 17" `Quick test_golden_replay;
          Alcotest.test_case "seed changes output" `Quick
            test_seed_changes_output;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs byte-identity" `Slow test_jobs_byte_identity;
        ] );
    ]
