(* Deterministic random-case generators for the property suite.

   Every generator is a pure function of an integer seed through
   [Rng]: a QCheck counterexample therefore consists of one printed
   integer, and replaying it rebuilds the exact topology, interference
   structure and flow set (see README "Testing & invariants").

   Topologies are random connected hybrid multigraphs: a random
   spanning tree guarantees connectivity, extra edges (possibly
   parallel, on a second technology) add the multipath structure the
   oracles exercise. Interference is drawn from the two in-tree
   models: the single-collision-domain-per-technology limit, or a
   random symmetric per-technology predicate thickened with the
   mandatory peer/self pairs. *)

type case = {
  seed : int;
  g : Multigraph.t;
  dom : Domain.t;
  src : int;
  dst : int;
}

let capacity rng =
  (* Spread over the paper's PLC/WiFi range, away from zero. *)
  Rng.uniform rng 5.0 100.0

(* A connected multigraph on [n] nodes and [n_techs] technologies. *)
let random_graph rng ~n ~n_techs ~extra =
  let edges = ref [] in
  (* Random spanning tree: node i attaches to a uniform predecessor. *)
  for v = 1 to n - 1 do
    let u = Rng.int rng v in
    edges := (u, v, Rng.int rng n_techs, capacity rng) :: !edges
  done;
  (* Extra edges, rejecting self-loops and exact duplicates (same
     unordered pair + technology, which Multigraph.create forbids). *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u, v, k, _) -> Hashtbl.replace seen (min u v, max u v, k) ())
    !edges;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    let k = Rng.int rng n_techs in
    let key = (min u v, max u v, k) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      edges := (u, v, k, capacity rng) :: !edges;
      incr added
    end
  done;
  Multigraph.create ~n_nodes:n ~n_techs ~edges:(List.rev !edges)

let random_domain rng g =
  if Rng.bool rng then Domain.single_domain_per_tech g
  else begin
    (* Random symmetric same-technology interference: precompute the
       matrix so the predicate handed to Domain.create is pure. *)
    let m = Multigraph.num_links g in
    let mat = Array.make_matrix m m false in
    let links = Multigraph.links g in
    let p = Rng.uniform rng 0.3 0.9 in
    for a = 0 to m - 1 do
      for b = a + 1 to m - 1 do
        let la = links.(a) and lb = links.(b) in
        let touches =
          la.Multigraph.src = lb.Multigraph.src
          || la.Multigraph.src = lb.Multigraph.dst
          || la.Multigraph.dst = lb.Multigraph.src
          || la.Multigraph.dst = lb.Multigraph.dst
        in
        if la.Multigraph.tech = lb.Multigraph.tech
           && (touches || Rng.float rng < p)
        then begin
          mat.(a).(b) <- true;
          mat.(b).(a) <- true
        end
      done
    done;
    Domain.create g ~interferes:(fun a b -> mat.(a).(b))
  end

let case_of_seed seed =
  let rng = Rng.create (0x9E3779B9 + seed) in
  let n = 3 + Rng.int rng 6 in
  let n_techs = 1 + Rng.int rng 2 in
  let extra = Rng.int rng (n + 2) in
  let g = random_graph rng ~n ~n_techs ~extra in
  let dom = random_domain rng g in
  let src = Rng.int rng n in
  let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
  { seed; g; dom; src; dst }

let saturated_flow_of_case c =
  let comb = Multipath.find c.g c.dom ~src:c.src ~dst:c.dst in
  match Multipath.routes comb with
  | [] -> None
  | routes ->
    Some
      ( comb,
        {
          Engine.src = c.src;
          dst = c.dst;
          routes;
          init_rates = List.map snd comb.Multipath.paths;
          workload = Workload.Saturated;
          transport = Engine.Udp;
          tcp_params = None;
          start_time = 0.0;
          stop_time = None;
        } )

(* Lemma 1 cases: k disjoint saturated links sharing one collision
   domain; the closed form predicts each delivers (Σ_l d_l)^-1. *)
type lemma1_case = {
  l1_seed : int;
  l1_g : Multigraph.t;
  l1_dom : Domain.t;
  caps : float array;
}

let lemma1_case_of_seed seed =
  let rng = Rng.create (0x51ED2701 + seed) in
  let k = 2 + Rng.int rng 4 in
  let caps = Array.init k (fun _ -> Rng.uniform rng 8.0 60.0) in
  let edges =
    List.init k (fun i -> (2 * i, (2 * i) + 1, 0, caps.(i)))
  in
  let g = Multigraph.create ~n_nodes:(2 * k) ~n_techs:1 ~edges in
  { l1_seed = seed; l1_g = g; l1_dom = Domain.single_domain_per_tech g; caps }

let lemma1_flows c =
  Array.to_list
    (Array.mapi
       (fun i _ ->
         {
           Engine.src = 2 * i;
           dst = (2 * i) + 1;
           (* edge i materializes directed links 2i (u->v) and 2i+1 *)
           routes = [ Paths.of_links c.l1_g [ 2 * i ] ];
           (* overload: well above any link's fair share *)
           init_rates = [ 100.0 ];
           workload = Workload.Saturated;
           transport = Engine.Udp;
           tcp_params = None;
           start_time = 0.0;
           stop_time = None;
         })
       c.caps)

let goodput res i duration =
  float_of_int res.Engine.flows.(i).Engine.received_bytes *. 8e-6 /. duration

(* Chaos cases: a random fault plan for the case's graph, drawn from
   the same printed integer seed (replay with
   [chaos_plan_of_case (case_of_seed <seed>)]). *)
let chaos_plan_of_case ?intensity ?clear_by c ~duration =
  Fault.Gen.plan ?intensity ?clear_by
    (Rng.create (0x1F123BB5 + c.seed))
    c.g ~duration

(* Non-severing plans for the legacy recovery property: shallow
   capacity degradations, loss windows and control faults, but never
   capacity 0 and never a deep dip. The plain congestion controller
   has a measured price hysteresis: while offered load exceeds a
   link's (estimated) capacity the price gamma grows with the
   overload, and after the fault clears it drains at a fixed slow
   rate (~0.03/s), after which the rate itself climbs back only
   gradually. Without the recovery subsystem a severed route takes
   tens of seconds to recover this way, and even a sub-second dip to
   30% of capacity leaves a price overhang that outlives a 12 s run.
   "Back within 10% shortly after clearing" is therefore a theorem in
   two regimes: for faults whose overload x duration is small
   (degradations here stay above 70% of capacity and last at most
   ~1.2 s, so the overhang drains well inside the tail window), and —
   with [Engine.config.recovery] set — for full severances, whose
   stale prices are reset rather than drained (see
   [severing_plan_of_case] and the severing properties). *)
let degrading_plan_of_case c ~clear_by =
  let rng = Rng.create (0x2E7F9A11 + c.seed) in
  let n_links = Multigraph.num_links c.g in
  let window ?(max_len = infinity) () =
    let t0 = Rng.uniform rng 0.2 (clear_by -. 0.3) in
    let t1 =
      Float.min
        (Rng.uniform rng (t0 +. 0.1) (clear_by -. 0.05))
        (t0 +. max_len)
    in
    (t0, t1)
  in
  List.concat
    (List.init
       (2 + Rng.int rng 3)
       (fun _ ->
         let kind = Rng.int rng 4 in
         match kind with
         | 0 ->
           let t0, t1 = window ~max_len:1.2 () in
           let l = Rng.int rng n_links in
           let cap = Multigraph.capacity c.g l in
           let frac = Rng.uniform rng 0.7 0.95 in
           [
             Fault.Capacity_set { at = t0; link = l; capacity = frac *. cap };
             Fault.Capacity_set { at = t1; link = l; capacity = cap };
           ]
         | 1 ->
           let t0, t1 = window () in
           let l = Rng.int rng n_links in
           [
             Fault.Loss_window
               { at = t0; until = t1; link = l; prob = Rng.uniform rng 0.05 0.3 };
           ]
         | 2 ->
           let t0, t1 = window () in
           [ Fault.Ctrl_drop { at = t0; until = t1; prob = Rng.uniform rng 0.1 0.5 } ]
         | _ ->
           let t0, t1 = window () in
           [
             Fault.Ctrl_delay
               { at = t0; until = t1; delay = Rng.uniform rng 0.02 0.15 };
           ]))

(* Severing plans for the self-healing recovery property: one node
   crash pinned to the flow's destination, so every route of the flow
   is down for the whole window — the worst case the recovery
   subsystem must bound. Distinct seed constant: the severing stream
   never collides with the other per-case plan streams. *)
let severing_plan_of_case ?clear_by c ~duration =
  Fault.Gen.plan ~intensity:Fault.Gen.Severing ?clear_by ~victim:c.dst
    (Rng.create (0x53F7A3C1 + c.seed))
    c.g ~duration

let mean_goodput_window res i lo hi =
  let pts =
    List.filter_map
      (fun (t, gp) -> if t > lo && t <= hi then Some gp else None)
      res.Engine.flows.(i).Engine.goodput_series
  in
  match pts with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 pts /. float_of_int (List.length pts)
