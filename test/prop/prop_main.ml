(* Property-based differential tests for the sim datapath.

   Each property draws a random hybrid network from [Prop_gen] (a pure
   function of the printed integer seed — replay a failure with
   [Prop_gen.case_of_seed <seed>] in any test) and confronts the
   repo's independent models with each other:

   - the packet engine against the LP/clique optimal rate region
     (nothing simulated may beat the converse bound);
   - the multipath routing procedure against the single-path
     procedure (more paths never hurt);
   - the fluid MAC model against the paper's feasibility constraint
     (2) (rates on the constraint boundary are delivered whole);
   - the engine's saturated MAC against Lemma 1's closed form
     (Σ_l d_l)^-1;
   - the engine against itself (same seed ⇒ bit-identical results,
     with or without the invariant checker attached).

   The whole suite runs under a fixed QCheck seed so CI is
   deterministic: `dune runtest test/prop`. *)

let seed_gen = QCheck.int_bound 999_999

(* ---------- oracle 1: engine ≤ LP optimal (+ invariant checking) ---------- *)

let prop_engine_le_optimal =
  QCheck.Test.make ~count:100 ~name:"engine goodput <= LP optimal rate region"
    seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true (* unreachable destination: nothing to bound *)
      | Some (_, flow) ->
        let duration = 8.0 in
        let inv = Invariants.create () in
        let res =
          Engine.run ~invariants:inv
            (Rng.create (seed + 1))
            c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration
        in
        let gp = Prop_gen.goodput res 0 duration in
        let opt =
          Opt_solver.max_throughput Rate_region.Exact c.Prop_gen.g c.Prop_gen.dom
            ~src:c.Prop_gen.src ~dst:c.Prop_gen.dst
        in
        if Invariants.events_checked inv = 0 then
          QCheck.Test.fail_reportf "seed %d: invariant checker never ran" seed;
        if gp > (opt *. 1.05) +. 1.0 then
          QCheck.Test.fail_reportf
            "seed %d: simulated %.3f Mbit/s beats the optimal bound %.3f" seed gp
            opt;
        true)

(* ---------- oracle 2: multipath >= best single path ---------- *)

let prop_multipath_ge_single =
  QCheck.Test.make ~count:200
    ~name:"multipath combination rate >= single-path rate" seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      let comb =
        Multipath.find c.Prop_gen.g c.Prop_gen.dom ~src:c.Prop_gen.src
          ~dst:c.Prop_gen.dst
      in
      match
        Single_path.route_rate c.Prop_gen.g c.Prop_gen.dom ~src:c.Prop_gen.src
          ~dst:c.Prop_gen.dst
      with
      | None ->
        (* Disconnected for single-path ⇒ multipath finds nothing either. *)
        comb.Multipath.paths = []
      | Some (_, sp_rate) ->
        if comb.Multipath.total_rate < sp_rate -. 1e-6 then
          QCheck.Test.fail_reportf
            "seed %d: multipath %.4f Mbit/s below single path %.4f" seed
            comb.Multipath.total_rate sp_rate;
        true)

(* ---------- oracle 3: fluid MAC agrees with constraint (2) ---------- *)

(* Max interference-domain utilization of a per-route offer, i.e. the
   left-hand side of the paper's feasibility constraint (2):
   max_l Σ_{l' ∈ I(l)} traffic(l') / capacity(l'). *)
let max_domain_utilization g dom offered =
  let m = Multigraph.num_links g in
  let traffic = Array.make m 0.0 in
  List.iter
    (fun (p, r) ->
      List.iter (fun l -> traffic.(l) <- traffic.(l) +. r) p.Paths.links)
    offered;
  let util = ref 0.0 in
  for l = 0 to m - 1 do
    let y =
      List.fold_left
        (fun a l' -> a +. (traffic.(l') /. Multigraph.capacity g l'))
        0.0 (Domain.domain dom l)
    in
    if y > !util then util := y
  done;
  !util

let prop_fluid_agrees_with_constraint2 =
  QCheck.Test.make ~count:150
    ~name:"fluid MAC delivers exactly the constraint-(2)-feasible rates"
    seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      let comb =
        Multipath.find c.Prop_gen.g c.Prop_gen.dom ~src:c.Prop_gen.src
          ~dst:c.Prop_gen.dst
      in
      match comb.Multipath.paths with
      | [] -> true
      | claimed ->
        (* The routing procedure's claimed rates are residual-capacity
           estimates; on dense random interference they overshoot the
           feasible region (the runtime controller is what enforces
           feasibility). Project them onto the constraint-(2) boundary
           and confront the independent fluid fixed point: feasible
           offers must come out whole, nothing may come out that was
           not put in. *)
        let util = max_domain_utilization c.Prop_gen.g c.Prop_gen.dom claimed in
        if util <= 1e-9 then true
        else begin
          let s = 0.999 /. util in
          let offered = List.map (fun (p, r) -> (p, r *. s)) claimed in
          let delivered =
            Fluid.goodput c.Prop_gen.g c.Prop_gen.dom ~offered
          in
          let off_tot = List.fold_left (fun a (_, r) -> a +. r) 0.0 offered in
          let del_tot = List.fold_left ( +. ) 0.0 delivered in
          List.iter2
            (fun (_, off) del ->
              if del > off +. 1e-6 then
                QCheck.Test.fail_reportf
                  "seed %d: fluid delivers %.4f on a route offered %.4f" seed
                  del off)
            offered delivered;
          if del_tot < (0.999 *. off_tot) -. 1e-6 then
            QCheck.Test.fail_reportf
              "seed %d: fluid delivers %.4f of %.4f offered at domain \
               utilization 0.999 — fluid and constraint (2) disagree"
              seed del_tot off_tot;
          true
        end)

(* ---------- oracle 4: Lemma 1 closed form ---------- *)

let prop_lemma1_closed_form =
  QCheck.Test.make ~count:100
    ~name:"saturated MAC sharing matches Lemma 1's (sum d_l)^-1" seed_gen
    (fun seed ->
      let c = Prop_gen.lemma1_case_of_seed seed in
      let rmax =
        1.0 /. Array.fold_left (fun a cap -> a +. (1.0 /. cap)) 0.0 c.Prop_gen.caps
      in
      let config =
        { Engine.default_config with enable_cc = false; collision_prob = 0.0 }
      in
      let duration = 20.0 in
      let res =
        Engine.run ~config
          (Rng.create (seed + 7))
          c.Prop_gen.l1_g c.Prop_gen.l1_dom
          ~flows:(Prop_gen.lemma1_flows c) ~duration
      in
      let tol = Float.max 0.3 (0.12 *. rmax) in
      Array.iteri
        (fun i _ ->
          let gp = Prop_gen.goodput res i duration in
          if Float.abs (gp -. rmax) > tol then
            QCheck.Test.fail_reportf
              "seed %d: link %d (capacity %.1f) delivered %.3f, Lemma 1 predicts \
               %.3f (+/- %.3f)"
              seed i c.Prop_gen.caps.(i) gp rmax tol)
        c.Prop_gen.caps;
      true)

(* ---------- oracle 5: determinism ---------- *)

let prop_engine_deterministic =
  QCheck.Test.make ~count:100
    ~name:"same seed => bit-identical engine results (checker on or off)"
    seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let run ?invariants () =
          (* perf carries wall-clock readings, excluded from the
             determinism contract (see Engine.strip_perf). *)
          Engine.strip_perf
            (Engine.run ?invariants
               (Rng.create (seed + 3))
               c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration:4.0)
        in
        let a = run () in
        let b = run () in
        let checked = run ~invariants:(Invariants.create ()) () in
        if a <> b then
          QCheck.Test.fail_reportf "seed %d: two identical runs diverged" seed;
        if a <> checked then
          QCheck.Test.fail_reportf
            "seed %d: attaching the invariant checker changed the result" seed;
        true)

let prop_allocation_deterministic =
  QCheck.Test.make ~count:100
    ~name:"same network => bit-identical controller allocation" seed_gen
    (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      let net = { Empower.g = c.Prop_gen.g; dom = c.Prop_gen.dom } in
      let alloc () =
        let a =
          Empower.allocate ~slots:400 net
            ~flows:[ (c.Prop_gen.src, c.Prop_gen.dst) ]
        in
        (a.Empower.flow_rates, a.Empower.route_rates, a.Empower.cc.Cc_result.rates)
      in
      if alloc () <> alloc () then
        QCheck.Test.fail_reportf "seed %d: cc_result not reproducible" seed;
      true)

(* ---------- oracle 6: fault injection (chaos) ---------- *)

let chaos_config = { Engine.default_config with Engine.route_reclaim = true }

let run_with_plan ?invariants ~config ~engine_seed c flow plan ~duration =
  let compiled = Fault.compile c.Prop_gen.g plan in
  Engine.run ?invariants ~config ~link_events:compiled.Fault.link_events
    ~loss_events:compiled.Fault.loss_events
    ~ctrl_events:compiled.Fault.ctrl_events
    (Rng.create engine_seed)
    c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration

let prop_invariants_hold_under_chaos =
  QCheck.Test.make ~count:100
    ~name:"engine invariants hold under any fault plan" seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let duration = 8.0 in
        let plan = Prop_gen.chaos_plan_of_case c ~duration in
        let inv = Invariants.create ~mode:`Collect () in
        ignore
          (run_with_plan ~invariants:inv ~config:chaos_config
             ~engine_seed:(seed + 5) c flow plan ~duration);
        if Invariants.events_checked inv = 0 then
          QCheck.Test.fail_reportf "seed %d: invariant checker never ran" seed;
        (match Invariants.violations inv with
        | [] -> ()
        | v :: _ as all ->
          QCheck.Test.fail_reportf "seed %d: %d violation(s), first: %s" seed
            (List.length all) (Invariants.describe v));
        true)

let prop_chaos_deterministic =
  QCheck.Test.make ~count:40
    ~name:"same seed => bit-identical chaos runs" seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let duration = 6.0 in
        let run () =
          let plan = Prop_gen.chaos_plan_of_case c ~duration in
          Engine.strip_perf
            (run_with_plan ~config:chaos_config ~engine_seed:(seed + 9) c flow
               plan ~duration)
        in
        if run () <> run () then
          QCheck.Test.fail_reportf "seed %d: two identical chaos runs diverged"
            seed;
        true)

let prop_goodput_recovers_after_faults =
  (* Quantified over non-severing plans (degradations, loss windows,
     control faults) with the plain controller: a severed route's
     stale congestion prices would drain over tens of seconds, a
     hysteresis the recovery subsystem exists to bound — the severing
     case is covered by [prop_severed_goodput_recovers] below with
     [Engine.config.recovery] set (see Prop_gen
     [degrading_plan_of_case]). *)
  QCheck.Test.make ~count:40
    ~name:"goodput recovers to ~baseline after a non-severing plan clears"
    seed_gen (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        (* Every generated fault starts and clears before clear_by;
           the tail window [8, 12] then starts 4 s after the last
           possible fault boundary. *)
        let duration = 12.0 and clear_by = 4.0 in
        let plan = Prop_gen.degrading_plan_of_case c ~clear_by in
        let baseline =
          let res =
            run_with_plan ~config:chaos_config ~engine_seed:(seed + 13) c flow
              [] ~duration
          in
          Prop_gen.mean_goodput_window res 0 8.0 duration
        in
        if baseline < 1.0 then true (* too little traffic to measure *)
        else begin
          let res =
            run_with_plan ~config:chaos_config ~engine_seed:(seed + 13) c flow
              plan ~duration
          in
          let tail = Prop_gen.mean_goodput_window res 0 8.0 duration in
          if tail < (0.9 *. baseline) -. 0.8 then
            QCheck.Test.fail_reportf
              "seed %d: tail goodput %.3f Mbit/s never recovered to the \
               fault-free %.3f"
              seed tail baseline;
          true
        end)

(* ---------- oracle 7: self-healing recovery (lib/recovery) ---------- *)

let recovery_config =
  { chaos_config with Engine.recovery = Some Recovery.default }

let prop_severed_goodput_recovers =
  (* The tentpole acceptance bar: a severing plan takes down every
     route of the flow at once (the crash victim is pinned to the
     flow's destination), yet with the recovery subsystem on the tail
     goodput is back within ~10% of the fault-free baseline. Timing
     margin: the plan clears by 4 s, detection takes at most ~1.1 s
     of the outage, the capped backoff leaves at most ~2.2 s between
     reclaim probes after the restart, and the domain-wide stale-price
     reset makes post-restore convergence ~1 s — all well before the
     [8, 12] tail window opens. *)
  QCheck.Test.make ~count:30
    ~name:"severing plan + recovery => goodput back near baseline" seed_gen
    (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let duration = 12.0 and clear_by = 4.0 in
        let plan = Prop_gen.severing_plan_of_case c ~clear_by ~duration in
        let baseline =
          let res =
            run_with_plan ~config:recovery_config ~engine_seed:(seed + 21) c
              flow [] ~duration
          in
          Prop_gen.mean_goodput_window res 0 8.0 duration
        in
        if baseline < 1.0 then true (* too little traffic to measure *)
        else begin
          let inv = Invariants.create ~mode:`Collect () in
          let res =
            run_with_plan ~invariants:inv ~config:recovery_config
              ~engine_seed:(seed + 21) c flow plan ~duration
          in
          (match Invariants.violations inv with
          | [] -> ()
          | v :: _ as all ->
            QCheck.Test.fail_reportf
              "seed %d: %d invariant violation(s) under severance, first: %s"
              seed (List.length all) (Invariants.describe v));
          let tail = Prop_gen.mean_goodput_window res 0 8.0 duration in
          if tail < (0.9 *. baseline) -. 0.8 then
            QCheck.Test.fail_reportf
              "seed %d: tail goodput %.3f Mbit/s never recovered to the \
               fault-free %.3f after full severance"
              seed tail baseline;
          true
        end)

let prop_sever_recovery_deterministic =
  (* Recovery adds its own rng split (detector jitter, backoff
     jitter); equal seeds must still be bit-identical. *)
  QCheck.Test.make ~count:25
    ~name:"same seed => bit-identical severing runs with recovery on" seed_gen
    (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let duration = 6.0 in
        let run () =
          let plan = Prop_gen.severing_plan_of_case c ~duration in
          Engine.strip_perf
            (run_with_plan ~config:recovery_config ~engine_seed:(seed + 23) c
               flow plan ~duration)
        in
        if run () <> run () then
          QCheck.Test.fail_reportf
            "seed %d: two identical severing+recovery runs diverged" seed;
        true)

let prop_empty_plan_is_identity =
  QCheck.Test.make ~count:40
    ~name:"zero-action plan reproduces the unfaulted run exactly" seed_gen
    (fun seed ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let duration = 5.0 in
        let compiled = Fault.compile c.Prop_gen.g [] in
        if
          compiled.Fault.link_events <> []
          || compiled.Fault.loss_events <> []
          || compiled.Fault.ctrl_events <> []
        then QCheck.Test.fail_reportf "empty plan compiled non-empty";
        let faulted =
          Engine.strip_perf
            (Engine.run ~link_events:compiled.Fault.link_events
               ~loss_events:compiled.Fault.loss_events
               ~ctrl_events:compiled.Fault.ctrl_events
               (Rng.create (seed + 17))
               c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration)
        in
        let clean =
          Engine.strip_perf
            (Engine.run
               (Rng.create (seed + 17))
               c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration)
        in
        if faulted <> clean then
          QCheck.Test.fail_reportf
            "seed %d: empty fault schedules changed the run" seed;
        true)

(* ---------- oracle: the empirical load generator ---------- *)

let prop_offered_load_tracks_target =
  (* The open-loop generator's achieved offer must sit within +-10% of
     the target load factor whenever the window holds enough arrivals
     for the heavy-tailed size distribution to average out (websearch
     CDF: E[S^2]/E[S]^2 ~ 6.4, so ~10^4 arrivals put 3 sigma of the
     offered-bytes sum well under 10%). *)
  QCheck.Test.make ~count:30
    ~name:"offered load within 10% of the target factor (loads <= 0.7)"
    seed_gen (fun seed ->
      let rng = Rng.create (seed + 71) in
      let load = 0.1 +. (0.6 *. Rng.float rng) in
      let conns = 1 + Rng.int rng 4 in
      let gen =
        Loadgen.generate (Rng.split rng) ~cdf:Cdf.websearch ~load
          ~capacity_mbps:100.0 ~conns ~duration:20_000.0
      in
      let err = Float.abs (gen.Loadgen.offered_load -. load) /. load in
      if err > 0.10 then
        QCheck.Test.fail_reportf
          "seed %d: load %.3f offered %.3f (%.1f%% off, %d arrivals)" seed load
          gen.Loadgen.offered_load (100.0 *. err) gen.Loadgen.arrivals;
      true)

let prop_p99_fct_monotone_in_load =
  (* Heavier offered load never makes tail FCT better. At a fixed
     seed every sweep point offers the same transfer sequence with
     arrival times scaled by the load (common random numbers), so the
     Lindley recursion makes each transfer's wait pointwise
     nondecreasing in load; comparing the p99 over transfers completed
     at both of two consecutive loads removes the censoring of
     unfinished tails. The 5% slack absorbs MAC service-time jitter
     (per-frame collision draws differ between the two runs). *)
  QCheck.Test.make ~count:3
    ~name:"p99 FCT monotone nondecreasing in load (fixed-seed sweep)"
    seed_gen (fun seed ->
      let data =
        Loadsweep.sweep ~pairs:3 ~conns:2 ~duration:30.0 ~drain:30.0
          ~seed:(seed mod 1000)
          [ 0.2; 0.45; 0.7 ]
      in
      let p99 fcts =
        let xs = List.filter_map snd fcts |> List.sort Float.compare in
        let n = List.length xs in
        if n = 0 then None
        else Some (List.nth xs (max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1)))
      in
      let rec pairs = function
        | (a : Loadsweep.point) :: (b :: _ as rest) ->
          (* Align transfer-by-transfer, keep those completed at both
             loads. *)
          let rec common xs ys acc =
            match (xs, ys) with
            | (_, Some fa) :: xs, (_, Some fb) :: ys ->
              common xs ys ((fa, fb) :: acc)
            | _ :: xs, _ :: ys -> common xs ys acc
            | _, [] | [], _ -> List.rev acc
          in
          let c = common a.Loadsweep.fcts b.Loadsweep.fcts [] in
          if List.length c >= 20 then begin
            match
              ( p99 (List.map (fun (fa, _) -> (0, Some fa)) c),
                p99 (List.map (fun (_, fb) -> (0, Some fb)) c) )
            with
            | Some lo, Some hi ->
              if hi < lo *. 0.95 then
                QCheck.Test.fail_reportf
                  "seed %d: p99 FCT fell from %.3f s (load %.2f) to %.3f s \
                   (load %.2f) over %d common transfers"
                  seed lo a.Loadsweep.load hi b.Loadsweep.load (List.length c)
            | _ -> ()
          end;
          pairs rest
        | _ -> ()
      in
      pairs data.Loadsweep.points;
      true)

(* ---------- oracle 9: finite shared buffers ---------- *)

(* The buffer sweep of the properties below: index 4 is the static
   per-port partition, the rest Dynamic-Threshold alphas. *)
let policy_of_index i =
  if i >= 4 then Engine.Static
  else Engine.Dynamic_threshold [| 0.25; 0.5; 1.0; 4.0 |].(i)

let buffered_config ?ecn ~policy ~pool_bytes () =
  {
    Engine.default_config with
    buffers = Some { Engine.policy; pool_bytes; ecn_threshold_bytes = ecn };
  }

let prop_buffer_pool_bounded =
  QCheck.Test.make ~count:60
    ~name:"shared pool: trace-reconstructed occupancy never exceeds the pool"
    QCheck.(pair seed_gen (pair (int_bound 4) (int_bound 8)))
    (fun (seed, (pi, pf)) ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let fb = Engine.default_config.Engine.frame_bytes in
        let pool_bytes = (2 + pf) * fb in
        let config =
          buffered_config ~ecn:(pool_bytes / 2) ~policy:(policy_of_index pi)
            ~pool_bytes ()
        in
        let sink, got = Obs.Trace.collector () in
        let res =
          Engine.run ~config ~trace:sink
            (Rng.create (seed + 9))
            c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration:4.0
        in
        (* Replay the trace into per-port occupancies. This run is
           fault-free, so a frame leaves its buffer exactly at its MAC
           grant; admission is the matching [Enqueue]. *)
        let links = Multigraph.links c.Prop_gen.g in
        let src = Array.make (Array.length links) 0 in
        Array.iter
          (fun (lk : Multigraph.link) -> src.(lk.Multigraph.id) <- lk.Multigraph.src)
          links;
        let port = Array.init (Array.length links) (fun _ -> Queue.create ()) in
        let node_occ = Array.make (Multigraph.n_nodes c.Prop_gen.g) 0 in
        let peak = ref 0 in
        List.iter
          (function
            | Obs.Trace.Enqueue { link; bytes; _ } ->
              Queue.push bytes port.(link);
              let n = src.(link) in
              node_occ.(n) <- node_occ.(n) + bytes;
              if node_occ.(n) > pool_bytes then
                QCheck.Test.fail_reportf
                  "seed %d: node %d holds %d bytes of a %d-byte pool" seed n
                  node_occ.(n) pool_bytes;
              if node_occ.(n) > !peak then peak := node_occ.(n)
            | Obs.Trace.Mac_grant { link; _ } -> (
              match Queue.take_opt port.(link) with
              | Some bytes -> node_occ.(src.(link)) <- node_occ.(src.(link)) - bytes
              | None ->
                QCheck.Test.fail_reportf
                  "seed %d: grant on link %d with an empty port buffer" seed
                  link)
            | Obs.Trace.Drop { reason = Obs.Trace.Link_down | Obs.Trace.Backlog_cleared; _ }
              ->
              QCheck.Test.fail_reportf
                "seed %d: fault-free run emitted a link-death drop" seed
            | _ -> ())
          (got ());
        if !peak <> res.Engine.buffer_peak_bytes then
          QCheck.Test.fail_reportf
            "seed %d: engine peak %d B disagrees with trace replay %d B" seed
            res.Engine.buffer_peak_bytes !peak;
        true)

let prop_no_marks_below_threshold =
  QCheck.Test.make ~count:60
    ~name:"ECN threshold above the pool is never reached: zero marks"
    QCheck.(pair seed_gen (int_bound 4))
    (fun (seed, pi) ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let fb = Engine.default_config.Engine.frame_bytes in
        let pool_bytes = 6 * fb in
        let config =
          buffered_config ~ecn:(pool_bytes + fb) ~policy:(policy_of_index pi)
            ~pool_bytes ()
        in
        let sink, got = Obs.Trace.collector () in
        let res =
          Engine.run ~config ~trace:sink
            (Rng.create (seed + 10))
            c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration:4.0
        in
        let traced =
          List.exists
            (function Obs.Trace.Ecn_mark _ -> true | _ -> false)
            (got ())
        in
        if res.Engine.ecn_marks <> 0 || traced then
          QCheck.Test.fail_reportf
            "seed %d: %d marks below an unreachable threshold" seed
            res.Engine.ecn_marks;
        true)

let prop_buffered_deterministic =
  QCheck.Test.make ~count:40
    ~name:"buffered runs: same seed => bit-identical (checker on or off)"
    QCheck.(pair seed_gen (int_bound 4))
    (fun (seed, pi) ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let fb = Engine.default_config.Engine.frame_bytes in
        let config =
          buffered_config ~ecn:(2 * fb) ~policy:(policy_of_index pi)
            ~pool_bytes:(4 * fb) ()
        in
        let run ?invariants () =
          Engine.strip_perf
            (Engine.run ?invariants ~config
               (Rng.create (seed + 11))
               c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration:4.0)
        in
        if run () <> run () then
          QCheck.Test.fail_reportf "seed %d: buffered runs diverged" seed;
        if run () <> run ~invariants:(Invariants.create ()) () then
          QCheck.Test.fail_reportf
            "seed %d: invariant checker changed a buffered run" seed;
        true)

let prop_huge_pool_matches_legacy =
  QCheck.Test.make ~count:40
    ~name:"never-rejecting pool reproduces the legacy run bit-exactly"
    QCheck.(pair seed_gen (int_bound 4))
    (fun (seed, pi) ->
      let c = Prop_gen.case_of_seed seed in
      match Prop_gen.saturated_flow_of_case c with
      | None -> true
      | Some (_, flow) ->
        let fb = Engine.default_config.Engine.frame_bytes in
        (* A pool big enough that admission never rejects (every link
           would have to hold a full legacy FIFO to fill it), no ECN.
           Buffer accounting consumes no randomness, so whenever the
           legacy run also never drops, the two runs must agree on
           every field the new counters excepted. *)
        let n_links = Array.length (Multigraph.links c.Prop_gen.g) in
        let pool_bytes =
          (n_links + 1) * Engine.default_config.Engine.queue_limit * fb * 8
        in
        let run config =
          Engine.strip_perf
            (Engine.run ~config
               (Rng.create (seed + 12))
               c.Prop_gen.g c.Prop_gen.dom ~flows:[ flow ] ~duration:4.0)
        in
        let legacy = run Engine.default_config in
        let buffered =
          run (buffered_config ~policy:(policy_of_index pi) ~pool_bytes ())
        in
        if legacy.Engine.queue_drops <> 0 || buffered.Engine.queue_drops <> 0
        then true (* congested case: drop patterns may legitimately differ *)
        else begin
          if { buffered with Engine.buffer_peak_bytes = 0 } <> legacy then
            QCheck.Test.fail_reportf
              "seed %d: huge pool diverged from the legacy datapath" seed;
          true
        end)

let () =
  let tests =
    [
      prop_engine_le_optimal;
      prop_multipath_ge_single;
      prop_fluid_agrees_with_constraint2;
      prop_lemma1_closed_form;
      prop_engine_deterministic;
      prop_allocation_deterministic;
      prop_invariants_hold_under_chaos;
      prop_chaos_deterministic;
      prop_goodput_recovers_after_faults;
      prop_severed_goodput_recovers;
      prop_sever_recovery_deterministic;
      prop_empty_plan_is_identity;
      prop_offered_load_tracks_target;
      prop_p99_fct_monotone_in_load;
      prop_buffer_pool_bounded;
      prop_no_marks_below_threshold;
      prop_buffered_deterministic;
      prop_huge_pool_matches_legacy;
    ]
  in
  (* Fixed generation seed: CI failures reproduce exactly; individual
     cases are replayed from the integer each failure report prints. *)
  let rand = Random.State.make [| 20260805 |] in
  exit (QCheck_runner.run_tests ~verbose:true ~rand tests)
