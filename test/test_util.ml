(* Tests for the utility layer: RNG determinism, statistics, the
   priority queue, units, and table formatting helpers. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.float a = Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %f" x
  done

let test_rng_int_range () =
  let rng = Rng.create 9 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 then Alcotest.failf "bucket %d starved: %d" i c)
    counts

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.float a) in
  let ys = List.init 20 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 11 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  Alcotest.(check bool) "copy replays" true (Rng.float a = Rng.float b)

let test_rng_gaussian_moments () =
  let rng = Rng.create 3 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mean:5.0 ~std:2.0) in
  check_float ~eps:0.1 "mean" 5.0 (Stats.mean xs);
  check_float ~eps:0.1 "std" 2.0 (Stats.stddev xs)

let test_rng_exponential_mean () =
  let rng = Rng.create 4 in
  let xs = List.init 20000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  check_float ~eps:0.02 "mean 1/rate" 0.5 (Stats.mean xs)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 8 in
  let s = Rng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "five values" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) s

let test_rng_shuffle_permutation () =
  let rng = Rng.create 12 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = Array.init 20 Fun.id)

let test_rng_split_uncorrelated () =
  (* The summary-level independence check: the parent stream and the
     split-off child must be (empirically) uncorrelated, and splitting
     twice must give two distinct children. *)
  let a = Rng.create 99 in
  let b = Rng.split a in
  let c = Rng.split a in
  let n = 5000 in
  let xs = Array.init n (fun _ -> Rng.float a) in
  let ys = Array.init n (fun _ -> Rng.float b) in
  let zs = Array.init n (fun _ -> Rng.float c) in
  let corr xs ys =
    let mx = Stats.mean_arr xs and my = Stats.mean_arr ys in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let a = x -. mx and b = ys.(i) -. my in
        num := !num +. (a *. b);
        dx := !dx +. (a *. a);
        dy := !dy +. (b *. b))
      xs;
    !num /. sqrt (!dx *. !dy)
  in
  Alcotest.(check bool) "parent/child uncorrelated" true
    (Float.abs (corr xs ys) < 0.05);
  Alcotest.(check bool) "siblings uncorrelated" true
    (Float.abs (corr ys zs) < 0.05);
  Alcotest.(check bool) "siblings distinct" true (ys <> zs)

(* Reference SplitMix64 on boxed Int64, the semantics the native-int
   Rng must reproduce bit-for-bit. *)
module Rng_ref = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state golden_gamma;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    *. (1.0 /. 9007199254740992.0)

  let int t n = Int64.to_int (Int64.shift_right_logical (next t) 2) mod n

  let bool t = Int64.logand (next t) 1L = 1L

  let split t = { state = next t }
end

let prop_rng_matches_int64_reference =
  (* Arbitrary op interleavings, including splits (both streams keep
     being compared), must match the Int64 reference draw-for-draw. *)
  QCheck.Test.make ~count:200 ~name:"rng bit-identical to Int64 SplitMix64"
    QCheck.(pair int (list (int_bound 4)))
    (fun (seed, ops) ->
      let a = ref (Rng.create seed) and b = ref (Rng_ref.create seed) in
      List.for_all
        (fun op ->
          match op with
          | 0 -> Rng.float !a = Rng_ref.float !b
          | 1 -> Rng.int !a 97 = Rng_ref.int !b 97
          | 2 -> Rng.bool !a = Rng_ref.bool !b
          | 3 ->
              a := Rng.split !a;
              b := Rng_ref.split !b;
              true
          | _ -> Rng.int64 !a = Rng_ref.next !b)
        ops
      && Rng.int64 !a = Rng_ref.next !b)

(* --- Stats --- *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check_float "stddev short" 0.0 (Stats.stddev [ 1.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 1.5 (Stats.median [ 1.0; 2.0; 0.0; 3.0 ])

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p25" 25.0 (Stats.percentile xs 25.0)

let test_stats_degenerate () =
  (* Empty and singleton samples: totals the experiments rely on when
     a run produces no (or one) data point. *)
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_float "singleton stddev" 0.0 (Stats.stddev [ 4.2 ]);
  check_float "singleton variance" 0.0 (Stats.variance [ 4.2 ]);
  check_float "singleton median" 4.2 (Stats.median [ 4.2 ]);
  check_float "singleton p0" 4.2 (Stats.percentile [ 4.2 ] 0.0);
  check_float "singleton p100" 4.2 (Stats.percentile [ 4.2 ] 100.0);
  check_float "empty fraction_below" 0.0 (Stats.fraction_below [] 1.0);
  check_float "empty fraction_at_least" 0.0 (Stats.fraction_at_least [] 1.0);
  check_float "fraction strictly below" 0.5
    (Stats.fraction_below [ 1.0; 2.0 ] 2.0);
  check_float "fraction at least incl" 0.5
    (Stats.fraction_at_least [ 1.0; 2.0 ] 2.0);
  Alcotest.(check bool) "min raises on empty" true (raises (fun () -> Stats.minimum []));
  Alcotest.(check bool) "max raises on empty" true (raises (fun () -> Stats.maximum []));
  Alcotest.(check bool) "percentile raises on empty" true
    (raises (fun () -> Stats.percentile [] 50.0));
  Alcotest.(check bool) "ecdf raises on empty" true
    (raises (fun () -> Stats.Ecdf.of_list []))

let test_ecdf_singleton () =
  let e = Stats.Ecdf.of_list [ 2.5 ] in
  check_float "below" 0.0 (Stats.Ecdf.eval e 2.0);
  check_float "at" 1.0 (Stats.Ecdf.eval e 2.5);
  check_float "above" 1.0 (Stats.Ecdf.eval e 3.0);
  check_float "inverse" 2.5 (Stats.Ecdf.inverse e 0.5);
  let lo, hi = Stats.Ecdf.support e in
  check_float "support lo" 2.5 lo;
  check_float "support hi" 2.5 hi;
  Alcotest.(check int) "size" 1 (Stats.Ecdf.size e)

let test_ecdf () =
  let e = Stats.Ecdf.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  check_float "below support" 0.0 (Stats.Ecdf.eval e 0.5);
  check_float "at 2" 0.5 (Stats.Ecdf.eval e 2.0);
  check_float "mid" 0.5 (Stats.Ecdf.eval e 2.5);
  check_float "above" 1.0 (Stats.Ecdf.eval e 10.0);
  check_float "inverse 0.5" 2.0 (Stats.Ecdf.inverse e 0.5);
  check_float "inverse 1.0" 4.0 (Stats.Ecdf.inverse e 1.0);
  Alcotest.(check int) "size" 4 (Stats.Ecdf.size e);
  let lo, hi = Stats.Ecdf.support e in
  check_float "lo" 1.0 lo;
  check_float "hi" 4.0 hi;
  Alcotest.(check int) "points" 4 (List.length (Stats.Ecdf.points e))

let prop_ecdf_monotone =
  QCheck.Test.make ~name:"ecdf is monotone and ends at 1" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun xs ->
      let e = Stats.Ecdf.of_list xs in
      let grid = List.init 21 (fun i -> -110.0 +. (11.0 *. float_of_int i)) in
      let vals = List.map (Stats.Ecdf.eval e) grid in
      let rec mono = function
        | a :: (b :: _ as tl) -> a <= b && mono tl
        | _ -> true
      in
      mono vals && Stats.Ecdf.eval e 200.0 = 1.0)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within sample range" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_range (-50.) 50.))
        (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

(* --- Pqueue --- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Pqueue.pop q);
  Alcotest.(check bool) "empty" true (Pqueue.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "first";
  Pqueue.push q 1.0 "second";
  Pqueue.push q 1.0 "third";
  let order = List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "FIFO among ties" [ "first"; "second"; "third" ] order

let test_pqueue_size_clear () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "fresh empty" true (Pqueue.is_empty q);
  for i = 1 to 100 do
    Pqueue.push q (float_of_int (100 - i)) i
  done;
  Alcotest.(check int) "size" 100 (Pqueue.size q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list (float_range (-1000.) 1000.))
    (fun xs ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.push q x ()) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, ()) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare xs)

let test_pqueue_empty_ops () =
  let q : unit Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "pop on empty" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek on empty" true (Pqueue.peek q = None);
  Alcotest.(check int) "size zero" 0 (Pqueue.size q);
  Pqueue.clear q;
  Alcotest.(check bool) "clear on empty is fine" true (Pqueue.is_empty q);
  Pqueue.push q 1.0 ();
  ignore (Pqueue.pop q);
  Alcotest.(check bool) "pop after drain" true (Pqueue.pop q = None)

let test_pqueue_interleaved_ties () =
  (* FIFO among equal priorities must survive interleaved pushes and
     pops at mixed priorities (the event queue does exactly this). *)
  let q = Pqueue.create () in
  Pqueue.push q 2.0 "t1";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "t2";
  Alcotest.(check (option (pair (float 0.0) string))) "min first" (Some (1.0, "a"))
    (Pqueue.pop q);
  Pqueue.push q 2.0 "t3";
  Pqueue.push q 0.5 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "new min" (Some (0.5, "b"))
    (Pqueue.pop q);
  let order =
    List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "ties stay FIFO across pops"
    [ "t1"; "t2"; "t3" ] order;
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_pqueue_capacity () =
  let q : int Pqueue.t = Pqueue.create ~capacity:4 () in
  Alcotest.(check int) "requested capacity" 4 (Pqueue.capacity q);
  for i = 1 to 10 do
    Pqueue.push q (float_of_int i) i
  done;
  Alcotest.(check bool) "grows past capacity" true (Pqueue.capacity q >= 10);
  let cap = Pqueue.capacity q in
  Pqueue.clear q;
  Alcotest.(check bool) "clear empties" true (Pqueue.is_empty q);
  Alcotest.(check int) "clear keeps the backing arrays" cap (Pqueue.capacity q);
  Pqueue.push q 1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "usable after clear"
    (Some (1.0, 1)) (Pqueue.pop q)

let test_pqueue_pop_push () =
  (* pop_push must behave exactly like pop-then-push, including FIFO
     tie-breaking: the pushed entry gets a fresh (larger) sequence
     number, so it drains after existing entries of equal priority. *)
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b1";
  Pqueue.push q 2.0 "b2";
  Alcotest.(check (option (pair (float 0.0) string))) "returns the root"
    (Some (1.0, "a"))
    (Pqueue.pop_push q 2.0 "b3");
  let order =
    List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "replacement ties FIFO after existing"
    [ "b1"; "b2"; "b3" ] order;
  (* Empty queue: nothing to pop, the push still lands. *)
  Alcotest.(check (option (pair (float 0.0) string))) "empty returns None" None
    (Pqueue.pop_push q 5.0 "x");
  Alcotest.(check (option (pair (float 0.0) string))) "push landed"
    (Some (5.0, "x")) (Pqueue.pop q)

let prop_pqueue_pop_push_equiv =
  (* Against the model: pop_push == (pop; push) over arbitrary
     interleavings of plain pushes and fused pop-pushes. *)
  QCheck.Test.make ~name:"pop_push equals pop-then-push" ~count:300
    QCheck.(
      list (pair bool (float_range 0. 100.)))
    (fun ops ->
      let a = Pqueue.create () and b = Pqueue.create () in
      let same = ref true in
      List.iteri
        (fun i (fused, prio) ->
          if fused then begin
            let ra = Pqueue.pop_push a prio i in
            let rb = Pqueue.pop b in
            Pqueue.push b prio i;
            if ra <> rb then same := false
          end
          else begin
            Pqueue.push a prio i;
            Pqueue.push b prio i
          end)
        ops;
      let rec drain q acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some pv -> drain q (pv :: acc)
      in
      !same && drain a [] = drain b [])

(* --- Units --- *)

let test_units () =
  check_float "mbps->Bps" 1.25e6 (Units.mbps_to_bytes_per_s 10.0);
  check_float "roundtrip" 10.0 (Units.bytes_per_s_to_mbps (Units.mbps_to_bytes_per_s 10.0));
  check_float "bytes->mbit" 8.0 (Units.bytes_to_mbit 1e6);
  check_float "mbit->bytes" 1e6 (Units.mbit_to_bytes 8.0);
  check_float "tx time" 0.001 (Units.tx_time ~capacity_mbps:8.0 ~bytes:1000);
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check int) "mib" 1048576 (Units.mib 1)

(* --- Table --- *)

let test_grids () =
  let lin = Table.linear_grid ~lo:0.0 ~hi:10.0 ~n:11 in
  Alcotest.(check int) "n points" 11 (List.length lin);
  check_float "first" 0.0 (List.hd lin);
  check_float "last" 10.0 (List.nth lin 10);
  let lg = Table.log_grid ~lo:0.1 ~hi:10.0 ~n:3 in
  check_float "log mid" 1.0 (List.nth lg 1);
  check_float ~eps:1e-9 "log last" 10.0 (List.nth lg 2)

let test_fmt_float () =
  Alcotest.(check string) "integer" "12" (Table.fmt_float 12.0);
  Alcotest.(check string) "small" "0.070" (Table.fmt_float 0.07);
  Alcotest.(check string) "mid" "3.14" (Table.fmt_float 3.142)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range + spread" `Quick test_rng_int_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split uncorrelated" `Quick test_rng_split_uncorrelated;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_matches_int64_reference;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "degenerate samples" `Quick test_stats_degenerate;
          Alcotest.test_case "ecdf" `Quick test_ecdf;
          Alcotest.test_case "ecdf singleton" `Quick test_ecdf_singleton;
          QCheck_alcotest.to_alcotest prop_ecdf_monotone;
          QCheck_alcotest.to_alcotest prop_percentile_within_range;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty ops" `Quick test_pqueue_empty_ops;
          Alcotest.test_case "interleaved ties" `Quick test_pqueue_interleaved_ties;
          Alcotest.test_case "size/clear" `Quick test_pqueue_size_clear;
          Alcotest.test_case "capacity" `Quick test_pqueue_capacity;
          Alcotest.test_case "pop_push" `Quick test_pqueue_pop_push;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts;
          QCheck_alcotest.to_alcotest prop_pqueue_pop_push_equiv;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
      ( "table",
        [
          Alcotest.test_case "grids" `Quick test_grids;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
    ]
