(* Golden-seed regression and reproducibility tests for the chaos
   scenario (lib/experiments/chaos.ml). Each file in test/golden/ is
   the `empower_eval chaos --json` report of a fixed seed; replaying
   the seed must reproduce it — byte counts and event totals exactly,
   recovery metrics to 1e-9. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let jget name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "golden report: missing field %S" name

let jint name j =
  match Obs.Json.to_int_opt (jget name j) with
  | Some i -> i
  | None -> Alcotest.failf "golden field %S: expected integer" name

let jfloat name j =
  match Obs.Json.to_float_opt (jget name j) with
  | Some f -> f
  | None -> Alcotest.failf "golden field %S: expected number" name

let jstring name j =
  match jget name j with
  | Obs.Json.String s -> s
  | _ -> Alcotest.failf "golden field %S: expected string" name

(* ---------- golden replay ---------- *)

let golden_dir = "golden"

let golden_files =
  (* The dune rule declares golden/*.json as test deps, so the files
     sit next to the executable in the build sandbox. Only the chaos
     goldens belong to this suite (the loadsweep golden is replayed by
     test_loadsweep). *)
  if Sys.file_exists golden_dir && Sys.is_directory golden_dir then
    Sys.readdir golden_dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".json"
           && String.length f >= 5
           && String.sub f 0 5 = "chaos")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat golden_dir f)
  else []

let test_goldens_present () =
  Alcotest.(check int) "four golden chaos scenarios checked in" 4
    (List.length golden_files)

let replay_golden path () =
  let j =
    match Obs.Json.parse (read_file path) with
    | Ok j -> j
    | Error m -> Alcotest.failf "%s: %s" path m
  in
  let seed = jint "seed" j in
  let duration = jfloat "duration" j in
  let intensity =
    let name = jstring "intensity" j in
    match Fault.Gen.intensity_of_name name with
    | Some i -> i
    | None -> Alcotest.failf "%s: unknown intensity %S" path name
  in
  Alcotest.(check string) "scenario tag" "chaos" (jstring "scenario" j);
  (* Goldens recorded before the recovery subsystem carry no
     "recovery" field; they replay with it off. *)
  let recovery =
    match Obs.Json.member "recovery" j with
    | Some (Obs.Json.Bool b) -> b
    | Some _ -> Alcotest.failf "%s: field \"recovery\": expected bool" path
    | None -> false
  in
  let r = Chaos.run ~intensity ~recovery ~duration ~seed () in
  (* The plan itself must replay byte-for-byte... *)
  (match Fault.of_json (jget "plan" j) with
  | Ok p ->
    if p <> r.Chaos.plan then
      Alcotest.failf "%s: replayed plan differs from the golden plan" path
  | Error m -> Alcotest.failf "%s: golden plan does not decode: %s" path m);
  (* ...and so must the run it drives. *)
  Alcotest.(check int) "fault_events" (jint "fault_events" j) r.Chaos.fault_events;
  Alcotest.(check int) "queue_drops" (jint "queue_drops" j)
    r.Chaos.result.Engine.queue_drops;
  Alcotest.(check int) "events_processed" (jint "events_processed" j)
    r.Chaos.result.Engine.events_processed;
  let flows =
    match jget "flows" j with
    | Obs.Json.List l -> l
    | _ -> Alcotest.failf "%s: field \"flows\": expected list" path
  in
  Alcotest.(check int) "flow count" (List.length flows)
    (List.length r.Chaos.flows);
  List.iter2
    (fun fj (f : Chaos.flow_report) ->
      let m name = Printf.sprintf "flow %d %s" f.Chaos.flow name in
      Alcotest.(check int) (m "id") (jint "flow" fj) f.Chaos.flow;
      Alcotest.(check int)
        (m "received_bytes")
        (jint "received_bytes" fj) f.Chaos.received_bytes;
      check_float (m "goodput_mbps") (jfloat "goodput_mbps" fj) f.Chaos.goodput_mbps;
      check_float (m "recovery_s") (jfloat "recovery_s" fj) f.Chaos.recovery_s;
      check_float (m "dip_depth") (jfloat "dip_depth" fj) f.Chaos.dip_depth;
      check_float (m "dip_area") (jfloat "dip_area" fj) f.Chaos.dip_area;
      Alcotest.(check int) (m "reroutes") (jint "reroutes" fj) f.Chaos.reroutes;
      (* detect_s is absent from pre-recovery goldens. *)
      match Obs.Json.member "detect_s" fj with
      | Some v -> (
        match Obs.Json.to_float_opt v with
        | Some d -> check_float (m "detect_s") d f.Chaos.detect_s
        | None -> Alcotest.failf "%s: field \"detect_s\": expected number" path)
      | None -> ())
    flows r.Chaos.flows

(* ---------- reproducibility ---------- *)

let test_bit_reproducible () =
  let a = Chaos.run ~seed:5 ~duration:6.0 () in
  let b = Chaos.run ~seed:5 ~duration:6.0 () in
  Alcotest.(check bool) "plans identical" true (a.Chaos.plan = b.Chaos.plan);
  Alcotest.(check bool) "engine results bit-identical (modulo perf)" true
    (Engine.strip_perf a.Chaos.result = Engine.strip_perf b.Chaos.result);
  Alcotest.(check bool) "recovery metrics identical" true
    (a.Chaos.flows = b.Chaos.flows);
  Alcotest.(check int) "fault boundary count identical" a.Chaos.fault_events
    b.Chaos.fault_events

let test_plan_helper_matches_run () =
  (* Chaos.plan exposes the exact plan a seed yields for the
     scenario: it must agree with what Chaos.run draws. *)
  let net = Chaos.network () in
  let r = Chaos.run ~seed:9 ~duration:6.0 () in
  let p =
    Chaos.plan ~intensity:Fault.Gen.Moderate net ~seed:9 ~duration:6.0
  in
  Alcotest.(check bool) "plan helper agrees with run" true (p = r.Chaos.plan)

let test_sever_recovery_reproducible () =
  (* The acceptance bar for the recovery subsystem's determinism:
     equal seeds are bit-identical with recovery on, severing plan
     included (backoff jitter comes from the engine's dedicated
     split). *)
  let go () =
    Chaos.run ~intensity:Fault.Gen.Severing ~recovery:true ~seed:13
      ~duration:8.0 ()
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "severing plans identical" true
    (a.Chaos.plan = b.Chaos.plan);
  Alcotest.(check bool) "results bit-identical (modulo perf)" true
    (Engine.strip_perf a.Chaos.result = Engine.strip_perf b.Chaos.result);
  Alcotest.(check bool) "recovery metrics identical" true
    (a.Chaos.flows = b.Chaos.flows)

let test_recovery_off_is_legacy () =
  (* ~recovery:false must be the exact historical run: same result as
     not mentioning recovery at all. *)
  let a = Chaos.run ~seed:5 ~duration:6.0 () in
  let b = Chaos.run ~recovery:false ~seed:5 ~duration:6.0 () in
  Alcotest.(check bool) "recovery:false = legacy" true
    (Engine.strip_perf a.Chaos.result = Engine.strip_perf b.Chaos.result
    && a.Chaos.flows = b.Chaos.flows)

let test_report_json_parses () =
  let r = Chaos.run ~seed:5 ~duration:6.0 () in
  match Obs.Json.parse (Obs.Json.to_string (Chaos.to_json r)) with
  | Ok j ->
    Alcotest.(check int) "seed survives" 5 (jint "seed" j);
    (match Fault.of_json (jget "plan" j) with
    | Ok p ->
      Alcotest.(check bool) "embedded plan round-trips" true (p = r.Chaos.plan)
    | Error m -> Alcotest.failf "embedded plan: %s" m)
  | Error m -> Alcotest.failf "report JSON does not parse: %s" m

let () =
  Alcotest.run "chaos"
    [
      ( "golden",
        Alcotest.test_case "goldens present" `Quick test_goldens_present
        :: List.map
             (fun path ->
               Alcotest.test_case (Filename.basename path) `Slow
                 (replay_golden path))
             golden_files );
      ( "reproducibility",
        [
          Alcotest.test_case "bit-identical runs" `Slow test_bit_reproducible;
          Alcotest.test_case "plan helper matches run" `Slow
            test_plan_helper_matches_run;
          Alcotest.test_case "sever + recovery bit-identical" `Slow
            test_sever_recovery_reproducible;
          Alcotest.test_case "recovery off is the legacy run" `Slow
            test_recovery_off_is_legacy;
          Alcotest.test_case "report JSON parses" `Slow test_report_json_parses;
        ] );
    ]
