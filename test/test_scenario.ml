(* Scenario catalog tests: every shipped scenario under scenarios/
   must decode, run, meet its own SLO and replay its golden scorecard
   byte-for-byte; the spec decoder must reject malformed documents;
   run_all must be bit-identical for any job count. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The dune rule depends on ../scenarios/*.json, so the catalog sits
   one level above the test executable in the build sandbox. *)
let scenarios_dir = "../scenarios"
let golden_dir = "golden"

let catalog () =
  match Scenario.catalog scenarios_dir with
  | Ok entries -> entries
  | Error e -> Alcotest.failf "catalog: %s" e

let load_spec path =
  match Scenario.load path with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "%s: %s" path e

let scorecard_string spec =
  Obs.Json.to_string (Scenario.to_json (Scenario.run spec))

(* ---------- catalog shape ---------- *)

let test_catalog_names () =
  let names = List.map fst (catalog ()) in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        Alcotest.failf "catalog is missing the %S scenario" required)
    [ "flapping-churn"; "capacity-drift"; "legacy-mix"; "join-growth" ];
  Alcotest.(check bool)
    "at least four scenarios shipped" true
    (List.length names >= 4)

let test_catalog_specs_valid () =
  List.iter
    (fun (name, path) ->
      let spec = load_spec path in
      Alcotest.(check string)
        (Printf.sprintf "%s: name matches filename" path)
        name spec.Scenario.name)
    (catalog ())

(* Each required churn flavour is represented: sustained flapping,
   capacity drift, a legacy single-medium device mix, join-heavy
   growth. *)
let test_catalog_covers_flavours () =
  let specs = List.map (fun (_, p) -> load_spec p) (catalog ()) in
  let plan_of (spec : Scenario.spec) =
    match spec.Scenario.churn with Scenario.Plan p -> p | _ -> []
  in
  let has pred = List.exists pred specs in
  Alcotest.(check bool) "a flapping scenario" true
    (has (fun s ->
         List.exists
           (function Fault.Node_flap _ -> true | _ -> false)
           (plan_of s)));
  Alcotest.(check bool) "a capacity-drift scenario" true
    (has (fun s ->
         List.exists
           (function Fault.Capacity_drift _ -> true | _ -> false)
           (plan_of s)));
  Alcotest.(check bool) "a join scenario" true
    (has (fun s ->
         List.exists
           (function Fault.Node_join _ -> true | _ -> false)
           (plan_of s)));
  Alcotest.(check bool) "a legacy device-class scenario" true
    (has (fun s ->
         List.exists
           (fun (d : Device.spec) -> d.Device.cls = Device.Legacy)
           s.Scenario.devices))

(* ---------- golden replay ---------- *)

(* The golden is the exact `empower_eval scenario <name> --json`
   output (print_endline appends the \n). Byte equality pins the
   whole scorecard: plan, per-flow metrics, per-event table, SLO
   verdict. *)
let replay_golden name () =
  let spec = load_spec (Filename.concat scenarios_dir (name ^ ".json")) in
  let golden =
    read_file (Filename.concat golden_dir ("scenario_" ^ name ^ ".json"))
  in
  Alcotest.(check string)
    (name ^ " scorecard replays byte-for-byte")
    (String.trim golden) (scorecard_string spec)

let test_shipped_scenarios_meet_slo () =
  List.iter
    (fun (name, path) ->
      let sc = Scenario.run (load_spec path) in
      if not sc.Scenario.slo_met then
        Alcotest.failf "shipped scenario %s misses its own SLO (%.3f)" name
          sc.Scenario.min_availability_measured)
    (catalog ())

(* ---------- determinism ---------- *)

let test_bit_reproducible () =
  let spec = load_spec (Filename.concat scenarios_dir "flapping-churn.json") in
  Alcotest.(check string)
    "equal seeds give byte-identical scorecards" (scorecard_string spec)
    (scorecard_string spec)

let test_run_all_jobs_identical () =
  let specs = List.map (fun (_, p) -> load_spec p) (catalog ()) in
  let render jobs =
    Scenario.run_all ~jobs specs
    |> List.map (fun sc -> Obs.Json.to_string (Scenario.to_json sc))
  in
  Alcotest.(check (list string))
    "run_all is bit-identical for any job count" (render 1) (render 3)

(* ---------- strict decoding ---------- *)

let parse s =
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "test JSON does not parse: %s" e

let base_doc =
  {|{
  "version": 1,
  "name": "t", "description": "d", "seed": 1, "duration": 5.0,
  "topology": { "kind": "testbed", "seed": 4242 },
  "flows": [ { "src": 0, "dst": 12 } ],
  "churn": { "generate": { "intensity": "light" } },
  "recovery": false,
  "slo": { "availability_frac": 0.5, "min_availability": 0.5 }
}|}

let reject msg doc =
  match Scenario.spec_of_json (parse doc) with
  | Ok _ -> Alcotest.failf "%s: expected a decode error" msg
  | Error _ -> ()

let test_decode_ok () =
  match Scenario.spec_of_json (parse base_doc) with
  | Ok spec ->
    Alcotest.(check string) "name" "t" spec.Scenario.name;
    Alcotest.(check int) "topology seed" 4242 spec.Scenario.topology_seed
  | Error e -> Alcotest.failf "base document must decode: %s" e

(* Replace the first occurrence of [pat] in the base document. *)
let patch pat repl =
  let n = String.length base_doc and m = String.length pat in
  let rec find i =
    if i + m > n then Alcotest.failf "patch: %S not in base document" pat
    else if String.sub base_doc i m = pat then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub base_doc 0 i ^ repl ^ String.sub base_doc (i + m) (n - i - m)

let test_decode_rejects () =
  reject "wrong version" (patch {|"version": 1|} {|"version": 2|});
  reject "missing version"
    (patch {|"version": 1,|} "");
  reject "bad topology kind" (patch {|"kind": "testbed"|} {|"kind": "mesh"|});
  reject "empty flows" (patch {|[ { "src": 0, "dst": 12 } ]|} "[]");
  reject "src = dst" (patch {|{ "src": 0, "dst": 12 }|} {|{ "src": 3, "dst": 3 }|});
  reject "zero duration" (patch {|"duration": 5.0|} {|"duration": 0.0|});
  reject "slo out of range"
    (patch {|"availability_frac": 0.5|} {|"availability_frac": 1.5|});
  reject "unknown intensity"
    (patch {|"intensity": "light"|} {|"intensity": "apocalyptic"|});
  reject "bad device class"
    (patch {|"flows"|} {|"devices": [ { "node": 1, "class": "quantum" } ], "flows"|});
  reject "duplicate device node"
    (patch {|"flows"|}
       {|"devices": [ { "node": 1, "class": "relay" },
                      { "node": 1, "class": "legacy" } ], "flows"|});
  reject "churn with neither generate nor plan"
    (patch {|{ "generate": { "intensity": "light" } }|} "{}")

let test_decode_explicit_plan () =
  let doc =
    patch
      {|{ "generate": { "intensity": "light" } }|}
      {|{ "plan": { "version": 2, "actions": [
           { "op": "node_flap", "at": 1.0, "until": 4.0,
             "node": 3, "period": 1.0, "duty": 0.5 } ] } }|}
  in
  match Scenario.spec_of_json (parse doc) with
  | Ok { Scenario.churn = Scenario.Plan [ Fault.Node_flap _ ]; _ } -> ()
  | Ok _ -> Alcotest.fail "expected a one-action explicit plan"
  | Error e -> Alcotest.failf "explicit plan must decode: %s" e

(* Relay endpoints may not originate traffic: the runner rejects a
   flow from/to a relay-class device at validation time. *)
let test_relay_endpoint_rejected () =
  let doc =
    patch {|"flows"|} {|"devices": [ { "node": 0, "class": "relay" } ], "flows"|}
  in
  match Scenario.spec_of_json (parse doc) with
  | Error e -> Alcotest.failf "spec itself decodes: %s" e
  | Ok spec -> (
    match Scenario.run spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument for a relay source")

let () =
  let golden name = ("golden " ^ name, `Slow, replay_golden name) in
  Alcotest.run "scenario"
    [
      ( "catalog",
        [
          ("required names", `Quick, test_catalog_names);
          ("specs valid", `Quick, test_catalog_specs_valid);
          ("flavours covered", `Quick, test_catalog_covers_flavours);
        ] );
      ( "golden",
        [
          golden "flapping-churn";
          golden "capacity-drift";
          golden "legacy-mix";
          golden "join-growth";
          ("shipped SLOs pass", `Slow, test_shipped_scenarios_meet_slo);
        ] );
      ( "determinism",
        [
          ("bit reproducible", `Slow, test_bit_reproducible);
          ("run_all jobs identical", `Slow, test_run_all_jobs_identical);
        ] );
      ( "decode",
        [
          ("base document", `Quick, test_decode_ok);
          ("rejections", `Quick, test_decode_rejects);
          ("explicit plan", `Quick, test_decode_explicit_plan);
          ("relay endpoint", `Quick, test_relay_endpoint_rejected);
        ] );
    ]
