(* The flat int event encoding (Arena): every hot variant must decode
   back to exactly the operands it was encoded from, over the full
   field widths the engine enforces at bootstrap — a silently
   truncated or mis-shifted field would corrupt the event stream, not
   crash it. The QCheck properties draw operands across the whole
   advertised ranges; the alcotest cases pin the tag values and the
   boundary operands (0 and the maximum) for every layout. *)

let flow_gen = QCheck.Gen.int_range 0 Arena.max_flow
let link_gen = QCheck.Gen.int_range 0 Arena.max_link
let seq_gen = QCheck.Gen.int_range 0 0xFFFFFFFF (* 32-bit, masked at source *)
let slot_gen = QCheck.Gen.int_range 0 0xFFFF (* store high-water marks *)

let prop name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name (QCheck.make gen) law)

let tag_cases () =
  (* Tag assignments are load-bearing: the engine's dispatch is an
     indexed jump on [tag code]. *)
  Alcotest.(check int) "tx_end" Arena.t_tx_end (Arena.tag (Arena.tx_end 7));
  Alcotest.(check int) "inject" Arena.t_inject (Arena.tag (Arena.inject 7));
  Alcotest.(check int) "control_tick" Arena.t_control_tick (Arena.tag Arena.control_tick);
  Alcotest.(check int) "tcp_ack" Arena.t_tcp_ack
    (Arena.tag (Arena.tcp_ack ~flow:1 ~cum:2 ~ece:false));
  Alcotest.(check int) "reorder_release" Arena.t_reorder_release
    (Arena.tag (Arena.reorder_release ~flow:1 ~slot:2));
  Alcotest.(check int) "tcp_rto" Arena.t_tcp_rto
    (Arena.tag (Arena.tcp_rto ~flow:1 ~slot:2));
  Alcotest.(check int) "flow_start" Arena.t_flow_start (Arena.tag (Arena.flow_start 7));
  Alcotest.(check int) "flow_stop" Arena.t_flow_stop (Arena.tag (Arena.flow_stop 7));
  Alcotest.(check int) "reclaim_probe" Arena.t_reclaim_probe
    (Arena.tag (Arena.reclaim_probe ~flow:1 ~route:2 ~gen:3));
  Alcotest.(check int) "ack_arrive" Arena.t_ack_arrive
    (Arena.tag (Arena.ack_arrive ~flow:1 ~slot:2));
  Alcotest.(check int) "capacity_change" Arena.t_capacity_change
    (Arena.tag (Arena.capacity_change ~link:1 ~slot:2));
  Alcotest.(check int) "loss_change" Arena.t_loss_change
    (Arena.tag (Arena.loss_change ~link:1 ~slot:2));
  Alcotest.(check int) "ctrl_change" Arena.t_ctrl_change
    (Arena.tag (Arena.ctrl_change ~slot:7))

let boundary_cases () =
  (* Extremes of every field: 0 and the enforced maximum. *)
  Alcotest.(check int) "tx_end max link" Arena.max_link
    (Arena.link (Arena.tx_end Arena.max_link));
  Alcotest.(check int) "inject max flow" Arena.max_flow
    (Arena.flow_wide (Arena.inject Arena.max_flow));
  let c = Arena.tcp_ack ~flow:Arena.max_flow ~cum:0xFFFFFFFF ~ece:true in
  Alcotest.(check int) "tcp_ack max flow" Arena.max_flow (Arena.flow c);
  Alcotest.(check int) "tcp_ack max cum" 0xFFFFFFFF (Arena.tcp_ack_cum c);
  Alcotest.(check bool) "tcp_ack ece" true (Arena.tcp_ack_ece c);
  let c = Arena.tcp_ack ~flow:0 ~cum:0 ~ece:false in
  Alcotest.(check int) "tcp_ack zero flow" 0 (Arena.flow c);
  Alcotest.(check int) "tcp_ack zero cum" 0 (Arena.tcp_ack_cum c);
  Alcotest.(check bool) "tcp_ack no ece" false (Arena.tcp_ack_ece c);
  let c = Arena.reclaim_probe ~flow:Arena.max_flow ~route:0xFF ~gen:31 in
  Alcotest.(check int) "probe max flow" Arena.max_flow (Arena.flow c);
  Alcotest.(check int) "probe max route" 0xFF (Arena.probe_route c);
  Alcotest.(check int) "probe gen" 31 (Arena.probe_gen c);
  Alcotest.check_raises "probe route too wide"
    (Invalid_argument "Arena.reclaim_probe: route id too wide") (fun () ->
      ignore (Arena.reclaim_probe ~flow:0 ~route:0x100 ~gen:0))

let roundtrip_tests =
  [
    prop "tx_end link" link_gen (fun l -> Arena.link (Arena.tx_end l) = l);
    prop "inject flow" flow_gen (fun f -> Arena.flow_wide (Arena.inject f) = f);
    prop "flow_start flow" flow_gen (fun f ->
        Arena.flow_wide (Arena.flow_start f) = f);
    prop "flow_stop flow" flow_gen (fun f ->
        Arena.flow_wide (Arena.flow_stop f) = f);
    prop "tcp_ack (flow, cum, ece)"
      QCheck.Gen.(triple flow_gen seq_gen bool)
      (fun (f, cum, ece) ->
        let c = Arena.tcp_ack ~flow:f ~cum ~ece in
        Arena.flow c = f && Arena.tcp_ack_cum c = cum && Arena.tcp_ack_ece c = ece);
    prop "reorder_release (flow, slot)"
      QCheck.Gen.(pair flow_gen slot_gen)
      (fun (f, s) ->
        let c = Arena.reorder_release ~flow:f ~slot:s in
        Arena.flow c = f && Arena.slot20 c = s);
    prop "tcp_rto (flow, slot)"
      QCheck.Gen.(pair flow_gen slot_gen)
      (fun (f, s) ->
        let c = Arena.tcp_rto ~flow:f ~slot:s in
        Arena.flow c = f && Arena.slot20 c = s);
    prop "reclaim_probe (flow, route, gen)"
      QCheck.Gen.(triple flow_gen (int_range 0 0xFF) (int_range 0 1000))
      (fun (f, r, g) ->
        let c = Arena.reclaim_probe ~flow:f ~route:r ~gen:g in
        Arena.flow c = f && Arena.probe_route c = r && Arena.probe_gen c = g);
    prop "ack_arrive (flow, slot)"
      QCheck.Gen.(pair flow_gen slot_gen)
      (fun (f, s) ->
        let c = Arena.ack_arrive ~flow:f ~slot:s in
        Arena.flow c = f && Arena.slot20 c = s);
    prop "capacity_change (link, slot)"
      QCheck.Gen.(pair link_gen slot_gen)
      (fun (l, s) ->
        let c = Arena.capacity_change ~link:l ~slot:s in
        Arena.link20 c = l && Arena.slot24 c = s);
    prop "loss_change (link, slot)"
      QCheck.Gen.(pair link_gen slot_gen)
      (fun (l, s) ->
        let c = Arena.loss_change ~link:l ~slot:s in
        Arena.link20 c = l && Arena.slot24 c = s);
    prop "ctrl_change slot" slot_gen (fun s ->
        Arena.slot4 (Arena.ctrl_change ~slot:s) = s);
    prop "tags stay distinct"
      QCheck.Gen.(pair flow_gen link_gen)
      (fun (f, l) ->
        let codes =
          [
            Arena.tx_end l;
            Arena.inject f;
            Arena.control_tick;
            Arena.tcp_ack ~flow:f ~cum:0 ~ece:false;
            Arena.reorder_release ~flow:f ~slot:0;
            Arena.tcp_rto ~flow:f ~slot:0;
            Arena.flow_start f;
            Arena.flow_stop f;
            Arena.reclaim_probe ~flow:f ~route:0 ~gen:0;
            Arena.ack_arrive ~flow:f ~slot:0;
            Arena.capacity_change ~link:l ~slot:0;
            Arena.loss_change ~link:l ~slot:0;
            Arena.ctrl_change ~slot:0;
          ]
        in
        List.length (List.sort_uniq compare (List.map Arena.tag codes)) = 13);
  ]

(* Slot stores: put/get/release across grows must never hand out an
   occupied slot or lose a payload. *)
let slots_stress () =
  let t = Arena.Slots.create () in
  let live = Hashtbl.create 64 in
  let rng = Rng.create 42 in
  for i = 0 to 9_999 do
    if Rng.bool rng && Hashtbl.length live > 0 then begin
      (* release one live slot *)
      let k = List.hd (Hashtbl.fold (fun k _ acc -> k :: acc) live []) in
      let v = Hashtbl.find live k in
      Alcotest.(check int) "payload survives" v (Arena.Slots.get t k);
      Arena.Slots.release t k;
      Hashtbl.remove live k
    end
    else begin
      let slot = Arena.Slots.put t i in
      Alcotest.(check bool) "fresh slot" false (Hashtbl.mem live slot);
      Hashtbl.replace live slot i
    end
  done;
  Hashtbl.iter
    (fun k v -> Alcotest.(check int) "final payloads" v (Arena.Slots.get t k))
    live

let fslots_roundtrip () =
  let t = Arena.Fslots.create () in
  let slots = Array.init 100 (fun i -> Arena.Fslots.put t (float_of_int i *. 0.5)) in
  Array.iteri
    (fun i s ->
      Alcotest.(check (float 0.0)) "fslot payload" (float_of_int i *. 0.5)
        (Arena.Fslots.get t s))
    slots;
  Array.iter (fun s -> Arena.Fslots.release t s) slots;
  (* every slot free again: the next 100 puts must reuse them *)
  let again = Array.init 100 (fun i -> Arena.Fslots.put t (float_of_int i)) in
  let sorted a = List.sort compare (Array.to_list a) in
  Alcotest.(check (list int)) "slots recycled" (sorted slots) (sorted again)

let () =
  Alcotest.run "arena"
    [
      ( "encoding",
        [
          Alcotest.test_case "tags" `Quick tag_cases;
          Alcotest.test_case "field boundaries" `Quick boundary_cases;
        ] );
      ("roundtrip", roundtrip_tests);
      ( "slots",
        [
          Alcotest.test_case "slots put/get/release stress" `Quick slots_stress;
          Alcotest.test_case "fslots roundtrip + recycle" `Quick fslots_roundtrip;
        ] );
    ]
