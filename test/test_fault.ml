(* Tests for the fault-plan DSL (lib/fault): the JSON codec across
   every action variant, the strict decoder's rejections, the
   normalize/validate contracts, the compiler's lowering (including
   the tie-break ordering, node-crash incident coverage, ramp
   endpoints and control-window merging) and the seeded generator's
   determinism. Mirrors the Obs.Trace codec tests in test_obs.ml. *)

let fig1 () =
  Multigraph.create ~n_nodes:3 ~n_techs:2
    ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]

(* ---------- codec ---------- *)

(* Awkward times and values on purpose: the codec must round-trip
   bit-exactly, not just to printf precision. *)
let all_action_variants =
  let open Fault in
  [
    Link_down { at = 0.1 +. 0.2; link = 5 };
    Link_up { at = 1.0 /. 3.0; link = 0; capacity = 97.53 };
    Capacity_set { at = Float.ldexp 1.0 (-40); link = 3; capacity = 0.0 };
    Capacity_ramp
      {
        at = 2.0;
        link = 1;
        from_cap = 30.0;
        to_cap = 10.0 /. 3.0;
        over = 0.75;
        steps = 4;
      };
    Loss_window { at = 3.0; until = 4.5; link = 2; prob = 0.19483726451 };
    Ctrl_drop { at = 0.0; until = 1e-3; prob = 1.0 };
    Ctrl_delay { at = 5.0; until = 6.0; delay = 0.07 /. 0.9 };
    Node_crash { at = 7.0; node = 0 };
    Node_restart { at = 8.25; node = 2 };
  ]

let test_plan_roundtrip () =
  let plan = all_action_variants in
  (match Fault.of_json (Fault.to_json plan) with
  | Ok p' ->
    if plan <> p' then
      Alcotest.failf "plan does not round-trip via of_json: %s"
        (Fault.encode plan)
  | Error m -> Alcotest.failf "of_json of own to_json failed: %s" m);
  match Fault.decode (Fault.encode plan) with
  | Ok p' ->
    if plan <> p' then
      Alcotest.failf "plan does not round-trip via decode: %s"
        (Fault.encode plan)
  | Error m -> Alcotest.failf "decode of own encoding failed: %s" m

let test_singleton_roundtrip () =
  (* Each variant alone, so one bad arm cannot hide behind the rest. *)
  List.iter
    (fun a ->
      match Fault.decode (Fault.encode [ a ]) with
      | Ok [ a' ] when a = a' -> ()
      | Ok _ -> Alcotest.failf "variant does not round-trip: %s" (Fault.encode [ a ])
      | Error m -> Alcotest.failf "decode failed on %s: %s" (Fault.encode [ a ]) m)
    all_action_variants;
  (* The empty plan round-trips too. *)
  match Fault.decode (Fault.encode Fault.empty) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty plan decoded non-empty"
  | Error m -> Alcotest.failf "empty plan decode failed: %s" m

let test_decode_rejects () =
  List.iter
    (fun s ->
      match Fault.decode s with
      | Ok _ -> Alcotest.failf "decoder accepted %S" s
      | Error _ -> ())
    [
      (* unknown op *)
      {|{"version":1,"actions":[{"op":"gremlins","at":0}]}|};
      (* missing op *)
      {|{"version":1,"actions":[{"at":0,"link":1}]}|};
      (* missing field *)
      {|{"version":1,"actions":[{"op":"link_down","at":0}]}|};
      {|{"version":1,"actions":[{"op":"loss_window","at":0,"until":1,"link":0}]}|};
      {|{"version":1,"actions":[{"op":"capacity_ramp","at":0,"link":0,"from":1,"to":2,"over":1}]}|};
      (* mistyped field *)
      {|{"version":1,"actions":[{"op":"link_down","at":"zero","link":1}]}|};
      {|{"version":1,"actions":[{"op":"link_down","at":0,"link":1.5}]}|};
      (* action not an object *)
      {|{"version":1,"actions":[42]}|};
      (* actions not a list *)
      {|{"version":1,"actions":{}}|};
      (* missing / bad version *)
      {|{"actions":[]}|};
      {|{"version":3,"actions":[]}|};
      {|{"version":"1","actions":[]}|};
      (* churn ops demand version 2 *)
      {|{"version":1,"actions":[{"op":"node_flap","at":1,"until":4,"node":0,"period":1,"duty":0.5}]}|};
      {|{"version":1,"actions":[{"op":"capacity_drift","at":1,"until":4,"link":0,"floor":0.5,"period":2,"steps":2}]}|};
      {|{"version":1,"actions":[{"op":"node_join","at":1,"node":0}]}|};
      (* plan not an object *)
      "[]";
      "not json at all";
      "";
    ]

let test_file_roundtrip () =
  let path = Filename.temp_file "fault_plan" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fault.to_file path all_action_variants;
      match Fault.of_file path with
      | Ok p ->
        if p <> all_action_variants then
          Alcotest.fail "plan does not round-trip through a file"
      | Error m -> Alcotest.failf "of_file: %s" m);
  match Fault.of_file "/nonexistent/fault_plan.json" with
  | Ok _ -> Alcotest.fail "of_file accepted a missing file"
  | Error _ -> ()

(* ---------- normalize ---------- *)

let test_normalize_stable () =
  let open Fault in
  let a = Link_down { at = 2.0; link = 0 } in
  let b = Capacity_set { at = 2.0; link = 0; capacity = 15.0 } in
  let c = Link_up { at = 1.0; link = 1; capacity = 5.0 } in
  (* c sorts first; the equal-time pair keeps plan order. *)
  Alcotest.(check bool) "sorted, ties in plan order" true
    (normalize [ a; b; c ] = [ c; a; b ]);
  Alcotest.(check bool) "reversed ties keep their order" true
    (normalize [ b; a; c ] = [ c; b; a ]);
  Alcotest.(check bool) "already sorted is unchanged" true
    (normalize [ c; a; b ] = [ c; a; b ])

(* ---------- validate ---------- *)

(* A valid-under-fig1 twin of the codec list (the codec list uses
   out-of-range ids on purpose — fig1 has 6 links / 3 nodes). *)
let all_action_variants_valid =
  let open Fault in
  [
    Link_down { at = 0.3; link = 5 };
    Link_up { at = 1.0 /. 3.0; link = 0; capacity = 97.53 };
    Capacity_set { at = 0.5; link = 3; capacity = 0.0 };
    Capacity_ramp
      { at = 2.0; link = 1; from_cap = 30.0; to_cap = 3.0; over = 0.75; steps = 4 };
    Loss_window { at = 3.0; until = 4.5; link = 2; prob = 0.2 };
    Ctrl_drop { at = 0.0; until = 1e-3; prob = 1.0 };
    Ctrl_delay { at = 5.0; until = 6.0; delay = 0.08 };
    Node_crash { at = 7.0; node = 0 };
    Node_restart { at = 8.25; node = 2 };
  ]

let test_validate () =
  let g = fig1 () in
  let ok plan =
    match Fault.validate g plan with
    | Ok () -> ()
    | Error m -> Alcotest.failf "valid plan rejected: %s" m
  in
  let bad name plan =
    match Fault.validate g plan with
    | Ok () -> Alcotest.failf "%s: invalid plan accepted" name
    | Error _ -> ()
  in
  let open Fault in
  ok all_action_variants_valid;
  bad "negative time" [ Link_down { at = -1.0; link = 0 } ];
  bad "nan time" [ Link_down { at = Float.nan; link = 0 } ];
  bad "link out of range" [ Link_down { at = 0.0; link = 6 } ];
  bad "negative link" [ Link_down { at = 0.0; link = -1 } ];
  bad "negative capacity" [ Link_up { at = 0.0; link = 0; capacity = -2.0 } ];
  bad "infinite capacity"
    [ Capacity_set { at = 0.0; link = 0; capacity = Float.infinity } ];
  bad "until <= at" [ Loss_window { at = 2.0; until = 2.0; link = 0; prob = 0.5 } ];
  bad "prob > 1" [ Loss_window { at = 0.0; until = 1.0; link = 0; prob = 1.5 } ];
  bad "ctrl prob < 0" [ Ctrl_drop { at = 0.0; until = 1.0; prob = -0.1 } ];
  bad "negative delay" [ Ctrl_delay { at = 0.0; until = 1.0; delay = -0.01 } ];
  bad "over = 0"
    [
      Capacity_ramp
        { at = 0.0; link = 0; from_cap = 15.0; to_cap = 5.0; over = 0.0; steps = 2 };
    ];
  bad "steps = 0"
    [
      Capacity_ramp
        { at = 0.0; link = 0; from_cap = 15.0; to_cap = 5.0; over = 1.0; steps = 0 };
    ];
  bad "node out of range" [ Node_crash { at = 0.0; node = 3 } ];
  (* The first offending action is the one named. *)
  match
    Fault.validate g
      [ Link_down { at = 0.0; link = 0 }; Node_restart { at = 0.0; node = 99 } ]
  with
  | Error m ->
    Alcotest.(check bool) "error names the op" true
      (String.length m >= 12 && String.sub m 0 12 = "node_restart")
  | Ok () -> Alcotest.fail "bad tail action accepted"

(* ---------- compile ---------- *)

let test_compile_empty () =
  let g = fig1 () in
  let c = Fault.compile g [] in
  Alcotest.(check bool) "no link events" true (c.Fault.link_events = []);
  Alcotest.(check bool) "no loss events" true (c.Fault.loss_events = []);
  Alcotest.(check bool) "no ctrl events" true (c.Fault.ctrl_events = [])

let test_compile_failure_plan () =
  (* The legacy Section 6.1 failure scenario as a plan must lower to
     exactly the schedule the trace experiment always used. *)
  let g = fig1 () in
  let l = 2 in
  let cap = Multigraph.capacity g l in
  let c =
    Fault.compile g
      [
        Fault.Link_down { at = 3.0; link = l };
        Fault.Link_up { at = 4.5; link = l; capacity = cap };
      ]
  in
  Alcotest.(check bool) "exact legacy schedule" true
    (c.Fault.link_events = [ (3.0, l, 0.0); (4.5, l, cap) ]);
  Alcotest.(check bool) "no loss schedule" true (c.Fault.loss_events = []);
  Alcotest.(check bool) "no ctrl schedule" true (c.Fault.ctrl_events = [])

let test_compile_tie_break_order () =
  (* Equal-time actions keep plan order in the output, so the engine
     (FIFO on equal times) applies the last one last. *)
  let g = fig1 () in
  let down = Fault.Link_down { at = 2.0; link = 0 } in
  let set = Fault.Capacity_set { at = 2.0; link = 0; capacity = 15.0 } in
  let c1 = Fault.compile g [ down; set ] in
  Alcotest.(check bool) "down then set" true
    (c1.Fault.link_events = [ (2.0, 0, 0.0); (2.0, 0, 15.0) ]);
  let c2 = Fault.compile g [ set; down ] in
  Alcotest.(check bool) "set then down" true
    (c2.Fault.link_events = [ (2.0, 0, 15.0); (2.0, 0, 0.0) ])

let test_compile_node_crash_incident () =
  (* A crash fails every directed link touching the node, in
     ascending id; a restart restores the graph capacities. *)
  let g = fig1 () in
  let node = 1 in
  let incident =
    List.sort compare (Multigraph.out_links g node @ Multigraph.in_links g node)
  in
  Alcotest.(check bool) "node 1 touches every link" true
    (List.length incident = Multigraph.num_links g);
  let c =
    Fault.compile g
      [ Fault.Node_crash { at = 1.0; node }; Fault.Node_restart { at = 2.0; node } ]
  in
  let expected =
    List.map (fun l -> (1.0, l, 0.0)) incident
    @ List.map (fun l -> (2.0, l, Multigraph.capacity g l)) incident
  in
  Alcotest.(check bool) "crash+restart cover incident links" true
    (c.Fault.link_events = expected)

let test_compile_ramp_endpoints () =
  let g = fig1 () in
  let c =
    Fault.compile g
      [
        Fault.Capacity_ramp
          { at = 1.0; link = 0; from_cap = 15.0; to_cap = 6.0; over = 1.0; steps = 3 };
      ]
  in
  (match c.Fault.link_events with
  | (t0, l0, c0) :: _ ->
    Alcotest.(check bool) "initial set exact" true
      (t0 = 1.0 && l0 = 0 && c0 = 15.0)
  | [] -> Alcotest.fail "ramp produced no events");
  (match List.rev c.Fault.link_events with
  | (t_last, _, c_last) :: _ ->
    Alcotest.(check bool) "final step lands exactly on to_cap" true
      (t_last = 2.0 && c_last = 6.0)
  | [] -> assert false);
  Alcotest.(check int) "initial set + steps" 4 (List.length c.Fault.link_events);
  (* Capacities step monotonically for a monotone ramp. *)
  let caps = List.map (fun (_, _, cap) -> cap) c.Fault.link_events in
  Alcotest.(check bool) "monotone ramp" true
    (caps = List.sort (fun a b -> compare b a) caps)

let test_compile_ctrl_merge () =
  (* Overlapping drop and delay windows merge into atomic (t, drop,
     delay) states; each boundary re-asserts the full pair. *)
  let g = fig1 () in
  let c =
    Fault.compile g
      [
        Fault.Ctrl_drop { at = 1.0; until = 3.0; prob = 0.5 };
        Fault.Ctrl_delay { at = 2.0; until = 4.0; delay = 0.1 };
      ]
  in
  Alcotest.(check bool) "boundary replay states" true
    (c.Fault.ctrl_events
    = [ (1.0, 0.5, 0.0); (2.0, 0.5, 0.1); (3.0, 0.0, 0.1); (4.0, 0.0, 0.0) ])

let test_compile_ctrl_equal_time_coalesce () =
  (* Back-to-back windows sharing a boundary collapse to one state at
     that instant, and the later window's value wins. *)
  let g = fig1 () in
  let c =
    Fault.compile g
      [
        Fault.Ctrl_drop { at = 1.0; until = 2.0; prob = 0.3 };
        Fault.Ctrl_drop { at = 2.0; until = 3.0; prob = 0.6 };
      ]
  in
  Alcotest.(check bool) "shared boundary coalesces, last wins" true
    (c.Fault.ctrl_events = [ (1.0, 0.3, 0.0); (2.0, 0.6, 0.0); (3.0, 0.0, 0.0) ])

let test_compile_invalid_raises () =
  let g = fig1 () in
  let raises plan =
    try
      ignore (Fault.compile g plan);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad link raises" true
    (raises [ Fault.Link_down { at = 0.0; link = 99 } ]);
  Alcotest.(check bool) "bad window raises" true
    (raises [ Fault.Ctrl_drop { at = 3.0; until = 1.0; prob = 0.2 } ])

(* ---------- generator ---------- *)

let test_gen_deterministic () =
  let g = fig1 () in
  let draw seed intensity =
    Fault.Gen.plan ~intensity (Rng.create seed) g ~duration:20.0
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "equal seeds, equal plans (%s)" (Fault.Gen.intensity_name i))
        true
        (draw 7 i = draw 7 i))
    [ Fault.Gen.Light; Fault.Gen.Moderate; Fault.Gen.Heavy ];
  Alcotest.(check bool) "different seeds diverge somewhere" true
    (List.exists (fun s -> draw s Fault.Gen.Heavy <> draw 7 Fault.Gen.Heavy)
       [ 8; 9; 10; 11 ])

let action_clear_time = Fault.end_time

let test_gen_valid_and_clears () =
  let g = fig1 () in
  let duration = 16.0 and clear_by = 6.0 in
  for seed = 0 to 24 do
    let plan =
      Fault.Gen.plan ~intensity:Fault.Gen.Heavy ~clear_by (Rng.create seed) g
        ~duration
    in
    Alcotest.(check bool) "plan non-empty" true (plan <> []);
    (match Fault.validate g plan with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: generated invalid plan: %s" seed m);
    List.iter
      (fun a ->
        let t0 = Fault.start_time a and t1 = action_clear_time a in
        if not (t0 >= 0.0 && t1 <= clear_by) then
          Alcotest.failf "seed %d: action [%.3f, %.3f] escapes clear_by %.1f" seed
            t0 t1 clear_by)
      plan
  done

(* ---------- severing profile ---------- *)

let test_severing_shape () =
  let g = fig1 () in
  let duration = 16.0 and clear_by = 6.0 in
  for seed = 0 to 24 do
    let plan =
      Fault.Gen.plan ~intensity:Fault.Gen.Severing ~clear_by (Rng.create seed) g
        ~duration
    in
    (match Fault.validate g plan with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: invalid severing plan: %s" seed m);
    match plan with
    | [ Fault.Node_crash { at = t0; node = v };
        Fault.Node_restart { at = t1; node = v' } ] ->
      if v <> v' then Alcotest.failf "seed %d: restart of a different node" seed;
      if not (t0 >= 0.2 && t0 < t1 && t1 <= clear_by) then
        Alcotest.failf "seed %d: window [%.3f, %.3f] escapes [0.2, %.1f]" seed t0
          t1 clear_by
    | _ ->
      Alcotest.failf "seed %d: severing plan is not one crash/restart pair: %s"
        seed (Fault.encode plan)
  done

let test_severing_victim_pinned () =
  let g = fig1 () in
  for seed = 0 to 9 do
    match
      Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim:2 (Rng.create seed) g
        ~duration:12.0
    with
    | [ Fault.Node_crash { node = 2; _ }; Fault.Node_restart { node = 2; _ } ] ->
      ()
    | p -> Alcotest.failf "seed %d: pinned victim not honored: %s" seed
             (Fault.encode p)
  done

let test_severing_roundtrip () =
  (* Generated severing plans survive the JSON codec. *)
  let g = fig1 () in
  let plan =
    Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim:1 (Rng.create 3) g
      ~duration:10.0
  in
  match Fault.decode (Fault.encode plan) with
  | Ok p when p = plan -> ()
  | Ok _ -> Alcotest.fail "severing plan does not round-trip"
  | Error m -> Alcotest.failf "severing plan decode failed: %s" m

let test_severing_severs_all_routes () =
  (* Compiling the severing plan must zero the capacity of every
     directed link incident to the victim — every route through or
     ending at the victim is down for the whole window. *)
  let g = fig1 () in
  let victim = 1 in
  let plan =
    Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim (Rng.create 11) g
      ~duration:12.0
  in
  let c = Fault.compile g plan in
  let incident =
    List.sort compare
      (Multigraph.out_links g victim @ Multigraph.in_links g victim)
  in
  let crash_t =
    match plan with Fault.Node_crash { at; _ } :: _ -> at | _ -> assert false
  in
  List.iter
    (fun l ->
      if not (List.exists (fun (t, l', cap) -> t = crash_t && l' = l && cap = 0.0)
                c.Fault.link_events)
      then Alcotest.failf "incident link %d not brought down at the crash" l)
    incident;
  List.iter
    (fun l ->
      if not
           (List.exists
              (fun (t, l', cap) ->
                t > crash_t && l' = l && cap = Multigraph.capacity g l)
              c.Fault.link_events)
      then Alcotest.failf "incident link %d not restored after the window" l)
    incident

let test_severing_name_and_determinism () =
  Alcotest.(check bool) "name round-trips" true
    (Fault.Gen.intensity_of_name "severing" = Some Fault.Gen.Severing
    && Fault.Gen.intensity_name Fault.Gen.Severing = "severing");
  let g = fig1 () in
  let draw seed =
    Fault.Gen.plan ~intensity:Fault.Gen.Severing (Rng.create seed) g
      ~duration:20.0
  in
  Alcotest.(check bool) "equal seeds, equal severing plans" true
    (draw 7 = draw 7);
  (* Pinning the victim must not consume the victim draw: the window
     of a pinned plan with the drawn victim matches the free plan. *)
  let free = draw 7 in
  let v = match free with Fault.Node_crash { node; _ } :: _ -> node | _ -> 0 in
  Alcotest.(check bool) "pin of the drawn victim changes the window only" true
    (match
       ( free,
         Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim:v (Rng.create 7) g
           ~duration:20.0 )
     with
    | ( [ Fault.Node_crash { node = a; _ }; _ ],
        [ Fault.Node_crash { node = b; _ }; _ ] ) -> a = v && b = v
    | _ -> false)

let test_severing_victim_ignored_elsewhere () =
  (* Non-severing intensities ignore [victim] and stay byte-stable. *)
  let g = fig1 () in
  let with_v =
    Fault.Gen.plan ~intensity:Fault.Gen.Heavy ~victim:2 (Rng.create 5) g
      ~duration:20.0
  in
  let without =
    Fault.Gen.plan ~intensity:Fault.Gen.Heavy (Rng.create 5) g ~duration:20.0
  in
  Alcotest.(check bool) "victim is ignored by heavy" true (with_v = without)

let test_gen_bad_args () =
  let g = fig1 () in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "clear_by < 1 raises" true
    (raises (fun () ->
         Fault.Gen.plan ~clear_by:0.5 (Rng.create 1) g ~duration:10.0));
  Alcotest.(check bool) "clear_by > duration raises" true
    (raises (fun () ->
         Fault.Gen.plan ~clear_by:11.0 (Rng.create 1) g ~duration:10.0));
  Alcotest.(check bool) "bad duration raises" true
    (raises (fun () -> Fault.Gen.plan (Rng.create 1) g ~duration:0.0));
  let empty_g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[] in
  Alcotest.(check bool) "no links raises" true
    (raises (fun () -> Fault.Gen.plan (Rng.create 1) empty_g ~duration:10.0));
  Alcotest.(check bool) "victim out of range raises" true
    (raises (fun () ->
         Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim:3 (Rng.create 1)
           (fig1 ()) ~duration:10.0));
  Alcotest.(check bool) "negative victim raises" true
    (raises (fun () ->
         Fault.Gen.plan ~intensity:Fault.Gen.Severing ~victim:(-1) (Rng.create 1)
           (fig1 ()) ~duration:10.0))

(* ---------- churn ops (plan version 2) ---------- *)

let churn_action_variants =
  let open Fault in
  [
    Node_flap { at = 1.5; until = 9.75; node = 1; period = 2.5; duty = 0.4 };
    Capacity_drift
      {
        at = 0.5;
        until = 8.5;
        link = 4;
        floor_frac = 1.0 /. 3.0;
        period = 4.0;
        steps = 3;
      };
    Node_join { at = 0.125; node = 2 };
  ]

let test_v2_roundtrip () =
  let plan = all_action_variants @ churn_action_variants in
  (match Fault.decode (Fault.encode plan) with
  | Ok p' when p' = plan -> ()
  | Ok _ -> Alcotest.fail "v2 plan does not round-trip"
  | Error m -> Alcotest.failf "v2 plan decode failed: %s" m);
  List.iter
    (fun a ->
      match Fault.decode (Fault.encode [ a ]) with
      | Ok [ a' ] when a = a' -> ()
      | Ok _ ->
        Alcotest.failf "churn variant does not round-trip: %s" (Fault.encode [ a ])
      | Error m -> Alcotest.failf "decode failed on %s: %s" (Fault.encode [ a ]) m)
    churn_action_variants

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_version_pinning () =
  (* Legacy plans must keep encoding byte-compatible version-1
     documents; the version rises to 2 exactly when a churn op is
     present. *)
  Alcotest.(check int) "legacy plan version" 1
    (Fault.plan_version all_action_variants);
  Alcotest.(check bool) "legacy encodes as version 1" true
    (contains ~needle:{|"version":1|} (Fault.encode all_action_variants));
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Fault.op_name a ^ " is a version-2 op")
        2
        (Fault.plan_version [ a ]))
    churn_action_variants;
  Alcotest.(check bool) "churn encodes as version 2" true
    (contains ~needle:{|"version":2|} (Fault.encode churn_action_variants));
  (* A version-2 document may still carry only legacy ops. *)
  match
    Fault.decode
      {|{"version":2,"actions":[{"op":"link_down","at":1.0,"link":0}]}|}
  with
  | Ok [ Fault.Link_down { at = 1.0; link = 0 } ] -> ()
  | Ok _ -> Alcotest.fail "legacy op in v2 doc decoded wrongly"
  | Error m -> Alcotest.failf "legacy op in v2 doc rejected: %s" m

let link_events plan = (Fault.compile (fig1 ()) plan).Fault.link_events

let check_events name expected actual =
  if expected <> actual then
    Alcotest.failf "%s: expected %s, got %s" name
      (String.concat "; "
         (List.map (fun (t, l, c) -> Printf.sprintf "(%g,%d,%g)" t l c) expected))
      (String.concat "; "
         (List.map (fun (t, l, c) -> Printf.sprintf "(%g,%d,%g)" t l c) actual))

let test_compile_flap_cycles () =
  (* fig1 node 2 is incident to links 2/3 only (capacity 30). A
     2 s-period, 0.5-duty flap over [2, 10] fits exactly four full
     cycles; the node must end restored. *)
  let plan =
    [ Fault.Node_flap { at = 2.0; until = 10.0; node = 2; period = 2.0; duty = 0.5 } ]
  in
  let expected =
    List.concat_map
      (fun k ->
        let c = 2.0 +. (2.0 *. float_of_int k) in
        [ (c, 2, 0.0); (c, 3, 0.0); (c +. 1.0, 2, 30.0); (c +. 1.0, 3, 30.0) ])
      [ 0; 1; 2; 3 ]
  in
  check_events "flap cycles" expected (link_events plan)

let test_compile_drift_setpoints () =
  (* Link 0 (capacity 15), floor 0.5, period 4, 2 steps per half:
     two full cycles fit in [1, 9]; the triangle hits 11.25 / 7.5 on
     the way down and 11.25 / 15 on the way back up, each cycle. *)
  let plan =
    [
      Fault.Capacity_drift
        { at = 1.0; until = 9.0; link = 0; floor_frac = 0.5; period = 4.0; steps = 2 };
    ]
  in
  let expected =
    List.concat_map
      (fun c0 ->
        [
          (c0 +. 1.0, 0, 11.25); (c0 +. 2.0, 0, 7.5);
          (c0 +. 3.0, 0, 11.25); (c0 +. 4.0, 0, 15.0);
        ])
      [ 1.0; 5.0 ]
  in
  check_events "drift setpoints" expected (link_events plan)

let test_compile_join_holds_then_activates () =
  let plan = [ Fault.Node_join { at = 3.5; node = 2 } ] in
  check_events "join"
    [ (0.0, 2, 0.0); (0.0, 3, 0.0); (3.5, 2, 30.0); (3.5, 3, 30.0) ]
    (link_events plan)

let test_churn_validation () =
  let g = fig1 () in
  let bad name plan =
    match Fault.validate g plan with
    | Ok () -> Alcotest.failf "%s: invalid churn op accepted" name
    | Error _ -> ()
  in
  let open Fault in
  bad "flap period 0"
    [ Node_flap { at = 1.0; until = 5.0; node = 0; period = 0.0; duty = 0.5 } ];
  bad "flap duty 0"
    [ Node_flap { at = 1.0; until = 5.0; node = 0; period = 1.0; duty = 0.0 } ];
  bad "flap duty 1"
    [ Node_flap { at = 1.0; until = 5.0; node = 0; period = 1.0; duty = 1.0 } ];
  bad "flap window below one cycle"
    [ Node_flap { at = 1.0; until = 1.4; node = 0; period = 1.0; duty = 0.5 } ];
  bad "flap node out of range"
    [ Node_flap { at = 1.0; until = 5.0; node = 9; period = 1.0; duty = 0.5 } ];
  bad "drift floor > 1"
    [
      Capacity_drift
        { at = 1.0; until = 9.0; link = 0; floor_frac = 1.5; period = 2.0; steps = 2 };
    ];
  bad "drift steps 0"
    [
      Capacity_drift
        { at = 1.0; until = 9.0; link = 0; floor_frac = 0.5; period = 2.0; steps = 0 };
    ];
  bad "drift window below one cycle"
    [
      Capacity_drift
        { at = 1.0; until = 2.5; link = 0; floor_frac = 0.5; period = 2.0; steps = 2 };
    ];
  bad "join at 0" [ Node_join { at = 0.0; node = 0 } ]

let test_gen_churn_shape () =
  let g = fig1 () in
  let draw seed =
    Fault.Gen.plan ~intensity:Fault.Gen.Churn (Rng.create seed) g ~duration:30.0
  in
  Alcotest.(check bool) "churn draws are deterministic" true (draw 3 = draw 3);
  List.iter
    (fun seed ->
      let plan = draw seed in
      (match Fault.validate g plan with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: generated churn invalid: %s" seed m);
      let count p = List.length (List.filter p plan) in
      let flaps = count (function Fault.Node_flap _ -> true | _ -> false) in
      let drifts = count (function Fault.Capacity_drift _ -> true | _ -> false) in
      let joins = count (function Fault.Node_join _ -> true | _ -> false) in
      Alcotest.(check bool) "1-2 flaps" true (flaps >= 1 && flaps <= 2);
      Alcotest.(check bool) "1-2 drifts" true (drifts >= 1 && drifts <= 2);
      Alcotest.(check int) "exactly one join" 1 joins;
      (* Long-horizon: every windowed action clears within the run. *)
      List.iter
        (fun a ->
          if Fault.end_time a > 30.0 then
            Alcotest.failf "seed %d: %s runs past the horizon" seed
              (Fault.op_name a))
        plan)
    [ 1; 2; 3; 4; 5 ];
  (* Churn needs room for its long windows. *)
  match
    Fault.Gen.plan ~intensity:Fault.Gen.Churn (Rng.create 1) g ~duration:5.0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "churn on a 5 s run must be rejected"

let test_gen_protect () =
  let g = fig1 () in
  (* Protecting node 0 leaves nodes 1/2 and the 1-2 edge (links 2/3)
     as the only eligible victims. *)
  let protected_node = 0 in
  let touches_protected a =
    let open Fault in
    let link_bad l =
      let lk = Multigraph.link g l in
      lk.Multigraph.src = protected_node || lk.Multigraph.dst = protected_node
    in
    match a with
    | Link_down { link; _ } | Link_up { link; _ } | Capacity_set { link; _ }
    | Capacity_ramp { link; _ } | Loss_window { link; _ }
    | Capacity_drift { link; _ } ->
      link_bad link
    | Node_crash { node; _ } | Node_restart { node; _ }
    | Node_flap { node; _ } | Node_join { node; _ } ->
      node = protected_node
    | Ctrl_drop _ | Ctrl_delay _ -> false
  in
  List.iter
    (fun (intensity, duration) ->
      List.iter
        (fun seed ->
          let plan =
            Fault.Gen.plan ~intensity ~protect:[ protected_node ]
              (Rng.create seed) g ~duration
          in
          List.iter
            (fun a ->
              if touches_protected a then
                Alcotest.failf "seed %d: %s touches the protected node" seed
                  (Fault.op_name a))
            plan)
        [ 1; 2; 3; 4; 5; 6; 7 ])
    [
      (Fault.Gen.Light, 20.0); (Fault.Gen.Moderate, 20.0);
      (Fault.Gen.Heavy, 20.0); (Fault.Gen.Churn, 30.0);
    ];
  (* Byte-stability: an empty protect set consumes exactly the draws
     of the pre-protect generator. *)
  List.iter
    (fun seed ->
      let with_empty =
        Fault.Gen.plan ~intensity:Fault.Gen.Heavy ~protect:[] (Rng.create seed)
          g ~duration:20.0
      and without =
        Fault.Gen.plan ~intensity:Fault.Gen.Heavy (Rng.create seed) g
          ~duration:20.0
      in
      Alcotest.(check bool) "empty protect is draw-identical" true
        (with_empty = without))
    [ 1; 5; 9 ];
  (* Protecting everything leaves no victims. *)
  match
    Fault.Gen.plan ~protect:[ 0; 1; 2 ] (Rng.create 1) g ~duration:20.0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fully protected graph must be rejected"

let () =
  Alcotest.run "fault"
    [
      ( "codec",
        [
          Alcotest.test_case "plan round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "every variant round-trips" `Quick
            test_singleton_roundtrip;
          Alcotest.test_case "strict decoder rejects" `Quick test_decode_rejects;
          Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        ] );
      ( "plan",
        [
          Alcotest.test_case "normalize is stable" `Quick test_normalize_stable;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "compile",
        [
          Alcotest.test_case "empty plan" `Quick test_compile_empty;
          Alcotest.test_case "legacy failure plan" `Quick test_compile_failure_plan;
          Alcotest.test_case "equal-time tie-break" `Quick
            test_compile_tie_break_order;
          Alcotest.test_case "node crash incident links" `Quick
            test_compile_node_crash_incident;
          Alcotest.test_case "ramp endpoints" `Quick test_compile_ramp_endpoints;
          Alcotest.test_case "ctrl window merge" `Quick test_compile_ctrl_merge;
          Alcotest.test_case "ctrl equal-time coalesce" `Quick
            test_compile_ctrl_equal_time_coalesce;
          Alcotest.test_case "invalid plan raises" `Quick test_compile_invalid_raises;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "valid and clears in time" `Quick
            test_gen_valid_and_clears;
          Alcotest.test_case "bad arguments" `Quick test_gen_bad_args;
        ] );
      ( "severing",
        [
          Alcotest.test_case "one bounded crash window" `Quick
            test_severing_shape;
          Alcotest.test_case "victim pinned" `Quick test_severing_victim_pinned;
          Alcotest.test_case "codec round-trip" `Quick test_severing_roundtrip;
          Alcotest.test_case "all incident links down" `Quick
            test_severing_severs_all_routes;
          Alcotest.test_case "name + determinism" `Quick
            test_severing_name_and_determinism;
          Alcotest.test_case "victim ignored by other intensities" `Quick
            test_severing_victim_ignored_elsewhere;
        ] );
      ( "churn",
        [
          Alcotest.test_case "v2 round-trip" `Quick test_v2_roundtrip;
          Alcotest.test_case "version pinning" `Quick test_version_pinning;
          Alcotest.test_case "flap cycles" `Quick test_compile_flap_cycles;
          Alcotest.test_case "drift setpoints" `Quick test_compile_drift_setpoints;
          Alcotest.test_case "join holds then activates" `Quick
            test_compile_join_holds_then_activates;
          Alcotest.test_case "validation" `Quick test_churn_validation;
          Alcotest.test_case "generated churn shape" `Quick test_gen_churn_shape;
          Alcotest.test_case "protect honored" `Quick test_gen_protect;
        ] );
    ]
