(* The empirical-traffic layer: strict CDF parsing (reject anything
   non-monotone, unnormalized or malformed), inverse-transform
   sampling against the closed-form moments, and the open-loop load
   generator's offered-load accounting. *)

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let err msg = function
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error e -> e

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_err msg fragment r =
  let e = err msg r in
  if not (contains e fragment) then
    Alcotest.failf "%s: error %S does not mention %S" msg e fragment

(* ---------- parser ---------- *)

let test_parse_accepts_comments_and_blanks () =
  let c =
    ok
      (Cdf.parse
         "# heavy-tailed mix\n\n  1000 0.5   # half tiny\n\t2000\t1.0\r\n\n")
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "points survive comments, tabs and CRLF"
    [ (1000.0, 0.5); (2000.0, 1.0) ]
    (Cdf.points c)

let test_parse_rejects_non_monotone_probs () =
  check_err "decreasing probability" "non-monotone"
    (Cdf.parse "1000 0.6\n2000 0.5\n3000 1.0");
  check_err "probability above 1" "outside [0, 1]" (Cdf.parse "1000 1.4")

let test_parse_rejects_unnormalized_tail () =
  check_err "tail below 1" "unnormalized" (Cdf.parse "1000 0.4\n2000 0.9");
  (* Within 1e-9 of 1.0 is accepted and clamped to exactly 1. *)
  let c = ok (Cdf.parse "1000 0.5\n2000 0.9999999999") in
  Alcotest.(check (float 0.0)) "tail clamped to 1" 1.0
    (snd (List.nth (Cdf.points c) 1))

let test_parse_rejects_bad_sizes () =
  check_err "non-increasing sizes" "strictly increasing"
    (Cdf.parse "1000 0.4\n1000 1.0");
  check_err "negative size" "not a positive number" (Cdf.parse "-5 1.0");
  check_err "nan prob" "outside [0, 1]" (Cdf.parse "1000 nan")

let test_parse_rejects_empty_and_garbage () =
  check_err "empty file" "empty CDF" (Cdf.parse "");
  check_err "comments only" "empty CDF" (Cdf.parse "# nothing\n\n# here\n");
  check_err "garbage tokens" "line 2" (Cdf.parse "1000 0.5\nhello world\n");
  check_err "wrong arity" "line 1" (Cdf.parse "1000 0.5 7\n");
  check_err "missing file" "" (Cdf.of_file "/nonexistent/x.cdf")

let test_websearch_file_matches_builtin () =
  (* The shipped example CDF is byte-for-byte the built-in websearch
     distribution (the loadsweep docs point users at either). *)
  let c = ok (Cdf.of_file "websearch.cdf") in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "test/websearch.cdf == Cdf.websearch" (Cdf.points Cdf.websearch)
    (Cdf.points c)

(* ---------- sampler vs closed forms ---------- *)

let test_quantile_inverts_cdf () =
  let c = ok (Cdf.parse "1000 0.25\n2000 0.5\n4000 1.0") in
  let q = Cdf.quantile c in
  Alcotest.(check (float 1e-9)) "point mass at the first size" 1000.0 (q 0.1);
  Alcotest.(check (float 1e-9)) "boundary" 1000.0 (q 0.25);
  Alcotest.(check (float 1e-9)) "interpolated" 1500.0 (q 0.375);
  Alcotest.(check (float 1e-9)) "q=1 is the largest size" 4000.0 (q 1.0);
  Alcotest.(check (float 1e-9))
    "mean = p1 s1 + sum (dp)(midpoint)"
    ((0.25 *. 1000.0) +. (0.25 *. 1500.0) +. (0.5 *. 3000.0))
    (Cdf.mean c)

let prop_sample_mean_matches_cdf_mean =
  (* Inverse-transform sampling must reproduce the distribution the
     closed forms describe: the sample mean of n draws converges on
     Cdf.mean within a few relative standard errors. *)
  QCheck.Test.make ~count:60 ~name:"inverse-transform sampling reproduces the mean"
    (QCheck.int_bound 999_999) (fun seed ->
      let rng = Rng.create (seed + 11) in
      (* A random small CDF: 2-5 points, sizes growing, last prob 1. *)
      let n = 2 + Rng.int rng 4 in
      let sizes =
        let s = ref 0.0 in
        List.init n (fun _ ->
            s := !s +. 100.0 +. (Rng.float rng *. 10_000.0);
            !s)
      in
      let probs =
        let raw = List.init n (fun _ -> 0.05 +. Rng.float rng) in
        let total = List.fold_left ( +. ) 0.0 raw in
        let acc = ref 0.0 in
        List.map
          (fun p ->
            acc := !acc +. (p /. total);
            Float.min 1.0 !acc)
          raw
      in
      let probs = List.mapi (fun i p -> if i = n - 1 then 1.0 else p) probs in
      let c =
        match Cdf.of_points (List.combine sizes probs) with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_reportf "seed %d: generated bad CDF: %s" seed e
      in
      let draws = 60_000 in
      let sum = ref 0.0 and sumsq = ref 0.0 in
      for _ = 1 to draws do
        let x = Cdf.sample c rng in
        sum := !sum +. x;
        sumsq := !sumsq +. (x *. x)
      done;
      let m = !sum /. float_of_int draws in
      let var = (!sumsq /. float_of_int draws) -. (m *. m) in
      let se = sqrt (Float.max var 0.0 /. float_of_int draws) in
      let expected = Cdf.mean c in
      if Float.abs (m -. expected) > (5.0 *. se) +. (1e-9 *. expected) then
        QCheck.Test.fail_reportf
          "seed %d: sample mean %.2f vs closed-form %.2f (se %.3f)" seed m
          expected se;
      true)

(* ---------- load generator ---------- *)

let test_loadgen_deals_and_accounts () =
  let rng = Rng.create 5 in
  let gen =
    Loadgen.generate rng ~cdf:Cdf.websearch ~load:0.5 ~capacity_mbps:100.0
      ~conns:3 ~duration:500.0
  in
  let listed =
    Array.fold_left (fun acc l -> acc + List.length l) 0 gen.Loadgen.per_conn
  in
  Alcotest.(check int) "every arrival dealt to a connection"
    gen.Loadgen.arrivals listed;
  let bytes =
    Array.fold_left
      (fun acc l -> List.fold_left (fun a (_, b) -> a + b) acc l)
      0 gen.Loadgen.per_conn
  in
  Alcotest.(check int) "offered bytes add up" gen.Loadgen.offered_bytes bytes;
  Array.iter
    (fun l ->
      ignore
        (List.fold_left
           (fun prev (t, b) ->
             Alcotest.(check bool) "schedule time-sorted" true (t >= prev);
             Alcotest.(check bool) "within window" true (t < 500.0);
             Alcotest.(check bool) "positive size" true (b > 0);
             t)
           0.0 l))
    gen.Loadgen.per_conn;
  Alcotest.(check (float 0.0)) "offered_load consistent"
    (float_of_int bytes *. 8.0 /. (100e6 *. 500.0))
    gen.Loadgen.offered_load

let test_loadgen_rejects_bad_inputs () =
  let gen ?(load = 0.5) ?(capacity = 100.0) ?(conns = 1) ?(duration = 10.0) () =
    Loadgen.generate (Rng.create 1) ~cdf:Cdf.websearch ~load
      ~capacity_mbps:capacity ~conns ~duration
  in
  let rejected f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "load 0" true (rejected (fun () -> gen ~load:0.0 ()));
  Alcotest.(check bool) "load > 1" true (rejected (fun () -> gen ~load:1.5 ()));
  Alcotest.(check bool) "no capacity" true (rejected (fun () -> gen ~capacity:0.0 ()));
  Alcotest.(check bool) "no conns" true (rejected (fun () -> gen ~conns:0 ()));
  Alcotest.(check bool) "no duration" true
    (rejected (fun () -> gen ~duration:0.0 ()))

let () =
  Alcotest.run "traffic"
    [
      ( "cdf-parse",
        [
          Alcotest.test_case "comments and blanks" `Quick
            test_parse_accepts_comments_and_blanks;
          Alcotest.test_case "non-monotone rejected" `Quick
            test_parse_rejects_non_monotone_probs;
          Alcotest.test_case "unnormalized tail rejected" `Quick
            test_parse_rejects_unnormalized_tail;
          Alcotest.test_case "bad sizes rejected" `Quick
            test_parse_rejects_bad_sizes;
          Alcotest.test_case "empty and garbage rejected" `Quick
            test_parse_rejects_empty_and_garbage;
          Alcotest.test_case "shipped file matches builtin" `Quick
            test_websearch_file_matches_builtin;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "quantile closed forms" `Quick
            test_quantile_inverts_cdf;
          QCheck_alcotest.to_alcotest prop_sample_mean_matches_cdf_mean;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "dealing and accounting" `Quick
            test_loadgen_deals_and_accounts;
          Alcotest.test_case "bad inputs rejected" `Quick
            test_loadgen_rejects_bad_inputs;
        ] );
    ]
