(* Golden-seed regression and jobs-determinism tests for the finite
   shared-buffer study (lib/experiments/buffers.ml). test/golden/
   buffers_seed23.json is the exact `empower_eval buffers --seed 23
   -d 12 --pool 16 --pool 64 --alpha 1.0 --ecn 0 --ecn 8 --json`
   output; replaying those parameters must reproduce it byte for
   byte, at any --jobs count. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_path = Filename.concat "golden" "buffers_seed23.json"

let jget name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "golden report: missing field %S" name

let jint name j =
  match Obs.Json.to_int_opt (jget name j) with
  | Some i -> i
  | None -> Alcotest.failf "golden field %S: expected integer" name

let jfloat name j =
  match Obs.Json.to_float_opt (jget name j) with
  | Some f -> f
  | None -> Alcotest.failf "golden field %S: expected number" name

let jlist name of_json j =
  match jget name j with
  | Obs.Json.List xs -> List.map of_json xs
  | _ -> Alcotest.failf "golden field %S: expected list" name

let golden_text () = String.trim (read_file golden_path)

let golden_params () =
  let j =
    match Obs.Json.parse (golden_text ()) with
    | Ok j -> j
    | Error m -> Alcotest.failf "%s: %s" golden_path m
  in
  let int_of j =
    match Obs.Json.to_int_opt j with
    | Some i -> i
    | None -> Alcotest.failf "golden axis: expected integer"
  in
  let float_of j =
    match Obs.Json.to_float_opt j with
    | Some f -> f
    | None -> Alcotest.failf "golden axis: expected number"
  in
  ( jint "seed" j,
    jfloat "duration" j,
    jlist "pools" int_of j,
    jlist "alphas" float_of j,
    jlist "ecns" int_of j )

let rerun ?jobs () =
  let seed, duration, pools, alphas, ecns = golden_params () in
  Obs.Json.to_string
    (Figure_json.buffers
       (Buffers.sweep ~seed ~duration ~pools ~alphas ~ecns ?jobs ()))

let test_golden_replay () =
  (* The parameters embedded in the golden reproduce it exactly —
     goodputs, drop counts, CE marks, pool peaks. Regenerate with the
     command in the header comment if an intentional engine or format
     change lands. *)
  Alcotest.(check string) "golden buffers byte-identical" (golden_text ())
    (rerun ())

let test_congestive_contrast () =
  (* The study's headline claim, pinned on the golden itself: on the
     deep-pool ECN point the DCTCP sender absorbs the marks without a
     single tail-drop while Reno keeps overflowing the pool. *)
  let j =
    match Obs.Json.parse (golden_text ()) with
    | Ok j -> j
    | Error m -> Alcotest.failf "%s: %s" golden_path m
  in
  let points =
    match jget "points" j with
    | Obs.Json.List pts -> pts
    | _ -> Alcotest.failf "golden field \"points\": expected list"
  in
  let deep_ecn =
    List.filter
      (fun p -> jint "pool_frames" p = 64 && jint "ecn_frames" p > 0)
      points
  in
  Alcotest.(check bool) "has a deep-pool ECN point" true (deep_ecn <> []);
  List.iter
    (fun p ->
      let variants =
        match jget "variants" p with
        | Obs.Json.List vs -> vs
        | _ -> Alcotest.failf "golden field \"variants\": expected list"
      in
      let find name =
        List.find
          (fun v ->
            match Obs.Json.to_string_opt (jget "variant" v) with
            | Some s -> s = name
            | None -> false)
          variants
      in
      let reno = find "reno" and dctcp = find "dctcp" in
      Alcotest.(check bool) "reno tail-drops" true (jint "queue_drops" reno > 0);
      Alcotest.(check int) "dctcp has no drops" 0 (jint "queue_drops" dctcp);
      Alcotest.(check bool) "dctcp sees marks" true (jint "ecn_marks" dctcp > 0);
      Alcotest.(check bool) "dctcp goodput at least reno's" true
        (jfloat "goodput_mbps" dctcp >= jfloat "goodput_mbps" reno))
    deep_ecn

let test_jobs_byte_identity () =
  (* The --jobs contract (test_exec pattern): any worker count yields
     byte-identical figure JSON. *)
  let seq = rerun ~jobs:1 () in
  Alcotest.(check string) "--jobs 2 byte-identical" seq (rerun ~jobs:2 ());
  Alcotest.(check string) "--jobs 3 byte-identical" seq (rerun ~jobs:3 ())

let test_seed_changes_output () =
  (* Guard against the golden accidentally pinning seed-independent
     output: a different seed must change the figure. *)
  let _, duration, pools, alphas, ecns = golden_params () in
  let at seed =
    Obs.Json.to_string
      (Figure_json.buffers (Buffers.sweep ~seed ~duration ~pools ~alphas ~ecns ()))
  in
  Alcotest.(check bool) "seed matters" false (at 23 = at 24)

let () =
  Alcotest.run "buffers"
    [
      ( "golden",
        [
          Alcotest.test_case "replay seed 23" `Quick test_golden_replay;
          Alcotest.test_case "congestive contrast" `Quick
            test_congestive_contrast;
          Alcotest.test_case "seed changes output" `Quick
            test_seed_changes_output;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs byte-identity" `Slow test_jobs_byte_identity;
        ] );
    ]
