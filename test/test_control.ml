(* Tests for utilities, prices and the single-/multi-path congestion
   controllers, including the Figure 1 rate split. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let fig1 () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  (g, Domain.single_domain_per_tech g)

let fig1_routes g =
  (* Route 1: PLC a->b (4), WiFi b->c (2). Route 2: WiFi a->b (0), WiFi
     b->c (2). *)
  [ Paths.of_links g [ 4; 2 ]; Paths.of_links g [ 0; 2 ] ]

(* --- Utility --- *)

let test_utility_proportional_fair () =
  let u = Utility.proportional_fair in
  check_float "U(0)" 0.0 (u.Utility.u 0.0);
  check_float "U'(0)" 1.0 (u.Utility.u' 0.0);
  check_float "U'inv(1)" 0.0 (u.Utility.u'_inv 1.0);
  check_float "U'inv(0.1)" 9.0 (u.Utility.u'_inv 0.1);
  check_float "U'inv clamped" 0.0 (u.Utility.u'_inv 5.0);
  check_float "total" (2.0 *. log 2.0) (Utility.total u [ 1.0; 1.0 ])

let test_utility_inverse_roundtrip () =
  List.iter
    (fun u ->
      List.iter
        (fun x ->
          check_float ~eps:1e-6
            (Printf.sprintf "%s roundtrip at %.1f" u.Utility.name x)
            x
            (u.Utility.u'_inv (u.Utility.u' x)))
        [ 0.0; 0.5; 1.0; 10.0; 100.0 ])
    [
      Utility.proportional_fair;
      Utility.weighted_proportional_fair ~weight:2.5;
      Utility.alpha_fair ~alpha:2.0;
      Utility.alpha_fair ~alpha:0.5;
    ]

let test_utility_concavity () =
  List.iter
    (fun u ->
      let rec check_decreasing prev = function
        | [] -> ()
        | x :: tl ->
          let d = u.Utility.u' x in
          Alcotest.(check bool) "U' decreasing" true (d < prev);
          check_decreasing d tl
      in
      check_decreasing (u.Utility.u' 0.0 +. 1.0) [ 0.0; 1.0; 2.0; 5.0; 20.0 ])
    [ Utility.proportional_fair; Utility.alpha_fair ~alpha:1.5 ]

(* --- Problem / Price --- *)

let test_problem_structure () =
  let g, dom = fig1 () in
  let routes = fig1_routes g in
  let p = Problem.make g dom ~flows:[ routes ] in
  Alcotest.(check int) "2 routes" 2 (Problem.n_routes p);
  Alcotest.(check int) "1 flow" 1 (Problem.n_flows p);
  Alcotest.(check (list int)) "flow routes" [ 0; 1 ] p.Problem.flow_routes.(0);
  check_float "flow rate" 7.0 (Problem.flow_rate p [| 3.0; 4.0 |] 0);
  let p2 = Problem.make g dom ~flows:[ [ List.hd routes ]; [ List.nth routes 1 ] ] in
  Alcotest.(check int) "2 flows" 2 (Problem.n_flows p2);
  Alcotest.(check int) "flow of route 1" 1 p2.Problem.flow_of.(1)

let test_problem_validation () =
  let g, dom = fig1 () in
  Alcotest.(check bool) "bad delta rejected" true
    (try
       ignore (Problem.make ~delta:1.5 g dom ~flows:[]);
       false
     with Invalid_argument _ -> true);
  let dead = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 0.0) ] in
  let ddom = Domain.single_domain_per_tech dead in
  Alcotest.(check bool) "unusable route rejected" true
    (try
       ignore (Problem.make dead ddom ~flows:[ [ { Paths.links = [ 0 ] } ] ]);
       false
     with Invalid_argument _ -> true)

let test_airtime_demand () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  (* x = (10, 0): Route 1 only. Link 2 (wifi b->c) carries 10 Mbps:
     demand = 10/30. Link 4 (plc) carries 10: demand = 1. *)
  let x = [| 10.0; 0.0 |] in
  check_float "wifi b->c demand" (1.0 /. 3.0) (Problem.airtime_demand p x 2);
  check_float "plc demand" 1.0 (Problem.airtime_demand p x 4);
  check_float "unused wifi a->b" 0.0 (Problem.airtime_demand p x 0)

let test_feasibility () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  (* The optimum (10, 20/3) saturates both constraints. *)
  Alcotest.(check bool) "optimum feasible" true
    (Problem.feasible ~slack:1e-6 p [| 10.0; 20.0 /. 3.0 |]);
  Alcotest.(check bool) "above optimum infeasible" false
    (Problem.feasible p [| 10.0; 8.0 |]);
  Alcotest.(check bool) "zero feasible" true (Problem.feasible p [| 0.0; 0.0 |])

let test_price_airtimes () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  let price = Price.create p in
  let y = Price.airtimes price ~x:[| 10.0; 0.0 |] in
  (* y for wifi b->c: all wifi demands = 10/30 (link 2 only). *)
  check_float "y wifi" (1.0 /. 3.0) y.(2);
  (* y for plc a->b: 10/10 = 1. *)
  check_float "y plc" 1.0 y.(4);
  (* Routes on link caching. *)
  Alcotest.(check (list int)) "routes on shared wifi" [ 0; 1 ]
    (Price.routes_on_link price 2)

let test_price_gamma_updates () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  let price = Price.create p in
  let n = Multigraph.num_links g in
  (* Overloaded airtime raises gamma; underloaded decays to zero. *)
  Price.step_gamma price ~y:(Array.make n 2.0) ~alpha:0.1;
  Alcotest.(check bool) "gamma rose" true ((Price.gamma price).(0) > 0.0);
  for _ = 1 to 100 do
    Price.step_gamma price ~y:(Array.make n 0.0) ~alpha:0.1
  done;
  check_float "gamma decayed to 0" 0.0 (Price.gamma price).(0)

let test_price_route_costs () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  let price = Price.create p in
  let n = Multigraph.num_links g in
  Price.step_gamma price ~y:(Array.make n 2.0) ~alpha:1.0;
  (* All gammas = 1 now. q_r = sum over hops of d_l * |I_l|. *)
  let q = Price.route_costs price in
  (* Route 1: plc hop d=1/10, |I|=2 -> 0.2 ; wifi hop d=1/30, |I|=4 ->
     4/30. *)
  check_float ~eps:1e-9 "q route 1" (0.2 +. (4.0 /. 30.0)) q.(0);
  (* Route 2: wifi a->b d=1/15 |I|=4 -> 4/15 ; + 4/30. *)
  check_float ~eps:1e-9 "q route 2" ((4.0 /. 15.0) +. (4.0 /. 30.0)) q.(1)

(* --- Alpha heuristic --- *)

let test_alpha_initial () =
  check_float "3-hop multipath" 0.02
    (Alpha.initial ~single_path:false ~longest_route_hops:3);
  check_float "two-hop" 0.04 (Alpha.initial ~single_path:false ~longest_route_hops:2);
  check_float "single path" 0.04 (Alpha.initial ~single_path:true ~longest_route_hops:3);
  check_float "one-hop" 0.08 (Alpha.initial ~single_path:false ~longest_route_hops:1)

let test_alpha_halves_on_oscillation () =
  let a = Alpha.create ~single_path:false ~longest_route_hops:3 in
  let a0 = Alpha.current a in
  (* Feed a growing oscillation: +1, -2, +3, -4 ... amplitudes
     non-decreasing, every step a sign flip. *)
  let rate = ref 10.0 in
  for i = 1 to 20 do
    let amp = float_of_int i in
    rate := !rate +. (if i mod 2 = 0 then -.amp else amp);
    Alpha.observe a !rate
  done;
  Alcotest.(check bool) "alpha halved" true (Alpha.current a < a0)

let test_alpha_stable_rate_keeps_alpha () =
  let a = Alpha.create ~single_path:false ~longest_route_hops:3 in
  let a0 = Alpha.current a in
  for i = 1 to 100 do
    Alpha.observe a (10.0 +. (0.001 *. float_of_int i))
  done;
  check_float "unchanged" a0 (Alpha.current a)

let test_alpha_fixed_never_adapts () =
  let a = Alpha.fixed 0.05 in
  for i = 1 to 50 do
    Alpha.observe a (if i mod 2 = 0 then 0.0 else 100.0)
  done;
  check_float "still 0.05" 0.05 (Alpha.current a)

(* --- Controllers --- *)

let test_single_cc_one_link () =
  (* One flow, one direct 10 Mbps link, single collision domain: the
     proportional-fair optimum under sum-airtime <= 1 is x = 10. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let p = Problem.make g dom ~flows:[ [ Paths.of_links g [ 0 ] ] ] in
  let res = Single_cc.solve ~slots:4000 p in
  check_float ~eps:0.3 "x -> 10" 10.0 res.Cc_result.flow_rates.(0);
  Alcotest.(check bool) "feasible" true
    (Problem.feasible ~slack:0.05 p res.Cc_result.rates)

let test_single_cc_two_flows_fair () =
  (* Two flows sharing one 12 Mbps link: proportional fairness splits
     it evenly (identical utilities). *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 12.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let r () = Paths.of_links g [ 0 ] in
  let p = Problem.make g dom ~flows:[ [ r () ]; [ r () ] ] in
  let res = Single_cc.solve ~slots:4000 p in
  check_float ~eps:0.3 "flow 0 half" 6.0 res.Cc_result.flow_rates.(0);
  check_float ~eps:0.3 "flow 1 half" 6.0 res.Cc_result.flow_rates.(1)

let test_single_cc_rejects_multipath () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Single_cc.solve p);
       false
     with Invalid_argument _ -> true)

(* EMPoWER starts injection at the routing-estimated rates; compute
   them the way the source would (standalone R(P) per route from the
   multipath procedure). *)
let routing_init g dom flows =
  Array.of_list
    (List.concat_map (List.map (fun p -> Update.path_rate g dom p)) flows)

let test_multi_cc_fig1 () =
  (* The Figure 1 scenario: total must approach 10 + 20/3 = 16.67. *)
  let g, dom = fig1 () in
  let comb = Multipath.find g dom ~src:0 ~dst:2 in
  let x_init = Array.of_list (List.map snd comb.Multipath.paths) in
  let p = Problem.make g dom ~flows:[ Multipath.routes comb ] in
  let res = Multi_cc.solve ~x_init ~slots:8000 p in
  check_float ~eps:0.5 "total ~16.67" (50.0 /. 3.0) res.Cc_result.flow_rates.(0);
  Alcotest.(check bool) "feasible with slack" true
    (Problem.feasible ~slack:0.05 p res.Cc_result.rates)

let test_multi_cc_respects_delta () =
  let g, dom = fig1 () in
  let p = Problem.make ~delta:0.3 g dom ~flows:[ fig1_routes g ] in
  let res = Multi_cc.solve ~slots:8000 p in
  (* With margin 0.3, airtime targets shrink to 0.7: max total is
     0.7 * 16.67 = 11.67. *)
  Alcotest.(check bool) "total reduced" true (res.Cc_result.flow_rates.(0) < 13.0);
  Alcotest.(check bool) "still substantial" true (res.Cc_result.flow_rates.(0) > 9.0)

let test_multi_cc_offloads_under_contention () =
  (* Figure 9's adaptation: when a second flow saturates the WiFi
     medium, flow 1 should move (mostly) to PLC. Topology: flow A has
     a PLC route and a WiFi route; flow B has only the WiFi medium. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:
        [
          (0, 1, 1, 20.0) (* plc a->b, flow A route 1 *);
          (0, 1, 0, 20.0) (* wifi a->b, flow A route 2 *);
          (2, 3, 0, 20.0) (* wifi c->d, flow B *);
        ]
  in
  let dom = Domain.single_domain_per_tech g in
  let route_plc = Paths.of_links g [ 0 ] in
  let route_wifi = Paths.of_links g [ 2 ] in
  let route_b = Paths.of_links g [ 4 ] in
  let flows = [ [ route_plc; route_wifi ]; [ route_b ] ] in
  let p = Problem.make g dom ~flows in
  let res = Multi_cc.solve ~x_init:(routing_init g dom flows) ~slots:12000 p in
  (* Flow A keeps the full PLC rate; WiFi is split between A's second
     route and B. Proportional fairness: flow A has ~20 from PLC
     already, so B (poorer) gets almost all of WiFi. *)
  Alcotest.(check bool) "A's PLC route nearly full" true (res.Cc_result.rates.(0) > 17.0);
  Alcotest.(check bool) "B gets most of WiFi" true (res.Cc_result.rates.(2) > 12.0);
  Alcotest.(check bool) "A's WiFi route mostly ceded" true
    (res.Cc_result.rates.(1) < res.Cc_result.rates.(2))

let test_multi_cc_convergence_detection () =
  let g, dom = fig1 () in
  let flows = [ fig1_routes g ] in
  let p = Problem.make g dom ~flows in
  let res = Multi_cc.solve ~x_init:(routing_init g dom flows) ~slots:6000 p in
  match Cc_result.convergence_slot res with
  | None -> Alcotest.fail "never converged"
  | Some s ->
    Alcotest.(check bool) "converges well before the end" true (s < 1000);
    Alcotest.(check bool) "nonzero" true (s >= 0)

let test_multi_cc_external_airtime () =
  (* An external node saturates the single WiFi medium: EMPoWER should
     concede it and use PLC only (Section 4.3's discussion). *)
  let g =
    Multigraph.create ~n_nodes:2 ~n_techs:2
      ~edges:[ (0, 1, 0, 20.0) (* wifi *); (0, 1, 1, 20.0) (* plc *) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let ext = Array.make (Multigraph.num_links g) 0.0 in
  ext.(0) <- 1.0;
  ext.(1) <- 1.0;
  let flows = [ [ Paths.of_links g [ 0 ]; Paths.of_links g [ 2 ] ] ] in
  let p = Problem.make ~external_airtime:ext g dom ~flows in
  let res = Multi_cc.solve ~x_init:(routing_init g dom flows) ~slots:8000 p in
  Alcotest.(check bool) "wifi route starved" true (res.Cc_result.rates.(0) < 1.0);
  Alcotest.(check bool) "plc route full" true (res.Cc_result.rates.(1) > 17.0)

let test_multi_cc_on_slot_callback () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  let calls = ref 0 in
  let _ = Multi_cc.solve_tracked ~slots:50 ~on_slot:(fun _ _ -> incr calls) p in
  Alcotest.(check int) "one call per slot" 50 !calls

let test_multi_cc_total_ack_loss_freezes_rates () =
  (* Every report lost: the flow's rates and anchors must hold at
     x_init for the whole run (only the duals move). *)
  let g, dom = fig1 () in
  let flows = [ fig1_routes g ] in
  let p = Problem.make g dom ~flows in
  let x_init = routing_init g dom flows in
  let res =
    Multi_cc.solve ~x_init ~slots:500 ~ack_loss:(fun ~slot:_ ~flow:_ -> true) p
  in
  Array.iteri
    (fun i x0 -> check_float (Printf.sprintf "route %d frozen" i) x0
        res.Cc_result.rates.(i))
    x_init

let test_multi_cc_intermittent_ack_loss_converges () =
  (* Dropping every third report slows the iteration but must not
     move its fixed point: compare against the lossless solve. *)
  let g, dom = fig1 () in
  let flows = [ fig1_routes g ] in
  let p = Problem.make g dom ~flows in
  let x_init = routing_init g dom flows in
  let clean = Multi_cc.solve ~x_init ~slots:8000 p in
  let lossy =
    Multi_cc.solve ~x_init ~slots:12000
      ~ack_loss:(fun ~slot ~flow:_ -> slot mod 3 = 0)
      p
  in
  check_float ~eps:0.5 "same total rate"
    clean.Cc_result.flow_rates.(0) lossy.Cc_result.flow_rates.(0);
  Alcotest.(check bool) "still feasible" true
    (Problem.feasible ~slack:0.05 p lossy.Cc_result.rates)

let test_cc_result_utility () =
  let g, dom = fig1 () in
  let p = Problem.make g dom ~flows:[ fig1_routes g ] in
  let res = Multi_cc.solve ~slots:2000 p in
  let u = Cc_result.final_utility Utility.proportional_fair res in
  Alcotest.(check bool) "utility positive" true (u > 0.0)

let prop_multi_cc_feasible_on_random_networks =
  QCheck.Test.make ~name:"controller allocations ~feasible on random networks"
    ~count:15
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = Residential.generate (Rng.create seed) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let comb = Multipath.find g dom ~src:0 ~dst:(Multigraph.n_nodes g - 1) in
      match Multipath.routes comb with
      | [] -> true
      | routes ->
        let p = Problem.make g dom ~flows:[ routes ] in
        let res = Multi_cc.solve ~slots:4000 p in
        (* Allow a small overshoot: the fixed step size hovers around
           the optimum. *)
        Problem.feasible ~slack:0.08 p res.Cc_result.rates)

let () =
  Alcotest.run "control"
    [
      ( "utility",
        [
          Alcotest.test_case "proportional fair" `Quick test_utility_proportional_fair;
          Alcotest.test_case "inverse roundtrip" `Quick test_utility_inverse_roundtrip;
          Alcotest.test_case "concavity" `Quick test_utility_concavity;
        ] );
      ( "problem",
        [
          Alcotest.test_case "structure" `Quick test_problem_structure;
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "airtime demand" `Quick test_airtime_demand;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
        ] );
      ( "price",
        [
          Alcotest.test_case "airtimes" `Quick test_price_airtimes;
          Alcotest.test_case "gamma updates" `Quick test_price_gamma_updates;
          Alcotest.test_case "route costs" `Quick test_price_route_costs;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "initial values" `Quick test_alpha_initial;
          Alcotest.test_case "halves on oscillation" `Quick
            test_alpha_halves_on_oscillation;
          Alcotest.test_case "stable keeps alpha" `Quick test_alpha_stable_rate_keeps_alpha;
          Alcotest.test_case "fixed never adapts" `Quick test_alpha_fixed_never_adapts;
        ] );
      ( "single-cc",
        [
          Alcotest.test_case "one link" `Quick test_single_cc_one_link;
          Alcotest.test_case "two flows fair" `Quick test_single_cc_two_flows_fair;
          Alcotest.test_case "rejects multipath" `Quick test_single_cc_rejects_multipath;
        ] );
      ( "multi-cc",
        [
          Alcotest.test_case "figure 1 optimum" `Quick test_multi_cc_fig1;
          Alcotest.test_case "respects delta" `Quick test_multi_cc_respects_delta;
          Alcotest.test_case "offloads under contention" `Quick
            test_multi_cc_offloads_under_contention;
          Alcotest.test_case "convergence detection" `Quick
            test_multi_cc_convergence_detection;
          Alcotest.test_case "external airtime" `Quick test_multi_cc_external_airtime;
          Alcotest.test_case "on_slot callback" `Quick test_multi_cc_on_slot_callback;
          Alcotest.test_case "total ack loss freezes rates" `Quick
            test_multi_cc_total_ack_loss_freezes_rates;
          Alcotest.test_case "intermittent ack loss converges" `Quick
            test_multi_cc_intermittent_ack_loss_converges;
          Alcotest.test_case "result utility" `Quick test_cc_result_utility;
          QCheck_alcotest.to_alcotest prop_multi_cc_feasible_on_random_networks;
        ] );
    ]
