(* Timing-wheel vs binary-heap equivalence.

   The engine swapped its event queue from [Pqueue] (kept as the
   reference implementation) to [Wheel]; the golden byte-identity
   contract rests on the two structures popping in exactly the same
   order — minimum priority first, FIFO among ties by global insertion
   sequence. These tests drive both through the same operation
   sequences and compare everything observable. *)

let check_float = Alcotest.(check (float 0.0))

(* --- directed cases --- *)

let test_fifo_ties () =
  let w = Wheel.create () in
  List.iter (fun (p, v) -> Wheel.push w p v) [ (1.0, "a"); (1.0, "b"); (0.5, "c"); (1.0, "d") ];
  Alcotest.(check (option (pair (float 0.0) string))) "min" (Some (0.5, "c")) (Wheel.pop w);
  Alcotest.(check (option (pair (float 0.0) string))) "tie 1" (Some (1.0, "a")) (Wheel.pop w);
  Alcotest.(check (option (pair (float 0.0) string))) "tie 2" (Some (1.0, "b")) (Wheel.pop w);
  Alcotest.(check (option (pair (float 0.0) string))) "tie 3" (Some (1.0, "d")) (Wheel.pop w);
  Alcotest.(check (option (pair (float 0.0) string))) "empty" None (Wheel.pop w)

let test_overflow_migration () =
  (* Entries far beyond the ~250 ms horizon must overflow and come
     back in the right order, interleaved with near entries pushed
     both before and after the cursor advances. *)
  let w = Wheel.create () in
  Wheel.push w 40.0 `Stop;
  Wheel.push w 0.0001 `A;
  Wheel.push w 10.0 `Tick10;
  Wheel.push w 0.1 `Tick;
  Alcotest.(check int) "size" 4 (Wheel.size w);
  Alcotest.(check bool) "a" true (Wheel.pop w = Some (0.0001, `A));
  Alcotest.(check bool) "tick" true (Wheel.pop w = Some (0.1, `Tick));
  (* Push behind the current minimum after the cursor advanced: the
     clamped entry must still pop first. *)
  Wheel.push w 0.1001 `Late;
  Alcotest.(check bool) "late" true (Wheel.pop w = Some (0.1001, `Late));
  Alcotest.(check bool) "t10" true (Wheel.pop w = Some (10.0, `Tick10));
  Alcotest.(check bool) "stop" true (Wheel.pop w = Some (40.0, `Stop));
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_empty_ops () =
  let w = Wheel.create () in
  Alcotest.(check bool) "is_empty" true (Wheel.is_empty w);
  Alcotest.(check bool) "pop" true (Wheel.pop w = None);
  Alcotest.(check bool) "peek" true (Wheel.peek w = None);
  Alcotest.check_raises "top_prio" (Invalid_argument "Wheel.top_prio: empty")
    (fun () -> ignore (Wheel.top_prio w));
  Alcotest.check_raises "drop" (Invalid_argument "Wheel.drop: empty") (fun () ->
      Wheel.drop w);
  (* drop_push on empty degenerates to push, like the heap. *)
  Wheel.drop_push w 1.0 42;
  Alcotest.(check bool) "after drop_push" true (Wheel.pop w = Some (1.0, 42));
  Wheel.push w 2.0 7;
  Wheel.clear w;
  Alcotest.(check int) "cleared" 0 (Wheel.size w)

let test_top_matches_pop () =
  let w = Wheel.create () in
  List.iter (fun p -> Wheel.push w p (int_of_float (p *. 1000.0))) [ 0.3; 0.1; 0.2 ];
  check_float "top_prio" 0.1 (Wheel.top_prio w);
  Alcotest.(check int) "top" 100 (Wheel.top w);
  Wheel.drop w;
  check_float "next top_prio" 0.2 (Wheel.top_prio w)

(* --- QCheck equivalence vs Pqueue --- *)

(* Operation alphabet mirroring the engine's use: pushes with a small
   priority set (forcing same-time ties), pops, and the fused
   drop_push. Priorities mix near-future values (same and adjacent
   wheel buckets) with far timers that exercise the overflow level. *)
type op = Push of float * int | Pop | Drop_push of float * int

let op_gen =
  QCheck.Gen.(
    let prio =
      oneof
        [
          (* dense ties *)
          map (fun i -> float_of_int i *. 0.001) (int_bound 5);
          (* spread within the horizon *)
          map (fun i -> float_of_int i *. 0.013) (int_bound 20);
          (* far timers -> overflow *)
          map (fun i -> 1.0 +. (float_of_int i *. 7.7)) (int_bound 6);
        ]
    in
    frequency
      [
        (5, map2 (fun p v -> Push (p, v)) prio nat);
        (3, return Pop);
        (2, map2 (fun p v -> Drop_push (p, v)) prio nat);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Push (p, v) -> Printf.sprintf "push %g %d" p v
             | Pop -> "pop"
             | Drop_push (p, v) -> Printf.sprintf "drop_push %g %d" p v)
           ops))
    QCheck.Gen.(list_size (int_bound 200) op_gen)

let prop_wheel_matches_pqueue =
  QCheck.Test.make ~count:500 ~name:"wheel pop sequence = heap pop sequence"
    ops_arb (fun ops ->
      let w = Wheel.create () and h = Pqueue.create () in
      List.for_all
        (fun op ->
          match op with
          | Push (p, v) ->
            Wheel.push w p v;
            Pqueue.push h p v;
            Wheel.size w = Pqueue.size h
          | Pop -> Wheel.pop w = Pqueue.pop h
          | Drop_push (p, v) ->
            (* Compare the observable top before the fused op, then
               apply it to both. *)
            let same_top =
              match Pqueue.peek h with
              | None -> Wheel.is_empty w
              | Some top -> Wheel.peek w = Some top
            in
            Wheel.drop_push w p v;
            Pqueue.drop_push h p v;
            same_top)
        ops
      (* Drain both completely: every remaining element must agree,
         ties included. *)
      &&
      let rec drain () =
        match (Wheel.pop w, Pqueue.pop h) with
        | None, None -> true
        | a, b -> a = b && drain ()
      in
      drain ())

let () =
  Alcotest.run "wheel"
    [
      ( "wheel",
        [
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "overflow migration" `Quick test_overflow_migration;
          Alcotest.test_case "empty ops" `Quick test_empty_ops;
          Alcotest.test_case "top/top_prio" `Quick test_top_matches_pop;
          QCheck_alcotest.to_alcotest prop_wheel_matches_pqueue;
        ] );
    ]
