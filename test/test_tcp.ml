(* Tests for the Reno TCP state machine. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let mk ?params ?total () = Tcp.create ?params ~total_bytes:total ()

let test_initial_state () =
  let t = mk () in
  check_float "cwnd" 2.0 (Tcp.cwnd t);
  Alcotest.(check int) "una" 0 (Tcp.snd_una t);
  Alcotest.(check int) "in flight" 0 (Tcp.in_flight t);
  Alcotest.(check bool) "no timer" true (Tcp.rto_deadline t = None);
  Alcotest.(check bool) "unbounded never finishes" false (Tcp.finished t)

let test_segment_count () =
  let t = mk ~total:25000 () in
  (* 25 kB at 12 kB segments -> 3 segments. *)
  Alcotest.(check (option int)) "3 segments" (Some 3) (Tcp.segments_total t)

let test_window_limits_sending () =
  let t = mk () in
  Alcotest.(check (option int)) "seg 0" (Some 0) (Tcp.take_segment t ~now:0.0);
  Alcotest.(check (option int)) "seg 1" (Some 1) (Tcp.take_segment t ~now:0.0);
  Alcotest.(check (option int)) "window full" None (Tcp.take_segment t ~now:0.0);
  Alcotest.(check bool) "timer armed" true (Tcp.rto_deadline t <> None)

let test_slow_start_growth () =
  let t = mk () in
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.1 ~cum_ack:2;
  (* Two segments acked in slow start: cwnd 2 -> 4. *)
  check_float "cwnd grew" 4.0 (Tcp.cwnd t);
  Alcotest.(check int) "una advanced" 2 (Tcp.snd_una t);
  Alcotest.(check bool) "rtt sampled" true (Tcp.srtt t > 0.0)

let test_congestion_avoidance_growth () =
  let params = { Tcp.default_params with init_ssthresh = 2.0 } in
  let t = mk ~params () in
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.1 ~cum_ack:2;
  (* Above ssthresh: cwnd += newly_acked / cwnd = 2/2 = 1. *)
  check_float "linear growth" 3.0 (Tcp.cwnd t)

let test_fast_retransmit () =
  let t = mk () in
  (* Send 5 segments (grow window first). *)
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.05 ~cum_ack:2;
  for _ = 1 to 4 do
    ignore (Tcp.take_segment t ~now:0.1)
  done;
  (* Segment 2 lost; three dup acks for 2. *)
  Tcp.on_ack t ~now:0.2 ~cum_ack:2;
  Tcp.on_ack t ~now:0.21 ~cum_ack:2;
  Alcotest.(check bool) "not yet retransmitting" true
    (Tcp.retransmissions t = 0);
  Tcp.on_ack t ~now:0.22 ~cum_ack:2;
  (* Fast retransmit queued: next take returns seq 2 again. *)
  Alcotest.(check (option int)) "retransmit 2" (Some 2) (Tcp.take_segment t ~now:0.23);
  Alcotest.(check int) "counted" 1 (Tcp.retransmissions t);
  Alcotest.(check bool) "ssthresh dropped" true (Tcp.ssthresh t <= 3.0)

let test_recovery_exit () =
  let t = mk () in
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.05 ~cum_ack:2;
  for _ = 1 to 4 do
    ignore (Tcp.take_segment t ~now:0.1)
  done;
  for i = 1 to 3 do
    Tcp.on_ack t ~now:(0.2 +. (0.01 *. float_of_int i)) ~cum_ack:2
  done;
  ignore (Tcp.take_segment t ~now:0.25);
  (* Full cumulative ack past everything sent: recovery exits, cwnd =
     ssthresh. *)
  Tcp.on_ack t ~now:0.3 ~cum_ack:6;
  check_float "cwnd = ssthresh" (Tcp.ssthresh t) (Tcp.cwnd t);
  Alcotest.(check int) "una" 6 (Tcp.snd_una t)

let test_rto_go_back_n () =
  let t = mk () in
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.05 ~cum_ack:1;
  ignore (Tcp.take_segment t ~now:0.1);
  ignore (Tcp.take_segment t ~now:0.1);
  (* Timeout: cwnd collapses, everything from una re-sent. *)
  Tcp.on_rto t ~now:2.0;
  check_float "cwnd 1" 1.0 (Tcp.cwnd t);
  Alcotest.(check int) "in flight reset" 0 (Tcp.in_flight t);
  (match Tcp.take_segment t ~now:2.0 with
  | Some seq -> Alcotest.(check int) "resend from una" (Tcp.snd_una t) seq
  | None -> Alcotest.fail "expected a retransmission");
  Alcotest.(check bool) "marked as retransmission" true (Tcp.retransmissions t > 0)

let test_rto_backoff () =
  let t = mk () in
  ignore (Tcp.take_segment t ~now:0.0);
  let d1 = Option.get (Tcp.rto_deadline t) in
  Tcp.on_rto t ~now:d1;
  let d2 = Option.get (Tcp.rto_deadline t) in
  Tcp.on_rto t ~now:d2;
  let d3 = Option.get (Tcp.rto_deadline t) in
  Alcotest.(check bool) "exponential backoff" true (d3 -. d2 > (d2 -. d1) *. 1.5)

let test_finished () =
  let t = mk ~total:20000 () in
  (* 2 segments. *)
  ignore (Tcp.take_segment t ~now:0.0);
  ignore (Tcp.take_segment t ~now:0.0);
  Alcotest.(check (option int)) "no more data" None (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.1 ~cum_ack:2;
  Alcotest.(check bool) "finished" true (Tcp.finished t);
  Alcotest.(check bool) "timer cleared" true (Tcp.rto_deadline t = None)

let test_rtt_estimation () =
  let t = mk () in
  ignore (Tcp.take_segment t ~now:0.0);
  Tcp.on_ack t ~now:0.08 ~cum_ack:1;
  check_float ~eps:1e-6 "first srtt = rtt" 0.08 (Tcp.srtt t);
  ignore (Tcp.take_segment t ~now:0.1);
  Tcp.on_ack t ~now:0.26 ~cum_ack:2;
  (* srtt = 0.875*0.08 + 0.125*0.16 = 0.09. *)
  check_float ~eps:1e-6 "ewma" 0.09 (Tcp.srtt t)

let test_dupack_ignored_when_idle () =
  let t = mk () in
  (* Nothing in flight: dup acks must not trigger anything. *)
  Tcp.on_ack t ~now:0.1 ~cum_ack:0;
  Tcp.on_ack t ~now:0.2 ~cum_ack:0;
  Tcp.on_ack t ~now:0.3 ~cum_ack:0;
  check_float "cwnd unchanged" 2.0 (Tcp.cwnd t);
  Alcotest.(check int) "no retransmissions" 0 (Tcp.retransmissions t)

(* Property: simulate an ideal lossless pipe; TCP must deliver all
   segments, never shrink below 1 segment, and keep in_flight within
   the window. *)
let prop_lossless_pipe_completes =
  QCheck.Test.make ~name:"lossless pipe completes in order" ~count:40
    QCheck.(pair (int_range 1 60) (int_bound 10000))
    (fun (segments, seed) ->
      let rng = Rng.create seed in
      let t = mk ~total:(segments * Tcp.default_params.Tcp.segment_bytes) () in
      let now = ref 0.0 in
      let inflight = Queue.create () in
      let received = ref 0 in
      let steps = ref 0 in
      while (not (Tcp.finished t)) && !steps < 10000 do
        incr steps;
        (match Tcp.take_segment t ~now:!now with
        | Some seq -> Queue.push seq inflight
        | None -> ());
        now := !now +. (0.001 +. Rng.float rng *. 0.01);
        if not (Queue.is_empty inflight) then begin
          let seq = Queue.pop inflight in
          if seq = !received then incr received;
          Tcp.on_ack t ~now:!now ~cum_ack:!received
        end;
        if float_of_int (Tcp.in_flight t) > Tcp.cwnd t +. 1.0 then steps := 100000
      done;
      Tcp.finished t && !received = segments)

(* ---------- DCTCP variant ---------- *)

let dctcp_g = match Tcp.dctcp_params.Tcp.variant with
  | Tcp.Dctcp { g } -> g
  | Tcp.Reno -> assert false

let send_all t ~now =
  let rec go () = match Tcp.take_segment t ~now with
    | Some _ -> go ()
    | None -> ()
  in
  go ()

(* One fully-marked observation window: send a whole cwnd, then ack
   it with a single ECE-carrying cumulative ack (F = 1 at rollover). *)
let marked_window t ~now =
  send_all t ~now;
  Tcp.on_ack ~ece:true t ~now:(now +. 0.05)
    ~cum_ack:(Tcp.snd_una t + Tcp.in_flight t)

let test_dctcp_alpha_closed_form () =
  (* k fully-marked windows from alpha = 0: the EWMA
     alpha <- (1-g) alpha + g has the closed form
     alpha_k = 1 - (1-g)^k. *)
  let t = mk ~params:Tcp.dctcp_params () in
  check_float "alpha starts at 0" 0.0 (Tcp.dctcp_alpha t);
  for k = 1 to 20 do
    marked_window t ~now:(0.2 *. float_of_int k);
    check_float ~eps:1e-12
      (Printf.sprintf "alpha after %d marked windows" k)
      (1.0 -. ((1.0 -. dctcp_g) ** float_of_int k))
      (Tcp.dctcp_alpha t)
  done

let test_dctcp_first_cut_exact () =
  (* First marked window: slow-start growth doubles cwnd 2 -> 4, then
     the rollover folds in alpha = g and cuts by alpha/2 once. *)
  let t = mk ~params:Tcp.dctcp_params () in
  marked_window t ~now:0.0;
  check_float ~eps:1e-12 "cwnd = 4 (1 - g/2)"
    (4.0 *. (1.0 -. (dctcp_g /. 2.0)))
    (Tcp.cwnd t);
  check_float ~eps:1e-12 "ssthresh follows the cut" (Tcp.cwnd t)
    (Tcp.ssthresh t)

let test_dctcp_cut_bounds () =
  (* Under sustained full marking alpha -> 1, so each cut approaches
     a Reno halving but never exceeds it, and cwnd never drops below
     one segment. *)
  let t = mk ~params:Tcp.dctcp_params () in
  for k = 1 to 200 do
    let before = Tcp.cwnd t in
    marked_window t ~now:(0.2 *. float_of_int k);
    let after = Tcp.cwnd t in
    Alcotest.(check bool) "alpha bounded" true
      (Tcp.dctcp_alpha t >= 0.0 && Tcp.dctcp_alpha t <= 1.0);
    Alcotest.(check bool) "cut at most a halving" true
      (after >= (before /. 2.0) -. 1e-9);
    Alcotest.(check bool) "cwnd floor" true (after >= 1.0)
  done;
  Alcotest.(check bool) "alpha converged to 1" true
    (Tcp.dctcp_alpha t > 0.999)

let test_dctcp_reno_equivalence_unmarked () =
  (* With no CE marks the DCTCP machinery is inert: an identical
     drive (slow start, fast retransmit, recovery, RTO) leaves the
     two variants in identical states at every step. *)
  let drive params =
    let t = mk ~params () in
    let log = ref [] in
    let snap () =
      log := (Tcp.cwnd t, Tcp.ssthresh t, Tcp.snd_una t, Tcp.in_flight t) :: !log
    in
    send_all t ~now:0.0;
    Tcp.on_ack t ~now:0.05 ~cum_ack:2;
    snap ();
    send_all t ~now:0.1;
    Tcp.on_ack t ~now:0.2 ~cum_ack:2;
    Tcp.on_ack t ~now:0.21 ~cum_ack:2;
    Tcp.on_ack t ~now:0.22 ~cum_ack:2;
    snap ();
    Tcp.on_ack t ~now:0.3 ~cum_ack:6;
    snap ();
    Tcp.on_rto t ~now:1.0;
    snap ();
    send_all t ~now:1.1;
    Tcp.on_ack t ~now:1.2 ~cum_ack:7;
    snap ();
    (t, List.rev !log)
  in
  let dctcp, dctcp_log = drive Tcp.dctcp_params in
  let _, reno_log = drive Tcp.default_params in
  List.iteri
    (fun i ((rc, rs, ru, rf), (dc, ds, du, df)) ->
      let step = Printf.sprintf "step %d" i in
      check_float (step ^ " cwnd") rc dc;
      check_float (step ^ " ssthresh") rs ds;
      Alcotest.(check int) (step ^ " una") ru du;
      Alcotest.(check int) (step ^ " in flight") rf df)
    (List.combine reno_log dctcp_log);
  check_float "alpha never moved" 0.0 (Tcp.dctcp_alpha dctcp)

let () =
  Alcotest.run "tcp"
    [
      ( "reno",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "segment count" `Quick test_segment_count;
          Alcotest.test_case "window limits" `Quick test_window_limits_sending;
          Alcotest.test_case "slow start" `Quick test_slow_start_growth;
          Alcotest.test_case "congestion avoidance" `Quick
            test_congestion_avoidance_growth;
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
          Alcotest.test_case "recovery exit" `Quick test_recovery_exit;
          Alcotest.test_case "rto go-back-n" `Quick test_rto_go_back_n;
          Alcotest.test_case "rto backoff" `Quick test_rto_backoff;
          Alcotest.test_case "finished" `Quick test_finished;
          Alcotest.test_case "rtt estimation" `Quick test_rtt_estimation;
          Alcotest.test_case "idle dupacks" `Quick test_dupack_ignored_when_idle;
          QCheck_alcotest.to_alcotest prop_lossless_pipe_completes;
        ] );
      ( "dctcp",
        [
          Alcotest.test_case "alpha EWMA closed form" `Quick
            test_dctcp_alpha_closed_form;
          Alcotest.test_case "first cut exact" `Quick test_dctcp_first_cut_exact;
          Alcotest.test_case "cut bounds" `Quick test_dctcp_cut_bounds;
          Alcotest.test_case "reno equivalence unmarked" `Quick
            test_dctcp_reno_equivalence_unmarked;
        ] );
    ]
