# Web-search-style flow-size distribution (DCTCP-like mix):
# ~53% of flows under 100 kB, a 10% tail of 5-30 MB transfers,
# mean ~1.7 MB. Kept in sync with the built-in Cdf.websearch
# (test_traffic pins the equality).
#
# size_bytes   cumulative_probability
10000     0.15
20000     0.20
30000     0.30
50000     0.40
80000     0.53
200000    0.60
1000000   0.70
2000000   0.80
5000000   0.90
10000000  0.97
30000000  1.00
