(* Tests for the link-state control plane: LSA wire format, database
   freshness rules, flooding convergence, and multigraph
   reconstruction. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let entry n t c = { Lsa.neighbor = n; tech = t; capacity_mbps = c }

(* --- Lsa --- *)

let test_lsa_roundtrip () =
  let lsa =
    Lsa.make ~origin:7 ~seq:42 [ entry 3 0 55.5; entry 9 1 12.345 ]
  in
  let lsa' = Lsa.decode (Lsa.encode lsa) in
  Alcotest.(check bool) "roundtrip" true (Lsa.equal lsa lsa');
  Alcotest.(check int) "size" (8 + 16) (Lsa.size lsa);
  Alcotest.(check int) "encoded length" (Lsa.size lsa) (Bytes.length (Lsa.encode lsa))

let test_lsa_fragment_roundtrip () =
  let lsa = Lsa.make ~fragment:3 ~origin:1 ~seq:5 [ entry 2 0 10.0 ] in
  let lsa' = Lsa.decode (Lsa.encode lsa) in
  Alcotest.(check int) "fragment" 3 lsa'.Lsa.fragment

let test_lsa_kbps_quantization () =
  let lsa = Lsa.make ~origin:0 ~seq:1 [ entry 1 0 10.0001234 ] in
  let lsa' = Lsa.decode (Lsa.encode lsa) in
  (match lsa'.Lsa.links with
  | [ e ] -> check_float ~eps:0.001 "kbit/s precision" 10.0 e.Lsa.capacity_mbps
  | _ -> Alcotest.fail "one entry");
  Alcotest.(check bool) "wire-precision equality" true (Lsa.equal lsa lsa')

let test_lsa_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "too many links" true
    (bad (fun () -> Lsa.make ~origin:0 ~seq:0 (List.init 32 (fun i -> entry i 0 1.0))));
  Alcotest.(check bool) "negative capacity" true
    (bad (fun () -> Lsa.make ~origin:0 ~seq:0 [ entry 1 0 (-1.0) ]));
  Alcotest.(check bool) "bad origin" true
    (bad (fun () -> Lsa.make ~origin:(-1) ~seq:0 []));
  Alcotest.(check bool) "truncated decode" true
    (bad (fun () -> Lsa.decode (Bytes.make 7 '\000')));
  Alcotest.(check bool) "length mismatch" true
    (bad (fun () ->
         let b = Lsa.encode (Lsa.make ~origin:0 ~seq:0 [ entry 1 0 1.0 ]) in
         Lsa.decode (Bytes.sub b 0 (Bytes.length b - 1))))

let prop_lsa_roundtrip =
  QCheck.Test.make ~name:"lsa roundtrip" ~count:200
    QCheck.(
      triple (int_bound 0xFFFF) (int_bound 1000)
        (list_of_size Gen.(int_range 0 31)
           (triple (int_bound 0xFFFF) (int_bound 3) (float_range 0.0 1000.0))))
    (fun (origin, seq, raw) ->
      let links = List.map (fun (n, t, c) -> entry n t c) raw in
      let lsa = Lsa.make ~origin ~seq links in
      Lsa.equal lsa (Lsa.decode (Lsa.encode lsa)))

(* --- Lsdb --- *)

let test_lsdb_freshness () =
  let db = Lsdb.create ~node:0 in
  let v1 = Lsa.make ~origin:3 ~seq:1 [ entry 1 0 10.0 ] in
  let v2 = Lsa.make ~origin:3 ~seq:2 [ entry 1 0 20.0 ] in
  Alcotest.(check bool) "new installed" true (Lsdb.insert db ~now:0.0 v1 = `Installed);
  Alcotest.(check bool) "duplicate" true (Lsdb.insert db ~now:0.1 v1 = `Duplicate);
  Alcotest.(check bool) "fresher installed" true (Lsdb.insert db ~now:0.2 v2 = `Installed);
  Alcotest.(check bool) "stale dropped" true (Lsdb.insert db ~now:0.3 v1 = `Stale);
  match Lsdb.lookup db ~origin:3 with
  | [ stored ] -> Alcotest.(check int) "kept v2" 2 stored.Lsa.seq
  | _ -> Alcotest.fail "expected one fragment"

let test_lsdb_fragments_coexist () =
  let db = Lsdb.create ~node:0 in
  ignore (Lsdb.insert db ~now:0.0 (Lsa.make ~fragment:0 ~origin:5 ~seq:1 [ entry 1 0 1.0 ]));
  ignore (Lsdb.insert db ~now:0.0 (Lsa.make ~fragment:1 ~origin:5 ~seq:1 [ entry 2 0 2.0 ]));
  Alcotest.(check int) "two fragments" 2 (List.length (Lsdb.lookup db ~origin:5))

let test_lsdb_purge () =
  let db = Lsdb.create ~node:0 in
  ignore (Lsdb.insert db ~now:0.0 (Lsa.make ~origin:1 ~seq:1 [ entry 0 0 1.0 ]));
  ignore (Lsdb.insert db ~now:50.0 (Lsa.make ~origin:2 ~seq:1 [ entry 0 0 1.0 ]));
  Alcotest.(check int) "one expired" 1 (Lsdb.purge db ~now:60.0 ~max_age:30.0);
  Alcotest.(check int) "one left" 1 (List.length (Lsdb.entries db))

let test_lsdb_graph_reconstruction () =
  let db = Lsdb.create ~node:0 in
  (* Both endpoints advertise the same wifi link with different
     estimates; one also advertises a plc link. *)
  ignore (Lsdb.insert db ~now:0.0 (Lsa.make ~origin:0 ~seq:1 [ entry 1 0 10.0 ]));
  ignore
    (Lsdb.insert db ~now:0.0
       (Lsa.make ~origin:1 ~seq:1 [ entry 0 0 14.0; entry 0 1 30.0 ]));
  let g = Lsdb.graph db ~n_nodes:2 ~n_techs:2 in
  Alcotest.(check int) "two physical edges" 4 (Multigraph.num_links g);
  (* The doubly-advertised link is averaged. *)
  let wifi = List.hd (Multigraph.out_links_tech g 0 0) in
  check_float ~eps:1e-6 "averaged estimate" 12.0 (Multigraph.capacity g wifi)

let test_lsdb_graph_ignores_garbage () =
  let db = Lsdb.create ~node:0 in
  ignore
    (Lsdb.insert db ~now:0.0
       (Lsa.make ~origin:0 ~seq:1
          [ entry 99 0 10.0 (* out-of-range node *); entry 1 7 10.0 (* bad tech *) ]));
  let g = Lsdb.graph db ~n_nodes:2 ~n_techs:2 in
  Alcotest.(check int) "nothing poisoned" 0 (Multigraph.num_links g)

(* --- Flooding --- *)

let line_neighbors n u =
  List.filter (fun v -> v >= 0 && v < n) [ u - 1; u + 1 ]

let test_flood_line_convergence () =
  let n = 8 in
  let dbs = Array.init n (fun node -> Lsdb.create ~node) in
  let lsa = Lsa.make ~origin:0 ~seq:1 [ entry 1 0 10.0 ] in
  let stats =
    Lsdb.Flood.propagate ~neighbors:(line_neighbors n) ~dbs ~from:0 lsa
  in
  (* Every node has it; rounds = diameter; each node forwards once. *)
  Array.iter
    (fun db ->
      Alcotest.(check int) "received" 1 (List.length (Lsdb.lookup db ~origin:0)))
    dbs;
  (* diameter rounds to reach everyone, plus at most one echo round
     in which duplicates die out *)
  Alcotest.(check bool) "rounds ~ diameter" true
    (stats.Lsdb.Flood.rounds >= n - 1 && stats.Lsdb.Flood.rounds <= n);
  Alcotest.(check bool) "at most 2 sends per node" true
    (stats.Lsdb.Flood.messages <= 2 * n)

let test_flood_does_not_cross_partition () =
  let n = 6 in
  (* Two components: 0-1-2 and 3-4-5. *)
  let neighbors u =
    List.filter (fun v -> v >= 0 && v < n && v / 3 = u / 3) [ u - 1; u + 1 ]
  in
  let dbs = Array.init n (fun node -> Lsdb.create ~node) in
  let lsa = Lsa.make ~origin:0 ~seq:1 [ entry 1 0 10.0 ] in
  ignore (Lsdb.Flood.propagate ~neighbors ~dbs ~from:0 lsa);
  Alcotest.(check int) "reached own side" 1 (List.length (Lsdb.lookup dbs.(2) ~origin:0));
  Alcotest.(check int) "not the other side" 0
    (List.length (Lsdb.lookup dbs.(4) ~origin:0))

(* --- Re-flood edge cases (the races the recovery subsystem's
   route re-discovery leans on) --- *)

let test_insert_out_of_order_race () =
  let db = Lsdb.create ~node:0 in
  let v k c = Lsa.make ~origin:4 ~seq:k [ entry 1 0 c ] in
  Alcotest.(check bool) "seq 3 installs" true
    (Lsdb.insert db ~now:0.0 (v 3 30.0) = `Installed);
  (* A delayed older advertisement loses the race outright — dropped,
     not merged, so a dead node's pre-crash state cannot reappear
     behind a fresher generation. *)
  Alcotest.(check bool) "late seq 2 is stale" true
    (Lsdb.insert db ~now:0.1 (v 2 20.0) = `Stale);
  (* The same generation arriving again (e.g. over a second
     interface) is suppressed... *)
  Alcotest.(check bool) "seq 3 again is duplicate" true
    (Lsdb.insert db ~now:0.2 (v 3 30.0) = `Duplicate);
  (* ...and suppression is by sequence number, not content: an
     equal-seq LSA with a different payload is still a duplicate
     (OSPF-style; content changes require a new sequence). *)
  Alcotest.(check bool) "equal-seq different payload suppressed" true
    (Lsdb.insert db ~now:0.3 (v 3 99.0) = `Duplicate);
  Alcotest.(check bool) "newer still wins afterwards" true
    (Lsdb.insert db ~now:0.4 (v 4 40.0) = `Installed);
  match Lsdb.lookup db ~origin:4 with
  | [ l ] ->
    Alcotest.(check int) "kept seq 4" 4 l.Lsa.seq;
    (match l.Lsa.links with
    | [ e ] -> check_float "winner's payload kept" 40.0 e.Lsa.capacity_mbps
    | _ -> Alcotest.fail "one entry")
  | _ -> Alcotest.fail "one fragment"

let test_flood_duplicate_suppression_across_interfaces () =
  (* A hybrid node hears the same LSA once per medium. Model two
     parallel interfaces by listing every neighbor twice: each node
     receives every flooded LSA twice, installs it once, and forwards
     it once — so the double-interface flood converges in the same
     rounds with exactly double the transmissions, not exponentially
     more. *)
  let n = 8 in
  let doubled u = line_neighbors n u @ line_neighbors n u in
  let flood neighbors =
    let dbs = Array.init n (fun node -> Lsdb.create ~node) in
    let lsa = Lsa.make ~origin:0 ~seq:1 [ entry 1 0 10.0 ] in
    let stats = Lsdb.Flood.propagate ~neighbors ~dbs ~from:0 lsa in
    (dbs, stats)
  in
  let dbs2, stats2 = flood doubled in
  let _, stats1 = flood (line_neighbors n) in
  Array.iter
    (fun db ->
      Alcotest.(check int) "installed exactly once" 1
        (List.length (Lsdb.lookup db ~origin:0)))
    dbs2;
  Alcotest.(check int) "same rounds as single-interface" stats1.Lsdb.Flood.rounds
    stats2.Lsdb.Flood.rounds;
  Alcotest.(check int) "exactly 2x transmissions" (2 * stats1.Lsdb.Flood.messages)
    stats2.Lsdb.Flood.messages

(* --- Recovery re-discovery over the LSDB --- *)

(* A 4-node diamond: 0-1-3 and 0-2-3, one tech. *)
let diamond () =
  Multigraph.create ~n_nodes:4 ~n_techs:1
    ~edges:[ (0, 1, 0, 10.0); (1, 3, 0, 10.0); (0, 2, 0, 10.0); (2, 3, 0, 10.0) ]

let caps_of g = Array.init (Multigraph.num_links g) (Multigraph.capacity g)

let kill_node g caps v =
  List.iter
    (fun l -> caps.(l) <- 0.0)
    (Multigraph.out_links g v @ Multigraph.in_links g v)

let test_reflood_drops_dead_branch () =
  let g = diamond () in
  let dom = Domain.single_domain_per_tech g in
  let caps = caps_of g in
  kill_node g caps 1;
  let comb, stats = Recovery.replan g dom ~caps ~src:0 ~dst:3 in
  Alcotest.(check bool) "re-discovery found a combination" true
    (comb.Multipath.paths <> []);
  Alcotest.(check bool) "flooding did work" true (stats.Lsdb.Flood.messages > 0);
  (* No surviving route may touch the dead node, even though its
     stale seq-1 advertisement is still in every database. *)
  List.iter
    (fun (p, _) ->
      List.iter
        (fun l ->
          let lk = Multigraph.link g l in
          if lk.Multigraph.src = 1 || lk.Multigraph.dst = 1 then
            Alcotest.failf "stale advertisement resurrected link %d" l)
        p.Paths.links)
    comb.Multipath.paths

let test_reflood_full_partition_is_empty () =
  let g = diamond () in
  let dom = Domain.single_domain_per_tech g in
  let caps = caps_of g in
  kill_node g caps 3;
  let comb, _ = Recovery.replan g dom ~caps ~src:0 ~dst:3 in
  Alcotest.(check bool) "severed destination yields no routes" true
    (comb.Multipath.paths = [] && comb.Multipath.total_rate = 0.0)

let test_survivors_per_route () =
  let g = diamond () in
  let caps = caps_of g in
  (* The two disjoint routes of the diamond. *)
  let route_via mid =
    let l1 = List.hd (Multigraph.find_links g ~src:0 ~dst:mid) in
    let l2 = List.hd (Multigraph.find_links g ~src:mid ~dst:3) in
    Paths.of_links g [ l1; l2 ]
  in
  let routes = [ route_via 1; route_via 2 ] in
  let surv, _ = Recovery.survivors g ~caps ~src:0 ~routes in
  Alcotest.(check bool) "both alive initially" true (surv.(0) && surv.(1));
  kill_node g caps 1;
  let surv, _ = Recovery.survivors g ~caps ~src:0 ~routes in
  Alcotest.(check bool) "only the untouched branch survives" true
    ((not surv.(0)) && surv.(1));
  kill_node g caps 3;
  let surv, _ = Recovery.survivors g ~caps ~src:0 ~routes in
  Alcotest.(check bool) "full severance: none survive" true
    ((not surv.(0)) && not surv.(1))

(* --- Control plane end-to-end --- *)

let test_converged_view_matches_truth () =
  let rng = Rng.create 5 in
  let inst = Residential.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let view, stats = Control_plane.converged_view (Rng.create 1) g ~viewer:0 in
  (* Same link structure (kbit/s wire precision). *)
  Alcotest.(check int) "same number of links" (Multigraph.num_links g)
    (Multigraph.num_links view);
  Alcotest.(check bool) "flooding did work" true (stats.Lsdb.Flood.messages > 0);
  (* Routing decisions on the reconstructed view match the truth. *)
  let routes_on gr = Single_path.route gr ~src:0 ~dst:9 in
  match (routes_on g, routes_on view) with
  | Some (p, _), Some (p', _) ->
    Alcotest.(check bool) "same shortest path" true
      (Paths.nodes g p = Paths.nodes view p')
  | None, None -> ()
  | _ -> Alcotest.fail "connectivity differs"

let test_converged_view_with_noise () =
  let rng = Rng.create 6 in
  let inst = Residential.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let view, _ = Control_plane.converged_view ~noise:0.05 (Rng.create 2) g ~viewer:3 in
  Alcotest.(check int) "structure preserved" (Multigraph.num_links g)
    (Multigraph.num_links view);
  (* Capacities within ~20% of truth (5% noise, two estimates averaged). *)
  let ok = ref true in
  for l = 0 to Multigraph.num_links g - 1 do
    let t = Multigraph.capacity g l in
    if t > 0.0 then begin
      (* Find the matching link in the view by endpoints and tech. *)
      let lk = Multigraph.link g l in
      let candidates =
        List.filter
          (fun l' -> (Multigraph.link view l').Multigraph.tech = lk.Multigraph.tech)
          (Multigraph.find_links view ~src:lk.Multigraph.src ~dst:lk.Multigraph.dst)
      in
      match candidates with
      | [ l' ] ->
        if Float.abs (Multigraph.capacity view l' -. t) > 0.25 *. t then ok := false
      | _ -> ok := false
    end
  done;
  Alcotest.(check bool) "estimates near truth" true !ok

let test_advertise_chunking () =
  (* A star node with 40 links must emit two fragments. *)
  let edges = List.init 40 (fun i -> (0, i + 1, 0, 10.0)) in
  let g = Multigraph.create ~n_nodes:41 ~n_techs:1 ~edges in
  let lsas = Control_plane.advertise (Rng.create 1) g ~node:0 in
  Alcotest.(check int) "two fragments" 2 (List.length lsas);
  let total = List.fold_left (fun acc l -> acc + List.length l.Lsa.links) 0 lsas in
  Alcotest.(check int) "all links advertised" 40 total

let () =
  Alcotest.run "lsdb"
    [
      ( "lsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_lsa_roundtrip;
          Alcotest.test_case "fragment" `Quick test_lsa_fragment_roundtrip;
          Alcotest.test_case "quantization" `Quick test_lsa_kbps_quantization;
          Alcotest.test_case "validation" `Quick test_lsa_validation;
          QCheck_alcotest.to_alcotest prop_lsa_roundtrip;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "freshness rules" `Quick test_lsdb_freshness;
          Alcotest.test_case "fragments coexist" `Quick test_lsdb_fragments_coexist;
          Alcotest.test_case "purge" `Quick test_lsdb_purge;
          Alcotest.test_case "graph reconstruction" `Quick
            test_lsdb_graph_reconstruction;
          Alcotest.test_case "garbage ignored" `Quick test_lsdb_graph_ignores_garbage;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "line convergence" `Quick test_flood_line_convergence;
          Alcotest.test_case "partition" `Quick test_flood_does_not_cross_partition;
        ] );
      ( "re-flood",
        [
          Alcotest.test_case "out-of-order seq races" `Quick
            test_insert_out_of_order_race;
          Alcotest.test_case "duplicate suppression across interfaces" `Quick
            test_flood_duplicate_suppression_across_interfaces;
          Alcotest.test_case "dead branch dropped" `Quick
            test_reflood_drops_dead_branch;
          Alcotest.test_case "full partition empty" `Quick
            test_reflood_full_partition_is_empty;
          Alcotest.test_case "per-route survivors" `Quick test_survivors_per_route;
        ] );
      ( "control-plane",
        [
          Alcotest.test_case "view matches truth" `Quick
            test_converged_view_matches_truth;
          Alcotest.test_case "noisy estimates" `Quick test_converged_view_with_noise;
          Alcotest.test_case "chunking" `Quick test_advertise_chunking;
        ] );
    ]
