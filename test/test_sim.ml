(* Tests for the discrete-event engine: MAC sharing (Lemma 1),
   forwarding through the layer-2.5 header, congestion-controlled and
   fixed-rate injection, file workloads, flow start/stop, and TCP
   transport. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let fig1 () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  (g, Domain.single_domain_per_tech g)

let saturated_flow g dom ~src ~dst =
  let comb = Multipath.find g dom ~src ~dst in
  {
    Engine.src;
    dst;
    routes = Multipath.routes comb;
    init_rates = List.map snd comb.Multipath.paths;
    workload = Workload.Saturated;
    transport = Engine.Udp;
    tcp_params = None;
    start_time = 0.0;
    stop_time = None;
  }

let goodput_of res i =
  float_of_int res.Engine.flows.(i).Engine.received_bytes
  *. 8e-6 /. res.Engine.duration

let test_single_link_throughput () =
  (* Fixed-rate injection below capacity must be delivered 1:1. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 8.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 1) g dom ~flows:[ flow ] ~duration:20.0 in
  check_float ~eps:0.5 "delivered = offered" 8.0 (goodput_of res 0);
  Alcotest.(check int) "no drops" 0 res.Engine.queue_drops

let test_lemma1_mac_sharing () =
  (* Two saturated links in one collision domain with capacities 15
     and 30: equal transmission opportunities give each the rate
     1/(1/15+1/30) = 10 (Lemma 1). *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1 ~edges:[ (0, 1, 0, 15.0); (2, 3, 0, 30.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let mk src dst links rate =
    {
      Engine.src;
      dst;
      routes = [ Paths.of_links g links ];
      init_rates = [ rate ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  (* Overload both links; MAC fairness should equalize goodputs.
     Collisions off: this checks the idealized sharing of Lemma 1. *)
  let config =
    { Engine.default_config with enable_cc = false; collision_prob = 0.0 }
  in
  let res =
    Engine.run ~config (Rng.create 2) g dom
      ~flows:[ mk 0 1 [ 0 ] 40.0; mk 2 3 [ 2 ] 40.0 ]
      ~duration:30.0
  in
  check_float ~eps:1.0 "flow a at Rmax" 10.0 (goodput_of res 0);
  check_float ~eps:1.0 "flow b at Rmax" 10.0 (goodput_of res 1)

let test_fig1_cc_run () =
  let g, dom = fig1 () in
  let flow = saturated_flow g dom ~src:0 ~dst:2 in
  let config = { Engine.default_config with collision_prob = 0.0 } in
  let res = Engine.run ~config (Rng.create 3) g dom ~flows:[ flow ] ~duration:60.0 in
  let gp = goodput_of res 0 in
  Alcotest.(check bool) "close to 16.67 optimum" true (gp > 14.0 && gp < 17.5);
  (* Rate series recorded every control period. *)
  Alcotest.(check bool) "rate series populated" true
    (List.length res.Engine.flows.(0).Engine.rate_series > 500)

let test_multihop_forwarding () =
  (* Three-hop chain across alternating mediums: packets must be
     relayed via the source-route header. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:[ (0, 1, 0, 30.0); (1, 2, 1, 30.0); (2, 3, 0, 30.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let flow = saturated_flow g dom ~src:0 ~dst:3 in
  Alcotest.(check bool) "multi-hop route" true
    (List.for_all (fun p -> Paths.hops p = 3) flow.Engine.routes);
  let res = Engine.run (Rng.create 4) g dom ~flows:[ flow ] ~duration:30.0 in
  Alcotest.(check bool) "delivered end to end" true (goodput_of res 0 > 10.0)

let test_flow_start_stop () =
  let g, dom = fig1 () in
  let flow =
    { (saturated_flow g dom ~src:0 ~dst:2) with start_time = 10.0; stop_time = Some 20.0 }
  in
  let res = Engine.run (Rng.create 5) g dom ~flows:[ flow ] ~duration:40.0 in
  let series = res.Engine.flows.(0).Engine.goodput_series in
  let in_window lo hi =
    List.filter_map (fun (t, gp) -> if t > lo && t <= hi then Some gp else None) series
  in
  check_float ~eps:0.2 "silent before start" 0.0 (Stats.mean (in_window 0.0 9.0));
  Alcotest.(check bool) "active during window" true
    (Stats.mean (in_window 12.0 20.0) > 5.0);
  check_float ~eps:0.5 "silent after stop" 0.0 (Stats.mean (in_window 25.0 40.0))

let test_file_completion () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 10.0 ];
      workload = Workload.File { bytes = 5_000_000 };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 6) g dom ~flows:[ flow ] ~duration:30.0 in
  match res.Engine.flows.(0).Engine.completions with
  | [ (start, d) ] ->
    check_float ~eps:1e-6 "starts at 0" 0.0 start;
    (* 40 Mbit at 10 Mbps = ~4 s. *)
    check_float ~eps:0.8 "completion time" 4.0 d;
    Alcotest.(check bool) "received everything" true
      (res.Engine.flows.(0).Engine.received_bytes >= 5_000_000)
  | other -> Alcotest.failf "expected one completion, got %d" (List.length other)

let test_poisson_files_sequential () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 50.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 40.0 ];
      workload = Workload.Poisson_files { bytes = 1_000_000; mean_gap_s = 3.0; count = 4 };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 7) g dom ~flows:[ flow ] ~duration:120.0 in
  let cs = res.Engine.flows.(0).Engine.completions in
  Alcotest.(check int) "all four complete" 4 (List.length cs);
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "duration sane" true (d > 0.0 && d < 20.0))
    cs

let test_poisson_files_serialized () =
  (* Offered arrivals far faster than transfers: the engine must
     serialize actual starts behind completions (the Workload
     closed-loop contract — a file cannot start before the previous
     one finished), so completions never overlap and every file gets
     a full service time. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 15.0 ];
      workload =
        Workload.Poisson_files { bytes = 2_000_000; mean_gap_s = 0.01; count = 3 };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 77) g dom ~flows:[ flow ] ~duration:60.0 in
  let cs = res.Engine.flows.(0).Engine.completions in
  Alcotest.(check int) "all three complete" 3 (List.length cs);
  let ideal = 2_000_000.0 *. 8.0 /. 15e6 in
  ignore
    (List.fold_left
       (fun prev_done (start, d) ->
         Alcotest.(check bool) "start not before previous completion" true
           (start >= prev_done -. 1e-9);
         Alcotest.(check bool) "full service time" true (d >= 0.8 *. ideal);
         Alcotest.(check bool) "duration sane" true (d < 10.0);
         start +. d)
       0.0 cs)

let test_empirical_open_loop () =
  (* Open-loop schedule on one connection: transfers arriving while an
     earlier one is in flight queue behind it (FIFO), and their
     completion times include the wait. 2 MB at 10 Mbit/s takes
     ~1.6 s, so the 0.5 s and 1.0 s arrivals both wait. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let files = [ (0.0, 2_000_000); (0.5, 500_000); (1.0, 100_000) ] in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 10.0 ];
      workload = Workload.Empirical { files; pacing = Workload.Cbr };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 78) g dom ~flows:[ flow ] ~duration:30.0 in
  match res.Engine.flows.(0).Engine.completions with
  | [ (s1, d1); (s2, d2); (s3, d3) ] ->
    check_float ~eps:1e-6 "first starts at its arrival" 0.0 s1;
    check_float ~eps:0.4 "first takes ~1.6 s" 1.6 d1;
    (* Service starts at the previous completion, not the arrival. *)
    check_float ~eps:1e-6 "second queues behind first" (s1 +. d1) s2;
    check_float ~eps:1e-6 "third queues behind second" (s2 +. d2) s3;
    Alcotest.(check bool) "third's FCT includes its wait" true
      (s3 +. d3 -. 1.0 > d3);
    Alcotest.(check bool) "everything delivered" true
      (res.Engine.flows.(0).Engine.received_bytes >= 2_600_000)
  | other -> Alcotest.failf "expected three completions, got %d" (List.length other)

let test_empirical_poisson_pacing () =
  (* Poisson pacing keeps the same mean injection rate (goodput within
     a few percent of CBR) while staying inside the checker's
     token-bucket budget; the run stays deterministic. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let mk pacing =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 10.0 ];
      workload = Workload.Empirical { files = [ (0.0, 8_000_000) ]; pacing };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let run pacing =
    Engine.strip_perf
      (Engine.run ~config ~invariants:(Invariants.create ()) (Rng.create 79) g dom
         ~flows:[ mk pacing ] ~duration:10.0)
  in
  let cbr = run Workload.Cbr and poisson = run Workload.Poisson_paced in
  let gp r = float_of_int r.Engine.flows.(0).Engine.received_bytes in
  Alcotest.(check bool) "same mean rate" true
    (Float.abs (gp cbr -. gp poisson) /. gp cbr < 0.05);
  Alcotest.(check bool) "poisson run deterministic" true
    (poisson = run Workload.Poisson_paced)

let test_empirical_validation () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let mk files =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 10.0 ];
      workload = Workload.Empirical { files; pacing = Workload.Cbr };
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let rejected files =
    match
      Engine.run (Rng.create 80) g dom ~flows:[ mk files ] ~duration:1.0
    with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "decreasing arrivals rejected" true
    (rejected [ (1.0, 1000); (0.5, 1000) ]);
  Alcotest.(check bool) "negative arrival rejected" true
    (rejected [ (-1.0, 1000) ]);
  Alcotest.(check bool) "non-positive size rejected" true
    (rejected [ (0.0, 0) ]);
  Alcotest.(check bool) "empty schedule fine" true
    (not (rejected []))

let test_queue_drops_under_overload () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 5.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 50.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let res = Engine.run ~config (Rng.create 8) g dom ~flows:[ flow ] ~duration:10.0 in
  Alcotest.(check bool) "drops happen" true (res.Engine.queue_drops > 0);
  (* Goodput still capped by capacity. *)
  Alcotest.(check bool) "correct cap" true (goodput_of res 0 < 5.5)

let test_collisions_under_contention () =
  (* With the CSMA collision model on, blasting two backlogged links
     in one domain loses frames to collisions; a lone link does not. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0); (2, 3, 0, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let mk src dst l =
    {
      Engine.src;
      dst;
      routes = [ Paths.of_links g [ l ] ];
      init_rates = [ 40.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config = { Engine.default_config with enable_cc = false } in
  let both =
    Engine.run ~config (Rng.create 21) g dom ~flows:[ mk 0 1 0; mk 2 3 2 ]
      ~duration:20.0
  in
  let alone =
    Engine.run ~config (Rng.create 22) g dom ~flows:[ mk 0 1 0 ] ~duration:20.0
  in
  let ideal_share = 10.0 in
  Alcotest.(check bool) "contention costs throughput" true
    (goodput_of both 0 < ideal_share -. 0.5);
  Alcotest.(check bool) "lone link loses nothing" true (goodput_of alone 0 > 19.0)

let test_link_failure_reroutes_traffic () =
  (* Two single-hop routes on different mediums; the PLC link dies at
     t = 20 s. The controller must starve the dead route and keep the
     flow alive on WiFi (the Section 6.1 failure reaction). *)
  let g =
    Multigraph.create ~n_nodes:2 ~n_techs:2
      ~edges:[ (0, 1, 0, 20.0) (* wifi, links 0/1 *); (0, 1, 1, 20.0) (* plc, links 2/3 *) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let routes = [ Paths.of_links g [ 0 ]; Paths.of_links g [ 2 ] ] in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes;
      init_rates = [ 20.0; 20.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let res =
    Engine.run ~link_events:[ (20.0, 2, 0.0); (20.0, 3, 0.0) ] (Rng.create 11) g dom
      ~flows:[ flow ] ~duration:60.0
  in
  let fr = res.Engine.flows.(0) in
  let mean_window lo hi =
    Stats.mean
      (List.filter_map
         (fun (t, gp) -> if t > lo && t <= hi then Some gp else None)
         fr.Engine.goodput_series)
  in
  (* Before: both mediums ~40 Mbps; after: only WiFi ~20. *)
  Alcotest.(check bool) "both mediums before" true (mean_window 5.0 19.0 > 30.0);
  let after = mean_window 35.0 60.0 in
  Alcotest.(check bool) "alive on wifi after failure" true (after > 14.0);
  Alcotest.(check bool) "plc contribution gone" true (after < 25.0);
  (* The controller's final rate on the dead route collapses. *)
  Alcotest.(check bool) "dead route starved" true (fr.Engine.final_rates.(1) < 3.0)

let test_capacity_drop_adapts () =
  (* A capacity drop (not failure) on the only link: goodput follows. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 40.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 40.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let res =
    Engine.run ~link_events:[ (30.0, 0, 10.0); (30.0, 1, 10.0) ] (Rng.create 12) g dom
      ~flows:[ flow ] ~duration:70.0
  in
  let fr = res.Engine.flows.(0) in
  let mean_window lo hi =
    Stats.mean
      (List.filter_map
         (fun (t, gp) -> if t > lo && t <= hi then Some gp else None)
         fr.Engine.goodput_series)
  in
  Alcotest.(check bool) "full rate before" true (mean_window 5.0 29.0 > 30.0);
  let after = mean_window 45.0 70.0 in
  Alcotest.(check bool) "adapted down" true (after < 12.0);
  Alcotest.(check bool) "still flowing" true (after > 6.0)

let test_delay_grows_without_margin () =
  (* Section 4.1: airtime near 1 makes delays blow up; the margin
     buys queue headroom. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ] ];
      init_rates = [ 20.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let run delta =
    let config = { Engine.default_config with delta; collision_prob = 0.0 } in
    (Engine.run ~config (Rng.create 13) g dom ~flows:[ flow ] ~duration:40.0)
      .Engine.flows.(0)
  in
  let tight = run 0.0 and slack = run 0.2 in
  Alcotest.(check bool) "delays measured" true (tight.Engine.mean_delay > 0.0);
  Alcotest.(check bool) "margin cuts delay" true
    (slack.Engine.mean_delay < tight.Engine.mean_delay);
  Alcotest.(check bool) "p95 >= mean" true
    (tight.Engine.p95_delay >= tight.Engine.mean_delay)

let test_tcp_transfer_over_engine () =
  let g, dom = fig1 () in
  let comb = Multipath.find g dom ~src:0 ~dst:2 in
  let flow =
    {
      Engine.src = 0;
      dst = 2;
      routes = Multipath.routes comb;
      init_rates = List.map snd comb.Multipath.paths;
      workload = Workload.File { bytes = 10_000_000 };
      transport = Engine.Tcp_transport;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let config =
    { Engine.default_config with delta = 0.3; delay_equalize = true }
  in
  let res = Engine.run ~config (Rng.create 9) g dom ~flows:[ flow ] ~duration:60.0 in
  match res.Engine.flows.(0).Engine.completions with
  | [ (_, d) ] ->
    (* 80 Mbit at ~11.7 Mbps allocation -> ~7-12 s. *)
    Alcotest.(check bool) "completes in sane time" true (d > 4.0 && d < 30.0)
  | _ -> Alcotest.fail "TCP transfer did not complete"

let test_validation_errors () =
  let g, dom = fig1 () in
  let base = saturated_flow g dom ~src:0 ~dst:2 in
  let bad f =
    try
      ignore (Engine.run (Rng.create 1) g dom ~flows:[ f ] ~duration:1.0);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative start" true (bad { base with Engine.start_time = -1.0 });
  Alcotest.(check bool) "rate/route mismatch" true (bad { base with Engine.init_rates = [] })

let test_determinism () =
  let g, dom = fig1 () in
  let run () =
    let flow = saturated_flow g dom ~src:0 ~dst:2 in
    let res = Engine.run (Rng.create 42) g dom ~flows:[ flow ] ~duration:10.0 in
    (res.Engine.flows.(0).Engine.received_bytes, res.Engine.events_processed)
  in
  Alcotest.(check bool) "same seed, same run" true (run () = run ())

let prop_engine_goodput_below_optimal =
  QCheck.Test.make ~name:"engine goodput never exceeds the LP optimum" ~count:8
    QCheck.(int_bound 10000)
    (fun seed ->
      let inst = Residential.generate (Rng.create seed) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let comb = Multipath.find g dom ~src:0 ~dst:9 in
      match Multipath.routes comb with
      | [] -> true
      | routes ->
        let flow =
          {
            Engine.src = 0;
            dst = 9;
            routes;
            init_rates = List.map snd comb.Multipath.paths;
            workload = Workload.Saturated;
            transport = Engine.Udp;
            tcp_params = None;
            start_time = 0.0;
            stop_time = None;
          }
        in
        let res = Engine.run (Rng.create (seed + 1)) g dom ~flows:[ flow ] ~duration:15.0 in
        let gp =
          float_of_int res.Engine.flows.(0).Engine.received_bytes *. 8e-6 /. 15.0
        in
        let opt = Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:9 in
        gp <= (opt *. 1.05) +. 1.0)

(* ---------- fault injection ---------- *)

let one_link_flow g ~rate =
  {
    Engine.src = 0;
    dst = 1;
    routes = [ Paths.of_links g [ 0 ] ];
    init_rates = [ rate ];
    workload = Workload.Saturated;
    transport = Engine.Udp;
    tcp_params = None;
    start_time = 0.0;
    stop_time = None;
  }

let mean_window series lo hi =
  Stats.mean
    (List.filter_map (fun (t, gp) -> if t > lo && t <= hi then Some gp else None) series)

let test_fault_tie_break () =
  (* Contradictory same-link, same-time actions: the documented
     tie-break is plan order, last wins. Down-then-set leaves the
     link alive (but flushed); set-then-down leaves it dead. Neither
     may crash or corrupt the accounting. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let config = { Engine.default_config with enable_cc = false } in
  let run plan =
    let compiled = Fault.compile g plan in
    let inv = Invariants.create ~mode:`Collect () in
    let res =
      Engine.run ~config ~invariants:inv
        ~link_events:compiled.Fault.link_events (Rng.create 31) g dom
        ~flows:[ one_link_flow g ~rate:8.0 ]
        ~duration:10.0
    in
    Alcotest.(check (list string)) "no invariant violations" []
      (List.map Invariants.describe (Invariants.violations inv));
    mean_window res.Engine.flows.(0).Engine.goodput_series 6.0 10.0
  in
  let down = Fault.Link_down { at = 5.0; link = 0 } in
  let set = Fault.Capacity_set { at = 5.0; link = 0; capacity = 20.0 } in
  Alcotest.(check bool) "down then set: link survives" true (run [ down; set ] > 6.0);
  Alcotest.(check bool) "set then down: link dead" true (run [ set; down ] < 0.5)

let test_full_loss_window () =
  (* prob = 1.0 loses every granted frame inside the window; the
     accounting must stay clean and delivery must resume after. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let config = { Engine.default_config with enable_cc = false } in
  let inv = Invariants.create ~mode:`Collect () in
  let res =
    Engine.run ~config ~invariants:inv
      ~loss_events:[ (2.0, 0, 1.0); (4.0, 0, 0.0) ]
      (Rng.create 32) g dom
      ~flows:[ one_link_flow g ~rate:8.0 ]
      ~duration:8.0
  in
  Alcotest.(check (list string)) "no invariant violations" []
    (List.map Invariants.describe (Invariants.violations inv));
  let series = res.Engine.flows.(0).Engine.goodput_series in
  Alcotest.(check bool) "flows before the window" true (mean_window series 0.0 2.0 > 6.0);
  check_float ~eps:0.5 "starved inside the window" 0.0 (mean_window series 2.5 4.0);
  Alcotest.(check bool) "resumes after the window" true (mean_window series 5.0 8.0 > 6.0)

let count_drops events reason =
  List.length
    (List.filter
       (function
         | Obs.Trace.Drop { reason = r; _ } -> r = reason
         | _ -> false)
       events)

let test_fault_drops_not_queue_drops () =
  (* Drop-accounting pin: frames consumed by a fault plan's loss
     window are [Fault_injected] drops and must NOT count toward
     [result.queue_drops] — that counter means buffer rejections. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let config = { Engine.default_config with enable_cc = false } in
  let sink, got = Obs.Trace.collector () in
  let res =
    Engine.run ~config ~trace:sink
      ~loss_events:[ (2.0, 0, 1.0); (4.0, 0, 0.0) ]
      (Rng.create 32) g dom
      ~flows:[ one_link_flow g ~rate:8.0 ]
      ~duration:8.0
  in
  Alcotest.(check bool) "loss window consumed frames" true
    (count_drops (got ()) Obs.Trace.Fault_injected > 0);
  Alcotest.(check int) "no overflow drops traced" 0
    (count_drops (got ()) Obs.Trace.Queue_overflow);
  Alcotest.(check int) "fault losses are not queue drops" 0
    res.Engine.queue_drops

let test_overflow_drops_match_trace () =
  (* The other side of the pin: under overload every queue drop is a
     [Queue_overflow] trace event, one for one. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 5.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let config = { Engine.default_config with enable_cc = false } in
  let sink, got = Obs.Trace.collector () in
  let res =
    Engine.run ~config ~trace:sink (Rng.create 8) g dom
      ~flows:[ one_link_flow g ~rate:50.0 ]
      ~duration:5.0
  in
  Alcotest.(check bool) "overload drops" true (res.Engine.queue_drops > 0);
  Alcotest.(check int) "queue_drops = traced overflows"
    res.Engine.queue_drops
    (count_drops (got ()) Obs.Trace.Queue_overflow)

let test_buffer_pool_admission () =
  (* Finite shared buffers: an overloaded link behind a small shared
     pool rejects (tail-drops) once the DT threshold is hit, marks CE
     past the ECN threshold, and the pool peak never exceeds the
     configured bytes. result.ecn_marks must equal the number of
     Ecn_mark trace events. *)
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 5.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let fb = Engine.default_config.Engine.frame_bytes in
  let pool = 4 * fb in
  let config =
    {
      Engine.default_config with
      enable_cc = false;
      buffers =
        Some
          {
            Engine.policy = Engine.Dynamic_threshold 1.0;
            pool_bytes = pool;
            ecn_threshold_bytes = Some (2 * fb);
          };
    }
  in
  let sink, got = Obs.Trace.collector () in
  let res =
    Engine.run ~config ~trace:sink (Rng.create 8) g dom
      ~flows:[ one_link_flow g ~rate:50.0 ]
      ~duration:5.0
  in
  Alcotest.(check bool) "pool rejections counted" true
    (res.Engine.queue_drops > 0);
  Alcotest.(check int) "rejections traced as overflow"
    res.Engine.queue_drops
    (count_drops (got ()) Obs.Trace.Queue_overflow);
  Alcotest.(check bool) "frames marked" true (res.Engine.ecn_marks > 0);
  let traced_marks =
    List.length
      (List.filter
         (function Obs.Trace.Ecn_mark _ -> true | _ -> false)
         (got ()))
  in
  Alcotest.(check int) "ecn_marks = traced marks" res.Engine.ecn_marks
    traced_marks;
  Alcotest.(check bool) "pool peak positive" true
    (res.Engine.buffer_peak_bytes > 0);
  Alcotest.(check bool) "pool peak within bound" true
    (res.Engine.buffer_peak_bytes <= pool)

let test_static_stricter_than_dt () =
  (* On a two-port node the static partition caps each port at half
     the pool. DT with alpha=1 self-limits a lone busy port to the
     same half (occ <= pool - occ), but a larger alpha lets it claim
     alpha/(1+alpha) of the pool — strictly more than static. *)
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1
      ~edges:[ (0, 1, 0, 5.0); (0, 2, 0, 5.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let fb = Engine.default_config.Engine.frame_bytes in
  let run policy =
    let config =
      {
        Engine.default_config with
        enable_cc = false;
        buffers =
          Some
            {
              Engine.policy;
              pool_bytes = 8 * fb;
              ecn_threshold_bytes = None;
            };
      }
    in
    let res =
      Engine.run ~config (Rng.create 8) g dom
        ~flows:[ one_link_flow g ~rate:50.0 ]
        ~duration:5.0
    in
    res.Engine.buffer_peak_bytes
  in
  let static = run Engine.Static in
  let dt = run (Engine.Dynamic_threshold 4.0) in
  Alcotest.(check bool) "static caps at the partition" true (static <= 4 * fb);
  Alcotest.(check bool) "DT can exceed the static share" true (dt > static)

let test_ctrl_faults_survivable () =
  (* A total ACK blackout early in the run: the controller stalls but
     the datapath keeps forwarding, and rates resume adapting after. *)
  let g, dom = fig1 () in
  let flow = saturated_flow g dom ~src:0 ~dst:2 in
  let res =
    Engine.run
      ~ctrl_events:[ (1.0, 1.0, 0.0); (3.0, 0.0, 0.05); (5.0, 0.0, 0.0) ]
      (Rng.create 33) g dom ~flows:[ flow ] ~duration:20.0
  in
  Alcotest.(check bool) "flow survives control faults" true (goodput_of res 0 > 8.0)

let test_flapping_probe_chains () =
  (* Crash/restart flapping of a relay node, faster than the reclaim
     backoff drains: after every Route_dead the traced reclaim-probe
     attempts must restart at 0 and increment by exactly one — a probe
     chain left over from a previous outage may not survive the
     restore/re-death cycle (it would double-schedule probes and
     consume backoff jitter draws twice per real attempt). *)
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:
        [
          (0, 1, 0, 20.0) (* wifi direct, links 0/1 *);
          (0, 2, 1, 20.0) (* plc to relay, links 2/3 *);
          (2, 1, 1, 20.0) (* plc from relay, links 4/5 *);
        ]
  in
  let dom = Domain.single_domain_per_tech g in
  let flow =
    {
      Engine.src = 0;
      dst = 1;
      routes = [ Paths.of_links g [ 0 ]; Paths.of_links g [ 2; 4 ] ];
      init_rates = [ 15.0; 15.0 ];
      workload = Workload.Saturated;
      transport = Engine.Udp;
      tcp_params = None;
      start_time = 0.0;
      stop_time = None;
    }
  in
  let plan =
    [ Fault.Node_flap { at = 2.0; until = 16.0; node = 2; period = 1.5; duty = 0.4 } ]
  in
  let compiled = Fault.compile g plan in
  let config =
    {
      Engine.default_config with
      Engine.route_reclaim = true;
      recovery = Some Recovery.default;
    }
  in
  let sink, got = Obs.Trace.collector () in
  ignore
    (Engine.run ~config ~trace:sink
       ~link_events:compiled.Fault.link_events (Rng.create 47) g dom
       ~flows:[ flow ] ~duration:18.0);
  let deaths = ref 0 and restores = ref 0 and probes = ref 0 in
  (* expected.(route) = next legal probe attempt; -1 = not dead, no
     probe may arrive at all. *)
  let expected = Array.make 2 (-1) in
  List.iter
    (function
      | Obs.Trace.Route_dead { route; _ } ->
        incr deaths;
        expected.(route) <- 0
      | Obs.Trace.Route_restored { route; _ } ->
        incr restores;
        expected.(route) <- -1
      | Obs.Trace.Route_probe { route; attempt; _ } ->
        incr probes;
        if expected.(route) < 0 then
          Alcotest.failf "probe on live route %d (attempt %d)" route attempt;
        if attempt <> expected.(route) then
          Alcotest.failf
            "route %d: probe attempt %d, expected %d — stale probe chain"
            route attempt expected.(route);
        expected.(route) <- attempt + 1
      | _ -> ())
    (got ());
  (* The flap must actually cycle the relay route several times for
     the pin to mean anything. *)
  Alcotest.(check bool) "several outages" true (!deaths >= 3);
  Alcotest.(check bool) "several restores" true (!restores >= 3);
  Alcotest.(check bool) "probes observed" true (!probes >= !deaths)

let test_bad_fault_schedules_rejected () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let flow = one_link_flow g ~rate:5.0 in
  let bad f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  let run ?loss_events ?ctrl_events () =
    Engine.run ?loss_events ?ctrl_events (Rng.create 1) g dom ~flows:[ flow ]
      ~duration:1.0
  in
  Alcotest.(check bool) "negative loss time" true
    (bad (fun () -> run ~loss_events:[ (-1.0, 0, 0.5) ] ()));
  Alcotest.(check bool) "loss link out of range" true
    (bad (fun () -> run ~loss_events:[ (0.5, 9, 0.5) ] ()));
  Alcotest.(check bool) "loss prob > 1" true
    (bad (fun () -> run ~loss_events:[ (0.5, 0, 1.5) ] ()));
  Alcotest.(check bool) "nan loss prob" true
    (bad (fun () -> run ~loss_events:[ (0.5, 0, Float.nan) ] ()));
  Alcotest.(check bool) "ctrl prob out of range" true
    (bad (fun () -> run ~ctrl_events:[ (0.5, 1.5, 0.0) ] ()));
  Alcotest.(check bool) "negative ctrl delay" true
    (bad (fun () -> run ~ctrl_events:[ (0.5, 0.0, -0.1) ] ()))

(* ---------- runtime invariant checker ---------- *)

let assert_clean name inv =
  (match Invariants.violations inv with
  | [] -> ()
  | v :: _ as all ->
    Alcotest.failf "%s: %d violation(s), first: %s" name (List.length all)
      (Invariants.describe v));
  Alcotest.(check bool) (name ^ ": checker ran") true
    (Invariants.events_checked inv > 0);
  Alcotest.(check bool) (name ^ ": traffic flowed") true
    (Invariants.frames_delivered inv > 0)

let test_invariants_fig4_scenario () =
  (* The figure-4 setting: an EMPoWER multipath flow across a random
     residential hybrid, congestion control on. *)
  let inst = Residential.generate (Rng.create 77) in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let flow = saturated_flow g dom ~src:0 ~dst:9 in
  let inv = Invariants.create ~mode:`Collect () in
  ignore
    (Engine.run ~invariants:inv (Rng.create 78) g dom ~flows:[ flow ]
       ~duration:10.0);
  assert_clean "fig4" inv

let test_invariants_fig7_scenario () =
  (* The figure-7 setting: several contending EMPoWER flows sharing
     the residential network's collision domains. *)
  let rng = Rng.create 907 in
  let inst = Common.generate Common.Residential rng in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let flows =
    Common.random_flows rng inst ~n:3
    |> List.filter_map (fun (src, dst) ->
           let f = saturated_flow g dom ~src ~dst in
           if f.Engine.routes = [] then None else Some f)
  in
  Alcotest.(check bool) "contending flows found" true (List.length flows >= 2);
  let inv = Invariants.create ~mode:`Collect () in
  ignore (Engine.run ~invariants:inv (Rng.create 908) g dom ~flows ~duration:10.0);
  assert_clean "fig7" inv

let test_invariants_table1_scenario () =
  (* The table-1 setting: a TCP file download on the testbed graph
     with delay equalization, driven through the library facade. *)
  let inst = Testbed.generate (Rng.create 4242) in
  let net = Runner.network inst Schemes.Empower in
  let src = Testbed.node 6 and dst = Testbed.node 13 in
  let rr = Runner.routes_and_rates net Schemes.Empower ~src ~dst in
  Alcotest.(check bool) "testbed route exists" true (fst rr <> []);
  let spec =
    Runner.flow_spec ~transport:Engine.Tcp_transport
      ~workload:(Workload.File { bytes = 20_000_000 })
      ~src ~dst rr
  in
  let config = { Engine.default_config with delay_equalize = true } in
  let inv = Invariants.create ~mode:`Collect () in
  ignore
    (Empower.simulate ~config ~invariants:inv ~seed:4243 net ~flows:[ spec ]
       ~duration:30.0);
  assert_clean "table1" inv

(* Negative tests: drive the checker's hooks directly with deliberate
   bookkeeping bugs and verify each one is caught with the right rule.
   The [view] closures play the role of the live MAC state. *)

let quiet_view =
  {
    Invariants.n_links = 2;
    queue_len = (fun _ -> 0);
    on_air_flow = (fun _ -> None);
    iter_queued = (fun _ _ -> ());
    domain = (fun _ -> [ 0; 1 ]);
    gamma = (fun _ -> 0.0);
    link_src = (fun _ -> 0);
  }

let fresh_checker () =
  let inv = Invariants.create () in
  Invariants.configure inv ~n_links:2 ~queue_limit:64 ~frame_bytes:1500
    ~control_period:0.03;
  Invariants.register_flow inv ~flow:0 ~pacing:Invariants.Unpoliced ~rate:10.0;
  inv

let expect_violation name rule f =
  match f () with
  | () -> Alcotest.failf "%s: the injected bug was not caught" name
  | exception Invariants.Violation v ->
    Alcotest.(check string) (name ^ ": rule") rule v.Invariants.rule

let test_catches_lost_frame () =
  expect_violation "lost frame" "frame-conservation" (fun () ->
      let inv = fresh_checker () in
      for _ = 1 to 5 do
        Invariants.on_inject inv ~now:0.01 ~flow:0
      done;
      for _ = 1 to 3 do
        Invariants.on_deliver inv ~now:0.02 ~flow:0
      done;
      (* Two frames vanished with no drop record and no queue holding
         them: exactly the bug a skipped [queue_drops] update makes. *)
      Invariants.check_step inv ~now:0.03 quiet_view)

let test_catches_duplicate_release () =
  expect_violation "duplicate release" "reorder-duplicate" (fun () ->
      let inv = fresh_checker () in
      Invariants.on_release inv ~now:0.01 ~flow:0 (`Deliver 0);
      Invariants.on_release inv ~now:0.02 ~flow:0 (`Deliver 0))

let test_catches_reordered_release () =
  expect_violation "reordered release" "reorder-gap" (fun () ->
      let inv = fresh_checker () in
      Invariants.on_release inv ~now:0.01 ~flow:0 (`Deliver 1))

let test_catches_negative_price () =
  expect_violation "negative price" "negative-price" (fun () ->
      let inv = fresh_checker () in
      Invariants.check_step inv ~now:0.01
        { quiet_view with Invariants.gamma = (fun _ -> -0.25) })

let test_catches_queue_over_bound () =
  expect_violation "queue over bound" "queue-bound" (fun () ->
      let inv = fresh_checker () in
      Invariants.check_step inv ~now:0.01
        { quiet_view with Invariants.queue_len = (fun _ -> 65) })

let test_catches_double_occupancy () =
  expect_violation "double occupancy" "medium-occupancy" (fun () ->
      let inv = fresh_checker () in
      Invariants.on_inject inv ~now:0.005 ~flow:0;
      Invariants.on_inject inv ~now:0.005 ~flow:0;
      (* Both links of one interference domain on the air at once. *)
      Invariants.check_step inv ~now:0.01
        { quiet_view with Invariants.on_air_flow = (fun _ -> Some 0) })

let () =
  Alcotest.run "sim"
    [
      ( "mac",
        [
          Alcotest.test_case "single link" `Quick test_single_link_throughput;
          Alcotest.test_case "lemma 1 sharing" `Quick test_lemma1_mac_sharing;
          Alcotest.test_case "queue drops under overload" `Quick
            test_queue_drops_under_overload;
          Alcotest.test_case "collisions under contention" `Quick
            test_collisions_under_contention;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "figure-1 CC run" `Quick test_fig1_cc_run;
          Alcotest.test_case "multihop forwarding" `Quick test_multihop_forwarding;
          Alcotest.test_case "flow start/stop" `Quick test_flow_start_stop;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "file completion" `Quick test_file_completion;
          Alcotest.test_case "poisson files" `Quick test_poisson_files_sequential;
          Alcotest.test_case "poisson files serialized" `Quick
            test_poisson_files_serialized;
          Alcotest.test_case "empirical open loop" `Quick test_empirical_open_loop;
          Alcotest.test_case "empirical poisson pacing" `Quick
            test_empirical_poisson_pacing;
          Alcotest.test_case "empirical validation" `Quick
            test_empirical_validation;
        ] );
      ( "tcp",
        [ Alcotest.test_case "transfer completes" `Quick test_tcp_transfer_over_engine ] );
      ( "dynamics",
        [
          Alcotest.test_case "link failure reroutes" `Quick
            test_link_failure_reroutes_traffic;
          Alcotest.test_case "capacity drop adapts" `Quick test_capacity_drop_adapts;
          Alcotest.test_case "margin cuts delay" `Quick test_delay_grows_without_margin;
        ] );
      ( "faults",
        [
          Alcotest.test_case "same-time tie-break" `Quick test_fault_tie_break;
          Alcotest.test_case "full loss window" `Quick test_full_loss_window;
          Alcotest.test_case "control faults survivable" `Quick
            test_ctrl_faults_survivable;
          Alcotest.test_case "flapping probe chains" `Quick
            test_flapping_probe_chains;
          Alcotest.test_case "bad schedules rejected" `Quick
            test_bad_fault_schedules_rejected;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "fault drops not queue drops" `Quick
            test_fault_drops_not_queue_drops;
          Alcotest.test_case "overflow drops match trace" `Quick
            test_overflow_drops_match_trace;
          Alcotest.test_case "shared pool admission" `Quick
            test_buffer_pool_admission;
          Alcotest.test_case "static stricter than DT" `Quick
            test_static_stricter_than_dt;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "fig4 scenario clean" `Quick
            test_invariants_fig4_scenario;
          Alcotest.test_case "fig7 scenario clean" `Quick
            test_invariants_fig7_scenario;
          Alcotest.test_case "table1 scenario clean" `Quick
            test_invariants_table1_scenario;
          Alcotest.test_case "catches lost frame" `Quick test_catches_lost_frame;
          Alcotest.test_case "catches duplicate release" `Quick
            test_catches_duplicate_release;
          Alcotest.test_case "catches reordered release" `Quick
            test_catches_reordered_release;
          Alcotest.test_case "catches negative price" `Quick
            test_catches_negative_price;
          Alcotest.test_case "catches queue over bound" `Quick
            test_catches_queue_over_bound;
          Alcotest.test_case "catches double occupancy" `Quick
            test_catches_double_occupancy;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_engine_goodput_below_optimal ] );
    ]
