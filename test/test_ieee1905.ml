(* Tests for the IEEE 1905.1 abstraction-layer subset: TLV and CMDU
   wire formats and the topology database. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let mac = Tlv.mac_of_node

(* --- TLV --- *)

let test_mac_of_node () =
  let m = mac ~node:0x1234 ~tech:2 in
  Alcotest.(check int) "length" 6 (String.length m);
  Alcotest.(check bool) "locally administered" true (Char.code m.[0] land 0x02 <> 0);
  (match Abstraction_layer.node_of_mac m with
  | Some (n, t) ->
    Alcotest.(check int) "node" 0x1234 n;
    Alcotest.(check int) "tech" 2 t
  | None -> Alcotest.fail "own mac not recognized");
  Alcotest.(check bool) "foreign mac rejected" true
    (Abstraction_layer.node_of_mac "\x00\x11\x22\x33\x44\x55" = None)

let roundtrip tlv =
  let b = Tlv.encode tlv in
  let tlv', next = Tlv.decode b ~pos:0 in
  Alcotest.(check int) "consumed exactly" (Bytes.length b) next;
  tlv'

let test_tlv_roundtrips () =
  let cases =
    [
      Tlv.End_of_message;
      Tlv.Al_mac_address (mac ~node:3 ~tech:0xFF);
      Tlv.Mac_address (mac ~node:4 ~tech:1);
      Tlv.Device_information
        ( mac ~node:5 ~tech:0xFF,
          [
            { Tlv.mac = mac ~node:5 ~tech:0; media = Tlv.Wifi 1 };
            { Tlv.mac = mac ~node:5 ~tech:1; media = Tlv.Plc_1901 };
            { Tlv.mac = mac ~node:5 ~tech:2; media = Tlv.Ethernet };
          ] );
      Tlv.Link_metric
        {
          Tlv.local_mac = mac ~node:1 ~tech:0;
          remote_mac = mac ~node:2 ~tech:0;
          capacity_mbps = 87.65;
        };
      Tlv.Unknown (0x42, "payload");
    ]
  in
  List.iter (fun tlv -> Alcotest.(check bool) "roundtrip" true (roundtrip tlv = tlv)) cases

let test_tlv_capacity_quantization () =
  match
    roundtrip
      (Tlv.Link_metric
         {
           Tlv.local_mac = mac ~node:1 ~tech:0;
           remote_mac = mac ~node:2 ~tech:0;
           capacity_mbps = 12.3456;
         })
  with
  | Tlv.Link_metric lm ->
    check_float ~eps:0.005 "0.01 Mbps units" 12.35 lm.Tlv.capacity_mbps
  | _ -> Alcotest.fail "wrong tlv"

let test_tlv_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "short mac" true
    (bad (fun () -> Tlv.encode (Tlv.Mac_address "abc")));
  Alcotest.(check bool) "truncated decode" true
    (bad (fun () -> Tlv.decode (Bytes.make 2 '\000') ~pos:0));
  Alcotest.(check bool) "truncated value" true
    (bad (fun () ->
         let b = Tlv.encode (Tlv.Mac_address (mac ~node:1 ~tech:0)) in
         Tlv.decode (Bytes.sub b 0 5) ~pos:0))

let test_tlv_encode_all () =
  let tlvs = [ Tlv.Al_mac_address (mac ~node:1 ~tech:0xFF) ] in
  let b = Tlv.encode_all tlvs in
  Alcotest.(check bool) "decode_all strips end" true (Tlv.decode_all b ~pos:0 = tlvs);
  Alcotest.(check bool) "explicit end rejected" true
    (try
       ignore (Tlv.encode_all [ Tlv.End_of_message ]);
       false
     with Invalid_argument _ -> true)

(* --- CMDU --- *)

let test_cmdu_roundtrip () =
  let c =
    Cmdu.make ~relay:true Cmdu.Topology_notification ~message_id:777
      [ Tlv.Al_mac_address (mac ~node:9 ~tech:0xFF) ]
  in
  let c' = Cmdu.decode (Cmdu.encode c) in
  Alcotest.(check bool) "roundtrip" true (c = c');
  Alcotest.(check int) "type code" 0x0001 (Cmdu.message_type_code c.Cmdu.message_type)

let test_cmdu_validation () =
  Alcotest.(check bool) "bad id" true
    (try
       ignore (Cmdu.make Cmdu.Topology_query ~message_id:70000 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown type code" true
    (try
       let b = Cmdu.encode (Cmdu.make Cmdu.Topology_query ~message_id:1 []) in
       Bytes.set b 3 '\xee';
       ignore (Cmdu.decode b);
       false
     with Invalid_argument _ -> true)

(* --- Abstraction layer --- *)

let fig1 () =
  Multigraph.create ~n_nodes:3 ~n_techs:2
    ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]

let techs () = Array.of_list (Technology.hybrid ())

let test_al_topology_exchange () =
  let g = fig1 () in
  let als = Array.init 3 (fun node -> Abstraction_layer.create ~node ~techs:(techs ())) in
  (* Everyone responds; node 0 hears all responses (wire-encoded and
     decoded, exercising the full format). *)
  Array.iteri
    (fun i al ->
      let cmdu = Abstraction_layer.topology_response al g ~message_id:(i + 1) in
      let wire = Cmdu.encode cmdu in
      Abstraction_layer.handle als.(0) (Cmdu.decode wire))
    als;
  Alcotest.(check int) "heard three devices" 3 (Abstraction_layer.known_devices als.(0));
  let view = Abstraction_layer.graph als.(0) ~n_nodes:3 in
  Alcotest.(check int) "all links reconstructed" (Multigraph.num_links g)
    (Multigraph.num_links view);
  (* Capacities survive (0.01 Mbps wire precision); look links up by
     endpoints and technology, since the reconstruction orders edges
     differently. *)
  let cap_of gr ~src ~dst ~tech =
    match
      List.filter
        (fun l -> (Multigraph.link gr l).Multigraph.tech = tech)
        (Multigraph.find_links gr ~src ~dst)
    with
    | [ l ] -> Multigraph.capacity gr l
    | _ -> Alcotest.failf "link %d->%d tech %d not found" src dst tech
  in
  check_float ~eps:0.01 "wifi a-b" 15.0 (cap_of view ~src:0 ~dst:1 ~tech:0);
  check_float ~eps:0.01 "plc a-b" 10.0 (cap_of view ~src:0 ~dst:1 ~tech:1);
  (* Routing on the 1905.1-derived view matches the truth. *)
  match
    ( Single_path.route g ~src:0 ~dst:2,
      Single_path.route view ~src:0 ~dst:2 )
  with
  | Some (p, _), Some (p', _) ->
    Alcotest.(check bool) "same route" true (Paths.nodes g p = Paths.nodes view p')
  | _ -> Alcotest.fail "routes missing"

let test_al_stale_messages_ignored () =
  let g = fig1 () in
  let al0 = Abstraction_layer.create ~node:0 ~techs:(techs ()) in
  let al1 = Abstraction_layer.create ~node:1 ~techs:(techs ()) in
  Abstraction_layer.handle al0 (Abstraction_layer.topology_response al1 g ~message_id:5);
  (* An older message (lower id) from the same AL must not replace
     newer state: degrade the capacities and replay with id 3. *)
  let caps = Multigraph.capacities g in
  Array.iteri (fun i _ -> caps.(i) <- 1.0) caps;
  let degraded = Multigraph.with_capacities g caps in
  Abstraction_layer.handle al0
    (Abstraction_layer.topology_response al1 degraded ~message_id:3);
  let view = Abstraction_layer.graph al0 ~n_nodes:3 in
  (* Node 1's links still at original capacities. *)
  let l =
    List.find
      (fun l -> (Multigraph.link view l).Multigraph.tech = 0)
      (Multigraph.find_links view ~src:1 ~dst:2)
  in
  check_float ~eps:0.01 "kept fresh metrics" 30.0 (Multigraph.capacity view l)

let test_al_garbage_resilience () =
  let al = Abstraction_layer.create ~node:0 ~techs:(techs ()) in
  (* Foreign MACs and unknown TLVs must be ignored without error. *)
  let cmdu =
    Cmdu.make Cmdu.Topology_response ~message_id:1
      [
        Tlv.Al_mac_address "\x00\xde\xad\xbe\xef\x00";
        Tlv.Unknown (0x77, "whatever");
        Tlv.Link_metric
          {
            Tlv.local_mac = "\x00\x11\x22\x33\x44\x55";
            remote_mac = "\x00\x11\x22\x33\x44\x66";
            capacity_mbps = 99.0;
          };
      ]
  in
  Abstraction_layer.handle al (Cmdu.decode (Cmdu.encode cmdu));
  let view = Abstraction_layer.graph al ~n_nodes:3 in
  Alcotest.(check int) "foreign links ignored" 0 (Multigraph.num_links view)

let prop_tlv_unknown_forwarded =
  QCheck.Test.make ~name:"unknown TLVs roundtrip untouched" ~count:100
    QCheck.(pair (int_range 0x20 0xff) (string_of_size Gen.(int_range 0 64)))
    (fun (ty, payload) ->
      let tlv = Tlv.Unknown (ty, payload) in
      match Tlv.decode (Tlv.encode tlv) ~pos:0 with
      | Tlv.Unknown (ty', p'), _ -> ty = ty' && payload = p'
      | _ ->
        (* types that collide with known TLVs may decode as them *)
        ty <= 0x09)

(* --- Reliable (control-message retransmission) --- *)

let msg id = Cmdu.make Cmdu.Topology_query ~message_id:id []

let test_reliable_ack_stops_retransmission () =
  let r = Abstraction_layer.Reliable.create () in
  Abstraction_layer.Reliable.send r ~now:0.0 (msg 1);
  Alcotest.(check int) "pending" 1 (Abstraction_layer.Reliable.pending r);
  Alcotest.(check bool) "nothing due before the timeout" true
    (Abstraction_layer.Reliable.due r ~now:0.1 = []);
  Alcotest.(check bool) "ack retires" true
    (Abstraction_layer.Reliable.ack r ~message_id:1);
  Alcotest.(check bool) "duplicate ack is a no-op" false
    (Abstraction_layer.Reliable.ack r ~message_id:1);
  Alcotest.(check int) "nothing pending" 0 (Abstraction_layer.Reliable.pending r);
  Alcotest.(check bool) "nothing ever due" true
    (Abstraction_layer.Reliable.due r ~now:99.0 = []);
  Alcotest.(check int) "nothing dropped" 0 (Abstraction_layer.Reliable.dropped r)

let test_reliable_backoff_schedule () =
  (* timeout 0.25, backoff 2: retransmissions due at 0.25, then the
     next timeouts are 0.5, 1.0, ... from each retransmission. *)
  let r = Abstraction_layer.Reliable.create () in
  Abstraction_layer.Reliable.send r ~now:0.0 (msg 7);
  (match Abstraction_layer.Reliable.due r ~now:0.25 with
  | [ c ] -> Alcotest.(check int) "first retry" 7 c.Cmdu.message_id
  | _ -> Alcotest.fail "one retransmission due at the timeout");
  Alcotest.(check bool) "second copy not due before 0.25 + 0.5" true
    (Abstraction_layer.Reliable.due r ~now:0.74 = []);
  (match Abstraction_layer.Reliable.due r ~now:0.75 with
  | [ c ] -> Alcotest.(check int) "second retry" 7 c.Cmdu.message_id
  | _ -> Alcotest.fail "one retransmission due after the doubled timeout");
  Alcotest.(check bool) "third copy not due before 0.75 + 1.0" true
    (Abstraction_layer.Reliable.due r ~now:1.74 = [])

let test_reliable_gives_up () =
  let config =
    { Abstraction_layer.Reliable.timeout = 0.1; backoff = 1.0; max_tries = 3 }
  in
  let r = Abstraction_layer.Reliable.create ~config () in
  Abstraction_layer.Reliable.send r ~now:0.0 (msg 2);
  (* Transmissions 2 and 3 are retransmissions; the next poll drops. *)
  Alcotest.(check int) "retry 1" 1
    (List.length (Abstraction_layer.Reliable.due r ~now:1.0));
  Alcotest.(check int) "retry 2" 1
    (List.length (Abstraction_layer.Reliable.due r ~now:2.0));
  Alcotest.(check int) "exhausted" 0
    (List.length (Abstraction_layer.Reliable.due r ~now:3.0));
  Alcotest.(check int) "dropped counted" 1 (Abstraction_layer.Reliable.dropped r);
  Alcotest.(check int) "no longer pending" 0
    (Abstraction_layer.Reliable.pending r);
  Alcotest.(check bool) "late ack finds nothing" false
    (Abstraction_layer.Reliable.ack r ~message_id:2)

let test_reliable_deterministic_order () =
  let r = Abstraction_layer.Reliable.create () in
  (* Insert in shuffled order; due returns message-id order. *)
  List.iter
    (fun id -> Abstraction_layer.Reliable.send r ~now:0.0 (msg id))
    [ 9; 2; 40; 11 ];
  let ids =
    List.map
      (fun c -> c.Cmdu.message_id)
      (Abstraction_layer.Reliable.due r ~now:1.0)
  in
  Alcotest.(check (list int)) "message-id order" [ 2; 9; 11; 40 ] ids

let test_reliable_resend_restarts () =
  let r = Abstraction_layer.Reliable.create () in
  Abstraction_layer.Reliable.send r ~now:0.0 (msg 5);
  ignore (Abstraction_layer.Reliable.due r ~now:0.25);
  (* A fresh send of the same id restarts the schedule and try count. *)
  Abstraction_layer.Reliable.send r ~now:10.0 (msg 5);
  Alcotest.(check bool) "old schedule cancelled" true
    (Abstraction_layer.Reliable.due r ~now:10.2 = []);
  Alcotest.(check int) "due at the fresh timeout" 1
    (List.length (Abstraction_layer.Reliable.due r ~now:10.25));
  Alcotest.(check int) "still one pending" 1
    (Abstraction_layer.Reliable.pending r)

let test_reliable_bad_config () =
  let bad config =
    try
      ignore (Abstraction_layer.Reliable.create ~config ());
      false
    with Invalid_argument _ -> true
  in
  let d = Abstraction_layer.Reliable.default_config in
  Alcotest.(check bool) "zero timeout" true
    (bad { d with Abstraction_layer.Reliable.timeout = 0.0 });
  Alcotest.(check bool) "backoff < 1" true
    (bad { d with Abstraction_layer.Reliable.backoff = 0.5 });
  Alcotest.(check bool) "max_tries < 1" true
    (bad { d with Abstraction_layer.Reliable.max_tries = 0 })

let () =
  Alcotest.run "ieee1905"
    [
      ( "tlv",
        [
          Alcotest.test_case "mac scheme" `Quick test_mac_of_node;
          Alcotest.test_case "roundtrips" `Quick test_tlv_roundtrips;
          Alcotest.test_case "capacity quantization" `Quick
            test_tlv_capacity_quantization;
          Alcotest.test_case "validation" `Quick test_tlv_validation;
          Alcotest.test_case "encode_all" `Quick test_tlv_encode_all;
          QCheck_alcotest.to_alcotest prop_tlv_unknown_forwarded;
        ] );
      ( "cmdu",
        [
          Alcotest.test_case "roundtrip" `Quick test_cmdu_roundtrip;
          Alcotest.test_case "validation" `Quick test_cmdu_validation;
        ] );
      ( "abstraction-layer",
        [
          Alcotest.test_case "topology exchange" `Quick test_al_topology_exchange;
          Alcotest.test_case "stale ignored" `Quick test_al_stale_messages_ignored;
          Alcotest.test_case "garbage resilience" `Quick test_al_garbage_resilience;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "ack stops retransmission" `Quick
            test_reliable_ack_stops_retransmission;
          Alcotest.test_case "exponential backoff schedule" `Quick
            test_reliable_backoff_schedule;
          Alcotest.test_case "bounded tries" `Quick test_reliable_gives_up;
          Alcotest.test_case "deterministic order" `Quick
            test_reliable_deterministic_order;
          Alcotest.test_case "re-send restarts" `Quick test_reliable_resend_restarts;
          Alcotest.test_case "config validation" `Quick test_reliable_bad_config;
        ] );
    ]
