(* The deterministic domain-pool executor: ordering, exception
   propagation, the metrics-registry merge, and end-to-end figure /
   chaos determinism across job counts (the [--jobs N] contract: any
   worker count yields byte-identical output). *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "jobs:4 == List.map" (List.map f xs)
    (Exec.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs:1 == List.map" (List.map f xs)
    (Exec.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "more jobs than items"
    (List.map f [ 1; 2; 3 ])
    (Exec.map ~jobs:16 f [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty list" [] (Exec.map ~jobs:4 f []);
  Alcotest.(check (list int)) "jobs:0 clamps to sequential" (List.map f xs)
    (Exec.map ~jobs:0 f xs)

let test_mapi_order () =
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string)) "indices follow submission order"
    [ "0a"; "1b"; "2c"; "3d"; "4e" ]
    (Exec.mapi ~jobs:3 (fun i s -> string_of_int i ^ s) xs)

let test_default_jobs () =
  Exec.set_default_jobs 3;
  Alcotest.(check int) "set_default_jobs" 3 (Exec.default_jobs ());
  Exec.set_default_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Exec.default_jobs ());
  Exec.set_default_jobs 1

exception Boom of int

let test_exception_rethrown () =
  match
    Exec.map ~jobs:4
      (fun i -> if i = 7 then raise (Boom i) else i)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 7 -> ()

let test_earliest_exception_wins () =
  (* Jobs 3, 8, 13 and 18 all fail; the submitter must see the
     earliest submitted failure whatever order workers finish in. *)
  match
    Exec.map ~jobs:4
      (fun i -> if i mod 5 = 3 then raise (Boom i) else i)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> Alcotest.(check int) "earliest failure" 3 n

let test_split_rngs_matches_loop () =
  (* Common.split_rngs must reproduce the historical sequential
     [Rng.split master] loop stream for stream. *)
  let a = Common.split_rngs (Rng.create 42) 6 in
  let master = Rng.create 42 in
  let b = List.init 6 (fun _ -> ()) |> List.map (fun () -> Rng.split master) in
  List.iter2
    (fun ra rb ->
      Alcotest.(check (list (float 0.0)))
        "same stream"
        (List.init 5 (fun _ -> Rng.float rb))
        (List.init 5 (fun _ -> Rng.float ra)))
    a b

let test_metrics_merge_equivalence () =
  (* A parallel map against the ambient registry must leave exactly
     the state the sequential run leaves: counters summed, gauges
     last-writer-wins, histogram buckets combined, series points in
     submission order. *)
  let work jobs =
    Obs.Runtime.clear ();
    let reg = Obs.Runtime.install_metrics () in
    ignore
      (Exec.map ~jobs
         (fun i ->
           match Obs.Runtime.metrics () with
           | None -> failwith "no ambient registry inside job"
           | Some r ->
             Obs.Metrics.Counter.add (Obs.Metrics.counter r "jobs.count") 1;
             Obs.Metrics.Gauge.set
               (Obs.Metrics.gauge r "jobs.last")
               (float_of_int i);
             Obs.Metrics.Histogram.observe
               (Obs.Metrics.histogram r "jobs.h")
               (float_of_int (i mod 7));
             Obs.Metrics.Series.add
               (Obs.Metrics.series r "jobs.s")
               (float_of_int i)
               (float_of_int (i * i)))
         (List.init 40 Fun.id));
    let out = Obs.Json.to_string (Obs.Metrics.to_json reg) in
    Obs.Runtime.clear ();
    out
  in
  let seq = work 1 in
  Alcotest.(check string) "jobs:4 registry == sequential" seq (work 4);
  Alcotest.(check string) "jobs:3 registry == sequential" seq (work 3)

let test_progress_observes_only () =
  (* A progress reporter is pure observation: installed, it sees every
     start and finish without changing results or ordering; the final
     snapshot reports the whole batch complete with nothing running. *)
  let xs = List.init 30 Fun.id in
  let f x = (x * 7) + 1 in
  let plain = Exec.map ~jobs:3 f xs in
  let snaps = ref [] in
  Exec.Progress.set_reporter (Some (fun s -> snaps := s :: !snaps));
  Fun.protect
    ~finally:(fun () -> Exec.Progress.set_reporter None)
    (fun () ->
      Alcotest.(check (list int))
        "reporter does not perturb jobs:3" plain (Exec.map ~jobs:3 f xs);
      (match !snaps with
      | last :: _ ->
        Alcotest.(check int) "final snapshot complete" 30
          last.Exec.Progress.completed;
        Alcotest.(check int) "total" 30 last.Exec.Progress.total;
        Alcotest.(check (list (pair int (float 1e9)))) "nothing running" []
          last.Exec.Progress.running
      | [] -> Alcotest.fail "reporter never called");
      (* Every task reports a start and a finish: 2N snapshots. *)
      Alcotest.(check int) "2N snapshots" 60 (List.length !snaps);
      snaps := [];
      Alcotest.(check (list int))
        "reporter does not perturb jobs:1" plain (Exec.map ~jobs:1 f xs);
      Alcotest.(check int) "sequential path reports too" 60
        (List.length !snaps));
  (* Reporter removed: maps still run and report nothing. *)
  snaps := [];
  Alcotest.(check (list int)) "uninstalled" plain (Exec.map ~jobs:3 f xs);
  Alcotest.(check int) "no snapshots" 0 (List.length !snaps)

(* --- end-to-end determinism across job counts --- *)

let fig4_json jobs =
  Obs.Json.to_string
    (Figure_json.fig4 (Fig4.run ~runs:8 ~seed:1 ~jobs Common.Residential))

let test_fig4_bytes_identical () =
  let j1 = fig4_json 1 in
  Alcotest.(check string) "fig4 --jobs 4 byte-identical" j1 (fig4_json 4);
  Alcotest.(check string) "fig4 --jobs 3 byte-identical" j1 (fig4_json 3)

let test_fig6_bytes_identical () =
  let j jobs =
    Obs.Json.to_string
      (Figure_json.fig6 (Fig6.run ~runs:6 ~seed:3 ~jobs Common.Residential))
  in
  Alcotest.(check string) "fig6 --jobs 4 byte-identical (option-filter path)"
    (j 1) (j 4)

let test_chaos_sweep_identical_checked () =
  (* The seeded chaos sweep under the runtime invariant checker: the
     parallel sweep must serialize byte-for-byte like the sequential
     runs, with every run audited (EMPOWER_CHECK=1). This test mutates
     the environment, so it runs last. *)
  Unix.putenv "EMPOWER_CHECK" "1";
  let seeds = [ 3; 7; 11 ] in
  let seq =
    List.map (fun seed -> Chaos.run ~seed ~duration:4.0 ()) seeds
  in
  let par = Chaos.sweep ~duration:4.0 ~jobs:3 seeds in
  Alcotest.(check string) "chaos sweep byte-identical under EMPOWER_CHECK"
    (Obs.Json.to_string (Chaos.sweep_json seq))
    (Obs.Json.to_string (Chaos.sweep_json par))

let () =
  Alcotest.run "exec"
    [
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_map_order;
          Alcotest.test_case "mapi indices" `Quick test_mapi_order;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "exception rethrown" `Quick test_exception_rethrown;
          Alcotest.test_case "earliest exception wins" `Quick
            test_earliest_exception_wins;
          Alcotest.test_case "split_rngs matches loop" `Quick
            test_split_rngs_matches_loop;
          Alcotest.test_case "metrics merge equivalence" `Quick
            test_metrics_merge_equivalence;
          Alcotest.test_case "progress reporter observes only" `Quick
            test_progress_observes_only;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4 json across jobs" `Slow
            test_fig4_bytes_identical;
          Alcotest.test_case "fig6 json across jobs" `Slow
            test_fig6_bytes_identical;
          Alcotest.test_case "chaos sweep checked" `Slow
            test_chaos_sweep_identical_checked;
        ] );
    ]
