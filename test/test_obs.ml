(* Tests for the observability layer (lib/obs): the JSON codec, the
   event round-trip across every variant, the streaming histogram, the
   metrics registry, the recorder's aggregation against the engine's
   own accounting, the trace-on/trace-off determinism contract and the
   strict JSONL file reader. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let has_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("int", Int (-42));
        ("float", Float (0.1 +. 0.2));
        ("tiny", Float 2.2250738585072014e-308);
        ("big", Float 1.7976931348623157e308);
        ("string", String "quote\" slash\\ newline\n tab\t ctrl\x01 caf\xc3\xa9");
        ("list", List [ Null; Bool true; Bool false; Int 0 ]);
        ("empty_obj", Obj []);
        ("empty_list", List []);
      ]
  in
  match parse (to_string v) with
  | Ok v' ->
    if v <> v' then Alcotest.failf "JSON does not round-trip: %s" (to_string v)
  | Error e -> Alcotest.failf "parse of own output failed: %s" e

let test_json_escapes () =
  match Obs.Json.parse {|"aéA\nb"|} with
  | Ok (Obs.Json.String s) ->
    Alcotest.(check string) "unicode escapes" "a\xc3\xa9A\nb" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse: %s" e

let test_json_rejects () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      {|{"a":}|};
      "tru";
      {|"unterminated|};
      "1 2";
      {|{'a':1}|};
      "[1 2]";
      "nan";
    ]

let test_json_strict_numbers () =
  (* JSON's number grammar, not OCaml's laxer converters. *)
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ "+5"; "01"; "1."; ".5"; "-"; "-."; "1e"; "1e+"; "00"; "0x10"; "1_000" ];
  List.iter
    (fun (s, want) ->
      match Obs.Json.parse s with
      | Ok v when v = want -> ()
      | Ok v -> Alcotest.failf "%S parsed to %s" s (Obs.Json.to_string v)
      | Error e -> Alcotest.failf "%S rejected: %s" s e)
    [
      ("0", Obs.Json.Int 0);
      ("-0", Obs.Json.Int 0);
      ("0.25", Obs.Json.Float 0.25);
      ("-0.5e+2", Obs.Json.Float (-50.0));
      ("1e9", Obs.Json.Float 1e9);
      ("9007199254740993", Obs.Json.Int 9007199254740993);
    ]

let test_json_error_offsets () =
  (* Errors pinpoint the offending token's start, and anything after
     one top-level value is trailing garbage. *)
  let expect_offset s off =
    match Obs.Json.parse s with
    | Ok _ -> Alcotest.failf "parser accepted %S" s
    | Error m ->
      let want = Printf.sprintf "offset %d" off in
      if not (has_sub want m) then
        Alcotest.failf "parse %S: error %S does not carry %S" s m want
  in
  expect_offset "[1, 7.5.2]" 4;
  expect_offset {|{"a": 01}|} 6;
  expect_offset {|{"a": +5}|} 6;
  expect_offset "[1] garbage" 4;
  expect_offset "1 2" 2;
  expect_offset "{} {}" 3

let test_json_accessors () =
  let open Obs.Json in
  let j = Obj [ ("n", Int 3); ("x", Float 2.5); ("s", String "hi") ] in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (member "n" j) to_int_opt);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (member "zzz" j) to_int_opt);
  check_float "float member" 2.5
    (Option.value ~default:Float.nan (Option.bind (member "x" j) to_float_opt));
  Alcotest.(check (option int)) "int refuses non-integral float" None
    (to_int_opt (Float 2.5))

(* ---------- Trace codec ---------- *)

(* Awkward times and values on purpose: the codec must round-trip
   bit-exactly, not just to printf precision. *)
let all_event_variants =
  let open Obs.Trace in
  [
    Enqueue { t = 0.1 +. 0.2; link = 96; flow = 0; seq = 0; bytes = 12000; qlen = 1 };
    Mac_grant
      { t = 1.0 /. 3.0; link = 3; flow = 1; seq = 7; collided = false; airtime = 0.00096 };
    Mac_grant
      { t = Float.ldexp 1.0 (-40); link = 3; flow = 1; seq = 8; collided = true;
        airtime = 1e-9 };
    Dequeue { t = 2.0; link = 0; flow = 0; seq = 123456789 };
    Collision { t = 3.5; link = 12; flow = 2; seq = 0 };
    Drop { t = 4.0; link = Some 5; flow = 0; seq = 1; reason = Queue_overflow };
    Drop { t = 4.0; link = Some 5; flow = 0; seq = 2; reason = Link_down };
    Drop { t = 4.0; link = None; flow = 0; seq = 3; reason = Misroute };
    Drop { t = 4.0; link = Some 9; flow = 0; seq = 4; reason = Backlog_cleared };
    Drop { t = 4.0; link = Some 2; flow = 1; seq = 5; reason = Fault_injected };
    Delivery { t = 5.0; flow = 0; seq = 42; bytes = 12000; delay = 0.19483726451 };
    Price_update { t = 6.0; link = 7; gamma = 1.1201133; price = 0.07 /. 0.9 };
    Rate_update { t = 6.0; flow = 0; rates = [| 10.25; 0.0; 3.3333333333333335 |] };
    Rate_update { t = 6.1; flow = 1; rates = [||] };
    Ack { t = 7.0; flow = 0; qr = [| 0.125; 0.5 |]; bytes = [| 48000; 0 |] };
    Link_event { t = 8.0; link = 11; capacity = 0.0 };
    Link_event { t = 9.0; link = 11; capacity = 97.53 };
    Loss_event { t = 10.0; link = 4; prob = 0.19483726451 };
    Loss_event { t = 10.5; link = 4; prob = 0.0 };
    Ctrl_event { t = 11.0; drop = 1.0 /. 3.0; delay = 0.07 /. 0.9 };
    Route_dead { t = 12.0; flow = 0; route = 1; detect_s = 0.29999999999999893 };
    Route_probe { t = 12.5; flow = 0; route = 1; attempt = 3 };
    Route_restored { t = 13.0; flow = 0; route = 1; down_s = 2.0 /. 0.7 };
    Price_reset { t = 14.0; link = 17 };
    Ecn_mark { t = 15.0; link = 3; flow = 1; seq = 99; occ = 60000 };
  ]

let test_event_roundtrip () =
  List.iter
    (fun e ->
      match Obs.Trace.decode (Obs.Trace.encode e) with
      | Ok e' ->
        if e <> e' then
          Alcotest.failf "event %S does not round-trip: %s" (Obs.Trace.kind e)
            (Obs.Trace.encode e)
      | Error m ->
        Alcotest.failf "decode of own encoding (%s) failed: %s"
          (Obs.Trace.kind e) m)
    all_event_variants;
  (* Every kind of the schema's closed set appears above. *)
  let covered =
    List.sort_uniq compare (List.map Obs.Trace.kind all_event_variants)
  in
  Alcotest.(check (list string))
    "all kinds covered" (List.sort compare Obs.Trace.kinds) covered

let test_decode_rejects () =
  List.iter
    (fun line ->
      match Obs.Trace.decode line with
      | Ok _ -> Alcotest.failf "decoder accepted %S" line
      | Error _ -> ())
    [
      {|{"ev":"warp","t":0}|};                                 (* unknown kind *)
      {|{"t":0,"link":1,"flow":0,"seq":0}|};                   (* no kind *)
      {|{"ev":"dequeue","t":0,"link":1,"flow":0}|};            (* missing seq *)
      {|{"ev":"dequeue","t":0,"link":"one","flow":0,"seq":0}|};(* mistyped *)
      {|{"ev":"drop","t":0,"link":1,"flow":0,"seq":0,"reason":"gremlins"}|};
      "not json at all";
      "";
    ]

(* ---------- Histogram ---------- *)

let test_histogram () =
  let open Obs.Metrics in
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  check_float ~eps:1e-6 "sum exact" 500500.0 (Histogram.sum h);
  check_float ~eps:1e-9 "mean exact" 500.5 (Histogram.mean h);
  check_float "min exact" 1.0 (Histogram.minimum h);
  check_float "max exact" 1000.0 (Histogram.maximum h);
  let rel q expected =
    let v = Histogram.quantile h q in
    if Float.abs (v -. expected) /. expected > 0.01 then
      Alcotest.failf "quantile %.2f: got %.3f, want %.3f within 1%%" q v expected
  in
  rel 0.5 500.0;
  rel 0.95 950.0;
  rel 0.99 990.0;
  check_float "q0 is min" 1.0 (Histogram.quantile h 0.0);
  check_float "q1 is max" 1000.0 (Histogram.quantile h 1.0)

let test_histogram_zero_bucket () =
  let open Obs.Metrics in
  let h = Histogram.create () in
  Histogram.observe h 0.0;
  Histogram.observe h (-3.0);
  Histogram.observe h 10.0;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  check_float "negative clamped into zero bucket" 0.0 (Histogram.quantile h 0.3);
  check_float "max" 10.0 (Histogram.maximum h)

let test_registry () =
  let open Obs.Metrics in
  let reg = create () in
  let c = counter reg "a.count" in
  Counter.incr c;
  Counter.add c 4;
  Alcotest.(check int) "same name, same counter" 5
    (Counter.value (counter reg "a.count"));
  Gauge.set (gauge reg "b.gauge") 2.5;
  Series.add (series reg "c.series") 1.0 10.0;
  ignore (histogram reg "d.hist");
  Alcotest.(check (list string))
    "names sorted"
    [ "a.count"; "b.gauge"; "c.series"; "d.hist" ]
    (names reg);
  (match try Some (gauge reg "a.count") with Invalid_argument _ -> None with
  | None -> ()
  | Some _ -> Alcotest.fail "kind mismatch must raise Invalid_argument");
  match Obs.Json.member "a.count" (to_json reg) with
  | Some (Obs.Json.Int 5) -> ()
  | _ -> Alcotest.fail "to_json must carry the counter value"

(* ---------- engine integration ---------- *)

let small_net () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  (g, Domain.single_domain_per_tech g)

let saturated_flow g dom ~src ~dst =
  let comb = Multipath.find g dom ~src ~dst in
  {
    Engine.src;
    dst;
    routes = Multipath.routes comb;
    init_rates = List.map snd comb.Multipath.paths;
    workload = Workload.Saturated;
    transport = Engine.Udp;
    tcp_params = None;
    start_time = 0.0;
    stop_time = None;
  }

let test_trace_determinism () =
  (* A sink only observes: same seed, bit-identical results with and
     without one (modulo the wall-clock perf block). *)
  let g, dom = small_net () in
  let flows = [ saturated_flow g dom ~src:0 ~dst:2 ] in
  let base =
    Engine.strip_perf (Engine.run (Rng.create 7) g dom ~flows ~duration:3.0)
  in
  let sink, got = Obs.Trace.collector () in
  let traced =
    Engine.strip_perf
      (Engine.run ~trace:sink (Rng.create 7) g dom ~flows ~duration:3.0)
  in
  if base <> traced then Alcotest.fail "tracing perturbed the simulation";
  Alcotest.(check bool) "trace saw events" true (got () <> [])

let test_perf_populated () =
  let g, dom = small_net () in
  let flows = [ saturated_flow g dom ~src:0 ~dst:2 ] in
  let res = Engine.run (Rng.create 7) g dom ~flows ~duration:1.0 in
  Alcotest.(check bool)
    "events/s positive" true
    (res.Engine.perf.Engine.events_per_s > 0.0);
  Alcotest.(check bool)
    "peak queue depth positive" true
    (res.Engine.perf.Engine.peak_queue_depth > 0)

let fig4_scenario () =
  match Tracing.find "fig4" with
  | Some sc -> sc
  | None -> Alcotest.fail "fig4 trace scenario missing"

let test_summary_cross_check () =
  (* The acceptance bar of this layer: replaying the fig4-scale trace
     through Obs.Summary reproduces the engine's goodput to 1e-9 and
     its delay statistics; Tracing.cross_check holds every tolerance. *)
  let sc = fig4_scenario () in
  let sink, got = Obs.Trace.collector () in
  let o = sc.Tracing.exec ~trace:sink () in
  let s = Obs.Summary.of_events ~duration:o.Tracing.duration (got ()) in
  (match Tracing.cross_check o s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "cross-check failed:\n%s" m);
  Alcotest.(check int) "summary event count" (List.length (got ())) s.Obs.Summary.events

let test_recorder_aggregation () =
  (* Feed the fig4-scale trace into a Recorder and compare the
     registry against the engine's flow_result: the delay histogram
     sees the identical stream (bit-identical mean and p95), and the
     per-reason drop counters sum to the engine's queue_drops. *)
  let sc = fig4_scenario () in
  let reg = Obs.Metrics.create () in
  let rcd = Obs.Recorder.create reg in
  let o = sc.Tracing.exec ~trace:(Obs.Recorder.sink rcd) () in
  Obs.Recorder.flush rcd ~now:o.Tracing.duration;
  let fr = o.Tracing.result.Engine.flows.(0) in
  let h = Obs.Metrics.histogram reg "flow.0.delay" in
  check_float ~eps:0.0 "delay histogram mean == engine mean"
    fr.Engine.mean_delay
    (Obs.Metrics.Histogram.mean h);
  check_float ~eps:0.0 "delay histogram p95 == engine p95"
    fr.Engine.p95_delay
    (Obs.Metrics.Histogram.quantile h 0.95);
  let drop r = Obs.Metrics.Counter.value (Obs.Metrics.counter reg ("drops." ^ r)) in
  Alcotest.(check int) "drop counters sum to engine queue_drops"
    o.Tracing.result.Engine.queue_drops
    (drop "queue_overflow" + drop "link_down" + drop "backlog_cleared");
  Alcotest.(check bool) "event counter ran" true
    (Obs.Metrics.Counter.value (Obs.Metrics.counter reg "trace.events") > 0);
  Alcotest.(check bool) "per-link utilisation recorded" true
    (List.exists
       (fun n ->
         String.length n > 5
         && String.sub n 0 5 = "link."
         && Obs.Metrics.Series.length (Obs.Metrics.series reg n) > 0)
       (List.filter
          (fun n ->
            String.length n > 5
            && String.sub n 0 5 = "link."
            && String.length n > 5
            && String.sub n (String.length n - 5) 5 = ".util")
          (Obs.Metrics.names reg)))

let test_runtime_autoattach () =
  (* With the global registry installed and no explicit sink, the
     engine attaches a recorder by itself. *)
  Obs.Runtime.clear ();
  let reg = Obs.Runtime.install_metrics () in
  Fun.protect ~finally:Obs.Runtime.clear (fun () ->
      let g, dom = small_net () in
      let flows = [ saturated_flow g dom ~src:0 ~dst:2 ] in
      ignore (Engine.run (Rng.create 7) g dom ~flows ~duration:1.0);
      Alcotest.(check bool) "registry populated" true
        (Obs.Metrics.Counter.value (Obs.Metrics.counter reg "trace.events") > 0))

(* ---------- Summary.of_file strictness ---------- *)

let with_temp_trace lines body =
  let path = Filename.temp_file "empower_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      body path)

let valid_line =
  {|{"ev":"delivery","t":0.5,"flow":0,"seq":0,"bytes":12000,"delay":0.01}|}

let test_of_file_ok () =
  with_temp_trace [ valid_line; valid_line ] (fun path ->
      match Obs.Summary.of_file ~duration:1.0 path with
      | Ok s ->
        Alcotest.(check int) "events" 2 s.Obs.Summary.events;
        (match Obs.Summary.flow_stats s 0 with
        | Some st ->
          Alcotest.(check int) "bytes" 24000 st.Obs.Summary.delivered_bytes;
          check_float "goodput" 0.192 st.Obs.Summary.goodput_mbps
        | None -> Alcotest.fail "flow 0 missing from summary")
      | Error m -> Alcotest.failf "valid trace rejected: %s" m)

let test_of_file_strict () =
  let expect_error ~needle lines =
    with_temp_trace lines (fun path ->
        match Obs.Summary.of_file ~duration:1.0 path with
        | Ok _ -> Alcotest.failf "accepted a trace with %s" needle
        | Error m ->
          (* The error names the offending line number. *)
          let has sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          if not (has needle m) then
            Alcotest.failf "error %S does not mention %S" m needle)
  in
  expect_error ~needle:":2:" [ valid_line; "this is not json" ];
  expect_error ~needle:":1:" [ {|{"ev":"warp","t":0}|} ];
  expect_error ~needle:":2:" [ valid_line; "" ]

(* ---------- sampled tracing ---------- *)

let test_sampled_systematic () =
  let ev i = Obs.Trace.Price_reset { t = float_of_int i; link = i } in
  (* 1-in-every systematic: offers 1, every+1, 2*every+1, ... kept. *)
  let sink, got = Obs.Trace.collector () in
  let s = Obs.Trace.sampled ~every:3 sink in
  Alcotest.(check int) "period" 3 (Obs.Trace.sample_period s);
  for i = 1 to 10 do
    Obs.Trace.emit s (ev i)
  done;
  let kept =
    List.map
      (function Obs.Trace.Price_reset { link; _ } -> link | _ -> -1)
      (got ())
  in
  Alcotest.(check (list int)) "offers 1,4,7,10 kept" [ 1; 4; 7; 10 ] kept;
  (* Count contract: ceil(offered / every), here ceil(10/3) = 4. *)
  Alcotest.(check int) "ceil(10/3)" 4 (List.length kept);
  (* Stacking composes multiplicatively and stays systematic. *)
  let sink2, got2 = Obs.Trace.collector () in
  let s2 = Obs.Trace.sampled ~every:2 (Obs.Trace.sampled ~every:3 sink2) in
  Alcotest.(check int) "periods multiply" 6 (Obs.Trace.sample_period s2);
  for i = 1 to 12 do
    (* The accept/push split the engine's hot sites use. *)
    if Obs.Trace.accept s2 then Obs.Trace.push s2 (ev i)
  done;
  let kept2 =
    List.map
      (function Obs.Trace.Price_reset { link; _ } -> link | _ -> -1)
      (got2 ())
  in
  Alcotest.(check (list int)) "offers 1,7 kept" [ 1; 7 ] kept2;
  match Obs.Trace.sampled ~every:0 sink with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "every:0 must be rejected"

let test_sampled_accuracy () =
  (* The documented accuracy contract at the BENCH setting (every:16):
     the sampled replay's delivery count scales by the period and its
     p99 delay stays within 10% relative of the full trace's exact
     order statistic. Also: sampling must not perturb the run. *)
  let sc = fig4_scenario () in
  let full_sink, full_got = Obs.Trace.collector () in
  let o = sc.Tracing.exec ~trace:full_sink () in
  let full = Obs.Summary.of_events ~duration:o.Tracing.duration (full_got ()) in
  let samp_sink, samp_got = Obs.Trace.collector () in
  let o2 = sc.Tracing.exec ~trace:(Obs.Trace.sampled ~every:16 samp_sink) () in
  if Engine.strip_perf o.Tracing.result <> Engine.strip_perf o2.Tracing.result
  then Alcotest.fail "sampled sink perturbed the simulation";
  let sampled =
    Obs.Summary.of_events ~duration:o2.Tracing.duration (samp_got ())
  in
  let n_full = List.length (full_got ()) and n_samp = List.length (samp_got ()) in
  Alcotest.(check int) "event count = ceil(offered/16)"
    ((n_full + 15) / 16) n_samp;
  (match (Obs.Summary.flow_stats full 0, Obs.Summary.flow_stats sampled 0) with
  | Some ff, Some fs ->
    Alcotest.(check bool) "subsample is non-trivial" true
      (fs.Obs.Summary.delivered_frames >= 100);
    let rel =
      Float.abs (fs.Obs.Summary.p99_delay -. ff.Obs.Summary.p99_delay)
      /. ff.Obs.Summary.p99_delay
    in
    if rel > 0.10 then
      Alcotest.failf "sampled p99 off by %.2f%% (full %.6g, sampled %.6g)"
        (100.0 *. rel) ff.Obs.Summary.p99_delay fs.Obs.Summary.p99_delay
  | _ -> Alcotest.fail "flow 0 missing from a summary");
  (* The contract's nominal regime — >= 1000 retained deliveries — on
     a deterministic stream with a long delay tail. The subsample's
     p99 is an exact order statistic of a systematic 1-in-16 pick, so
     it must land within 10% relative of the full stream's p99. *)
  let delay_of i =
    let u = float_of_int ((i * 2654435761) land 0xFFFF) /. 65536.0 in
    0.01 /. (1.0 -. (0.999 *. u))
  in
  let offered = 32_000 in
  let synth every =
    let sink, got = Obs.Trace.collector () in
    let s = if every = 1 then sink else Obs.Trace.sampled ~every sink in
    for i = 1 to offered do
      Obs.Trace.emit s
        (Obs.Trace.Delivery
           { t = float_of_int i *. 1e-3; flow = 0; seq = i; bytes = 1500;
             delay = delay_of i })
    done;
    Obs.Summary.of_events ~duration:40.0 (got ())
  in
  let all = synth 1 and sub = synth 16 in
  match (Obs.Summary.flow_stats all 0, Obs.Summary.flow_stats sub 0) with
  | Some fa, Some fs ->
    Alcotest.(check int) "retained = offered/16" (offered / 16)
      fs.Obs.Summary.delivered_frames;
    Alcotest.(check bool) "contract regime reached" true
      (fs.Obs.Summary.delivered_frames >= 1000);
    let rel =
      Float.abs (fs.Obs.Summary.p99_delay -. fa.Obs.Summary.p99_delay)
      /. fa.Obs.Summary.p99_delay
    in
    if rel > 0.10 then
      Alcotest.failf "synthetic sampled p99 off by %.2f%% (full %.6g, sampled %.6g)"
        (100.0 *. rel) fa.Obs.Summary.p99_delay fs.Obs.Summary.p99_delay
  | _ -> Alcotest.fail "flow 0 missing from a synthetic summary"

(* ---------- flight recorder ---------- *)

let rec last_n n xs =
  let len = List.length xs in
  if len <= n then xs else last_n n (List.tl xs)

let test_flight_fidelity () =
  (* The struct-of-arrays ring reproduces every kind bit-exactly. *)
  let n = List.length all_event_variants in
  let fl = Obs.Flight.create ~capacity:n () in
  List.iter (Obs.Flight.event fl) all_event_variants;
  if Obs.Flight.events fl <> all_event_variants then
    Alcotest.fail "ring does not reproduce the recorded events";
  Alcotest.(check int) "recorded" n (Obs.Flight.recorded fl);
  Obs.Flight.clear fl;
  Alcotest.(check int) "clear resets" 0 (Obs.Flight.recorded fl);
  Alcotest.(check bool) "clear empties" true (Obs.Flight.events fl = [])

let test_flight_wraparound () =
  let n = List.length all_event_variants in
  let cap = 8 in
  let fl = Obs.Flight.create ~capacity:cap () in
  List.iter (Obs.Flight.event fl) all_event_variants;
  Alcotest.(check int) "recorded counts every offer" n (Obs.Flight.recorded fl);
  let expect = last_n cap all_event_variants in
  if Obs.Flight.events fl <> expect then
    Alcotest.fail "ring must hold the last [capacity] events, oldest first";
  (* A dump decodes strictly, line for line, to the ring contents. *)
  let path = Filename.temp_file "empower_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Obs.Flight.dump ~path fl with
      | Error m -> Alcotest.failf "dump: %s" m
      | Ok (path', written) ->
        Alcotest.(check string) "dump reports its path" path path';
        Alcotest.(check int) "dump writes capacity lines" cap written;
        (match Obs.Summary.read_file path with
        | Ok evs ->
          if evs <> expect then
            Alcotest.fail "dump does not decode back to the ring contents"
        | Error m -> Alcotest.failf "dump not strictly replayable: %s" m))

let test_flight_invariant_dump () =
  (* The acceptance scenario: an invariant violation escaping the
     event loop must leave a strictly replayable flight dump behind.
     The violation is forced through the documented harness hook —
     a phantom drop breaks frame conservation at the next audit. *)
  let g, dom = small_net () in
  let flows = [ saturated_flow g dom ~src:0 ~dst:2 ] in
  let path = Filename.temp_file "empower_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let fl = Obs.Flight.create ~capacity:512 ~dump_path:path () in
      let inv = Invariants.create () in
      let seen = ref 0 in
      let sabotage =
        Obs.Trace.of_fn (fun ev ->
            incr seen;
            if !seen = 200 then
              Invariants.on_drop inv ~now:(Obs.Trace.time ev) ~flow:0
                ~link:None ~reason:Invariants.Misroute)
      in
      (match
         Engine.run ~invariants:inv ~trace:sabotage ~flight:fl (Rng.create 7)
           g dom ~flows ~duration:3.0
       with
      | _ -> Alcotest.fail "sabotaged run must raise Violation"
      | exception Invariants.Violation _ -> ());
      match Obs.Summary.read_file path with
      | Error m -> Alcotest.failf "flight dump not strictly replayable: %s" m
      | Ok evs ->
        Alcotest.(check bool) "dump holds events" true (evs <> []);
        let s = Obs.Summary.of_events ~duration:3.0 evs in
        Alcotest.(check int) "replay folds every dumped line"
          (List.length evs) s.Obs.Summary.events)

(* ---------- Metrics.merge histogram accuracy ---------- *)

let test_merge_histogram_accuracy () =
  (* Two halves of 1..20000 sketched separately, merged bucket by
     bucket: quantiles must stay within the sketch's documented 0.5%
     relative error, exactly as if one histogram had seen the full
     stream. *)
  let open Obs.Metrics in
  let a = create () and b = create () in
  let ha = histogram a "delay" and hb = histogram b "delay" in
  for i = 1 to 20000 do
    let v = float_of_int i in
    if i mod 2 = 0 then Histogram.observe ha v else Histogram.observe hb v
  done;
  merge ~into:a b;
  let h = histogram a "delay" in
  Alcotest.(check int) "merged count" 20000 (Histogram.count h);
  check_float ~eps:1e-6 "merged sum exact" 200010000.0 (Histogram.sum h);
  check_float "merged min" 1.0 (Histogram.minimum h);
  check_float "merged max" 20000.0 (Histogram.maximum h);
  let rel q expected =
    let v = Histogram.quantile h q in
    if Float.abs (v -. expected) /. expected > 0.005 then
      Alcotest.failf "merged q%.2f: got %.2f, want %.2f within 0.5%%" q v
        expected
  in
  rel 0.50 10000.0;
  rel 0.95 19000.0;
  rel 0.99 19800.0

let test_summary_counts_marks () =
  (* Ecn_mark events land in [Summary.marks] (and nowhere else: a
     mark is an admission, not a drop or a delivery). *)
  let evs =
    [
      Obs.Trace.Ecn_mark { t = 0.5; link = 0; flow = 0; seq = 1; occ = 24000 };
      Obs.Trace.Ecn_mark { t = 0.6; link = 1; flow = 0; seq = 2; occ = 36000 };
      Obs.Trace.Delivery { t = 0.7; flow = 0; seq = 1; bytes = 12000; delay = 0.2 };
    ]
  in
  let s = Obs.Summary.of_events ~duration:1.0 evs in
  Alcotest.(check int) "marks counted" 2 s.Obs.Summary.marks;
  Alcotest.(check (list (pair string int))) "no drops" []
    (List.map
       (fun (r, n) -> (Obs.Trace.drop_reason_name r, n))
       s.Obs.Summary.drops)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "strict number grammar" `Quick
            test_json_strict_numbers;
          Alcotest.test_case "errors pinpoint offsets" `Quick
            test_json_error_offsets;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "systematic 1-in-N" `Quick test_sampled_systematic;
          Alcotest.test_case "p99 within contract at every:16" `Slow
            test_sampled_accuracy;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring fidelity across all kinds" `Quick
            test_flight_fidelity;
          Alcotest.test_case "wraparound keeps the last N" `Quick
            test_flight_wraparound;
          Alcotest.test_case "invariant violation dumps the ring" `Quick
            test_flight_invariant_dump;
        ] );
      ( "trace codec",
        [
          Alcotest.test_case "every variant round-trips" `Quick test_event_roundtrip;
          Alcotest.test_case "rejects bad lines" `Quick test_decode_rejects;
          Alcotest.test_case "summary counts marks" `Quick
            test_summary_counts_marks;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_histogram;
          Alcotest.test_case "histogram zero bucket" `Quick test_histogram_zero_bucket;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "merge keeps histogram accuracy" `Quick
            test_merge_histogram_accuracy;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sink does not perturb the run" `Quick
            test_trace_determinism;
          Alcotest.test_case "perf block populated" `Quick test_perf_populated;
          Alcotest.test_case "summary replay == engine accounting" `Slow
            test_summary_cross_check;
          Alcotest.test_case "recorder aggregation == engine accounting" `Slow
            test_recorder_aggregation;
          Alcotest.test_case "global registry auto-attach" `Quick
            test_runtime_autoattach;
        ] );
      ( "jsonl file",
        [
          Alcotest.test_case "valid trace accepted" `Quick test_of_file_ok;
          Alcotest.test_case "strict rejection with line numbers" `Quick
            test_of_file_strict;
        ] );
    ]
