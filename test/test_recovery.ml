(* Failure-detector flapping tests (lib/recovery). Crash/restart
   cycles — including cycles faster than hello_timeout — must not
   leak Suspect state across recoveries or declare a route dead
   twice without an intervening recovery: that is what keeps the
   engine from double-redistributing a flapping route's rate mass. *)

let config = Recovery.default
let frame = 1500.0

(* One ack-report window: [Ack] delivers bytes, [Miss] injects a
   full-rate window (> 2 frames) with nothing acked, [Idle] injects
   nothing. *)
type window = Ack | Miss | Idle

let observe det ~route ~now = function
  | Ack ->
    Recovery.Detector.observe det ~route ~now ~injected:(4.0 *. frame)
      ~acked:(4.0 *. frame) ~frame_bytes:frame
  | Miss ->
    Recovery.Detector.observe det ~route ~now ~injected:(4.0 *. frame)
      ~acked:0.0 ~frame_bytes:frame
  | Idle ->
    Recovery.Detector.observe det ~route ~now ~injected:0.0 ~acked:0.0
      ~frame_bytes:frame

let run_windows ?(dt = 0.1) windows =
  let det = Recovery.Detector.create config ~n_routes:1 ~now:0.0 in
  List.mapi
    (fun i w ->
      let now = dt *. float_of_int (i + 1) in
      let v = observe det ~route:0 ~now w in
      (v, Recovery.Detector.suspicion det 0))
    windows
  |> fun verdicts -> (det, verdicts)

(* ---------- unit tests ---------- *)

let test_lifecycle () =
  let _, verdicts =
    run_windows [ Miss; Miss; Miss; Miss; Ack; Ack ]
  in
  match List.map fst verdicts with
  | [ Recovery.Detector.Suspect 1; Suspect 2; Down _; Still_down;
      Recovered _; Alive ] -> ()
  | _ -> Alcotest.fail "expected suspect/suspect/down/still/recovered/alive"

(* Flapping faster than the suspicion threshold: two misses then an
   ack, repeated. The route must never be declared dead and every ack
   must clear the miss count completely. *)
let test_fast_flap_no_leak () =
  let det, verdicts =
    run_windows
      (List.concat (List.init 20 (fun _ -> [ Miss; Miss; Ack ])))
  in
  Alcotest.(check bool) "never declared dead" false (Recovery.Detector.dead det 0);
  List.iter
    (fun (v, suspicion) ->
      match v with
      | Recovery.Detector.Down _ | Recovery.Detector.Still_down
      | Recovery.Detector.Recovered _ ->
        Alcotest.fail "fast flap must never reach Down"
      | Recovery.Detector.Alive ->
        Alcotest.(check int) "ack clears all suspicion" 0 suspicion
      | Recovery.Detector.Suspect k ->
        Alcotest.(check int) "suspicion equals verdict" k suspicion)
    verdicts

(* Full crash/restart cycles: every outage takes a fresh
   dead_ack_threshold misses — suspicion from the previous cycle must
   not carry over and shorten detection. *)
let test_slow_flap_full_threshold_each_cycle () =
  let cycle = [ Miss; Miss; Miss; Ack ] in
  let _, verdicts = run_windows (List.concat (List.init 10 (fun _ -> cycle))) in
  List.iteri
    (fun i (v, _) ->
      let pos = i mod List.length cycle in
      match (pos, v) with
      | 0, Recovery.Detector.Suspect 1 | 1, Recovery.Detector.Suspect 2 -> ()
      | 2, Recovery.Detector.Down _ -> ()
      | 3, Recovery.Detector.Recovered _ -> ()
      | _ ->
        Alcotest.failf "window %d: unexpected verdict at cycle position %d" i
          pos)
    verdicts

let test_recovered_down_for () =
  let det = Recovery.Detector.create config ~n_routes:1 ~now:0.0 in
  ignore (observe det ~route:0 ~now:0.1 Miss);
  ignore (observe det ~route:0 ~now:0.2 Miss);
  (match observe det ~route:0 ~now:0.3 Miss with
  | Recovery.Detector.Down { since } ->
    Alcotest.(check (float 1e-9)) "since = last good time" 0.0 since
  | _ -> Alcotest.fail "third miss must declare Down");
  match observe det ~route:0 ~now:1.5 Ack with
  | Recovery.Detector.Recovered { down_for } ->
    Alcotest.(check (float 1e-9)) "down_for = now - declaration" 1.2 down_for
  | _ -> Alcotest.fail "ack on a dead route must report Recovered"

(* The hello-timeout path: traffic too slow for the k-miss rule
   (<= 2 frames per window) still pins the route dead once the
   outstanding bytes have seen no ack for hello_timeout. *)
let test_hello_timeout () =
  let det = Recovery.Detector.create config ~n_routes:1 ~now:0.0 in
  let slow now =
    Recovery.Detector.observe det ~route:0 ~now ~injected:frame ~acked:0.0
      ~frame_bytes:frame
  in
  let rec drive now =
    if now > 3.0 then Alcotest.fail "hello timeout never fired"
    else
      match slow now with
      | Recovery.Detector.Down _ -> now
      | _ -> drive (now +. 0.1)
  in
  let fired = drive 0.1 in
  Alcotest.(check bool) "fires after hello_timeout" true
    (fired > config.Recovery.hello_timeout
    && fired <= config.Recovery.hello_timeout +. 0.2 +. 1e-9)

(* An idle route (nothing outstanding) never times out. *)
let test_idle_never_dies () =
  let det, verdicts = run_windows ~dt:0.5 (List.init 20 (fun _ -> Idle)) in
  Alcotest.(check bool) "idle route stays alive" false
    (Recovery.Detector.dead det 0);
  List.iter
    (fun (v, _) ->
      if v <> Recovery.Detector.Alive then
        Alcotest.fail "idle windows must stay Alive")
    verdicts

(* ---------- property: no leak, strict Down/Recovered alternation ---------- *)

let window_gen =
  QCheck.Gen.(
    map
      (fun b -> match b with 0 -> Ack | 1 -> Miss | _ -> Idle)
      (int_bound 2))

let arb_windows =
  QCheck.make
    ~print:(fun ws ->
      String.concat ""
        (List.map (function Ack -> "A" | Miss -> "M" | Idle -> "I") ws))
    QCheck.Gen.(list_size (int_range 1 200) window_gen)

let prop_no_leak =
  QCheck.Test.make ~name:"flapping leaks no Suspect state" ~count:300
    arb_windows (fun windows ->
      let det = Recovery.Detector.create config ~n_routes:1 ~now:0.0 in
      let down = ref false in
      List.iteri
        (fun i w ->
          let now = 0.1 *. float_of_int (i + 1) in
          let v = observe det ~route:0 ~now w in
          let suspicion = Recovery.Detector.suspicion det 0 in
          (match v with
          | Recovery.Detector.Down _ ->
            if !down then
              QCheck.Test.fail_report "Down without intervening Recovered";
            down := true
          | Recovery.Detector.Recovered _ ->
            if not !down then
              QCheck.Test.fail_report "Recovered while not down";
            down := false;
            if suspicion <> 0 then
              QCheck.Test.fail_report "recovery must clear all suspicion"
          | Recovery.Detector.Still_down ->
            if not !down then
              QCheck.Test.fail_report "Still_down while not down"
          | Recovery.Detector.Alive ->
            if !down then QCheck.Test.fail_report "Alive while down";
            if suspicion <> 0 then
              QCheck.Test.fail_report "Alive with nonzero suspicion"
          | Recovery.Detector.Suspect k ->
            if !down then QCheck.Test.fail_report "Suspect while down";
            if k <> suspicion then
              QCheck.Test.fail_report "Suspect verdict disagrees with accessor");
          (* The exported dead flag must agree with the verdict fold. *)
          if Recovery.Detector.dead det 0 <> !down then
            QCheck.Test.fail_report "dead flag out of sync with verdicts";
          (* While alive, suspicion is strictly below the declaration
             threshold — the detector never sits on a primed trigger. *)
          if (not !down) && suspicion >= config.Recovery.dead_ack_threshold
          then QCheck.Test.fail_report "alive route at or above threshold")
        windows;
      true)

let () =
  Alcotest.run "recovery"
    [
      ( "detector",
        [
          ("lifecycle", `Quick, test_lifecycle);
          ("fast flap leaks nothing", `Quick, test_fast_flap_no_leak);
          ("full threshold each cycle", `Quick,
           test_slow_flap_full_threshold_each_cycle);
          ("recovered down_for", `Quick, test_recovered_down_for);
          ("hello timeout", `Quick, test_hello_timeout);
          ("idle never dies", `Quick, test_idle_never_dies);
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_no_leak ]);
    ]
