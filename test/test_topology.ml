(* Tests for the residential/enterprise/testbed topology generators
   and the scenario projection. *)

let test_residential_shape () =
  let rng = Rng.create 1 in
  let inst = Residential.generate rng in
  Alcotest.(check int) "10 nodes" 10 (Builder.node_count inst);
  Alcotest.(check int) "5 dual" 5 (List.length (Builder.dual_nodes inst));
  Array.iter
    (fun nd ->
      let p = nd.Builder.pos in
      Alcotest.(check bool) "inside rectangle" true
        (p.Geometry.x >= 0.0 && p.Geometry.x <= 50.0 && p.Geometry.y >= 0.0
       && p.Geometry.y <= 30.0);
      Alcotest.(check int) "single panel" 0 nd.Builder.panel)
    inst.Builder.nodes

let test_enterprise_shape () =
  let rng = Rng.create 2 in
  let inst = Enterprise.generate rng in
  Alcotest.(check int) "20 nodes" 20 (Builder.node_count inst);
  Alcotest.(check int) "10 APs" 10 (List.length (Builder.dual_nodes inst));
  (* APs sit on distinct 10x10 grid cells. *)
  let ap_cells =
    List.filter_map
      (fun nd ->
        if nd.Builder.dual then
          Some
            ( int_of_float (nd.Builder.pos.Geometry.x /. 10.0),
              int_of_float (nd.Builder.pos.Geometry.y /. 10.0) )
        else None)
      (Array.to_list inst.Builder.nodes)
  in
  Alcotest.(check int) "distinct cells" 10 (List.length (List.sort_uniq compare ap_cells));
  (* Panels split the floor at x = 50. *)
  Array.iter
    (fun nd ->
      let expected = if nd.Builder.pos.Geometry.x < 50.0 then 0 else 1 in
      Alcotest.(check int) "panel by half" expected nd.Builder.panel)
    inst.Builder.nodes

let test_plc_respects_panels () =
  let rng = Rng.create 3 in
  let inst = Enterprise.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if inst.Builder.plc.(i).(j) > 0.0 then begin
        Alcotest.(check int) "same panel" inst.Builder.nodes.(i).Builder.panel
          inst.Builder.nodes.(j).Builder.panel;
        Alcotest.(check bool) "both dual" true
          (inst.Builder.nodes.(i).Builder.dual && inst.Builder.nodes.(j).Builder.dual)
      end
    done
  done

let test_matrices_symmetric () =
  let rng = Rng.create 4 in
  let inst = Residential.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Alcotest.(check (float 0.0)) "wifi sym" inst.Builder.wifi1.(i).(j)
        inst.Builder.wifi1.(j).(i);
      Alcotest.(check (float 0.0)) "plc sym" inst.Builder.plc.(i).(j)
        inst.Builder.plc.(j).(i)
    done;
    Alcotest.(check (float 0.0)) "no self wifi" 0.0 inst.Builder.wifi1.(i).(i)
  done

let test_wifi2_equals_wifi1_between_duals () =
  let rng = Rng.create 5 in
  let inst = Residential.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if inst.Builder.nodes.(i).Builder.dual && inst.Builder.nodes.(j).Builder.dual then
        Alcotest.(check (float 0.0)) "equal channels" inst.Builder.wifi1.(i).(j)
          inst.Builder.wifi2.(i).(j)
      else Alcotest.(check (float 0.0)) "no second radio" 0.0 inst.Builder.wifi2.(i).(j)
    done
  done

let test_scenario_projection () =
  let rng = Rng.create 6 in
  let inst = Residential.generate rng in
  let g_h = Builder.graph inst Builder.Hybrid in
  let g_w = Builder.graph inst Builder.Single_wifi in
  let g_m = Builder.graph inst Builder.Multi_wifi in
  Alcotest.(check int) "hybrid 2 techs" 2 (Multigraph.n_techs g_h);
  Alcotest.(check int) "wifi 1 tech" 1 (Multigraph.n_techs g_w);
  Alcotest.(check int) "mwifi 2 techs" 2 (Multigraph.n_techs g_m);
  (* The WiFi channel-1 links are identical across scenarios. *)
  let count_tech g k =
    Array.fold_left
      (fun acc l -> if l.Multigraph.tech = k then acc + 1 else acc)
      0 (Multigraph.links g)
  in
  Alcotest.(check int) "same wifi1 links h/w" (count_tech g_h 0) (count_tech g_w 0);
  Alcotest.(check int) "same wifi1 links h/m" (count_tech g_h 0) (count_tech g_m 0)

let test_techs_tables () =
  let th = Builder.techs Builder.Hybrid in
  Alcotest.(check bool) "hybrid = wifi + plc" true
    (Technology.is_wifi th.(0) && Technology.is_plc th.(1));
  let tm = Builder.techs Builder.Multi_wifi in
  Alcotest.(check bool) "mwifi = wifi + wifi" true
    (Technology.is_wifi tm.(0) && Technology.is_wifi tm.(1))

let test_testbed_fixed () =
  Alcotest.(check int) "22 nodes" 22 Testbed.n_nodes;
  Alcotest.(check int) "positions array" 22 (Array.length Testbed.positions);
  let rng = Rng.create 7 in
  let inst = Testbed.generate rng in
  Alcotest.(check int) "instance nodes" 22 (Builder.node_count inst);
  Alcotest.(check int) "all dual" 22 (List.length (Builder.dual_nodes inst));
  Array.iter
    (fun nd ->
      let p = nd.Builder.pos in
      Alcotest.(check bool) "inside floor" true
        (p.Geometry.x >= 0.0 && p.Geometry.x <= 65.0 && p.Geometry.y >= 0.0
       && p.Geometry.y <= 40.0))
    inst.Builder.nodes;
  (* Node numbering helper. *)
  Alcotest.(check int) "node 1 -> id 0" 0 (Testbed.node 1);
  Alcotest.(check int) "node 22 -> id 21" 21 (Testbed.node 22);
  Alcotest.(check bool) "node 0 rejected" true
    (try
       ignore (Testbed.node 0);
       false
     with Invalid_argument _ -> true)

let test_testbed_not_single_hop () =
  (* The floor diagonal exceeds the WiFi radius: some pairs must lack
     a direct WiFi link, making multi-hop necessary. *)
  let rng = Rng.create 8 in
  let inst = Testbed.generate rng in
  let far_pairs = ref 0 in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if inst.Builder.wifi1.(i).(j) = 0.0 then incr far_pairs
    done
  done;
  Alcotest.(check bool) "some pairs need relaying" true (!far_pairs > 10)

let test_hybrid_graph_connected_via_plc () =
  (* In the hybrid testbed, PLC (50 m radius) should connect most of
     the floor: the hybrid graph must be connected for seed 9. *)
  let rng = Rng.create 9 in
  let inst = Testbed.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let reachable = Array.make (Multigraph.n_nodes g) false in
  let rec dfs u =
    if not reachable.(u) then begin
      reachable.(u) <- true;
      List.iter
        (fun l -> if Multigraph.usable g l then dfs (Multigraph.link g l).Multigraph.dst)
        (Multigraph.out_links g u)
    end
  in
  dfs 0;
  Alcotest.(check bool) "connected" true (Array.for_all Fun.id reachable)

let prop_generators_deterministic =
  QCheck.Test.make ~name:"same seed, same instance" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let a = Residential.generate (Rng.create seed) in
      let b = Residential.generate (Rng.create seed) in
      a.Builder.wifi1 = b.Builder.wifi1 && a.Builder.plc = b.Builder.plc
      && Array.for_all2
           (fun x y -> x.Builder.pos = y.Builder.pos)
           a.Builder.nodes b.Builder.nodes)

let prop_capacities_within_radius =
  QCheck.Test.make ~name:"links only exist within connection radius" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = Enterprise.generate (Rng.create seed) in
      let n = Builder.node_count inst in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let d =
            Geometry.distance inst.Builder.nodes.(i).Builder.pos
              inst.Builder.nodes.(j).Builder.pos
          in
          if inst.Builder.wifi1.(i).(j) > 0.0 && d > 35.0 then ok := false;
          if inst.Builder.plc.(i).(j) > 0.0 && d > 50.0 then ok := false
        done
      done;
      !ok)

(* ---------- device classes ---------- *)

let device_inst () = Testbed.generate (Rng.create 4242)

let test_device_apply_identity () =
  let inst = device_inst () in
  Alcotest.(check bool) "apply [] is the identity" true
    (Device.apply inst [] = inst)

let test_device_legacy_mask () =
  let inst = device_inst () in
  let victim = List.hd (Builder.dual_nodes inst) in
  let inst' = Device.apply inst [ { Device.node = victim; cls = Device.Legacy; panel = None } ] in
  let n = Builder.node_count inst' in
  Alcotest.(check bool) "legacy node loses dual flag" false
    inst'.Builder.nodes.(victim).Builder.dual;
  for j = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "no wifi2" 0.0 inst'.Builder.wifi2.(victim).(j);
    Alcotest.(check (float 0.0)) "no plc" 0.0 inst'.Builder.plc.(victim).(j);
    Alcotest.(check (float 0.0)) "no wifi2 inbound" 0.0
      inst'.Builder.wifi2.(j).(victim);
    Alcotest.(check (float 0.0)) "no plc inbound" 0.0
      inst'.Builder.plc.(j).(victim);
    (* The primary radio is untouched. *)
    Alcotest.(check (float 0.0)) "wifi1 kept" inst.Builder.wifi1.(victim).(j)
      inst'.Builder.wifi1.(victim).(j)
  done

let test_device_panel_override () =
  let inst = device_inst () in
  (* Move one PLC-connected node onto its own panel: every PLC pair
     through it dies, everything else is untouched. *)
  let n = Builder.node_count inst in
  let victim =
    let rec find i =
      if i >= n then Alcotest.fail "no plc-connected node in the testbed"
      else if Array.exists (fun c -> c > 0.0) inst.Builder.plc.(i) then i
      else find (i + 1)
    in
    find 0
  in
  let inst' =
    Device.apply inst [ { Device.node = victim; cls = Device.Full; panel = Some 7 } ]
  in
  Alcotest.(check int) "panel overridden" 7
    inst'.Builder.nodes.(victim).Builder.panel;
  for j = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "plc severed" 0.0 inst'.Builder.plc.(victim).(j)
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> victim && j <> victim then
        Alcotest.(check (float 0.0)) "other plc pairs untouched"
          inst.Builder.plc.(i).(j) inst'.Builder.plc.(i).(j)
    done
  done

let test_device_relay_originates () =
  let specs =
    [
      { Device.node = 3; cls = Device.Relay; panel = None };
      { Device.node = 5; cls = Device.Legacy; panel = None };
    ]
  in
  Alcotest.(check bool) "relay does not originate" false (Device.originates specs 3);
  Alcotest.(check bool) "legacy originates" true (Device.originates specs 5);
  Alcotest.(check bool) "unlisted originates" true (Device.originates specs 0);
  Alcotest.(check (list int)) "relay_nodes" [ 3 ] (Device.relay_nodes specs)

let test_device_mask_only_removes () =
  (* Whatever the spec, no matrix entry may grow: device classes are
     a mask, never a capability grant. *)
  let inst = device_inst () in
  let n = Builder.node_count inst in
  let specs =
    [
      { Device.node = 0; cls = Device.Legacy; panel = None };
      { Device.node = 1; cls = Device.Relay; panel = Some 3 };
      { Device.node = 2; cls = Device.Full; panel = Some 1 };
    ]
  in
  let inst' = Device.apply inst specs in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let le what a b =
        if b > a then
          Alcotest.failf "%s (%d,%d) grew from %g to %g" what i j a b
      in
      le "wifi1" inst.Builder.wifi1.(i).(j) inst'.Builder.wifi1.(i).(j);
      le "wifi2" inst.Builder.wifi2.(i).(j) inst'.Builder.wifi2.(i).(j);
      le "plc" inst.Builder.plc.(i).(j) inst'.Builder.plc.(i).(j)
    done
  done

let test_device_validate () =
  let inst = device_inst () in
  let bad name specs =
    match Device.validate inst specs with
    | Ok () -> Alcotest.failf "%s: invalid spec accepted" name
    | Error _ -> ()
  in
  (match Device.validate inst [] with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty spec rejected: %s" m);
  bad "node out of range" [ { Device.node = 99; cls = Device.Full; panel = None } ];
  bad "negative node" [ { Device.node = -1; cls = Device.Full; panel = None } ];
  bad "duplicate node"
    [
      { Device.node = 1; cls = Device.Relay; panel = None };
      { Device.node = 1; cls = Device.Legacy; panel = None };
    ];
  bad "negative panel" [ { Device.node = 1; cls = Device.Full; panel = Some (-2) } ];
  (* Round-trip of the class names used by the scenario codec. *)
  List.iter
    (fun c ->
      match Device.cls_of_name (Device.cls_name c) with
      | Some c' when c = c' -> ()
      | _ -> Alcotest.failf "class name %s does not round-trip" (Device.cls_name c))
    [ Device.Full; Device.Legacy; Device.Relay ];
  Alcotest.(check bool) "unknown class name" true
    (Device.cls_of_name "quantum" = None)

let () =
  Alcotest.run "topology"
    [
      ( "devices",
        [
          Alcotest.test_case "empty spec is identity" `Quick
            test_device_apply_identity;
          Alcotest.test_case "legacy loses second medium" `Quick
            test_device_legacy_mask;
          Alcotest.test_case "panel override severs plc" `Quick
            test_device_panel_override;
          Alcotest.test_case "relay originates nothing" `Quick
            test_device_relay_originates;
          Alcotest.test_case "mask never adds capability" `Quick
            test_device_mask_only_removes;
          Alcotest.test_case "validate rejects" `Quick test_device_validate;
        ] );
      ( "residential",
        [ Alcotest.test_case "shape" `Quick test_residential_shape ] );
      ( "enterprise",
        [
          Alcotest.test_case "shape" `Quick test_enterprise_shape;
          Alcotest.test_case "plc respects panels" `Quick test_plc_respects_panels;
        ] );
      ( "builder",
        [
          Alcotest.test_case "matrices symmetric" `Quick test_matrices_symmetric;
          Alcotest.test_case "wifi2 = wifi1 between duals" `Quick
            test_wifi2_equals_wifi1_between_duals;
          Alcotest.test_case "scenario projection" `Quick test_scenario_projection;
          Alcotest.test_case "technology tables" `Quick test_techs_tables;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "fixed floorplan" `Quick test_testbed_fixed;
          Alcotest.test_case "multi-hop needed" `Quick test_testbed_not_single_hop;
          Alcotest.test_case "hybrid connectivity" `Quick
            test_hybrid_graph_connected_via_plc;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generators_deterministic;
          QCheck_alcotest.to_alcotest prop_capacities_within_radius;
        ] );
    ]
