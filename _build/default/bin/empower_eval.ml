(* Command-line driver that regenerates every table and figure of the
   paper's evaluation. `empower_eval <experiment> [--runs N] [--seed S]`;
   `empower_eval all` runs the full suite with default sizes. *)

open Cmdliner

let runs_arg default =
  let doc = Printf.sprintf "Number of runs/instances (default %d)." default in
  Arg.(value & opt int default & info [ "runs"; "r" ] ~docv:"N" ~doc)

let seed_arg default =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int default & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let both_topologies f =
  f Common.Residential;
  print_newline ();
  f Common.Enterprise

let fig4_cmd =
  let run runs seed =
    both_topologies (fun topo -> Fig4.print (Fig4.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"CDF of flow throughput per scheme (Figure 4).")
    Term.(const run $ runs_arg 100 $ seed_arg 1)

let fig5_cmd =
  let run runs seed =
    both_topologies (fun topo -> Fig5.print (Fig5.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"MP-mWiFi vs EMPoWER on the worst flows (Figure 5).")
    Term.(const run $ runs_arg 100 $ seed_arg 2)

let fig6_cmd =
  let run runs seed =
    both_topologies (fun topo -> Fig6.print (Fig6.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Throughput against optimal schemes (Figure 6).")
    Term.(const run $ runs_arg 60 $ seed_arg 3)

let fig7_cmd =
  let run runs seed =
    both_topologies (fun topo -> Fig7.print (Fig7.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Utility with 3 contending flows (Figure 7).")
    Term.(const run $ runs_arg 40 $ seed_arg 4)

let convergence_cmd =
  let run runs seed =
    both_topologies (fun topo -> Convergence.print (Convergence.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Convergence of EMPoWER vs backpressure (Section 5.2.2).")
    Term.(const run $ runs_arg 30 $ seed_arg 5)

let fig9_cmd =
  let run seed = Fig9.print (Fig9.run ~seed ()) in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Two-flow adaptation example, packet-level (Figure 9).")
    Term.(const run $ seed_arg 9)

let fig10_cmd =
  let run runs seed = Fig10.print (Fig10.run ~pairs:runs ~seed ()) in
  Cmd.v
    (Cmd.info "fig10" ~doc:"50 random testbed pairs (Figure 10).")
    Term.(const run $ runs_arg 50 $ seed_arg 10)

let fig11_cmd =
  let run seed = Fig11.print (Fig11.run ~seed ()) in
  Cmd.v
    (Cmd.info "fig11" ~doc:"Per-flow mean/std throughput, packet-level (Figure 11).")
    Term.(const run $ seed_arg 11)

let table1_cmd =
  let run runs seed = Table1.print (Table1.run ~seed ~repeats:runs ()) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Download times with and without CC (Table 1).")
    Term.(const run $ runs_arg 5 $ seed_arg 12)

let fig12_cmd =
  let run seed = Fig12.print (Fig12.run ~seed ()) in
  Cmd.v
    (Cmd.info "fig12" ~doc:"TCP over EMPoWER time series (Figure 12).")
    Term.(const run $ seed_arg 13)

let fig13_cmd =
  let run seed = Fig13.print (Fig13.run ~seed ()) in
  Cmd.v
    (Cmd.info "fig13" ~doc:"TCP rate over ten flows (Figure 13).")
    Term.(const run $ seed_arg 14)

let ablations_cmd =
  let run runs seed =
    Ablations.print (Ablations.n_shortest ~runs ~seed ());
    print_newline ();
    Ablations.print (Ablations.csc ~runs ~seed:(seed + 1) ());
    print_newline ();
    Ablations.print (Ablations.delta ~runs ~seed:(seed + 2) ());
    print_newline ();
    Ablations.print (Ablations.tree_depth ~runs ~seed:(seed + 3) ());
    print_newline ();
    Ablations.print (Ablations.gain ~runs:(max 5 (runs / 2)) ~seed:(seed + 4) ());
    print_newline ();
    Ablations.print (Ablations.delta_delay ~seed:(seed + 5) ())
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Design-choice ablations (DESIGN.md section 4).")
    Term.(const run $ runs_arg 30 $ seed_arg 21)

let metrics_cmd =
  let run runs seed =
    both_topologies (fun topo ->
        Metric_comparison.print (Metric_comparison.run ~runs ~seed topo))
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Single-path metric comparison (footnote 7).")
    Term.(const run $ runs_arg 40 $ seed_arg 31)

let mptcp_cmd =
  let run seed = Mptcp_applicability.print (Mptcp_applicability.run ~seed ()) in
  Cmd.v
    (Cmd.info "mptcp" ~doc:"MPTCP applicability census (Section 7).")
    Term.(const run $ seed_arg 4242)

let mac_cmd =
  let run seed = Mac_fairness.print (Mac_fairness.run ~seed ()) in
  Cmd.v
    (Cmd.info "mac" ~doc:"802.11 vs IEEE 1901 CSMA/CA comparison ([40]).")
    Term.(const run $ seed_arg 40)

let all_cmd =
  let run runs seed =
    let header title =
      Printf.printf "\n================ %s ================\n" title
    in
    header "Figure 4";
    both_topologies (fun t -> Fig4.print (Fig4.run ~runs ~seed t));
    header "Figure 5";
    both_topologies (fun t -> Fig5.print (Fig5.run ~runs ~seed:(seed + 1) t));
    header "Figure 6";
    both_topologies (fun t ->
        Fig6.print (Fig6.run ~runs:(max 10 (runs * 3 / 5)) ~seed:(seed + 2) t));
    header "Figure 7";
    both_topologies (fun t ->
        Fig7.print (Fig7.run ~runs:(max 10 (runs * 2 / 5)) ~seed:(seed + 3) t));
    header "Convergence (Section 5.2.2)";
    both_topologies (fun t ->
        Convergence.print (Convergence.run ~runs:(max 5 (runs / 4)) ~seed:(seed + 4) t));
    header "Figure 9";
    Fig9.print (Fig9.run ~seed:(seed + 5) ());
    header "Figure 10";
    Fig10.print (Fig10.run ~pairs:(max 20 (runs / 2)) ~seed:(seed + 6) ());
    header "Figure 11";
    Fig11.print (Fig11.run ~seed:(seed + 7) ());
    header "Table 1";
    Table1.print (Table1.run ~seed:(seed + 8) ~repeats:3 ());
    header "Figure 12";
    Fig12.print (Fig12.run ~seed:(seed + 9) ());
    header "Figure 13";
    Fig13.print (Fig13.run ~seed:(seed + 10) ());
    header "Footnote 7: metric comparison";
    both_topologies (fun t ->
        Metric_comparison.print
          (Metric_comparison.run ~runs:(max 10 (runs / 3)) ~seed:(seed + 11) t));
    header "Section 7: MPTCP applicability";
    Mptcp_applicability.print (Mptcp_applicability.run ());
    header "MAC fairness [40]";
    Mac_fairness.print (Mac_fairness.run ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run the full evaluation suite.")
    Term.(const run $ runs_arg 60 $ seed_arg 1)

let main =
  let doc = "Reproduce the EMPoWER (CoNEXT'16) evaluation." in
  Cmd.group
    (Cmd.info "empower_eval" ~version:"1.0" ~doc)
    [
      fig4_cmd; fig5_cmd; fig6_cmd; fig7_cmd; convergence_cmd; fig9_cmd;
      fig10_cmd; fig11_cmd; table1_cmd; fig12_cmd; fig13_cmd; ablations_cmd;
      metrics_cmd; mptcp_cmd; mac_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
