(* The Figure 9 scenario, interactively: watch EMPoWER's congestion
   controller move traffic between mediums as a contender comes and
   goes.

   Flow A (node 1 -> node 13 in paper numbering) owns a two-hop
   WiFi+PLC route and a direct PLC route. Flow B (4 -> 7) is pure
   WiFi and runs only during the middle third of the experiment.
   While B is active, A's WiFi route is priced out and its traffic
   rides PLC alone; when B stops, A spreads out again.

   Run with: dune exec examples/testbed_example.exe *)

let () =
  let data = Fig9.run ~time_scale:0.04 () in
  let t_on, t_off = data.Fig9.contender_window in
  Format.printf
    "Flow 1->13 under EMPoWER; WiFi contender (flow 4->7) active %.0f-%.0f s@."
    t_on t_off;
  Format.printf "best single path would give %.1f Mbps@.@."
    data.Fig9.best_single_path;
  Format.printf " t(s)  WiFi+PLC   PLC-only   received@.";
  List.iter
    (fun s ->
      if int_of_float s.Fig9.time mod 5 = 0 then begin
        let marker =
          if s.Fig9.time >= t_on && s.Fig9.time <= t_off then " <- contender on"
          else ""
        in
        Format.printf "%5.0f  %8.1f  %9.1f  %9.1f%s@." s.Fig9.time
          s.Fig9.route1_rate s.Fig9.route2_rate s.Fig9.received marker
      end)
    data.Fig9.series;
  Format.printf "@.mean goodput: %.1f before / %.1f during / %.1f after (Mbps)@."
    data.Fig9.mean_before data.Fig9.mean_during data.Fig9.mean_after
