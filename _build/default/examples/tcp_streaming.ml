(* TCP video streaming over EMPoWER (the Section 6.4 story).

   A client fetches a large file over TCP across the hybrid testbed.
   We run the same transfer three ways:
     1. plain TCP on the single-path route (no controller);
     2. TCP over EMPoWER multipath WITHOUT delay equalization —
        reordering between a fast and a slow route causes spurious
        timeouts;
     3. full EMPoWER (delta = 0.3, destination-side delay
        equalization) — the configuration the paper recommends.

   Run with: dune exec examples/tcp_streaming.exe *)

let transfer ~label ~net ~rr ~cc ~equalize ~seed =
  let spec =
    Runner.flow_spec ~transport:Engine.Tcp_transport
      ~workload:(Workload.File { bytes = 100_000_000 })
      ~src:(Testbed.node 9) ~dst:(Testbed.node 13) rr
  in
  let config =
    {
      Engine.default_config with
      enable_cc = cc;
      delta = (if cc then 0.3 else 0.0);
      delay_equalize = equalize;
    }
  in
  let res = Empower.simulate ~config ~seed net ~flows:[ spec ] ~duration:180.0 in
  let fr = res.Engine.flows.(0) in
  let time =
    match fr.Engine.completions with
    | (_, d) :: _ -> Printf.sprintf "%.1f s" d
    | [] -> "did not finish in 180 s"
  in
  Format.printf "%-38s %s  (%.1f MB received, %d MAC drops)@." label time
    (float_of_int fr.Engine.received_bytes /. 1e6)
    res.Engine.queue_drops

let () =
  let inst = Testbed.generate (Rng.create 4242) in
  let net = Runner.network inst Schemes.Empower in
  let sp = Runner.routes_and_rates net Schemes.Sp ~src:(Testbed.node 9) ~dst:(Testbed.node 13) in
  let mp = Runner.routes_and_rates net Schemes.Empower ~src:(Testbed.node 9) ~dst:(Testbed.node 13) in
  Format.printf "100 MB download, node 9 -> node 13 (paper numbering)@.@.";
  transfer ~label:"plain TCP, single path" ~net ~rr:sp ~cc:false ~equalize:false
    ~seed:31;
  transfer ~label:"TCP over EMPoWER, no equalization" ~net ~rr:mp ~cc:true
    ~equalize:false ~seed:32;
  transfer ~label:"TCP over EMPoWER (delta=0.3, equalized)" ~net ~rr:mp ~cc:true
    ~equalize:true ~seed:33
