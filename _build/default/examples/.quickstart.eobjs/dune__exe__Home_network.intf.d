examples/home_network.mli:
