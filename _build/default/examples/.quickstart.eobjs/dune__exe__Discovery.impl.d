examples/discovery.ml: Abstraction_layer Array Builder Cmdu Control_plane Domain Format List Lsa Lsdb Multigraph Paths Residential Rng Single_path Technology Update
