examples/testbed_example.mli:
