examples/tcp_streaming.mli:
