examples/discovery.mli:
