examples/home_network.ml: Array Builder Empower Float Format List Multipath Opt_solver Paths Rate_region Residential Rng Single_path String Sys Update
