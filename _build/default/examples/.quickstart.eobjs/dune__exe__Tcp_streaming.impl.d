examples/tcp_streaming.ml: Array Empower Engine Format Printf Rng Runner Schemes Testbed Workload
