examples/quickstart.ml: Array Empower Engine Format List Multipath Paths
