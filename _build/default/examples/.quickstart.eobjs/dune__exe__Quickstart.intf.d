examples/quickstart.mli:
