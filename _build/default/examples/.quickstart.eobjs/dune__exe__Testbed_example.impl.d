examples/testbed_example.ml: Fig9 Format List
