(* Quickstart: the paper's Figure 1 network in a dozen lines.

   A PLC/WiFi gateway (a), a PLC/WiFi range extender (b) and a
   WiFi-only laptop (c). EMPoWER finds two routes for the download
   a -> c — the hybrid PLC+WiFi relay route and the two-hop WiFi
   route — and balances traffic so their sum beats the best single
   path by 66%.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Technology 0 = WiFi, technology 1 = PLC; one collision domain
     per medium (it is a small flat). Capacities in Mbit/s. *)
  let net =
    Empower.of_edges ~n_nodes:3 ~n_techs:2
      [
        (0, 1, 0, 15.0) (* WiFi  a-b *);
        (1, 2, 0, 30.0) (* WiFi  b-c *);
        (0, 1, 1, 10.0) (* PLC   a-b *);
      ]
  in

  (* 1. Routing: find the best combination of simultaneous paths. *)
  let plan = Empower.plan net ~src:0 ~dst:2 in
  Format.printf "Routes selected for a -> c:@.";
  List.iter
    (fun (path, rate) ->
      Format.printf "  %a  (standalone rate %.1f Mbps)@." (Paths.pp net.Empower.g)
        path rate)
    plan.Empower.combination.Multipath.paths;
  Format.printf "combined capacity: %.1f Mbps@."
    plan.Empower.combination.Multipath.total_rate;

  (* 2. Congestion control: utility-optimal rates on those routes. *)
  let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
  Format.printf "controller allocation: %.1f Mbps total@." alloc.Empower.flow_rates.(0);

  (* 3. Packet-level: simulate the full layer-2.5 datapath for 30 s. *)
  let flows = Empower.flow_specs_of_allocation alloc in
  let res = Empower.simulate net ~flows ~duration:30.0 in
  let received = res.Engine.flows.(0).Engine.received_bytes in
  Format.printf "packet simulation: %.1f Mbps delivered over 30 s@."
    (float_of_int received *. 8e-6 /. 30.0)
