(* A random residential home: hybrid PLC/WiFi vs WiFi-only.

   Draws the paper's residential topology (50 x 30 m, 5 PLC/WiFi
   boxes + 5 WiFi-only clients), then for a gateway-to-client download
   compares: single-path WiFi, single-path hybrid, and full EMPoWER
   multipath with congestion control — the Section 5 story on one
   concrete home.

   Run with: dune exec examples/home_network.exe [seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2024
  in
  let rng = Rng.create seed in
  let inst = Residential.generate rng in
  Format.printf "Residential draw (seed %d): %d nodes, duals %s@." seed
    (Builder.node_count inst)
    (String.concat "," (List.map string_of_int (Builder.dual_nodes inst)));

  let src, dst = (List.hd (Builder.dual_nodes inst), Builder.node_count inst - 1) in
  Format.printf "flow: node %d (gateway-class) -> node %d@." src dst;

  (* WiFi-only view of the same home. *)
  let wifi = Empower.of_instance inst Builder.Single_wifi in
  (match Single_path.route ~csc:false wifi.Empower.g ~src ~dst with
  | None -> Format.printf "WiFi-only: no connectivity at all!@."
  | Some (p, _) ->
    Format.printf "WiFi-only single path: %a -> %.1f Mbps@."
      (Paths.pp wifi.Empower.g) p
      (Update.path_rate wifi.Empower.g wifi.Empower.dom p));

  (* Hybrid view. *)
  let net = Empower.of_instance inst Builder.Hybrid in
  (match Single_path.route net.Empower.g ~src ~dst with
  | None -> Format.printf "hybrid: unreachable@."
  | Some (p, _) ->
    Format.printf "hybrid single path:    %a -> %.1f Mbps@." (Paths.pp net.Empower.g)
      p
      (Update.path_rate net.Empower.g net.Empower.dom p));

  let alloc = Empower.allocate net ~flows:[ (src, dst) ] in
  Format.printf "EMPoWER multipath:     %d route(s) -> %.1f Mbps@."
    (Array.length alloc.Empower.route_rates.(0))
    alloc.Empower.flow_rates.(0);
  Array.iteri
    (fun i (path, _) ->
      Format.printf "    route %d: %a at %.1f Mbps@." (i + 1)
        (Paths.pp net.Empower.g) path
        alloc.Empower.route_rates.(0).(i))
    (Array.of_list alloc.Empower.plans.(0).Empower.combination.Multipath.paths);

  (* How close is that to the theoretical optimum? *)
  let opt =
    Opt_solver.max_throughput Rate_region.Exact net.Empower.g net.Empower.dom ~src
      ~dst
  in
  Format.printf "optimal centralized scheduler would reach %.1f Mbps (EMPoWER at %.0f%%)@."
    opt
    (100.0 *. alloc.Empower.flow_rates.(0) /. Float.max 0.1 opt)
