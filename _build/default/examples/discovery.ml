(* How does a source learn the hybrid multigraph in the first place?

   Two control planes, both implemented here:
     1. EMPoWER's own link-state advertisements (the paper's
        implementation replaces ARP with its routing protocol):
        wire-format LSAs carrying capacity estimates, OSPF-style
        flooding, per-source database;
     2. the IEEE 1905.1 abstraction layer [2] the paper builds on:
        CMDU topology responses with device-information and
        link-metric TLVs.

   Both are run over a random residential draw; the reconstructed
   views are then used for actual routing and compared against
   routing on the ground truth.

   Run with: dune exec examples/discovery.exe *)

let () =
  let inst = Residential.generate (Rng.create 7) in
  let g = Builder.graph inst Builder.Hybrid in
  Format.printf "ground truth: %d nodes, %d directed links@."
    (Multigraph.n_nodes g) (Multigraph.num_links g);

  (* --- 1. EMPoWER LSAs, flooded --- *)
  let view, stats =
    Control_plane.converged_view ~noise:0.02 (Rng.create 1) g ~viewer:0
  in
  Format.printf "@.[LSA flooding] node 0 rebuilt %d links after %d rounds, %d messages@."
    (Multigraph.num_links view) stats.Lsdb.Flood.rounds stats.Lsdb.Flood.messages;
  let sample_lsa =
    List.hd (Control_plane.advertise (Rng.create 2) g ~node:0)
  in
  Format.printf "  node 0's advertisement: %a (%d bytes on the wire)@." Lsa.pp
    sample_lsa (Lsa.size sample_lsa);

  (* --- 2. IEEE 1905.1 topology exchange --- *)
  let techs = Array.of_list (Technology.hybrid ()) in
  let als =
    Array.init (Multigraph.n_nodes g) (fun node ->
        Abstraction_layer.create ~node ~techs)
  in
  Array.iteri
    (fun i al ->
      let wire = Cmdu.encode (Abstraction_layer.topology_response al g ~message_id:(i + 1)) in
      Abstraction_layer.handle als.(0) (Cmdu.decode wire))
    als;
  let view1905 = Abstraction_layer.graph als.(0) ~n_nodes:(Multigraph.n_nodes g) in
  Format.printf "@.[IEEE 1905.1] node 0 heard %d devices, rebuilt %d links@."
    (Abstraction_layer.known_devices als.(0))
    (Multigraph.num_links view1905);

  (* --- do the views route like the truth? ---
     Each graph gets its own interference view (link ids differ
     between reconstructions, so domains cannot be shared). *)
  let describe name gr =
    let dom = Domain.single_domain_per_tech gr in
    match Single_path.route gr ~src:0 ~dst:9 with
    | None -> Format.printf "  %-12s no route@." name
    | Some (p, _) ->
      Format.printf "  %-12s %a (R = %.1f Mbps)@." name (Paths.pp gr) p
        (Update.path_rate gr dom p)
  in
  Format.printf "@.shortest path 0 -> 9 on each view:@.";
  describe "truth" g;
  describe "LSA view" view;
  describe "1905.1 view" view1905
