test/test_sim.ml: Alcotest Array Builder Domain Engine Float List Multigraph Multipath Opt_solver Paths QCheck QCheck_alcotest Rate_region Residential Rng Stats Workload
