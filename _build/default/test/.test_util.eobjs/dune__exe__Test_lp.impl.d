test/test_lp.ml: Alcotest Array Float List QCheck QCheck_alcotest Rng Simplex
