test/test_ieee1905.mli:
