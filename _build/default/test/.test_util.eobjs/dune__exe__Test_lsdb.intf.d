test/test_lsdb.mli:
