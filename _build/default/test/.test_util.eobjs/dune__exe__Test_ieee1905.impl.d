test/test_ieee1905.ml: Abstraction_layer Alcotest Array Bytes Char Cmdu Float Gen List Multigraph Paths QCheck QCheck_alcotest Single_path String Technology Tlv
