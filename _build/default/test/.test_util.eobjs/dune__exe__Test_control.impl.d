test/test_control.ml: Alcotest Alpha Array Builder Cc_result Domain Float List Multi_cc Multigraph Multipath Paths Price Printf Problem QCheck QCheck_alcotest Residential Rng Single_cc Update Utility
