test/test_lsdb.ml: Alcotest Array Builder Bytes Control_plane Float Gen List Lsa Lsdb Multigraph Paths QCheck QCheck_alcotest Residential Rng Single_path
