test/test_protocol.ml: Ack Alcotest Array Bytes Float Fun Gen Hashtbl Header List Multigraph Paths QCheck QCheck_alcotest Reorder Rng Route_codec
