test/test_tcp.ml: Alcotest Float Option QCheck QCheck_alcotest Queue Rng Tcp
