test/test_phy.ml: Alcotest Array Capacity Estimator Float List QCheck QCheck_alcotest Rng Stats Technology
