test/test_phy.mli:
