test/test_macsim.mli:
