test/test_core.ml: Alcotest Array Builder Domain Empower Engine Float List Multigraph Multipath Residential Rng String Workload
