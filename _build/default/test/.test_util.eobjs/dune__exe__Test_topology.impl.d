test/test_topology.ml: Alcotest Array Builder Enterprise Fun Geometry List Multigraph QCheck QCheck_alcotest Residential Rng Technology Testbed
