test/test_macsim.ml: Alcotest Array Csma Float List Mac_fairness QCheck QCheck_alcotest Rng
