test/test_graph.ml: Alcotest Array Dijkstra Float List Multigraph Paths QCheck QCheck_alcotest Rng Yen
