test/test_interference.ml: Alcotest Array Builder Clique Domain Enterprise Fun Geometry List Multigraph QCheck QCheck_alcotest Residential Rng Technology
