test/test_util.ml: Alcotest Array Float Fun Gen List Pqueue QCheck QCheck_alcotest Rng Stats Table Units
