test/test_routing.ml: Alcotest Builder Domain Float List Metrics Multigraph Multipath Paths QCheck QCheck_alcotest Residential Rng Single_path Update
