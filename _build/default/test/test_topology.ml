(* Tests for the residential/enterprise/testbed topology generators
   and the scenario projection. *)

let test_residential_shape () =
  let rng = Rng.create 1 in
  let inst = Residential.generate rng in
  Alcotest.(check int) "10 nodes" 10 (Builder.node_count inst);
  Alcotest.(check int) "5 dual" 5 (List.length (Builder.dual_nodes inst));
  Array.iter
    (fun nd ->
      let p = nd.Builder.pos in
      Alcotest.(check bool) "inside rectangle" true
        (p.Geometry.x >= 0.0 && p.Geometry.x <= 50.0 && p.Geometry.y >= 0.0
       && p.Geometry.y <= 30.0);
      Alcotest.(check int) "single panel" 0 nd.Builder.panel)
    inst.Builder.nodes

let test_enterprise_shape () =
  let rng = Rng.create 2 in
  let inst = Enterprise.generate rng in
  Alcotest.(check int) "20 nodes" 20 (Builder.node_count inst);
  Alcotest.(check int) "10 APs" 10 (List.length (Builder.dual_nodes inst));
  (* APs sit on distinct 10x10 grid cells. *)
  let ap_cells =
    List.filter_map
      (fun nd ->
        if nd.Builder.dual then
          Some
            ( int_of_float (nd.Builder.pos.Geometry.x /. 10.0),
              int_of_float (nd.Builder.pos.Geometry.y /. 10.0) )
        else None)
      (Array.to_list inst.Builder.nodes)
  in
  Alcotest.(check int) "distinct cells" 10 (List.length (List.sort_uniq compare ap_cells));
  (* Panels split the floor at x = 50. *)
  Array.iter
    (fun nd ->
      let expected = if nd.Builder.pos.Geometry.x < 50.0 then 0 else 1 in
      Alcotest.(check int) "panel by half" expected nd.Builder.panel)
    inst.Builder.nodes

let test_plc_respects_panels () =
  let rng = Rng.create 3 in
  let inst = Enterprise.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if inst.Builder.plc.(i).(j) > 0.0 then begin
        Alcotest.(check int) "same panel" inst.Builder.nodes.(i).Builder.panel
          inst.Builder.nodes.(j).Builder.panel;
        Alcotest.(check bool) "both dual" true
          (inst.Builder.nodes.(i).Builder.dual && inst.Builder.nodes.(j).Builder.dual)
      end
    done
  done

let test_matrices_symmetric () =
  let rng = Rng.create 4 in
  let inst = Residential.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Alcotest.(check (float 0.0)) "wifi sym" inst.Builder.wifi1.(i).(j)
        inst.Builder.wifi1.(j).(i);
      Alcotest.(check (float 0.0)) "plc sym" inst.Builder.plc.(i).(j)
        inst.Builder.plc.(j).(i)
    done;
    Alcotest.(check (float 0.0)) "no self wifi" 0.0 inst.Builder.wifi1.(i).(i)
  done

let test_wifi2_equals_wifi1_between_duals () =
  let rng = Rng.create 5 in
  let inst = Residential.generate rng in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if inst.Builder.nodes.(i).Builder.dual && inst.Builder.nodes.(j).Builder.dual then
        Alcotest.(check (float 0.0)) "equal channels" inst.Builder.wifi1.(i).(j)
          inst.Builder.wifi2.(i).(j)
      else Alcotest.(check (float 0.0)) "no second radio" 0.0 inst.Builder.wifi2.(i).(j)
    done
  done

let test_scenario_projection () =
  let rng = Rng.create 6 in
  let inst = Residential.generate rng in
  let g_h = Builder.graph inst Builder.Hybrid in
  let g_w = Builder.graph inst Builder.Single_wifi in
  let g_m = Builder.graph inst Builder.Multi_wifi in
  Alcotest.(check int) "hybrid 2 techs" 2 (Multigraph.n_techs g_h);
  Alcotest.(check int) "wifi 1 tech" 1 (Multigraph.n_techs g_w);
  Alcotest.(check int) "mwifi 2 techs" 2 (Multigraph.n_techs g_m);
  (* The WiFi channel-1 links are identical across scenarios. *)
  let count_tech g k =
    Array.fold_left
      (fun acc l -> if l.Multigraph.tech = k then acc + 1 else acc)
      0 (Multigraph.links g)
  in
  Alcotest.(check int) "same wifi1 links h/w" (count_tech g_h 0) (count_tech g_w 0);
  Alcotest.(check int) "same wifi1 links h/m" (count_tech g_h 0) (count_tech g_m 0)

let test_techs_tables () =
  let th = Builder.techs Builder.Hybrid in
  Alcotest.(check bool) "hybrid = wifi + plc" true
    (Technology.is_wifi th.(0) && Technology.is_plc th.(1));
  let tm = Builder.techs Builder.Multi_wifi in
  Alcotest.(check bool) "mwifi = wifi + wifi" true
    (Technology.is_wifi tm.(0) && Technology.is_wifi tm.(1))

let test_testbed_fixed () =
  Alcotest.(check int) "22 nodes" 22 Testbed.n_nodes;
  Alcotest.(check int) "positions array" 22 (Array.length Testbed.positions);
  let rng = Rng.create 7 in
  let inst = Testbed.generate rng in
  Alcotest.(check int) "instance nodes" 22 (Builder.node_count inst);
  Alcotest.(check int) "all dual" 22 (List.length (Builder.dual_nodes inst));
  Array.iter
    (fun nd ->
      let p = nd.Builder.pos in
      Alcotest.(check bool) "inside floor" true
        (p.Geometry.x >= 0.0 && p.Geometry.x <= 65.0 && p.Geometry.y >= 0.0
       && p.Geometry.y <= 40.0))
    inst.Builder.nodes;
  (* Node numbering helper. *)
  Alcotest.(check int) "node 1 -> id 0" 0 (Testbed.node 1);
  Alcotest.(check int) "node 22 -> id 21" 21 (Testbed.node 22);
  Alcotest.(check bool) "node 0 rejected" true
    (try
       ignore (Testbed.node 0);
       false
     with Invalid_argument _ -> true)

let test_testbed_not_single_hop () =
  (* The floor diagonal exceeds the WiFi radius: some pairs must lack
     a direct WiFi link, making multi-hop necessary. *)
  let rng = Rng.create 8 in
  let inst = Testbed.generate rng in
  let far_pairs = ref 0 in
  let n = Builder.node_count inst in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if inst.Builder.wifi1.(i).(j) = 0.0 then incr far_pairs
    done
  done;
  Alcotest.(check bool) "some pairs need relaying" true (!far_pairs > 10)

let test_hybrid_graph_connected_via_plc () =
  (* In the hybrid testbed, PLC (50 m radius) should connect most of
     the floor: the hybrid graph must be connected for seed 9. *)
  let rng = Rng.create 9 in
  let inst = Testbed.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let reachable = Array.make (Multigraph.n_nodes g) false in
  let rec dfs u =
    if not reachable.(u) then begin
      reachable.(u) <- true;
      List.iter
        (fun l -> if Multigraph.usable g l then dfs (Multigraph.link g l).Multigraph.dst)
        (Multigraph.out_links g u)
    end
  in
  dfs 0;
  Alcotest.(check bool) "connected" true (Array.for_all Fun.id reachable)

let prop_generators_deterministic =
  QCheck.Test.make ~name:"same seed, same instance" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let a = Residential.generate (Rng.create seed) in
      let b = Residential.generate (Rng.create seed) in
      a.Builder.wifi1 = b.Builder.wifi1 && a.Builder.plc = b.Builder.plc
      && Array.for_all2
           (fun x y -> x.Builder.pos = y.Builder.pos)
           a.Builder.nodes b.Builder.nodes)

let prop_capacities_within_radius =
  QCheck.Test.make ~name:"links only exist within connection radius" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = Enterprise.generate (Rng.create seed) in
      let n = Builder.node_count inst in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let d =
            Geometry.distance inst.Builder.nodes.(i).Builder.pos
              inst.Builder.nodes.(j).Builder.pos
          in
          if inst.Builder.wifi1.(i).(j) > 0.0 && d > 35.0 then ok := false;
          if inst.Builder.plc.(i).(j) > 0.0 && d > 50.0 then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "topology"
    [
      ( "residential",
        [ Alcotest.test_case "shape" `Quick test_residential_shape ] );
      ( "enterprise",
        [
          Alcotest.test_case "shape" `Quick test_enterprise_shape;
          Alcotest.test_case "plc respects panels" `Quick test_plc_respects_panels;
        ] );
      ( "builder",
        [
          Alcotest.test_case "matrices symmetric" `Quick test_matrices_symmetric;
          Alcotest.test_case "wifi2 = wifi1 between duals" `Quick
            test_wifi2_equals_wifi1_between_duals;
          Alcotest.test_case "scenario projection" `Quick test_scenario_projection;
          Alcotest.test_case "technology tables" `Quick test_techs_tables;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "fixed floorplan" `Quick test_testbed_fixed;
          Alcotest.test_case "multi-hop needed" `Quick test_testbed_not_single_hop;
          Alcotest.test_case "hybrid connectivity" `Quick
            test_hybrid_graph_connected_via_plc;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generators_deterministic;
          QCheck_alcotest.to_alcotest prop_capacities_within_radius;
        ] );
    ]
